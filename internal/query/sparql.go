package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/rdf"
)

// ParseSPARQL parses the SPARQL subset used by the LUBM workload:
//
//	PREFIX name: <iri>          (zero or more)
//	SELECT [DISTINCT] ?v... | *
//	WHERE { t1 . t2 . ... }     (trailing '.' optional)
//	LIMIT n / OFFSET m          (optional, either order, each at most once)
//
// where each triple pattern position is a variable (?x), an IRI (<...> or
// prefixed name), or a literal ("..." with optional @lang or ^^type).
// FILTER, OPTIONAL, and property paths are not supported — the benchmark
// does not use them.
func ParseSPARQL(text string) (*BGP, error) {
	p := &sparqlParser{lex: newLexer(text), prefixes: map[string]string{}}
	return p.parse()
}

// MustParseSPARQL is ParseSPARQL that panics on error; for tests and
// examples with known-good query text.
func MustParseSPARQL(text string) *BGP {
	q, err := ParseSPARQL(text)
	if err != nil {
		panic(err)
	}
	return q
}

type sparqlParser struct {
	lex      *lexer
	prefixes map[string]string
}

func (p *sparqlParser) parse() (*BGP, error) {
	for {
		tok, err := p.lex.peek()
		if err != nil {
			return nil, err
		}
		if tok.kind == tokWord && strings.EqualFold(tok.text, "PREFIX") {
			if err := p.parsePrefix(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := p.expectWord("SELECT"); err != nil {
		return nil, err
	}
	q := &BGP{}
	tok, err := p.lex.peek()
	if err != nil {
		return nil, err
	}
	if tok.kind == tokWord && strings.EqualFold(tok.text, "DISTINCT") {
		p.lex.next()
		q.Distinct = true
	}
	star := false
	for {
		tok, err := p.lex.peek()
		if err != nil {
			return nil, err
		}
		if tok.kind == tokVar {
			p.lex.next()
			q.Select = append(q.Select, tok.text)
			continue
		}
		if tok.kind == tokStar {
			p.lex.next()
			star = true
		}
		break
	}
	if star && len(q.Select) > 0 {
		return nil, p.lex.errf("cannot mix '*' with explicit projection variables")
	}
	if !star && len(q.Select) == 0 {
		return nil, p.lex.errf("SELECT requires at least one variable or '*'")
	}
	if err := p.expectWord("WHERE"); err != nil {
		return nil, err
	}
	if err := p.expectKind(tokLBrace, "'{'"); err != nil {
		return nil, err
	}
	for {
		tok, err := p.lex.peek()
		if err != nil {
			return nil, err
		}
		if tok.kind == tokRBrace {
			p.lex.next()
			break
		}
		pat, err := p.parsePattern()
		if err != nil {
			return nil, err
		}
		q.Patterns = append(q.Patterns, pat)
		// Optional '.' separator / terminator.
		tok, err = p.lex.peek()
		if err != nil {
			return nil, err
		}
		if tok.kind == tokDot {
			p.lex.next()
		}
	}
	// Solution modifiers: LIMIT and OFFSET, in either order, at most once
	// each (the SPARQL grammar's LimitOffsetClauses).
	hasOffset := false
	for {
		tok, err = p.lex.peek()
		if err != nil {
			return nil, err
		}
		if tok.kind != tokWord {
			break
		}
		switch {
		case strings.EqualFold(tok.text, "LIMIT"):
			if q.HasLimit {
				return nil, p.lex.errf("duplicate LIMIT clause")
			}
			p.lex.next()
			n, err := p.parseCount("LIMIT")
			if err != nil {
				return nil, err
			}
			q.Limit, q.HasLimit = n, true
			continue
		case strings.EqualFold(tok.text, "OFFSET"):
			if hasOffset {
				return nil, p.lex.errf("duplicate OFFSET clause")
			}
			hasOffset = true
			p.lex.next()
			n, err := p.parseCount("OFFSET")
			if err != nil {
				return nil, err
			}
			q.Offset = n
			continue
		}
		break
	}
	tok, err = p.lex.peek()
	if err != nil {
		return nil, err
	}
	if tok.kind != tokEOF {
		return nil, p.lex.errf("unexpected trailing content %q", tok.text)
	}
	if star {
		q.Select = q.Vars()
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// parseCount reads the non-negative integer operand of LIMIT/OFFSET.
func (p *sparqlParser) parseCount(clause string) (int, error) {
	tok, err := p.lex.next()
	if err != nil {
		return 0, err
	}
	if tok.kind != tokWord {
		return 0, p.lex.errf("%s expects a non-negative integer, got %q", clause, tok.text)
	}
	n, err := strconv.Atoi(tok.text)
	if err != nil || n < 0 {
		return 0, p.lex.errf("%s expects a non-negative integer, got %q", clause, tok.text)
	}
	return n, nil
}

func (p *sparqlParser) parsePrefix() error {
	p.lex.next() // consume PREFIX
	tok, err := p.lex.next()
	if err != nil {
		return err
	}
	if tok.kind != tokPName || !strings.HasSuffix(tok.text, ":") || strings.Count(tok.text, ":") != 1 {
		return p.lex.errf("PREFIX expects 'name:', got %q", tok.text)
	}
	name := strings.TrimSuffix(tok.text, ":")
	iriTok, err := p.lex.next()
	if err != nil {
		return err
	}
	if iriTok.kind != tokIRI {
		return p.lex.errf("PREFIX expects an <iri>, got %q", iriTok.text)
	}
	p.prefixes[name] = iriTok.text
	return nil
}

func (p *sparqlParser) parsePattern() (Pattern, error) {
	s, err := p.parseNode()
	if err != nil {
		return Pattern{}, err
	}
	pr, err := p.parseNode()
	if err != nil {
		return Pattern{}, err
	}
	o, err := p.parseNode()
	if err != nil {
		return Pattern{}, err
	}
	if !pr.IsVar && !pr.Term.IsIRI() {
		return Pattern{}, p.lex.errf("pattern predicate must be an IRI or variable")
	}
	if !s.IsVar && s.Term.IsLiteral() {
		return Pattern{}, p.lex.errf("pattern subject must not be a literal")
	}
	return Pattern{S: s, P: pr, O: o}, nil
}

func (p *sparqlParser) parseNode() (Node, error) {
	tok, err := p.lex.next()
	if err != nil {
		return Node{}, err
	}
	switch tok.kind {
	case tokVar:
		return Variable(tok.text), nil
	case tokIRI:
		return Constant(rdf.NewIRI(tok.text)), nil
	case tokPName:
		iri, err := p.expandPName(tok.text)
		if err != nil {
			return Node{}, err
		}
		return Constant(rdf.NewIRI(iri)), nil
	case tokLiteral:
		t := rdf.NewLiteral(tok.text)
		t.Lang = tok.lang
		if tok.datatype != "" {
			dt := tok.datatype
			if !tok.datatypeIsIRI {
				expanded, err := p.expandPName(dt)
				if err != nil {
					return Node{}, err
				}
				dt = expanded
			}
			t.Datatype = dt
		}
		return Constant(t), nil
	default:
		return Node{}, p.lex.errf("expected a term, got %q", tok.text)
	}
}

func (p *sparqlParser) expandPName(pname string) (string, error) {
	i := strings.IndexByte(pname, ':')
	if i < 0 {
		return "", p.lex.errf("malformed prefixed name %q", pname)
	}
	prefix, local := pname[:i], pname[i+1:]
	base, ok := p.prefixes[prefix]
	if !ok {
		return "", p.lex.errf("undeclared prefix %q", prefix)
	}
	return base + local, nil
}

func (p *sparqlParser) expectWord(word string) error {
	tok, err := p.lex.next()
	if err != nil {
		return err
	}
	if tok.kind != tokWord || !strings.EqualFold(tok.text, word) {
		return p.lex.errf("expected %s, got %q", word, tok.text)
	}
	return nil
}

func (p *sparqlParser) expectKind(kind tokenKind, desc string) error {
	tok, err := p.lex.next()
	if err != nil {
		return err
	}
	if tok.kind != kind {
		return p.lex.errf("expected %s, got %q", desc, tok.text)
	}
	return nil
}

// --- lexer -----------------------------------------------------------------

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokWord
	tokVar
	tokIRI
	tokPName
	tokLiteral
	tokLBrace
	tokRBrace
	tokDot
	tokStar
)

type token struct {
	kind          tokenKind
	text          string
	lang          string // literals
	datatype      string // literals
	datatypeIsIRI bool   // datatype given as <iri> rather than prefixed name
}

type lexer struct {
	s      string
	pos    int
	peeked *token
}

func newLexer(s string) *lexer { return &lexer{s: s} }

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("sparql: offset %d: %s", l.pos, fmt.Sprintf(format, args...))
}

func (l *lexer) peek() (token, error) {
	if l.peeked == nil {
		t, err := l.scan()
		if err != nil {
			return token{}, err
		}
		l.peeked = &t
	}
	return *l.peeked, nil
}

func (l *lexer) next() (token, error) {
	if l.peeked != nil {
		t := *l.peeked
		l.peeked = nil
		return t, nil
	}
	return l.scan()
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.s) {
		c := l.s[l.pos]
		if c == '#' {
			for l.pos < len(l.s) && l.s[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		break
	}
}

func (l *lexer) scan() (token, error) {
	l.skipSpace()
	if l.pos >= len(l.s) {
		return token{kind: tokEOF, text: "<eof>"}, nil
	}
	c := l.s[l.pos]
	switch c {
	case '{':
		l.pos++
		return token{kind: tokLBrace, text: "{"}, nil
	case '}':
		l.pos++
		return token{kind: tokRBrace, text: "}"}, nil
	case '.':
		l.pos++
		return token{kind: tokDot, text: "."}, nil
	case '*':
		l.pos++
		return token{kind: tokStar, text: "*"}, nil
	case '?', '$':
		l.pos++
		start := l.pos
		for l.pos < len(l.s) && isNameChar(l.s[l.pos]) {
			l.pos++
		}
		if l.pos == start {
			return token{}, l.errf("empty variable name")
		}
		return token{kind: tokVar, text: l.s[start:l.pos]}, nil
	case '<':
		end := strings.IndexByte(l.s[l.pos:], '>')
		if end < 0 {
			return token{}, l.errf("unterminated IRI")
		}
		iri := l.s[l.pos+1 : l.pos+end]
		l.pos += end + 1
		return token{kind: tokIRI, text: iri}, nil
	case '"':
		return l.scanLiteral()
	}
	// Bare word: keyword or prefixed name.
	start := l.pos
	for l.pos < len(l.s) && isWordChar(l.s[l.pos]) {
		l.pos++
	}
	if l.pos == start {
		return token{}, l.errf("unexpected character %q", c)
	}
	text := l.s[start:l.pos]
	if strings.ContainsRune(text, ':') {
		return token{kind: tokPName, text: text}, nil
	}
	return token{kind: tokWord, text: text}, nil
}

func (l *lexer) scanLiteral() (token, error) {
	// l.s[l.pos] == '"'
	var b strings.Builder
	i := l.pos + 1
	closed := false
	for i < len(l.s) {
		c := l.s[i]
		if c == '\\' && i+1 < len(l.s) {
			switch l.s[i+1] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return token{}, l.errf("unsupported escape \\%c in literal", l.s[i+1])
			}
			i += 2
			continue
		}
		if c == '"' {
			closed = true
			i++
			break
		}
		b.WriteByte(c)
		i++
	}
	if !closed {
		return token{}, l.errf("unterminated literal")
	}
	tok := token{kind: tokLiteral, text: b.String()}
	if i < len(l.s) && l.s[i] == '@' {
		start := i + 1
		j := start
		for j < len(l.s) && (isNameChar(l.s[j]) || l.s[j] == '-') {
			j++
		}
		if j == start {
			return token{}, l.errf("empty language tag")
		}
		tok.lang = l.s[start:j]
		i = j
	} else if i+1 < len(l.s) && l.s[i] == '^' && l.s[i+1] == '^' {
		i += 2
		if i < len(l.s) && l.s[i] == '<' {
			end := strings.IndexByte(l.s[i:], '>')
			if end < 0 {
				return token{}, l.errf("unterminated datatype IRI")
			}
			tok.datatype = l.s[i+1 : i+end]
			tok.datatypeIsIRI = true
			i += end + 1
		} else {
			start := i
			for i < len(l.s) && isWordChar(l.s[i]) {
				i++
			}
			if i == start {
				return token{}, l.errf("missing datatype after ^^")
			}
			tok.datatype = l.s[start:i]
		}
	}
	l.pos = i
	return tok, nil
}

func isNameChar(c byte) bool {
	return c == '_' || c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

// isWordChar covers keywords and prefixed names (which may contain ':', '.',
// '-', '~', '/' inside local parts used by LUBM IRIs).
func isWordChar(c byte) bool {
	if isNameChar(c) || c == ':' || c == '-' || c == '~' || c == '/' {
		return true
	}
	return c > 127 && unicode.IsLetter(rune(c))
}
