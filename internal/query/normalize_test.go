package query

import "testing"

func TestNormalizeAlphaEquivalent(t *testing.T) {
	a := MustParseSPARQL(`SELECT ?x ?y WHERE { ?x <p> ?y . ?y <q> ?z }`)
	b := MustParseSPARQL(`SELECT ?s ?o WHERE { ?s <p> ?o . ?o <q> ?other }`)
	na, ka := Normalize(a)
	nb, kb := Normalize(b)
	if ka != kb {
		t.Fatalf("α-equivalent queries got different keys:\n%s\n%s", ka, kb)
	}
	if na.String() != nb.String() {
		t.Fatalf("normalized forms differ:\n%s\n%s", na, nb)
	}
	if err := na.Validate(); err != nil {
		t.Fatalf("normalized query invalid: %v", err)
	}
}

func TestNormalizeDistinguishesStructure(t *testing.T) {
	base := `SELECT ?x WHERE { ?x <p> ?y }`
	variants := []string{
		`SELECT ?y WHERE { ?x <p> ?y }`,             // different projection position
		`SELECT DISTINCT ?x WHERE { ?x <p> ?y }`,    // distinct flag
		`SELECT ?x WHERE { ?x <q> ?y }`,             // different predicate
		`SELECT ?x WHERE { ?x <p> ?y . ?y <p> ?x }`, // extra pattern
		`SELECT ?x WHERE { ?x <p> ?x }`,             // repeated variable
		`SELECT ?x WHERE { ?x <p> "y" }`,            // literal instead of var
	}
	_, baseKey := Normalize(MustParseSPARQL(base))
	for _, v := range variants {
		if _, k := Normalize(MustParseSPARQL(v)); k == baseKey {
			t.Errorf("query %q normalized to the same key as %q", v, base)
		}
	}
}

func TestNormalizeKeyStable(t *testing.T) {
	q := MustParseSPARQL(`SELECT ?a WHERE { ?a <p> ?b . ?b <p> ?c }`)
	_, k1 := Normalize(q)
	_, k2 := Normalize(q)
	if k1 != k2 {
		t.Fatalf("keys differ across calls: %q vs %q", k1, k2)
	}
}

func TestNormalizeDoesNotMutateInput(t *testing.T) {
	q := MustParseSPARQL(`SELECT ?x WHERE { ?x <p> ?y }`)
	before := q.String()
	Normalize(q)
	if q.String() != before {
		t.Fatalf("Normalize mutated its input: %s -> %s", before, q.String())
	}
}
