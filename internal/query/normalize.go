package query

import (
	"strconv"
	"strings"
)

// Normalize returns an α-renamed copy of q plus a canonical cache key for
// it. Variables are renamed to v0, v1, ... in order of first appearance in
// the pattern body, so two queries that differ only in variable names (and
// in the PREFIX sugar the parser already expands) normalize identically and
// can share a compiled plan. Pattern order, projection order, and DISTINCT
// are preserved — they are semantically (or plan-) relevant. LIMIT/OFFSET
// are deliberately dropped: they are execution-time parameters (callers map
// them onto engine.ExecOpts), so queries differing only in modifiers share
// one plan-cache entry.
//
// The returned BGP shares no mutable state with q, so it can be retained in
// a cache and handed to concurrent executions. The key is injective over
// normalized queries: it renders the projection, the DISTINCT flag, and
// every pattern using the dictionary's canonical term rendering.
func Normalize(q *BGP) (*BGP, string) {
	rename := map[string]string{}
	mapVar := func(name string) string {
		if n, ok := rename[name]; ok {
			return n
		}
		n := "v" + strconv.Itoa(len(rename))
		rename[name] = n
		return n
	}
	mapNode := func(n Node) Node {
		if n.IsVar {
			return Variable(mapVar(n.Var))
		}
		return n
	}

	norm := &BGP{Distinct: q.Distinct}
	for _, p := range q.Patterns {
		norm.Patterns = append(norm.Patterns, Pattern{
			S: mapNode(p.S),
			P: mapNode(p.P),
			O: mapNode(p.O),
		})
	}
	// Projected variables are bound in the body (Validate enforces this),
	// so every select variable already has a canonical name by now; mapVar
	// still handles unvalidated queries gracefully.
	for _, v := range q.Select {
		norm.Select = append(norm.Select, mapVar(v))
	}
	return norm, normKey(norm)
}

// normKey renders a normalized BGP into its cache key.
func normKey(q *BGP) string {
	var b strings.Builder
	b.WriteString("SELECT")
	if q.Distinct {
		b.WriteString(" DISTINCT")
	}
	for _, v := range q.Select {
		b.WriteString(" ?")
		b.WriteString(v)
	}
	b.WriteString(" {")
	for _, p := range q.Patterns {
		for _, n := range []Node{p.S, p.P, p.O} {
			b.WriteByte(' ')
			if n.IsVar {
				b.WriteString("?")
				b.WriteString(n.Var)
			} else {
				b.WriteString(n.Term.Key())
			}
		}
		b.WriteString(" .")
	}
	b.WriteString(" }")
	return b.String()
}
