package query

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/lubm"
	"repro/internal/rdf"
)

func TestParseSimpleSelect(t *testing.T) {
	q, err := ParseSPARQL(`SELECT ?x WHERE { ?x <http://p> <http://o> . }`)
	if err != nil {
		t.Fatalf("ParseSPARQL: %v", err)
	}
	if !reflect.DeepEqual(q.Select, []string{"x"}) {
		t.Errorf("Select = %v", q.Select)
	}
	if len(q.Patterns) != 1 {
		t.Fatalf("Patterns = %v", q.Patterns)
	}
	p := q.Patterns[0]
	if !p.S.IsVar || p.S.Var != "x" {
		t.Errorf("S = %v", p.S)
	}
	if p.P.IsVar || p.P.Term.Value != "http://p" {
		t.Errorf("P = %v", p.P)
	}
	if p.O.IsVar || p.O.Term.Value != "http://o" {
		t.Errorf("O = %v", p.O)
	}
}

func TestParsePrefixes(t *testing.T) {
	q, err := ParseSPARQL(`
PREFIX ub: <http://univ#>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?x WHERE {
  ?x rdf:type ub:GraduateStudent .
}`)
	if err != nil {
		t.Fatalf("ParseSPARQL: %v", err)
	}
	p := q.Patterns[0]
	if p.P.Term.Value != rdf.RDFType {
		t.Errorf("predicate = %v", p.P.Term.Value)
	}
	if p.O.Term.Value != "http://univ#GraduateStudent" {
		t.Errorf("object = %v", p.O.Term.Value)
	}
}

func TestParseMultiplePatternsAndTrailingDot(t *testing.T) {
	q, err := ParseSPARQL(`SELECT ?x ?y WHERE {
  ?x <http://p1> ?y .
  ?y <http://p2> "lit"
}`)
	if err != nil {
		t.Fatalf("ParseSPARQL: %v", err)
	}
	if len(q.Patterns) != 2 {
		t.Fatalf("patterns = %d", len(q.Patterns))
	}
	if q.Patterns[1].O.Term != rdf.NewLiteral("lit") {
		t.Errorf("literal object = %v", q.Patterns[1].O)
	}
}

func TestParseStar(t *testing.T) {
	q, err := ParseSPARQL(`SELECT * WHERE { ?a <http://p> ?b . ?b <http://q> ?c . }`)
	if err != nil {
		t.Fatalf("ParseSPARQL: %v", err)
	}
	if !reflect.DeepEqual(q.Select, []string{"a", "b", "c"}) {
		t.Errorf("star projection = %v", q.Select)
	}
}

func TestParseDistinct(t *testing.T) {
	q, err := ParseSPARQL(`SELECT DISTINCT ?x WHERE { ?x <http://p> ?y . }`)
	if err != nil {
		t.Fatalf("ParseSPARQL: %v", err)
	}
	if !q.Distinct {
		t.Errorf("Distinct not set")
	}
}

func TestParseLiteralForms(t *testing.T) {
	q, err := ParseSPARQL(`PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT ?x WHERE {
  ?x <http://a> "plain" .
  ?x <http://b> "tagged"@en .
  ?x <http://c> "5"^^xsd:integer .
  ?x <http://d> "6"^^<http://www.w3.org/2001/XMLSchema#long> .
  ?x <http://e> "esc\"ape\n" .
}`)
	if err != nil {
		t.Fatalf("ParseSPARQL: %v", err)
	}
	want := []rdf.Term{
		rdf.NewLiteral("plain"),
		rdf.NewLangLiteral("tagged", "en"),
		rdf.NewTypedLiteral("5", "http://www.w3.org/2001/XMLSchema#integer"),
		rdf.NewTypedLiteral("6", "http://www.w3.org/2001/XMLSchema#long"),
		rdf.NewLiteral("esc\"ape\n"),
	}
	for i, w := range want {
		if got := q.Patterns[i].O.Term; got != w {
			t.Errorf("pattern %d object = %+v, want %+v", i, got, w)
		}
	}
}

func TestParseVariablePredicate(t *testing.T) {
	q, err := ParseSPARQL(`SELECT ?p WHERE { <http://s> ?p <http://o> . }`)
	if err != nil {
		t.Fatalf("ParseSPARQL: %v", err)
	}
	if !q.Patterns[0].P.IsVar {
		t.Errorf("predicate should be a variable")
	}
}

func TestParseComments(t *testing.T) {
	q, err := ParseSPARQL(`# leading comment
SELECT ?x # projection
WHERE { # body
  ?x <http://p> <http://o> . # pattern
}`)
	if err != nil {
		t.Fatalf("ParseSPARQL with comments: %v", err)
	}
	if len(q.Patterns) != 1 {
		t.Errorf("patterns = %d", len(q.Patterns))
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"empty":                 ``,
		"no where":              `SELECT ?x`,
		"no brace":              `SELECT ?x WHERE ?x <http://p> <http://o> .`,
		"unclosed brace":        `SELECT ?x WHERE { ?x <http://p> <http://o> .`,
		"unbound projection":    `SELECT ?z WHERE { ?x <http://p> <http://o> . }`,
		"empty pattern body":    `SELECT ?x WHERE { }`,
		"no projection":         `SELECT WHERE { ?x <http://p> <http://o> . }`,
		"star plus var":         `SELECT ?x * WHERE { ?x <http://p> <http://o> . }`,
		"undeclared prefix":     `SELECT ?x WHERE { ?x ub:type <http://o> . }`,
		"literal subject":       `SELECT ?x WHERE { "lit" <http://p> ?x . }`,
		"literal predicate":     `SELECT ?x WHERE { ?x "lit" <http://o> . }`,
		"bare LIMIT":            `SELECT ?x WHERE { ?x <http://p> <http://o> . } LIMIT`,
		"trailing content":      `SELECT ?x WHERE { ?x <http://p> <http://o> . } GROUP`,
		"negative LIMIT":        `SELECT ?x WHERE { ?x <http://p> <http://o> . } LIMIT -1`,
		"non-numeric LIMIT":     `SELECT ?x WHERE { ?x <http://p> <http://o> . } LIMIT ten`,
		"duplicate LIMIT":       `SELECT ?x WHERE { ?x <http://p> <http://o> . } LIMIT 1 LIMIT 2`,
		"negative OFFSET":       `SELECT ?x WHERE { ?x <http://p> <http://o> . } OFFSET -3`,
		"duplicate OFFSET":      `SELECT ?x WHERE { ?x <http://p> <http://o> . } OFFSET 1 OFFSET 2`,
		"limit before brace":    `SELECT ?x LIMIT 3 WHERE { ?x <http://p> <http://o> . }`,
		"unterminated iri":      `SELECT ?x WHERE { ?x <http://p <http://o> . }`,
		"unterminated literal":  `SELECT ?x WHERE { ?x <http://p> "abc . }`,
		"bad escape":            `SELECT ?x WHERE { ?x <http://p> "a\qb" . }`,
		"empty variable":        `SELECT ? WHERE { ?x <http://p> <http://o> . }`,
		"prefix without iri":    `PREFIX ub: SELECT ?x WHERE { ?x <http://p> <http://o> . }`,
		"malformed prefix name": `PREFIX ub <http://u#> SELECT ?x WHERE { ?x <http://p> <http://o> . }`,
		"duplicate projection":  `SELECT ?x ?x WHERE { ?x <http://p> <http://o> . }`,
		"incomplete pattern":    `SELECT ?x WHERE { ?x <http://p> }`,
		"empty lang tag":        `SELECT ?x WHERE { ?x <http://p> "l"@ . }`,
		"dangling datatype":     `SELECT ?x WHERE { ?x <http://p> "l"^^ . }`,
	}
	for name, in := range bad {
		if _, err := ParseSPARQL(in); err == nil {
			t.Errorf("%s: expected parse error for %q", name, in)
		}
	}
}

func TestParseLimitOffset(t *testing.T) {
	base := `SELECT ?x WHERE { ?x <http://p> <http://o> . }`
	cases := []struct {
		name     string
		suffix   string
		limit    int
		hasLimit bool
		offset   int
	}{
		{"none", ``, 0, false, 0},
		{"limit", ` LIMIT 10`, 10, true, 0},
		{"limit zero", ` LIMIT 0`, 0, true, 0},
		{"offset", ` OFFSET 5`, 0, false, 5},
		{"offset zero", ` OFFSET 0`, 0, false, 0},
		{"limit offset", ` LIMIT 10 OFFSET 5`, 10, true, 5},
		{"offset limit", ` OFFSET 5 LIMIT 10`, 10, true, 5},
		{"lowercase", ` limit 7 offset 2`, 7, true, 2},
	}
	for _, c := range cases {
		q, err := ParseSPARQL(base + c.suffix)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if q.Limit != c.limit || q.HasLimit != c.hasLimit || q.Offset != c.offset {
			t.Errorf("%s: Limit=%d HasLimit=%v Offset=%d, want %d/%v/%d",
				c.name, q.Limit, q.HasLimit, q.Offset, c.limit, c.hasLimit, c.offset)
		}
		// The rendered query round-trips with identical modifiers.
		rt, err := ParseSPARQL(q.String())
		if err != nil {
			t.Errorf("%s: re-parse of %q: %v", c.name, q.String(), err)
			continue
		}
		if rt.Limit != q.Limit || rt.HasLimit != q.HasLimit || rt.Offset != q.Offset {
			t.Errorf("%s: round-trip modifiers changed: %+v vs %+v", c.name, rt, q)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("MustParseSPARQL should panic on bad input")
		}
	}()
	MustParseSPARQL("nonsense")
}

func TestAllLUBMQueriesParse(t *testing.T) {
	for _, n := range lubm.QueryNumbers {
		text := lubm.Query(n, 1000)
		q, err := ParseSPARQL(text)
		if err != nil {
			t.Errorf("LUBM query %d failed to parse: %v", n, err)
			continue
		}
		if err := q.Validate(); err != nil {
			t.Errorf("LUBM query %d invalid: %v", n, err)
		}
	}
}

func TestLUBMQueryShapes(t *testing.T) {
	// Query 2 has six patterns over vars x, y, z, forming a triangle plus
	// three type selections.
	q := MustParseSPARQL(lubm.Query(2, 1))
	if len(q.Patterns) != 6 {
		t.Errorf("Q2 patterns = %d", len(q.Patterns))
	}
	if !reflect.DeepEqual(q.Select, []string{"X", "Y", "Z"}) {
		t.Errorf("Q2 select = %v", q.Select)
	}
	if got := q.Vars(); !reflect.DeepEqual(got, []string{"X", "Y", "Z"}) {
		t.Errorf("Q2 vars = %v", got)
	}
	// Query 14 is a single type-scan pattern.
	q14 := MustParseSPARQL(lubm.Query(14, 1))
	if len(q14.Patterns) != 1 {
		t.Errorf("Q14 patterns = %d", len(q14.Patterns))
	}
}

func TestValidateDirectConstruction(t *testing.T) {
	q := &BGP{
		Select: []string{"x"},
		Patterns: []Pattern{
			{S: Variable("x"), P: Constant(rdf.NewIRI("http://p")), O: Constant(rdf.NewIRI("http://o"))},
		},
	}
	if err := q.Validate(); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	if s := q.String(); !strings.Contains(s, "SELECT ?x") || !strings.Contains(s, "?x <http://p> <http://o> .") {
		t.Errorf("String() = %q", s)
	}
	q.Distinct = true
	if s := q.String(); !strings.Contains(s, "DISTINCT") {
		t.Errorf("String() without DISTINCT: %q", s)
	}
	bad := &BGP{Select: []string{"x"}}
	if bad.Validate() == nil {
		t.Errorf("empty body accepted")
	}
	bad2 := &BGP{Patterns: q.Patterns}
	if bad2.Validate() == nil {
		t.Errorf("empty projection accepted")
	}
}

func TestNodeString(t *testing.T) {
	if Variable("x").String() != "?x" {
		t.Errorf("variable string")
	}
	if Constant(rdf.NewIRI("http://a")).String() != "<http://a>" {
		t.Errorf("constant string")
	}
	p := Pattern{Variable("s"), Constant(rdf.NewIRI("http://p")), Variable("o")}
	if p.String() != "?s <http://p> ?o ." {
		t.Errorf("pattern string = %q", p.String())
	}
	if !reflect.DeepEqual(p.Vars(), []string{"s", "o"}) {
		t.Errorf("pattern vars = %v", p.Vars())
	}
}
