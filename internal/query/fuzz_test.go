package query

import "testing"

// FuzzParseSPARQL checks that the parser never panics and that accepted
// queries re-validate and render.
func FuzzParseSPARQL(f *testing.F) {
	seeds := []string{
		`SELECT ?x WHERE { ?x <p> <o> . }`,
		`PREFIX a: <http://a#> SELECT * WHERE { ?x a:t ?y }`,
		`SELECT DISTINCT ?x ?y WHERE { ?x <p> "lit"@en . ?y <q> "5"^^<http://int> . }`,
		`SELECT WHERE`,
		`select ?x where { ?x ?p ?o . }`,
		`{}`,
		`SELECT ?x WHERE { ?x <p`,
		`# comment only`,
		`SELECT ?x WHERE { ?x <p> <o> } LIMIT 10`,
		`SELECT ?x WHERE { ?x <p> <o> } LIMIT 0 OFFSET 3`,
		`SELECT ?x WHERE { ?x <p> <o> } OFFSET 5 LIMIT 2`,
		`SELECT ?x WHERE { ?x <p> <o> } LIMIT -1`,
		`SELECT ?x WHERE { ?x <p> <o> } LIMIT 1 LIMIT 2`,
		`SELECT ?x WHERE { ?x <p> <o> } OFFSET`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		q, err := ParseSPARQL(text)
		if err != nil {
			return
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("parser accepted invalid query %q: %v", text, err)
		}
		if q.String() == "" {
			t.Fatalf("accepted query renders empty")
		}
	})
}
