// Package query defines the query intermediate representation shared by all
// engines — a basic graph pattern (BGP) with a projection list — and a
// parser for the SPARQL subset the LUBM benchmark uses (PREFIX declarations
// and SELECT ... WHERE { triple patterns }).
package query

import (
	"fmt"

	"repro/internal/rdf"
)

// Node is one position of a triple pattern: either a variable or a constant
// RDF term.
type Node struct {
	// IsVar distinguishes variables from constants.
	IsVar bool
	// Var is the variable name, without the leading '?' (valid when IsVar).
	Var string
	// Term is the constant term (valid when !IsVar).
	Term rdf.Term
}

// Variable returns a variable node.
func Variable(name string) Node { return Node{IsVar: true, Var: name} }

// Constant returns a constant node.
func Constant(t rdf.Term) Node { return Node{Term: t} }

// String renders the node in SPARQL-ish syntax.
func (n Node) String() string {
	if n.IsVar {
		return "?" + n.Var
	}
	return n.Term.String()
}

// Pattern is one triple pattern.
type Pattern struct {
	S, P, O Node
}

// String renders the pattern.
func (p Pattern) String() string {
	return p.S.String() + " " + p.P.String() + " " + p.O.String() + " ."
}

// Vars returns the pattern's variables in S, P, O order.
func (p Pattern) Vars() []string {
	var out []string
	for _, n := range []Node{p.S, p.P, p.O} {
		if n.IsVar {
			out = append(out, n.Var)
		}
	}
	return out
}

// BGP is a basic graph pattern query: a conjunction of triple patterns with
// a projection.
type BGP struct {
	// Select lists the projection variables in output order.
	Select []string
	// Distinct requests duplicate elimination over the projected rows.
	// (Under set semantics for BGP matching, projection can introduce
	// duplicates; engines honour this flag.)
	Distinct bool
	// Patterns is the conjunctive body.
	Patterns []Pattern
}

// Vars returns every variable in the body, in order of first appearance.
func (q *BGP) Vars() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range q.Patterns {
		for _, v := range p.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// Validate checks structural sanity: at least one pattern, and every
// projected variable bound in the body.
func (q *BGP) Validate() error {
	if len(q.Patterns) == 0 {
		return fmt.Errorf("query: empty basic graph pattern")
	}
	if len(q.Select) == 0 {
		return fmt.Errorf("query: empty projection")
	}
	bound := map[string]bool{}
	for _, v := range q.Vars() {
		bound[v] = true
	}
	for _, v := range q.Select {
		if !bound[v] {
			return fmt.Errorf("query: projected variable ?%s is not bound in the pattern", v)
		}
	}
	seen := map[string]bool{}
	for _, v := range q.Select {
		if seen[v] {
			return fmt.Errorf("query: duplicate projection variable ?%s", v)
		}
		seen[v] = true
	}
	return nil
}

// String renders the query in SPARQL syntax (without prefixes).
func (q *BGP) String() string {
	s := "SELECT"
	if q.Distinct {
		s += " DISTINCT"
	}
	for _, v := range q.Select {
		s += " ?" + v
	}
	s += " WHERE {"
	for _, p := range q.Patterns {
		s += "\n  " + p.String()
	}
	return s + "\n}"
}
