// Package query defines the query intermediate representation shared by all
// engines — a basic graph pattern (BGP) with a projection list — and a
// parser for the SPARQL subset the LUBM benchmark uses (PREFIX declarations
// and SELECT ... WHERE { triple patterns }).
package query

import (
	"fmt"

	"repro/internal/rdf"
)

// Node is one position of a triple pattern: either a variable or a constant
// RDF term.
type Node struct {
	// IsVar distinguishes variables from constants.
	IsVar bool
	// Var is the variable name, without the leading '?' (valid when IsVar).
	Var string
	// Term is the constant term (valid when !IsVar).
	Term rdf.Term
}

// Variable returns a variable node.
func Variable(name string) Node { return Node{IsVar: true, Var: name} }

// Constant returns a constant node.
func Constant(t rdf.Term) Node { return Node{Term: t} }

// String renders the node in SPARQL-ish syntax.
func (n Node) String() string {
	if n.IsVar {
		return "?" + n.Var
	}
	return n.Term.String()
}

// Pattern is one triple pattern.
type Pattern struct {
	S, P, O Node
}

// String renders the pattern.
func (p Pattern) String() string {
	return p.S.String() + " " + p.P.String() + " " + p.O.String() + " ."
}

// Vars returns the pattern's variables in S, P, O order.
func (p Pattern) Vars() []string {
	var out []string
	for _, n := range []Node{p.S, p.P, p.O} {
		if n.IsVar {
			out = append(out, n.Var)
		}
	}
	return out
}

// BGP is a basic graph pattern query: a conjunction of triple patterns with
// a projection.
type BGP struct {
	// Select lists the projection variables in output order.
	Select []string
	// Distinct requests duplicate elimination over the projected rows.
	// (Under set semantics for BGP matching, projection can introduce
	// duplicates; engines honour this flag.)
	Distinct bool
	// Patterns is the conjunctive body.
	Patterns []Pattern
	// Limit caps the result rows (SPARQL "LIMIT n"); meaningful only when
	// HasLimit is set, because LIMIT 0 is a valid clause. Limit and Offset
	// are annotations for callers: engines do not interpret them — the
	// execution layers (server, CLIs, repro.Query) map them onto
	// engine.ExecOpts.MaxRows/Offset, where caps are enforced exactly at
	// the cursor.
	Limit int
	// HasLimit records whether a LIMIT clause was present.
	HasLimit bool
	// Offset skips that many solutions before the first returned one
	// (SPARQL "OFFSET m"); zero means none.
	Offset int
}

// Vars returns every variable in the body, in order of first appearance.
func (q *BGP) Vars() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range q.Patterns {
		for _, v := range p.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// Validate checks structural sanity: at least one pattern, and every
// projected variable bound in the body.
func (q *BGP) Validate() error {
	if len(q.Patterns) == 0 {
		return fmt.Errorf("query: empty basic graph pattern")
	}
	if len(q.Select) == 0 {
		return fmt.Errorf("query: empty projection")
	}
	bound := map[string]bool{}
	for _, v := range q.Vars() {
		bound[v] = true
	}
	for _, v := range q.Select {
		if !bound[v] {
			return fmt.Errorf("query: projected variable ?%s is not bound in the pattern", v)
		}
	}
	seen := map[string]bool{}
	for _, v := range q.Select {
		if seen[v] {
			return fmt.Errorf("query: duplicate projection variable ?%s", v)
		}
		seen[v] = true
	}
	if q.Limit < 0 {
		return fmt.Errorf("query: negative LIMIT %d", q.Limit)
	}
	if q.Offset < 0 {
		return fmt.Errorf("query: negative OFFSET %d", q.Offset)
	}
	if !q.HasLimit && q.Limit != 0 {
		return fmt.Errorf("query: Limit %d set without HasLimit", q.Limit)
	}
	return nil
}

// String renders the query in SPARQL syntax (without prefixes).
func (q *BGP) String() string {
	s := "SELECT"
	if q.Distinct {
		s += " DISTINCT"
	}
	for _, v := range q.Select {
		s += " ?" + v
	}
	s += " WHERE {"
	for _, p := range q.Patterns {
		s += "\n  " + p.String()
	}
	s += "\n}"
	if q.HasLimit {
		s += fmt.Sprintf("\nLIMIT %d", q.Limit)
	}
	if q.Offset > 0 {
		s += fmt.Sprintf("\nOFFSET %d", q.Offset)
	}
	return s
}
