package live

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/rdf"
)

// Op is one patch operation: insert or delete of a single triple.
type Op struct {
	// Delete marks a deletion; otherwise the operation inserts.
	Delete bool
	Triple rdf.Triple
}

// Patch is an ordered batch of insert/delete operations. Order matters
// within a batch: "+t" followed by "-t" nets to a no-op, "-t" followed by
// "+t" leaves t present.
type Patch struct {
	Ops []Op
}

// ParsePatch reads the N-Triples patch format: one operation per line, each
// line an N-Triples statement optionally prefixed with '+' (insert) or '-'
// (delete). Unprefixed lines insert, so any plain N-Triples document is a
// valid all-insert patch. Blank lines and '#' comments are skipped.
//
//	+<http://a> <http://p> <http://b> .
//	-<http://a> <http://p> <http://c> .
//	<http://d> <http://p> "literal" .
func ParsePatch(r io.Reader) (Patch, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var p Patch
	lineNo := 0
	for {
		lineNo++
		line, err := br.ReadString('\n')
		if err != nil && err != io.EOF {
			return Patch{}, err
		}
		atEOF := err == io.EOF
		trimmed := strings.TrimSpace(line)
		if trimmed != "" && !strings.HasPrefix(trimmed, "#") {
			op := Op{}
			switch trimmed[0] {
			case '+':
				trimmed = strings.TrimSpace(trimmed[1:])
			case '-':
				op.Delete = true
				trimmed = strings.TrimSpace(trimmed[1:])
			}
			t, perr := rdf.ParseTriple(trimmed)
			if perr != nil {
				return Patch{}, fmt.Errorf("live: patch line %d: %w", lineNo, perr)
			}
			op.Triple = t
			p.Ops = append(p.Ops, op)
		}
		if atEOF {
			return p, nil
		}
	}
}

// InsertAll returns a patch inserting every triple.
func InsertAll(ts []rdf.Triple) Patch {
	ops := make([]Op, len(ts))
	for i, t := range ts {
		ops[i] = Op{Triple: t}
	}
	return Patch{Ops: ops}
}

// DeleteAll returns a patch deleting every triple.
func DeleteAll(ts []rdf.Triple) Patch {
	ops := make([]Op, len(ts))
	for i, t := range ts {
		ops[i] = Op{Delete: true, Triple: t}
	}
	return Patch{Ops: ops}
}
