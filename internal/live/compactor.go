package live

import (
	"context"
	"time"
)

// CompactPolicy parameterizes the background compactor.
type CompactPolicy struct {
	// Every is how often the compactor checks the delta. Required > 0.
	Every time.Duration
	// MinOps compacts only when the delta holds at least this many netted
	// operations (inserts + tombstones); values <= 1 compact on any
	// non-empty delta.
	MinOps int
	// SnapshotPath, when set, atomically persists the fresh base after
	// every swap (write to temp, fsync, rename), so a restarting server
	// always finds a complete snapshot.
	SnapshotPath string
	// OnCompact, when set, observes every swap (stats logging).
	OnCompact func(CompactStats)
	// OnError, when set, observes compaction/persistence failures; the loop
	// keeps running either way.
	OnError func(error)
}

// AutoCompact runs the background compactor until ctx is done: every tick
// it drains a big-enough delta into a fresh base and swaps it in under the
// next epoch, then optionally persists the snapshot. It blocks; run it on
// its own goroutine. Serving is never paused — the swap is one atomic
// pointer store and in-flight cursors keep their pinned epoch.
func (ls *Store) AutoCompact(ctx context.Context, pol CompactPolicy) {
	if pol.Every <= 0 {
		pol.Every = 30 * time.Second
	}
	tick := time.NewTicker(pol.Every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		ins, del := ls.DeltaSize()
		if n := ins + del; n == 0 || n < pol.MinOps {
			continue
		}
		st, err := ls.Compact()
		if err != nil {
			if pol.OnError != nil {
				pol.OnError(err)
			}
			continue
		}
		if !st.Swapped {
			continue
		}
		if pol.OnCompact != nil {
			pol.OnCompact(st)
		}
		if pol.SnapshotPath != "" {
			if err := ls.SnapshotTo(pol.SnapshotPath); err != nil && pol.OnError != nil {
				pol.OnError(err)
			}
		}
	}
}
