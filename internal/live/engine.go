package live

import (
	"sync"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/shard"
	"repro/internal/store"
)

// BuildFunc constructs the wrapped engine over one epoch's base: from the
// shard partition when the live store is sharded (part non-nil), from the
// plain store otherwise. The registry supplies this (engines.NewLive);
// direct users can pass e.g. func(st, _) { return core.New(st, opts), nil }.
type BuildFunc func(st *store.Store, part *shard.Partitioned) (engine.Engine, error)

// planOpener matches engines that separate compilation from execution (the
// core/EmptyHeaded engine) — structurally, so live does not import core.
type planOpener interface {
	engine.Engine
	Plan(*query.BGP) (*plan.Plan, error)
	OpenPlan(p *plan.Plan, opts engine.ExecOpts) (engine.Cursor, error)
}

// Engine adapts any wrapped engine to the read-write overlay: it satisfies
// the engine.Engine cursor contract over overlay = (base \ tombstones) ∪
// inserts. While the delta is empty every Open passes straight through to
// the wrapped engine (same cursor, same parallelism, caps pushed down);
// with a pending delta, the base cursor is merged with delta corrections
// (see overlay.go). Each cursor pins the epoch state it opened against, so
// compactions never disturb in-flight queries.
type Engine struct {
	ls    *Store
	name  string
	build BuildFunc
}

// NewEngine wraps the named engine (constructed per epoch by build) over
// ls. The wrapped engine is built lazily per epoch and cached, so repeated
// opens within an epoch reuse its indexes.
func NewEngine(ls *Store, name string, build BuildFunc) *Engine {
	return &Engine{ls: ls, name: name, build: build}
}

// Name implements engine.Engine; it reports the wrapped engine's name so
// benchmark and stats attribution stay stable.
func (e *Engine) Name() string { return e.name }

// Epoch returns the live store's current epoch — the cache-invalidation
// token for anything compiled against base statistics.
func (e *Engine) Epoch() uint64 { return e.ls.Epoch() }

// Store returns the live store this engine serves.
func (e *Engine) Store() *Store { return e.ls }

// Inner returns the wrapped engine instance for the current epoch, building
// it if needed. Callers may inspect it (e.g. for capability sniffing) but
// must route queries through Open so the overlay stays visible.
func (e *Engine) Inner() (engine.Engine, error) {
	s := e.ls.pin()
	defer s.unpin()
	return s.base.engine(e.name, e.build)
}

// Open implements engine.Engine over the overlay.
func (e *Engine) Open(q *query.BGP, opts engine.ExecOpts) (engine.Cursor, error) {
	return e.open(q, nil, 0, opts)
}

// PlanFor compiles q against the current epoch when the wrapped engine
// separates planning from execution; ok is false for engines that plan
// internally per execution. The returned epoch tags the plan: pass both to
// OpenPrepared, and key any cache by it — after a compaction the statistics
// the plan was costed against are gone.
func (e *Engine) PlanFor(q *query.BGP) (p *plan.Plan, epoch uint64, ok bool, err error) {
	s := e.ls.pin()
	defer s.unpin()
	inner, err := s.base.engine(e.name, e.build)
	if err != nil {
		return nil, 0, false, err
	}
	po, isPlanner := inner.(planOpener)
	if !isPlanner {
		return nil, s.epoch, false, nil
	}
	p, err = po.Plan(q)
	if err != nil {
		return nil, 0, false, err
	}
	return p, s.epoch, true, nil
}

// OpenPrepared opens q reusing a plan previously compiled by PlanFor at the
// given epoch. A plan from a different epoch is ignored (the query replans
// against the current base); a matching plan short-circuits compilation on
// the fast path and seeds the base stream on the overlay path.
func (e *Engine) OpenPrepared(q *query.BGP, p *plan.Plan, epoch uint64, opts engine.ExecOpts) (engine.Cursor, error) {
	return e.open(q, p, epoch, opts)
}

func (e *Engine) open(q *query.BGP, p *plan.Plan, planEpoch uint64, opts engine.ExecOpts) (engine.Cursor, error) {
	if err := opts.Err(); err != nil {
		return nil, err
	}
	s := e.ls.pin()
	inner, err := s.base.engine(e.name, e.build)
	if err != nil {
		s.unpin()
		return nil, err
	}
	if p != nil && planEpoch != s.epoch {
		p = nil // compiled against a base that was swapped out
	}
	if s.delta.empty() {
		var cur engine.Cursor
		if po, ok := inner.(planOpener); ok && p != nil {
			cur, err = po.OpenPlan(p, opts)
		} else {
			cur, err = inner.Open(q, opts)
		}
		if err != nil {
			s.unpin()
			return nil, err
		}
		return &pinnedCursor{Cursor: cur, s: s}, nil
	}
	if err := q.Validate(); err != nil {
		s.unpin()
		return nil, err
	}
	if sp := obs.SpanFrom(opts.Ctx); sp != nil {
		sp.SetAttr("overlay", true)
		sp.SetAttr("delta_size", s.delta.size())
	}
	return &pinnedCursor{Cursor: openOverlay(s, inner, q, p, opts), s: s}, nil
}

// pinnedCursor unpins its epoch state exactly once on Close, so compaction
// observability (StoreStats.PinnedReaders) tracks in-flight cursors.
type pinnedCursor struct {
	engine.Cursor
	s    *state
	once sync.Once
}

func (p *pinnedCursor) Close() error {
	err := p.Cursor.Close()
	p.once.Do(p.s.unpin)
	return err
}

var _ engine.Engine = (*Engine)(nil)
