package live_test

// FuzzPatch feeds arbitrary byte strings through the /update patch parser
// and, for every patch that parses, checks the subsystem's central
// invariant: applying the patch to a live store leaves an overlay identical
// to replaying the operations on a plain in-memory triple set (and the same
// again after a compaction swap). Malformed input must error, never panic;
// duplicate inserts, deletes of absent triples, and insert-then-delete
// within one batch all net correctly.

import (
	"strings"
	"testing"

	"repro/internal/live"
	"repro/internal/rdf"
	"repro/internal/store"
)

func fuzzBase() []rdf.Triple {
	return []rdf.Triple{
		tr("a", "p", "b"), tr("b", "p", "c"), tr("c", "p", "a"),
		tr("a", "q", "c"), tr("b", "q", "b"),
	}
}

// overlayKeys returns the overlay's decoded triple set rendered as
// N-Triples lines.
func overlayKeys(t *testing.T, ls *live.Store) map[string]bool {
	t.Helper()
	src := rebuildFromOverlay(t, ls)
	out := make(map[string]bool, src.NumTriples())
	d := src.Dict()
	for _, et := range src.Triples() {
		out[rdf.Triple{S: d.Decode(et.S), P: d.Decode(et.P), O: d.Decode(et.O)}.String()] = true
	}
	return out
}

func FuzzPatch(f *testing.F) {
	f.Add("+<http://x/a> <http://x/p> <http://x/b> .\n")
	f.Add("-<http://x/a> <http://x/p> <http://x/b> .\n")
	f.Add("<http://x/n1> <http://x/p> \"lit\"@en .\n-<http://x/b> <http://x/p> <http://x/c> .\n")
	f.Add("+<http://x/n> <http://x/p> <http://x/m> .\n-<http://x/n> <http://x/p> <http://x/m> .\n")
	f.Add("-<http://x/n> <http://x/p> <http://x/m> .\n+<http://x/n> <http://x/p> <http://x/m> .\n")
	f.Add("# comment\n\n+<http://x/a> <http://x/p> <http://x/b> .\n+<http://x/a> <http://x/p> <http://x/b> .\n")
	f.Add("+<http://x/a> <http://x/p> \"esc\\u0041\\n\" .\n")
	f.Add("garbage line\n")
	f.Add("+<http://x/a> <http://x/p> .\n")
	f.Add("-")
	f.Add("+")
	f.Add("<http://x/a> <http://x/p> <http://x/b> . trailing\n")
	f.Fuzz(func(t *testing.T, data string) {
		patch, err := live.ParsePatch(strings.NewReader(data))
		if err != nil {
			return // malformed input is rejected, not crashed on
		}
		base := fuzzBase()
		ls, err := live.NewStore(store.FromTriples(base), live.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ls.Apply(patch); err != nil {
			t.Fatalf("apply: %v", err)
		}

		// Replay the same operations on a plain set — the oracle.
		want := map[string]bool{}
		for _, tri := range base {
			want[tri.String()] = true
		}
		for _, op := range patch.Ops {
			if op.Delete {
				delete(want, op.Triple.String())
			} else {
				want[op.Triple.String()] = true
			}
		}

		compare := func(stage string) {
			got := overlayKeys(t, ls)
			if len(got) != len(want) {
				t.Fatalf("%s: overlay has %d triples, oracle %d\npatch:\n%s", stage, len(got), len(want), data)
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("%s: overlay missing %s\npatch:\n%s", stage, k, data)
				}
			}
			if n := ls.NumTriples(); n != len(want) {
				t.Fatalf("%s: NumTriples = %d, oracle %d", stage, n, len(want))
			}
		}
		compare("after apply")
		if _, err := ls.Compact(); err != nil {
			t.Fatalf("compact: %v", err)
		}
		compare("after compact")
	})
}
