package live

import (
	"context"
	"fmt"
	"io"

	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/store"
)

// The overlay evaluator implements the classic incremental-view-maintenance
// delta rules for conjunctive queries under bag semantics. Let B be the
// base triple set, D ⊆ B the tombstones, I the inserts (disjoint from B),
// B1 = B \ D and B2 = B1 ∪ I the overlay. For a BGP with patterns
// p_0..p_{k-1}:
//
//	Q(B1) = Q(B)  − Σ_i Q[p_j<i ← B1, p_i ← D, p_j>i ← B]
//	Q(B2) = Q(B1) + Σ_i Q[p_j<i ← B1, p_i ← I, p_j>i ← B2]
//
// Every correction term pins exactly one pattern to the (small) delta, so
// its cost is delta-bounded. The base term Q(B) streams from the wrapped
// engine's own cursor; the corrections are netted into a per-row count map
// and merged against that stream: rows with negative net are dropped as
// they pass, rows with positive net are appended. The merged multiset is
// exactly Q over a store rebuilt from the patched triple set; DISTINCT is
// applied after the merge (corrections need true multiplicities, so the
// base cursor is opened without DISTINCT), then Offset/MaxRows, matching
// the engine contract's ordering.

// src tags which triple set a pattern scans in one correction term.
type src uint8

const (
	srcBase     src = iota // B: the full base table
	srcBaseLive            // B1 = B \ D
	srcOverlay             // B2 = (B \ D) ∪ I
	srcIns                 // I
	srcDel                 // D
)

// corr is one projected row's net correction.
type corr struct {
	row []uint32
	n   int
}

// evaluator computes correction terms over one pinned state.
type evaluator struct {
	s    *state
	tick *engine.Ticker
}

// openOverlay returns the merged overlay cursor for q over the pinned state
// s, streaming the base term from inner. basePlan, when non-nil, is a plan
// for q compiled against s's base through the inner engine (only usable
// when q has no DISTINCT — the base stream must keep multiplicities).
func openOverlay(s *state, inner engine.Engine, q *query.BGP, basePlan *plan.Plan, opts engine.ExecOpts) engine.Cursor {
	produce := func(ctx context.Context, emit func([]uint32) error) error {
		ev := &evaluator{s: s, tick: engine.NewTicker(ctx)}
		net, err := ev.corrections(q)
		if err != nil {
			return err
		}
		cur, err := openBase(s, inner, q, basePlan, engine.ExecOpts{Ctx: ctx, Workers: opts.Workers})
		if err != nil {
			return err
		}
		defer cur.Close()

		var dedup map[string]bool
		if q.Distinct {
			dedup = map[string]bool{}
		}
		out := func(row []uint32) error {
			if dedup != nil {
				k := engine.RowKey(row)
				if dedup[k] {
					return nil
				}
				dedup[k] = true
			}
			return emit(row)
		}
		for {
			row, err := cur.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			if len(net) > 0 {
				if c := net[engine.RowKey(row)]; c != nil && c.n < 0 {
					c.n++ // a tombstone consumed this occurrence
					continue
				}
			}
			if err := out(row); err != nil {
				return err
			}
		}
		for _, c := range net {
			if c.n < 0 {
				// Mathematically impossible when base ≡ corrections; if it
				// happens the wrapped engine produced a wrong multiset.
				return fmt.Errorf("live: overlay correction underflow (%d unmatched deletions for one row) — wrapped engine produced an inconsistent base multiset", -c.n)
			}
			for i := 0; i < c.n; i++ {
				if err := out(append([]uint32(nil), c.row...)); err != nil {
					return err
				}
			}
		}
		return nil
	}
	cur := engine.NewGenerator(opts.Ctx, q.Select, produce)
	return engine.Limit(cur, opts.Offset, opts.MaxRows)
}

// openBase starts the Q(B) stream: through the compiled plan when one is
// usable, else through the inner engine's own Open. DISTINCT is stripped —
// the merge needs the base multiset — and caps/offsets stay at the merge
// layer.
func openBase(s *state, inner engine.Engine, q *query.BGP, basePlan *plan.Plan, opts engine.ExecOpts) (engine.Cursor, error) {
	if q.Distinct {
		return inner.Open(s.base.bareClone(q), opts)
	}
	if basePlan != nil {
		if po, ok := inner.(planOpener); ok {
			return po.OpenPlan(basePlan, opts)
		}
	}
	return inner.Open(q, opts)
}

// bareCloneCap bounds the interned DISTINCT-stripped clones per base: the
// server's plan-cache churn mints fresh normalized BGP pointers, and an
// epoch can live a long time between compactions, so the intern map must
// not grow without bound. Past the cap clones are returned uncached (the
// inner engine replans that execution — correct, just slower).
const bareCloneCap = 1024

// bareClone returns q with DISTINCT stripped, interned per base so the
// inner engine's per-pointer plan cache still hits across requests.
func (b *baseRef) bareClone(q *query.BGP) *query.BGP {
	b.engMu.Lock()
	defer b.engMu.Unlock()
	if c, ok := b.noDistinct[q]; ok {
		return c
	}
	c := *q
	c.Distinct = false
	if b.noDistinct == nil {
		b.noDistinct = map[*query.BGP]*query.BGP{}
	}
	if len(b.noDistinct) < bareCloneCap {
		b.noDistinct[q] = &c
	}
	return &c
}

// corrections nets every correction term for q into a per-row map keyed by
// the projected row.
func (ev *evaluator) corrections(q *query.BGP) (map[string]*corr, error) {
	net := map[string]*corr{}
	d := ev.s.delta
	k := len(q.Patterns)
	accumulate := func(sign int) func(row []uint32) error {
		return func(row []uint32) error {
			key := engine.RowKey(row)
			c := net[key]
			if c == nil {
				c = &corr{row: row}
				net[key] = c
			}
			c.n += sign
			return nil
		}
	}
	if len(d.del) > 0 {
		for i := 0; i < k; i++ {
			srcs := make([]src, k)
			for j := range srcs {
				switch {
				case j < i:
					srcs[j] = srcBaseLive
				case j == i:
					srcs[j] = srcDel
				default:
					srcs[j] = srcBase
				}
			}
			if err := ev.enumerate(q, srcs, accumulate(-1)); err != nil {
				return nil, err
			}
		}
	}
	if len(d.ins) > 0 {
		for i := 0; i < k; i++ {
			srcs := make([]src, k)
			for j := range srcs {
				switch {
				case j < i:
					srcs[j] = srcBaseLive
				case j == i:
					srcs[j] = srcIns
				default:
					srcs[j] = srcOverlay
				}
			}
			if err := ev.enumerate(q, srcs, accumulate(+1)); err != nil {
				return nil, err
			}
		}
	}
	return net, nil
}

// patSrc is one pattern with its term's source assignment.
type patSrc struct {
	pat query.Pattern
	src src
}

// enumerate backtracks over one correction term, yielding every projected
// solution row (with multiplicity).
func (ev *evaluator) enumerate(q *query.BGP, srcs []src, yield func(row []uint32) error) error {
	ps := make([]patSrc, len(q.Patterns))
	for i, p := range q.Patterns {
		ps[i] = patSrc{pat: p, src: srcs[i]}
	}
	b := map[string]uint32{}
	return ev.solve(ps, b, func() error {
		row := make([]uint32, len(q.Select))
		for i, v := range q.Select {
			row[i] = b[v]
		}
		return yield(row)
	})
}

// candList is one candidate slice; skipDel filters tombstoned triples out
// (the B1/B2 views of the base table).
type candList struct {
	ts      []store.Triple
	skipDel bool
}

// resolved is a pattern's three positions resolved under current bindings:
// per position the fixed value (when bound) and, overall, whether a
// constant term failed dictionary lookup (no match possible).
type resolved struct {
	v     [3]uint32
	bound [3]bool
	ok    bool
}

func (ev *evaluator) resolve(p query.Pattern, b map[string]uint32) resolved {
	var r resolved
	r.ok = true
	for i, n := range [3]query.Node{p.S, p.P, p.O} {
		if n.IsVar {
			if v, bound := b[n.Var]; bound {
				r.v[i], r.bound[i] = v, true
			}
			continue
		}
		id, ok := ev.s.base.st.Dict().Lookup(n.Term)
		if !ok {
			r.ok = false
			return r
		}
		r.v[i], r.bound[i] = id, true
	}
	return r
}

// candidates returns the candidate lists for one source-tagged pattern
// under the current bindings, plus their summed length (an upper bound used
// by the greedy pattern ordering). ok=false prunes the branch (a constant
// is absent from the data).
func (ev *evaluator) candidates(ps patSrc, b map[string]uint32) (lists []candList, size int, ok bool) {
	r := ev.resolve(ps.pat, b)
	if !r.ok {
		return nil, 0, false
	}
	d := ev.s.delta
	switch ps.src {
	case srcBase:
		lists = []candList{{ts: ev.s.base.index().pick(r.v, r.bound)}}
	case srcBaseLive:
		lists = []candList{{ts: ev.s.base.index().pick(r.v, r.bound), skipDel: true}}
	case srcOverlay:
		lists = []candList{
			{ts: ev.s.base.index().pick(r.v, r.bound), skipDel: true},
			{ts: d.insIdx.pick(r.v, r.bound)},
		}
	case srcIns:
		lists = []candList{{ts: d.insIdx.pick(r.v, r.bound)}}
	case srcDel:
		lists = []candList{{ts: d.delIdx.pick(r.v, r.bound)}}
	}
	for _, l := range lists {
		size += len(l.ts)
	}
	return lists, size, true
}

// solve expands the remaining patterns cheapest-first (the delta-pinned
// pattern's list is tiny, so it naturally goes first), binding variables
// with backtracking exactly like the naive oracle.
func (ev *evaluator) solve(remaining []patSrc, b map[string]uint32, leaf func() error) error {
	if len(remaining) == 0 {
		return leaf()
	}
	bestIdx := -1
	var bestLists []candList
	bestSize := 0
	for i, ps := range remaining {
		lists, size, ok := ev.candidates(ps, b)
		if !ok || size == 0 {
			return nil // no matches down this branch
		}
		if bestIdx < 0 || size < bestSize {
			bestIdx, bestLists, bestSize = i, lists, size
		}
	}
	ps := remaining[bestIdx]
	rest := make([]patSrc, 0, len(remaining)-1)
	rest = append(rest, remaining[:bestIdx]...)
	rest = append(rest, remaining[bestIdx+1:]...)
	r := ev.resolve(ps.pat, b)
	delSet := ev.s.delta.delSet
	for _, cl := range bestLists {
		for _, t := range cl.ts {
			if err := ev.tick.Check(); err != nil {
				return err
			}
			if cl.skipDel {
				if _, dead := delSet[t]; dead {
					continue
				}
			}
			if r.bound[0] && t.S != r.v[0] || r.bound[1] && t.P != r.v[1] || r.bound[2] && t.O != r.v[2] {
				continue
			}
			// Bind free variables, honouring repeated variables within the
			// pattern (?x p ?x).
			var undo []string
			ok := true
			for _, pos := range [3]struct {
				n query.Node
				v uint32
			}{{ps.pat.S, t.S}, {ps.pat.P, t.P}, {ps.pat.O, t.O}} {
				if !pos.n.IsVar {
					continue
				}
				if bound, exists := b[pos.n.Var]; exists {
					if bound != pos.v {
						ok = false
						break
					}
					continue
				}
				b[pos.n.Var] = pos.v
				undo = append(undo, pos.n.Var)
			}
			var err error
			if ok {
				err = ev.solve(rest, b, leaf)
			}
			for _, v := range undo {
				delete(b, v)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}
