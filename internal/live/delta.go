package live

import (
	"repro/internal/dict"
	"repro/internal/rdf"
	"repro/internal/store"
)

// delta is one immutable snapshot of the mutable overlay relative to a base
// store, kept in fully netted form:
//
//   - ins holds triples present in the overlay but absent from the base;
//   - del holds base triples currently deleted (tombstones).
//
// The two are disjoint by construction (a tombstoned triple is in the base,
// an inserted one is not), so the overlay is exactly (base \ del) ∪ ins and
// re-inserting a tombstoned triple just clears its tombstone. Writers build
// a new delta per applied patch under the live store's writer lock; readers
// share snapshots freely and never see a half-applied patch.
type delta struct {
	ins, del []store.Triple
	insSet   map[store.Triple]struct{}
	delSet   map[store.Triple]struct{}
	insIdx   *tripleIndex
	delIdx   *tripleIndex
}

func emptyDelta() *delta {
	return &delta{
		insSet: map[store.Triple]struct{}{},
		delSet: map[store.Triple]struct{}{},
		insIdx: indexTriples(nil),
		delIdx: indexTriples(nil),
	}
}

func (d *delta) empty() bool { return len(d.ins) == 0 && len(d.del) == 0 }

// size returns the number of pending operations (inserts + tombstones).
func (d *delta) size() int { return len(d.ins) + len(d.del) }

// ApplyResult reports one patch's effect. Counts are per operation, in
// order: an insert-then-delete of the same absent triple within one batch
// counts one Inserted and one Deleted and leaves the overlay unchanged.
type ApplyResult struct {
	// Inserted counts operations that made an absent triple present.
	Inserted int
	// Deleted counts operations that made a present triple absent.
	Deleted int
	// Noops counts operations without effect: duplicate inserts, deletes of
	// absent triples.
	Noops int
	// DeltaInserts and DeltaTombstones are the delta's netted sizes after
	// the patch.
	DeltaInserts    int
	DeltaTombstones int
	// Epoch is the base epoch the patch landed on.
	Epoch uint64
}

// apply nets patch into a fresh delta snapshot. baseHas answers membership
// in the immutable base. Encoding new terms goes through d's (concurrency-
// safe) dictionary; deletes resolve terms with Lookup only, so deleting
// never grows the dictionary.
func (d *delta) apply(patch Patch, dc *dict.Dictionary, baseHas func(store.Triple) bool) (*delta, ApplyResult) {
	ins := make(map[store.Triple]struct{}, len(d.insSet)+len(patch.Ops))
	for t := range d.insSet {
		ins[t] = struct{}{}
	}
	del := make(map[store.Triple]struct{}, len(d.delSet)+len(patch.Ops))
	for t := range d.delSet {
		del[t] = struct{}{}
	}
	var res ApplyResult
	var addedIns, addedDel []store.Triple
	for _, op := range patch.Ops {
		if op.Delete {
			t, ok := lookupTriple(dc, op.Triple)
			if !ok {
				res.Noops++ // a term is not even in the dictionary: absent
				continue
			}
			if _, present := ins[t]; present {
				delete(ins, t)
				res.Deleted++
				continue
			}
			if _, dead := del[t]; !dead && baseHas(t) {
				del[t] = struct{}{}
				addedDel = append(addedDel, t)
				res.Deleted++
				continue
			}
			res.Noops++
			continue
		}
		s, p, o := dc.EncodeTriple(op.Triple)
		t := store.Triple{S: s, P: p, O: o}
		if _, dead := del[t]; dead {
			delete(del, t)
			res.Inserted++
			continue
		}
		if baseHas(t) {
			res.Noops++ // present in the base and not tombstoned
			continue
		}
		if _, present := ins[t]; present {
			res.Noops++
			continue
		}
		ins[t] = struct{}{}
		addedIns = append(addedIns, t)
		res.Inserted++
	}
	nd := &delta{
		ins:    keepOrder(d.ins, ins, addedIns),
		del:    keepOrder(d.del, del, addedDel),
		insSet: ins,
		delSet: del,
	}
	nd.insIdx = indexTriples(nd.ins)
	nd.delIdx = indexTriples(nd.del)
	res.DeltaInserts = len(nd.ins)
	res.DeltaTombstones = len(nd.del)
	return nd, res
}

// keepOrder rebuilds a delta slice deterministically: survivors of the old
// slice in their old order, then this patch's surviving additions in
// operation order (an addition revoked — or re-made — later in the same
// batch must not appear, or appear twice).
func keepOrder(old []store.Triple, now map[store.Triple]struct{}, added []store.Triple) []store.Triple {
	out := make([]store.Triple, 0, len(now))
	seen := make(map[store.Triple]struct{}, len(now))
	for _, t := range old {
		if _, ok := now[t]; ok {
			out = append(out, t)
			seen[t] = struct{}{}
		}
	}
	for _, t := range added {
		if _, ok := now[t]; !ok {
			continue
		}
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// lookupTriple resolves a parsed triple against the dictionary without
// assigning new ids; ok is false when any term is unregistered (the triple
// cannot be present anywhere).
func lookupTriple(dc *dict.Dictionary, t rdf.Triple) (store.Triple, bool) {
	s, ok := dc.Lookup(t.S)
	if !ok {
		return store.Triple{}, false
	}
	p, ok := dc.Lookup(t.P)
	if !ok {
		return store.Triple{}, false
	}
	o, ok := dc.Lookup(t.O)
	if !ok {
		return store.Triple{}, false
	}
	return store.Triple{S: s, P: p, O: o}, true
}

// tripleIndex is a small hash index over an encoded triple slice: the
// overlay evaluator's scan structure for delta slices and (lazily, once per
// epoch) the base table. It mirrors the naive engine's candidate indexes —
// the overlay correction terms always touch at least one delta-sized list,
// so obviously-correct hash scans are fast enough.
type tripleIndex struct {
	all []store.Triple
	byS map[uint32][]store.Triple
	byP map[uint32][]store.Triple
	byO map[uint32][]store.Triple
}

func indexTriples(ts []store.Triple) *tripleIndex {
	idx := &tripleIndex{
		all: ts,
		byS: make(map[uint32][]store.Triple),
		byP: make(map[uint32][]store.Triple),
		byO: make(map[uint32][]store.Triple),
	}
	for _, t := range ts {
		idx.byS[t.S] = append(idx.byS[t.S], t)
		idx.byP[t.P] = append(idx.byP[t.P], t)
		idx.byO[t.O] = append(idx.byO[t.O], t)
	}
	return idx
}

// pick returns the cheapest candidate list for a pattern whose bound
// positions are given (value + bound flag per position).
func (idx *tripleIndex) pick(v [3]uint32, bound [3]bool) []store.Triple {
	best := idx.all
	if bound[0] {
		if l := idx.byS[v[0]]; len(l) < len(best) {
			best = l
		}
	}
	if bound[1] {
		if l := idx.byP[v[1]]; len(l) < len(best) {
			best = l
		}
	}
	if bound[2] {
		if l := idx.byO[v[2]]; len(l) < len(best) {
			best = l
		}
	}
	return best
}
