package live_test

// The overlay conformance suite: every registered engine, wrapped by
// live.Engine over a base-plus-delta store (sharded and unsharded), must
//
//	(a) be Collect-identical to a store rebuilt from scratch over the
//	    patched triple set (LUBM plus star/path/triangle shapes, DISTINCT
//	    included),
//	(b) keep the full cursor contract on the overlay path: pre-cancelled
//	    contexts fail promptly, mid-enumeration cancellation stops within a
//	    bounded number of rows, MaxRows/Offset are exact, and early Close
//	    does not leak the producer.
//
// The delta is always non-empty in these tests, so the correction-merge
// path (not the empty-delta pass-through) is what is being exercised.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/engines"
	"repro/internal/live"
	"repro/internal/lubm"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/store"
)

// conformanceOverlay builds a complete-digraph live store where part of the
// graph arrives via delta inserts and part of the base is tombstoned: the
// triangle query exercises joins that cross base and delta triples in every
// combination.
func conformanceOverlay(t *testing.T, n, shards int) *live.Store {
	t.Helper()
	p := rdf.NewIRI("http://c/p")
	node := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://c/n%d", i)) }
	var base, held, dead []rdf.Triple
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			tr := rdf.Triple{S: node(i), P: p, O: node(j)}
			switch {
			case (i+j)%17 == 0:
				held = append(held, tr) // arrives later via the delta
			default:
				base = append(base, tr)
				if (i*j)%23 == 1 {
					dead = append(dead, tr) // tombstoned base triple
				}
			}
		}
	}
	ls, err := live.NewStore(store.FromTriples(base), live.Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ls.Insert(held); err != nil {
		t.Fatal(err)
	}
	if _, err := ls.Delete(dead); err != nil {
		t.Fatal(err)
	}
	if ins, del := ls.DeltaSize(); ins == 0 || del == 0 {
		t.Fatalf("conformance overlay needs a two-sided delta, got ins=%d del=%d", ins, del)
	}
	return ls
}

const overlayTriangle = `SELECT ?x ?y ?z WHERE { ?x <http://c/p> ?y . ?y <http://c/p> ?z . ?x <http://c/p> ?z }`

// forEachLiveEngine runs f once per registered engine wrapped over ls.
func forEachLiveEngine(t *testing.T, ls *live.Store, f func(t *testing.T, e *live.Engine)) {
	t.Helper()
	for _, name := range engines.Names() {
		le, err := engines.NewLive(name, ls)
		if err != nil {
			t.Fatalf("engines.NewLive(%s): %v", name, err)
		}
		t.Run(name, func(t *testing.T) { f(t, le) })
	}
}

func shardCounts() []int { return []int{1, 3} }

// TestOverlayConformanceShapes: star, path, object-object, triangle, and
// variable-predicate shapes over a base+delta graph must match the rebuilt
// store for every engine, sharded and unsharded.
func TestOverlayConformanceShapes(t *testing.T) {
	queries := []string{
		`SELECT ?a ?b WHERE { ?a <http://c/p> ?b }`,
		`SELECT ?a ?b ?c WHERE { ?a <http://c/p> ?b . ?a <http://c/p> ?c }`,
		`SELECT ?a ?b ?c WHERE { ?a <http://c/p> ?b . ?b <http://c/p> ?c }`,
		`SELECT ?a ?b WHERE { ?a <http://c/p> <http://c/n3> . ?b <http://c/p> <http://c/n3> }`,
		overlayTriangle,
		`SELECT DISTINCT ?y WHERE { ?x <http://c/p> ?y . ?y <http://c/p> ?x }`,
		`SELECT ?s ?o WHERE { ?s ?pr ?o . ?o <http://c/p> <http://c/n0> }`,
	}
	for _, shards := range shardCounts() {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			ls := conformanceOverlay(t, 12, shards)
			overlayEquals(t, ls, queries...)
		})
	}
}

// TestOverlayConformanceLUBM: the paper's benchmark queries over a patched
// LUBM scale-1 dataset — deletes knocked out of the base, inserts rewired
// from existing vocabulary plus brand-new entities — must match a rebuilt
// store for every engine, sharded and unsharded.
func TestOverlayConformanceLUBM(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	scale := 1
	for _, shards := range shardCounts() {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			base := store.FromTriples(lubm.Generate(lubm.Config{Universities: scale}))
			ls, err := live.NewStore(base, live.Options{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			applyLUBMPatch(t, ls, base)
			queries := make([]string, 0, len(lubm.QueryNumbers))
			for _, qn := range lubm.QueryNumbers {
				queries = append(queries, lubm.Query(qn, scale))
			}
			overlayEquals(t, ls, queries...)
		})
	}
}

// applyLUBMPatch perturbs a LUBM dataset: every 97th base triple is
// deleted, and for every predicate a "rewired" triple (first subject, last
// object) plus a triple introducing a brand-new entity is inserted.
func applyLUBMPatch(t *testing.T, ls *live.Store, base *store.Store) {
	t.Helper()
	d := base.Dict()
	var dels, inss []rdf.Triple
	for i, et := range base.Triples() {
		if i%97 == 0 {
			dels = append(dels, rdf.Triple{S: d.Decode(et.S), P: d.Decode(et.P), O: d.Decode(et.O)})
		}
	}
	for _, p := range base.Predicates() {
		rel := base.Relation(p)
		if rel.Len() < 2 {
			continue
		}
		pred := d.Decode(p)
		inss = append(inss,
			// Rewire: connects existing entities that were not connected.
			rdf.Triple{S: d.Decode(rel.S[0]), P: pred, O: d.Decode(rel.O[rel.Len()-1])},
			// A brand-new entity entering the graph through this predicate.
			rdf.Triple{S: rdf.NewIRI(fmt.Sprintf("http://live-test/new%d", p)), P: pred, O: d.Decode(rel.O[0])},
		)
	}
	if _, err := ls.Delete(dels); err != nil {
		t.Fatal(err)
	}
	if _, err := ls.Insert(inss); err != nil {
		t.Fatal(err)
	}
	if ins, del := ls.DeltaSize(); ins == 0 || del == 0 {
		t.Fatalf("LUBM patch produced a one-sided delta: ins=%d del=%d", ins, del)
	}
}

// TestOverlayPreCancelled: with a pending delta, an already-cancelled
// context must surface promptly from Open or the first Next.
func TestOverlayPreCancelled(t *testing.T) {
	for _, shards := range shardCounts() {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			ls := conformanceOverlay(t, 12, shards)
			q := query.MustParseSPARQL(overlayTriangle)
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			forEachLiveEngine(t, ls, func(t *testing.T, e *live.Engine) {
				start := time.Now()
				cur, err := e.Open(q, engine.ExecOpts{Ctx: ctx})
				if err == nil {
					_, err = cur.Next()
					cur.Close()
				}
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("err = %v, want context.Canceled", err)
				}
				if d := time.Since(start); d > time.Second {
					t.Fatalf("pre-cancelled open took %v", d)
				}
			})
		})
	}
}

// TestOverlayCancelMidEnumeration: cancelling mid-stream on the overlay
// path must stop the merge producer (and the wrapped engine's cursor
// beneath it) within a bounded number of rows.
func TestOverlayCancelMidEnumeration(t *testing.T) {
	ls := conformanceOverlay(t, 48, 1) // ~100k triangle rows if run to completion
	q := query.MustParseSPARQL(overlayTriangle)
	forEachLiveEngine(t, ls, func(t *testing.T, e *live.Engine) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		cur, err := e.Open(q, engine.ExecOpts{Ctx: ctx})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		defer cur.Close()
		for i := 0; i < 10; i++ {
			if _, err := cur.Next(); err != nil {
				t.Fatalf("row %d: %v", i, err)
			}
		}
		cancel()
		const bound = 20000
		rowsAfter := 0
		deadline := time.After(10 * time.Second)
		for {
			select {
			case <-deadline:
				t.Fatalf("cursor did not observe cancellation within 10s (%d rows drained)", rowsAfter)
			default:
			}
			_, err := cur.Next()
			if errors.Is(err, context.Canceled) {
				return
			}
			if err != nil {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			rowsAfter++
			if rowsAfter > bound {
				t.Fatalf("more than %d rows after cancellation — producer did not stop", bound)
			}
		}
	})
}

// TestOverlayExactTruncationAndOffset: MaxRows stays exact and Offset
// skips without changing the tail, on the correction-merge path.
func TestOverlayExactTruncationAndOffset(t *testing.T) {
	for _, shards := range shardCounts() {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			ls := conformanceOverlay(t, 10, shards)
			q := query.MustParseSPARQL(overlayTriangle)
			// Ground truth from the rebuilt store's naive oracle.
			rebuilt := rebuildFromOverlay(t, ls)
			oracle, err := engines.New("naive", rebuilt)
			if err != nil {
				t.Fatal(err)
			}
			want, err := engine.Collect(oracle.Open(q, engine.ExecOpts{}))
			if err != nil {
				t.Fatal(err)
			}
			total := want.Len()
			if total < 10 {
				t.Fatalf("conformance graph too sparse: %d triangle rows", total)
			}
			forEachLiveEngine(t, ls, func(t *testing.T, e *live.Engine) {
				exact, err := engine.Collect(e.Open(q, engine.ExecOpts{MaxRows: total}))
				if err != nil {
					t.Fatal(err)
				}
				if exact.Len() != total || exact.Truncated {
					t.Fatalf("exact cap: rows=%d truncated=%v, want %d/false", exact.Len(), exact.Truncated, total)
				}
				capped, err := engine.Collect(e.Open(q, engine.ExecOpts{MaxRows: total - 1}))
				if err != nil {
					t.Fatal(err)
				}
				if capped.Len() != total-1 || !capped.Truncated {
					t.Fatalf("cap-1: rows=%d truncated=%v, want %d/true", capped.Len(), capped.Truncated, total-1)
				}
				shifted, err := engine.Collect(e.Open(q, engine.ExecOpts{Offset: total - 5}))
				if err != nil {
					t.Fatal(err)
				}
				if shifted.Len() != 5 || shifted.Truncated {
					t.Fatalf("offset: rows=%d truncated=%v, want 5/false", shifted.Len(), shifted.Truncated)
				}
			})
		})
	}
}

// TestOverlayEarlyCloseStopsProducer: closing an overlay cursor early must
// stop the merge producer and the wrapped cursor beneath it; a rerun on the
// same engine still works, and pins drain to zero.
func TestOverlayEarlyCloseStopsProducer(t *testing.T) {
	ls := conformanceOverlay(t, 12, 1)
	q := query.MustParseSPARQL(overlayTriangle)
	forEachLiveEngine(t, ls, func(t *testing.T, e *live.Engine) {
		cur, err := e.Open(q, engine.ExecOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cur.Next(); err != nil {
			t.Fatal(err)
		}
		if err := cur.Close(); err != nil {
			t.Fatal(err)
		}
		if err := cur.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := cur.Next(); err != io.EOF {
			t.Fatalf("Next after Close = %v, want io.EOF", err)
		}
		full, err := engine.Collect(e.Open(q, engine.ExecOpts{}))
		if err != nil {
			t.Fatal(err)
		}
		if full.Len() == 0 {
			t.Fatal("rerun after early close returned nothing")
		}
	})
	if pins := ls.Stats().PinnedReaders; pins != 0 {
		t.Fatalf("%d cursors still pinned after all closes", pins)
	}
}
