// Package live is the write path of this repository: a mutable delta
// overlay over the immutable, fully-indexed base store every engine was
// built for, plus epoch-swapped compaction — the differential-update
// pattern read-optimized RDF systems (RDF-3X's differential indexing, the
// survey's "delta store" designs) use to take writes without giving up
// query speed.
//
// # Model
//
// A Store holds an atomically swappable state: an immutable base
// (*store.Store, optionally partitioned into shards), and an immutable
// netted delta (inserted triples absent from the base, tombstones over base
// triples). The visible dataset is always overlay = (base \ tombstones) ∪
// inserts. Writers (Apply/Insert/Delete) build a new delta snapshot under a
// writer lock and publish it with one pointer store; readers never block
// and never observe a half-applied patch.
//
// Engine wraps any registered engine so the full Open(q, ExecOpts) → Cursor
// contract works over the overlay: while the delta is empty, queries pass
// straight through to the base engine (zero overhead); otherwise the base
// engine's streaming cursor is merged with delta corrections computed by
// the classic incremental-view-maintenance delta rules (each correction
// term pins one pattern to the small delta), so base + corrections is
// Collect-identical to a store rebuilt from the patched triple set — for
// every engine, including the scatter-gather shard engine, with exact
// DISTINCT/Offset/MaxRows semantics preserved.
//
// Compact drains the delta into a freshly assembled base (re-partitioned
// when sharded) and swaps it in under a bumped epoch counter. In-flight
// cursors pin the state they opened against and finish on it; there is no
// stop-the-world. The epoch is the invalidation signal for anything
// compiled against base statistics (the server keys its plan cache by it).
package live

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dict"
	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/shard"
	"repro/internal/store"
)

// Options parameterizes a live Store.
type Options struct {
	// Shards, when > 1, partitions every epoch's base into that many
	// subject-hash shards (internal/shard); engines built through this
	// store then execute by scatter-gather. Compaction re-partitions the
	// fresh base before the swap.
	Shards int
}

// Durability receives the write-path events a durable backend must
// persist. internal/durable implements it over a write-ahead log and
// segment files; the interface lives here (with live's own types) so the
// log and segment layers need not import this package.
//
// Both methods are invoked under the store's writer lock and must not call
// back into the Store.
type Durability interface {
	// LogPatch is called with each effective patch before its delta is
	// published. If it returns an error the patch is NOT applied — the
	// overlay never runs ahead of the log.
	LogPatch(p Patch) error
	// Compacted is called after a compaction swapped in a new base under
	// epoch. The implementation persists the base and only then truncates
	// the log; on error the log is kept, so old-base + log still
	// reconstructs the current state.
	Compacted(base *store.Store, epoch uint64) error
}

// Store is a read-write overlay over an immutable base store. Create with
// NewStore; build engines over it with NewEngine (or the registry's
// NewLive). All methods are safe for concurrent use; writers serialize
// against each other, readers never block.
type Store struct {
	opts Options
	dict *dict.Dictionary

	mu  sync.Mutex // serializes writers: Apply, Compact, SetShards
	dur Durability // guarded by mu; nil when the store is not durable
	cur atomic.Pointer[state]

	// snapMu serializes SnapshotTo writers, and lastSnapEpoch guards
	// against epoch regression: with two overlapping compact+persist
	// sequences (an explicit /compact racing the background compactor), a
	// slow older write must not rename over a newer epoch's snapshot.
	snapMu        sync.Mutex
	lastSnapEpoch uint64 // guarded by snapMu

	compactions        atomic.Uint64
	lastCompactNanos   atomic.Int64
	lastCompactDrained atomic.Int64
}

// state is one immutable snapshot: a base epoch plus one delta version.
// Cursors pin the state they opened against, so a compaction swap never
// invalidates in-flight reads. The pin counter lives on the baseRef —
// shared by every delta version over one base — so applying a patch does
// not drop in-flight same-epoch cursors from the count.
type state struct {
	epoch uint64
	base  *baseRef
	delta *delta
}

// baseRef is one base store plus everything derived from it: the optional
// shard partition, lazily built engines (shared by every delta snapshot
// over this base — applying a patch must not rebuild rdf3x's six indexes),
// and the overlay evaluator's lazy structures.
type baseRef struct {
	st   *store.Store
	part *shard.Partitioned // non-nil when sharded

	pins atomic.Int64 // in-flight cursors over this base

	idxOnce sync.Once
	idx     *tripleIndex // hash index over the base table, for corrections

	setOnce sync.Once
	set     map[store.Triple]struct{} // base membership, for the write path

	engMu      sync.Mutex
	engines    map[string]*engineSlot
	noDistinct map[*query.BGP]*query.BGP // interned DISTINCT-stripped query clones
}

type engineSlot struct {
	once sync.Once
	eng  engine.Engine
	err  error
}

func newBaseRef(st *store.Store, shards int) (*baseRef, error) {
	b := &baseRef{st: st}
	if shards > 1 {
		p, err := shard.Partition(st, shards)
		if err != nil {
			return nil, err
		}
		b.part = p
	}
	return b, nil
}

// engine returns the cached inner engine for name, building it on first use
// (over the shard partition when present).
func (b *baseRef) engine(name string, build BuildFunc) (engine.Engine, error) {
	b.engMu.Lock()
	if b.engines == nil {
		b.engines = map[string]*engineSlot{}
	}
	sl := b.engines[name]
	if sl == nil {
		sl = &engineSlot{}
		b.engines[name] = sl
	}
	b.engMu.Unlock()
	sl.once.Do(func() { sl.eng, sl.err = build(b.st, b.part) })
	return sl.eng, sl.err
}

// index returns the base table's hash index, building it once per epoch on
// first overlay query.
func (b *baseRef) index() *tripleIndex {
	b.idxOnce.Do(func() { b.idx = indexTriples(b.st.Triples()) })
	return b.idx
}

// tripleSet returns base membership, building it once per epoch on first
// write.
func (b *baseRef) tripleSet() map[store.Triple]struct{} {
	b.setOnce.Do(func() {
		ts := b.st.Triples()
		b.set = make(map[store.Triple]struct{}, len(ts))
		for _, t := range ts {
			b.set[t] = struct{}{}
		}
	})
	return b.set
}

// NewStore wraps base in a live overlay store. The base's dictionary
// becomes the shared, append-only dictionary for all future writes and
// epochs.
func NewStore(base *store.Store, opts Options) (*Store, error) {
	ref, err := newBaseRef(base, opts.Shards)
	if err != nil {
		return nil, fmt.Errorf("live: %w", err)
	}
	ls := &Store{opts: opts, dict: base.Dict()}
	ls.cur.Store(&state{epoch: 0, base: ref, delta: emptyDelta()})
	return ls, nil
}

// pin loads the current state and marks one in-flight reader on its base.
func (ls *Store) pin() *state {
	s := ls.cur.Load()
	s.base.pins.Add(1)
	return s
}

func (s *state) unpin() { s.base.pins.Add(-1) }

// Dict returns the shared dictionary (append-only, concurrency-safe).
func (ls *Store) Dict() *dict.Dictionary { return ls.dict }

// Base returns the current epoch's immutable base store. Pending delta
// operations are not reflected in it; use NumTriples for the overlay count.
func (ls *Store) Base() *store.Store { return ls.cur.Load().base.st }

// Part returns the current epoch's shard partition, or nil when unsharded.
func (ls *Store) Part() *shard.Partitioned { return ls.cur.Load().base.part }

// Epoch returns the current epoch: it increments on every base swap
// (Compact, SetShards), not on delta writes.
func (ls *Store) Epoch() uint64 { return ls.cur.Load().epoch }

// Shards returns the shard count (1 when unpartitioned).
func (ls *Store) Shards() int {
	if p := ls.cur.Load().base.part; p != nil {
		return p.NumShards()
	}
	return 1
}

// DeltaSize returns the netted delta sizes: pending inserts and tombstones.
func (ls *Store) DeltaSize() (inserts, tombstones int) {
	d := ls.cur.Load().delta
	return len(d.ins), len(d.del)
}

// NumTriples returns the overlay's triple count: base minus tombstones plus
// inserts.
func (ls *Store) NumTriples() int {
	s := ls.cur.Load()
	return s.base.st.NumTriples() - len(s.delta.del) + len(s.delta.ins)
}

// SetDurability attaches a durable backend: every subsequent effective
// patch is logged through d before it becomes visible, and every compaction
// is reported after its swap. Attach after boot-time replay (replayed
// patches flow through Apply and must not be re-logged). Pass nil to
// detach.
func (ls *Store) SetDurability(d Durability) {
	ls.mu.Lock()
	ls.dur = d
	ls.mu.Unlock()
}

// Apply nets one patch into the overlay and publishes the new delta
// atomically. Concurrent queries see either the whole patch or none of it.
// On a durable store the patch is logged (and, depending on the fsync
// policy, made stable) before publication; a logging failure leaves the
// overlay unchanged.
func (ls *Store) Apply(p Patch) (ApplyResult, error) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	s := ls.cur.Load()
	set := s.base.tripleSet()
	nd, res := s.delta.apply(p, ls.dict, func(t store.Triple) bool {
		_, ok := set[t]
		return ok
	})
	res.Epoch = s.epoch
	if ls.dur != nil && res.Inserted+res.Deleted > 0 {
		// Log before publish — write-ahead. All-noop patches skip the log:
		// they change nothing, so replay does not need them.
		if err := ls.dur.LogPatch(p); err != nil {
			return ApplyResult{}, fmt.Errorf("live: logging patch: %w", err)
		}
	}
	ls.cur.Store(&state{epoch: s.epoch, base: s.base, delta: nd})
	return res, nil
}

// Insert adds triples to the overlay, returning how many were actually
// absent before.
func (ls *Store) Insert(ts []rdf.Triple) (int, error) {
	res, err := ls.Apply(InsertAll(ts))
	return res.Inserted, err
}

// Delete removes triples from the overlay (tombstoning base triples),
// returning how many were actually present before.
func (ls *Store) Delete(ts []rdf.Triple) (int, error) {
	res, err := ls.Apply(DeleteAll(ts))
	return res.Deleted, err
}

// CompactStats reports one compaction.
type CompactStats struct {
	// Epoch is the epoch after the compaction (unchanged if the delta was
	// already empty and no swap happened).
	Epoch uint64
	// Drained is the number of delta operations folded into the new base.
	Drained int
	// Duration is how long materializing and indexing the new base took.
	Duration time.Duration
	// Swapped reports whether a new base was actually published.
	Swapped bool
}

// Compact drains the delta into a freshly assembled base store (and shard
// partition, when sharded) and atomically swaps it in under the next epoch.
// Queries running during the compaction keep their pinned state and are
// never blocked or invalidated; new queries pick up the new epoch on their
// next Open. An empty delta is a no-op. Writers are serialized with the
// compaction (an Apply issued mid-compaction waits for the swap); on a
// durable store that includes persisting the new base — segment write +
// fsync + log truncation — so writes stall for the full persistence step
// (see durable.Store.Compacted for why and for the escape hatch).
func (ls *Store) Compact() (CompactStats, error) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	s := ls.cur.Load()
	if s.delta.empty() {
		return CompactStats{Epoch: s.epoch}, nil
	}
	start := time.Now()
	merged := overlayTriples(s)
	newBase := store.FromEncoded(ls.dict, merged)
	ref, err := newBaseRef(newBase, ls.opts.Shards)
	if err != nil {
		return CompactStats{}, fmt.Errorf("live: compact: %w", err)
	}
	drained := s.delta.size()
	ls.cur.Store(&state{epoch: s.epoch + 1, base: ref, delta: emptyDelta()})
	dur := time.Since(start)
	ls.compactions.Add(1)
	ls.lastCompactNanos.Store(int64(dur))
	ls.lastCompactDrained.Store(int64(drained))
	stats := CompactStats{Epoch: s.epoch + 1, Drained: drained, Duration: dur, Swapped: true}
	if ls.dur != nil {
		// Persist the new base (and truncate the log) after the swap. On
		// failure the swap stands — the in-memory state is correct and the
		// untruncated log still replays onto the old on-disk base — so the
		// error is reported with Swapped=true rather than rolled back.
		if err := ls.dur.Compacted(newBase, stats.Epoch); err != nil {
			return stats, fmt.Errorf("live: persisting compacted base: %w", err)
		}
	}
	return stats, nil
}

// SetShards re-partitions the current base into n subject-hash shards (n <=
// 1 reverts to unsharded) under a new epoch. The delta is carried over
// unchanged; future compactions keep the new shard count. Setting the
// current count again is a no-op — cached engines, indexes, and plan-cache
// entries survive.
func (ls *Store) SetShards(n int) error {
	if n < 0 {
		return fmt.Errorf("live: negative shard count %d", n)
	}
	if n <= 1 {
		n = 0
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	s := ls.cur.Load()
	current := 0
	if s.base.part != nil {
		current = s.base.part.NumShards()
	}
	if n == current {
		return nil
	}
	ref, err := newBaseRef(s.base.st, n)
	if err != nil {
		return fmt.Errorf("live: %w", err)
	}
	ls.opts.Shards = n
	ls.cur.Store(&state{epoch: s.epoch + 1, base: ref, delta: s.delta})
	return nil
}

// overlayTriples materializes (base \ tombstones) ∪ inserts, in base order
// followed by insertion order. The result is deduplicated by construction
// (the base table is, tombstones only remove, inserts are disjoint from the
// surviving base).
func overlayTriples(s *state) []store.Triple {
	base := s.base.st.Triples()
	out := make([]store.Triple, 0, len(base)-len(s.delta.del)+len(s.delta.ins))
	if len(s.delta.del) == 0 {
		out = append(out, base...)
	} else {
		for _, t := range base {
			if _, dead := s.delta.delSet[t]; !dead {
				out = append(out, t)
			}
		}
	}
	return append(out, s.delta.ins...)
}

// WriteSnapshot serializes the current overlay (pending delta included) in
// the binary snapshot format — the bytes a rebuilt-from-scratch store of
// the patched triple set would produce modulo triple order.
func (ls *Store) WriteSnapshot(w io.Writer) error {
	s := ls.pin()
	defer s.unpin()
	if s.delta.empty() {
		return s.base.st.WriteSnapshot(w)
	}
	return store.WriteSnapshotData(w, ls.dict, overlayTriples(s))
}

// SnapshotTo persists the current overlay to path atomically (write to
// temp, fsync, rename): a crash mid-write never corrupts an existing
// snapshot at path. Concurrent calls are serialized, and a call that lost
// the race to a newer epoch's snapshot skips its write instead of
// regressing the file (the overlay state is captured under the same lock,
// so the snapshot on disk is always the newest one requested). The
// regression guard is per store, assuming one snapshot destination (the
// deployment shape); alternating destinations through one Store may skip
// writes.
func (ls *Store) SnapshotTo(path string) error {
	ls.snapMu.Lock()
	defer ls.snapMu.Unlock()
	epoch := ls.cur.Load().epoch
	if epoch < ls.lastSnapEpoch {
		return nil // a newer base was already persisted here
	}
	if err := store.AtomicWriteFile(path, ls.WriteSnapshot); err != nil {
		return err
	}
	ls.lastSnapEpoch = epoch
	return nil
}

// StoreStats is a point-in-time snapshot of the live store's counters.
type StoreStats struct {
	Epoch           uint64
	BaseTriples     int
	DeltaInserts    int
	DeltaTombstones int
	OverlayTriples  int
	Terms           int
	Shards          int
	// PinnedReaders counts cursors currently pinned to the present epoch's
	// base — any delta version of it (cursors still draining a pre-swap
	// epoch are not included).
	PinnedReaders int64
	Compactions   uint64
	// LastCompactDuration and LastCompactDrained describe the most recent
	// compaction (zero if none happened yet).
	LastCompactDuration time.Duration
	LastCompactDrained  int
}

// IndexMemoryBytes estimates the heap footprint of every trie index built
// over the current base so far — the unsharded store's indexes plus, when
// partitioned, every shard store's. It never triggers index builds, so the
// server's /stats can poll it freely.
func (ls *Store) IndexMemoryBytes() int {
	s := ls.cur.Load()
	total := s.base.st.IndexMemoryBytes()
	if s.base.part != nil {
		for i := 0; i < s.base.part.NumShards(); i++ {
			total += s.base.part.Shard(i).IndexMemoryBytes()
		}
	}
	return total
}

// Stats snapshots the store's counters.
func (ls *Store) Stats() StoreStats {
	s := ls.cur.Load()
	shards := 1
	if s.base.part != nil {
		shards = s.base.part.NumShards()
	}
	return StoreStats{
		Epoch:               s.epoch,
		BaseTriples:         s.base.st.NumTriples(),
		DeltaInserts:        len(s.delta.ins),
		DeltaTombstones:     len(s.delta.del),
		OverlayTriples:      s.base.st.NumTriples() - len(s.delta.del) + len(s.delta.ins),
		Terms:               ls.dict.Size(),
		Shards:              shards,
		PinnedReaders:       s.base.pins.Load(),
		Compactions:         ls.compactions.Load(),
		LastCompactDuration: time.Duration(ls.lastCompactNanos.Load()),
		LastCompactDrained:  int(ls.lastCompactDrained.Load()),
	}
}
