package live_test

// Liveness under compaction: queries driven concurrently with a hammering
// writer and compactor must never fail, never block on a swap, and never
// observe a half-applied patch or epoch (each full scan sees either all of
// a patch's triples or none). Run under -race in CI; the goroutine and pin
// checks catch leaked producers.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/engines"
	"repro/internal/live"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/store"
)

func TestLivenessUnderCompaction(t *testing.T) {
	const (
		baseTriples = 400
		patchSize   = 7
		readers     = 4
		duration    = 600 * time.Millisecond
	)
	var base []rdf.Triple
	for i := 0; i < baseTriples; i++ {
		base = append(base, tr(fmt.Sprintf("s%d", i), "p", fmt.Sprintf("s%d", (i+1)%baseTriples)))
	}
	var patch []rdf.Triple
	for i := 0; i < patchSize; i++ {
		patch = append(patch, tr(fmt.Sprintf("w%d", i), "p", fmt.Sprintf("w%d", i+1)))
	}
	ls, err := live.NewStore(store.FromTriples(base), live.Options{})
	if err != nil {
		t.Fatal(err)
	}

	goroutinesBefore := runtime.NumGoroutine()
	scan := `SELECT ?s ?o WHERE { ?s <http://x/p> ?o }`
	var (
		wg       sync.WaitGroup
		stop     = make(chan struct{})
		failed   atomic.Value // first error string
		queries  atomic.Int64
		compacts atomic.Int64
	)
	fail := func(format string, args ...any) {
		failed.CompareAndSwap(nil, fmt.Sprintf(format, args...))
	}

	// Writer: atomically insert then delete the whole patch, forever. A
	// reader's full scan must therefore count either baseTriples or
	// baseTriples+patchSize — anything else is a torn patch.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := ls.Insert(patch); err != nil {
				fail("insert: %v", err)
				return
			}
			// Yield between the insert and the netting delete so the
			// compactor can observe a non-empty delta; on fast machines the
			// paired writes otherwise leave it no window and the test dies
			// with "no compactions happened".
			runtime.Gosched()
			if _, err := ls.Delete(patch); err != nil {
				fail("delete: %v", err)
				return
			}
		}
	}()

	// Compactor: swap bases as fast as the data allows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st, err := ls.Compact()
			if err != nil {
				fail("compact: %v", err)
				return
			}
			if st.Swapped {
				compacts.Add(1)
			}
		}
	}()

	// Readers: full scans through different engines; counts must be one of
	// the two consistent sizes.
	for r := 0; r < readers; r++ {
		name := engines.Names()[r%len(engines.Names())]
		le, err := engines.NewLive(name, ls)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := query.MustParseSPARQL(scan)
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := engine.Collect(le.Open(q, engine.ExecOpts{}))
				if err != nil {
					fail("%s query: %v", name, err)
					return
				}
				if n := res.Len(); n != baseTriples && n != baseTriples+patchSize {
					fail("%s saw a torn patch: %d rows (want %d or %d)", name, n, baseTriples, baseTriples+patchSize)
					return
				}
				queries.Add(1)
			}
		}()
	}

	time.Sleep(duration)
	// Keep hammering (bounded) until at least one compaction has landed —
	// on fast machines the insert/delete window the compactor must catch is
	// narrow, and a fixed duration makes the "no compactions" assertion
	// below a coin flip.
	for waited := time.Duration(0); compacts.Load() == 0 && failed.Load() == nil && waited < 10*time.Second; waited += 10 * time.Millisecond {
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if msg := failed.Load(); msg != nil {
		t.Fatal(msg)
	}
	if queries.Load() == 0 {
		t.Fatal("no queries completed")
	}
	if compacts.Load() == 0 {
		t.Fatal("no compactions happened — the test exercised nothing")
	}
	t.Logf("%d queries, %d compactions, final epoch %d", queries.Load(), compacts.Load(), ls.Epoch())

	// No leaked producers: pins drain to zero and the goroutine count
	// returns to (about) where it started.
	if pins := ls.Stats().PinnedReaders; pins != 0 {
		t.Fatalf("%d cursors still pinned", pins)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= goroutinesBefore+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				goroutinesBefore, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
