package live_test

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/dict"
	"repro/internal/engine"
	"repro/internal/engines"
	"repro/internal/live"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/store"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://x/" + s) }

func tr(s, p, o string) rdf.Triple {
	return rdf.Triple{S: iri(s), P: iri(p), O: iri(o)}
}

// canonDecoded renders a result multiset with terms decoded, so results
// from stores with different dictionaries compare equal.
func canonDecoded(t *testing.T, res *engine.Result, d *dict.Dictionary) string {
	t.Helper()
	lines := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, id := range row {
			parts[i] = d.Decode(id).String()
		}
		lines = append(lines, strings.Join(parts, "\t"))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// overlayEquals asserts that querying ls through every registered engine
// matches a store rebuilt from scratch over the overlay's decoded triples,
// evaluated by the naive oracle.
func overlayEquals(t *testing.T, ls *live.Store, queries ...string) {
	t.Helper()
	rebuilt := rebuildFromOverlay(t, ls)
	oracle, err := engines.New("naive", rebuilt)
	if err != nil {
		t.Fatal(err)
	}
	for qi, text := range queries {
		q := query.MustParseSPARQL(text)
		want, err := engine.Collect(oracle.Open(q, engine.ExecOpts{}))
		if err != nil {
			t.Fatalf("q%d oracle: %v", qi, err)
		}
		wantC := canonDecoded(t, want, rebuilt.Dict())
		for _, name := range engines.Names() {
			le, err := engines.NewLive(name, ls)
			if err != nil {
				t.Fatalf("NewLive(%s): %v", name, err)
			}
			got, err := engine.Collect(le.Open(q, engine.ExecOpts{}))
			if err != nil {
				t.Fatalf("q%d %s: %v", qi, name, err)
			}
			if gotC := canonDecoded(t, got, ls.Dict()); gotC != wantC {
				t.Errorf("q%d %s: overlay != rebuilt\n got (%d rows):\n%s\nwant (%d rows):\n%s",
					qi, name, got.Len(), gotC, want.Len(), wantC)
			}
		}
	}
}

// rebuildFromOverlay round-trips the overlay through its snapshot writer,
// then re-encodes every decoded triple into a completely fresh store (new
// dictionary, new id assignment) — the "store rebuilt from scratch over the
// patched triple set" oracle.
func rebuildFromOverlay(t *testing.T, ls *live.Store) *store.Store {
	t.Helper()
	var buf bytes.Buffer
	if err := ls.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	src, err := store.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := store.NewBuilder()
	for _, et := range src.Triples() {
		b.Add(rdf.Triple{S: src.Dict().Decode(et.S), P: src.Dict().Decode(et.P), O: src.Dict().Decode(et.O)})
	}
	return b.Build()
}

func TestApplySemantics(t *testing.T) {
	base := store.FromTriples([]rdf.Triple{tr("a", "p", "b"), tr("b", "p", "c")})
	ls, err := live.NewStore(base, live.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Duplicate insert is a no-op.
	res, err := ls.Apply(live.InsertAll([]rdf.Triple{tr("a", "p", "b")}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 0 || res.Noops != 1 {
		t.Fatalf("duplicate insert: %+v", res)
	}

	// Delete of an absent triple is a no-op and must not grow the dict.
	terms := ls.Dict().Size()
	res, err = ls.Apply(live.DeleteAll([]rdf.Triple{tr("zzz", "qqq", "www")}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 0 || res.Noops != 1 {
		t.Fatalf("delete absent: %+v", res)
	}
	if ls.Dict().Size() != terms {
		t.Fatalf("delete of absent triple grew the dictionary: %d -> %d", terms, ls.Dict().Size())
	}

	// Insert-then-delete in one batch nets to nothing.
	res, err = ls.Apply(live.Patch{Ops: []live.Op{
		{Triple: tr("n", "p", "n2")},
		{Delete: true, Triple: tr("n", "p", "n2")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 1 || res.Deleted != 1 || res.DeltaInserts != 0 || res.DeltaTombstones != 0 {
		t.Fatalf("insert-then-delete: %+v", res)
	}
	if n := ls.NumTriples(); n != 2 {
		t.Fatalf("NumTriples = %d, want 2", n)
	}

	// Delete a base triple, then re-insert it: tombstone cleared.
	if _, err = ls.Apply(live.DeleteAll([]rdf.Triple{tr("a", "p", "b")})); err != nil {
		t.Fatal(err)
	}
	if ins, del := ls.DeltaSize(); ins != 0 || del != 1 {
		t.Fatalf("delta after delete: ins=%d del=%d", ins, del)
	}
	if n := ls.NumTriples(); n != 1 {
		t.Fatalf("NumTriples after delete = %d, want 1", n)
	}
	if _, err = ls.Apply(live.InsertAll([]rdf.Triple{tr("a", "p", "b")})); err != nil {
		t.Fatal(err)
	}
	if ins, del := ls.DeltaSize(); ins != 0 || del != 0 {
		t.Fatalf("delta after re-insert: ins=%d del=%d", ins, del)
	}

	// Epoch bumps on compaction only.
	if ls.Epoch() != 0 {
		t.Fatalf("epoch = %d before any compaction", ls.Epoch())
	}
	if _, err = ls.Insert([]rdf.Triple{tr("x", "p", "y")}); err != nil {
		t.Fatal(err)
	}
	st, err := ls.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Swapped || st.Epoch != 1 || ls.Epoch() != 1 {
		t.Fatalf("compact: %+v epoch=%d", st, ls.Epoch())
	}
	if ls.NumTriples() != 3 || ls.Base().NumTriples() != 3 {
		t.Fatalf("post-compact triples: overlay=%d base=%d, want 3/3", ls.NumTriples(), ls.Base().NumTriples())
	}
	// Empty delta: no swap, same epoch.
	st, err = ls.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.Swapped || st.Epoch != 1 {
		t.Fatalf("empty compact: %+v", st)
	}
}

// TestPinsSurviveApply: a cursor opened before a patch must stay counted in
// PinnedReaders (pins are per base epoch, not per delta version).
func TestPinsSurviveApply(t *testing.T) {
	ls, err := live.NewStore(store.FromTriples([]rdf.Triple{tr("a", "p", "b")}), live.Options{})
	if err != nil {
		t.Fatal(err)
	}
	le, err := engines.NewLive("naive", ls)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := le.Open(query.MustParseSPARQL(`SELECT ?s ?o WHERE { ?s <http://x/p> ?o }`), engine.ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if got := ls.Stats().PinnedReaders; got != 1 {
		t.Fatalf("pinned = %d, want 1", got)
	}
	if _, err := ls.Insert([]rdf.Triple{tr("c", "p", "d")}); err != nil {
		t.Fatal(err)
	}
	if got := ls.Stats().PinnedReaders; got != 1 {
		t.Fatalf("pinned after Apply = %d, want 1 (same-epoch cursor dropped from the count)", got)
	}
	cur.Close()
	if got := ls.Stats().PinnedReaders; got != 0 {
		t.Fatalf("pinned after close = %d, want 0", got)
	}
}

// TestSetShardsNoOp: re-requesting the current shard count must not bump
// the epoch or rebuild engines.
func TestSetShardsNoOp(t *testing.T) {
	ls, err := live.NewStore(store.FromTriples([]rdf.Triple{tr("a", "p", "b")}), live.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.SetShards(0); err != nil {
		t.Fatal(err)
	}
	if err := ls.SetShards(1); err != nil {
		t.Fatal(err)
	}
	if ls.Epoch() != 0 {
		t.Fatalf("no-op SetShards bumped epoch to %d", ls.Epoch())
	}
	if err := ls.SetShards(2); err != nil {
		t.Fatal(err)
	}
	if ls.Epoch() != 1 || ls.Shards() != 2 {
		t.Fatalf("SetShards(2): epoch=%d shards=%d", ls.Epoch(), ls.Shards())
	}
	if err := ls.SetShards(2); err != nil {
		t.Fatal(err)
	}
	if ls.Epoch() != 1 {
		t.Fatalf("repeat SetShards(2) bumped epoch to %d", ls.Epoch())
	}
}

func TestOverlayMatchesRebuiltSmall(t *testing.T) {
	// A little star+path dataset exercising joins across base and delta.
	var ts []rdf.Triple
	for i := 0; i < 6; i++ {
		ts = append(ts, tr(fmt.Sprintf("s%d", i), "knows", fmt.Sprintf("s%d", (i+1)%6)))
		ts = append(ts, tr(fmt.Sprintf("s%d", i), "type", "Person"))
	}
	base := store.FromTriples(ts)
	ls, err := live.NewStore(base, live.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Inserts join against base triples, deletes break base join chains.
	if _, err := ls.Apply(live.Patch{Ops: []live.Op{
		{Triple: tr("s1", "knows", "s4")},               // new edge between base nodes
		{Triple: tr("n9", "knows", "s0")},               // new node into base
		{Triple: tr("n9", "type", "Person")},            // ...typed by an insert
		{Delete: true, Triple: tr("s2", "knows", "s3")}, // cut a base chain
		{Delete: true, Triple: tr("s5", "type", "Person")},
	}}); err != nil {
		t.Fatal(err)
	}

	queries := []string{
		`SELECT ?a ?b WHERE { ?a <http://x/knows> ?b }`,
		`SELECT ?a ?b ?c WHERE { ?a <http://x/knows> ?b . ?b <http://x/knows> ?c }`,
		`SELECT ?a WHERE { ?a <http://x/type> <http://x/Person> . ?a <http://x/knows> ?b . ?b <http://x/type> <http://x/Person> }`,
		`SELECT DISTINCT ?b WHERE { ?a <http://x/knows> ?b . ?a <http://x/type> <http://x/Person> }`,
		`SELECT ?a ?p ?b WHERE { ?a ?p ?b }`,
	}
	overlayEquals(t, ls, queries...)

	// After compaction the same queries must agree again (fast path).
	if _, err := ls.Compact(); err != nil {
		t.Fatal(err)
	}
	overlayEquals(t, ls, queries...)
}
