package store

import (
	"sort"

	"repro/internal/dict"
	"repro/internal/set"
	"repro/internal/trie"
)

// RelationData is the pre-assembled image of one predicate relation used by
// FromParts: columns, statistics, and optionally prebuilt PolicyAuto tries.
// internal/segment produces these from mmap'd arenas.
type RelationData struct {
	Predicate dict.ID
	// S and O are the parallel columns (may be read-only mmap views).
	S, O []uint32
	// DistinctS and DistinctO are the precomputed statistics; assemble's
	// radix pass is skipped entirely.
	DistinctS, DistinctO int
	// SO and OS, when non-nil, pre-populate the trie cache slot for Policy
	// so first query never pays a build.
	SO, OS *trie.Trie
	// Policy is the layout policy the prebuilt tries were built under.
	// The zero value is set.PolicyAuto, which version-1 segments used;
	// version-2 segments record set.PolicyAdaptive.
	Policy set.Policy
}

// FromParts assembles a Store from pre-built components without the
// statistics pass or any column copying — the segment loading path: every
// slice may be a view into a read-only mapping, and the tries are the
// deserialized flat arenas. Triples must be deduplicated and each relation's
// columns must list exactly its triples' rows, as a parent Store's would.
func FromParts(d *dict.Dictionary, triples []Triple, rels []RelationData) *Store {
	st := &Store{
		dict:      d,
		relations: make(map[dict.ID]*Relation, len(rels)),
		triples:   triples,
	}
	for _, rd := range rels {
		rel := &Relation{
			Predicate: rd.Predicate,
			S:         rd.S,
			O:         rd.O,
			distinctS: rd.DistinctS,
			distinctO: rd.DistinctO,
		}
		if rd.SO != nil {
			rel.so[policyIdx(rd.Policy)].v.Store(rd.SO)
		}
		if rd.OS != nil {
			rel.os[policyIdx(rd.Policy)].v.Store(rd.OS)
		}
		st.relations[rd.Predicate] = rel
		st.predicates = append(st.predicates, rd.Predicate)
	}
	sort.Slice(st.predicates, func(i, j int) bool { return st.predicates[i] < st.predicates[j] })
	return st
}
