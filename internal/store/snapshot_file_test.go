package store

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/rdf"
)

func snapshotFileStore() *Store {
	b := NewBuilder()
	b.Add(rdf.Triple{S: rdf.NewIRI("http://f/a"), P: rdf.NewIRI("http://f/p"), O: rdf.NewIRI("http://f/b")})
	b.Add(rdf.Triple{S: rdf.NewIRI("http://f/b"), P: rdf.NewIRI("http://f/p"), O: rdf.NewLiteral("x")})
	return b.Build()
}

func TestWriteSnapshotFileRoundTrip(t *testing.T) {
	st := snapshotFileStore()
	path := filepath.Join(t.TempDir(), "s.snap")
	if err := st.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := ReadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTriples() != st.NumTriples() || got.Dict().Size() != st.Dict().Size() {
		t.Fatalf("round trip: %v vs %v", got, st)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("stray files after write: %v", entries)
	}
}

// TestAtomicWriteFilePreservesOldOnFailure: a failing write (a crashing
// compaction mid-serialization) must leave the previous snapshot intact and
// clean up its temp file.
func TestAtomicWriteFilePreservesOldOnFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.snap")
	if err := AtomicWriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("GOOD"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := AtomicWriteFile(path, func(w io.Writer) error {
		w.Write([]byte("HALF-WRITTEN"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "GOOD" {
		t.Fatalf("old snapshot clobbered: %q", b)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}
