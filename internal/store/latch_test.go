package store

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/lubm"
	"repro/internal/radix"
	"repro/internal/rdf"
	"repro/internal/set"
)

// testStore builds a store with one predicate and enough rows that a trie
// build is not instantaneous.
func latchStore(tb testing.TB, rows int) *Store {
	tb.Helper()
	rng := rand.New(rand.NewSource(1))
	b := NewBuilder()
	for i := 0; i < rows; i++ {
		b.Add(rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("http://x/s%d", rng.Intn(rows))),
			P: rdf.NewIRI("http://x/p"),
			O: rdf.NewIRI(fmt.Sprintf("http://x/o%d", rng.Intn(rows))),
		})
	}
	return b.Build()
}

// TestTrieSlotsBuildIndependently verifies the per-slot build latches: a
// build in one slot must not serialize readers of a different slot. The old
// relation-wide mutex made a slow SO build block OS readers; with per-slot
// latches, hammering all four slots concurrently from many goroutines must
// neither deadlock nor produce distinct tries per slot.
func TestTrieSlotsBuildIndependently(t *testing.T) {
	st := latchStore(t, 2000)
	rel := st.Relation(st.Predicates()[0])
	if rel == nil {
		t.Fatal("no relation")
	}
	const goroutines = 16
	var wg sync.WaitGroup
	results := make([][4]any, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = [4]any{
				rel.TrieSO(set.PolicyAuto),
				rel.TrieOS(set.PolicyAuto),
				rel.TrieSO(set.PolicyUintOnly),
				rel.TrieOS(set.PolicyUintOnly),
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for s := 0; s < 4; s++ {
			if results[g][s] != results[0][s] {
				t.Fatalf("goroutine %d slot %d saw a different trie instance", g, s)
			}
		}
	}
}

// TestTripleTrieSlotsConcurrent hammers all six permutations across both
// policies concurrently; every caller of the same (perm, policy) must get
// the same instance.
func TestTripleTrieSlotsConcurrent(t *testing.T) {
	st := latchStore(t, 500)
	perms := [][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	type key struct {
		perm   int
		policy set.Policy
	}
	var mu sync.Mutex
	seen := map[key]any{}
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, perm := range perms {
				for _, pol := range []set.Policy{set.PolicyAuto, set.PolicyUintOnly} {
					tr := st.TripleTrie(perm, pol)
					if tr.Len() != st.NumTriples() {
						t.Errorf("perm %v: %d tuples, want %d", perm, tr.Len(), st.NumTriples())
						return
					}
					mu.Lock()
					k := key{i, pol}
					if prev, ok := seen[k]; ok && prev != any(tr) {
						t.Errorf("perm %v policy %v: distinct instances", perm, pol)
					}
					seen[k] = tr
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSlotBuildDoesNotBlockOtherSlot is the direct regression test for the
// satellite: with the OS trie already cached, a reader must get it quickly
// even while another goroutine is inside a (slow) SO build. The bound is
// generous — the point is "not serialized behind a whole build", not a
// micro-latency promise.
func TestSlotBuildDoesNotBlockOtherSlot(t *testing.T) {
	st := latchStore(t, 100000)
	rel := st.Relation(st.Predicates()[0])
	rel.TrieOS(set.PolicyAuto) // pre-build OS

	started := make(chan struct{})
	go func() {
		close(started)
		rel.TrieSO(set.PolicyAuto) // cold build in the other slot
	}()
	<-started
	begin := time.Now()
	rel.TrieOS(set.PolicyAuto) // cached: must be immediate
	if d := time.Since(begin); d > 200*time.Millisecond {
		t.Fatalf("cached OS read took %v while SO build in flight", d)
	}
}

func TestIndexMemoryBytes(t *testing.T) {
	st := latchStore(t, 1000)
	if got := st.IndexMemoryBytes(); got != 0 {
		t.Fatalf("unbuilt store reports %d index bytes, want 0", got)
	}
	rel := st.Relation(st.Predicates()[0])
	tr := rel.TrieSO(set.PolicyAuto)
	if got := st.IndexMemoryBytes(); got != tr.MemoryBytes() {
		t.Fatalf("one built trie: %d, want %d", got, tr.MemoryBytes())
	}
	st.TripleTrie([3]int{1, 0, 2}, set.PolicyAuto)
	if got := st.IndexMemoryBytes(); got <= tr.MemoryBytes() {
		t.Fatalf("triple trie not accounted: %d", got)
	}
}

// countDistinctMap is the retired map-based counter, kept for the
// before/after benchmark below.
func countDistinctMap(vals []uint32) int {
	m := make(map[uint32]struct{}, len(vals)/2+1)
	for _, v := range vals {
		m[v] = struct{}{}
	}
	return len(m)
}

func distinctInput(n int) []uint32 {
	rng := rand.New(rand.NewSource(3))
	v := make([]uint32, n)
	for i := range v {
		v[i] = rng.Uint32() % uint32(n/2+1)
	}
	return v
}

func BenchmarkCountDistinctRadix(b *testing.B) {
	v := distinctInput(1 << 17)
	var s radix.Scratch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CountDistinct(v)
	}
}

func BenchmarkCountDistinctMap(b *testing.B) {
	v := distinctInput(1 << 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		countDistinctMap(v)
	}
}

// lubmRelCols materializes every relation's S and O columns of a LUBM
// scale-1 store — the exact inputs assemble's statistics pass sees on every
// Compact() swap.
func lubmRelCols(b *testing.B) [][]uint32 {
	b.Helper()
	st := FromTriples(lubm.Generate(lubm.Config{Universities: 1}))
	var cols [][]uint32
	for _, p := range st.Predicates() {
		rel := st.Relation(p)
		cols = append(cols, rel.S, rel.O)
	}
	return cols
}

// BenchmarkCountDistinctLUBMRadix vs ...LUBMMap is the satellite's
// before/after pair: the distinct-statistics pass over a real LUBM scale-1
// store, radix sort versus the retired per-relation hash map.
func BenchmarkCountDistinctLUBMRadix(b *testing.B) {
	cols := lubmRelCols(b)
	var s radix.Scratch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cols {
			s.CountDistinct(c)
		}
	}
}

func BenchmarkCountDistinctLUBMMap(b *testing.B) {
	cols := lubmRelCols(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cols {
			countDistinctMap(c)
		}
	}
}
