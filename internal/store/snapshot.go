package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"

	"repro/internal/dict"
	"repro/internal/rdf"
)

// Snapshot format: a compact binary serialization of a Store (dictionary +
// encoded triples) so large datasets load without re-parsing N-Triples or
// re-running dictionary encoding. Layout (all integers unsigned varints):
//
//	magic "RDFSNAP1"
//	term count
//	  per term: kind byte, value, datatype, lang (length-prefixed strings;
//	  datatype/lang only for literals)
//	triple count
//	  per triple: S, P, O ids
//
// Tries and statistics are rebuilt on load — they are derived state.
const snapshotMagic = "RDFSNAP1"

// WriteSnapshot serializes the store to w.
func (s *Store) WriteSnapshot(w io.Writer) error {
	return WriteSnapshotData(w, s.dict, s.triples)
}

// WriteSnapshotData serializes an encoded triple table plus its dictionary
// in the snapshot format, without requiring an assembled Store. The
// live-update layer uses it to persist a delta overlay (base minus
// tombstones plus inserts) directly. The dictionary may keep growing
// concurrently — ids are append-only, so the size captured here stays
// decodable — but every triple must reference only ids assigned before the
// call.
func WriteSnapshotData(w io.Writer, d *dict.Dictionary, triples []Triple) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	writeString := func(str string) error {
		if err := writeUvarint(uint64(len(str))); err != nil {
			return err
		}
		_, err := bw.WriteString(str)
		return err
	}

	n := d.Size()
	if err := writeUvarint(uint64(n)); err != nil {
		return err
	}
	for id := 0; id < n; id++ {
		t := d.Decode(uint32(id))
		if err := bw.WriteByte(byte(t.Kind)); err != nil {
			return err
		}
		if err := writeString(t.Value); err != nil {
			return err
		}
		if t.Kind == rdf.Literal {
			if err := writeString(t.Datatype); err != nil {
				return err
			}
			if err := writeString(t.Lang); err != nil {
				return err
			}
		}
	}
	if err := writeUvarint(uint64(len(triples))); err != nil {
		return err
	}
	for _, tr := range triples {
		if err := writeUvarint(uint64(tr.S)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(tr.P)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(tr.O)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteSnapshotFile persists the store's snapshot to path atomically: the
// bytes go to a temporary file in the same directory, are fsynced, and only
// then renamed over path. A crash mid-write (e.g. during a background
// compaction under serving) therefore never truncates or corrupts the
// snapshot a restarting server loads — path either holds the previous
// complete snapshot or the new one.
func (s *Store) WriteSnapshotFile(path string) error {
	return AtomicWriteFile(path, s.WriteSnapshot)
}

// AtomicWriteFile writes a file via write-to-temp, fsync, rename. write
// receives the temporary file; on any error the temporary is removed and
// path is untouched.
func AtomicWriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// The rename itself is only durable once the directory entry is
	// fsynced; without it a power loss can roll path back to the old file
	// (or to nothing) even though the data blocks survived.
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so preceding renames and creates in it survive
// power loss. Filesystems that do not support fsync on directories
// (returning EINVAL/ENOTSUP) are treated as success — there is nothing more
// the caller can do there — but real I/O errors are reported.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("store: fsync %s: %w", dir, err)
	}
	return nil
}

// ReadSnapshot deserializes a store written by WriteSnapshot.
func ReadSnapshot(r io.Reader) (*Store, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("store: reading snapshot magic: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("store: not a snapshot (magic %q)", magic)
	}
	readString := func() (string, error) {
		l, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		if l > 1<<24 {
			return "", fmt.Errorf("store: implausible string length %d", l)
		}
		buf := make([]byte, l)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}

	b := NewBuilder()
	nTerms, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("store: reading term count: %w", err)
	}
	terms := make([]rdf.Term, nTerms)
	for i := range terms {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("store: reading term %d: %w", i, err)
		}
		if rdf.TermKind(kind) > rdf.Blank {
			return nil, fmt.Errorf("store: term %d has invalid kind %d", i, kind)
		}
		t := rdf.Term{Kind: rdf.TermKind(kind)}
		if t.Value, err = readString(); err != nil {
			return nil, fmt.Errorf("store: reading term %d value: %w", i, err)
		}
		if t.Kind == rdf.Literal {
			if t.Datatype, err = readString(); err != nil {
				return nil, err
			}
			if t.Lang, err = readString(); err != nil {
				return nil, err
			}
		}
		// Re-register in id order so ids are preserved exactly.
		if got := b.dict.Encode(t); got != uint32(i) {
			return nil, fmt.Errorf("store: duplicate term %v in snapshot (id %d vs %d)", t, got, i)
		}
		terms[i] = t
	}

	nTriples, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("store: reading triple count: %w", err)
	}
	readID := func() (uint32, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, err
		}
		if v >= nTerms {
			return 0, fmt.Errorf("store: triple references unknown term id %d", v)
		}
		return uint32(v), nil
	}
	for i := uint64(0); i < nTriples; i++ {
		var tr Triple
		if tr.S, err = readID(); err != nil {
			return nil, fmt.Errorf("store: triple %d: %w", i, err)
		}
		if tr.P, err = readID(); err != nil {
			return nil, fmt.Errorf("store: triple %d: %w", i, err)
		}
		if tr.O, err = readID(); err != nil {
			return nil, fmt.Errorf("store: triple %d: %w", i, err)
		}
		if !b.seen[tr] {
			b.seen[tr] = true
			b.triples = append(b.triples, tr)
		}
	}
	return b.Build(), nil
}
