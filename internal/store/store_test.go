package store

import (
	"reflect"
	"testing"

	"repro/internal/rdf"
	"repro/internal/set"
)

func tr(s, p, o string) rdf.Triple {
	return rdf.Triple{S: rdf.NewIRI(s), P: rdf.NewIRI(p), O: rdf.NewIRI(o)}
}

func TestBuildPartitionsByPredicate(t *testing.T) {
	st := FromTriples([]rdf.Triple{
		tr("s1", "p1", "o1"),
		tr("s2", "p1", "o2"),
		tr("s1", "p2", "o1"),
	})
	if st.NumTriples() != 3 {
		t.Fatalf("NumTriples = %d", st.NumTriples())
	}
	if len(st.Predicates()) != 2 {
		t.Fatalf("Predicates = %v", st.Predicates())
	}
	r1 := st.RelationByIRI("p1")
	if r1 == nil || r1.Len() != 2 {
		t.Fatalf("p1 relation = %+v", r1)
	}
	r2 := st.RelationByIRI("p2")
	if r2 == nil || r2.Len() != 1 {
		t.Fatalf("p2 relation = %+v", r2)
	}
	if st.RelationByIRI("absent") != nil {
		t.Errorf("absent predicate should be nil")
	}
}

func TestDuplicateTriplesDropped(t *testing.T) {
	st := FromTriples([]rdf.Triple{
		tr("s", "p", "o"),
		tr("s", "p", "o"),
		tr("s", "p", "o"),
	})
	if st.NumTriples() != 1 {
		t.Errorf("NumTriples = %d, want 1", st.NumTriples())
	}
}

func TestStats(t *testing.T) {
	st := FromTriples([]rdf.Triple{
		tr("s1", "p", "o1"),
		tr("s1", "p", "o2"),
		tr("s2", "p", "o1"),
	})
	p, _ := st.Dict().LookupIRI("p")
	got := st.Stats(p)
	want := Stats{Rows: 3, DistinctS: 2, DistinctO: 2}
	if got != want {
		t.Errorf("Stats = %+v, want %+v", got, want)
	}
	if st.Stats(9999) != (Stats{}) {
		t.Errorf("unknown predicate stats should be zero")
	}
	rel := st.Relation(p)
	if rel.DistinctS() != 2 || rel.DistinctO() != 2 {
		t.Errorf("relation distinct counts wrong")
	}
}

func TestTrieIndexesBothOrders(t *testing.T) {
	st := FromTriples([]rdf.Triple{
		tr("s1", "p", "o2"),
		tr("s1", "p", "o1"),
		tr("s2", "p", "o1"),
	})
	rel := st.RelationByIRI("p")
	d := st.Dict()
	s1, _ := d.LookupIRI("s1")
	s2, _ := d.LookupIRI("s2")
	o1, _ := d.LookupIRI("o1")
	o2, _ := d.LookupIRI("o2")

	so := rel.TrieSO(set.PolicyAuto)
	if so.Len() != 3 {
		t.Fatalf("trieSO tuples = %d", so.Len())
	}
	n, ok := so.Lookup(s1)
	if !ok {
		t.Fatalf("s1 missing from trieSO")
	}
	if got := n.Set().Values(); !reflect.DeepEqual(got, sortedPair(o1, o2)) {
		t.Errorf("s1 objects = %v", got)
	}
	os := rel.TrieOS(set.PolicyAuto)
	n, ok = os.Lookup(o1)
	if !ok {
		t.Fatalf("o1 missing from trieOS")
	}
	if got := n.Set().Values(); !reflect.DeepEqual(got, sortedPair(s1, s2)) {
		t.Errorf("o1 subjects = %v", got)
	}

	// Caching: same pointer on second call; different per policy.
	if rel.TrieSO(set.PolicyAuto) != so {
		t.Errorf("TrieSO not cached")
	}
	if rel.TrieSO(set.PolicyUintOnly) == so {
		t.Errorf("policies must not share cached tries")
	}
	if rel.TrieOS(set.PolicyUintOnly) == os {
		t.Errorf("policies must not share cached tries (OS)")
	}
}

func sortedPair(a, b uint32) []uint32 {
	if a < b {
		return []uint32{a, b}
	}
	return []uint32{b, a}
}

func TestLiteralObjectsSupported(t *testing.T) {
	st := FromTriples([]rdf.Triple{
		{S: rdf.NewIRI("s"), P: rdf.NewIRI("name"), O: rdf.NewLiteral("Alice")},
		{S: rdf.NewIRI("s"), P: rdf.NewIRI("name"), O: rdf.NewLiteral("Bob")},
	})
	rel := st.RelationByIRI("name")
	if rel.Len() != 2 {
		t.Fatalf("rows = %d", rel.Len())
	}
	id, ok := st.Dict().Lookup(rdf.NewLiteral("Alice"))
	if !ok {
		t.Fatalf("literal not in dictionary")
	}
	if got := st.Dict().Decode(id); got.Value != "Alice" || !got.IsLiteral() {
		t.Errorf("decode = %v", got)
	}
}

func TestStringSummary(t *testing.T) {
	st := FromTriples([]rdf.Triple{tr("s", "p", "o")})
	if st.String() == "" {
		t.Errorf("empty String()")
	}
	if st.Triples()[0].S != 0 {
		// First term registered is the subject.
		t.Errorf("unexpected encoding order: %+v", st.Triples()[0])
	}
}

func TestEmptyStore(t *testing.T) {
	st := FromTriples(nil)
	if st.NumTriples() != 0 || len(st.Predicates()) != 0 {
		t.Errorf("empty store misbehaves: %v", st)
	}
}
