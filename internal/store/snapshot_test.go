package store

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lubm"
	"repro/internal/rdf"
)

func TestSnapshotRoundTrip(t *testing.T) {
	orig := FromTriples([]rdf.Triple{
		tr("s1", "p1", "o1"),
		tr("s2", "p1", "o2"),
		{S: rdf.NewIRI("s1"), P: rdf.NewIRI("name"), O: rdf.NewLiteral("Alice")},
		{S: rdf.NewIRI("s1"), P: rdf.NewIRI("label"), O: rdf.NewLangLiteral("chat", "fr")},
		{S: rdf.NewIRI("s1"), P: rdf.NewIRI("age"), O: rdf.NewTypedLiteral("5", "http://int")},
		{S: rdf.NewBlank("b0"), P: rdf.NewIRI("p1"), O: rdf.NewIRI("o1")},
	})
	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if got.NumTriples() != orig.NumTriples() {
		t.Fatalf("triples = %d, want %d", got.NumTriples(), orig.NumTriples())
	}
	if got.Dict().Size() != orig.Dict().Size() {
		t.Fatalf("dict = %d, want %d", got.Dict().Size(), orig.Dict().Size())
	}
	// Ids must be preserved exactly (so snapshots of results stay valid).
	for id := 0; id < orig.Dict().Size(); id++ {
		if orig.Dict().Decode(uint32(id)) != got.Dict().Decode(uint32(id)) {
			t.Errorf("term %d differs: %v vs %v", id,
				orig.Dict().Decode(uint32(id)), got.Dict().Decode(uint32(id)))
		}
	}
	for i, tr := range orig.Triples() {
		if got.Triples()[i] != tr {
			t.Errorf("triple %d differs", i)
		}
	}
}

func TestSnapshotRoundTripLUBM(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	b := NewBuilder()
	lubm.GenerateTo(lubm.Config{Universities: 1}, b.Add)
	orig := b.Build()
	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	t.Logf("LUBM(1): %d triples -> %d snapshot bytes", orig.NumTriples(), buf.Len())
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if got.NumTriples() != orig.NumTriples() || got.Dict().Size() != orig.Dict().Size() {
		t.Errorf("round trip size mismatch")
	}
	// Statistics are rebuilt identically.
	for _, p := range orig.Predicates() {
		if orig.Stats(p) != got.Stats(p) {
			t.Errorf("stats differ for predicate %d", p)
		}
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"NOTMAGIC",
		"RDFSNAP1",                     // truncated after magic
		"RDFSNAP1\x01",                 // term count but no terms
		"RDFSNAP1\x01\x09\x01a",        // invalid term kind 9
		"RDFSNAP1\x00\x01\x05\x00\x00", // triple references unknown id 5
	}
	for _, c := range cases {
		if _, err := ReadSnapshot(strings.NewReader(c)); err == nil {
			t.Errorf("garbage %q accepted", c)
		}
	}
}

// TestSnapshotFileRoundTrip covers the on-disk atomic write path end to
// end: WriteSnapshotFile → ReadSnapshot through a real file, including the
// rename-durability step (the parent-directory fsync inside
// AtomicWriteFile — its error is propagated, not swallowed; without it a
// power loss can undo the rename after the call reported success).
func TestSnapshotFileRoundTrip(t *testing.T) {
	orig := FromTriples([]rdf.Triple{
		tr("s1", "p1", "o1"),
		tr("s2", "p1", "o2"),
		{S: rdf.NewIRI("s1"), P: rdf.NewIRI("name"), O: rdf.NewLiteral("Alice")},
	})
	dir := t.TempDir()
	path := filepath.Join(dir, "data.snap")
	if err := orig.WriteSnapshotFile(path); err != nil {
		t.Fatalf("WriteSnapshotFile: %v", err)
	}
	// Overwrite in place: the atomic rename must replace, never corrupt.
	if err := orig.WriteSnapshotFile(path); err != nil {
		t.Fatalf("second WriteSnapshotFile: %v", err)
	}
	// No temp-file litter may survive a successful write.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "data.snap" {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("directory holds %v, want only data.snap", names)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := ReadSnapshot(f)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if got.NumTriples() != orig.NumTriples() || got.Dict().Size() != orig.Dict().Size() {
		t.Fatal("file round trip size mismatch")
	}
}

func TestAtomicWriteFileCleansUpOnError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out")
	boom := errors.New("boom")
	if err := AtomicWriteFile(path, func(io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("failed write left the destination file behind")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("failed write left %d temp files behind", len(ents))
	}
}

func TestSyncDir(t *testing.T) {
	if err := SyncDir(t.TempDir()); err != nil {
		t.Fatalf("SyncDir on a real directory: %v", err)
	}
	if err := SyncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("SyncDir on a missing directory reported success")
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	var buf bytes.Buffer
	if err := FromTriples(nil).WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if got.NumTriples() != 0 {
		t.Errorf("empty store round trip = %d triples", got.NumTriples())
	}
}
