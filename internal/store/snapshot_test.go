package store

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/lubm"
	"repro/internal/rdf"
)

func TestSnapshotRoundTrip(t *testing.T) {
	orig := FromTriples([]rdf.Triple{
		tr("s1", "p1", "o1"),
		tr("s2", "p1", "o2"),
		{S: rdf.NewIRI("s1"), P: rdf.NewIRI("name"), O: rdf.NewLiteral("Alice")},
		{S: rdf.NewIRI("s1"), P: rdf.NewIRI("label"), O: rdf.NewLangLiteral("chat", "fr")},
		{S: rdf.NewIRI("s1"), P: rdf.NewIRI("age"), O: rdf.NewTypedLiteral("5", "http://int")},
		{S: rdf.NewBlank("b0"), P: rdf.NewIRI("p1"), O: rdf.NewIRI("o1")},
	})
	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if got.NumTriples() != orig.NumTriples() {
		t.Fatalf("triples = %d, want %d", got.NumTriples(), orig.NumTriples())
	}
	if got.Dict().Size() != orig.Dict().Size() {
		t.Fatalf("dict = %d, want %d", got.Dict().Size(), orig.Dict().Size())
	}
	// Ids must be preserved exactly (so snapshots of results stay valid).
	for id := 0; id < orig.Dict().Size(); id++ {
		if orig.Dict().Decode(uint32(id)) != got.Dict().Decode(uint32(id)) {
			t.Errorf("term %d differs: %v vs %v", id,
				orig.Dict().Decode(uint32(id)), got.Dict().Decode(uint32(id)))
		}
	}
	for i, tr := range orig.Triples() {
		if got.Triples()[i] != tr {
			t.Errorf("triple %d differs", i)
		}
	}
}

func TestSnapshotRoundTripLUBM(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	b := NewBuilder()
	lubm.GenerateTo(lubm.Config{Universities: 1}, b.Add)
	orig := b.Build()
	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	t.Logf("LUBM(1): %d triples -> %d snapshot bytes", orig.NumTriples(), buf.Len())
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if got.NumTriples() != orig.NumTriples() || got.Dict().Size() != orig.Dict().Size() {
		t.Errorf("round trip size mismatch")
	}
	// Statistics are rebuilt identically.
	for _, p := range orig.Predicates() {
		if orig.Stats(p) != got.Stats(p) {
			t.Errorf("stats differ for predicate %d", p)
		}
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"NOTMAGIC",
		"RDFSNAP1",                     // truncated after magic
		"RDFSNAP1\x01",                 // term count but no terms
		"RDFSNAP1\x01\x09\x01a",        // invalid term kind 9
		"RDFSNAP1\x00\x01\x05\x00\x00", // triple references unknown id 5
	}
	for _, c := range cases {
		if _, err := ReadSnapshot(strings.NewReader(c)); err == nil {
			t.Errorf("garbage %q accepted", c)
		}
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	var buf bytes.Buffer
	if err := FromTriples(nil).WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if got.NumTriples() != 0 {
		t.Errorf("empty store round trip = %d triples", got.NumTriples())
	}
}
