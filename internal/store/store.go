// Package store implements the vertically partitioned RDF storage layer
// shared by every engine in this repository (§IV-A2 of the paper: "we store
// and process the RDF data in a vertically partitioned manner as this has
// been shown to be superior to storing the data as triples").
//
// A Store groups dictionary-encoded triples by predicate: each predicate
// owns a two-column (subject, object) relation. The store also retains the
// full encoded triple table for engines that want it (the RDF-3X baseline
// builds its six permutation indexes from it) and per-predicate statistics
// for cardinality estimation.
package store

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/dict"
	"repro/internal/rdf"
	"repro/internal/set"
	"repro/internal/trie"
)

// Relation is one vertically partitioned predicate table: parallel subject
// and object columns, one row per (distinct) triple.
type Relation struct {
	Predicate dict.ID
	S, O      []uint32

	distinctS, distinctO int

	// Lazily built trie indexes over (S,O) and (O,S), per layout policy.
	// Guarded by mu so concurrent queries (the server shares one Store
	// across requests) build each index exactly once.
	mu                     sync.Mutex
	trieSO, trieOS         *trie.Trie
	trieSOUint, trieOSUint *trie.Trie
}

// Len returns the number of rows.
func (r *Relation) Len() int { return len(r.S) }

// DistinctS returns the number of distinct subjects.
func (r *Relation) DistinctS() int { return r.distinctS }

// DistinctO returns the number of distinct objects.
func (r *Relation) DistinctO() int { return r.distinctO }

// TrieSO returns the (subject, object) trie for this relation, building and
// caching it on first use. The policy chooses set layouts; the two policies
// are cached independently so ablations do not interfere. Safe for
// concurrent use.
func (r *Relation) TrieSO(policy set.Policy) *trie.Trie {
	r.mu.Lock()
	defer r.mu.Unlock()
	cached := &r.trieSO
	if policy == set.PolicyUintOnly {
		cached = &r.trieSOUint
	}
	if *cached == nil {
		*cached = trie.BuildFromColumns([][]uint32{r.S, r.O}, policy)
	}
	return *cached
}

// TrieOS returns the (object, subject) trie, building and caching it on
// first use. Safe for concurrent use.
func (r *Relation) TrieOS(policy set.Policy) *trie.Trie {
	r.mu.Lock()
	defer r.mu.Unlock()
	cached := &r.trieOS
	if policy == set.PolicyUintOnly {
		cached = &r.trieOSUint
	}
	if *cached == nil {
		*cached = trie.BuildFromColumns([][]uint32{r.O, r.S}, policy)
	}
	return *cached
}

// Triple is one dictionary-encoded triple.
type Triple struct {
	S, P, O uint32
}

// Store is an immutable, dictionary-encoded, vertically partitioned RDF
// dataset.
type Store struct {
	dict       *dict.Dictionary
	relations  map[dict.ID]*Relation
	triples    []Triple
	predicates []dict.ID // sorted, for deterministic iteration

	// Guards the lazily built full-table tries (see TripleTrie).
	trieMu      sync.Mutex
	tripleTries map[tripleTrieKey]*trie.Trie
}

type tripleTrieKey struct {
	perm   [3]int
	policy set.Policy
}

// TripleTrie returns a trie over the full triple table with columns ordered
// by perm (a permutation of {0,1,2} = {S,P,O}), building and caching it on
// first use. Engines use these for patterns with variable predicates; the
// RDF-3X baseline keeps all six permutations, mirroring its clustered
// indexes. Safe for concurrent use.
func (s *Store) TripleTrie(perm [3]int, policy set.Policy) *trie.Trie {
	s.trieMu.Lock()
	defer s.trieMu.Unlock()
	key := tripleTrieKey{perm: perm, policy: policy}
	if t, ok := s.tripleTries[key]; ok {
		return t
	}
	cols := make([][]uint32, 3)
	for c := 0; c < 3; c++ {
		cols[c] = make([]uint32, len(s.triples))
	}
	for i, t := range s.triples {
		pos := [3]uint32{t.S, t.P, t.O}
		for c := 0; c < 3; c++ {
			cols[c][i] = pos[perm[c]]
		}
	}
	t := trie.BuildFromColumns(cols, policy)
	if s.tripleTries == nil {
		s.tripleTries = make(map[tripleTrieKey]*trie.Trie)
	}
	s.tripleTries[key] = t
	return t
}

// Builder accumulates triples and produces an immutable Store.
type Builder struct {
	dict    *dict.Dictionary
	triples []Triple
	seen    map[Triple]bool
}

// NewBuilder returns an empty builder with a fresh dictionary.
func NewBuilder() *Builder {
	return &Builder{dict: dict.New(), seen: make(map[Triple]bool)}
}

// Add encodes and appends one triple. Exact duplicate triples are dropped
// (RDF graphs are sets of triples).
func (b *Builder) Add(t rdf.Triple) {
	s, p, o := b.dict.EncodeTriple(t)
	enc := Triple{S: s, P: p, O: o}
	if b.seen[enc] {
		return
	}
	b.seen[enc] = true
	b.triples = append(b.triples, enc)
}

// AddAll appends every triple in ts.
func (b *Builder) AddAll(ts []rdf.Triple) {
	for _, t := range ts {
		b.Add(t)
	}
}

// Build finalizes the store. The builder must not be used afterwards.
func (b *Builder) Build() *Store {
	return assemble(b.dict, b.triples)
}

// FromEncoded builds a store over triples that are already encoded against
// d; the new store shares d rather than copying it. This is the loading
// path of horizontal partitioning (internal/shard): shard stores hold a
// slice of one parent dataset and must agree with it on term ids, so rows
// from different shards are directly comparable and decode through the one
// shared dictionary. The caller must pass deduplicated triples (a parent
// Store's triple table already is) and must not mutate the slice afterwards.
func FromEncoded(d *dict.Dictionary, triples []Triple) *Store {
	return assemble(d, triples)
}

// assemble builds the derived state (per-predicate relations, the sorted
// predicate list, distinct-value statistics) over encoded triples.
func assemble(d *dict.Dictionary, triples []Triple) *Store {
	st := &Store{
		dict:      d,
		relations: make(map[dict.ID]*Relation),
		triples:   triples,
	}
	for _, t := range triples {
		rel := st.relations[t.P]
		if rel == nil {
			rel = &Relation{Predicate: t.P}
			st.relations[t.P] = rel
			st.predicates = append(st.predicates, t.P)
		}
		rel.S = append(rel.S, t.S)
		rel.O = append(rel.O, t.O)
	}
	sort.Slice(st.predicates, func(i, j int) bool { return st.predicates[i] < st.predicates[j] })
	for _, rel := range st.relations {
		rel.distinctS = countDistinct(rel.S)
		rel.distinctO = countDistinct(rel.O)
	}
	return st
}

func countDistinct(vals []uint32) int {
	m := make(map[uint32]struct{}, len(vals)/2+1)
	for _, v := range vals {
		m[v] = struct{}{}
	}
	return len(m)
}

// FromTriples builds a store from a triple slice in one step.
func FromTriples(ts []rdf.Triple) *Store {
	b := NewBuilder()
	b.AddAll(ts)
	return b.Build()
}

// Dict returns the dataset's shared dictionary.
func (s *Store) Dict() *dict.Dictionary { return s.dict }

// NumTriples returns the number of distinct triples loaded.
func (s *Store) NumTriples() int { return len(s.triples) }

// Triples returns the encoded triple table. Callers must not mutate it.
func (s *Store) Triples() []Triple { return s.triples }

// Predicates returns the encoded predicate ids present, in ascending order.
func (s *Store) Predicates() []dict.ID { return s.predicates }

// Relation returns the vertically partitioned table for the predicate, or
// nil if the predicate does not occur in the data.
func (s *Store) Relation(p dict.ID) *Relation { return s.relations[p] }

// RelationByIRI looks the predicate up by IRI.
func (s *Store) RelationByIRI(iri string) *Relation {
	id, ok := s.dict.LookupIRI(iri)
	if !ok {
		return nil
	}
	return s.relations[id]
}

// Stats describes one predicate table for cardinality estimation.
type Stats struct {
	Rows      int
	DistinctS int
	DistinctO int
}

// Stats returns statistics for predicate p. Unknown predicates report zero
// rows.
func (s *Store) Stats(p dict.ID) Stats {
	rel := s.relations[p]
	if rel == nil {
		return Stats{}
	}
	return Stats{Rows: rel.Len(), DistinctS: rel.distinctS, DistinctO: rel.distinctO}
}

// String summarizes the store.
func (s *Store) String() string {
	return fmt.Sprintf("Store{triples=%d, predicates=%d, terms=%d}",
		len(s.triples), len(s.relations), s.dict.Size())
}
