// Package store implements the vertically partitioned RDF storage layer
// shared by every engine in this repository (§IV-A2 of the paper: "we store
// and process the RDF data in a vertically partitioned manner as this has
// been shown to be superior to storing the data as triples").
//
// A Store groups dictionary-encoded triples by predicate: each predicate
// owns a two-column (subject, object) relation. The store also retains the
// full encoded triple table for engines that want it (the RDF-3X baseline
// builds its six permutation indexes from it) and per-predicate statistics
// for cardinality estimation.
package store

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dict"
	"repro/internal/radix"
	"repro/internal/rdf"
	"repro/internal/set"
	"repro/internal/trie"
)

// trieSlot is a once-per-index build latch: a lock-free fast path for the
// served case plus a per-slot mutex so exactly one goroutine builds while
// waiters of the *same* index block — and nobody else. Independent slots
// build and serve concurrently: a slow (S,O) build no longer holds up a
// reader that needs the already-cached (O,S) trie or the other layout
// policy's cache, which mattered the moment trie builds moved onto the
// Compact() serving path.
type trieSlot struct {
	v  atomic.Pointer[trie.Trie]
	mu sync.Mutex
}

// get returns the slot's trie, building it via build on first use.
func (sl *trieSlot) get(build func() *trie.Trie) *trie.Trie {
	if t := sl.v.Load(); t != nil {
		return t
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if t := sl.v.Load(); t != nil {
		return t
	}
	t := build()
	sl.v.Store(t)
	return t
}

// peek returns the trie if it has been built, without triggering a build —
// memory accounting reads this so /stats never forces index construction.
func (sl *trieSlot) peek() *trie.Trie { return sl.v.Load() }

// numPolicies is the number of layout-policy cache slots per index.
const numPolicies = 3

// policyIdx maps a layout policy to its cache slot index.
func policyIdx(p set.Policy) int {
	switch p {
	case set.PolicyUintOnly:
		return 1
	case set.PolicyAdaptive:
		return 2
	}
	return 0
}

// Relation is one vertically partitioned predicate table: parallel subject
// and object columns, one row per (distinct) triple.
type Relation struct {
	Predicate dict.ID
	S, O      []uint32

	distinctS, distinctO int

	// Lazily built trie indexes over (S,O) and (O,S), one latch per
	// (order, policy) slot so independent indexes build concurrently.
	so, os [numPolicies]trieSlot
}

// Len returns the number of rows.
func (r *Relation) Len() int { return len(r.S) }

// DistinctS returns the number of distinct subjects.
func (r *Relation) DistinctS() int { return r.distinctS }

// DistinctO returns the number of distinct objects.
func (r *Relation) DistinctO() int { return r.distinctO }

// TrieSO returns the (subject, object) trie for this relation, building and
// caching it on first use. The policy chooses set layouts; the two policies
// are cached independently so ablations do not interfere. Safe for
// concurrent use; concurrent callers of other slots never block.
func (r *Relation) TrieSO(policy set.Policy) *trie.Trie {
	return r.so[policyIdx(policy)].get(func() *trie.Trie {
		return trie.BuildFromColumns([][]uint32{r.S, r.O}, policy)
	})
}

// TrieOS returns the (object, subject) trie, building and caching it on
// first use. Safe for concurrent use; concurrent callers of other slots
// never block.
func (r *Relation) TrieOS(policy set.Policy) *trie.Trie {
	return r.os[policyIdx(policy)].get(func() *trie.Trie {
		return trie.BuildFromColumns([][]uint32{r.O, r.S}, policy)
	})
}

// indexMemoryBytes sums the footprint of the relation's built tries.
func (r *Relation) indexMemoryBytes() int {
	total := 0
	for i := 0; i < numPolicies; i++ {
		if t := r.so[i].peek(); t != nil {
			total += t.MemoryBytes()
		}
		if t := r.os[i].peek(); t != nil {
			total += t.MemoryBytes()
		}
	}
	return total
}

// Triple is one dictionary-encoded triple.
type Triple struct {
	S, P, O uint32
}

// Store is an immutable, dictionary-encoded, vertically partitioned RDF
// dataset.
type Store struct {
	dict       *dict.Dictionary
	relations  map[dict.ID]*Relation
	triples    []Triple
	predicates []dict.ID // sorted, for deterministic iteration

	// Lazily built full-table tries (see TripleTrie), one latch per
	// (permutation, policy) so distinct permutations build concurrently.
	// Indexed by permIdx: perm[0]*3+perm[1] ∈ [0,9) (6 of the 9 slots are
	// valid permutations; the rest stay empty).
	tripleTries [numPolicies][9]trieSlot
}

// permIdx encodes a column permutation as a slot index.
func permIdx(perm [3]int) int { return perm[0]*3 + perm[1] }

// TripleTrie returns a trie over the full triple table with columns ordered
// by perm (a permutation of {0,1,2} = {S,P,O}), building and caching it on
// first use. Engines use these for patterns with variable predicates; the
// RDF-3X baseline keeps all six permutations, mirroring its clustered
// indexes. Safe for concurrent use; builds of distinct permutations or
// policies proceed concurrently.
func (s *Store) TripleTrie(perm [3]int, policy set.Policy) *trie.Trie {
	return s.tripleTries[policyIdx(policy)][permIdx(perm)].get(func() *trie.Trie {
		cols := make([][]uint32, 3)
		for c := 0; c < 3; c++ {
			cols[c] = make([]uint32, len(s.triples))
		}
		for i, t := range s.triples {
			pos := [3]uint32{t.S, t.P, t.O}
			for c := 0; c < 3; c++ {
				cols[c][i] = pos[perm[c]]
			}
		}
		return trie.BuildFromColumns(cols, policy)
	})
}

// Builder accumulates triples and produces an immutable Store.
type Builder struct {
	dict    *dict.Dictionary
	triples []Triple
	seen    map[Triple]bool
}

// NewBuilder returns an empty builder with a fresh dictionary.
func NewBuilder() *Builder {
	return &Builder{dict: dict.New(), seen: make(map[Triple]bool)}
}

// Add encodes and appends one triple. Exact duplicate triples are dropped
// (RDF graphs are sets of triples).
func (b *Builder) Add(t rdf.Triple) {
	s, p, o := b.dict.EncodeTriple(t)
	enc := Triple{S: s, P: p, O: o}
	if b.seen[enc] {
		return
	}
	b.seen[enc] = true
	b.triples = append(b.triples, enc)
}

// AddAll appends every triple in ts.
func (b *Builder) AddAll(ts []rdf.Triple) {
	for _, t := range ts {
		b.Add(t)
	}
}

// Build finalizes the store. The builder must not be used afterwards.
func (b *Builder) Build() *Store {
	return assemble(b.dict, b.triples)
}

// FromEncoded builds a store over triples that are already encoded against
// d; the new store shares d rather than copying it. This is the loading
// path of horizontal partitioning (internal/shard): shard stores hold a
// slice of one parent dataset and must agree with it on term ids, so rows
// from different shards are directly comparable and decode through the one
// shared dictionary. The caller must pass deduplicated triples (a parent
// Store's triple table already is) and must not mutate the slice afterwards.
func FromEncoded(d *dict.Dictionary, triples []Triple) *Store {
	return assemble(d, triples)
}

// assemble builds the derived state (per-predicate relations, the sorted
// predicate list, distinct-value statistics) over encoded triples. It runs
// on every store build — including each Compact() swap and every shard of a
// Partition — so the statistics pass is a radix sort (one reused scratch,
// sequential memory traffic), not a hash map per column.
func assemble(d *dict.Dictionary, triples []Triple) *Store {
	st := &Store{
		dict:      d,
		relations: make(map[dict.ID]*Relation),
		triples:   triples,
	}
	for _, t := range triples {
		rel := st.relations[t.P]
		if rel == nil {
			rel = &Relation{Predicate: t.P}
			st.relations[t.P] = rel
			st.predicates = append(st.predicates, t.P)
		}
		rel.S = append(rel.S, t.S)
		rel.O = append(rel.O, t.O)
	}
	sort.Slice(st.predicates, func(i, j int) bool { return st.predicates[i] < st.predicates[j] })
	var scratch radix.Scratch
	for _, rel := range st.relations {
		rel.distinctS = scratch.CountDistinct(rel.S)
		rel.distinctO = scratch.CountDistinct(rel.O)
	}
	return st
}

// FromTriples builds a store from a triple slice in one step.
func FromTriples(ts []rdf.Triple) *Store {
	b := NewBuilder()
	b.AddAll(ts)
	return b.Build()
}

// Dict returns the dataset's shared dictionary.
func (s *Store) Dict() *dict.Dictionary { return s.dict }

// NumTriples returns the number of distinct triples loaded.
func (s *Store) NumTriples() int { return len(s.triples) }

// Triples returns the encoded triple table. Callers must not mutate it.
func (s *Store) Triples() []Triple { return s.triples }

// Predicates returns the encoded predicate ids present, in ascending order.
func (s *Store) Predicates() []dict.ID { return s.predicates }

// Relation returns the vertically partitioned table for the predicate, or
// nil if the predicate does not occur in the data.
func (s *Store) Relation(p dict.ID) *Relation { return s.relations[p] }

// RelationByIRI looks the predicate up by IRI.
func (s *Store) RelationByIRI(iri string) *Relation {
	id, ok := s.dict.LookupIRI(iri)
	if !ok {
		return nil
	}
	return s.relations[id]
}

// Stats describes one predicate table for cardinality estimation.
type Stats struct {
	Rows      int
	DistinctS int
	DistinctO int
}

// Stats returns statistics for predicate p. Unknown predicates report zero
// rows.
func (s *Store) Stats(p dict.ID) Stats {
	rel := s.relations[p]
	if rel == nil {
		return Stats{}
	}
	return Stats{Rows: rel.Len(), DistinctS: rel.distinctS, DistinctO: rel.distinctO}
}

// IndexMemoryBytes estimates the heap footprint of every trie index built
// so far (per-relation SO/OS tries across both layout policies, plus any
// full-table permutation tries). It never triggers index construction, so
// /stats can call it on the serving path; unbuilt indexes report zero.
func (s *Store) IndexMemoryBytes() int {
	total := 0
	for _, rel := range s.relations {
		total += rel.indexMemoryBytes()
	}
	for p := range s.tripleTries {
		for i := range s.tripleTries[p] {
			if t := s.tripleTries[p][i].peek(); t != nil {
				total += t.MemoryBytes()
			}
		}
	}
	return total
}

// String summarizes the store.
func (s *Store) String() string {
	return fmt.Sprintf("Store{triples=%d, predicates=%d, terms=%d}",
		len(s.triples), len(s.relations), s.dict.Size())
}
