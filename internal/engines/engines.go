// Package engines is the registry mapping engine names to constructors. It
// is the single place that knows how to build every benchmarked engine over
// a store, shared by the root repro package, cmd/rdfq, and the query
// server's per-request ?engine= selection.
package engines

import (
	"fmt"
	"slices"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/engine/logicblox"
	"repro/internal/engine/monetdb"
	"repro/internal/engine/naive"
	"repro/internal/engine/rdf3x"
	"repro/internal/engine/triplebit"
	"repro/internal/live"
	"repro/internal/shard"
	"repro/internal/store"
)

// Names lists the selectable engine names: the paper's Table II engines in
// column order, plus the cost-model router and the naive reference engine.
func Names() []string {
	return []string{"emptyheaded", "triplebit", "rdf3x", "monetdb", "logicblox", "auto", "naive"}
}

// New builds the named engine over st. Engine construction may build
// indexes eagerly (rdf3x sorts six triple permutations, triplebit builds
// its matrices), so callers that serve many queries should construct each
// engine once and reuse it.
func New(name string, st *store.Store) (engine.Engine, error) {
	switch name {
	case "emptyheaded":
		return core.New(st, core.AllOptimizations), nil
	case "auto":
		return newAuto(st), nil
	case "logicblox":
		return logicblox.New(st), nil
	case "monetdb":
		return monetdb.New(st), nil
	case "rdf3x":
		return rdf3x.New(st), nil
	case "triplebit":
		return triplebit.New(st), nil
	case "naive":
		return naive.New(st), nil
	default:
		return nil, fmt.Errorf("unknown engine %q (available: %s)", name, strings.Join(Names(), ", "))
	}
}

// NewSharded builds one instance of the named engine over every shard of p
// and returns the scatter-gather wrapper, which satisfies the same
// engine.Engine contract. Engine construction runs once per shard, so the
// same reuse advice as New applies, per shard set.
func NewSharded(name string, p *shard.Partitioned) (engine.Engine, error) {
	return shard.NewEngine(p, name, func(st *store.Store) (engine.Engine, error) {
		return New(name, st)
	})
}

// NewLive wraps the named engine over a live (read-write) store: queries
// run against the delta overlay, and each epoch's inner engine — sharded
// when the live store is partitioned — is built lazily and cached until the
// next compaction swaps the base.
func NewLive(name string, ls *live.Store) (*live.Engine, error) {
	if !slices.Contains(Names(), name) {
		return nil, fmt.Errorf("unknown engine %q (available: %s)", name, strings.Join(Names(), ", "))
	}
	return live.NewEngine(ls, name, func(st *store.Store, p *shard.Partitioned) (engine.Engine, error) {
		if p != nil {
			return NewSharded(name, p)
		}
		return New(name, st)
	}), nil
}

// NewClusterLive is NewLive for a cluster coordinator: each epoch's
// scatter-gather engine is built as in NewLive (the store must be
// partitioned), then pointed at remote, so every per-shard sub-query is
// served by the worker fleet instead of the local shard engines. The local
// partition still provides the scatter planner's statistics (pruning,
// probe choice) — only the drains go remote.
func NewClusterLive(name string, ls *live.Store, remote shard.RemoteOpener) (*live.Engine, error) {
	if !slices.Contains(Names(), name) {
		return nil, fmt.Errorf("unknown engine %q (available: %s)", name, strings.Join(Names(), ", "))
	}
	return live.NewEngine(ls, name, func(st *store.Store, p *shard.Partitioned) (engine.Engine, error) {
		if p == nil {
			return nil, fmt.Errorf("cluster serving requires a partitioned store (Shards > 1)")
		}
		eng, err := NewSharded(name, p)
		if err != nil {
			return nil, err
		}
		eng.(*shard.Engine).SetRemote(remote)
		return eng, nil
	}), nil
}
