package engines

import (
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/engine/logicblox"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/store"
)

// autoEngine routes every query to the engine class the cost model
// (internal/plan) prices cheapest: the fully optimized hybrid GHD plan for
// selective and cyclic queries, a flat worst-case optimal leapfrog for
// intersection-heavy big-output queries (where GHD materialization costs
// more than it saves), and uint-layout scan enumeration for join-free
// output-dominated queries (where bitset decode is pure overhead). Routing
// decisions are cached per parsed query; the cache's hit rate and every
// pick are recorded in the stats.Default ledger for /stats.
type autoEngine struct {
	st      *store.Store
	byClass [3]engine.Engine

	mu     sync.Mutex
	routes map[*query.BGP]plan.EngineClass
}

func newAuto(st *store.Store) *autoEngine {
	return &autoEngine{
		st: st,
		byClass: [3]engine.Engine{
			plan.ClassHybridGHD: core.New(st, core.AllOptimizations),
			plan.ClassPureWCOJ:  logicblox.New(st),
			// Every optimization except the layout chooser: enumeration
			// streams sorted uint arrays instead of decoding bitsets.
			plan.ClassScanEnumerate: core.New(st, core.Options{
				AttributeReorder: true,
				GHDPushdown:      true,
				Pipelining:       true,
			}),
		},
		routes: map[*query.BGP]plan.EngineClass{},
	}
}

// Name implements engine.Engine.
func (e *autoEngine) Name() string { return "auto" }

// route resolves (and caches) the engine class for q.
func (e *autoEngine) route(q *query.BGP) (engine.Engine, plan.EngineClass, error) {
	e.mu.Lock()
	cls, ok := e.routes[q]
	e.mu.Unlock()
	stats.Default.RecordCostLookup(ok)
	if !ok {
		prof, err := plan.ProfileQuery(q, e.st)
		if err != nil {
			return nil, 0, err
		}
		cls, _ = prof.ChooseClass()
		e.mu.Lock()
		e.routes[q] = cls
		e.mu.Unlock()
	}
	stats.Default.RecordEnginePick(cls.String())
	return e.byClass[cls], cls, nil
}

// Open implements engine.Engine by delegating to the routed engine.
func (e *autoEngine) Open(q *query.BGP, opts engine.ExecOpts) (engine.Cursor, error) {
	sub, cls, err := e.route(q)
	if err != nil {
		return nil, err
	}
	obs.SpanFrom(opts.Ctx).SetAttr("engine_class", cls.String())
	return sub.Open(q, opts)
}

var _ engine.Engine = (*autoEngine)(nil)
