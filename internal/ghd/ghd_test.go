package ghd

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/hypergraph"
)

// q2Edges models LUBM query 2: a triangle over x,y,z plus three selective
// type relations with selection vertices $a,$b,$c.
func q2Edges() ([]hypergraph.Edge, map[string]bool) {
	edges := []hypergraph.Edge{
		{Name: "type_x", Vertices: []string{"x", "$a"}, Size: 1000},
		{Name: "type_y", Vertices: []string{"y", "$b"}, Size: 1000},
		{Name: "type_z", Vertices: []string{"z", "$c"}, Size: 1000},
		{Name: "memberOf", Vertices: []string{"x", "z"}, Size: 5000},
		{Name: "subOrg", Vertices: []string{"z", "y"}, Size: 500},
		{Name: "uDF", Vertices: []string{"x", "y"}, Size: 2000},
	}
	sel := map[string]bool{"$a": true, "$b": true, "$c": true}
	return edges, sel
}

// q4Edges models LUBM query 4's acyclic star: R(x,y1) S(x,$a) T(x,$b)
// U(x,y2) V(x,y3) with selections on $a and $b (Figure 3).
func q4Edges() ([]hypergraph.Edge, map[string]bool) {
	edges := []hypergraph.Edge{
		{Name: "R", Vertices: []string{"x", "y1"}, Size: 1000},
		{Name: "S", Vertices: []string{"x", "$a"}, Size: 1000},
		{Name: "T", Vertices: []string{"x", "$b"}, Size: 1000},
		{Name: "U", Vertices: []string{"x", "y2"}, Size: 1000},
		{Name: "V", Vertices: []string{"x", "y3"}, Size: 1000},
	}
	sel := map[string]bool{"$a": true, "$b": true}
	return edges, sel
}

func TestFigure2GHDQuery2(t *testing.T) {
	edges, sel := q2Edges()
	g, err := Choose(edges, sel, Options{})
	if err != nil {
		t.Fatalf("Choose: %v", err)
	}
	if math.Abs(g.Width-1.5) > 1e-6 {
		t.Errorf("Q2 width = %v, want 1.5 (the paper's fhw for Figure 2)", g.Width)
	}
	// The baseline objective (min width, then min height) yields the
	// Figure 2 shape: the triangle in one node with the three type
	// relations hanging off it.
	if g.Height != 1 {
		t.Errorf("Q2 height = %d, want 1\n%s", g.Height, g)
	}
	if !reflect.DeepEqual(g.Root.Bag, []string{"x", "y", "z"}) {
		t.Errorf("Q2 root bag = %v, want [x y z]\n%s", g.Root.Bag, g)
	}
	if !reflect.DeepEqual(g.Root.Edges, []int{3, 4, 5}) {
		t.Errorf("Q2 root edges = %v, want the triangle [3 4 5]\n%s", g.Root.Edges, g)
	}
	if len(g.Root.Children) != 3 {
		t.Fatalf("Q2 root children = %d, want 3\n%s", len(g.Root.Children), g)
	}
	if err := Validate(g, edges); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestQuery2PushdownKeepsWidth(t *testing.T) {
	edges, sel := q2Edges()
	g, err := Choose(edges, sel, Options{PushdownAcrossNodes: true})
	if err != nil {
		t.Fatalf("Choose: %v", err)
	}
	if math.Abs(g.WidthVars-1.5) > 1e-6 {
		t.Errorf("Q2 pushdown widthVars = %v, want 1.5", g.WidthVars)
	}
	// Pushdown maximizes selection depth; selections must not sit at the
	// root-only depth 0 in aggregate.
	if g.SelectionDepth < 3 {
		t.Errorf("Q2 pushdown selection depth = %d, want >= 3\n%s", g.SelectionDepth, g)
	}
	if err := Validate(g, edges); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestFigure3GHDQuery4(t *testing.T) {
	edges, sel := q4Edges()

	// Baseline: min width (1), then min height -> a star of height 1; the
	// selective relations sit directly under the root.
	base, err := Choose(edges, sel, Options{})
	if err != nil {
		t.Fatalf("Choose baseline: %v", err)
	}
	if math.Abs(base.Width-1) > 1e-6 || base.Height != 1 {
		t.Errorf("Q4 baseline width/height = %v/%d, want 1/1\n%s", base.Width, base.Height, base)
	}
	if err := Validate(base, edges); err != nil {
		t.Errorf("Validate baseline: %v", err)
	}

	// +GHD: selective relations pushed as deep as possible (Figure 3
	// right): selection depth strictly improves over the baseline.
	push, err := Choose(edges, sel, Options{PushdownAcrossNodes: true})
	if err != nil {
		t.Fatalf("Choose pushdown: %v", err)
	}
	if math.Abs(push.WidthVars-1) > 1e-6 {
		t.Errorf("Q4 pushdown widthVars = %v, want 1", push.WidthVars)
	}
	if push.SelectionDepth <= base.SelectionDepth {
		t.Errorf("pushdown selection depth %d not deeper than baseline %d\nbase:\n%s\npush:\n%s",
			push.SelectionDepth, base.SelectionDepth, base, push)
	}
	// The selective relations S (edge 1) and T (edge 2) must be strictly
	// below the root.
	rootEdges := map[int]bool{}
	for _, e := range push.Root.Edges {
		rootEdges[e] = true
	}
	if rootEdges[1] || rootEdges[2] {
		t.Errorf("pushdown left a selective relation at the root\n%s", push)
	}
	if err := Validate(push, edges); err != nil {
		t.Errorf("Validate pushdown: %v", err)
	}
}

func TestSingleEdgeQuery(t *testing.T) {
	edges := []hypergraph.Edge{{Name: "type", Vertices: []string{"x", "$a"}, Size: 100}}
	sel := map[string]bool{"$a": true}
	g, err := Choose(edges, sel, Options{})
	if err != nil {
		t.Fatalf("Choose: %v", err)
	}
	if g.NumNodes != 1 || g.Height != 0 || math.Abs(g.Width-1) > 1e-6 {
		t.Errorf("single-edge GHD = %+v", g)
	}
	if err := Validate(g, edges); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestTwoSelectiveEdgesQuery1Shape(t *testing.T) {
	// LUBM Q1: type(x,$a) and takesCourse(x,$b), both selective.
	edges := []hypergraph.Edge{
		{Name: "type", Vertices: []string{"x", "$a"}, Size: 1000},
		{Name: "takesCourse", Vertices: []string{"x", "$b"}, Size: 3000},
	}
	sel := map[string]bool{"$a": true, "$b": true}
	for _, pd := range []bool{false, true} {
		g, err := Choose(edges, sel, Options{PushdownAcrossNodes: pd})
		if err != nil {
			t.Fatalf("Choose(pushdown=%v): %v", pd, err)
		}
		if err := Validate(g, edges); err != nil {
			t.Errorf("Validate(pushdown=%v): %v\n%s", pd, err, g)
		}
	}
}

func TestEveryEnumeratedGHDIsValid(t *testing.T) {
	for name, mk := range map[string]func() ([]hypergraph.Edge, map[string]bool){
		"q2": q2Edges,
		"q4": q4Edges,
	} {
		edges, sel := mk()
		all, err := Enumerate(edges, sel, Options{MaxCandidates: 500})
		if err != nil {
			t.Fatalf("%s: Enumerate: %v", name, err)
		}
		if len(all) < 2 {
			t.Fatalf("%s: expected multiple candidates, got %d", name, len(all))
		}
		for i, g := range all {
			if err := Validate(g, edges); err != nil {
				t.Errorf("%s candidate %d invalid: %v\n%s", name, i, err, g)
			}
		}
	}
}

func TestChooseErrors(t *testing.T) {
	if _, err := Choose(nil, nil, Options{}); err == nil {
		t.Errorf("empty edge list should error")
	}
	big := make([]hypergraph.Edge, 31)
	for i := range big {
		big[i] = hypergraph.Edge{Name: "e", Vertices: []string{"x"}}
	}
	if _, err := Choose(big, nil, Options{}); err == nil {
		t.Errorf("oversized query should error")
	}
}

func TestDisconnectedQueryDecomposes(t *testing.T) {
	// Cartesian product of two independent patterns — still a valid GHD
	// (two components under whichever root is chosen).
	edges := []hypergraph.Edge{
		{Name: "A", Vertices: []string{"x", "y"}, Size: 10},
		{Name: "B", Vertices: []string{"p", "q"}, Size: 10},
	}
	g, err := Choose(edges, nil, Options{})
	if err != nil {
		t.Fatalf("Choose: %v", err)
	}
	if err := Validate(g, edges); err != nil {
		t.Errorf("Validate: %v\n%s", err, g)
	}
	if g.NumNodes != 2 {
		t.Errorf("expected 2 nodes, got %d\n%s", g.NumNodes, g)
	}
}

func TestSelfJoinDuplicateEdges(t *testing.T) {
	// Two patterns over the same relation and the same vertices: one gets
	// absorbed into the other's node.
	edges := []hypergraph.Edge{
		{Name: "R", Vertices: []string{"x", "y"}, Size: 10},
		{Name: "R", Vertices: []string{"x", "y"}, Size: 10},
	}
	g, err := Choose(edges, nil, Options{})
	if err != nil {
		t.Fatalf("Choose: %v", err)
	}
	if g.NumNodes != 1 || len(g.Root.Edges) != 2 {
		t.Errorf("absorption failed: %s", g)
	}
	if err := Validate(g, edges); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestPathQueryGHD(t *testing.T) {
	// R(a,b) S(b,c) T(c,d): acyclic chain, width must be 1.
	edges := []hypergraph.Edge{
		{Name: "R", Vertices: []string{"a", "b"}, Size: 10},
		{Name: "S", Vertices: []string{"b", "c"}, Size: 10},
		{Name: "T", Vertices: []string{"c", "d"}, Size: 10},
	}
	g, err := Choose(edges, nil, Options{})
	if err != nil {
		t.Fatalf("Choose: %v", err)
	}
	if math.Abs(g.Width-1) > 1e-6 {
		t.Errorf("chain width = %v, want 1\n%s", g.Width, g)
	}
	if err := Validate(g, edges); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestTriangleOnlyGHD(t *testing.T) {
	edges := []hypergraph.Edge{
		{Name: "R", Vertices: []string{"x", "y"}, Size: 10},
		{Name: "S", Vertices: []string{"y", "z"}, Size: 10},
		{Name: "T", Vertices: []string{"z", "x"}, Size: 10},
	}
	g, err := Choose(edges, nil, Options{})
	if err != nil {
		t.Fatalf("Choose: %v", err)
	}
	// A cyclic query: the best GHD is the single node holding all three
	// relations with width 1.5.
	if g.NumNodes != 1 || math.Abs(g.Width-1.5) > 1e-6 {
		t.Errorf("triangle GHD = %s", g)
	}
}

func TestPipelineable(t *testing.T) {
	cases := []struct {
		parent, child []string
		want          bool
	}{
		{[]string{"x", "y"}, []string{"x", "z"}, true},  // Q8 example from Def. 2
		{[]string{"x", "y"}, []string{"z", "x"}, false}, // shared var not a child prefix
		{[]string{"y", "x"}, []string{"x", "z"}, false}, // shared var not a parent prefix
		{[]string{"x", "y"}, []string{"x", "y"}, true},  // identical orders
		{[]string{"x"}, []string{"x"}, true},            // trivial shared prefix
		{[]string{"x", "y"}, []string{"z", "w"}, false}, // disjoint
		{[]string{"x", "y", "z"}, []string{"x", "y", "w"}, true},
	}
	for _, c := range cases {
		if got := Pipelineable(c.parent, c.child); got != c.want {
			t.Errorf("Pipelineable(%v, %v) = %v, want %v", c.parent, c.child, got, c.want)
		}
	}
}

func TestGHDStringRendering(t *testing.T) {
	edges, sel := q2Edges()
	g, err := Choose(edges, sel, Options{})
	if err != nil {
		t.Fatalf("Choose: %v", err)
	}
	s := g.String()
	if !strings.Contains(s, "width=1.50") || !strings.Contains(s, "[x y z]") {
		t.Errorf("String() = %s", s)
	}
}
