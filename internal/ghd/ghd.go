// Package ghd implements generalized hypertree decompositions (GHDs), the
// query-plan representation of the EmptyHeaded engine (§II-C of the paper),
// together with the plan-selection objectives the paper uses:
//
//   - baseline: lowest fractional width, then smallest height (§II-C);
//   - "+GHD" selection pushdown across nodes (§III-B2): among the GHDs that
//     are width-optimal when only non-selection attributes must be covered,
//     choose one with maximal selection depth (the sum of distances from
//     selective relations to the root), so that high-selectivity relations
//     execute earliest in the bottom-up pass.
//
// Selection attributes (pattern positions bound to constants) are modelled
// as ordinary hypergraph vertices with synthetic names; the caller tells
// Choose which vertices those are.
package ghd

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/hypergraph"
)

// Node is one GHD node: χ(t) is Bag, λ(t) is Edges (indices into the input
// edge list; absorbed edges — edges entirely covered by the bag — are
// included so the executor joins them here).
type Node struct {
	Bag      []string // sorted
	Edges    []int    // sorted pattern indices
	Children []*Node
}

// walk visits the subtree rooted at n pre-order with node depths.
func (n *Node) walk(depth int, fn func(*Node, int)) {
	fn(n, depth)
	for _, c := range n.Children {
		c.walk(depth+1, fn)
	}
}

// signature returns a canonical string for structural deduplication and
// deterministic tie-breaking.
func (n *Node) signature() string {
	var b strings.Builder
	b.WriteByte('[')
	b.WriteString(strings.Join(n.Bag, ","))
	b.WriteByte('|')
	for i, e := range n.Edges {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", e)
	}
	sigs := make([]string, len(n.Children))
	for i, c := range n.Children {
		sigs[i] = c.signature()
	}
	sort.Strings(sigs)
	for _, s := range sigs {
		b.WriteByte(';')
		b.WriteString(s)
	}
	b.WriteByte(']')
	return b.String()
}

// GHD is a complete decomposition with its scoring metrics.
type GHD struct {
	Root *Node
	// Width is the maximum, over nodes, of the fractional edge cover
	// number of the node's bag by the node's edges (all vertices,
	// including selection vertices). The paper reports this as fhw.
	Width float64
	// WidthVars is the same maximum where only non-selection vertices must
	// be covered — the "+GHD" step-1 objective (§III-B2).
	WidthVars float64
	// Height is the maximum node depth (root = 0).
	Height int
	// SelectionDepth is the sum, over selective edges, of the depth of the
	// node holding the edge (§III-B2 step 3).
	SelectionDepth int
	// SelectivePure reports that no node holding a selective relation has
	// a non-selective relation anywhere below it. Pushing selections down
	// means selective nodes sit at the bottom of the tree (executed first
	// in the bottom-up pass); a tree that "gains" selection depth by
	// hoisting one selective relation to the root while sinking the rest
	// violates the optimization's intent and is rejected when a pure
	// candidate exists.
	SelectivePure bool
	// NumNodes counts the tree's nodes.
	NumNodes int
}

// String renders the decomposition tree compactly for logs and golden tests.
func (g *GHD) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "GHD{width=%.2f, height=%d, seldepth=%d}\n", g.Width, g.Height, g.SelectionDepth)
	var render func(n *Node, indent string)
	render = func(n *Node, indent string) {
		fmt.Fprintf(&b, "%s[%s] edges=%v\n", indent, strings.Join(n.Bag, " "), n.Edges)
		for _, c := range n.Children {
			render(c, indent+"  ")
		}
	}
	render(g.Root, "")
	return b.String()
}

// Options configures GHD selection.
type Options struct {
	// PushdownAcrossNodes enables the paper's "+GHD" optimization: the
	// step-1 width objective ignores selection vertices, and selection
	// depth is maximized before height is minimized.
	PushdownAcrossNodes bool
	// MaxCandidates caps the number of decompositions considered per
	// subproblem; 0 means the default. Benchmark queries are small enough
	// that the cap never binds.
	MaxCandidates int
}

const defaultMaxCandidates = 4096

// Choose enumerates GHDs of the query hypergraph and returns the best one
// under the configured objective. selVerts identifies selection vertices.
// It returns an error only for degenerate inputs (no edges).
func Choose(edges []hypergraph.Edge, selVerts map[string]bool, opts Options) (*GHD, error) {
	cands, err := enumerate(edges, opts)
	if err != nil {
		return nil, err
	}
	sc := newScorer(edges, selVerts)
	best := (*GHD)(nil)
	for _, root := range cands {
		g, err := sc.score(root)
		if err != nil {
			return nil, err
		}
		if best == nil || less(g, best, opts.PushdownAcrossNodes) {
			best = g
		}
	}
	return best, nil
}

// Enumerate returns every candidate decomposition (deduplicated, capped),
// scored. Exposed for tests and the ghdviz tool.
func Enumerate(edges []hypergraph.Edge, selVerts map[string]bool, opts Options) ([]*GHD, error) {
	cands, err := enumerate(edges, opts)
	if err != nil {
		return nil, err
	}
	sc := newScorer(edges, selVerts)
	out := make([]*GHD, 0, len(cands))
	for _, root := range cands {
		g, err := sc.score(root)
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j], opts.PushdownAcrossNodes) })
	return out, nil
}

const widthEps = 1e-6

// less orders candidates best-first under the paper's objectives.
func less(a, b *GHD, pushdown bool) bool {
	if pushdown {
		// §III-B2: min width over non-selection vertices, then selective
		// purity, then max selection depth, then min height.
		if math.Abs(a.WidthVars-b.WidthVars) > widthEps {
			return a.WidthVars < b.WidthVars
		}
		if a.SelectivePure != b.SelectivePure {
			return a.SelectivePure
		}
		if a.SelectionDepth != b.SelectionDepth {
			return a.SelectionDepth > b.SelectionDepth
		}
		if a.Height != b.Height {
			return a.Height < b.Height
		}
	} else {
		// §II-C: min width (all vertices), then min height.
		if math.Abs(a.Width-b.Width) > widthEps {
			return a.Width < b.Width
		}
		if a.Height != b.Height {
			return a.Height < b.Height
		}
	}
	if a.NumNodes != b.NumNodes {
		return a.NumNodes < b.NumNodes
	}
	return a.Root.signature() < b.Root.signature()
}

// scorer computes GHD metrics with memoized cover LPs (the same node shapes
// recur across thousands of candidate trees).
type scorer struct {
	edges    []hypergraph.Edge
	selVerts map[string]bool
	cache    map[string][2]float64 // node key -> {width, widthVars}
	errs     map[string]error
}

func newScorer(edges []hypergraph.Edge, selVerts map[string]bool) *scorer {
	return &scorer{edges: edges, selVerts: selVerts, cache: map[string][2]float64{}, errs: map[string]error{}}
}

func (sc *scorer) nodeWidths(n *Node) (float64, float64, error) {
	key := strings.Join(n.Bag, ",") + "|" + fmt.Sprint(n.Edges)
	if w, ok := sc.cache[key]; ok {
		return w[0], w[1], sc.errs[key]
	}
	nodeEdges := make([]hypergraph.Edge, len(n.Edges))
	for i, ei := range n.Edges {
		nodeEdges[i] = sc.edges[ei]
	}
	w, err := hypergraph.FractionalCoverNumber(n.Bag, nodeEdges)
	var varsOnly []string
	for _, v := range n.Bag {
		if !sc.selVerts[v] {
			varsOnly = append(varsOnly, v)
		}
	}
	wv, err2 := hypergraph.FractionalCoverNumber(varsOnly, nodeEdges)
	if err == nil {
		err = err2
	}
	sc.cache[key] = [2]float64{w, wv}
	if err != nil {
		sc.errs[key] = err
	}
	return w, wv, err
}

func (sc *scorer) edgeSelective(ei int) bool {
	for _, v := range sc.edges[ei].Vertices {
		if sc.selVerts[v] {
			return true
		}
	}
	return false
}

func (sc *scorer) score(root *Node) (*GHD, error) {
	g := &GHD{Root: root, Width: 0, WidthVars: 0, SelectivePure: true}
	var firstErr error
	root.walk(0, func(n *Node, depth int) {
		if depth > g.Height {
			g.Height = depth
		}
		g.NumNodes++
		for _, ei := range n.Edges {
			if sc.edgeSelective(ei) {
				g.SelectionDepth += depth
			}
		}
		w, wv, err := sc.nodeWidths(n)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if w > g.Width {
			g.Width = w
		}
		if wv > g.WidthVars {
			g.WidthVars = wv
		}
	})
	// Purity: a node holding a selective relation must not have a
	// non-selective relation strictly below it.
	var pure func(n *Node) (subSel, subNonSel bool)
	pure = func(n *Node) (bool, bool) {
		ownSel, subNonSel := false, false
		for _, ei := range n.Edges {
			if sc.edgeSelective(ei) {
				ownSel = true
			} else {
				subNonSel = true
			}
		}
		subSel := ownSel
		belowNonSel := false
		for _, c := range n.Children {
			cs, cn := pure(c)
			subSel = subSel || cs
			belowNonSel = belowNonSel || cn
		}
		if ownSel && belowNonSel {
			g.SelectivePure = false
		}
		return subSel, subNonSel || belowNonSel
	}
	pure(root)
	return g, firstErr
}

// --- enumeration -----------------------------------------------------------

type enumerator struct {
	all  []hypergraph.Edge
	memo map[memoKey][]*Node
	cap  int
}

type memoKey struct {
	mask  uint32
	iface string
}

// enumerate produces candidate roots for the full edge set.
func enumerate(edges []hypergraph.Edge, opts Options) ([]*Node, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("ghd: no edges to decompose")
	}
	if len(edges) > 30 {
		return nil, fmt.Errorf("ghd: too many relations (%d) for exhaustive decomposition", len(edges))
	}
	capN := opts.MaxCandidates
	if capN <= 0 {
		capN = defaultMaxCandidates
	}
	e := &enumerator{all: edges, memo: map[memoKey][]*Node{}, cap: capN}
	idx := make([]int, len(edges))
	for i := range idx {
		idx[i] = i
	}
	roots := e.decompose(idx, nil)
	if len(roots) == 0 {
		return nil, fmt.Errorf("ghd: no valid decomposition found")
	}
	return roots, nil
}

func maskOf(edges []int) uint32 {
	var m uint32
	for _, e := range edges {
		m |= 1 << uint(e)
	}
	return m
}

// decompose returns candidate subtree roots covering exactly the given
// edges, whose root bag must contain every vertex in iface.
func (e *enumerator) decompose(edges []int, iface []string) []*Node {
	key := memoKey{mask: maskOf(edges), iface: strings.Join(iface, ",")}
	if cached, ok := e.memo[key]; ok {
		return cached
	}
	// Install a placeholder to guard against (impossible) recursion on the
	// same key; the subproblem always strictly shrinks, so this is defensive.
	e.memo[key] = nil

	var out []*Node
	seen := map[string]bool{}
	add := func(n *Node) {
		if len(out) >= e.cap {
			return
		}
		sig := n.signature()
		if !seen[sig] {
			seen[sig] = true
			out = append(out, n)
		}
	}

	for mask := 1; mask < 1<<uint(len(edges)); mask++ {
		var lambda []int
		for i, ei := range edges {
			if mask&(1<<uint(i)) != 0 {
				lambda = append(lambda, ei)
			}
		}
		bag := e.vertexUnion(lambda)
		if !containsAll(bag, iface) {
			continue
		}
		bagSet := toSet(bag)
		// Absorb every remaining edge fully covered by the bag.
		nodeEdges := append([]int(nil), lambda...)
		var rest []int
		lambdaSet := toIntSet(lambda)
		for _, ei := range edges {
			if lambdaSet[ei] {
				continue
			}
			if coveredBy(e.all[ei].Vertices, bagSet) {
				nodeEdges = append(nodeEdges, ei)
			} else {
				rest = append(rest, ei)
			}
		}
		sort.Ints(nodeEdges)
		comps := hypergraph.Connected(rest, e.all, bagSet)
		// Components may be decomposed as independent children or grouped
		// into a shared child subtree. Grouping is what produces the
		// "across nodes" chains of Figure 3, where selective relations sit
		// below non-selective ones even though they would be separate
		// components under a star.
		for _, grouping := range partitions(len(comps)) {
			options := make([][]*Node, len(grouping))
			feasible := true
			for gi, group := range grouping {
				var groupEdges []int
				for _, ci := range group {
					groupEdges = append(groupEdges, comps[ci]...)
				}
				sort.Ints(groupEdges)
				childIface := intersectVars(e.vertexUnion(groupEdges), bagSet)
				options[gi] = e.decompose(groupEdges, childIface)
				if len(options[gi]) == 0 {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			// Cartesian product of child options.
			e.product(options, 0, make([]*Node, 0, len(grouping)), func(children []*Node) {
				n := &Node{Bag: bag, Edges: nodeEdges}
				n.Children = append([]*Node(nil), children...)
				add(n)
			})
			if len(out) >= e.cap {
				break
			}
		}
		if len(out) >= e.cap {
			break
		}
	}
	e.memo[key] = out
	return out
}

// partitions enumerates the set partitions of {0..n-1} (n is the number of
// connected components; Bell(n) results). n=0 yields one empty partition.
func partitions(n int) [][][]int {
	if n == 0 {
		return [][][]int{{}}
	}
	var out [][][]int
	var rec func(i int, groups [][]int)
	rec = func(i int, groups [][]int) {
		if i == n {
			cp := make([][]int, len(groups))
			for gi, g := range groups {
				cp[gi] = append([]int(nil), g...)
			}
			out = append(out, cp)
			return
		}
		for gi := range groups {
			groups[gi] = append(groups[gi], i)
			rec(i+1, groups)
			groups[gi] = groups[gi][:len(groups[gi])-1]
		}
		rec(i+1, append(groups, []int{i}))
	}
	rec(0, nil)
	return out
}

func (e *enumerator) product(options [][]*Node, i int, acc []*Node, emit func([]*Node)) {
	if i == len(options) {
		emit(acc)
		return
	}
	for _, opt := range options[i] {
		e.product(options, i+1, append(acc, opt), emit)
	}
}

func (e *enumerator) vertexUnion(edges []int) []string {
	seen := map[string]bool{}
	var out []string
	for _, ei := range edges {
		for _, v := range e.all[ei].Vertices {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Strings(out)
	return out
}

func toSet(vs []string) map[string]bool {
	m := make(map[string]bool, len(vs))
	for _, v := range vs {
		m[v] = true
	}
	return m
}

func toIntSet(vs []int) map[int]bool {
	m := make(map[int]bool, len(vs))
	for _, v := range vs {
		m[v] = true
	}
	return m
}

func containsAll(sorted []string, want []string) bool {
	set := toSet(sorted)
	for _, v := range want {
		if !set[v] {
			return false
		}
	}
	return true
}

func coveredBy(vs []string, bag map[string]bool) bool {
	for _, v := range vs {
		if !bag[v] {
			return false
		}
	}
	return true
}

func intersectVars(vs []string, set map[string]bool) []string {
	var out []string
	for _, v := range vs {
		if set[v] {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// --- validity & pipelining --------------------------------------------------

// Validate checks the four GHD properties of Definition 1 plus the
// edge-partition invariant our construction maintains (every input edge
// appears in exactly one node's edge list). Used by tests.
func Validate(g *GHD, edges []hypergraph.Edge) error {
	// Property 1: every edge's vertices inside some bag; and partition.
	assigned := map[int]int{}
	g.Root.walk(0, func(n *Node, _ int) {
		bag := toSet(n.Bag)
		for _, ei := range n.Edges {
			assigned[ei]++
			if !coveredBy(edges[ei].Vertices, bag) {
				// Flagged below via count check hack: record as -1.
				assigned[ei] = -1 << 20
			}
		}
	})
	for i := range edges {
		if assigned[i] != 1 {
			return fmt.Errorf("ghd: edge %d assigned %d times or uncovered", i, assigned[i])
		}
	}
	// Property 2: running intersection — for every vertex, the nodes whose
	// bags contain it form a connected subtree.
	type nodeInfo struct {
		node   *Node
		parent *Node
	}
	var nodes []nodeInfo
	var collect func(n, parent *Node)
	collect = func(n, parent *Node) {
		nodes = append(nodes, nodeInfo{n, parent})
		for _, c := range n.Children {
			collect(c, n)
		}
	}
	collect(g.Root, nil)
	vertices := map[string]bool{}
	for _, e := range edges {
		for _, v := range e.Vertices {
			vertices[v] = true
		}
	}
	for v := range vertices {
		// Count nodes containing v whose parent does not contain v: must
		// be exactly one (the top of v's subtree) for connectivity.
		tops := 0
		present := 0
		for _, ni := range nodes {
			if !toSet(ni.node.Bag)[v] {
				continue
			}
			present++
			if ni.parent == nil || !toSet(ni.parent.Bag)[v] {
				tops++
			}
		}
		if present > 0 && tops != 1 {
			return fmt.Errorf("ghd: vertex %q induces a disconnected subtree (%d tops)", v, tops)
		}
	}
	// Properties 3 & 4: χ(t) ⊆ ∪λ(t). Our bags are exactly the union, but
	// check anyway.
	var badBag error
	g.Root.walk(0, func(n *Node, _ int) {
		cover := map[string]bool{}
		for _, ei := range n.Edges {
			for _, v := range edges[ei].Vertices {
				cover[v] = true
			}
		}
		for _, v := range n.Bag {
			if !cover[v] && badBag == nil {
				badBag = fmt.Errorf("ghd: bag vertex %q not covered by node edges", v)
			}
		}
	})
	return badBag
}

// Pipelineable reports whether parent and child satisfy Definition 2 of the
// paper: χ(t0) ∩ χ(t1) must be a prefix of the trie (attribute) orders of
// both nodes. The attribute orders are supplied by the planner (global
// attribute order restricted to each bag, selections excluded — result
// tries only carry variables).
func Pipelineable(parentOrder, childOrder []string) bool {
	shared := map[string]bool{}
	inChild := toSet(childOrder)
	for _, v := range parentOrder {
		if inChild[v] {
			shared[v] = true
		}
	}
	if len(shared) == 0 {
		return false
	}
	// The shared set must be a prefix of both orders.
	for i, order := range [][]string{parentOrder, childOrder} {
		_ = i
		for j := 0; j < len(shared); j++ {
			if j >= len(order) || !shared[order[j]] {
				return false
			}
		}
	}
	return true
}
