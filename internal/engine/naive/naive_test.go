package naive

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/store"
)

func t3(s, p, o string) rdf.Triple {
	return rdf.Triple{S: rdf.NewIRI(s), P: rdf.NewIRI(p), O: rdf.NewIRI(o)}
}

func build() *Engine {
	return New(store.FromTriples([]rdf.Triple{
		t3("a", "p", "x"), t3("a", "p", "y"), t3("b", "p", "x"),
		t3("x", "q", "k"), t3("y", "q", "k"),
	}))
}

func TestBasicJoin(t *testing.T) {
	e := build()
	q := query.MustParseSPARQL(`SELECT ?s ?o WHERE { ?s <p> ?o . ?o <q> <k> . }`)
	res, err := engine.Execute(e, q)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if res.Len() != 3 {
		t.Errorf("rows = %d, want 3", res.Len())
	}
}

func TestMissingConstantYieldsEmpty(t *testing.T) {
	e := build()
	for _, text := range []string{
		`SELECT ?s WHERE { ?s <nope> ?o . }`,
		`SELECT ?s WHERE { ?s <p> <absent> . }`,
		`SELECT ?s WHERE { <absent> <p> ?s . }`,
	} {
		res, err := engine.Execute(e, query.MustParseSPARQL(text))
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		if res.Len() != 0 {
			t.Errorf("%s: rows = %d, want 0", text, res.Len())
		}
	}
}

func TestDistinct(t *testing.T) {
	e := build()
	q := query.MustParseSPARQL(`SELECT DISTINCT ?s WHERE { ?s <p> ?o . }`)
	res, err := engine.Execute(e, q)
	if err != nil || res.Len() != 2 {
		t.Errorf("distinct rows = %d err %v", res.Len(), err)
	}
	q2 := query.MustParseSPARQL(`SELECT ?s WHERE { ?s <p> ?o . }`)
	res2, _ := engine.Execute(e, q2)
	if res2.Len() != 3 {
		t.Errorf("multiset rows = %d", res2.Len())
	}
}

func TestRepeatedVariableInPattern(t *testing.T) {
	e := New(store.FromTriples([]rdf.Triple{
		t3("a", "p", "a"), t3("a", "p", "b"),
	}))
	res, err := engine.Execute(e, query.MustParseSPARQL(`SELECT ?x WHERE { ?x <p> ?x . }`))
	if err != nil || res.Len() != 1 {
		t.Errorf("self-loop rows = %d err %v", res.Len(), err)
	}
}

func TestInvalidQuery(t *testing.T) {
	e := build()
	if _, err := engine.Execute(e, &query.BGP{Select: []string{"x"}}); err == nil {
		t.Errorf("invalid query accepted")
	}
}

func TestName(t *testing.T) {
	if build().Name() != "naive" {
		t.Errorf("name wrong")
	}
}
