// Package naive implements a deliberately simple reference engine: pattern-
// at-a-time backtracking over hash indexes on the triple table. It is the
// correctness oracle for every other engine in the repository — slow but
// obviously right. The only concession to performance is a greedy dynamic
// pattern ordering (cheapest candidate list first), without which the LUBM
// test fixtures would take minutes.
package naive

import (
	"context"

	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/store"
)

// Engine is the reference implementation of engine.Engine.
type Engine struct {
	st *store.Store
	// Hash indexes over the triple table, built eagerly: by subject, by
	// predicate, by object, and the raw table.
	byS, byP, byO map[uint32][]store.Triple
	all           []store.Triple
}

// New builds the reference engine (and its hash indexes) over st.
func New(st *store.Store) *Engine {
	e := &Engine{
		st:  st,
		byS: map[uint32][]store.Triple{},
		byP: map[uint32][]store.Triple{},
		byO: map[uint32][]store.Triple{},
		all: st.Triples(),
	}
	for _, t := range e.all {
		e.byS[t.S] = append(e.byS[t.S], t)
		e.byP[t.P] = append(e.byP[t.P], t)
		e.byO[t.O] = append(e.byO[t.O], t)
	}
	return e
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "naive" }

// binding maps variable names to encoded values during backtracking.
type binding map[string]uint32

// Open implements engine.Engine by streaming the backtracking search
// through a cursor, always expanding the pattern with the fewest candidate
// triples next. Cancellation is polled on a stride inside the candidate
// loops, so even a pathological search stops promptly.
func (e *Engine) Open(q *query.BGP, opts engine.ExecOpts) (engine.Cursor, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Err(); err != nil {
		return nil, err
	}
	cur := engine.NewGenerator(opts.Ctx, q.Select, func(ctx context.Context, emit func([]uint32) error) error {
		b := binding{}
		var dedup map[string]bool
		if q.Distinct {
			dedup = map[string]bool{}
		}
		remaining := make([]query.Pattern, len(q.Patterns))
		copy(remaining, q.Patterns)
		s := &search{e: e, tick: engine.NewTicker(ctx)}
		return s.solve(remaining, b, func() error {
			row := make([]uint32, len(q.Select))
			for i, v := range q.Select {
				row[i] = b[v]
			}
			if dedup != nil {
				key := engine.RowKey(row)
				if dedup[key] {
					return nil
				}
				dedup[key] = true
			}
			return emit(row)
		})
	})
	return engine.Limit(cur, opts.Offset, opts.MaxRows), nil
}

// search is one execution's backtracking state: the engine's indexes plus
// the strided context poll.
type search struct {
	e    *Engine
	tick *engine.Ticker
}

// candidates returns the cheapest candidate list for a pattern under the
// current bindings, or (nil, false) when a constant is absent from the data
// (no matches possible).
func (e *Engine) candidates(pat query.Pattern, b binding) ([]store.Triple, bool) {
	sv, sBound, sOK := e.resolve(pat.S, b)
	pv, pBound, pOK := e.resolve(pat.P, b)
	ov, oBound, oOK := e.resolve(pat.O, b)
	if !sOK || !pOK || !oOK {
		return nil, false
	}
	best := e.all
	if sBound && len(e.byS[sv]) < len(best) {
		best = e.byS[sv]
	}
	if pBound && len(e.byP[pv]) < len(best) {
		best = e.byP[pv]
	}
	if oBound && len(e.byO[ov]) < len(best) {
		best = e.byO[ov]
	}
	return best, true
}

func (s *search) solve(remaining []query.Pattern, b binding, emit func() error) error {
	if len(remaining) == 0 {
		return emit()
	}
	e := s.e
	// Pick the pattern with the smallest candidate list.
	bestIdx := -1
	var bestCands []store.Triple
	for i, pat := range remaining {
		cands, ok := e.candidates(pat, b)
		if !ok {
			return nil // a constant is absent: no solutions down this branch
		}
		if bestIdx < 0 || len(cands) < len(bestCands) {
			bestIdx, bestCands = i, cands
		}
	}
	pat := remaining[bestIdx]
	rest := make([]query.Pattern, 0, len(remaining)-1)
	rest = append(rest, remaining[:bestIdx]...)
	rest = append(rest, remaining[bestIdx+1:]...)

	sv, sBound, _ := e.resolve(pat.S, b)
	pv, pBound, _ := e.resolve(pat.P, b)
	ov, oBound, _ := e.resolve(pat.O, b)

	for _, t := range bestCands {
		if err := s.tick.Check(); err != nil {
			return err
		}
		if sBound && t.S != sv || pBound && t.P != pv || oBound && t.O != ov {
			continue
		}
		// Bind free variables, respecting repeated variables within the
		// pattern (e.g. ?x p ?x).
		var undo []string
		ok := true
		for _, posn := range []struct {
			n query.Node
			v uint32
		}{{pat.S, t.S}, {pat.P, t.P}, {pat.O, t.O}} {
			if !posn.n.IsVar {
				continue
			}
			if bound, exists := b[posn.n.Var]; exists {
				if bound != posn.v {
					ok = false
					break
				}
				continue
			}
			b[posn.n.Var] = posn.v
			undo = append(undo, posn.n.Var)
		}
		var err error
		if ok {
			err = s.solve(rest, b, emit)
		}
		for _, v := range undo {
			delete(b, v)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// resolve returns the value a position is fixed to (by constant or current
// binding). The third result is false when the position is a constant that
// does not occur anywhere in the data, in which case the pattern cannot
// match.
func (e *Engine) resolve(n query.Node, b binding) (uint32, bool, bool) {
	if n.IsVar {
		v, ok := b[n.Var]
		return v, ok, true
	}
	id, ok := e.st.Dict().Lookup(n.Term)
	if !ok {
		return 0, false, false
	}
	return id, true, true
}

var _ engine.Engine = (*Engine)(nil)
