package engine_test

// The cross-engine cursor conformance suite: every engine in the registry
// must satisfy the streaming contract of package engine —
//
//	(a) a pre-cancelled context fails promptly with the context's error,
//	(b) cancellation mid-enumeration stops the cursor within a bounded
//	    number of rows (no detached executions anywhere), and
//	(c) Collect(Open(...)) reproduces the materialized result multiset the
//	    old Execute API returned, checked against the naive oracle on the
//	    LUBM golden queries,
//
// plus exact row-cap/offset semantics for every engine.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/engines"
	"repro/internal/lubm"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/store"
)

// conformanceStore is a complete digraph over n vertices: the triangle
// query on it yields n^3 rows, enough to observe mid-stream cancellation.
func conformanceStore(n int) *store.Store {
	b := store.NewBuilder()
	p := rdf.NewIRI("http://c/p")
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Add(rdf.Triple{
				S: rdf.NewIRI(fmt.Sprintf("http://c/n%d", i)),
				P: p,
				O: rdf.NewIRI(fmt.Sprintf("http://c/n%d", j)),
			})
		}
	}
	return b.Build()
}

const conformanceTriangle = `SELECT ?x ?y ?z WHERE { ?x <http://c/p> ?y . ?y <http://c/p> ?z . ?x <http://c/p> ?z }`

// forEachEngine runs f once per registered engine over st.
func forEachEngine(t *testing.T, st *store.Store, f func(t *testing.T, e engine.Engine)) {
	t.Helper()
	for _, name := range engines.Names() {
		e, err := engines.New(name, st)
		if err != nil {
			t.Fatalf("engines.New(%s): %v", name, err)
		}
		t.Run(name, func(t *testing.T) { f(t, e) })
	}
}

// TestConformancePreCancelled: opening with an already-cancelled context
// must surface ctx.Err() promptly — either from Open itself or from the
// first Next — without doing the query's work.
func TestConformancePreCancelled(t *testing.T) {
	st := conformanceStore(24)
	q := query.MustParseSPARQL(conformanceTriangle)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	forEachEngine(t, st, func(t *testing.T, e engine.Engine) {
		start := time.Now()
		cur, err := e.Open(q, engine.ExecOpts{Ctx: ctx})
		if err == nil {
			_, err = cur.Next()
			cur.Close()
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if d := time.Since(start); d > time.Second {
			t.Fatalf("pre-cancelled open took %v", d)
		}
	})
}

// TestConformanceCancelMidEnumeration: cancel after a few rows; the cursor
// must fail within a bounded number of further rows (the generator's
// buffered batches), proving the producer reacted instead of enumerating
// the full n^3 result detached.
func TestConformanceCancelMidEnumeration(t *testing.T) {
	st := conformanceStore(64) // 262144 triangle rows if run to completion
	q := query.MustParseSPARQL(conformanceTriangle)
	forEachEngine(t, st, func(t *testing.T, e engine.Engine) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		cur, err := e.Open(q, engine.ExecOpts{Ctx: ctx})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		defer cur.Close()
		for i := 0; i < 10; i++ {
			if _, err := cur.Next(); err != nil {
				t.Fatalf("row %d: %v", i, err)
			}
		}
		cancel()
		// Bounded drain: buffered rows may still arrive, but the error must
		// show up long before the full result would.
		const bound = 20000
		rowsAfter := 0
		deadline := time.After(10 * time.Second)
		for {
			select {
			case <-deadline:
				t.Fatalf("cursor did not observe cancellation within 10s (%d rows drained)", rowsAfter)
			default:
			}
			_, err := cur.Next()
			if errors.Is(err, context.Canceled) {
				return // contract satisfied
			}
			if err != nil {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			rowsAfter++
			if rowsAfter > bound {
				t.Fatalf("more than %d rows after cancellation — producer did not stop", bound)
			}
		}
	})
}

// TestConformanceCollectMatchesNaiveOnLUBM: for every engine, the cursor
// pipeline materialized via Collect must reproduce the naive oracle's
// result multiset on the LUBM golden queries — the "old Execute" behavior,
// now routed through Open.
func TestConformanceCollectMatchesNaiveOnLUBM(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	scale := 1
	st := store.FromTriples(lubm.Generate(lubm.Config{Universities: scale}))
	ref, err := engines.New("naive", st)
	if err != nil {
		t.Fatal(err)
	}
	for _, qn := range lubm.QueryNumbers {
		q := query.MustParseSPARQL(lubm.Query(qn, scale))
		want, err := engine.Collect(ref.Open(q, engine.ExecOpts{}))
		if err != nil {
			t.Fatalf("Q%d naive: %v", qn, err)
		}
		wantC := want.Canonical()
		forEachEngine(t, st, func(t *testing.T, e engine.Engine) {
			got, err := engine.Collect(e.Open(q, engine.ExecOpts{}))
			if err != nil {
				t.Fatalf("Q%d: %v", qn, err)
			}
			if got.Truncated {
				t.Fatalf("Q%d: uncapped result marked truncated", qn)
			}
			if got.Canonical() != wantC {
				t.Errorf("Q%d: got %d rows, want %d", qn, got.Len(), want.Len())
			}
		})
	}
}

// TestConformanceExactTruncationAndOffset: for every engine, MaxRows is
// exact (a cap equal to the result size is not "truncated"; one below is)
// and Offset skips rows without changing the multiset's tail size.
func TestConformanceExactTruncationAndOffset(t *testing.T) {
	n := 8
	total := n * n * n // 512 triangle rows
	st := conformanceStore(n)
	q := query.MustParseSPARQL(conformanceTriangle)
	forEachEngine(t, st, func(t *testing.T, e engine.Engine) {
		exact, err := engine.Collect(e.Open(q, engine.ExecOpts{MaxRows: total}))
		if err != nil {
			t.Fatal(err)
		}
		if exact.Len() != total || exact.Truncated {
			t.Fatalf("exact cap: rows=%d truncated=%v, want %d/false", exact.Len(), exact.Truncated, total)
		}
		capped, err := engine.Collect(e.Open(q, engine.ExecOpts{MaxRows: total - 1}))
		if err != nil {
			t.Fatal(err)
		}
		if capped.Len() != total-1 || !capped.Truncated {
			t.Fatalf("cap-1: rows=%d truncated=%v, want %d/true", capped.Len(), capped.Truncated, total-1)
		}
		shifted, err := engine.Collect(e.Open(q, engine.ExecOpts{Offset: total - 5}))
		if err != nil {
			t.Fatal(err)
		}
		if shifted.Len() != 5 || shifted.Truncated {
			t.Fatalf("offset: rows=%d truncated=%v, want 5/false", shifted.Len(), shifted.Truncated)
		}
	})
}

// TestConformanceEarlyCloseStopsProducer: closing a cursor after a few rows
// must not leak the producing goroutine — a second full run on the same
// engine still works and Close is idempotent.
func TestConformanceEarlyCloseStopsProducer(t *testing.T) {
	st := conformanceStore(16)
	q := query.MustParseSPARQL(conformanceTriangle)
	forEachEngine(t, st, func(t *testing.T, e engine.Engine) {
		cur, err := e.Open(q, engine.ExecOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cur.Next(); err != nil {
			t.Fatal(err)
		}
		if err := cur.Close(); err != nil {
			t.Fatal(err)
		}
		if err := cur.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := cur.Next(); err != io.EOF {
			t.Fatalf("Next after Close = %v, want io.EOF", err)
		}
		res, err := engine.Collect(e.Open(q, engine.ExecOpts{}))
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 16*16*16 {
			t.Fatalf("rerun after early close: %d rows, want %d", res.Len(), 16*16*16)
		}
	})
}
