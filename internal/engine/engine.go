// Package engine defines the execution contract every query engine in this
// repository implements — a streaming, context-aware, row-bounded cursor
// model — plus the materialized result representation used for cross-engine
// comparisons (the paper's Table II benchmarks five engines on identical
// queries; our integration tests additionally assert that all engines
// return identical result multisets).
//
// The contract is Open(query, ExecOpts) → Cursor: rows are produced
// incrementally, cancellation is cooperative (every engine stops promptly
// once ExecOpts.Ctx is done), and row caps/offsets are enforced exactly at
// the cursor layer (Truncated is true iff at least one row beyond MaxRows
// exists — no "limit+1 probe" leaks into engine code). Collect adapts a
// cursor back to the old materialized Result API for tests and benchmarks.
package engine

import (
	"context"
	"io"
	"sort"
	"strings"

	"repro/internal/dict"
	"repro/internal/query"
	"repro/internal/rdf"
)

// ExecOpts parameterizes one query execution. The zero value means: no
// cancellation, no row cap, no offset, engine-default parallelism.
type ExecOpts struct {
	// Ctx, when non-nil, cancels execution cooperatively: once it is done,
	// the cursor's Next returns the context's error within a bounded number
	// of rows (engines poll it on a stride inside their innermost loops).
	Ctx context.Context
	// MaxRows, when positive, caps the rows the cursor yields. The cap is
	// exact: after MaxRows rows Next returns io.EOF, and Truncated reports
	// true iff at least one further row existed.
	MaxRows int
	// Offset skips that many rows before the first one is yielded (applied
	// before MaxRows, after DISTINCT deduplication).
	Offset int
	// Workers requests intra-query parallelism (final-enumeration
	// partitioning in the WCOJ engines). Values <= 1 mean the engine's
	// default; engines without a parallel path ignore it.
	Workers int
}

// Context returns opts.Ctx, defaulting to context.Background().
func (o ExecOpts) Context() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// Err returns the context's error, if a context is set and it is done.
func (o ExecOpts) Err() error {
	if o.Ctx != nil {
		return o.Ctx.Err()
	}
	return nil
}

// Cursor streams one query's dictionary-encoded result rows. Cursors are
// single-consumer: Next and Close must not be called concurrently. Close
// is idempotent and must be called when the consumer is done (it stops the
// producing computation and frees its resources); closing mid-stream is the
// supported way to abandon a result early.
type Cursor interface {
	// Vars is the projection, in the query's SELECT order.
	Vars() []string
	// Next returns the next row, or io.EOF after the last one. Returned
	// rows are owned by the caller (the cursor never reuses or mutates
	// them). Any other error (context cancellation, execution failure)
	// terminates the stream.
	Next() ([]uint32, error)
	// Truncated reports whether a MaxRows cap cut the stream short. It is
	// meaningful after Next has returned io.EOF, and the report is exact:
	// true iff at least one row beyond the cap existed.
	Truncated() bool
	// Close stops the producer and releases resources. Safe to call more
	// than once, and after Next returned an error.
	Close() error
}

// Engine is a query engine bound to one dataset.
type Engine interface {
	// Name identifies the engine in benchmark output.
	Name() string
	// Open starts executing a basic graph pattern query and returns the
	// cursor over its rows. Validation and planning errors are returned
	// synchronously; execution errors surface from the cursor's Next. A
	// pre-cancelled opts.Ctx returns its error immediately.
	Open(q *query.BGP, opts ExecOpts) (Cursor, error)
}

// Execute runs q to completion on e and materializes the result — the old
// one-shot API, preserved for tests, benchmarks, and CLIs on top of the
// cursor contract.
func Execute(e Engine, q *query.BGP) (*Result, error) {
	return Collect(e.Open(q, ExecOpts{}))
}

// Collect drains a freshly opened cursor into a materialized Result and
// closes it. Its signature matches Open's return values so call sites read
// engine.Collect(e.Open(q, opts)).
func Collect(c Cursor, err error) (*Result, error) {
	if err != nil {
		return nil, err
	}
	defer c.Close()
	res := &Result{Vars: c.Vars()}
	for {
		row, err := c.Next()
		if err == io.EOF {
			res.Truncated = c.Truncated()
			return res, nil
		}
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
}

// Result is a dictionary-encoded query result: one row per solution, in the
// query's SELECT order. Rows are multisets (SPARQL semantics without
// DISTINCT).
type Result struct {
	Vars []string
	Rows [][]uint32
	// Truncated marks a result cut off by a row limit (serving-layer
	// protection); Rows holds the first rows found, not all of them.
	Truncated bool
}

// Len returns the number of rows.
func (r *Result) Len() int { return len(r.Rows) }

// Decode maps every row back to RDF terms.
func (r *Result) Decode(d *dict.Dictionary) [][]rdf.Term {
	out := make([][]rdf.Term, len(r.Rows))
	for i, row := range r.Rows {
		terms := make([]rdf.Term, len(row))
		for j, id := range row {
			terms[j] = d.Decode(id)
		}
		out[i] = terms
	}
	return out
}

// Canonical returns a canonical string for the result multiset: rows
// rendered and sorted. Two results are equivalent iff their canonical forms
// are equal. Intended for tests; cost is O(n log n) in the row count.
func (r *Result) Canonical() string {
	lines := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		var b strings.Builder
		for j, v := range row {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(uitoa(v))
		}
		lines[i] = b.String()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func uitoa(v uint32) string {
	if v == 0 {
		return "0"
	}
	var buf [10]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
