// Package engine defines the interface every query engine in this
// repository implements, plus the shared result representation used for
// cross-engine comparisons (the paper's Table II benchmarks five engines on
// identical queries; our integration tests additionally assert that all
// engines return identical result multisets).
package engine

import (
	"context"
	"sort"
	"strings"

	"repro/internal/dict"
	"repro/internal/query"
	"repro/internal/rdf"
)

// Result is a dictionary-encoded query result: one row per solution, in the
// query's SELECT order. Rows are multisets (SPARQL semantics without
// DISTINCT).
type Result struct {
	Vars []string
	Rows [][]uint32
	// Truncated marks a result cut off by a row limit (serving-layer
	// protection); Rows holds the first rows found, not all of them.
	Truncated bool
}

// Len returns the number of rows.
func (r *Result) Len() int { return len(r.Rows) }

// Decode maps every row back to RDF terms.
func (r *Result) Decode(d *dict.Dictionary) [][]rdf.Term {
	out := make([][]rdf.Term, len(r.Rows))
	for i, row := range r.Rows {
		terms := make([]rdf.Term, len(row))
		for j, id := range row {
			terms[j] = d.Decode(id)
		}
		out[i] = terms
	}
	return out
}

// Canonical returns a canonical string for the result multiset: rows
// rendered and sorted. Two results are equivalent iff their canonical forms
// are equal. Intended for tests; cost is O(n log n) in the row count.
func (r *Result) Canonical() string {
	lines := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		var b strings.Builder
		for j, v := range row {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(uitoa(v))
		}
		lines[i] = b.String()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func uitoa(v uint32) string {
	if v == 0 {
		return "0"
	}
	var buf [10]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Engine is a query engine bound to one dataset.
type Engine interface {
	// Name identifies the engine in benchmark output.
	Name() string
	// Execute runs a basic graph pattern query and returns its result.
	Execute(q *query.BGP) (*Result, error)
}

// ContextEngine is implemented by engines whose execution honours context
// cancellation and deadlines. The query server uses it to bound per-request
// work; engines that cannot be interrupted mid-join fall back to
// best-effort handling at the serving layer.
type ContextEngine interface {
	Engine
	// ExecuteContext is Execute with cooperative cancellation: it returns
	// ctx.Err() (possibly wrapped) once the context is done.
	ExecuteContext(ctx context.Context, q *query.BGP) (*Result, error)
}
