// Package pairwise implements the classic pairwise (one-join-at-a-time)
// query executor shared by the MonetDB-, RDF-3X-, and TripleBit-like
// baselines of the paper's evaluation. The engines differ only in their
// access paths (ScanProvider): column scans for the relational column
// store, clustered permutation indexes for RDF-3X, per-predicate matrices
// for TripleBit. Join ordering is a Selinger-style dynamic program over
// left-deep plans with textbook cardinality estimation; physical joins are
// hash joins or, when the provider supports bound lookups, index
// nested-loop joins.
//
// Execution satisfies the engine.Cursor contract: intermediates are still
// fully materialized between operators (that is the model the paper
// evaluates), but every scan, build, and probe loop polls the execution
// context on a stride, so a cancelled request abandons the pipeline
// promptly instead of running detached, and the final projection streams
// row-by-row through the cursor.
//
// This is exactly the engine family the paper proves asymptotically
// suboptimal on cyclic queries (§I): any pairwise plan for the triangle
// takes Ω(N²) in the worst case, while the generic worst-case optimal join
// in internal/exec runs in O(N^{3/2}).
package pairwise

import (
	"context"
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/query"
)

// Table is a materialized intermediate relation over named variables.
type Table struct {
	Vars []string
	Rows [][]uint32
}

// VarIndex returns the column index of v, or -1.
func (t *Table) VarIndex(v string) int {
	for i, x := range t.Vars {
		if x == v {
			return i
		}
	}
	return -1
}

// ScanProvider supplies access paths for one dataset. Scan and
// ScanBoundEach receive the execution context and must poll it on a stride
// (engine.NewTicker) inside their row loops, returning its error once done
// — this is what makes the pairwise engines cooperatively cancellable all
// the way down to their access paths.
type ScanProvider interface {
	// Scan returns all rows matching pat, one column per distinct
	// variable of pat (in subject, predicate, object order).
	Scan(ctx context.Context, pat query.Pattern) (*Table, error)
	// CanBind reports whether ScanBoundEach supports lookups with the
	// given variables pre-bound.
	CanBind(pat query.Pattern, bound []string) bool
	// ScanBoundEach streams rows of pat that agree with the given
	// bindings; rows use the same column order as Scan. The row slice is
	// reused; callers must copy.
	ScanBoundEach(ctx context.Context, pat query.Pattern, bound []string, values []uint32, emit func(row []uint32)) error
	// EstimateCard estimates the number of rows Scan would return.
	EstimateCard(pat query.Pattern) float64
	// EstimateBound estimates the rows per lookup of ScanBoundEach.
	EstimateBound(pat query.Pattern, bound []string) float64
	// EstimateDistinct estimates the number of distinct values of
	// variable v among the rows of Scan(pat).
	EstimateDistinct(pat query.Pattern, v string) float64
}

// Engine executes BGPs with pairwise joins over a ScanProvider.
type Engine struct {
	name  string
	scans ScanProvider
}

// New returns a pairwise engine with the given name and access paths.
func New(name string, scans ScanProvider) *Engine {
	return &Engine{name: name, scans: scans}
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return e.name }

// PatternVars returns the distinct variables of a pattern in S, P, O order.
func PatternVars(pat query.Pattern) []string {
	var out []string
	seen := map[string]bool{}
	for _, n := range []query.Node{pat.S, pat.P, pat.O} {
		if n.IsVar && !seen[n.Var] {
			seen[n.Var] = true
			out = append(out, n.Var)
		}
	}
	return out
}

// Open implements engine.Engine. The join pipeline runs on the cursor's
// producer goroutine; the final projection streams through the cursor.
func (e *Engine) Open(q *query.BGP, opts engine.ExecOpts) (engine.Cursor, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Err(); err != nil {
		return nil, err
	}
	// Join ordering is planning: it runs synchronously so Open reports its
	// errors directly (the Engine contract), and only execution streams.
	steps, err := e.optimize(q.Patterns)
	if err != nil {
		return nil, err
	}
	cur := engine.NewGenerator(opts.Ctx, q.Select, func(ctx context.Context, emit func([]uint32) error) error {
		cur, err := e.scans.Scan(ctx, q.Patterns[steps[0].pattern])
		if err != nil {
			return err
		}
		for _, s := range steps[1:] {
			pat := q.Patterns[s.pattern]
			if s.useINLJ {
				cur, err = e.indexNestedLoopJoin(ctx, cur, pat)
			} else {
				var right *Table
				right, err = e.scans.Scan(ctx, pat)
				if err == nil {
					cur, err = hashJoin(ctx, cur, right)
				}
			}
			if err != nil {
				return err
			}
		}
		return project(ctx, cur, q.Select, q.Distinct, emit)
	})
	return engine.Limit(cur, opts.Offset, opts.MaxRows), nil
}

// project streams the final table's SELECT columns to emit, deduplicating
// when distinct is set.
func project(ctx context.Context, t *Table, sel []string, distinct bool, emit func([]uint32) error) error {
	idx := make([]int, len(sel))
	for i, v := range sel {
		idx[i] = t.VarIndex(v)
	}
	var dedup map[string]bool
	if distinct {
		dedup = map[string]bool{}
	}
	tick := engine.NewTicker(ctx)
	for _, row := range t.Rows {
		if err := tick.Check(); err != nil {
			return err
		}
		out := make([]uint32, len(idx))
		for i, j := range idx {
			out[i] = row[j]
		}
		if dedup != nil {
			key := engine.RowKey(out)
			if dedup[key] {
				continue
			}
			dedup[key] = true
		}
		if err := emit(out); err != nil {
			return err
		}
	}
	return nil
}

// --- physical operators -----------------------------------------------------

// HashJoin joins two tables on their shared variables (natural join),
// building a hash table on the smaller input. With no shared variables it
// degenerates to a cartesian product. This uncancellable form is kept for
// tests and standalone use; execution goes through hashJoin with the
// request context.
func HashJoin(left, right *Table) *Table {
	out, _ := hashJoin(context.Background(), left, right)
	return out
}

// hashJoin is HashJoin with strided context cancellation in the build and
// probe loops.
func hashJoin(ctx context.Context, left, right *Table) (*Table, error) {
	shared, rightExtra := splitVars(left, right)
	out := &Table{Vars: append(append([]string{}, left.Vars...), rightExtra...)}
	tick := engine.NewTicker(ctx)

	if len(shared) == 0 {
		for _, l := range left.Rows {
			for _, r := range right.Rows {
				if err := tick.Check(); err != nil {
					return nil, err
				}
				out.Rows = append(out.Rows, mergeRows(l, r, nil, right, rightExtra))
			}
		}
		return out, nil
	}

	// Key extractors.
	lIdx := make([]int, len(shared))
	rIdx := make([]int, len(shared))
	for i, v := range shared {
		lIdx[i] = left.VarIndex(v)
		rIdx[i] = right.VarIndex(v)
	}
	// Build on the right (the newly scanned side), probe with the left.
	ht := make(map[string][][]uint32, len(right.Rows))
	keyBuf := make([]byte, 0, len(shared)*4)
	for _, r := range right.Rows {
		if err := tick.Check(); err != nil {
			return nil, err
		}
		keyBuf = keyBuf[:0]
		for _, j := range rIdx {
			v := r[j]
			keyBuf = append(keyBuf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		ht[string(keyBuf)] = append(ht[string(keyBuf)], r)
	}
	for _, l := range left.Rows {
		keyBuf = keyBuf[:0]
		for _, j := range lIdx {
			v := l[j]
			keyBuf = append(keyBuf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		for _, r := range ht[string(keyBuf)] {
			if err := tick.Check(); err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, mergeRows(l, r, nil, right, rightExtra))
		}
		if err := tick.Check(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func splitVars(left, right *Table) (shared, rightExtra []string) {
	inLeft := map[string]bool{}
	for _, v := range left.Vars {
		inLeft[v] = true
	}
	for _, v := range right.Vars {
		if inLeft[v] {
			shared = append(shared, v)
		} else {
			rightExtra = append(rightExtra, v)
		}
	}
	return
}

func mergeRows(l, r []uint32, _ []int, right *Table, rightExtra []string) []uint32 {
	out := make([]uint32, 0, len(l)+len(rightExtra))
	out = append(out, l...)
	for _, v := range rightExtra {
		out = append(out, r[right.VarIndex(v)])
	}
	return out
}

// indexNestedLoopJoin joins the current table with a base pattern by
// per-row index lookups.
func (e *Engine) indexNestedLoopJoin(ctx context.Context, left *Table, pat query.Pattern) (*Table, error) {
	patVars := PatternVars(pat)
	var shared, extra []string
	for _, v := range patVars {
		if left.VarIndex(v) >= 0 {
			shared = append(shared, v)
		} else {
			extra = append(extra, v)
		}
	}
	out := &Table{Vars: append(append([]string{}, left.Vars...), extra...)}
	lIdx := make([]int, len(shared))
	for i, v := range shared {
		lIdx[i] = left.VarIndex(v)
	}
	extraIdx := make([]int, len(extra))
	for i, v := range extra {
		for j, pv := range patVars {
			if pv == v {
				extraIdx[i] = j
			}
		}
	}
	tick := engine.NewTicker(ctx)
	values := make([]uint32, len(shared))
	for _, l := range left.Rows {
		if err := tick.Check(); err != nil {
			return nil, err
		}
		for i, j := range lIdx {
			values[i] = l[j]
		}
		err := e.scans.ScanBoundEach(ctx, pat, shared, values, func(row []uint32) {
			merged := make([]uint32, 0, len(l)+len(extra))
			merged = append(merged, l...)
			for _, j := range extraIdx {
				merged = append(merged, row[j])
			}
			out.Rows = append(out.Rows, merged)
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// --- Selinger-style join ordering --------------------------------------------

type step struct {
	pattern int
	useINLJ bool
}

type dpState struct {
	cost     float64
	card     float64
	distinct map[string]float64
	steps    []step
}

// crossPenalty discourages cartesian products unless unavoidable.
const crossPenalty = 1e6

// optimize runs a bitmask DP over left-deep plans, minimizing estimated
// total cost (scanned + produced tuples).
func (e *Engine) optimize(patterns []query.Pattern) ([]step, error) {
	n := len(patterns)
	if n == 0 {
		return nil, fmt.Errorf("pairwise: empty pattern list")
	}
	if n > 16 {
		return nil, fmt.Errorf("pairwise: too many patterns (%d)", n)
	}
	best := make(map[int]*dpState, 1<<n)
	for i, pat := range patterns {
		card := e.scans.EstimateCard(pat)
		dist := map[string]float64{}
		for _, v := range PatternVars(pat) {
			dist[v] = math.Min(e.scans.EstimateDistinct(pat, v), card)
		}
		best[1<<i] = &dpState{cost: card, card: card, distinct: dist, steps: []step{{pattern: i}}}
	}
	full := 1<<n - 1
	for mask := 1; mask <= full; mask++ {
		state := best[mask]
		if state == nil {
			continue
		}
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				continue
			}
			next := e.extend(state, patterns, j)
			key := mask | 1<<j
			if cur := best[key]; cur == nil || next.cost < cur.cost {
				best[key] = next
			}
		}
	}
	return best[full].steps, nil
}

// extend costs joining pattern j onto the current state, choosing between a
// hash join (scan + build + probe) and an index nested-loop join.
func (e *Engine) extend(s *dpState, patterns []query.Pattern, j int) *dpState {
	pat := patterns[j]
	patVars := PatternVars(pat)
	var shared []string
	for _, v := range patVars {
		if _, ok := s.distinct[v]; ok {
			shared = append(shared, v)
		}
	}
	rCard := e.scans.EstimateCard(pat)

	// Output cardinality: |L||R| / Π max(V(L,v), V(R,v)).
	outCard := s.card * rCard
	for _, v := range shared {
		lv := s.distinct[v]
		rv := math.Min(e.scans.EstimateDistinct(pat, v), rCard)
		d := math.Max(lv, rv)
		if d > 0 {
			outCard /= d
		}
	}
	if len(shared) == 0 {
		outCard = s.card * rCard
	}

	hashCost := rCard + s.card + outCard
	cost := hashCost
	useINLJ := false
	if len(shared) > 0 && e.scans.CanBind(pat, shared) {
		perLookup := e.scans.EstimateBound(pat, shared)
		inljCost := s.card*(1+perLookup) + outCard
		if inljCost < hashCost {
			cost = inljCost
			useINLJ = true
		}
	}
	if len(shared) == 0 {
		cost += crossPenalty
	}

	dist := map[string]float64{}
	for v, d := range s.distinct {
		dist[v] = math.Min(d, outCard)
	}
	for _, v := range patVars {
		rv := math.Min(e.scans.EstimateDistinct(pat, v), outCard)
		if cur, ok := dist[v]; !ok || rv < cur {
			dist[v] = rv
		}
	}
	steps := make([]step, len(s.steps), len(s.steps)+1)
	copy(steps, s.steps)
	steps = append(steps, step{pattern: j, useINLJ: useINLJ})
	return &dpState{cost: s.cost + cost, card: outCard, distinct: dist, steps: steps}
}

var _ engine.Engine = (*Engine)(nil)
