package pairwise

import (
	"context"
	"reflect"
	"sort"
	"testing"

	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/rdf"
)

func TestHashJoinShared(t *testing.T) {
	left := &Table{Vars: []string{"x", "y"}, Rows: [][]uint32{{1, 10}, {2, 20}, {3, 30}}}
	right := &Table{Vars: []string{"x", "z"}, Rows: [][]uint32{{1, 100}, {1, 101}, {3, 300}}}
	out := HashJoin(left, right)
	if !reflect.DeepEqual(out.Vars, []string{"x", "y", "z"}) {
		t.Fatalf("vars = %v", out.Vars)
	}
	want := [][]uint32{{1, 10, 100}, {1, 10, 101}, {3, 30, 300}}
	sortRows(out.Rows)
	sortRows(want)
	if !reflect.DeepEqual(out.Rows, want) {
		t.Errorf("rows = %v, want %v", out.Rows, want)
	}
}

func TestHashJoinMultipleSharedVars(t *testing.T) {
	left := &Table{Vars: []string{"a", "b"}, Rows: [][]uint32{{1, 2}, {1, 3}}}
	right := &Table{Vars: []string{"b", "a"}, Rows: [][]uint32{{2, 1}, {3, 9}}}
	out := HashJoin(left, right)
	if !reflect.DeepEqual(out.Vars, []string{"a", "b"}) {
		t.Fatalf("vars = %v", out.Vars)
	}
	if len(out.Rows) != 1 || out.Rows[0][0] != 1 || out.Rows[0][1] != 2 {
		t.Errorf("rows = %v", out.Rows)
	}
}

func TestHashJoinCartesian(t *testing.T) {
	left := &Table{Vars: []string{"a"}, Rows: [][]uint32{{1}, {2}}}
	right := &Table{Vars: []string{"b"}, Rows: [][]uint32{{7}, {8}}}
	out := HashJoin(left, right)
	if len(out.Rows) != 4 {
		t.Errorf("cartesian rows = %v", out.Rows)
	}
}

func TestHashJoinEmptySide(t *testing.T) {
	left := &Table{Vars: []string{"a"}, Rows: nil}
	right := &Table{Vars: []string{"a"}, Rows: [][]uint32{{1}}}
	if out := HashJoin(left, right); len(out.Rows) != 0 {
		t.Errorf("join with empty side = %v", out.Rows)
	}
}

func TestPatternVars(t *testing.T) {
	pat := query.Pattern{
		S: query.Variable("x"),
		P: query.Constant(rdf.NewIRI("p")),
		O: query.Variable("x"),
	}
	if got := PatternVars(pat); !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("repeated var = %v", got)
	}
	pat2 := query.Pattern{S: query.Variable("s"), P: query.Variable("p"), O: query.Variable("o")}
	if got := PatternVars(pat2); !reflect.DeepEqual(got, []string{"s", "p", "o"}) {
		t.Errorf("all vars = %v", got)
	}
}

func TestTableVarIndex(t *testing.T) {
	tb := &Table{Vars: []string{"a", "b"}}
	if tb.VarIndex("b") != 1 || tb.VarIndex("zz") != -1 {
		t.Errorf("VarIndex wrong")
	}
}

// fakeProvider serves a tiny two-relation dataset from memory, counting
// scan and lookup calls so the optimizer's choices can be asserted.
type fakeProvider struct {
	scans   map[string][][]uint32 // predicate IRI -> (s,o) pairs
	scanned []string
	bound   []string
	canBind bool
}

func (f *fakeProvider) rows(pat query.Pattern) [][]uint32 {
	if pat.P.IsVar {
		var all [][]uint32
		for _, rs := range f.scans {
			all = append(all, rs...)
		}
		return all
	}
	return f.scans[pat.P.Term.Value]
}

func (f *fakeProvider) Scan(_ context.Context, pat query.Pattern) (*Table, error) {
	f.scanned = append(f.scanned, pat.P.Term.Value)
	out := &Table{Vars: PatternVars(pat)}
	for _, r := range f.rows(pat) {
		row, ok := matchRow(pat, r[0], r[1], nil, nil)
		if ok {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

func (f *fakeProvider) CanBind(query.Pattern, []string) bool { return f.canBind }

func (f *fakeProvider) ScanBoundEach(_ context.Context, pat query.Pattern, bound []string, values []uint32, emit func([]uint32)) error {
	f.bound = append(f.bound, pat.P.Term.Value)
	for _, r := range f.rows(pat) {
		row, ok := matchRow(pat, r[0], r[1], bound, values)
		if ok {
			emit(row)
		}
	}
	return nil
}

func matchRow(pat query.Pattern, s, o uint32, bound []string, values []uint32) ([]uint32, bool) {
	b := map[string]uint32{}
	for i, v := range bound {
		b[v] = values[i]
	}
	check := func(n query.Node, val uint32) bool {
		if !n.IsVar {
			return true // constants not modelled in the fake
		}
		if prev, ok := b[n.Var]; ok && prev != val {
			return false
		}
		b[n.Var] = val
		return true
	}
	if !check(pat.S, s) || !check(pat.O, o) {
		return nil, false
	}
	vars := PatternVars(pat)
	row := make([]uint32, len(vars))
	for i, v := range vars {
		row[i] = b[v]
	}
	return row, true
}

func (f *fakeProvider) EstimateCard(pat query.Pattern) float64 {
	return float64(len(f.rows(pat)))
}
func (f *fakeProvider) EstimateBound(pat query.Pattern, bound []string) float64 { return 1 }
func (f *fakeProvider) EstimateDistinct(pat query.Pattern, v string) float64 {
	return float64(len(f.rows(pat)))
}

func TestOptimizerStartsWithSmallestRelation(t *testing.T) {
	f := &fakeProvider{scans: map[string][][]uint32{
		"big":   {{1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}, {6, 6}},
		"small": {{1, 9}},
	}}
	e := New("fake", f)
	q := query.MustParseSPARQL(`SELECT ?x ?y ?z WHERE { ?x <big> ?y . ?x <small> ?z . }`)
	res, err := engine.Execute(e, q)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if len(f.scanned) == 0 || f.scanned[0] != "small" {
		t.Errorf("scan order = %v, want small first", f.scanned)
	}
}

func TestOptimizerUsesINLJWhenCheap(t *testing.T) {
	f := &fakeProvider{
		canBind: true,
		scans: map[string][][]uint32{
			"tiny": {{1, 1}},
			"huge": make([][]uint32, 0),
		},
	}
	for i := uint32(0); i < 1000; i++ {
		f.scans["huge"] = append(f.scans["huge"], [][]uint32{{i, i}}[0])
	}
	e := New("fake", f)
	q := query.MustParseSPARQL(`SELECT ?x ?y ?z WHERE { ?x <tiny> ?y . ?x <huge> ?z . }`)
	if _, err := engine.Execute(e, q); err != nil {
		t.Fatalf("execute: %v", err)
	}
	// The huge relation must be accessed via bound lookups, not a scan.
	for _, s := range f.scanned {
		if s == "huge" {
			t.Errorf("huge relation was scanned: %v", f.scanned)
		}
	}
	if len(f.bound) == 0 {
		t.Errorf("no bound lookups used")
	}
}

func TestExecuteRejectsEmptyQuery(t *testing.T) {
	e := New("fake", &fakeProvider{scans: map[string][][]uint32{}})
	if _, err := engine.Execute(e, &query.BGP{Select: []string{"x"}}); err == nil {
		t.Errorf("invalid query accepted")
	}
}

func TestDistinctProjection(t *testing.T) {
	f := &fakeProvider{scans: map[string][][]uint32{
		"p": {{1, 10}, {1, 11}, {2, 20}},
	}}
	e := New("fake", f)
	q := query.MustParseSPARQL(`SELECT DISTINCT ?x WHERE { ?x <p> ?y . }`)
	res, err := engine.Execute(e, q)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("distinct rows = %v", res.Rows)
	}
	// Without DISTINCT the duplicate projection stays.
	q2 := query.MustParseSPARQL(`SELECT ?x WHERE { ?x <p> ?y . }`)
	res2, _ := engine.Execute(e, q2)
	if len(res2.Rows) != 3 {
		t.Errorf("multiset rows = %v", res2.Rows)
	}
}

func sortRows(rows [][]uint32) {
	sort.Slice(rows, func(i, j int) bool {
		for k := range rows[i] {
			if rows[i][k] != rows[j][k] {
				return rows[i][k] < rows[j][k]
			}
		}
		return false
	})
}
