package rdf3x

import (
	"context"
	"testing"

	"repro/internal/engine"
	"repro/internal/engine/pairwise"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/store"
)

func t3(s, p, o string) rdf.Triple {
	return rdf.Triple{S: rdf.NewIRI(s), P: rdf.NewIRI(p), O: rdf.NewIRI(o)}
}

func buildProvider(t *testing.T) *provider {
	t.Helper()
	st := store.FromTriples([]rdf.Triple{
		t3("a", "p", "x"), t3("a", "p", "y"), t3("b", "p", "x"),
		t3("a", "q", "z"), t3("c", "q", "x"),
	})
	eng := New(st)
	p := eng.(*pairwise.Engine)
	_ = p
	// Rebuild directly to reach the provider internals.
	pr := &provider{st: st}
	base := st.Triples()
	for i, perm := range perms {
		idx := make([]store.Triple, len(base))
		copy(idx, base)
		perm := perm
		sortTriples(idx, perm)
		pr.indexes[i] = idx
	}
	return pr
}

func sortTriples(idx []store.Triple, perm [3]int) {
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0; j-- {
			ka, kb := key(idx[j-1], perm), key(idx[j], perm)
			if ka[0] < kb[0] || ka[0] == kb[0] && (ka[1] < kb[1] || ka[1] == kb[1] && ka[2] <= kb[2]) {
				break
			}
			idx[j-1], idx[j] = idx[j], idx[j-1]
		}
	}
}

func TestChooseIndexCoversAllPatterns(t *testing.T) {
	// Every subset of bound positions must be coverable by a prefix of one
	// of the six permutations.
	for mask := 0; mask < 8; mask++ {
		fixed := [3]bool{mask&1 != 0, mask&2 != 0, mask&4 != 0}
		idx := chooseIndex(fixed)
		perm := perms[idx]
		covered := 0
		for _, pos := range perm {
			if fixed[pos] {
				covered++
			} else {
				break
			}
		}
		want := 0
		for _, f := range fixed {
			if f {
				want++
			}
		}
		if covered != want {
			t.Errorf("mask %03b: index %v covers %d of %d bound positions", mask, perm, covered, want)
		}
	}
}

func TestRangeScanExact(t *testing.T) {
	pr := buildProvider(t)
	pPat := query.Pattern{S: query.Variable("s"), P: query.Constant(rdf.NewIRI("p")), O: query.Variable("o")}
	if got := pr.EstimateCard(pPat); got != 3 {
		t.Errorf("p range = %v, want 3", got)
	}
	qPat := query.Pattern{S: query.Variable("s"), P: query.Constant(rdf.NewIRI("q")), O: query.Variable("o")}
	if got := pr.EstimateCard(qPat); got != 2 {
		t.Errorf("q range = %v, want 2", got)
	}
	// Subject+predicate bound.
	spPat := query.Pattern{S: query.Constant(rdf.NewIRI("a")), P: query.Constant(rdf.NewIRI("p")), O: query.Variable("o")}
	if got := pr.EstimateCard(spPat); got != 2 {
		t.Errorf("sp range = %v, want 2", got)
	}
	// Unknown constant: zero.
	missing := query.Pattern{S: query.Constant(rdf.NewIRI("zzz")), P: query.Constant(rdf.NewIRI("p")), O: query.Variable("o")}
	if got := pr.EstimateCard(missing); got != 0 {
		t.Errorf("missing = %v, want 0", got)
	}
}

func TestScanAndBoundScan(t *testing.T) {
	pr := buildProvider(t)
	pat := query.Pattern{S: query.Variable("s"), P: query.Constant(rdf.NewIRI("p")), O: query.Variable("o")}
	tab, err := pr.Scan(context.Background(), pat)
	if err != nil || len(tab.Rows) != 3 {
		t.Fatalf("scan rows = %d err %v", len(tab.Rows), err)
	}
	if !pr.CanBind(pat, []string{"s"}) {
		t.Errorf("CanBind false")
	}
	st := pr.st
	aID, _ := st.Dict().LookupIRI("a")
	count := 0
	err = pr.ScanBoundEach(context.Background(), pat, []string{"s"}, []uint32{aID}, func(row []uint32) { count++ })
	if err != nil || count != 2 {
		t.Errorf("bound scan count = %d err %v", count, err)
	}
}

func TestEstimateDistinctAndBound(t *testing.T) {
	pr := buildProvider(t)
	pat := query.Pattern{S: query.Variable("s"), P: query.Constant(rdf.NewIRI("p")), O: query.Variable("o")}
	if got := pr.EstimateDistinct(pat, "s"); got != 2 {
		t.Errorf("distinct s = %v", got)
	}
	if got := pr.EstimateDistinct(pat, "o"); got != 2 {
		t.Errorf("distinct o = %v", got)
	}
	if got := pr.EstimateBound(pat, []string{"s"}); got != 1.5 {
		t.Errorf("bound estimate = %v", got)
	}
	// Variable predicate distinct.
	vp := query.Pattern{S: query.Variable("s"), P: query.Variable("pp"), O: query.Variable("o")}
	if got := pr.EstimateDistinct(vp, "pp"); got != 2 {
		t.Errorf("distinct predicates = %v", got)
	}
}

func TestVariablePredicateScan(t *testing.T) {
	pr := buildProvider(t)
	pat := query.Pattern{S: query.Constant(rdf.NewIRI("a")), P: query.Variable("pp"), O: query.Variable("o")}
	tab, _ := pr.Scan(context.Background(), pat)
	if len(tab.Rows) != 3 {
		t.Errorf("a ?p ?o rows = %d", len(tab.Rows))
	}
}

func TestEngineEndToEnd(t *testing.T) {
	st := store.FromTriples([]rdf.Triple{
		t3("a", "p", "x"), t3("b", "p", "x"), t3("a", "q", "x"),
	})
	e := New(st)
	if e.Name() != "rdf3x" {
		t.Errorf("name = %s", e.Name())
	}
	q := query.MustParseSPARQL(`SELECT ?s WHERE { ?s <p> <x> . ?s <q> <x> . }`)
	res, err := engine.Execute(e, q)
	if err != nil || res.Len() != 1 {
		t.Errorf("rows = %d err %v", res.Len(), err)
	}
}
