// Package rdf3x models the RDF-3X specialized engine (Neumann & Weikum)
// used as a baseline in the paper: a triple table indexed by clustered
// B+-tree-style indexes on all six permutations of (subject, predicate,
// object), aggregate indexes providing exact selectivities, and a pairwise
// executor whose join orders are chosen from those selectivities. We model
// the clustered indexes as sorted triple arrays with binary-search range
// scans, which preserves the asymptotics (O(log N + result) per access)
// without the paging machinery.
package rdf3x

import (
	"context"
	"sort"

	"repro/internal/engine"
	"repro/internal/engine/pairwise"
	"repro/internal/query"
	"repro/internal/store"
)

// permutation orders for the six clustered indexes.
var perms = [6][3]int{
	{0, 1, 2}, // SPO
	{0, 2, 1}, // SOP
	{1, 0, 2}, // PSO
	{1, 2, 0}, // POS
	{2, 0, 1}, // OSP
	{2, 1, 0}, // OPS
}

// New builds the RDF-3X-like engine over st, constructing all six
// permutation indexes eagerly (RDF-3X builds its full set at load).
func New(st *store.Store) engine.Engine {
	p := &provider{st: st}
	base := st.Triples()
	for i, perm := range perms {
		idx := make([]store.Triple, len(base))
		copy(idx, base)
		perm := perm
		sort.Slice(idx, func(a, b int) bool {
			ta, tb := key(idx[a], perm), key(idx[b], perm)
			return ta[0] < tb[0] || ta[0] == tb[0] && (ta[1] < tb[1] || ta[1] == tb[1] && ta[2] < tb[2])
		})
		p.indexes[i] = idx
	}
	return pairwise.New("rdf3x", p)
}

func key(t store.Triple, perm [3]int) [3]uint32 {
	pos := [3]uint32{t.S, t.P, t.O}
	return [3]uint32{pos[perm[0]], pos[perm[1]], pos[perm[2]]}
}

type provider struct {
	st      *store.Store
	indexes [6][]store.Triple
}

// boundSpec captures which positions are fixed.
type boundSpec struct {
	vals  [3]uint32 // by position: S, P, O
	fixed [3]bool
	ok    bool // all constants present in the dictionary
}

func (p *provider) spec(pat query.Pattern, bound []string, values []uint32) boundSpec {
	s := boundSpec{ok: true}
	set := func(pos int, n query.Node) {
		if n.IsVar {
			for i, b := range bound {
				if b == n.Var {
					s.vals[pos] = values[i]
					s.fixed[pos] = true
				}
			}
			return
		}
		id, ok := p.st.Dict().Lookup(n.Term)
		if !ok {
			s.ok = false
			return
		}
		s.vals[pos] = id
		s.fixed[pos] = true
	}
	set(0, pat.S)
	set(1, pat.P)
	set(2, pat.O)
	return s
}

// chooseIndex picks a permutation whose prefix covers the fixed positions.
// With all six permutations available, any subset of fixed positions has a
// covering prefix.
func chooseIndex(fixed [3]bool) int {
	bestIdx, bestLen := 0, -1
	for i, perm := range perms {
		l := 0
		for _, pos := range perm {
			if fixed[pos] {
				l++
			} else {
				break
			}
		}
		covered := 0
		for _, f := range fixed {
			if f {
				covered++
			}
		}
		if l == covered {
			return i // full prefix cover; done
		}
		if l > bestLen {
			bestIdx, bestLen = i, l
		}
	}
	return bestIdx
}

// rangeScan returns the [lo, hi) slice of the chosen index matching the
// fixed prefix.
func (p *provider) rangeScan(s boundSpec) []store.Triple {
	idxNo := chooseIndex(s.fixed)
	perm := perms[idxNo]
	idx := p.indexes[idxNo]
	prefix := make([]uint32, 0, 3)
	for _, pos := range perm {
		if s.fixed[pos] {
			prefix = append(prefix, s.vals[pos])
		} else {
			break
		}
	}
	lo := sort.Search(len(idx), func(i int) bool { return !lessPrefix(key(idx[i], perm), prefix) })
	hi := sort.Search(len(idx), func(i int) bool { return greaterPrefix(key(idx[i], perm), prefix) })
	return idx[lo:hi]
}

func lessPrefix(k [3]uint32, prefix []uint32) bool {
	for i, v := range prefix {
		if k[i] != v {
			return k[i] < v
		}
	}
	return false
}

func greaterPrefix(k [3]uint32, prefix []uint32) bool {
	for i, v := range prefix {
		if k[i] != v {
			return k[i] > v
		}
	}
	return false
}

// emitMatches streams index-range rows, applying any fixed positions not
// covered by the prefix and repeated-variable consistency. The range loop
// polls ctx on a stride so large scans abandon promptly when cancelled.
func (p *provider) emitMatches(ctx context.Context, pat query.Pattern, s boundSpec, emit func([]uint32)) error {
	if !s.ok {
		return nil
	}
	patVars := pairwise.PatternVars(pat)
	row := make([]uint32, len(patVars))
	tick := engine.NewTicker(ctx)
	for _, t := range p.rangeScan(s) {
		if err := tick.Check(); err != nil {
			return err
		}
		pos := [3]uint32{t.S, t.P, t.O}
		if s.fixed[0] && pos[0] != s.vals[0] || s.fixed[1] && pos[1] != s.vals[1] || s.fixed[2] && pos[2] != s.vals[2] {
			continue
		}
		if fillRow(pat, pos, patVars, row) {
			emit(row)
		}
	}
	return nil
}

// fillRow assigns pattern variables from a triple, checking repeated vars.
func fillRow(pat query.Pattern, pos [3]uint32, patVars []string, row []uint32) bool {
	assigned := make(map[string]uint32, len(patVars))
	for i, n := range []query.Node{pat.S, pat.P, pat.O} {
		if !n.IsVar {
			continue
		}
		if prev, ok := assigned[n.Var]; ok {
			if prev != pos[i] {
				return false
			}
			continue
		}
		assigned[n.Var] = pos[i]
	}
	for i, v := range patVars {
		row[i] = assigned[v]
	}
	return true
}

// Scan implements pairwise.ScanProvider via an index range scan.
func (p *provider) Scan(ctx context.Context, pat query.Pattern) (*pairwise.Table, error) {
	out := &pairwise.Table{Vars: pairwise.PatternVars(pat)}
	s := p.spec(pat, nil, nil)
	err := p.emitMatches(ctx, pat, s, func(row []uint32) {
		out.Rows = append(out.Rows, append([]uint32(nil), row...))
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CanBind: all six permutations exist, so any binding is a prefix lookup.
func (p *provider) CanBind(query.Pattern, []string) bool { return true }

// ScanBoundEach implements indexed lookups.
func (p *provider) ScanBoundEach(ctx context.Context, pat query.Pattern, bound []string, values []uint32, emit func([]uint32)) error {
	s := p.spec(pat, bound, values)
	return p.emitMatches(ctx, pat, s, emit)
}

// EstimateCard returns the exact range size — RDF-3X's aggregate indexes
// give exact counts for any bound prefix.
func (p *provider) EstimateCard(pat query.Pattern) float64 {
	s := p.spec(pat, nil, nil)
	if !s.ok {
		return 0
	}
	return float64(len(p.rangeScan(s)))
}

// EstimateBound estimates matches per lookup: exact total divided by the
// distinct count of the bound prefix.
func (p *provider) EstimateBound(pat query.Pattern, bound []string) float64 {
	total := p.EstimateCard(pat)
	if total == 0 {
		return 0
	}
	d := total
	for _, v := range bound {
		dv := p.EstimateDistinct(pat, v)
		if dv > 1 {
			d = dv
		}
	}
	est := total / d
	if est < 1 {
		est = 1
	}
	return est
}

// EstimateDistinct estimates the number of distinct values of v in the
// pattern's rows from the aggregate-index statistics: per-predicate
// distinct subject/object counts capped by the pattern's exact range size.
// (RDF-3X's aggregate indexes make these lookups cheap; importantly the
// estimate must be O(log N), since it runs inside join ordering.)
func (p *provider) EstimateDistinct(pat query.Pattern, v string) float64 {
	s := p.spec(pat, nil, nil)
	if !s.ok {
		return 0
	}
	rangeSize := float64(len(p.rangeScan(s)))
	if pat.P.IsVar && pat.P.Var == v {
		return min(float64(len(p.st.Predicates())), rangeSize)
	}
	if s.fixed[1] { // predicate bound: use per-predicate statistics
		stats := p.st.Stats(s.vals[1])
		switch {
		case pat.S.IsVar && pat.S.Var == v:
			return min(float64(stats.DistinctS), rangeSize)
		case pat.O.IsVar && pat.O.Var == v:
			return min(float64(stats.DistinctO), rangeSize)
		}
		return rangeSize
	}
	// Variable predicate: distinct subjects/objects across the dataset are
	// not tracked exactly; assume mostly-distinct within the range.
	return rangeSize
}
