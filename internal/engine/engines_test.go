package engine_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/engine/logicblox"
	"repro/internal/engine/monetdb"
	"repro/internal/engine/naive"
	"repro/internal/engine/rdf3x"
	"repro/internal/engine/triplebit"
	"repro/internal/lubm"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/store"
)

func allEngines(st *store.Store) []engine.Engine {
	return []engine.Engine{
		core.New(st, core.AllOptimizations),
		core.New(st, core.NoOptimizations).WithName("emptyheaded-noopt"),
		logicblox.New(st),
		monetdb.New(st),
		rdf3x.New(st),
		triplebit.New(st),
	}
}

func t3(s, p, o string) rdf.Triple {
	return rdf.Triple{S: rdf.NewIRI(s), P: rdf.NewIRI(p), O: rdf.NewIRI(o)}
}

// checkAll runs every engine on every query and requires the result
// multiset to equal the naive reference.
func checkAll(t *testing.T, st *store.Store, queries map[string]string) {
	t.Helper()
	ref := naive.New(st)
	engines := allEngines(st)
	for name, text := range queries {
		q, err := query.ParseSPARQL(text)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		want, err := engine.Execute(ref, q)
		if err != nil {
			t.Fatalf("%s: naive: %v", name, err)
		}
		wantC := want.Canonical()
		for _, e := range engines {
			got, err := engine.Execute(e, q)
			if err != nil {
				t.Fatalf("%s on %s: %v", name, e.Name(), err)
			}
			if got.Canonical() != wantC {
				t.Errorf("%s on %s: got %d rows, want %d rows", name, e.Name(), got.Len(), want.Len())
			}
		}
	}
}

func TestEnginesAgreeOnHandBuilt(t *testing.T) {
	st := store.FromTriples([]rdf.Triple{
		t3("a", "knows", "b"), t3("b", "knows", "c"), t3("c", "knows", "a"),
		t3("a", "type", "Person"), t3("b", "type", "Person"), t3("c", "type", "Robot"),
		t3("a", "name", "alice"), t3("b", "name", "bob"),
		t3("d", "knows", "a"), t3("d", "type", "Person"),
	})
	checkAll(t, st, map[string]string{
		"triangle":      `SELECT ?x ?y ?z WHERE { ?x <knows> ?y . ?y <knows> ?z . ?z <knows> ?x . }`,
		"typed-knows":   `SELECT ?x ?y WHERE { ?x <type> <Person> . ?x <knows> ?y . }`,
		"star":          `SELECT ?x ?n ?y WHERE { ?x <type> <Person> . ?x <name> ?n . ?x <knows> ?y . }`,
		"const-object":  `SELECT ?x WHERE { ?x <knows> <a> . }`,
		"var-predicate": `SELECT ?p WHERE { <a> ?p <b> . }`,
		"missing":       `SELECT ?x WHERE { ?x <type> <Alien> . }`,
		"product":       `SELECT ?x ?y WHERE { ?x <name> <alice> . ?y <type> <Robot> . }`,
		"distinct":      `SELECT DISTINCT ?x WHERE { ?x <knows> ?y . }`,
	})
}

func TestEnginesAgreeOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := []string{
		`SELECT ?x ?y ?z WHERE { ?x <e0> ?y . ?y <e1> ?z . ?z <e0> ?x . }`,
		`SELECT ?x ?y ?z ?w WHERE { ?x <e0> ?y . ?y <e1> ?z . ?z <e2> ?w . }`,
		`SELECT ?x ?y WHERE { ?x <e0> ?y . ?x <e1> ?y . }`,
		`SELECT ?x WHERE { ?x <e0> <n2> . ?x <e1> ?y . }`,
		`SELECT ?x ?y ?z WHERE { ?x <e0> ?y . ?x <e1> ?z . ?y <e2> ?z . }`,
		`SELECT ?s ?p ?o WHERE { ?s ?p ?o . }`,
		`SELECT ?x WHERE { ?x <e0> ?x . }`,
	}
	for trial := 0; trial < 5; trial++ {
		n := 6 + rng.Intn(10)
		var triples []rdf.Triple
		for i := 0; i < 50; i++ {
			triples = append(triples, t3(
				fmt.Sprintf("n%d", rng.Intn(n)),
				fmt.Sprintf("e%d", rng.Intn(3)),
				fmt.Sprintf("n%d", rng.Intn(n)),
			))
		}
		st := store.FromTriples(triples)
		queries := map[string]string{}
		for i, s := range shapes {
			queries[fmt.Sprintf("t%d-q%d", trial, i)] = s
		}
		checkAll(t, st, queries)
	}
}

func TestEnginesAgreeOnLUBM(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	scale := 1
	st := store.FromTriples(lubm.Generate(lubm.Config{Universities: scale}))
	ref := naive.New(st)
	engines := allEngines(st)
	for _, n := range lubm.QueryNumbers {
		q := query.MustParseSPARQL(lubm.Query(n, scale))
		want, err := engine.Execute(ref, q)
		if err != nil {
			t.Fatalf("Q%d naive: %v", n, err)
		}
		wantC := want.Canonical()
		for _, e := range engines {
			got, err := engine.Execute(e, q)
			if err != nil {
				t.Fatalf("Q%d on %s: %v", n, e.Name(), err)
			}
			if got.Canonical() != wantC {
				t.Errorf("Q%d on %s: got %d rows, want %d", n, e.Name(), got.Len(), want.Len())
			}
		}
		t.Logf("Q%d: %d rows", n, want.Len())
	}
}

func TestResultCanonicalAndDecode(t *testing.T) {
	r := &engine.Result{Vars: []string{"x"}, Rows: [][]uint32{{3}, {1}, {2}, {1}}}
	if r.Len() != 4 {
		t.Errorf("Len = %d", r.Len())
	}
	want := "1\n1\n2\n3"
	if got := r.Canonical(); got != want {
		t.Errorf("Canonical = %q, want %q", got, want)
	}
	r2 := &engine.Result{Vars: []string{"x", "y"}, Rows: [][]uint32{{0, 10}}}
	if got := r2.Canonical(); got != "0,10" {
		t.Errorf("Canonical = %q", got)
	}
}
