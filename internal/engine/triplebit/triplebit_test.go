package triplebit

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/store"
)

func t3(s, p, o string) rdf.Triple {
	return rdf.Triple{S: rdf.NewIRI(s), P: rdf.NewIRI(p), O: rdf.NewIRI(o)}
}

func build(t *testing.T) (*provider, *store.Store) {
	t.Helper()
	st := store.FromTriples([]rdf.Triple{
		t3("a", "p", "x"), t3("a", "p", "y"), t3("b", "p", "x"),
		t3("a", "q", "z"),
	})
	p := &provider{st: st, matrices: map[uint32]*matrix{}}
	for _, pid := range st.Predicates() {
		rel := st.Relation(pid)
		m := &matrix{pred: pid}
		for i := range rel.S {
			m.bySO = append(m.bySO, pair{rel.S[i], rel.O[i]})
			m.byOS = append(m.byOS, pair{rel.O[i], rel.S[i]})
		}
		sortPairs(m.bySO)
		sortPairs(m.byOS)
		p.matrices[pid] = m
	}
	return p, st
}

func TestRangeOf(t *testing.T) {
	ps := []pair{{1, 1}, {1, 2}, {2, 5}, {4, 0}}
	if got := rangeOf(ps, 1); len(got) != 2 {
		t.Errorf("rangeOf(1) = %v", got)
	}
	if got := rangeOf(ps, 3); len(got) != 0 {
		t.Errorf("rangeOf(3) = %v", got)
	}
	if got := rangeOf(ps, 4); len(got) != 1 {
		t.Errorf("rangeOf(4) = %v", got)
	}
}

func TestScanOrders(t *testing.T) {
	p, st := build(t)
	d := st.Dict()
	aID, _ := d.LookupIRI("a")
	xID, _ := d.LookupIRI("x")

	// Subject bound: uses SO order.
	pat := query.Pattern{S: query.Constant(rdf.NewIRI("a")), P: query.Constant(rdf.NewIRI("p")), O: query.Variable("o")}
	tab, _ := p.Scan(context.Background(), pat)
	if len(tab.Rows) != 2 {
		t.Errorf("s-bound rows = %v", tab.Rows)
	}
	// Object bound: uses OS order.
	pat = query.Pattern{S: query.Variable("s"), P: query.Constant(rdf.NewIRI("p")), O: query.Constant(rdf.NewIRI("x"))}
	tab, _ = p.Scan(context.Background(), pat)
	if len(tab.Rows) != 2 {
		t.Errorf("o-bound rows = %v", tab.Rows)
	}
	// Both bound.
	pat = query.Pattern{S: query.Constant(rdf.NewIRI("a")), P: query.Constant(rdf.NewIRI("p")), O: query.Constant(rdf.NewIRI("x"))}
	if got := p.EstimateCard(pat); got != 1 {
		t.Errorf("both bound estimate = %v", got)
	}
	_ = aID
	_ = xID
}

func TestVariablePredicateUnionScan(t *testing.T) {
	p, _ := build(t)
	pat := query.Pattern{S: query.Variable("s"), P: query.Variable("pp"), O: query.Variable("o")}
	tab, _ := p.Scan(context.Background(), pat)
	if len(tab.Rows) != 4 {
		t.Errorf("union scan rows = %d", len(tab.Rows))
	}
	if !reflect.DeepEqual(tab.Vars, []string{"s", "pp", "o"}) {
		t.Errorf("vars = %v", tab.Vars)
	}
}

func TestScanBoundEachWithPredVar(t *testing.T) {
	p, st := build(t)
	aID, _ := st.Dict().LookupIRI("a")
	pat := query.Pattern{S: query.Variable("s"), P: query.Variable("pp"), O: query.Variable("o")}
	count := 0
	err := p.ScanBoundEach(context.Background(), pat, []string{"s"}, []uint32{aID}, func([]uint32) { count++ })
	if err != nil || count != 3 {
		t.Errorf("bound-by-s count = %d err %v", count, err)
	}
}

func TestMissingConstantEmpty(t *testing.T) {
	p, _ := build(t)
	pat := query.Pattern{S: query.Variable("s"), P: query.Constant(rdf.NewIRI("nope")), O: query.Variable("o")}
	tab, _ := p.Scan(context.Background(), pat)
	if len(tab.Rows) != 0 {
		t.Errorf("missing predicate rows = %d", len(tab.Rows))
	}
	if got := p.EstimateCard(pat); got != 0 {
		t.Errorf("missing predicate estimate = %v", got)
	}
}

func TestEstimates(t *testing.T) {
	p, _ := build(t)
	pat := query.Pattern{S: query.Variable("s"), P: query.Constant(rdf.NewIRI("p")), O: query.Variable("o")}
	if got := p.EstimateCard(pat); got != 3 {
		t.Errorf("card = %v", got)
	}
	if got := p.EstimateDistinct(pat, "s"); got != 2 {
		t.Errorf("distinct s = %v", got)
	}
	if got := p.EstimateBound(pat, []string{"s"}); got != 1.5 {
		t.Errorf("bound = %v", got)
	}
	vp := query.Pattern{S: query.Variable("s"), P: query.Variable("pp"), O: query.Variable("o")}
	if got := p.EstimateDistinct(vp, "pp"); got != 2 {
		t.Errorf("distinct preds = %v", got)
	}
}

func TestEngineEndToEnd(t *testing.T) {
	st := store.FromTriples([]rdf.Triple{
		t3("a", "p", "x"), t3("b", "p", "y"), t3("a", "q", "x"),
	})
	e := New(st)
	if e.Name() != "triplebit" {
		t.Errorf("name = %s", e.Name())
	}
	q := query.MustParseSPARQL(`SELECT ?s ?o WHERE { ?s <p> ?o . ?s <q> ?o . }`)
	res, err := engine.Execute(e, q)
	if err != nil || res.Len() != 1 {
		t.Errorf("rows = %d err %v", res.Len(), err)
	}
}
