// Package triplebit models the TripleBit specialized RDF engine (Yuan et
// al.) used as a baseline in the paper: RDF triples grouped by predicate
// into compact two-column matrices, each kept in both subject- and
// object-sorted order, with aggregate statistics used to pick the most
// selective access path. We model the matrix chunks as sorted pair arrays
// with binary-search range lookups. Like RDF-3X it is a pairwise engine:
// fast on selective acyclic patterns, asymptotically suboptimal on cyclic
// ones.
package triplebit

import (
	"context"
	"sort"

	"repro/internal/dict"
	"repro/internal/engine"
	"repro/internal/engine/pairwise"
	"repro/internal/query"
	"repro/internal/store"
)

// matrix is one predicate's pair store in both orders.
type matrix struct {
	pred dict.ID
	// bySO and byOS hold the same pairs sorted by (first, second) where
	// first is S for bySO and O for byOS.
	bySO, byOS []pair
}

type pair struct{ a, b uint32 } // a = sort-major column, b = the other

// New builds the TripleBit-like engine over st.
func New(st *store.Store) engine.Engine {
	p := &provider{st: st, matrices: map[dict.ID]*matrix{}}
	for _, pid := range st.Predicates() {
		rel := st.Relation(pid)
		m := &matrix{pred: pid}
		m.bySO = make([]pair, rel.Len())
		m.byOS = make([]pair, rel.Len())
		for i := range rel.S {
			m.bySO[i] = pair{rel.S[i], rel.O[i]}
			m.byOS[i] = pair{rel.O[i], rel.S[i]}
		}
		sortPairs(m.bySO)
		sortPairs(m.byOS)
		p.matrices[pid] = m
	}
	return pairwise.New("triplebit", p)
}

func sortPairs(ps []pair) {
	sort.Slice(ps, func(i, j int) bool {
		return ps[i].a < ps[j].a || ps[i].a == ps[j].a && ps[i].b < ps[j].b
	})
}

// rangeOf returns the subslice with major column == v.
func rangeOf(ps []pair, v uint32) []pair {
	lo := sort.Search(len(ps), func(i int) bool { return ps[i].a >= v })
	hi := sort.Search(len(ps), func(i int) bool { return ps[i].a > v })
	return ps[lo:hi]
}

type provider struct {
	st       *store.Store
	matrices map[dict.ID]*matrix
}

func (p *provider) resolve(n query.Node) (uint32, bool, bool) {
	if n.IsVar {
		return 0, false, true
	}
	id, ok := p.st.Dict().Lookup(n.Term)
	return id, true, ok
}

// predicates lists the matrices a pattern touches: one for a constant
// predicate, all of them for a variable predicate.
func (p *provider) predicates(pat query.Pattern) ([]*matrix, bool) {
	pv, pBound, pOK := p.resolve(pat.P)
	if !pOK {
		return nil, false
	}
	if pBound {
		m := p.matrices[pv]
		if m == nil {
			return nil, true
		}
		return []*matrix{m}, true
	}
	out := make([]*matrix, 0, len(p.matrices))
	for _, pid := range p.st.Predicates() {
		out = append(out, p.matrices[pid])
	}
	return out, true
}

// emitPattern streams (s, o) pairs for one matrix given optional fixed
// subject/object values, using the best sort order. tick is the caller's
// strided context poll; a context error aborts the scan.
func emitPattern(m *matrix, sVal uint32, sBound bool, oVal uint32, oBound bool, tick *engine.Ticker, emit func(s, o uint32)) error {
	switch {
	case sBound && oBound:
		for _, pr := range rangeOf(m.bySO, sVal) {
			if err := tick.Check(); err != nil {
				return err
			}
			if pr.b == oVal {
				emit(pr.a, pr.b)
			}
		}
	case sBound:
		for _, pr := range rangeOf(m.bySO, sVal) {
			if err := tick.Check(); err != nil {
				return err
			}
			emit(pr.a, pr.b)
		}
	case oBound:
		for _, pr := range rangeOf(m.byOS, oVal) {
			if err := tick.Check(); err != nil {
				return err
			}
			emit(pr.b, pr.a)
		}
	default:
		for _, pr := range m.bySO {
			if err := tick.Check(); err != nil {
				return err
			}
			emit(pr.a, pr.b)
		}
	}
	return nil
}

// rowFor builds the variable row for a matched triple, checking repeated
// variables.
func rowFor(pat query.Pattern, patVars []string, s, pv, o uint32, row []uint32) bool {
	assigned := make(map[string]uint32, 3)
	for i, n := range []query.Node{pat.S, pat.P, pat.O} {
		if !n.IsVar {
			continue
		}
		v := [3]uint32{s, pv, o}[i]
		if prev, ok := assigned[n.Var]; ok {
			if prev != v {
				return false
			}
			continue
		}
		assigned[n.Var] = v
	}
	for i, v := range patVars {
		row[i] = assigned[v]
	}
	return true
}

// Scan implements pairwise.ScanProvider.
func (p *provider) Scan(ctx context.Context, pat query.Pattern) (*pairwise.Table, error) {
	out := &pairwise.Table{Vars: pairwise.PatternVars(pat)}
	ms, ok := p.predicates(pat)
	if !ok {
		return out, nil
	}
	sVal, sBound, sOK := p.resolve(pat.S)
	oVal, oBound, oOK := p.resolve(pat.O)
	if !sOK || !oOK {
		return out, nil
	}
	row := make([]uint32, len(out.Vars))
	tick := engine.NewTicker(ctx)
	for _, m := range ms {
		err := emitPattern(m, sVal, sBound, oVal, oBound, tick, func(s, o uint32) {
			if rowFor(pat, out.Vars, s, m.pred, o, row) {
				out.Rows = append(out.Rows, append([]uint32(nil), row...))
			}
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// CanBind: subject/object bindings are range lookups; binding the predicate
// variable is also supported (it selects the matrix).
func (p *provider) CanBind(pat query.Pattern, bound []string) bool { return true }

// ScanBoundEach implements indexed lookups.
func (p *provider) ScanBoundEach(ctx context.Context, pat query.Pattern, bound []string, values []uint32, emit func([]uint32)) error {
	val := func(n query.Node) (uint32, bool, bool) {
		if !n.IsVar {
			return p.resolve(n)
		}
		for i, b := range bound {
			if b == n.Var {
				return values[i], true, true
			}
		}
		return 0, false, true
	}
	sVal, sBound, sOK := val(pat.S)
	pVal, pBound, pOK := val(pat.P)
	oVal, oBound, oOK := val(pat.O)
	if !sOK || !pOK || !oOK {
		return nil
	}
	var ms []*matrix
	if pBound {
		if m := p.matrices[pVal]; m != nil {
			ms = []*matrix{m}
		}
	} else {
		var ok bool
		ms, ok = p.predicates(pat)
		if !ok {
			return nil
		}
	}
	patVars := pairwise.PatternVars(pat)
	row := make([]uint32, len(patVars))
	tick := engine.NewTicker(ctx)
	for _, m := range ms {
		err := emitPattern(m, sVal, sBound, oVal, oBound, tick, func(s, o uint32) {
			if rowFor(pat, patVars, s, m.pred, o, row) {
				emit(row)
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// EstimateCard returns exact counts via range sizes (TripleBit's aggregate
// indexes).
func (p *provider) EstimateCard(pat query.Pattern) float64 {
	ms, ok := p.predicates(pat)
	if !ok {
		return 0
	}
	sVal, sBound, sOK := p.resolve(pat.S)
	oVal, oBound, oOK := p.resolve(pat.O)
	if !sOK || !oOK {
		return 0
	}
	total := 0.0
	for _, m := range ms {
		switch {
		case sBound && oBound:
			for _, pr := range rangeOf(m.bySO, sVal) {
				if pr.b == oVal {
					total++
				}
			}
		case sBound:
			total += float64(len(rangeOf(m.bySO, sVal)))
		case oBound:
			total += float64(len(rangeOf(m.byOS, oVal)))
		default:
			total += float64(len(m.bySO))
		}
	}
	return total
}

// EstimateBound divides the pattern total by the bound columns' distinct
// counts.
func (p *provider) EstimateBound(pat query.Pattern, bound []string) float64 {
	total := p.EstimateCard(pat)
	if total == 0 {
		return 0
	}
	est := total
	for _, v := range bound {
		d := p.EstimateDistinct(pat, v)
		if d > 1 {
			est = total / d
		}
	}
	if est < 1 {
		est = 1
	}
	return est
}

// EstimateDistinct uses the store's per-predicate statistics.
func (p *provider) EstimateDistinct(pat query.Pattern, v string) float64 {
	pVal, pBound, pOK := p.resolve(pat.P)
	if !pOK {
		return 0
	}
	if pat.P.IsVar && pat.P.Var == v {
		return float64(len(p.matrices))
	}
	if !pBound {
		return float64(p.st.NumTriples())
	}
	stats := p.st.Stats(pVal)
	if pat.S.IsVar && pat.S.Var == v {
		return float64(stats.DistinctS)
	}
	if pat.O.IsVar && pat.O.Var == v {
		return float64(stats.DistinctO)
	}
	return float64(stats.Rows)
}
