// Package logicblox models the LogicBlox engine as characterized by the
// paper (§I, §IV): the first commercial engine with a worst-case optimal
// join algorithm — so it shares EmptyHeaded's asymptotics on cyclic queries
// — but "without fully optimized query plans or indexes". Concretely, this
// model runs the generic worst-case optimal join over the whole query as a
// single flat node (no GHD factorization), with the natural attribute order
// (selections are probed at their pattern positions rather than hoisted
// first) and unsigned-integer-array set layouts only. Those are exactly the
// deltas Table I/II attribute to LogicBlox versus EmptyHeaded.
package logicblox

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/set"
	"repro/internal/store"
)

// Engine is the LogicBlox-like baseline.
type Engine struct {
	st *store.Store

	mu    sync.Mutex
	plans map[*query.BGP]*plan.Plan
}

// New returns the engine over st.
func New(st *store.Store) *Engine {
	return &Engine{st: st, plans: map[*query.BGP]*plan.Plan{}}
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "logicblox" }

// Open compiles the query to a single-node plan (flat generic join over
// every relation, attributes in order of first appearance) and streams it
// with uint-array layouts. Plans are cached per parsed query.
func (e *Engine) Open(q *query.BGP, opts engine.ExecOpts) (engine.Cursor, error) {
	e.mu.Lock()
	p, ok := e.plans[q]
	e.mu.Unlock()
	if !ok {
		var err error
		p, err = e.Plan(q)
		if err != nil {
			return nil, err
		}
		e.mu.Lock()
		e.plans[q] = p
		e.mu.Unlock()
	}
	return e.OpenPlan(p, opts)
}

// OpenPlan streams a plan previously compiled with Plan (the query server's
// plan-cache path). The plan must have been compiled over this engine's
// store. The LogicBlox model has no parallel enumeration; opts.Workers is
// ignored.
func (e *Engine) OpenPlan(p *plan.Plan, opts engine.ExecOpts) (engine.Cursor, error) {
	return exec.Open(p, e.st, exec.Options{
		Policy:  set.PolicyUintOnly,
		Ctx:     opts.Ctx,
		MaxRows: opts.MaxRows,
		Offset:  opts.Offset,
	})
}

// Plan builds the flat single-node plan directly (bypassing the GHD
// optimizer on purpose).
func (e *Engine) Plan(q *query.BGP) (*plan.Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	d := e.st.Dict()

	type patAttrs struct {
		attrs      []plan.Attr
		useTriples bool
		pred       uint32
	}
	var pats []patAttrs
	var order []string // global attribute order: first appearance
	seen := map[string]bool{}
	appendAttr := func(a plan.Attr) {
		if !seen[a.Name] {
			seen[a.Name] = true
			order = append(order, a.Name)
		}
	}

	for i, pat := range q.Patterns {
		var pa patAttrs
		mk := func(n query.Node, pos int) (plan.Attr, bool) {
			if n.IsVar {
				return plan.Attr{Name: n.Var, Pos: pos}, true
			}
			id, ok := d.Lookup(n.Term)
			if !ok {
				return plan.Attr{}, false
			}
			return plan.Attr{Name: fmt.Sprintf("$%d.%d", i, pos), IsSel: true, Value: id, Pos: pos}, true
		}
		if pat.P.IsVar {
			pa.useTriples = true
			for pos, n := range []query.Node{pat.S, pat.P, pat.O} {
				a, ok := mk(n, pos)
				if !ok {
					return &plan.Plan{Empty: true, Select: q.Select, Distinct: q.Distinct}, nil
				}
				pa.attrs = append(pa.attrs, a)
				appendAttr(a)
			}
		} else {
			pid, ok := d.Lookup(pat.P.Term)
			if !ok || e.st.Relation(pid) == nil {
				return &plan.Plan{Empty: true, Select: q.Select, Distinct: q.Distinct}, nil
			}
			pa.pred = pid
			for _, pn := range []struct {
				n   query.Node
				pos int
			}{{pat.S, 0}, {pat.O, 2}} {
				a, ok := mk(pn.n, pn.pos)
				if !ok {
					return &plan.Plan{Empty: true, Select: q.Select, Distinct: q.Distinct}, nil
				}
				pa.attrs = append(pa.attrs, a)
				appendAttr(a)
			}
		}
		pats = append(pats, pa)
	}

	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	node := &plan.Node{}
	attrSeen := map[string]bool{}
	var nodeAttrs []plan.Attr
	for _, pa := range pats {
		for _, a := range pa.attrs {
			if !attrSeen[a.Name] {
				attrSeen[a.Name] = true
				nodeAttrs = append(nodeAttrs, a)
			}
		}
	}
	sort.Slice(nodeAttrs, func(i, j int) bool { return pos[nodeAttrs[i].Name] < pos[nodeAttrs[j].Name] })
	node.Attrs = nodeAttrs
	for _, a := range nodeAttrs {
		if !a.IsSel {
			node.Vars = append(node.Vars, a.Name)
		}
	}
	for i, pa := range pats {
		levels := append([]plan.Attr(nil), pa.attrs...)
		sort.SliceStable(levels, func(a, b int) bool { return pos[levels[a].Name] < pos[levels[b].Name] })
		node.Rels = append(node.Rels, plan.RelRef{
			PatternIdx: i,
			UseTriples: pa.useTriples,
			Pred:       pa.pred,
			Levels:     levels,
		})
	}
	return &plan.Plan{
		Root:        node,
		GlobalOrder: order,
		Select:      q.Select,
		Distinct:    q.Distinct,
	}, nil
}

var _ engine.Engine = (*Engine)(nil)
