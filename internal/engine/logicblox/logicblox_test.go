package logicblox

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/store"
)

func t3(s, p, o string) rdf.Triple {
	return rdf.Triple{S: rdf.NewIRI(s), P: rdf.NewIRI(p), O: rdf.NewIRI(o)}
}

func build() (*Engine, *store.Store) {
	st := store.FromTriples([]rdf.Triple{
		t3("a", "e", "b"), t3("b", "e", "c"), t3("c", "e", "a"),
		t3("a", "type", "T"),
	})
	return New(st), st
}

func TestFlatPlanSingleNode(t *testing.T) {
	e, _ := build()
	q := query.MustParseSPARQL(`SELECT ?x ?y ?z WHERE { ?x <e> ?y . ?y <e> ?z . ?z <e> ?x . }`)
	p, err := e.Plan(q)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	if p.Root == nil || len(p.Root.Children) != 0 {
		t.Fatalf("LogicBlox plan must be a single flat node: %s", p)
	}
	if len(p.Root.Rels) != 3 {
		t.Errorf("rels = %d", len(p.Root.Rels))
	}
	// Natural attribute order: first appearance.
	if p.GlobalOrder[0] != "x" || p.GlobalOrder[1] != "y" || p.GlobalOrder[2] != "z" {
		t.Errorf("global order = %v", p.GlobalOrder)
	}
}

func TestExecuteTriangle(t *testing.T) {
	e, _ := build()
	q := query.MustParseSPARQL(`SELECT ?x ?y ?z WHERE { ?x <e> ?y . ?y <e> ?z . ?z <e> ?x . }`)
	res, err := engine.Execute(e, q)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if res.Len() != 3 {
		t.Errorf("triangle rows = %d, want 3 (rotations)", res.Len())
	}
	// Plan cache path.
	res2, err := engine.Execute(e, q)
	if err != nil || res2.Canonical() != res.Canonical() {
		t.Errorf("cached execution differs: %v", err)
	}
}

func TestMissingConstantsShortCircuit(t *testing.T) {
	e, _ := build()
	for _, text := range []string{
		`SELECT ?x WHERE { ?x <nope> ?y . }`,
		`SELECT ?x WHERE { ?x <e> <nope> . }`,
		`SELECT ?x WHERE { ?x ?p <nope> . }`,
	} {
		res, err := engine.Execute(e, query.MustParseSPARQL(text))
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		if res.Len() != 0 {
			t.Errorf("%s: rows = %d", text, res.Len())
		}
	}
}

func TestSelectionsStayAtNaturalPositions(t *testing.T) {
	e, _ := build()
	q := query.MustParseSPARQL(`SELECT ?x WHERE { ?x <type> <T> . }`)
	p, err := e.Plan(q)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	// Natural order: subject variable first, then the selection vertex —
	// the un-hoisted order that makes LogicBlox slow on selective scans.
	if len(p.GlobalOrder) != 2 || p.GlobalOrder[0] != "x" {
		t.Errorf("global order = %v, want [x $...]", p.GlobalOrder)
	}
	res, err := engine.Execute(e, q)
	if err != nil || res.Len() != 1 {
		t.Errorf("rows = %d err %v", res.Len(), err)
	}
}

func TestVariablePredicate(t *testing.T) {
	e, _ := build()
	res, err := engine.Execute(e, query.MustParseSPARQL(`SELECT ?s ?p ?o WHERE { ?s ?p ?o . }`))
	if err != nil || res.Len() != 4 {
		t.Errorf("all-triples rows = %d err %v", res.Len(), err)
	}
}

func TestName(t *testing.T) {
	e, _ := build()
	if e.Name() != "logicblox" {
		t.Errorf("name wrong")
	}
}

func TestInvalidQueryRejected(t *testing.T) {
	e, _ := build()
	if _, err := engine.Execute(e, &query.BGP{Select: []string{"x"}}); err == nil {
		t.Errorf("invalid query accepted")
	}
}
