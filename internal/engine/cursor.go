package engine

import (
	"context"
	"errors"
	"io"
)

// genBatchRows is the producer-side batch size: rows are handed from the
// producing goroutine to the consumer in slices of up to this many, so the
// per-row channel cost is amortized while buffered memory stays O(batch).
const genBatchRows = 128

// genFlushMin is the smallest partial batch the producer will flush
// opportunistically. Flushing partials keeps first-byte latency low, but
// trying on every row would degenerate into one channel send per row
// whenever the consumer keeps up; trying only at power-of-two sizes ≥
// genFlushMin bounds the sends per full batch.
const genFlushMin = 16

// genChanDepth is how many batches may sit between producer and consumer.
// Together with genBatchRows it bounds how many rows a producer can run
// ahead of a stalled or closed consumer.
const genChanDepth = 4

// generator adapts a push-style enumeration (engines naturally emit rows
// from recursive loops) to the pull-style Cursor contract: the producer
// runs on its own goroutine and hands over batches through a bounded
// channel. Closing the cursor cancels the producer's context, so abandoned
// queries stop within one cancellation stride instead of enumerating to
// completion.
type generator struct {
	vars   []string
	ch     chan [][]uint32
	result chan error
	cancel context.CancelFunc

	batch  [][]uint32
	idx    int
	done   bool
	err    error
	closed bool
}

// NewGenerator runs produce on a new goroutine and returns the cursor over
// the rows it emits. produce must stop and return promptly once ctx is done
// (emit returns the context's error when the producer should stop; checking
// ctx inside long loops that emit rarely is the producer's job). Rows
// passed to emit are handed to the consumer verbatim: produce must not
// reuse or mutate them afterwards.
func NewGenerator(ctx context.Context, vars []string, produce func(ctx context.Context, emit func([]uint32) error) error) Cursor {
	if ctx == nil {
		ctx = context.Background()
	}
	gctx, cancel := context.WithCancel(ctx)
	g := &generator{
		vars:   vars,
		ch:     make(chan [][]uint32, genChanDepth),
		result: make(chan error, 1),
		cancel: cancel,
	}
	go func() {
		var batch [][]uint32
		emit := func(row []uint32) error {
			batch = append(batch, row)
			if n := len(batch); n < genBatchRows {
				// Opportunistic flush at power-of-two partial sizes: a
				// waiting consumer gets its first rows after ≤ genFlushMin,
				// while a keeping-up consumer still receives amortized
				// batches instead of one send per row.
				if n >= genFlushMin && n&(n-1) == 0 {
					select {
					case g.ch <- batch:
						batch = nil
					default:
					}
				}
				return nil
			}
			select {
			case g.ch <- batch:
				batch = nil
				return nil
			case <-gctx.Done():
				return gctx.Err()
			}
		}
		err := produce(gctx, emit)
		if len(batch) > 0 {
			// Deliver the tail batch even when produce failed: rows emitted
			// before an error belong to the consumer (mirroring a streaming
			// response, where rows written before a mid-stream error stand).
			select {
			case g.ch <- batch:
			case <-gctx.Done():
				if err == nil {
					err = gctx.Err()
				}
			}
		}
		g.result <- err
		close(g.ch)
	}()
	return g
}

func (g *generator) Vars() []string { return g.vars }

func (g *generator) Next() ([]uint32, error) {
	for {
		if g.idx < len(g.batch) {
			row := g.batch[g.idx]
			g.idx++
			return row, nil
		}
		if g.done {
			return nil, g.err
		}
		b, ok := <-g.ch
		if !ok {
			g.done = true
			g.err = <-g.result
			if g.err == nil {
				g.err = io.EOF
			}
			return nil, g.err
		}
		g.batch, g.idx = b, 0
	}
}

// Truncated is always false for a bare generator: caps are applied by the
// Limit wrapper.
func (g *generator) Truncated() bool { return false }

func (g *generator) Close() error {
	if g.closed {
		return nil
	}
	g.closed = true
	g.cancel()
	// Drain so a producer blocked on a full channel can observe the cancel
	// and exit; the channel is closed once it has.
	for range g.ch {
	}
	g.done = true
	if g.err == nil {
		g.err = io.EOF
	}
	g.batch, g.idx = nil, 0
	return nil
}

// Limit wraps c so it skips the first offset rows and yields at most
// maxRows rows (maxRows <= 0 means uncapped). Truncation is reported
// exactly: after the cap is reached, one extra row is probed — a row means
// Truncated() == true, io.EOF means the result happened to fit exactly.
// Hitting the cap closes the underlying cursor, stopping its producer.
func Limit(c Cursor, offset, maxRows int) Cursor {
	if offset <= 0 && maxRows <= 0 {
		return c
	}
	return &limitCursor{inner: c, skip: offset, capped: maxRows > 0, remaining: maxRows}
}

type limitCursor struct {
	inner     Cursor
	skip      int
	capped    bool
	remaining int
	truncated bool
	done      bool
	err       error
}

func (l *limitCursor) Vars() []string { return l.inner.Vars() }

func (l *limitCursor) Next() ([]uint32, error) {
	if l.done {
		return nil, l.err
	}
	for l.skip > 0 {
		if _, err := l.inner.Next(); err != nil {
			return l.finish(err)
		}
		l.skip--
	}
	if l.capped && l.remaining == 0 {
		// Exactness probe: only an actually existing extra row marks the
		// result truncated.
		_, err := l.inner.Next()
		switch {
		case err == nil:
			l.truncated = true
		case errors.Is(err, io.EOF):
			l.truncated = l.inner.Truncated()
		default:
			return l.finish(err)
		}
		l.inner.Close()
		return l.finish(io.EOF)
	}
	row, err := l.inner.Next()
	if err != nil {
		return l.finish(err)
	}
	if l.capped {
		l.remaining--
	}
	return row, nil
}

func (l *limitCursor) finish(err error) ([]uint32, error) {
	l.done = true
	l.err = err
	if errors.Is(err, io.EOF) && !l.truncated {
		l.truncated = l.inner.Truncated()
	}
	return nil, err
}

func (l *limitCursor) Truncated() bool { return l.truncated }

func (l *limitCursor) Close() error { return l.inner.Close() }

// AppendRowKeyCol appends one column's fixed-width little-endian encoding
// to a row-key buffer (for keys over a subset of columns).
func AppendRowKeyCol(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// RowKey renders a dictionary-encoded row into a compact string key for
// map-based DISTINCT deduplication and hash joins. Every layer that keys
// rows (the WCOJ executor, the pairwise and naive engines, the shard merge
// layer) shares this one encoding.
func RowKey(row []uint32) string {
	b := make([]byte, 0, len(row)*4)
	for _, v := range row {
		b = AppendRowKeyCol(b, v)
	}
	return string(b)
}

// cancelStride is how many loop iterations pass between context polls in
// engine inner loops (context.Context.Err takes a lock; polling it on a
// stride keeps the check off the per-row hot path while still bounding
// cancellation latency).
const cancelStride = 4096

// Ticker is the shared strided context poll used inside engine scan and
// join loops: Check returns the context's error at most once per
// cancelStride calls. The zero-context Ticker never fails.
type Ticker struct {
	ctx   context.Context
	steps uint
}

// NewTicker returns a Ticker polling ctx (nil ctx never cancels).
func NewTicker(ctx context.Context) *Ticker { return &Ticker{ctx: ctx} }

// Check polls the context on a stride and returns its error once done.
func (t *Ticker) Check() error {
	if t.ctx == nil {
		return nil
	}
	t.steps++
	if t.steps%cancelStride != 0 {
		return nil
	}
	return t.ctx.Err()
}
