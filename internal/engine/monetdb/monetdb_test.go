package monetdb

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/store"
)

func t3(s, p, o string) rdf.Triple {
	return rdf.Triple{S: rdf.NewIRI(s), P: rdf.NewIRI(p), O: rdf.NewIRI(o)}
}

func testStore() *store.Store {
	return store.FromTriples([]rdf.Triple{
		t3("a", "p", "x"), t3("a", "p", "y"), t3("b", "p", "x"),
		t3("a", "q", "z"),
	})
}

func TestScanFullPredicate(t *testing.T) {
	p := &provider{st: testStore()}
	pat := query.Pattern{S: query.Variable("s"), P: query.Constant(rdf.NewIRI("p")), O: query.Variable("o")}
	tab, err := p.Scan(context.Background(), pat)
	if err != nil || len(tab.Rows) != 3 {
		t.Fatalf("scan = %v rows, err %v", len(tab.Rows), err)
	}
	if !reflect.DeepEqual(tab.Vars, []string{"s", "o"}) {
		t.Errorf("vars = %v", tab.Vars)
	}
}

func TestScanWithSelections(t *testing.T) {
	p := &provider{st: testStore()}
	pat := query.Pattern{S: query.Constant(rdf.NewIRI("a")), P: query.Constant(rdf.NewIRI("p")), O: query.Variable("o")}
	tab, _ := p.Scan(context.Background(), pat)
	if len(tab.Rows) != 2 {
		t.Errorf("filtered scan rows = %d", len(tab.Rows))
	}
	// Missing constant: empty.
	pat.S = query.Constant(rdf.NewIRI("zzz"))
	tab, _ = p.Scan(context.Background(), pat)
	if len(tab.Rows) != 0 {
		t.Errorf("missing constant scan rows = %d", len(tab.Rows))
	}
}

func TestScanVariablePredicate(t *testing.T) {
	p := &provider{st: testStore()}
	pat := query.Pattern{S: query.Variable("s"), P: query.Variable("pp"), O: query.Variable("o")}
	tab, _ := p.Scan(context.Background(), pat)
	if len(tab.Rows) != 4 {
		t.Errorf("triple scan rows = %d", len(tab.Rows))
	}
}

func TestScanRepeatedVariable(t *testing.T) {
	st := store.FromTriples([]rdf.Triple{t3("a", "p", "a"), t3("a", "p", "b")})
	p := &provider{st: st}
	pat := query.Pattern{S: query.Variable("x"), P: query.Constant(rdf.NewIRI("p")), O: query.Variable("x")}
	tab, _ := p.Scan(context.Background(), pat)
	if len(tab.Rows) != 1 {
		t.Errorf("self-loop rows = %v", tab.Rows)
	}
}

func TestNoIndexNestedLoops(t *testing.T) {
	p := &provider{st: testStore()}
	if p.CanBind(query.Pattern{}, nil) {
		t.Errorf("column store should not support bound lookups")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("ScanBoundEach should panic")
		}
	}()
	_ = p.ScanBoundEach(context.Background(), query.Pattern{}, nil, nil, nil)
}

func TestEstimates(t *testing.T) {
	p := &provider{st: testStore()}
	pv := query.Constant(rdf.NewIRI("p"))
	pat := query.Pattern{S: query.Variable("s"), P: pv, O: query.Variable("o")}
	if got := p.EstimateCard(pat); got != 3 {
		t.Errorf("EstimateCard = %v", got)
	}
	// Selection on S: 3 rows / 2 distinct subjects.
	pat.S = query.Constant(rdf.NewIRI("a"))
	if got := p.EstimateCard(pat); got != 1.5 {
		t.Errorf("EstimateCard with s = %v", got)
	}
	pat.S = query.Variable("s")
	if got := p.EstimateDistinct(pat, "s"); got != 2 {
		t.Errorf("EstimateDistinct(s) = %v", got)
	}
	if got := p.EstimateDistinct(pat, "o"); got != 2 {
		t.Errorf("EstimateDistinct(o) = %v", got)
	}
	// Missing predicate: zero.
	bad := query.Pattern{S: query.Variable("s"), P: query.Constant(rdf.NewIRI("nope")), O: query.Variable("o")}
	if got := p.EstimateCard(bad); got != 0 {
		t.Errorf("EstimateCard missing pred = %v", got)
	}
	if p.EstimateBound(pat, []string{"s"}) != p.EstimateCard(pat) {
		t.Errorf("EstimateBound should fall back to EstimateCard")
	}
}

func TestEngineName(t *testing.T) {
	if New(testStore()).Name() != "monetdb" {
		t.Errorf("name wrong")
	}
}
