// Package monetdb models the classical relational column-store baseline of
// the paper's evaluation (§IV-A2): vertically partitioned two-column tables
// queried with full column scans, selection filters, and hash joins with
// full materialization between operators. There are no secondary indexes:
// every selection pays a scan of its predicate's table, which — together
// with pairwise-join asymptotics on cyclic queries — is what puts MonetDB
// two to three orders of magnitude behind the other engines in Table II.
package monetdb

import (
	"context"

	"repro/internal/engine"
	"repro/internal/engine/pairwise"
	"repro/internal/query"
	"repro/internal/store"
)

// New returns the MonetDB-like engine over st.
func New(st *store.Store) engine.Engine {
	return pairwise.New("monetdb", &provider{st: st})
}

type provider struct {
	st *store.Store
}

// resolve returns the encoded id of a constant node, with ok=false when the
// constant does not occur in the data (empty scan).
func (p *provider) resolve(n query.Node) (uint32, bool, bool) {
	if n.IsVar {
		return 0, false, true
	}
	id, ok := p.st.Dict().Lookup(n.Term)
	return id, true, ok
}

// Scan is a full scan of the predicate's table (or of the whole triple
// table for variable predicates) with selection filters applied row by row.
// The scan polls ctx on a stride: a full column scan over a large dataset
// is exactly the loop a cancelled request must be able to abandon.
func (p *provider) Scan(ctx context.Context, pat query.Pattern) (*pairwise.Table, error) {
	out := &pairwise.Table{Vars: pairwise.PatternVars(pat)}
	sVal, sBound, sOK := p.resolve(pat.S)
	pVal, pBound, pOK := p.resolve(pat.P)
	oVal, oBound, oOK := p.resolve(pat.O)
	if !sOK || !pOK || !oOK {
		return out, nil
	}
	emit := func(s, pr, o uint32) {
		if sBound && s != sVal || oBound && o != oVal || pBound && pr != pVal {
			return
		}
		row, ok := bindRow(pat, s, pr, o, len(out.Vars))
		if ok {
			out.Rows = append(out.Rows, row)
		}
	}
	tick := engine.NewTicker(ctx)
	if pBound {
		rel := p.st.Relation(pVal)
		if rel == nil {
			return out, nil
		}
		for i := range rel.S {
			if err := tick.Check(); err != nil {
				return nil, err
			}
			emit(rel.S[i], pVal, rel.O[i])
		}
		return out, nil
	}
	for _, t := range p.st.Triples() {
		if err := tick.Check(); err != nil {
			return nil, err
		}
		emit(t.S, t.P, t.O)
	}
	return out, nil
}

// bindRow produces the variable row for a matching triple, handling
// repeated variables (?x p ?x) by consistency checks.
func bindRow(pat query.Pattern, s, pr, o uint32, nvars int) ([]uint32, bool) {
	row := make([]uint32, 0, nvars)
	bound := map[string]uint32{}
	for _, pv := range []struct {
		n query.Node
		v uint32
	}{{pat.S, s}, {pat.P, pr}, {pat.O, o}} {
		if !pv.n.IsVar {
			continue
		}
		if prev, ok := bound[pv.n.Var]; ok {
			if prev != pv.v {
				return nil, false
			}
			continue
		}
		bound[pv.n.Var] = pv.v
		row = append(row, pv.v)
	}
	return row, true
}

// CanBind: a column store without secondary indexes cannot do per-tuple
// lookups; every join is a hash join over scans.
func (p *provider) CanBind(query.Pattern, []string) bool { return false }

// ScanBoundEach is never called (CanBind is false).
func (p *provider) ScanBoundEach(ctx context.Context, pat query.Pattern, bound []string, values []uint32, emit func([]uint32)) error {
	panic("monetdb: ScanBoundEach on scan-only provider")
}

// EstimateCard uses the table statistics ("histograms" in the paper's
// setup): rows divided by distinct counts per bound column.
func (p *provider) EstimateCard(pat query.Pattern) float64 {
	_, sBound, sOK := p.resolve(pat.S)
	pVal, pBound, pOK := p.resolve(pat.P)
	_, oBound, oOK := p.resolve(pat.O)
	if !sOK || !pOK || !oOK {
		return 0
	}
	if !pBound {
		est := float64(p.st.NumTriples())
		if sBound {
			est /= 20 // no per-subject stats without a predicate; guess
		}
		if oBound {
			est /= 20
		}
		return est
	}
	stats := p.st.Stats(pVal)
	est := float64(stats.Rows)
	if sBound && stats.DistinctS > 0 {
		est /= float64(stats.DistinctS)
	}
	if oBound && stats.DistinctO > 0 {
		est /= float64(stats.DistinctO)
	}
	return est
}

// EstimateBound is never used (CanBind is false) but must satisfy the
// interface; fall back to the unbound estimate.
func (p *provider) EstimateBound(pat query.Pattern, bound []string) float64 {
	return p.EstimateCard(pat)
}

// EstimateDistinct uses per-table distinct statistics.
func (p *provider) EstimateDistinct(pat query.Pattern, v string) float64 {
	pVal, pBound, pOK := p.resolve(pat.P)
	if !pOK {
		return 0
	}
	if !pBound {
		return float64(p.st.NumTriples())
	}
	stats := p.st.Stats(pVal)
	if pat.S.IsVar && pat.S.Var == v {
		return float64(stats.DistinctS)
	}
	if pat.O.IsVar && pat.O.Var == v {
		return float64(stats.DistinctO)
	}
	return float64(stats.Rows)
}
