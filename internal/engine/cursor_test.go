package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/query"
)

// rowsOf builds a generator emitting n single-column rows 0..n-1.
func rowsOf(ctx context.Context, n int) Cursor {
	return NewGenerator(ctx, []string{"x"}, func(gctx context.Context, emit func([]uint32) error) error {
		for i := 0; i < n; i++ {
			if err := gctx.Err(); err != nil {
				return err
			}
			if err := emit([]uint32{uint32(i)}); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestGeneratorStreamsAllRowsInOrder(t *testing.T) {
	c := rowsOf(nil, 1000)
	defer c.Close()
	for i := 0; i < 1000; i++ {
		row, err := c.Next()
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if row[0] != uint32(i) {
			t.Fatalf("row %d = %d, out of order", i, row[0])
		}
	}
	if _, err := c.Next(); err != io.EOF {
		t.Fatalf("after last row: %v, want io.EOF", err)
	}
	if c.Truncated() {
		t.Fatal("bare generator reported Truncated")
	}
}

func TestGeneratorPropagatesProducerError(t *testing.T) {
	boom := errors.New("boom")
	c := NewGenerator(nil, []string{"x"}, func(ctx context.Context, emit func([]uint32) error) error {
		if err := emit([]uint32{1}); err != nil {
			return err
		}
		return boom
	})
	defer c.Close()
	if _, err := c.Next(); err != nil {
		t.Fatalf("first row: %v", err)
	}
	if _, err := c.Next(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// TestGeneratorCloseStopsBlockedProducer: a consumer that walks away after
// one row must unblock a producer stuck on a full channel.
func TestGeneratorCloseStopsBlockedProducer(t *testing.T) {
	stopped := make(chan struct{})
	c := NewGenerator(nil, []string{"x"}, func(ctx context.Context, emit func([]uint32) error) error {
		defer close(stopped)
		for i := 0; ; i++ {
			if err := emit([]uint32{uint32(i)}); err != nil {
				return err
			}
		}
	})
	if _, err := c.Next(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	select {
	case <-stopped:
	case <-time.After(5 * time.Second):
		t.Fatal("producer did not stop after Close")
	}
	if _, err := c.Next(); err != io.EOF {
		t.Fatalf("Next after Close = %v, want io.EOF", err)
	}
}

func TestLimitExactTruncation(t *testing.T) {
	for _, tc := range []struct {
		total, max, wantRows int
		wantTrunc            bool
	}{
		{100, 10, 10, true},
		{100, 99, 99, true},
		{100, 100, 100, false}, // exact fit: the probe proves completeness
		{100, 101, 100, false},
		{0, 5, 0, false},
	} {
		c := Limit(rowsOf(nil, tc.total), 0, tc.max)
		got := 0
		for {
			_, err := c.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			got++
		}
		if got != tc.wantRows || c.Truncated() != tc.wantTrunc {
			t.Errorf("total=%d max=%d: rows=%d truncated=%v, want %d/%v",
				tc.total, tc.max, got, c.Truncated(), tc.wantRows, tc.wantTrunc)
		}
		c.Close()
	}
}

func TestLimitOffset(t *testing.T) {
	c := Limit(rowsOf(nil, 20), 15, 3)
	res, err := Collect(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 || res.Rows[0][0] != 15 || !res.Truncated {
		t.Fatalf("offset+cap: %+v", res)
	}
	// Offset past the end: empty, not truncated.
	res, err = Collect(Limit(rowsOf(nil, 20), 30, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 || res.Truncated {
		t.Fatalf("offset past end: %+v", res)
	}
}

func TestCollectPassesThroughOpenError(t *testing.T) {
	boom := errors.New("open failed")
	if _, err := Collect(nil, boom); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestGeneratorHonoursParentContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := rowsOf(ctx, 1<<30)
	if _, err := c.Next(); err != nil {
		t.Fatal(err)
	}
	cancel()
	for i := 0; ; i++ {
		_, err := c.Next()
		if errors.Is(err, context.Canceled) {
			break
		}
		if err != nil {
			t.Fatalf("err = %v", err)
		}
		if i > genBatchRows*(genChanDepth+2) {
			t.Fatalf("drained %d rows after cancel without seeing the error", i)
		}
	}
	c.Close()
}

func TestTickerPollsOnStride(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tick := NewTicker(ctx)
	seen := false
	for i := 0; i < cancelStride+1; i++ {
		if err := tick.Check(); err != nil {
			seen = true
			break
		}
	}
	if !seen {
		t.Fatal("ticker never surfaced the cancelled context within one stride")
	}
	nilTick := NewTicker(nil)
	for i := 0; i < cancelStride*2; i++ {
		if err := nilTick.Check(); err != nil {
			t.Fatalf("nil-context ticker returned %v", err)
		}
	}
}

func TestExecuteHelperMatchesCollect(t *testing.T) {
	// A stub engine over the generator, to pin the Execute = Collect(Open)
	// contract without pulling a real engine package into this one.
	e := stubEngine{rows: 7}
	res, err := Execute(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 7 || fmt.Sprint(res.Vars) != "[x]" {
		t.Fatalf("res = %+v", res)
	}
}

type stubEngine struct{ rows int }

func (s stubEngine) Name() string { return "stub" }
func (s stubEngine) Open(_ *query.BGP, opts ExecOpts) (Cursor, error) {
	return Limit(rowsOf(opts.Ctx, s.rows), opts.Offset, opts.MaxRows), nil
}
