// Package radix implements the comparison-free sorting kernels behind the
// flat trie builder (internal/trie) and the store's statistics pass
// (internal/store). Trie construction is the hot path of every index build —
// it runs under live.Compact() for the whole store and under shard.Partition
// for every shard — and a closure-based sort.Slice over multi-column tuples
// was its dominant cost. LSD counting sort replaces it: each pass is one
// sequential counting scan plus one scatter, no comparator calls, no
// per-element function pointers.
//
// The kernels are size-adaptive, because trie builds come in two very
// different shapes: full relations (10⁵–10⁸ rows, where wide digits
// amortize) and GHD node results (often tens of rows, where clearing a wide
// count table would dominate — the executor builds one trie per
// materialized plan node per query). Tiny inputs use insertion sort, small
// inputs 8-bit digits (256-entry table), large inputs 16-bit digits
// (65536-entry table).
package radix

const (
	// insertionCutoff is the size below which insertion sort beats any
	// counting pass (no table to clear, perfect locality).
	insertionCutoff = 48
	// byteDigitCutoff is the size below which 8-bit digits win: twice the
	// passes of 16-bit digits, but each clears a 1 KiB table instead of
	// 256 KiB. The crossover is where 2 passes of table clear equal 2
	// extra passes over the data, around 2¹⁵ elements.
	byteDigitCutoff = 1 << 15

	maxDigits = 1 << 16
)

// Scratch holds the reusable buffers of the sorting kernels so repeated
// sorts (one per trie level, one per relation column) do not reallocate the
// count table or the swap space. The zero value is ready to use.
type Scratch struct {
	count []int32 // grown on demand: 256 entries for small sorts, 65536 for large
	tmp   []uint32
	cp    []uint32 // CountDistinct's private sort copy
}

// countTable returns a zeroed count table of the given size, reusing prior
// capacity. Small sorts never touch (or allocate) the 256 KiB large table.
func (s *Scratch) countTable(size int) []int32 {
	if cap(s.count) < size {
		s.count = make([]int32, size)
		return s.count
	}
	t := s.count[:size]
	for i := range t {
		t[i] = 0
	}
	return t
}

// grow returns a scratch slice of length n, reusing prior capacity.
func (s *Scratch) grow(n int) []uint32 {
	if cap(s.tmp) < n {
		s.tmp = make([]uint32, n)
	}
	return s.tmp[:n]
}

// digitBits picks the radix width for an input of n elements.
func digitBits(n int) uint {
	if n < byteDigitCutoff {
		return 8
	}
	return 16
}

// SortUint32 sorts v ascending in place. It is not stable in any observable
// sense (equal uint32 keys are indistinguishable).
func (s *Scratch) SortUint32(v []uint32) {
	if len(v) < 2 {
		return
	}
	if len(v) <= insertionCutoff {
		insertionSortUint32(v)
		return
	}
	var or, and uint32
	or, and = 0, ^uint32(0)
	for _, x := range v {
		or |= x
		and &= x
	}
	db := digitBits(len(v))
	mask := uint32(1)<<db - 1
	tmp := s.grow(len(v))
	src, dst := v, tmp
	swapped := false
	for shift := uint(0); shift < 32; shift += db {
		// Skip passes where every key shares the digit.
		if (or>>shift)&mask == (and>>shift)&mask {
			continue
		}
		s.countingPass(src, dst, shift, mask)
		src, dst = dst, src
		swapped = !swapped
	}
	if swapped {
		copy(v, src)
	}
}

func insertionSortUint32(v []uint32) {
	for i := 1; i < len(v); i++ {
		x := v[i]
		j := i
		for j > 0 && v[j-1] > x {
			v[j] = v[j-1]
			j--
		}
		v[j] = x
	}
}

// countingPass scatters src into dst ordered by the digit at shift,
// preserving the relative order of equal digits (stability is what makes
// the LSD composition correct).
func (s *Scratch) countingPass(src, dst []uint32, shift uint, mask uint32) {
	count := s.countTable(int(mask) + 1)
	for _, x := range src {
		count[(x>>shift)&mask]++
	}
	sum := int32(0)
	for i := range count {
		c := count[i]
		count[i] = sum
		sum += c
	}
	for _, x := range src {
		d := (x >> shift) & mask
		dst[count[d]] = x
		count[d]++
	}
}

// SortPermByColumns sorts perm (a permutation of row indices into cols) so
// that rows compare ascending in lexicographic column order: cols[0] is the
// most significant key, cols[len-1] the least. Large inputs run LSD over
// the columns from last to first, each column in stable counting passes, so
// the whole sort is O(rows × columns) with no comparator; tiny inputs fall
// back to lexicographic insertion sort. perm must hold valid indices for
// every column.
func (s *Scratch) SortPermByColumns(cols [][]uint32, perm []uint32) {
	if len(perm) < 2 {
		return
	}
	if len(perm) <= insertionCutoff {
		insertionSortPerm(cols, perm)
		return
	}
	db := digitBits(len(perm))
	mask := uint32(1)<<db - 1
	tmp := s.grow(len(perm))
	src, dst := perm, tmp
	swapped := false
	for c := len(cols) - 1; c >= 0; c-- {
		col := cols[c]
		var or, and uint32
		or, and = 0, ^uint32(0)
		for _, x := range col {
			or |= x
			and &= x
		}
		for shift := uint(0); shift < 32; shift += db {
			if (or>>shift)&mask == (and>>shift)&mask {
				continue
			}
			s.permPass(col, src, dst, shift, mask)
			src, dst = dst, src
			swapped = !swapped
		}
	}
	if swapped {
		copy(perm, src)
	}
}

// insertionSortPerm sorts the permutation by lexicographic row order with a
// hand-rolled comparison — no closure, no interface call.
func insertionSortPerm(cols [][]uint32, perm []uint32) {
	for i := 1; i < len(perm); i++ {
		r := perm[i]
		j := i
		for j > 0 && rowLess(cols, r, perm[j-1]) {
			perm[j] = perm[j-1]
			j--
		}
		perm[j] = r
	}
}

// rowLess reports whether row a sorts strictly before row b.
func rowLess(cols [][]uint32, a, b uint32) bool {
	for _, col := range cols {
		av, bv := col[a], col[b]
		if av != bv {
			return av < bv
		}
	}
	return false
}

// permPass stably scatters the permutation src into dst ordered by the
// digit of col[index] at shift.
func (s *Scratch) permPass(col []uint32, src, dst []uint32, shift uint, mask uint32) {
	count := s.countTable(int(mask) + 1)
	for _, r := range src {
		count[(col[r]>>shift)&mask]++
	}
	sum := int32(0)
	for i := range count {
		c := count[i]
		count[i] = sum
		sum += c
	}
	for _, r := range src {
		d := (col[r] >> shift) & mask
		dst[count[d]] = r
		count[d]++
	}
}

// CountDistinct returns the number of distinct values in vals without
// mutating it: a radix sort of a scratch copy plus one transition scan.
// This replaces the map-based distinct counter that ran per relation on
// every store assembly (hot under live.Compact()): the sort is sequential
// memory traffic where the map was a hash insert per row.
func (s *Scratch) CountDistinct(vals []uint32) int {
	n := len(vals)
	if n == 0 {
		return 0
	}
	// Sort in scratch space only: cp holds the private copy (reused across
	// calls); SortUint32 uses tmp as its swap buffer.
	if cap(s.cp) < n {
		s.cp = make([]uint32, n)
	}
	cp := s.cp[:n]
	copy(cp, vals)
	s.SortUint32(cp)
	distinct := 1
	prev := cp[0]
	for _, v := range cp[1:] {
		if v != prev {
			distinct++
			prev = v
		}
	}
	return distinct
}
