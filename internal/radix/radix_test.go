package radix

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestSortUint32MatchesSortSlice(t *testing.T) {
	f := func(v []uint32) bool {
		want := append([]uint32(nil), v...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		var s Scratch
		got := append([]uint32(nil), v...)
		s.SortUint32(got)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSortUint32SmallDomain(t *testing.T) {
	// Small-domain keys exercise the pass-skipping shortcut.
	var s Scratch
	rng := rand.New(rand.NewSource(1))
	v := make([]uint32, 1000)
	for i := range v {
		v[i] = rng.Uint32() % 7
	}
	want := append([]uint32(nil), v...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	s.SortUint32(v)
	if !reflect.DeepEqual(v, want) {
		t.Errorf("small-domain sort mismatch")
	}
}

func TestSortPermByColumnsLexicographic(t *testing.T) {
	f := func(raw []uint32, aritySeed uint8) bool {
		arity := int(aritySeed%3) + 1
		n := len(raw) / arity
		cols := make([][]uint32, arity)
		for c := range cols {
			cols[c] = make([]uint32, n)
			for i := 0; i < n; i++ {
				cols[c][i] = raw[i*arity+c] % 300 // duplicates across both digit passes
			}
		}
		perm := make([]uint32, n)
		for i := range perm {
			perm[i] = uint32(i)
		}
		want := append([]uint32(nil), perm...)
		sort.SliceStable(want, func(a, b int) bool {
			ia, ib := want[a], want[b]
			for _, col := range cols {
				if col[ia] != col[ib] {
					return col[ia] < col[ib]
				}
			}
			return false
		})
		var s Scratch
		s.SortPermByColumns(cols, perm)
		// Compare projected rows, not the permutations: equal rows may
		// legally permute among themselves (radix stability makes them equal
		// anyway, but the contract is row order).
		for i := range perm {
			for _, col := range cols {
				if col[perm[i]] != col[want[i]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCountDistinct(t *testing.T) {
	f := func(v []uint32) bool {
		seen := map[uint32]bool{}
		for _, x := range v {
			seen[x] = true
		}
		var s Scratch
		cp := append([]uint32(nil), v...)
		if s.CountDistinct(v) != len(seen) {
			return false
		}
		// Input must not be mutated.
		return reflect.DeepEqual(cp, v) || (len(v) == 0 && len(cp) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestScratchReuse(t *testing.T) {
	var s Scratch
	for i := 0; i < 3; i++ {
		v := []uint32{5, 1, 4, 1, 3}
		s.SortUint32(v)
		if !sort.SliceIsSorted(v, func(a, b int) bool { return v[a] < v[b] }) {
			t.Fatalf("pass %d: not sorted: %v", i, v)
		}
		if got := s.CountDistinct(v); got != 4 {
			t.Fatalf("pass %d: distinct = %d, want 4", i, got)
		}
	}
}

func BenchmarkSortUint32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	orig := make([]uint32, 1<<17)
	for i := range orig {
		orig[i] = rng.Uint32() % (1 << 20)
	}
	var s Scratch
	v := make([]uint32, len(orig))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(v, orig)
		s.SortUint32(v)
	}
}

func BenchmarkCountDistinct(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	v := make([]uint32, 1<<17)
	for i := range v {
		v[i] = rng.Uint32() % (1 << 14)
	}
	var s Scratch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CountDistinct(v)
	}
}
