package cluster

// policy_test.go drives the pure robustness arithmetic with injected clocks
// and random sources: the backoff schedule and its jitter bounds, the
// p99-derived hedge trigger clamp, and every circuit-breaker transition —
// no sleeps, no network.

import (
	"testing"
	"time"
)

func TestBackoffSchedule(t *testing.T) {
	p := Policy{BaseBackoff: 25 * time.Millisecond, MaxBackoff: time.Second}
	cases := []struct {
		retry int
		want  time.Duration
	}{
		{0, 0},
		{-3, 0},
		{1, 25 * time.Millisecond},
		{2, 50 * time.Millisecond},
		{3, 100 * time.Millisecond},
		{4, 200 * time.Millisecond},
		{5, 400 * time.Millisecond},
		{6, 800 * time.Millisecond},
		{7, time.Second}, // capped
		{8, time.Second},
		{100, time.Second}, // the doubling loop must not overflow
	}
	for _, c := range cases {
		if got := p.Backoff(c.retry, nil); got != c.want {
			t.Errorf("Backoff(%d) = %v, want %v", c.retry, got, c.want)
		}
	}
}

func TestBackoffCapBelowBase(t *testing.T) {
	// A cap below the base clamps even the first retry.
	p := Policy{BaseBackoff: 100 * time.Millisecond, MaxBackoff: 40 * time.Millisecond}
	if got := p.Backoff(1, nil); got != 40*time.Millisecond {
		t.Fatalf("Backoff(1) = %v, want the 40ms cap", got)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	p := Policy{BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second, Jitter: 0.5}
	cases := []struct {
		rnd  float64
		want time.Duration
	}{
		{0, 100 * time.Millisecond},       // no jitter consumed: the full delay
		{0.5, 75 * time.Millisecond},      // halfway into the jitter window
		{0.999, 50050 * time.Microsecond}, // near the floor d·(1−Jitter)
	}
	for _, c := range cases {
		got := p.Backoff(1, func() float64 { return c.rnd })
		if got != c.want {
			t.Errorf("Backoff(1) with rnd=%v = %v, want %v", c.rnd, got, c.want)
		}
		lo := time.Duration(float64(p.BaseBackoff) * (1 - p.Jitter))
		if got < lo || got > p.BaseBackoff {
			t.Errorf("jittered backoff %v outside [%v, %v]", got, lo, p.BaseBackoff)
		}
	}
}

func TestHedgeDelayClamp(t *testing.T) {
	p := Policy{HedgeAfter: 50 * time.Millisecond, AttemptTimeout: 2 * time.Second}
	cases := []struct {
		p99  time.Duration
		want time.Duration
	}{
		{0, 50 * time.Millisecond},                       // no samples: the floor drives it
		{10 * time.Millisecond, 50 * time.Millisecond},   // fast fleet: still the floor
		{300 * time.Millisecond, 300 * time.Millisecond}, // the p99 itself
		{time.Minute, 2 * time.Second},                   // never beyond the attempt timeout
	}
	for _, c := range cases {
		if got := p.HedgeDelay(c.p99); got != c.want {
			t.Errorf("HedgeDelay(%v) = %v, want %v", c.p99, got, c.want)
		}
	}
}

func TestHedgeDelayDisabled(t *testing.T) {
	p := Policy{HedgeAfter: -1, AttemptTimeout: 2 * time.Second}
	for _, p99 := range []time.Duration{0, time.Millisecond, time.Hour} {
		if got := p.HedgeDelay(p99); got != 0 {
			t.Errorf("HedgeDelay(%v) with hedging disabled = %v, want 0", p99, got)
		}
	}
}

func TestWithDefaults(t *testing.T) {
	d := DefaultPolicy()
	got := Policy{}.withDefaults()
	if got != d {
		t.Fatalf("zero policy withDefaults = %+v, want DefaultPolicy %+v", got, d)
	}
	// Explicit values survive.
	p := Policy{MaxAttempts: 7, AttemptTimeout: time.Minute}.withDefaults()
	if p.MaxAttempts != 7 || p.AttemptTimeout != time.Minute {
		t.Fatalf("explicit fields overwritten: %+v", p)
	}
	if p.BaseBackoff != d.BaseBackoff || p.Cooldown != d.Cooldown {
		t.Fatalf("unset fields not defaulted: %+v", p)
	}
	// Negative HedgeAfter means disabled and must be preserved.
	if p := (Policy{HedgeAfter: -1}).withDefaults(); p.HedgeAfter != -1 {
		t.Fatalf("HedgeAfter=-1 not preserved: %v", p.HedgeAfter)
	}
}

// fakeClock is an adjustable time source for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerOpensAtThreshold(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(Policy{FailThreshold: 3, Cooldown: 2 * time.Second}, clk.now)

	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("new breaker must be closed and admitting")
	}
	b.Report(false)
	b.Report(false)
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed (threshold is 3)", b.State())
	}
	if b.Fails() != 2 {
		t.Fatalf("Fails = %d, want 2", b.Fails())
	}
	// A success clears the streak entirely.
	b.Report(true)
	if b.Fails() != 0 {
		t.Fatalf("Fails after success = %d, want 0", b.Fails())
	}
	// Three consecutive failures open it.
	b.Report(false)
	b.Report(false)
	b.Report(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3 failures = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker inside the cooldown admitted a request")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	pol := Policy{FailThreshold: 1, Cooldown: 2 * time.Second}
	b := NewBreaker(pol, clk.now)

	b.Report(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	clk.advance(time.Second)
	if b.Allow() {
		t.Fatal("admitted a request 1s into a 2s cooldown")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but the half-open probe was not admitted")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// Exactly one probe: the next request is rejected while it is in flight.
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second request before the probe's verdict")
	}

	// A failed probe re-opens immediately for another full cooldown.
	b.Report(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	clk.advance(pol.Cooldown)
	if !b.Allow() {
		t.Fatal("second cooldown elapsed but no probe admitted")
	}
	// A successful probe closes it and clears the streak.
	b.Report(true)
	if b.State() != BreakerClosed || b.Fails() != 0 {
		t.Fatalf("state after successful probe = %v fails=%d, want closed/0", b.State(), b.Fails())
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected a request")
	}
}

func TestBreakerStateStrings(t *testing.T) {
	if BreakerClosed.String() != "closed" || BreakerOpen.String() != "open" || BreakerHalfOpen.String() != "half-open" {
		t.Fatal("breaker state strings drifted from the /stats vocabulary")
	}
	if BreakerState(42).String() != "unknown" {
		t.Fatal("out-of-range breaker state must stringify as unknown")
	}
}
