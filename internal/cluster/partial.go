package cluster

// partial.go carries graceful degradation's verdict from the shard drains
// to the HTTP response. The server installs a Partial sink into the query
// context before opening the cursor; when a drain exhausts its retry budget
// and every candidate worker, it records the shard here and ends its stream
// cleanly instead of failing the query. After encoding, the server reads
// the sink and flags the response (X-Partial trailer, "partial" JSON
// field). Without a sink in the context the drain fails hard instead —
// degradation is opt-in by the serving layer, never silent.

import (
	"context"
	"sort"
	"sync"
)

// Degradation modes recorded per shard.
const (
	// DegradeLost: the shard's rows are missing from the result.
	DegradeLost = "lost"
	// DegradeReplicas: the shard's rows were reassembled from object-side
	// replicas on the surviving shards — complete for most data, but
	// triples whose subject and object both hash to the lost shard have no
	// second home, so the result is still flagged.
	DegradeReplicas = "object-replicas"
)

// PartialShard reports one degraded shard in /query's "partial" field.
type PartialShard struct {
	Shard int    `json:"shard"`
	Mode  string `json:"mode"`
}

// Partial collects the shards a query could not serve authoritatively.
type Partial struct {
	mu     sync.Mutex
	shards map[int]string
}

// record notes shard sh as degraded; "lost" dominates a previous
// replica-recovery mark (the recovery itself later failed).
func (p *Partial) record(sh int, mode string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.shards == nil {
		p.shards = map[int]string{}
	}
	if prev, ok := p.shards[sh]; ok && prev == DegradeLost {
		return
	}
	p.shards[sh] = mode
}

// Missing returns the degraded shards in shard order (nil when the result
// is complete).
func (p *Partial) Missing() []PartialShard {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.shards) == 0 {
		return nil
	}
	out := make([]PartialShard, 0, len(p.shards))
	for sh, mode := range p.shards {
		out = append(out, PartialShard{Shard: sh, Mode: mode})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Shard < out[j].Shard })
	return out
}

type partialKey struct{}

// WithPartial installs a fresh Partial sink into ctx, enabling graceful
// degradation for every drain under it.
func WithPartial(ctx context.Context) (context.Context, *Partial) {
	p := &Partial{}
	return context.WithValue(ctx, partialKey{}, p), p
}

// PartialFrom returns the sink installed by WithPartial, or nil.
func PartialFrom(ctx context.Context) *Partial {
	if ctx == nil {
		return nil
	}
	p, _ := ctx.Value(partialKey{}).(*Partial)
	return p
}
