package cluster

// fault.go is the deterministic fault injector the chaos suite scripts
// against. A FaultPlan wraps the coordinator's HTTP transport and mangles
// matching exchanges at the protocol level: drop the connection, delay or
// hang the response, reset or truncate the stream after N data frames, or
// corrupt frame N's bytes. Faults are keyed by worker address and consumed
// deterministically (each fault fires Count times, in registration order),
// so a chaos scenario replays identically run to run — no clocks, no
// randomness.
//
// Injection sits client-side on purpose: the wrapped transport sees the
// exact bytes the coordinator would have seen, so a "corrupt frame 2"
// fault proves the real CRC path catches it, and a "truncate after 1
// batch" fault proves the real resume path re-drains from row offset —
// against completely healthy workers.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Fault kinds.
const (
	// FaultDrop fails the exchange immediately (connection refused).
	FaultDrop = "drop"
	// FaultDelay forwards the exchange after Delay.
	FaultDelay = "delay"
	// FaultHang blocks until the request's context is cancelled — the
	// attempt-timeout watchdog's test case.
	FaultHang = "hang"
	// FaultReset forwards the exchange but cuts the body with a connection
	// error after AfterFrames data frames.
	FaultReset = "reset"
	// FaultCorrupt forwards the exchange but flips bits in data frame
	// AfterFrames (0-based).
	FaultCorrupt = "corrupt"
	// FaultTruncate forwards the exchange but ends the body cleanly (EOF,
	// no terminal frame) after AfterFrames data frames — the
	// fail-after-N-batches case the sequence numbers exist for.
	FaultTruncate = "truncate"
)

// Fault scripts one failure against one worker.
type Fault struct {
	// Worker matches the target's host:port (or any suffix/prefix-free
	// substring of the worker base URL).
	Worker string
	// Kind is one of the Fault* constants.
	Kind string
	// Delay is FaultDelay's duration.
	Delay time.Duration
	// AfterFrames positions stream faults: reset/truncate act after this
	// many data frames have passed, corrupt targets this frame index.
	AfterFrames int
	// Count is how many matching exchanges the fault consumes (0 = every
	// one, forever).
	Count int
	// AllPaths extends matching beyond /shard/query (e.g. to /healthz
	// probes) — FaultDrop with AllPaths simulates a dead process.
	AllPaths bool
}

// FaultPlan is an ordered set of faults plus the bookkeeping of how often
// each has fired. Safe for concurrent use.
type FaultPlan struct {
	mu     sync.Mutex
	faults []*plannedFault
}

type plannedFault struct {
	Fault
	fired int
}

// Add appends a fault to the plan.
func (fp *FaultPlan) Add(f Fault) *FaultPlan {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	fp.faults = append(fp.faults, &plannedFault{Fault: f})
	return fp
}

// match consumes and returns the first applicable fault for the exchange.
func (fp *FaultPlan) match(req *http.Request) *Fault {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	for _, pf := range fp.faults {
		if !strings.Contains(req.URL.Host, pf.Worker) && !strings.Contains(pf.Worker, req.URL.Host) {
			continue
		}
		if !pf.AllPaths && req.URL.Path != "/shard/query" {
			continue
		}
		if pf.Count > 0 && pf.fired >= pf.Count {
			continue
		}
		pf.fired++
		f := pf.Fault
		return &f
	}
	return nil
}

// Fired reports how many times any fault has fired (chaos assertions).
func (fp *FaultPlan) Fired() int {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	n := 0
	for _, pf := range fp.faults {
		n += pf.fired
	}
	return n
}

// Transport wraps base (nil = http.DefaultTransport) with the plan.
func (fp *FaultPlan) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &faultTransport{plan: fp, base: base}
}

type faultTransport struct {
	plan *FaultPlan
	base http.RoundTripper
}

func (ft *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f := ft.plan.match(req)
	if f == nil {
		return ft.base.RoundTrip(req)
	}
	switch f.Kind {
	case FaultDrop:
		return nil, fmt.Errorf("fault: connection refused (%s)", req.URL.Host)
	case FaultHang:
		<-req.Context().Done()
		return nil, req.Context().Err()
	case FaultDelay:
		t := time.NewTimer(f.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return ft.base.RoundTrip(req)
	case FaultReset, FaultCorrupt, FaultTruncate:
		resp, err := ft.base.RoundTrip(req)
		if err != nil || resp.StatusCode != http.StatusOK {
			return resp, err
		}
		mangled, err := mangleStream(resp.Body, f)
		if err != nil {
			resp.Body.Close()
			return nil, err
		}
		resp.Body = mangled
		resp.ContentLength = -1
		return resp, nil
	default:
		return nil, fmt.Errorf("fault: unknown kind %q", f.Kind)
	}
}

// mangleStream buffers the upstream frame stream and re-emits it with the
// fault applied. Buffering keeps the mangling deterministic (the fault
// position is a frame index, not a byte race); chaos streams are small.
func mangleStream(body io.ReadCloser, f *Fault) (io.ReadCloser, error) {
	defer body.Close()
	all, err := io.ReadAll(body)
	if err != nil {
		return nil, err
	}
	nl := bytes.IndexByte(all, '\n')
	if nl < 0 {
		return io.NopCloser(bytes.NewReader(all)), nil
	}
	head := all[:nl+1]
	frames, rest := splitFrames(all[nl+1:])

	var out bytes.Buffer
	out.Write(head)
	switch f.Kind {
	case FaultCorrupt:
		for i, fr := range frames {
			if i == f.AfterFrames && len(fr) > 12 {
				bad := append([]byte(nil), fr...)
				bad[12] ^= 0xFF // flip payload bits; the CRC must catch it
				out.Write(bad)
				continue
			}
			out.Write(fr)
		}
		out.Write(rest)
		return io.NopCloser(bytes.NewReader(out.Bytes())), nil
	case FaultTruncate:
		for i, fr := range frames {
			if i >= f.AfterFrames {
				break
			}
			out.Write(fr)
		}
		// Clean EOF, no terminal frame: exactly what a worker crash
		// mid-stream looks like after the kernel flushes its last write.
		return io.NopCloser(bytes.NewReader(out.Bytes())), nil
	case FaultReset:
		for i, fr := range frames {
			if i >= f.AfterFrames {
				break
			}
			out.Write(fr)
		}
		return &erroringBody{r: bytes.NewReader(out.Bytes())}, nil
	}
	return io.NopCloser(bytes.NewReader(all)), nil
}

// splitFrames walks the frame layout and returns each full frame's bytes;
// rest is whatever trails the terminal frame (normally empty).
func splitFrames(b []byte) (frames [][]byte, rest []byte) {
	off := 0
	for off+8 <= len(b) {
		nrows := uint32(b[off+4]) | uint32(b[off+5])<<8 | uint32(b[off+6])<<16 | uint32(b[off+7])<<24
		var end int
		if nrows == terminalMark {
			if off+16 > len(b) {
				break
			}
			errLen := int(uint32(b[off+12]) | uint32(b[off+13])<<8 | uint32(b[off+14])<<16 | uint32(b[off+15])<<24)
			end = off + 16 + errLen + 4
		} else {
			if off+12 > len(b) {
				break
			}
			ncols := int(uint32(b[off+8]) | uint32(b[off+9])<<8 | uint32(b[off+10])<<16 | uint32(b[off+11])<<24)
			end = off + 12 + int(nrows)*ncols*4 + 4
		}
		if end > len(b) {
			break
		}
		frames = append(frames, b[off:end])
		off = end
	}
	return frames, b[off:]
}

// erroringBody yields its bytes then a connection-reset error.
type erroringBody struct{ r *bytes.Reader }

func (e *erroringBody) Read(p []byte) (int, error) {
	n, err := e.r.Read(p)
	if err == io.EOF {
		return n, fmt.Errorf("fault: connection reset by peer")
	}
	return n, err
}
func (e *erroringBody) Close() error { return nil }
