package cluster

// policy.go is the pure robustness arithmetic of the coordinator: retry
// budgets, capped exponential backoff with jitter, the p99-derived hedge
// trigger, and the per-worker circuit breaker. Everything here is
// deterministic given an injected clock and random source, so the policy
// suite tests attempt schedules and breaker transitions with a fake clock —
// no sleeps, no network.

import (
	"sync"
	"time"
)

// Policy bundles the tunables of one coordinator's failure handling.
// The zero value is unusable; call withDefaults (done by cluster.New) or
// start from DefaultPolicy.
type Policy struct {
	// MaxAttempts is the total attempt budget per shard drain, first try
	// included. Exhausting it moves the drain to graceful degradation.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further retry
	// doubles it, capped at MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Jitter is the fraction of each backoff randomized away (0..1): the
	// slept delay is uniform in [d·(1−Jitter), d]. Full-range jitter at the
	// default 0.5 de-correlates retry storms without ever sleeping longer
	// than the deterministic schedule.
	Jitter float64
	// AttemptTimeout bounds one attempt's connect-plus-first-byte: a worker
	// that accepts the request but never starts streaming is indistinguishable
	// from a hung one, so the watchdog cancels and the drain retries.
	AttemptTimeout time.Duration
	// HedgeAfter is the floor of the hedge trigger delay. The effective
	// delay is the p99 of observed time-to-first-row, clamped to
	// [HedgeAfter, AttemptTimeout] — early on, with no samples, the floor
	// alone drives it. Negative disables hedging.
	HedgeAfter time.Duration
	// FailThreshold is how many consecutive failures open a worker's
	// circuit breaker.
	FailThreshold int
	// Cooldown is how long an open breaker blocks a worker before one
	// half-open probe is re-admitted.
	Cooldown time.Duration
	// ProbeInterval paces the active /healthz probe loop.
	ProbeInterval time.Duration
}

// DefaultPolicy returns the production defaults.
func DefaultPolicy() Policy {
	return Policy{
		MaxAttempts:    4,
		BaseBackoff:    25 * time.Millisecond,
		MaxBackoff:     time.Second,
		Jitter:         0.5,
		AttemptTimeout: 2 * time.Second,
		HedgeAfter:     50 * time.Millisecond,
		FailThreshold:  3,
		Cooldown:       2 * time.Second,
		ProbeInterval:  500 * time.Millisecond,
	}
}

// withDefaults fills unset fields from DefaultPolicy. A negative HedgeAfter
// (hedging disabled) is preserved.
func (p Policy) withDefaults() Policy {
	d := DefaultPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = d.BaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = d.MaxBackoff
	}
	if p.Jitter <= 0 || p.Jitter > 1 {
		p.Jitter = d.Jitter
	}
	if p.AttemptTimeout <= 0 {
		p.AttemptTimeout = d.AttemptTimeout
	}
	if p.HedgeAfter == 0 {
		p.HedgeAfter = d.HedgeAfter
	}
	if p.FailThreshold <= 0 {
		p.FailThreshold = d.FailThreshold
	}
	if p.Cooldown <= 0 {
		p.Cooldown = d.Cooldown
	}
	if p.ProbeInterval <= 0 {
		p.ProbeInterval = d.ProbeInterval
	}
	return p
}

// Backoff returns the jittered delay slept before retry number `retry`
// (1-based: the delay after the retry-th failure). rnd supplies uniform
// [0,1) randomness; nil means no jitter (the deterministic upper bound).
func (p Policy) Backoff(retry int, rnd func() float64) time.Duration {
	if retry < 1 {
		return 0
	}
	d := p.BaseBackoff
	for i := 1; i < retry; i++ {
		d *= 2
		if d >= p.MaxBackoff {
			d = p.MaxBackoff
			break
		}
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if rnd != nil && p.Jitter > 0 {
		d = d - time.Duration(float64(d)*p.Jitter*rnd())
	}
	return d
}

// HedgeDelay derives the hedge trigger from the observed p99
// time-to-first-row, clamped to [HedgeAfter, AttemptTimeout]. Zero means
// hedging is disabled (HedgeAfter < 0).
func (p Policy) HedgeDelay(p99 time.Duration) time.Duration {
	if p.HedgeAfter < 0 {
		return 0
	}
	d := p99
	if d < p.HedgeAfter {
		d = p.HedgeAfter
	}
	if p.AttemptTimeout > 0 && d > p.AttemptTimeout {
		d = p.AttemptTimeout
	}
	return d
}

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed admits every request (the healthy state).
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects everything until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen has re-admitted one probe and awaits its verdict.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is one worker's circuit breaker: FailThreshold consecutive
// failures open it, Cooldown later one probe is re-admitted (half-open),
// and that probe's verdict either closes it again or re-opens it for
// another cooldown. The clock is injected so transitions are testable
// without sleeping.
type Breaker struct {
	mu       sync.Mutex
	p        Policy
	now      func() time.Time
	state    BreakerState
	fails    int
	openedAt time.Time
}

// NewBreaker builds a closed breaker under p's thresholds. now may be nil
// (time.Now).
func NewBreaker(p Policy, now func() time.Time) *Breaker {
	if now == nil {
		now = time.Now
	}
	return &Breaker{p: p.withDefaults(), now: now}
}

// Allow reports whether a request may proceed. On an open breaker whose
// cooldown has elapsed it transitions to half-open and admits exactly one
// probe; further calls are rejected until that probe Reports.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.p.Cooldown {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	default: // half-open: the probe is in flight
		return false
	}
}

// Report records a request's outcome. Success closes the breaker and
// clears the failure streak; failure extends the streak, re-opens a
// half-open breaker immediately, and opens a closed one at the threshold.
func (b *Breaker) Report(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.state = BreakerClosed
		b.fails = 0
		return
	}
	b.fails++
	if b.state == BreakerHalfOpen || (b.state == BreakerClosed && b.fails >= b.p.FailThreshold) {
		b.state = BreakerOpen
		b.openedAt = b.now()
	}
}

// State returns the breaker's position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Fails returns the current consecutive-failure streak.
func (b *Breaker) Fails() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails
}
