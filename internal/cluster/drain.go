package cluster

// drain.go is the robust shard drain: the engine.Cursor the coordinator
// hands the merge layer for one shard's sub-query. Beneath the cursor
// surface it runs a small state machine:
//
//	establish   pick a health-admitted candidate (primary first, replicas
//	            on failover), backoff-with-jitter between attempts, hedge
//	            the first byte, verify the worker epoch
//	stream      decode frames; every delivered row advances the resume
//	            offset, so a broken stream re-establishes with
//	            skip=delivered and each row reaches the merge exactly once
//	degrade     budget exhausted: single-pattern groups re-drain the
//	            surviving shards for the lost shard's object-side replicas;
//	            otherwise (or additionally) the Partial sink is marked and
//	            the stream ends cleanly instead of failing the query
//
// Exactly-once rests on two worker guarantees: sub-queries execute with
// Workers=0 (deterministic enumeration order) and the skip offset counts
// kept rows after the ownership filter. An epoch change between attempts
// breaks the determinism assumption, so a mid-drain epoch mismatch is a
// hard error rather than a silent wrong answer.

import (
	"context"
	"fmt"
	"io"
	"time"
)

// drainReq is the immutable description of one shard drain.
type drainReq struct {
	shard         int
	text          string
	vars          []string
	engine        string
	owner         int
	rootIdx       int
	cap           int
	singlePattern bool
	numShards     int
}

// drain phases.
const (
	phasePrimary = iota
	phaseReplica
)

// errShardUnavailable reports a shard whose every candidate worker is down
// past the retry budget, with no degradation sink installed to absorb it.
type errShardUnavailable struct {
	shard int
	cause error
}

func (e errShardUnavailable) Error() string {
	return fmt.Sprintf("cluster: shard %d unavailable after retry budget: %v", e.shard, e.cause)
}
func (e errShardUnavailable) Unwrap() error { return e.cause }

// remoteDrain implements engine.Cursor over the state machine above.
type remoteDrain struct {
	c   *Coordinator
	ctx context.Context
	req drainReq

	cur       *frameCursor
	epoch     uint64
	haveEpoch bool

	// attempts and delivered reset per sub-drain (the primary drain, then
	// each replica shard's recovery drain is its own resume domain).
	attempts  int
	delivered int

	phase       int
	replicaIdx  int
	replicaShs  []int
	degradeMode string

	done bool
	err  error
}

func newRemoteDrain(ctx context.Context, c *Coordinator, req drainReq) *remoteDrain {
	if ctx == nil {
		ctx = context.Background()
	}
	return &remoteDrain{c: c, ctx: ctx, req: req}
}

func (d *remoteDrain) Vars() []string { return d.req.vars }

// Truncated is always false: caps are enforced by the merge layer above.
func (d *remoteDrain) Truncated() bool { return false }

func (d *remoteDrain) Close() error {
	if d.cur != nil {
		d.cur.close()
		d.cur = nil
	}
	if !d.done {
		d.done = true
		d.err = io.EOF
	}
	return nil
}

func (d *remoteDrain) Next() ([]uint32, error) {
	if d.done {
		return nil, d.err
	}
	for {
		if d.cur == nil {
			if err := d.establish(); err != nil {
				return d.degradeOrFail(err)
			}
		}
		row, err := d.cur.next()
		if err == nil {
			d.delivered++
			return row, nil
		}
		d.cur.close()
		d.cur = nil
		if err == io.EOF {
			if d.phase == phaseReplica && d.advanceReplica() {
				continue
			}
			return d.finish(io.EOF)
		}
		if isRetryable(err) {
			// Mid-stream break: loop back to establish, which resumes at
			// skip=delivered (or degrades once the budget is spent).
			continue
		}
		return d.finish(err)
	}
}

func (d *remoteDrain) finish(err error) ([]uint32, error) {
	d.done = true
	d.err = err
	if d.err == nil {
		d.err = io.EOF
	}
	if d.cur != nil {
		d.cur.close()
		d.cur = nil
	}
	return nil, d.err
}

// targetShard is the shard the current phase drains.
func (d *remoteDrain) targetShard() int {
	if d.phase == phaseReplica {
		return d.replicaShs[d.replicaIdx]
	}
	return d.req.shard
}

// establish opens a stream for the current phase's target shard, spending
// the attempt budget across health-admitted candidates with backoff and
// hedging. On success d.cur is set.
func (d *remoteDrain) establish() error {
	pol := d.c.policy
	var lastErr error
	for d.attempts < pol.MaxAttempts {
		if err := d.ctx.Err(); err != nil {
			return err
		}
		if d.attempts > 0 {
			d.c.met.retries.Add(1)
			if !sleepCtx(d.ctx, pol.Backoff(d.attempts, d.c.jitter)) {
				return d.ctx.Err()
			}
		}
		primary, backup, failover := d.pickWorkers()
		if primary == nil {
			break
		}
		d.attempts++
		cur, err := d.c.attempt(d.ctx, primary, backup, d.req, d.targetShard(), d.delivered)
		if err != nil {
			lastErr = err
			if !isRetryable(err) {
				return err
			}
			continue
		}
		if err := d.checkEpoch(cur); err != nil {
			cur.close()
			return err
		}
		if failover {
			d.c.met.failovers.Add(1)
		}
		d.cur = cur
		return nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no admitted candidate workers")
	}
	return errShardUnavailable{shard: d.targetShard(), cause: lastErr}
}

// pickWorkers chooses the attempt's worker and its hedge backup among the
// target shard's candidates: rotate by attempt number, skip workers whose
// breakers reject, fall back to the rotation order when every breaker is
// open (a fully-down fleet should still spend its budget probing rather
// than give up instantly). failover reports a non-primary pick.
func (d *remoteDrain) pickWorkers() (primary, backup *worker, failover bool) {
	cands := d.c.candidates(d.targetShard())
	var admitted []*worker
	admittedFirst := -1
	for i := 0; i < len(cands); i++ {
		w := cands[(d.attempts+i)%len(cands)]
		if w.br.Allow() {
			admitted = append(admitted, w)
			if admittedFirst == -1 {
				admittedFirst = (d.attempts + i) % len(cands)
			}
		}
	}
	if len(admitted) == 0 {
		if d.attempts >= len(cands) {
			// Every candidate rejected and each has been tried at least
			// once this drain: unavailable.
			return nil, nil, false
		}
		return cands[d.attempts%len(cands)], nil, d.attempts%len(cands) != 0
	}
	primary = admitted[0]
	if len(admitted) > 1 {
		backup = admitted[1]
	}
	return primary, backup, admittedFirst != 0
}

// checkEpoch enforces cross-attempt epoch consistency: resuming mid-drain
// against a different epoch would splice rows from two different dataset
// versions (and break the deterministic-order resume), so it fails hard.
// Before any row is delivered a new epoch is simply adopted.
func (d *remoteDrain) checkEpoch(cur *frameCursor) error {
	if !d.haveEpoch {
		d.epoch, d.haveEpoch = cur.epoch, true
		return nil
	}
	if cur.epoch == d.epoch {
		return nil
	}
	if d.delivered == 0 {
		d.epoch = cur.epoch
		return nil
	}
	return fmt.Errorf("cluster: shard %d: worker epoch changed mid-drain (%d -> %d); cannot resume exactly",
		d.targetShard(), d.epoch, cur.epoch)
}

// degradeOrFail handles an establish failure: walk down the degradation
// ladder when a Partial sink is installed, fail the drain otherwise.
func (d *remoteDrain) degradeOrFail(cause error) ([]uint32, error) {
	if d.ctx.Err() != nil {
		return d.finish(d.ctx.Err())
	}
	sink := PartialFrom(d.ctx)
	if sink == nil {
		return d.finish(cause)
	}
	if d.phase == phaseReplica {
		// A recovery drain's shard is itself unreachable: skip it — the
		// result is already flagged — and try the rest.
		d.c.log.Warn("cluster: replica recovery shard unreachable",
			"shard", d.targetShard(), "error", cause)
		if d.advanceReplica() {
			return d.nextAfterDegrade()
		}
		return d.finish(io.EOF)
	}
	if d.req.singlePattern && d.req.numShards > 1 && !d.c.cfg.DisableReplicaRecovery {
		// Single-pattern group: its rows are individual triples, and the
		// partitioner replicated each one on its object's shard. Re-drain
		// every surviving shard with the original ownership filter — only
		// the lost shard's rows come back. Triples whose subject and object
		// both hash to the lost shard have no replica, so the result stays
		// flagged partial even though it is usually complete.
		d.c.met.replicaRecoveries.Add(1)
		d.c.met.partials.Add(1)
		sink.record(d.req.shard, DegradeReplicas)
		d.c.log.Warn("cluster: shard unreachable; answering from object-side replicas",
			"shard", d.req.shard, "error", cause)
		d.phase = phaseReplica
		d.replicaShs = d.replicaShs[:0]
		for sh := 0; sh < d.req.numShards; sh++ {
			if sh != d.req.shard {
				d.replicaShs = append(d.replicaShs, sh)
			}
		}
		d.replicaIdx = 0
		d.attempts = 0
		d.delivered = 0
		return d.nextAfterDegrade()
	}
	d.c.met.partials.Add(1)
	sink.record(d.req.shard, DegradeLost)
	d.c.log.Warn("cluster: shard unreachable; returning partial results",
		"shard", d.req.shard, "error", cause)
	return d.finish(io.EOF)
}

// nextAfterDegrade resumes the Next loop after the ladder moved to a new
// target shard.
func (d *remoteDrain) nextAfterDegrade() ([]uint32, error) {
	return d.Next()
}

// advanceReplica moves to the next surviving shard's recovery drain,
// resetting the per-sub-drain resume state.
func (d *remoteDrain) advanceReplica() bool {
	d.replicaIdx++
	d.attempts = 0
	d.delivered = 0
	return d.replicaIdx < len(d.replicaShs)
}

// sleepCtx sleeps d or until ctx is done; reports whether the full sleep
// elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
