package cluster

// health.go is the active side of worker health: a probe loop GETs every
// worker's /healthz each ProbeInterval and feeds the verdicts to the same
// per-worker circuit breakers the request path reports to. Active probing
// is what re-admits a recovered worker with no query traffic (the breaker
// half-open transition needs *some* request to be the probe), and what
// ejects a worker that is up but degraded — /healthz answering 503, e.g.
// with a latched-failed WAL — before a query ever has to find out.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// probeLoop runs until Close; one round probes every worker concurrently.
func (c *Coordinator) probeLoop() {
	defer close(c.probesDone)
	t := time.NewTicker(c.policy.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stopProbes:
			return
		case <-t.C:
			c.probeAll()
		}
	}
}

// probeAll probes every worker whose breaker admits a request (for an open
// breaker that means the half-open re-admission probe; inside the cooldown
// the worker is skipped).
func (c *Coordinator) probeAll() {
	var wg sync.WaitGroup
	for _, w := range c.workers {
		if !w.br.Allow() {
			continue
		}
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			c.probeWorker(w)
		}(w)
	}
	wg.Wait()
}

// probeWorker GETs one worker's /healthz under the attempt timeout and
// reports the verdict to its breaker. Any non-2xx (a booting worker's 503,
// a failed-WAL 503) counts as a failure.
func (c *Coordinator) probeWorker(w *worker) {
	before := w.state()
	c.met.probes.Add(1)
	w.probes.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), c.policy.AttemptTimeout)
	defer cancel()
	err := func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.addr+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := c.client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		if resp.StatusCode/100 != 2 {
			return fmt.Errorf("healthz: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
		}
		return nil
	}()
	ok := err == nil
	if !ok {
		c.met.probeFails.Add(1)
		w.probeFails.Add(1)
		w.noteErr(err)
	}
	w.br.Report(ok)
	if after := w.state(); after != before {
		c.log.Info("cluster: worker health transition",
			"worker", w.addr, "from", before, "to", after)
	}
}
