package cluster

// drain_test.go is the cluster-level chaos suite: real HTTP workers (httptest
// servers speaking the wire protocol through ShardStreamWriter), a
// deterministic FaultPlan on the coordinator's transport, and assertions on
// the drain's headline guarantees — rows arrive exactly once and in order
// under truncation/reset/corruption (resume via skip offsets), drops fail
// over to replicas, hangs are bounded by the attempt watchdog, straggling
// first bytes are hedged, an exhausted budget degrades to object-replica
// recovery or a flagged partial instead of an error, and nothing leaks.

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// testWorker is a synthetic worker process: it answers /healthz and serves
// deterministic rows per (shard, owner) over /shard/query, honoring skip
// and cap exactly as the production endpoint does.
type testWorker struct {
	ts        *httptest.Server
	healthy   atomic.Bool
	reqs      atomic.Int64
	bumpEpoch bool // epoch changes on every request (mid-drain resume trap)
	status    atomic.Int64
	rows      func(shard, owner int) [][]uint32
}

func newTestWorker(t *testing.T, rows func(shard, owner int) [][]uint32) *testWorker {
	t.Helper()
	w := &testWorker{rows: rows}
	w.healthy.Store(true)
	w.status.Store(http.StatusOK)
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		if !w.healthy.Load() {
			http.Error(rw, `{"status":"degraded"}`, http.StatusServiceUnavailable)
			return
		}
		rw.Write([]byte(`{"status":"ok"}`))
	})
	mux.HandleFunc("/shard/query", func(rw http.ResponseWriter, r *http.Request) {
		n := w.reqs.Add(1)
		if st := int(w.status.Load()); st != http.StatusOK {
			http.Error(rw, "synthetic failure", st)
			return
		}
		sh, _ := strconv.Atoi(r.FormValue("shard"))
		owner := -1
		if v := r.FormValue("owner"); v != "" {
			owner, _ = strconv.Atoi(v)
		}
		skip, _ := strconv.Atoi(r.FormValue("skip"))
		capN, _ := strconv.Atoi(r.FormValue("cap"))
		epoch := uint64(1)
		if w.bumpEpoch {
			epoch = uint64(n)
		}
		var flush func()
		if f, ok := rw.(http.Flusher); ok {
			flush = f.Flush
		}
		sw := NewShardStreamWriter(rw, flush)
		if err := sw.Header([]string{"a", "b"}, epoch, sh); err != nil {
			return
		}
		sent := 0
		for i, row := range w.rows(sh, owner) {
			if i < skip {
				continue
			}
			if err := sw.Row(row); err != nil {
				return
			}
			sent++
			if capN > 0 && sent >= capN {
				break
			}
		}
		sw.Finish("")
	})
	w.ts = httptest.NewServer(mux)
	t.Cleanup(w.ts.Close)
	return w
}

// host returns the worker's host:port — the FaultPlan match key.
func (w *testWorker) host() string { return strings.TrimPrefix(w.ts.URL, "http://") }

// testPolicy keeps chaos runs fast: millisecond backoffs, hedging off by
// default, probes paced out of the picture.
func testPolicy() Policy {
	return Policy{
		MaxAttempts:    4,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     2 * time.Millisecond,
		Jitter:         0.5,
		AttemptTimeout: 5 * time.Second,
		HedgeAfter:     -1,
		FailThreshold:  3,
		Cooldown:       50 * time.Millisecond,
		ProbeInterval:  time.Hour,
	}
}

func newTestCoordinator(t *testing.T, workers []*testWorker, shards int, tweak func(*Config)) *Coordinator {
	t.Helper()
	cfg := Config{
		Shards:        shards,
		Replicas:      1,
		Policy:        testPolicy(),
		Logger:        slog.New(slog.DiscardHandler),
		DisableProbes: true,
	}
	for _, w := range workers {
		cfg.Workers = append(cfg.Workers, w.ts.URL)
	}
	if tweak != nil {
		tweak(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	c.Start()
	t.Cleanup(c.Close)
	return c
}

// seqRows builds n two-column rows whose values encode their position, so
// duplicate or missing deliveries are detectable by value.
func seqRows(base, n int) [][]uint32 {
	rows := make([][]uint32, n)
	for i := range rows {
		rows[i] = []uint32{uint32(base + i), uint32(base + i + 1_000_000)}
	}
	return rows
}

// drainAll pulls the drain dry, copying every row.
func drainAll(d *remoteDrain) ([][]uint32, error) {
	defer d.Close()
	var rows [][]uint32
	for {
		row, err := d.Next()
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return rows, err
		}
		rows = append(rows, append([]uint32(nil), row...))
	}
}

// assertRowsExact fails unless got is want, element for element — the
// exactly-once assertion (a retried drain that double-delivers or skips
// shows up as a value mismatch, not just a length delta).
func assertRowsExact(t *testing.T, got, want [][]uint32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("delivered %d rows, want %d (lost or duplicated rows across retries)", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("row %d = %v, want %v (resume broke ordering or offsets)", i, got[i], want[i])
			}
		}
	}
}

func simpleReq(shard int) drainReq {
	return drainReq{
		shard:     shard,
		text:      "SELECT ?a ?b WHERE { ?a <http://ex/p> ?b }",
		vars:      []string{"a", "b"},
		engine:    "emptyheaded",
		owner:     -1,
		rootIdx:   -1,
		numShards: 1,
	}
}

func TestDrainDeliversStream(t *testing.T) {
	want := seqRows(0, 700)
	w := newTestWorker(t, func(sh, owner int) [][]uint32 { return want })
	c := newTestCoordinator(t, []*testWorker{w}, 1, nil)

	got, err := drainAll(newRemoteDrain(context.Background(), c, simpleReq(0)))
	if err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	assertRowsExact(t, got, want)
	if st := c.Stats(); st.Attempts != 1 || st.Retries != 0 {
		t.Fatalf("attempts=%d retries=%d, want 1/0", st.Attempts, st.Retries)
	}
}

// TestDrainResumeExactlyOnce is the headline chaos case: the stream is cut
// after one data frame (clean EOF, no terminal — a worker crash after the
// kernel flushed its last write), and the retried drain must resume at
// skip=256 so every row still arrives exactly once and in order.
func TestDrainResumeExactlyOnce(t *testing.T) {
	for _, kind := range []string{FaultTruncate, FaultReset, FaultCorrupt} {
		t.Run(kind, func(t *testing.T) {
			want := seqRows(0, 700)
			w := newTestWorker(t, func(sh, owner int) [][]uint32 { return want })
			plan := (&FaultPlan{}).Add(Fault{Worker: w.host(), Kind: kind, AfterFrames: 1, Count: 1})
			c := newTestCoordinator(t, []*testWorker{w}, 1, func(cfg *Config) {
				cfg.Transport = plan.Transport(nil)
			})

			got, err := drainAll(newRemoteDrain(context.Background(), c, simpleReq(0)))
			if err != nil {
				t.Fatalf("drain failed instead of resuming: %v", err)
			}
			assertRowsExact(t, got, want)
			if plan.Fired() != 1 {
				t.Fatalf("fault fired %d times, want 1", plan.Fired())
			}
			st := c.Stats()
			if st.Retries != 1 {
				t.Fatalf("retries = %d, want exactly 1", st.Retries)
			}
			// The resumed request must have told the worker to skip the
			// first frame's 256 delivered rows — asserted by value above,
			// and by request count here.
			if w.reqs.Load() != 2 {
				t.Fatalf("worker saw %d requests, want 2 (original + resume)", w.reqs.Load())
			}
		})
	}
}

func TestDrainRetriesServerError(t *testing.T) {
	want := seqRows(0, 10)
	w := newTestWorker(t, func(sh, owner int) [][]uint32 { return want })
	w.status.Store(http.StatusInternalServerError)
	c := newTestCoordinator(t, []*testWorker{w}, 1, nil)

	// A 500 is retryable; with one worker answering nothing but 500s the
	// budget is spent until the breaker opens (FailThreshold=3 beats
	// MaxAttempts=4 here) and the drain reports the shard unavailable.
	_, err := drainAll(newRemoteDrain(context.Background(), c, simpleReq(0)))
	var unavail errShardUnavailable
	if !errors.As(err, &unavail) {
		t.Fatalf("budget exhaustion error = %v, want errShardUnavailable", err)
	}
	if st := c.Stats(); st.Attempts != 3 || st.Retries != 3 {
		t.Fatalf("attempts=%d retries=%d, want 3/3 (the opened breaker ends the spend)", st.Attempts, st.Retries)
	}
	if st := c.Stats(); st.Workers[0].State != "down" {
		t.Fatalf("worker state = %q, want down", st.Workers[0].State)
	}

	// A fresh drain after recovery succeeds: the open breaker's fallback
	// path still tries the sole candidate, and the success closes it.
	w.status.Store(http.StatusOK)
	got, err := drainAll(newRemoteDrain(context.Background(), c, simpleReq(0)))
	if err != nil {
		t.Fatalf("post-recovery drain: %v", err)
	}
	assertRowsExact(t, got, want)
}

func TestDrainClientErrorIsPermanent(t *testing.T) {
	w := newTestWorker(t, func(sh, owner int) [][]uint32 { return nil })
	w.status.Store(http.StatusConflict) // e.g. a shard-count mismatch
	c := newTestCoordinator(t, []*testWorker{w}, 1, nil)

	_, err := drainAll(newRemoteDrain(context.Background(), c, simpleReq(0)))
	if err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("err = %v, want the worker's HTTP 409 surfaced", err)
	}
	if st := c.Stats(); st.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (4xx must not burn the retry budget)", st.Attempts)
	}
}

func TestDrainFailsOverToReplica(t *testing.T) {
	want := seqRows(0, 300)
	w0 := newTestWorker(t, func(sh, owner int) [][]uint32 { return want })
	w1 := newTestWorker(t, func(sh, owner int) [][]uint32 { return want })
	plan := (&FaultPlan{}).Add(Fault{Worker: w0.host(), Kind: FaultDrop}) // primary dead forever
	c := newTestCoordinator(t, []*testWorker{w0, w1}, 1, func(cfg *Config) {
		cfg.Replicas = 2
		cfg.Transport = plan.Transport(nil)
	})

	got, err := drainAll(newRemoteDrain(context.Background(), c, simpleReq(0)))
	if err != nil {
		t.Fatalf("drain failed instead of failing over: %v", err)
	}
	assertRowsExact(t, got, want)
	st := c.Stats()
	if st.Failovers == 0 {
		t.Fatal("no failover recorded despite the primary being down")
	}
	if w1.reqs.Load() == 0 {
		t.Fatal("replica worker never drained")
	}
	// The dead primary's breaker accumulated the failure.
	if st.Workers[0].ConsecutiveFails == 0 {
		t.Fatalf("primary breaker saw no failures: %+v", st.Workers[0])
	}
}

func TestDrainHangBoundedByWatchdog(t *testing.T) {
	want := seqRows(0, 50)
	w := newTestWorker(t, func(sh, owner int) [][]uint32 { return want })
	plan := (&FaultPlan{}).Add(Fault{Worker: w.host(), Kind: FaultHang, Count: 1})
	c := newTestCoordinator(t, []*testWorker{w}, 1, func(cfg *Config) {
		cfg.Transport = plan.Transport(nil)
		cfg.Policy.AttemptTimeout = 50 * time.Millisecond
	})

	start := time.Now()
	got, err := drainAll(newRemoteDrain(context.Background(), c, simpleReq(0)))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("drain failed instead of retrying past the hang: %v", err)
	}
	assertRowsExact(t, got, want)
	if elapsed > 3*time.Second {
		t.Fatalf("drain took %v — the first-byte watchdog did not bound the hang", elapsed)
	}
	if st := c.Stats(); st.Retries != 1 {
		t.Fatalf("retries = %d, want 1", st.Retries)
	}
}

func TestDrainHedgesStragglingFirstByte(t *testing.T) {
	want := seqRows(0, 300)
	w0 := newTestWorker(t, func(sh, owner int) [][]uint32 { return want })
	w1 := newTestWorker(t, func(sh, owner int) [][]uint32 { return want })
	// The primary's response is delayed well past the hedge trigger; the
	// backup answers instantly and must win the race.
	plan := (&FaultPlan{}).Add(Fault{Worker: w0.host(), Kind: FaultDelay, Delay: 400 * time.Millisecond, Count: 1})
	c := newTestCoordinator(t, []*testWorker{w0, w1}, 1, func(cfg *Config) {
		cfg.Replicas = 2
		cfg.Transport = plan.Transport(nil)
		cfg.Policy.HedgeAfter = 10 * time.Millisecond
	})

	start := time.Now()
	got, err := drainAll(newRemoteDrain(context.Background(), c, simpleReq(0)))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("hedged drain failed: %v", err)
	}
	assertRowsExact(t, got, want)
	st := c.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("hedges=%d hedge_wins=%d, want 1/1", st.Hedges, st.HedgeWins)
	}
	if st.Retries != 0 {
		t.Fatalf("retries = %d — a hedge win must not count as a retry", st.Retries)
	}
	if elapsed >= 400*time.Millisecond {
		t.Fatalf("drain took %v — the backup's rows did not win over the delayed primary", elapsed)
	}
}

func TestDrainPartialWhenBudgetExhausted(t *testing.T) {
	w := newTestWorker(t, func(sh, owner int) [][]uint32 { return seqRows(0, 5) })
	plan := (&FaultPlan{}).Add(Fault{Worker: w.host(), Kind: FaultDrop})
	c := newTestCoordinator(t, []*testWorker{w}, 2, func(cfg *Config) {
		cfg.Transport = plan.Transport(nil)
		cfg.Policy.MaxAttempts = 2
	})

	ctx, sink := WithPartial(context.Background())
	req := simpleReq(0)
	req.numShards = 2
	got, err := drainAll(newRemoteDrain(ctx, c, req))
	if err != nil {
		t.Fatalf("degraded drain must end cleanly, got %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("unreachable shard produced %d rows", len(got))
	}
	miss := sink.Missing()
	if len(miss) != 1 || miss[0].Shard != 0 || miss[0].Mode != DegradeLost {
		t.Fatalf("partial sink = %+v, want shard 0 lost", miss)
	}
	if st := c.Stats(); st.PartialResults != 1 {
		t.Fatalf("partial_results = %d, want 1", st.PartialResults)
	}
}

func TestDrainFailsHardWithoutSink(t *testing.T) {
	w := newTestWorker(t, func(sh, owner int) [][]uint32 { return nil })
	plan := (&FaultPlan{}).Add(Fault{Worker: w.host(), Kind: FaultDrop})
	c := newTestCoordinator(t, []*testWorker{w}, 1, func(cfg *Config) {
		cfg.Transport = plan.Transport(nil)
		cfg.Policy.MaxAttempts = 2
	})

	// No WithPartial: degradation is opt-in by the serving layer; a bare
	// context must surface the failure instead of silently dropping rows.
	_, err := drainAll(newRemoteDrain(context.Background(), c, simpleReq(0)))
	var unavail errShardUnavailable
	if !errors.As(err, &unavail) {
		t.Fatalf("err = %v, want errShardUnavailable", err)
	}
	if unavail.shard != 0 {
		t.Fatalf("unavailable shard = %d, want 0", unavail.shard)
	}
	if st := c.Stats(); st.PartialResults != 0 {
		t.Fatal("partial recorded without a sink installed")
	}
}

// TestDrainRecoversFromObjectReplicas: a single-pattern group's lost shard
// is reassembled by re-draining the surviving shards with the lost shard's
// ownership filter — the partitioner put every triple's object-side replica
// somewhere that survives.
func TestDrainRecoversFromObjectReplicas(t *testing.T) {
	replicaRows := [][]uint32{{100, 101}, {102, 103}, {104, 105}}
	w0 := newTestWorker(t, func(sh, owner int) [][]uint32 { return seqRows(0, 9) })
	w1 := newTestWorker(t, func(sh, owner int) [][]uint32 {
		if sh == 1 && owner == 0 {
			return replicaRows // shard 1's replicas of shard 0's triples
		}
		return seqRows(1000, 4)
	})
	plan := (&FaultPlan{}).Add(Fault{Worker: w0.host(), Kind: FaultDrop})
	c := newTestCoordinator(t, []*testWorker{w0, w1}, 2, func(cfg *Config) {
		cfg.Transport = plan.Transport(nil)
		cfg.Policy.MaxAttempts = 2
	})

	ctx, sink := WithPartial(context.Background())
	req := simpleReq(0)
	req.owner = 0
	req.rootIdx = 0
	req.singlePattern = true
	req.numShards = 2
	got, err := drainAll(newRemoteDrain(ctx, c, req))
	if err != nil {
		t.Fatalf("replica recovery failed: %v", err)
	}
	assertRowsExact(t, got, replicaRows)
	miss := sink.Missing()
	if len(miss) != 1 || miss[0].Shard != 0 || miss[0].Mode != DegradeReplicas {
		t.Fatalf("partial sink = %+v, want shard 0 object-replicas", miss)
	}
	st := c.Stats()
	if st.ReplicaRecoveries != 1 {
		t.Fatalf("replica_recoveries = %d, want 1", st.ReplicaRecoveries)
	}
}

// TestDrainReplicaRecoverySkipsDeadSurvivors: when one of the surviving
// shards consulted for replicas is itself unreachable, recovery keeps going
// with the rest — the result is already flagged partial.
func TestDrainReplicaRecoverySkipsDeadSurvivors(t *testing.T) {
	w0 := newTestWorker(t, func(sh, owner int) [][]uint32 { return nil })
	w1 := newTestWorker(t, func(sh, owner int) [][]uint32 { return nil })
	w2 := newTestWorker(t, func(sh, owner int) [][]uint32 {
		if sh == 2 && owner == 0 {
			return [][]uint32{{7, 8}}
		}
		return nil
	})
	plan := (&FaultPlan{}).
		Add(Fault{Worker: w0.host(), Kind: FaultDrop}).
		Add(Fault{Worker: w1.host(), Kind: FaultDrop})
	c := newTestCoordinator(t, []*testWorker{w0, w1, w2}, 3, func(cfg *Config) {
		cfg.Transport = plan.Transport(nil)
		cfg.Policy.MaxAttempts = 2
	})

	ctx, sink := WithPartial(context.Background())
	req := simpleReq(0)
	req.owner = 0
	req.rootIdx = 0
	req.singlePattern = true
	req.numShards = 3
	got, err := drainAll(newRemoteDrain(ctx, c, req))
	if err != nil {
		t.Fatalf("recovery with a dead survivor failed: %v", err)
	}
	assertRowsExact(t, got, [][]uint32{{7, 8}})
	if miss := sink.Missing(); len(miss) != 1 || miss[0].Mode != DegradeReplicas {
		t.Fatalf("partial sink = %+v", miss)
	}
}

func TestDrainDisableReplicaRecovery(t *testing.T) {
	w0 := newTestWorker(t, func(sh, owner int) [][]uint32 { return nil })
	w1 := newTestWorker(t, func(sh, owner int) [][]uint32 { return seqRows(0, 3) })
	plan := (&FaultPlan{}).Add(Fault{Worker: w0.host(), Kind: FaultDrop})
	c := newTestCoordinator(t, []*testWorker{w0, w1}, 2, func(cfg *Config) {
		cfg.Transport = plan.Transport(nil)
		cfg.Policy.MaxAttempts = 2
		cfg.DisableReplicaRecovery = true
	})

	ctx, sink := WithPartial(context.Background())
	req := simpleReq(0)
	req.owner = 0
	req.rootIdx = 0
	req.singlePattern = true
	req.numShards = 2
	got, err := drainAll(newRemoteDrain(ctx, c, req))
	if err != nil || len(got) != 0 {
		t.Fatalf("rows=%d err=%v, want a clean empty stream", len(got), err)
	}
	if miss := sink.Missing(); len(miss) != 1 || miss[0].Mode != DegradeLost {
		t.Fatalf("partial sink = %+v, want shard 0 lost (recovery disabled)", miss)
	}
	if w1.reqs.Load() != 0 {
		t.Fatal("surviving shard drained despite recovery being disabled")
	}
}

// TestDrainRefusesEpochChangeMidDrain: resuming against a worker whose
// store epoch moved would splice rows from two dataset versions — the drain
// must fail hard rather than answer wrong.
func TestDrainRefusesEpochChangeMidDrain(t *testing.T) {
	want := seqRows(0, 700)
	w := newTestWorker(t, func(sh, owner int) [][]uint32 { return want })
	w.bumpEpoch = true
	plan := (&FaultPlan{}).Add(Fault{Worker: w.host(), Kind: FaultTruncate, AfterFrames: 1, Count: 1})
	c := newTestCoordinator(t, []*testWorker{w}, 1, func(cfg *Config) {
		cfg.Transport = plan.Transport(nil)
	})

	got, err := drainAll(newRemoteDrain(context.Background(), c, simpleReq(0)))
	if err == nil || !strings.Contains(err.Error(), "epoch changed") {
		t.Fatalf("err = %v, want the mid-drain epoch refusal", err)
	}
	if len(got) != 256 {
		t.Fatalf("delivered %d rows before the refusal, want the first frame's 256", len(got))
	}
}

func TestDrainContextCancellation(t *testing.T) {
	w := newTestWorker(t, func(sh, owner int) [][]uint32 { return seqRows(0, 5) })
	c := newTestCoordinator(t, []*testWorker{w}, 1, nil)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := drainAll(newRemoteDrain(ctx, c, simpleReq(0)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (cancellation is not a worker fault)", err)
	}
	if st := c.Stats(); st.PartialResults != 0 {
		t.Fatal("a cancelled query must not be flagged partial")
	}
}

func TestDrainCloseMidStream(t *testing.T) {
	w := newTestWorker(t, func(sh, owner int) [][]uint32 { return seqRows(0, 700) })
	c := newTestCoordinator(t, []*testWorker{w}, 1, nil)

	d := newRemoteDrain(context.Background(), c, simpleReq(0))
	if _, err := d.Next(); err != nil {
		t.Fatalf("first Next: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("Next after Close = %v, want io.EOF", err)
	}
}

func TestProbeLoopDrivesBreaker(t *testing.T) {
	w := newTestWorker(t, func(sh, owner int) [][]uint32 { return nil })
	c := newTestCoordinator(t, []*testWorker{w}, 1, func(cfg *Config) {
		cfg.DisableProbes = false
		cfg.Policy.ProbeInterval = 5 * time.Millisecond
		cfg.Policy.FailThreshold = 2
		cfg.Policy.Cooldown = 20 * time.Millisecond
	})

	waitState := func(want string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if c.Stats().Workers[0].State == want {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("worker never reached state %q (now %q)", want, c.Stats().Workers[0].State)
	}

	waitState("up")
	// /healthz starts answering 503: the probe loop must open the breaker.
	w.healthy.Store(false)
	waitState("down")
	st := c.Stats()
	if st.ProbeFailures == 0 || st.Workers[0].ProbeFailures == 0 {
		t.Fatalf("no probe failures recorded: %+v", st.Workers[0])
	}
	if st.Workers[0].LastError == "" || !strings.Contains(st.Workers[0].LastError, "503") {
		t.Fatalf("last_error = %q, want the healthz 503", st.Workers[0].LastError)
	}
	// Recovery: the half-open probe after the cooldown re-admits it with no
	// query traffic at all.
	w.healthy.Store(true)
	waitState("up")
}

func TestWorkerStateDerivation(t *testing.T) {
	w := &worker{addr: "x", br: NewBreaker(Policy{FailThreshold: 3}, nil)}
	if w.state() != "up" {
		t.Fatalf("fresh worker state = %q, want up", w.state())
	}
	w.br.Report(false)
	if w.state() != "degraded" {
		t.Fatalf("state after 1 failure = %q, want degraded", w.state())
	}
	w.br.Report(false)
	w.br.Report(false)
	if w.state() != "down" {
		t.Fatalf("state with an open breaker = %q, want down", w.state())
	}
	w.br.Report(true)
	if w.state() != "up" {
		t.Fatalf("state after recovery = %q, want up", w.state())
	}
}

// TestDrainNoGoroutineLeaks runs the leak-prone scenarios — resumed
// streams, hedged races with a reaped loser, a watchdog-cancelled hang —
// then closes everything and requires the goroutine count to settle back.
func TestDrainNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	func() {
		want := seqRows(0, 700)
		w0 := newTestWorker(t, func(sh, owner int) [][]uint32 { return want })
		w1 := newTestWorker(t, func(sh, owner int) [][]uint32 { return want })
		plan := (&FaultPlan{}).
			Add(Fault{Worker: w0.host(), Kind: FaultTruncate, AfterFrames: 1, Count: 1}).
			Add(Fault{Worker: w0.host(), Kind: FaultDelay, Delay: 100 * time.Millisecond, Count: 1}).
			Add(Fault{Worker: w0.host(), Kind: FaultHang, Count: 1})
		c := newTestCoordinator(t, []*testWorker{w0, w1}, 1, func(cfg *Config) {
			cfg.Replicas = 2
			cfg.Transport = plan.Transport(nil)
			cfg.Policy.AttemptTimeout = 200 * time.Millisecond
			cfg.Policy.HedgeAfter = 5 * time.Millisecond
		})
		for i := 0; i < 3; i++ {
			got, err := drainAll(newRemoteDrain(context.Background(), c, simpleReq(0)))
			if err != nil {
				t.Fatalf("drain %d: %v", i, err)
			}
			assertRowsExact(t, got, want)
		}
		// Abandon one mid-stream too: Close must reap its connection.
		d := newRemoteDrain(context.Background(), c, simpleReq(0))
		if _, err := d.Next(); err != nil {
			t.Fatalf("mid-stream drain: %v", err)
		}
		d.Close()
		c.Close()
		c.client.CloseIdleConnections()
		w0.ts.Close()
		w1.ts.Close()
	}()

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines did not settle: before=%d now=%d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
