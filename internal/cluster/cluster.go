// Package cluster promotes the in-process scatter-gather of internal/shard
// to a cross-process cluster: a coordinator plugs into the shard engine's
// RemoteOpener seam and serves every per-shard sub-query by streaming
// framed row batches from worker rdfserved processes over HTTP.
//
// Failure is the design input. Every drain runs under a retry budget with
// capped exponential backoff and jitter, resuming exactly where the broken
// stream stopped (workers skip already-delivered rows, so retried drains
// deliver each row exactly once). Worker selection is health-gated: an
// active /healthz probe loop and per-worker circuit breakers classify
// workers up/degraded/down, an open breaker re-admits one half-open probe
// after a cooldown. Straggling first bytes are hedged against a replica
// candidate at a p99-derived delay — first stream wins, the loser is
// cancelled. When a shard stays unreachable past the budget, the drain
// degrades gracefully: single-pattern groups are reassembled from the
// object-side replicas the partitioner placed on the surviving shards, and
// anything else is reported through the Partial sink so the server flags
// the response rather than failing it.
//
// # Topology
//
// Workers are symmetric rdfserved processes that each load the dataset and
// partition it with the same deterministic code (same subject-hash, same
// dictionary assignment), so a row's uint32 terms mean the same thing on
// every process. The coordinator assigns shard K to Replicas candidate
// workers (K mod W, K+1 mod W, ...) — the first is the primary, the rest
// serve failover and hedging.
package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/shard"
)

// Config parameterizes New.
type Config struct {
	// Workers are the worker base URLs ("http://host:port"), in shard
	// assignment order.
	Workers []string
	// Shards is the partition's shard count (must match every worker's
	// -shards; workers reject mismatched requests).
	Shards int
	// Replicas is how many candidate workers serve each shard (primary +
	// failover targets). Defaults to min(2, len(Workers)).
	Replicas int
	// Policy tunes retries, hedging, breakers, and probing; zero fields
	// take DefaultPolicy values.
	Policy Policy
	// Transport overrides the HTTP transport — the deterministic
	// fault-injection seam (see FaultPlan.Transport). Nil uses a pooled
	// default.
	Transport http.RoundTripper
	// Logger receives health transitions and degradation events. Nil
	// discards.
	Logger *slog.Logger
	// DisableProbes turns the active health loop off; breakers are then
	// driven by request outcomes alone. Tests use it to keep runs
	// deterministic.
	DisableProbes bool
	// DisableReplicaRecovery turns the object-replica degradation rung off:
	// an unreachable shard goes straight to the partial flag.
	DisableReplicaRecovery bool
	// Now and Rand inject the clock and randomness (tests); nil means
	// time.Now and math/rand.
	Now  func() time.Time
	Rand func() float64
}

// Coordinator fans per-shard sub-queries out to the worker fleet. Safe for
// concurrent use; one instance serves every engine and every epoch (it
// holds no partition state — the shard planner above the seam does).
type Coordinator struct {
	cfg     Config
	policy  Policy
	client  *http.Client
	workers []*worker
	log     *slog.Logger
	now     func() time.Time

	randMu sync.Mutex
	rand   func() float64

	// firstRow distributes attempt time-to-first-byte — the hedge trigger's
	// p99 source and a /metrics histogram.
	firstRow *obs.Hist

	met clusterMetrics

	// texts renders sub-queries to wire text once per interned plan pointer.
	textMu sync.Mutex
	texts  map[*query.BGP]string

	stopProbes chan struct{}
	probesDone chan struct{}
	started    atomic.Bool
}

// textCacheCap bounds the rendered sub-query cache; one arbitrary entry is
// evicted when full (the cache is keyed by interned plan pointers, so in
// steady state it tracks the scatter-plan cache).
const textCacheCap = 1 << 12

// worker is one remote rdfserved process and its health state.
type worker struct {
	addr string // base URL, no trailing slash
	br   *Breaker

	probes     atomic.Uint64
	probeFails atomic.Uint64
	drains     atomic.Uint64

	mu      sync.Mutex
	lastErr string
}

func (w *worker) noteErr(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err == nil {
		w.lastErr = ""
	} else {
		w.lastErr = err.Error()
	}
}

// state derives the worker's health classification from its breaker.
func (w *worker) state() string {
	switch w.br.State() {
	case BreakerClosed:
		if w.br.Fails() > 0 {
			return "degraded"
		}
		return "up"
	default:
		return "down"
	}
}

// clusterMetrics are the coordinator's robustness counters.
type clusterMetrics struct {
	attempts          atomic.Uint64
	retries           atomic.Uint64
	hedges            atomic.Uint64
	hedgeWins         atomic.Uint64
	failovers         atomic.Uint64
	replicaRecoveries atomic.Uint64
	partials          atomic.Uint64
	probes            atomic.Uint64
	probeFails        atomic.Uint64
}

// New validates cfg and builds the coordinator. Call Start to begin health
// probing and Close on shutdown.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("cluster: no workers configured")
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("cluster: shards must be >= 1 (got %d)", cfg.Shards)
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.Replicas > len(cfg.Workers) {
		cfg.Replicas = len(cfg.Workers)
	}
	pol := cfg.Policy.withDefaults()
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	rnd := cfg.Rand
	if rnd == nil {
		rnd = rand.Float64
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	transport := cfg.Transport
	if transport == nil {
		transport = &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	c := &Coordinator{
		cfg:        cfg,
		policy:     pol,
		client:     &http.Client{Transport: transport},
		log:        log,
		now:        now,
		rand:       rnd,
		firstRow:   obs.NewHist(obs.LatencyBuckets()),
		texts:      map[*query.BGP]string{},
		stopProbes: make(chan struct{}),
		probesDone: make(chan struct{}),
	}
	for _, addr := range cfg.Workers {
		c.workers = append(c.workers, &worker{
			addr: strings.TrimRight(addr, "/"),
			br:   NewBreaker(pol, now),
		})
	}
	return c, nil
}

// Start launches the health probe loop (a no-op when probes are disabled
// or Start already ran).
func (c *Coordinator) Start() {
	if c.cfg.DisableProbes || !c.started.CompareAndSwap(false, true) {
		close(c.probesDone)
		return
	}
	go c.probeLoop()
}

// Close stops the probe loop and the transport's idle connections.
func (c *Coordinator) Close() {
	if c.started.CompareAndSwap(true, false) {
		close(c.stopProbes)
		<-c.probesDone
	}
	c.client.CloseIdleConnections()
}

// jitter returns a uniform [0,1) sample under the lock math/rand's global
// source does not need but injected test sources might.
func (c *Coordinator) jitter() float64 {
	c.randMu.Lock()
	defer c.randMu.Unlock()
	return c.rand()
}

// hedgeDelay is the current p99-derived hedge trigger.
func (c *Coordinator) hedgeDelay() time.Duration {
	return c.policy.HedgeDelay(c.firstRow.Snapshot().QuantileDuration(0.99))
}

// candidates returns shard sh's candidate workers, primary first.
func (c *Coordinator) candidates(sh int) []*worker {
	w := len(c.workers)
	n := c.cfg.Replicas
	if n > w {
		n = w
	}
	out := make([]*worker, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, c.workers[(sh+i)%w])
	}
	return out
}

// subText renders (and memoizes) sub's wire text. Sub-query pointers are
// interned by the scatter planner, so the render runs once per plan.
func (c *Coordinator) subText(sub *query.BGP) string {
	c.textMu.Lock()
	defer c.textMu.Unlock()
	if t, ok := c.texts[sub]; ok {
		return t
	}
	t := sub.String()
	if len(c.texts) >= textCacheCap {
		for k := range c.texts {
			delete(c.texts, k)
			break
		}
	}
	c.texts[sub] = t
	return t
}

// Opener returns the shard.RemoteOpener that fans engineName's sub-queries
// out to the fleet. Install it on a shard engine via SetRemote.
func (c *Coordinator) Opener(engineName string) shard.RemoteOpener {
	return &opener{c: c, engine: engineName}
}

type opener struct {
	c      *Coordinator
	engine string
}

// OpenShard builds the robust drain cursor for one shard's sub-query.
// Establishment is lazy (first Next), so the open itself never blocks on
// the network and every failure flows through the cursor — exactly the
// contract the merge layer's drains already handle.
func (o *opener) OpenShard(ctx context.Context, sh int, sub *query.BGP, h shard.RemoteHints) (engine.Cursor, error) {
	return newRemoteDrain(ctx, o.c, drainReq{
		shard:         sh,
		text:          o.c.subText(sub),
		vars:          append([]string(nil), sub.Select...),
		engine:        o.engine,
		owner:         h.Owner,
		rootIdx:       h.RootIdx,
		cap:           h.Cap,
		singlePattern: h.SinglePattern,
		numShards:     o.c.cfg.Shards,
	}), nil
}

// WorkerHealth is one worker's health snapshot for /stats and /metrics.
type WorkerHealth struct {
	Addr             string `json:"addr"`
	State            string `json:"state"`
	Breaker          string `json:"breaker"`
	ConsecutiveFails int    `json:"consecutive_fails"`
	Probes           uint64 `json:"probes"`
	ProbeFailures    uint64 `json:"probe_failures"`
	Drains           uint64 `json:"drains"`
	LastError        string `json:"last_error,omitempty"`
}

// Stats is the cluster section of the server's /stats.
type Stats struct {
	Workers           []WorkerHealth `json:"workers"`
	Shards            int            `json:"shards"`
	Replicas          int            `json:"replicas"`
	Attempts          uint64         `json:"attempts"`
	Retries           uint64         `json:"retries"`
	Hedges            uint64         `json:"hedges"`
	HedgeWins         uint64         `json:"hedge_wins"`
	Failovers         uint64         `json:"failovers"`
	ReplicaRecoveries uint64         `json:"replica_recoveries"`
	PartialResults    uint64         `json:"partial_results"`
	Probes            uint64         `json:"probes"`
	ProbeFailures     uint64         `json:"probe_failures"`
	FirstRowP50Ms     float64        `json:"first_row_p50_ms"`
	FirstRowP99Ms     float64        `json:"first_row_p99_ms"`
	HedgeDelayMs      float64        `json:"hedge_delay_ms"`
}

// Stats snapshots the coordinator's counters and per-worker health.
func (c *Coordinator) Stats() Stats {
	snap := c.firstRow.Snapshot()
	st := Stats{
		Shards:            c.cfg.Shards,
		Replicas:          c.cfg.Replicas,
		Attempts:          c.met.attempts.Load(),
		Retries:           c.met.retries.Load(),
		Hedges:            c.met.hedges.Load(),
		HedgeWins:         c.met.hedgeWins.Load(),
		Failovers:         c.met.failovers.Load(),
		ReplicaRecoveries: c.met.replicaRecoveries.Load(),
		PartialResults:    c.met.partials.Load(),
		Probes:            c.met.probes.Load(),
		ProbeFailures:     c.met.probeFails.Load(),
		FirstRowP50Ms:     snap.Quantile(0.5) * 1e3,
		FirstRowP99Ms:     snap.Quantile(0.99) * 1e3,
		HedgeDelayMs:      float64(c.hedgeDelay()) / 1e6,
	}
	for _, w := range c.workers {
		st.Workers = append(st.Workers, WorkerHealth{
			Addr:             w.addr,
			State:            w.state(),
			Breaker:          w.br.State().String(),
			ConsecutiveFails: w.br.Fails(),
			Probes:           w.probes.Load(),
			ProbeFailures:    w.probeFails.Load(),
			Drains:           w.drains.Load(),
			LastError:        func() string { w.mu.Lock(); defer w.mu.Unlock(); return w.lastErr }(),
		})
	}
	return st
}

// FirstRowHist exposes the attempt time-to-first-byte histogram for
// /metrics.
func (c *Coordinator) FirstRowHist() obs.HistSnapshot { return c.firstRow.Snapshot() }
