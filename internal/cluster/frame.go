package cluster

// frame.go is the wire codec of the shard stream: after a one-line JSON
// header, row batches travel as length-prefixed binary frames, each carrying
// a sequence number and a CRC. The framing exists for failure handling, not
// speed: sequence numbers let a resumed drain prove it is not skipping or
// double-delivering batches, the CRC turns silent corruption into a typed
// retryable error, and the explicit terminal frame (with a total-row echo)
// distinguishes a clean end-of-stream from a connection cut mid-results —
// without it, a TCP FIN after batch N looks exactly like EOF.
//
// Layout (all integers little-endian uint32):
//
//	header    JSON line: {"vars":[...],"epoch":E,"shard":K}\n
//	data      seq | nrows | ncols | nrows·ncols row values | crc
//	terminal  seq | 0xFFFFFFFF | rowsTotal | errLen | errLen bytes | crc
//
// The CRC (IEEE) covers every frame byte before it. A terminal frame with a
// non-empty error string reports a worker-side execution failure after
// rowsTotal successfully shipped rows.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// terminalMark is the nrows value that marks the terminal frame.
const terminalMark = 0xFFFFFFFF

// frameRows is how many rows a worker packs per frame before flushing.
const frameRows = 256

// maxFrameCells bounds a decoded frame's nrows·ncols so a corrupt length
// prefix cannot ask the reader to allocate gigabytes.
const maxFrameCells = 1 << 22

// streamHeader is the JSON line that precedes the frames.
type streamHeader struct {
	Vars  []string `json:"vars"`
	Epoch uint64   `json:"epoch"`
	Shard int      `json:"shard"`
}

// errCorrupt marks a frame that failed its CRC, arrived out of sequence, or
// was cut short — all retryable through the transport-error path.
var errCorrupt = errors.New("cluster: corrupt or truncated frame")

// frameWriter encodes the stream on the worker side.
type frameWriter struct {
	w    *bufio.Writer
	seq  uint32
	rows uint32
	buf  []byte
}

func newFrameWriter(w io.Writer) *frameWriter {
	return &frameWriter{w: bufio.NewWriterSize(w, 32<<10)}
}

// writeHeader emits the JSON header line.
func (fw *frameWriter) writeHeader(vars []string, epoch uint64, shard int) error {
	if vars == nil {
		vars = []string{}
	}
	b, err := json.Marshal(streamHeader{Vars: vars, Epoch: epoch, Shard: shard})
	if err != nil {
		return err
	}
	if _, err := fw.w.Write(b); err != nil {
		return err
	}
	return fw.w.WriteByte('\n')
}

// writeBatch emits one data frame and flushes it, so a slow consumer sees
// rows as they exist rather than when the stream ends.
func (fw *frameWriter) writeBatch(rows [][]uint32, ncols int) error {
	if len(rows) == 0 {
		return nil
	}
	fw.buf = fw.buf[:0]
	fw.buf = binary.LittleEndian.AppendUint32(fw.buf, fw.seq)
	fw.buf = binary.LittleEndian.AppendUint32(fw.buf, uint32(len(rows)))
	fw.buf = binary.LittleEndian.AppendUint32(fw.buf, uint32(ncols))
	for _, row := range rows {
		for _, v := range row {
			fw.buf = binary.LittleEndian.AppendUint32(fw.buf, v)
		}
	}
	fw.buf = binary.LittleEndian.AppendUint32(fw.buf, crc32.ChecksumIEEE(fw.buf))
	fw.seq++
	fw.rows += uint32(len(rows))
	if _, err := fw.w.Write(fw.buf); err != nil {
		return err
	}
	return fw.w.Flush()
}

// writeTerminal emits the terminal frame — errMsg empty for a clean end of
// stream — and flushes.
func (fw *frameWriter) writeTerminal(errMsg string) error {
	fw.buf = fw.buf[:0]
	fw.buf = binary.LittleEndian.AppendUint32(fw.buf, fw.seq)
	fw.buf = binary.LittleEndian.AppendUint32(fw.buf, terminalMark)
	fw.buf = binary.LittleEndian.AppendUint32(fw.buf, fw.rows)
	fw.buf = binary.LittleEndian.AppendUint32(fw.buf, uint32(len(errMsg)))
	fw.buf = append(fw.buf, errMsg...)
	fw.buf = binary.LittleEndian.AppendUint32(fw.buf, crc32.ChecksumIEEE(fw.buf))
	if _, err := fw.w.Write(fw.buf); err != nil {
		return err
	}
	return fw.w.Flush()
}

// frameReader decodes the stream on the coordinator side, verifying CRCs
// and sequence continuity as it goes.
type frameReader struct {
	br   *bufio.Reader
	seq  uint32
	rows uint32
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{br: bufio.NewReaderSize(r, 32<<10)}
}

// readHeader consumes and parses the JSON header line.
func (fr *frameReader) readHeader() (streamHeader, error) {
	var h streamHeader
	line, err := fr.br.ReadBytes('\n')
	if err != nil {
		return h, fmt.Errorf("%w: reading stream header: %v", errCorrupt, err)
	}
	if err := json.Unmarshal(line, &h); err != nil {
		return h, fmt.Errorf("%w: bad stream header: %v", errCorrupt, err)
	}
	return h, nil
}

// readBatch returns the next data frame's rows. A clean terminal frame
// (with a matching total-row echo) returns io.EOF; a terminal frame
// carrying a worker error returns it as a workerError; any integrity
// violation returns errCorrupt, which callers treat as retryable.
func (fr *frameReader) readBatch() ([][]uint32, error) {
	head := make([]byte, 8)
	if _, err := io.ReadFull(fr.br, head); err != nil {
		return nil, fmt.Errorf("%w: stream cut before terminal frame: %v", errCorrupt, err)
	}
	seq := binary.LittleEndian.Uint32(head[0:4])
	nrows := binary.LittleEndian.Uint32(head[4:8])
	if seq != fr.seq {
		return nil, fmt.Errorf("%w: frame sequence gap (want %d, got %d)", errCorrupt, fr.seq, seq)
	}

	if nrows == terminalMark {
		tail := make([]byte, 8)
		if _, err := io.ReadFull(fr.br, tail); err != nil {
			return nil, fmt.Errorf("%w: truncated terminal frame: %v", errCorrupt, err)
		}
		total := binary.LittleEndian.Uint32(tail[0:4])
		errLen := binary.LittleEndian.Uint32(tail[4:8])
		if errLen > 1<<16 {
			return nil, fmt.Errorf("%w: oversized terminal error", errCorrupt)
		}
		rest := make([]byte, errLen+4)
		if _, err := io.ReadFull(fr.br, rest); err != nil {
			return nil, fmt.Errorf("%w: truncated terminal frame: %v", errCorrupt, err)
		}
		sum := crc32.ChecksumIEEE(head)
		sum = crc32.Update(sum, crc32.IEEETable, tail)
		sum = crc32.Update(sum, crc32.IEEETable, rest[:errLen])
		if sum != binary.LittleEndian.Uint32(rest[errLen:]) {
			return nil, fmt.Errorf("%w: terminal frame CRC mismatch", errCorrupt)
		}
		if msg := string(rest[:errLen]); msg != "" {
			return nil, workerError{msg: msg}
		}
		if total != fr.rows {
			return nil, fmt.Errorf("%w: terminal row count %d != %d received", errCorrupt, total, fr.rows)
		}
		return nil, io.EOF
	}

	head2 := make([]byte, 4)
	if _, err := io.ReadFull(fr.br, head2); err != nil {
		return nil, fmt.Errorf("%w: truncated frame: %v", errCorrupt, err)
	}
	ncols := binary.LittleEndian.Uint32(head2)
	if nrows == 0 || uint64(nrows)*uint64(ncols) > maxFrameCells {
		return nil, fmt.Errorf("%w: implausible frame shape %d x %d", errCorrupt, nrows, ncols)
	}
	payload := make([]byte, nrows*ncols*4+4)
	if _, err := io.ReadFull(fr.br, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated frame payload: %v", errCorrupt, err)
	}
	body, crc := payload[:len(payload)-4], payload[len(payload)-4:]
	sum := crc32.ChecksumIEEE(head)
	sum = crc32.Update(sum, crc32.IEEETable, head2)
	sum = crc32.Update(sum, crc32.IEEETable, body)
	if sum != binary.LittleEndian.Uint32(crc) {
		return nil, fmt.Errorf("%w: frame %d CRC mismatch", errCorrupt, seq)
	}

	fr.seq++
	fr.rows += nrows
	cells := make([]uint32, nrows*ncols)
	for i := range cells {
		cells[i] = binary.LittleEndian.Uint32(body[i*4:])
	}
	rows := make([][]uint32, nrows)
	for i := range rows {
		rows[i] = cells[uint32(i)*ncols : uint32(i+1)*ncols : uint32(i+1)*ncols]
	}
	return rows, nil
}

// workerError is a failure the worker itself reported through a terminal
// frame: the transport is fine, the sub-query failed. Not retryable (the
// worker already did its own execution; a deterministic error would repeat)
// unless it looks like a shard-local cancellation, which the drain maps
// through the usual retry path.
type workerError struct{ msg string }

func (e workerError) Error() string { return "cluster: worker reported: " + e.msg }
