package cluster

// frame_test.go proves the wire codec's failure-detection claims byte by
// byte: round-trips through ShardStreamWriter and frameReader, then every
// integrity violation the framing exists to catch — CRC corruption,
// sequence gaps, truncation mid-frame and mid-stream, a lying terminal row
// count — surfaces as the retryable errCorrupt, while a worker-reported
// execution failure surfaces as the permanent workerError.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"testing"
)

// genRows builds n deterministic ncols-wide rows.
func genRows(n, ncols int) [][]uint32 {
	rows := make([][]uint32, n)
	for i := range rows {
		row := make([]uint32, ncols)
		for j := range row {
			row[j] = uint32(i*ncols + j)
		}
		rows[i] = row
	}
	return rows
}

// encodeStream writes a full stream (header, rows, terminal) and returns
// its bytes.
func encodeStream(t *testing.T, vars []string, epoch uint64, sh int, rows [][]uint32, errMsg string) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw := NewShardStreamWriter(&buf, nil)
	if err := sw.Header(vars, epoch, sh); err != nil {
		t.Fatalf("Header: %v", err)
	}
	for _, r := range rows {
		if err := sw.Row(r); err != nil {
			t.Fatalf("Row: %v", err)
		}
	}
	if err := sw.Finish(errMsg); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return buf.Bytes()
}

// decodeStream reads a stream to completion, returning the header, the rows,
// and the error that ended the batch loop (io.EOF for a clean stream).
func decodeStream(b []byte) (streamHeader, [][]uint32, error) {
	fr := newFrameReader(bytes.NewReader(b))
	hdr, err := fr.readHeader()
	if err != nil {
		return hdr, nil, err
	}
	var rows [][]uint32
	for {
		batch, err := fr.readBatch()
		if err != nil {
			return hdr, rows, err
		}
		rows = append(rows, batch...)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	// 600 rows of 3 columns spans multiple frames (frameRows=256).
	want := genRows(600, 3)
	b := encodeStream(t, []string{"x", "y", "z"}, 7, 2, want, "")

	hdr, got, err := decodeStream(b)
	if err != io.EOF {
		t.Fatalf("stream ended with %v, want io.EOF", err)
	}
	if hdr.Epoch != 7 || hdr.Shard != 2 || len(hdr.Vars) != 3 || hdr.Vars[0] != "x" {
		t.Fatalf("header = %+v", hdr)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("row %d col %d = %d, want %d", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestFrameEmptyStream(t *testing.T) {
	b := encodeStream(t, nil, 1, 0, nil, "")
	hdr, rows, err := decodeStream(b)
	if err != io.EOF || len(rows) != 0 {
		t.Fatalf("empty stream: rows=%d err=%v, want 0/io.EOF", len(rows), err)
	}
	if hdr.Vars == nil {
		t.Fatal("nil vars must encode as an empty JSON array, not null")
	}
}

func TestFrameWriterRowCount(t *testing.T) {
	var buf bytes.Buffer
	sw := NewShardStreamWriter(&buf, nil)
	if err := sw.Header([]string{"a"}, 1, 0); err != nil {
		t.Fatal(err)
	}
	for i, r := range genRows(300, 1) {
		sw.Row(r)
		if got := sw.Rows(); got != i+1 {
			t.Fatalf("Rows() after %d rows = %d (flushed and buffered rows must both count)", i+1, got)
		}
	}
}

func TestFrameWorkerError(t *testing.T) {
	// Rows shipped before the failure still arrive, then the terminal frame
	// carries the worker's error.
	want := genRows(10, 2)
	b := encodeStream(t, []string{"a", "b"}, 1, 0, want, "join exploded")
	_, rows, err := decodeStream(b)
	if len(rows) != 10 {
		t.Fatalf("decoded %d rows before the worker error, want 10", len(rows))
	}
	var we workerError
	if !errors.As(err, &we) || we.msg != "join exploded" {
		t.Fatalf("err = %v, want workerError(join exploded)", err)
	}
	if isRetryable(err) {
		t.Fatal("a worker-reported execution failure must not be retryable")
	}
}

// frameOffsets returns the byte offset where frames begin (after the header
// line) and the individual frame byte slices.
func frameOffsets(t *testing.T, b []byte) (int, [][]byte) {
	t.Helper()
	nl := bytes.IndexByte(b, '\n')
	if nl < 0 {
		t.Fatal("no header line")
	}
	frames, rest := splitFrames(b[nl+1:])
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after the terminal frame", len(rest))
	}
	return nl + 1, frames
}

func TestFrameCorruptCRC(t *testing.T) {
	b := encodeStream(t, []string{"a"}, 1, 0, genRows(300, 1), "")
	_, frames := frameOffsets(t, b)
	if len(frames) != 3 { // 256 + 44 data frames + terminal
		t.Fatalf("layout drifted: %d frames, want 3", len(frames))
	}
	// Flip one payload byte in the second data frame: the first batch must
	// still decode, the corrupt one must fail retryably.
	bad := append([]byte(nil), b...)
	off := bytes.IndexByte(b, '\n') + 1 + len(frames[0])
	bad[off+12] ^= 0xFF
	_, rows, err := decodeStream(bad)
	if len(rows) != 256 {
		t.Fatalf("decoded %d rows before the corrupt frame, want 256", len(rows))
	}
	if !errors.Is(err, errCorrupt) {
		t.Fatalf("corrupt frame error = %v, want errCorrupt", err)
	}
	// Retryability is applied where the stream is consumed: the frame cursor
	// wraps errCorrupt in the transportError class the drain retries on.
	if !isRetryable(&transportError{worker: "w", err: err}) {
		t.Fatal("cursor-wrapped corrupt error is not retryable")
	}
}

func TestFrameSequenceGap(t *testing.T) {
	b := encodeStream(t, []string{"a"}, 1, 0, genRows(600, 1), "")
	head, frames := frameOffsets(t, b)
	// Splice out the first data frame: the reader sees seq 1 where it
	// expects 0.
	var spliced bytes.Buffer
	spliced.Write(b[:head])
	for _, fr := range frames[1:] {
		spliced.Write(fr)
	}
	_, rows, err := decodeStream(spliced.Bytes())
	if len(rows) != 0 {
		t.Fatalf("decoded %d rows from a gapped stream, want 0", len(rows))
	}
	if !errors.Is(err, errCorrupt) {
		t.Fatalf("sequence gap error = %v, want errCorrupt", err)
	}
}

func TestFrameTruncation(t *testing.T) {
	full := encodeStream(t, []string{"a", "b"}, 1, 0, genRows(300, 2), "")
	head, frames := frameOffsets(t, full)
	cases := []struct {
		name string
		cut  int // bytes kept
		rows int // rows that must still decode first
	}{
		{"mid first frame", head + len(frames[0])/2, 0},
		{"between frames (no terminal)", head + len(frames[0]), 256},
		{"mid terminal frame", len(full) - 2, 300},
	}
	for _, c := range cases {
		_, rows, err := decodeStream(full[:c.cut])
		if len(rows) != c.rows {
			t.Errorf("%s: decoded %d rows, want %d", c.name, len(rows), c.rows)
		}
		if !errors.Is(err, errCorrupt) {
			t.Errorf("%s: err = %v, want errCorrupt (a cut stream must never look like clean EOF)", c.name, err)
		}
	}
}

func TestFrameTerminalRowCountMismatch(t *testing.T) {
	// A terminal frame echoing the wrong total is indistinguishable from a
	// dropped batch: the reader must refuse it.
	var buf bytes.Buffer
	fw := newFrameWriter(&buf)
	if err := fw.writeHeader([]string{"a"}, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := fw.writeBatch(genRows(10, 1), 1); err != nil {
		t.Fatal(err)
	}
	fw.rows = 9 // lie about the total
	if err := fw.writeTerminal(""); err != nil {
		t.Fatal(err)
	}
	_, _, err := decodeStream(buf.Bytes())
	if !errors.Is(err, errCorrupt) {
		t.Fatalf("row-count mismatch error = %v, want errCorrupt", err)
	}
}

func TestFrameImplausibleShape(t *testing.T) {
	// A corrupt length prefix must be refused before the reader allocates.
	var buf bytes.Buffer
	fw := newFrameWriter(&buf)
	if err := fw.writeHeader([]string{"a"}, 1, 0); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 12)
	binary.LittleEndian.PutUint32(raw[0:4], 0)      // seq
	binary.LittleEndian.PutUint32(raw[4:8], 1<<24)  // nrows
	binary.LittleEndian.PutUint32(raw[8:12], 1<<10) // ncols: 2^34 cells
	fw.w.Write(raw)
	fw.w.Flush()
	_, _, err := decodeStream(buf.Bytes())
	if !errors.Is(err, errCorrupt) {
		t.Fatalf("implausible shape error = %v, want errCorrupt", err)
	}
	if !bytes.Contains([]byte(err.Error()), []byte("implausible")) {
		t.Fatalf("err = %v, want the shape guard (not a CRC miss)", err)
	}
}

func TestSplitFramesRoundTrip(t *testing.T) {
	// The fault injector's frame splitter must agree with the writer's
	// layout for every stream shape it will mangle.
	for _, n := range []int{0, 1, 255, 256, 257, 600} {
		b := encodeStream(t, []string{"a", "b"}, 1, 0, genRows(n, 2), "")
		nl := bytes.IndexByte(b, '\n')
		frames, rest := splitFrames(b[nl+1:])
		if len(rest) != 0 {
			t.Fatalf("n=%d: %d unparsed trailing bytes", n, len(rest))
		}
		wantFrames := (n+frameRows-1)/frameRows + 1 // data frames + terminal
		if n == 0 {
			wantFrames = 1
		}
		if len(frames) != wantFrames {
			t.Fatalf("n=%d: split into %d frames, want %d", n, len(frames), wantFrames)
		}
		total := 0
		for _, fr := range frames {
			total += len(fr)
		}
		if total != len(b)-(nl+1) {
			t.Fatalf("n=%d: frames cover %d bytes of %d", n, total, len(b)-(nl+1))
		}
	}
}

func TestFrameErrorMessages(t *testing.T) {
	// The typed errors carry their context: useful when a chaos log shows
	// one retry and someone asks why.
	b := encodeStream(t, []string{"a"}, 1, 0, genRows(1, 1), "")
	_, _, err := decodeStream(b[:len(b)-1])
	if err == nil {
		t.Fatal("truncated stream decoded cleanly")
	}
	msg := fmt.Sprint(err)
	if !bytes.Contains([]byte(msg), []byte("corrupt")) && !bytes.Contains([]byte(msg), []byte("truncated")) {
		t.Fatalf("error message %q names neither corruption nor truncation", msg)
	}
}
