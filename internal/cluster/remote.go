package cluster

// remote.go is the per-attempt transport: one attempt = one POST
// /shard/query to one worker, a first-byte watchdog, the frame-decoded
// stream behind an engine.Cursor, and the hedged race that runs a backup
// attempt against a replica candidate when the primary's first byte is
// slow. Errors are typed: transportError is the retryable class (connect
// failures, 5xx, watchdog timeouts, corrupt/truncated frames); everything
// else is permanent for the drain that sees it.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// transportError marks a failure worth retrying on another attempt or
// another worker: the sub-query itself was never refuted, only this
// particular stream.
type transportError struct {
	worker string
	err    error
}

func (e *transportError) Error() string {
	return fmt.Sprintf("cluster: worker %s: %v", e.worker, e.err)
}
func (e *transportError) Unwrap() error { return e.err }

// isRetryable classifies an attempt or stream error.
func isRetryable(err error) bool {
	var te *transportError
	return errors.As(err, &te)
}

// errAttemptTimeout marks the first-byte watchdog firing.
var errAttemptTimeout = errors.New("attempt timed out before first byte")

// frameCursor adapts one worker stream to the cursor shape the drain
// consumes. Close is idempotent: it cancels the attempt context (aborting
// the in-flight request server-side) and closes the body.
type frameCursor struct {
	vars   []string
	epoch  uint64
	body   io.ReadCloser
	fr     *frameReader
	cancel context.CancelFunc
	worker *worker

	batch  [][]uint32
	idx    int
	closed bool
}

// next returns the stream's next row; io.EOF on a clean terminal frame,
// a transportError on anything retryable.
func (fc *frameCursor) next() ([]uint32, error) {
	for {
		if fc.idx < len(fc.batch) {
			row := fc.batch[fc.idx]
			fc.idx++
			return row, nil
		}
		batch, err := fc.fr.readBatch()
		if err == io.EOF {
			return nil, io.EOF
		}
		if err != nil {
			if errors.Is(err, errCorrupt) {
				return nil, &transportError{worker: fc.worker.addr, err: err}
			}
			return nil, err
		}
		fc.batch, fc.idx = batch, 0
	}
}

func (fc *frameCursor) close() {
	if fc.closed {
		return
	}
	fc.closed = true
	fc.cancel()
	fc.body.Close()
}

// rows returns how many rows the stream has surfaced (buffered rows
// excluded — the resume skip must count only consumer-visible rows).
// Tracked by the drain, not here.

// openStream performs one attempt: POST the sub-query, await the header
// under the first-byte watchdog, and return the live cursor. skip is the
// resume offset (kept rows the worker must not re-send).
func (c *Coordinator) openStream(ctx context.Context, w *worker, req drainReq, target int, skip int) (*frameCursor, error) {
	actx, cancel := context.WithCancel(ctx)
	var timedOut atomic.Bool
	var watchdog *time.Timer
	if c.policy.AttemptTimeout > 0 {
		watchdog = time.AfterFunc(c.policy.AttemptTimeout, func() {
			timedOut.Store(true)
			cancel()
		})
	}
	fail := func(err error) (*frameCursor, error) {
		if watchdog != nil {
			watchdog.Stop()
		}
		cancel()
		if timedOut.Load() {
			return nil, &transportError{worker: w.addr, err: errAttemptTimeout}
		}
		if ctx.Err() != nil {
			// The query (or the hedging race) was cancelled: not a worker
			// fault, not retryable.
			return nil, ctx.Err()
		}
		return nil, err
	}

	q := url.Values{}
	q.Set("shard", strconv.Itoa(target))
	q.Set("shards", strconv.Itoa(req.numShards))
	q.Set("engine", req.engine)
	q.Set("owner", strconv.Itoa(req.owner))
	q.Set("root", strconv.Itoa(req.rootIdx))
	q.Set("skip", strconv.Itoa(skip))
	q.Set("cap", strconv.Itoa(req.cap))
	httpReq, err := http.NewRequestWithContext(actx, http.MethodPost,
		w.addr+"/shard/query?"+q.Encode(), strings.NewReader(req.text))
	if err != nil {
		return fail(err)
	}
	httpReq.Header.Set("Content-Type", "application/sparql-query")

	resp, err := c.client.Do(httpReq)
	if err != nil {
		return fail(&transportError{worker: w.addr, err: err})
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		msg := fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
		if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
			return fail(&transportError{worker: w.addr, err: msg})
		}
		return fail(fmt.Errorf("cluster: worker %s: %w", w.addr, msg))
	}

	fr := newFrameReader(resp.Body)
	hdr, err := fr.readHeader()
	if err != nil {
		resp.Body.Close()
		return fail(&transportError{worker: w.addr, err: err})
	}
	if watchdog != nil {
		watchdog.Stop()
	}
	return &frameCursor{
		vars:   hdr.Vars,
		epoch:  hdr.Epoch,
		body:   resp.Body,
		fr:     fr,
		cancel: cancel,
		worker: w,
	}, nil
}

// attemptResult is one racer's outcome in the hedged attempt.
type attemptResult struct {
	cur    *frameCursor
	err    error
	w      *worker
	hedged bool
}

// attempt opens the stream on primary, hedging against backup (when
// non-nil) if the first byte is slower than the p99-derived delay. The
// winning cursor is returned with the loser cancelled; breaker outcomes
// are reported for every racer that genuinely failed (cancellation of the
// loser is not a failure).
func (c *Coordinator) attempt(ctx context.Context, primary, backup *worker, req drainReq, target, skip int) (*frameCursor, error) {
	results := make(chan attemptResult, 2)
	launch := func(w *worker, hedged bool) {
		c.met.attempts.Add(1)
		w.drains.Add(1)
		go func() {
			sp := obs.SpanFrom(ctx).Child("remote_attempt")
			sp.SetAttr("worker", w.addr)
			sp.SetAttr("shard", target)
			if skip > 0 {
				sp.SetAttr("resume_skip", skip)
			}
			if hedged {
				sp.SetAttr("hedged", true)
			}
			start := time.Now()
			cur, err := c.openStream(ctx, w, req, target, skip)
			if err == nil {
				c.firstRow.ObserveDuration(time.Since(start))
				w.br.Report(true)
				w.noteErr(nil)
			} else if ctx.Err() == nil || isRetryable(err) {
				// A real worker failure (not the query being cancelled).
				w.br.Report(false)
				w.noteErr(err)
				sp.SetAttr("error", err.Error())
			}
			sp.End()
			results <- attemptResult{cur: cur, err: err, w: w, hedged: hedged}
		}()
	}

	launch(primary, false)
	outstanding := 1
	var hedgeCh <-chan time.Time
	if backup != nil {
		if delay := c.hedgeDelay(); delay > 0 {
			t := time.NewTimer(delay)
			defer t.Stop()
			hedgeCh = t.C
		}
	}

	// reap closes over any still-outstanding racer: once a winner is chosen
	// (or the query dies) the laggard must be collected so its stream and
	// goroutine never leak.
	reap := func(n int) {
		if n <= 0 {
			return
		}
		go func() {
			for i := 0; i < n; i++ {
				if r := <-results; r.cur != nil {
					r.cur.close()
				}
			}
		}()
	}

	var firstErr error
	for {
		select {
		case r := <-results:
			outstanding--
			if r.err == nil {
				if r.hedged {
					c.met.hedgeWins.Add(1)
				}
				reap(outstanding)
				return r.cur, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if outstanding == 0 {
				return nil, firstErr
			}
		case <-hedgeCh:
			hedgeCh = nil
			c.met.hedges.Add(1)
			launch(backup, true)
			outstanding++
		case <-ctx.Done():
			reap(outstanding)
			return nil, ctx.Err()
		}
	}
}
