package cluster

// stream.go is the exported worker-side half of the wire protocol: the
// server's /shard/query handler answers a coordinator drain by pushing its
// rows through a ShardStreamWriter, which packs them into the CRC'd,
// sequence-numbered frames frameReader verifies on the other end. The
// writer flushes every frame (and calls the caller's flush hook, normally
// http.Flusher.Flush), so the coordinator's first-byte watchdog and
// resume offsets see rows as they are produced, not when the stream ends.

import "io"

// ShardStreamWriter encodes one /shard/query response stream.
type ShardStreamWriter struct {
	fw    *frameWriter
	flush func()
	ncols int
	nrows int
	cells []uint32
	views [][]uint32
}

// NewShardStreamWriter wraps w; flush (optional) runs after every flushed
// frame so chunked HTTP responses push rows to the client promptly.
func NewShardStreamWriter(w io.Writer, flush func()) *ShardStreamWriter {
	return &ShardStreamWriter{fw: newFrameWriter(w), flush: flush}
}

// Header emits the JSON header line (vars, the worker's store epoch, the
// shard being drained) and flushes it, clearing the coordinator's
// first-byte watchdog before the first row is computed.
func (s *ShardStreamWriter) Header(vars []string, epoch uint64, shard int) error {
	if err := s.fw.writeHeader(vars, epoch, shard); err != nil {
		return err
	}
	if err := s.fw.w.Flush(); err != nil {
		return err
	}
	s.doFlush()
	return nil
}

// Row buffers one result row (copied), emitting a frame every frameRows.
func (s *ShardStreamWriter) Row(row []uint32) error {
	if s.nrows == 0 {
		s.ncols = len(row)
	}
	s.cells = append(s.cells, row...)
	s.nrows++
	if s.nrows >= frameRows {
		return s.emit()
	}
	return nil
}

// Rows reports how many rows have been written so far.
func (s *ShardStreamWriter) Rows() int { return int(s.fw.rows) + s.nrows }

func (s *ShardStreamWriter) emit() error {
	if s.nrows == 0 {
		return nil
	}
	s.views = s.views[:0]
	for i := 0; i < s.nrows; i++ {
		s.views = append(s.views, s.cells[i*s.ncols:(i+1)*s.ncols])
	}
	err := s.fw.writeBatch(s.views, s.ncols)
	s.nrows = 0
	s.cells = s.cells[:0]
	if err != nil {
		return err
	}
	s.doFlush()
	return nil
}

// Finish flushes any buffered rows and emits the terminal frame: errMsg ==
// "" is a clean end of stream, anything else reports a worker-side
// execution failure (after the rows already shipped, which remain valid
// for the coordinator's resume accounting).
func (s *ShardStreamWriter) Finish(errMsg string) error {
	if err := s.emit(); err != nil {
		return err
	}
	if err := s.fw.writeTerminal(errMsg); err != nil {
		return err
	}
	s.doFlush()
	return nil
}

func (s *ShardStreamWriter) doFlush() {
	if s.flush != nil {
		s.flush()
	}
}
