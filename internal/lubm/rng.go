package lubm

// rng is a splitmix64 pseudo-random generator. We implement our own rather
// than use math/rand so that generated datasets are bit-for-bit reproducible
// across Go releases — the experiment records in EXPERIMENTS.md depend on
// stable cardinalities per (scale, seed).
type rng struct {
	state uint64
}

func newRNG(seed int64) *rng {
	return &rng{state: uint64(seed)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D}
}

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a uniform int in [0, n). n must be positive.
func (r *rng) intn(n int) int {
	if n <= 0 {
		panic("lubm: intn with non-positive bound")
	}
	return int(r.next() % uint64(n))
}

// between returns a uniform int in [lo, hi] inclusive.
func (r *rng) between(lo, hi int) int {
	return lo + r.intn(hi-lo+1)
}

// sample returns k distinct values from [0, n). If k >= n it returns all of
// [0, n). The result is in ascending order.
func (r *rng) sample(n, k int) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	chosen := make(map[int]bool, k)
	for len(chosen) < k {
		chosen[r.intn(n)] = true
	}
	out := make([]int, 0, k)
	for i := 0; i < n; i++ {
		if chosen[i] {
			out = append(out, i)
		}
	}
	return out
}
