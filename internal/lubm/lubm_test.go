package lubm

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

func genIndex(t *testing.T, cfg Config) (triples []rdf.Triple, byPred map[string][]rdf.Triple, types map[string]map[string]bool) {
	t.Helper()
	triples = Generate(cfg)
	byPred = map[string][]rdf.Triple{}
	types = map[string]map[string]bool{} // class -> set of subjects
	for _, tr := range triples {
		byPred[tr.P.Value] = append(byPred[tr.P.Value], tr)
		if tr.P.Value == RDFTypeIRI {
			cls := tr.O.Value
			if types[cls] == nil {
				types[cls] = map[string]bool{}
			}
			types[cls][tr.S.Value] = true
		}
	}
	return triples, byPred, types
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Universities: 1, Seed: 42})
	b := Generate(Config{Universities: 1, Seed: 42})
	if len(a) != len(b) {
		t.Fatalf("non-deterministic triple counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("triple %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := Generate(Config{Universities: 1, Seed: 43})
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("different seeds produced identical data")
		}
	}
}

func TestGenerateZeroScale(t *testing.T) {
	if got := Generate(Config{Universities: 0}); got != nil {
		t.Errorf("zero scale should produce no triples, got %d", len(got))
	}
}

func TestScaleIsRoughlyLinear(t *testing.T) {
	n1 := len(Generate(Config{Universities: 1}))
	n3 := len(Generate(Config{Universities: 3}))
	if n3 < 2*n1 || n3 > 4*n1 {
		t.Errorf("scale 3 produced %d triples vs %d at scale 1; expected ~3x", n3, n1)
	}
	// One university should be on the order of 100k triples (the paper's
	// 133M / 1000 universities). Allow a generous band.
	if n1 < 40000 || n1 > 300000 {
		t.Errorf("scale 1 = %d triples; expected order of 100k", n1)
	}
}

func TestProfileRangesRespected(t *testing.T) {
	_, byPred, types := genIndex(t, Config{Universities: 2})
	p := DefaultProfile

	// Departments per university.
	deptsByUniv := map[string]int{}
	for _, tr := range byPred[PropSubOrganizationOf] {
		if types[ClassDepartment][tr.S.Value] {
			deptsByUniv[tr.O.Value]++
		}
	}
	if len(deptsByUniv) != 2 {
		t.Fatalf("expected 2 universities with departments, got %d", len(deptsByUniv))
	}
	for univ, n := range deptsByUniv {
		if n < p.DepartmentsPerUniversity[0] || n > p.DepartmentsPerUniversity[1] {
			t.Errorf("%s has %d departments, outside %v", univ, n, p.DepartmentsPerUniversity)
		}
	}

	// Faculty counts per department, via worksFor.
	facultyByDept := map[string]map[string]int{} // dept -> class -> count
	classOf := func(s string) string {
		for _, cls := range []string{ClassFullProfessor, ClassAssociateProfessor, ClassAssistantProfessor, ClassLecturer} {
			if types[cls][s] {
				return cls
			}
		}
		return ""
	}
	for _, tr := range byPred[PropWorksFor] {
		cls := classOf(tr.S.Value)
		if cls == "" {
			t.Fatalf("worksFor subject %s has no faculty class", tr.S.Value)
		}
		if facultyByDept[tr.O.Value] == nil {
			facultyByDept[tr.O.Value] = map[string]int{}
		}
		facultyByDept[tr.O.Value][cls]++
	}
	ranges := map[string][2]int{
		ClassFullProfessor:      p.FullProfessors,
		ClassAssociateProfessor: p.AssociateProfessors,
		ClassAssistantProfessor: p.AssistantProfessors,
		ClassLecturer:           p.Lecturers,
	}
	for dept, counts := range facultyByDept {
		for cls, rng := range ranges {
			if c := counts[cls]; c < rng[0] || c > rng[1] {
				t.Errorf("%s: %d of %s, outside %v", dept, c, cls, rng)
			}
		}
	}
}

func TestEveryStudentHasProfileTriples(t *testing.T) {
	_, byPred, types := genIndex(t, Config{Universities: 1})
	names := map[string]bool{}
	for _, tr := range byPred[PropName] {
		names[tr.S.Value] = true
	}
	emails := map[string]bool{}
	for _, tr := range byPred[PropEmailAddress] {
		emails[tr.S.Value] = true
	}
	members := map[string]bool{}
	for _, tr := range byPred[PropMemberOf] {
		members[tr.S.Value] = true
	}
	for student := range types[ClassUndergraduateStudent] {
		if !names[student] || !emails[student] || !members[student] {
			t.Fatalf("undergraduate %s missing profile triples", student)
		}
	}
	for student := range types[ClassGraduateStudent] {
		if !names[student] || !emails[student] || !members[student] {
			t.Fatalf("graduate %s missing profile triples", student)
		}
	}
}

func TestGradStudentsHaveAdvisorAndDegree(t *testing.T) {
	_, byPred, types := genIndex(t, Config{Universities: 1})
	advised := map[string]bool{}
	for _, tr := range byPred[PropAdvisor] {
		advised[tr.S.Value] = true
	}
	degree := map[string]bool{}
	for _, tr := range byPred[PropUndergraduateDegreeFrom] {
		degree[tr.S.Value] = true
	}
	for s := range types[ClassGraduateStudent] {
		if !advised[s] {
			t.Fatalf("graduate student %s has no advisor", s)
		}
		if !degree[s] {
			t.Fatalf("graduate student %s has no undergraduateDegreeFrom", s)
		}
	}
	// Roughly 1/5 of undergrads have advisors.
	undergradAdvised := 0
	for s := range types[ClassUndergraduateStudent] {
		if advised[s] {
			undergradAdvised++
		}
	}
	total := len(types[ClassUndergraduateStudent])
	if undergradAdvised == 0 || undergradAdvised > total/2 {
		t.Errorf("%d/%d undergrads advised; expected ~1/5", undergradAdvised, total)
	}
}

func TestResearchGroupsNeverSubOrgOfUniversity(t *testing.T) {
	// This is the structural fact that makes LUBM query 11 return zero
	// rows without inference.
	_, byPred, types := genIndex(t, Config{Universities: 1})
	if len(types[ClassResearchGroup]) == 0 {
		t.Fatal("no research groups generated")
	}
	for _, tr := range byPred[PropSubOrganizationOf] {
		if types[ClassResearchGroup][tr.S.Value] && types[ClassUniversity][tr.O.Value] {
			t.Fatalf("research group %s is subOrganizationOf a university", tr.S.Value)
		}
	}
}

func TestTakesCourseTargetsExistingCourses(t *testing.T) {
	_, byPred, types := genIndex(t, Config{Universities: 1})
	for _, tr := range byPred[PropTakesCourse] {
		o := tr.O.Value
		if !types[ClassCourse][o] && !types[ClassGraduateCourse][o] {
			t.Fatalf("takesCourse target %s is not a course", o)
		}
		// Undergrads take undergrad courses; grads take graduate courses.
		if types[ClassUndergraduateStudent][tr.S.Value] && !types[ClassCourse][o] {
			t.Fatalf("undergraduate %s takes a graduate course", tr.S.Value)
		}
		if types[ClassGraduateStudent][tr.S.Value] && !types[ClassGraduateCourse][o] {
			t.Fatalf("graduate %s takes an undergraduate course", tr.S.Value)
		}
	}
}

func TestQueryConstantsExistInData(t *testing.T) {
	triples, _, _ := genIndex(t, Config{Universities: 1})
	iris := map[string]bool{}
	for _, tr := range triples {
		iris[tr.S.Value] = true
		if tr.O.IsIRI() {
			iris[tr.O.Value] = true
		}
	}
	for _, must := range []string{
		"http://www.University0.edu",
		"http://www.Department0.University0.edu",
		"http://www.Department0.University0.edu/GraduateCourse0",
		"http://www.Department0.University0.edu/AssistantProfessor0",
		"http://www.Department0.University0.edu/AssociateProfessor0",
	} {
		if !iris[must] {
			t.Errorf("query constant %s not present in generated data", must)
		}
	}
}

func TestQueryTextAdaptation(t *testing.T) {
	q13Small := Query(13, 3)
	if !strings.Contains(q13Small, "University2.edu") {
		t.Errorf("query 13 at scale 3 should reference University2: %s", q13Small)
	}
	q13Big := Query(13, 1000)
	if !strings.Contains(q13Big, "University567.edu") {
		t.Errorf("query 13 at scale 1000 should keep University567")
	}
	if !strings.Contains(Query(1, 1), "PREFIX ub:") {
		t.Errorf("queries should carry prefixes")
	}
	qs := Queries(2)
	if len(qs) != len(QueryNumbers) {
		t.Errorf("Queries returned %d entries", len(qs))
	}
	defer func() {
		if recover() == nil {
			t.Errorf("unknown query number should panic")
		}
	}()
	Query(6, 1)
}

func TestRNGSample(t *testing.T) {
	r := newRNG(1)
	got := r.sample(5, 10)
	if len(got) != 5 {
		t.Errorf("sample(5,10) = %v", got)
	}
	got = r.sample(100, 3)
	if len(got) != 3 {
		t.Fatalf("sample(100,3) = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Errorf("sample not ascending: %v", got)
		}
	}
}

func TestRNGBetweenBounds(t *testing.T) {
	r := newRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.between(3, 9)
		if v < 3 || v > 9 {
			t.Fatalf("between(3,9) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Errorf("intn(0) should panic")
		}
	}()
	r.intn(0)
}

func BenchmarkGenerateOneUniversity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := 0
		GenerateTo(Config{Universities: 1}, func(rdf.Triple) { n++ })
		if n == 0 {
			b.Fatal("no triples")
		}
	}
}
