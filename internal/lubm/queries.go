package lubm

import "strings"

// QueryNumbers lists the LUBM queries the paper benchmarks (queries 6 and 10
// are omitted because, with the inference step removed, they coincide with
// other queries — §IV-A1).
var QueryNumbers = []int{1, 2, 3, 4, 5, 7, 8, 9, 11, 12, 13, 14}

// CyclicQueryNumbers lists the two queries containing a triangle pattern,
// where worst-case optimal joins have an asymptotic advantage (§IV-B).
var CyclicQueryNumbers = []int{2, 9}

const queryPrefixes = `PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX ub: <http://www.lehigh.edu/~zhp2/2004/0401/univ-bench.owl#>
`

// rawQueries holds the SPARQL text from Appendix B of the paper. Query 13's
// constant <http://www.University567.edu> assumes the paper's scale of 1000
// universities; Query rewrites it for smaller scales (see Query).
var rawQueries = map[int]string{
	1: `SELECT ?X WHERE {
  ?X rdf:type ub:GraduateStudent .
  ?X ub:takesCourse <http://www.Department0.University0.edu/GraduateCourse0> .
}`,
	2: `SELECT ?X ?Y ?Z WHERE {
  ?X rdf:type ub:GraduateStudent .
  ?Y rdf:type ub:University .
  ?Z rdf:type ub:Department .
  ?X ub:memberOf ?Z .
  ?Z ub:subOrganizationOf ?Y .
  ?X ub:undergraduateDegreeFrom ?Y .
}`,
	3: `SELECT ?X WHERE {
  ?X rdf:type ub:Publication .
  ?X ub:publicationAuthor <http://www.Department0.University0.edu/AssistantProfessor0> .
}`,
	4: `SELECT ?X ?Y1 ?Y2 ?Y3 WHERE {
  ?X rdf:type ub:AssociateProfessor .
  ?X ub:worksFor <http://www.Department0.University0.edu> .
  ?X ub:name ?Y1 .
  ?X ub:emailAddress ?Y2 .
  ?X ub:telephone ?Y3 .
}`,
	5: `SELECT ?X WHERE {
  ?X rdf:type ub:UndergraduateStudent .
  ?X ub:memberOf <http://www.Department0.University0.edu> .
}`,
	7: `SELECT ?X ?Y WHERE {
  ?X rdf:type ub:UndergraduateStudent .
  ?Y rdf:type ub:Course .
  ?X ub:takesCourse ?Y .
  <http://www.Department0.University0.edu/AssociateProfessor0> ub:teacherOf ?Y .
}`,
	8: `SELECT ?X ?Y ?Z WHERE {
  ?X rdf:type ub:UndergraduateStudent .
  ?Y rdf:type ub:Department .
  ?X ub:memberOf ?Y .
  ?Y ub:subOrganizationOf <http://www.University0.edu> .
  ?X ub:emailAddress ?Z .
}`,
	9: `SELECT ?X ?Y ?Z WHERE {
  ?X rdf:type ub:UndergraduateStudent .
  ?Y rdf:type ub:Course .
  ?Z rdf:type ub:AssistantProfessor .
  ?X ub:advisor ?Z .
  ?Z ub:teacherOf ?Y .
  ?X ub:takesCourse ?Y .
}`,
	11: `SELECT ?X WHERE {
  ?X rdf:type ub:ResearchGroup .
  ?X ub:subOrganizationOf <http://www.University0.edu> .
}`,
	12: `SELECT ?X ?Y WHERE {
  ?X rdf:type ub:FullProfessor .
  ?Y rdf:type ub:Department .
  ?X ub:worksFor ?Y .
  ?Y ub:subOrganizationOf <http://www.University0.edu> .
}`,
	13: `SELECT ?X WHERE {
  ?X rdf:type ub:GraduateStudent .
  ?X ub:undergraduateDegreeFrom <http://www.University567.edu> .
}`,
	14: `SELECT ?X WHERE {
  ?X rdf:type ub:UndergraduateStudent .
}`,
}

// Query returns the SPARQL text for LUBM query n, adapted to a dataset with
// the given number of universities: query 13's University567 constant is
// clamped to the largest existing university index so the query stays
// non-degenerate at small scales. It panics for unknown query numbers.
func Query(n, universities int) string {
	q, ok := rawQueries[n]
	if !ok {
		panic("lubm: unknown query number")
	}
	if n == 13 && universities <= 567 {
		idx := universities - 1
		if idx < 0 {
			idx = 0
		}
		q = strings.ReplaceAll(q, "University567", "University"+itoa(idx))
	}
	return queryPrefixes + q
}

// Queries returns all benchmark queries keyed by query number, adapted to
// the given scale.
func Queries(universities int) map[int]string {
	out := make(map[int]string, len(QueryNumbers))
	for _, n := range QueryNumbers {
		out[n] = Query(n, universities)
	}
	return out
}
