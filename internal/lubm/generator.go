package lubm

import (
	"repro/internal/rdf"
)

// Config parameterizes the generator.
type Config struct {
	// Universities is the LUBM scale factor (the paper used 1000, i.e.
	// roughly 133 million triples; one university is roughly 100–130
	// thousand triples).
	Universities int
	// Seed selects the deterministic random stream. The default seed 0 is
	// valid and used throughout the test suite.
	Seed int64
}

// Profile holds the UBA 1.7 cardinality ranges. Exported so tests can assert
// the generated data stays inside the specified ranges.
type Profile struct {
	DepartmentsPerUniversity [2]int
	FullProfessors           [2]int
	AssociateProfessors      [2]int
	AssistantProfessors      [2]int
	Lecturers                [2]int
	UndergradPerFacultyRatio [2]int
	GradPerFacultyRatio      [2]int
	CoursesPerFaculty        [2]int
	GradCoursesPerFaculty    [2]int
	UndergradCoursesTaken    [2]int
	GradCoursesTaken         [2]int
	ResearchGroups           [2]int
	PublicationsFull         [2]int
	PublicationsAssociate    [2]int
	PublicationsAssistant    [2]int
	PublicationsLecturer     [2]int
	// UndergradAdvisorFraction: one in this many undergraduates has an
	// advisor (the spec says 1/5).
	UndergradAdvisorFraction int
}

// DefaultProfile is the UBA 1.7 specification profile.
var DefaultProfile = Profile{
	DepartmentsPerUniversity: [2]int{15, 25},
	FullProfessors:           [2]int{7, 10},
	AssociateProfessors:      [2]int{10, 14},
	AssistantProfessors:      [2]int{8, 11},
	Lecturers:                [2]int{5, 7},
	UndergradPerFacultyRatio: [2]int{8, 14},
	GradPerFacultyRatio:      [2]int{3, 4},
	CoursesPerFaculty:        [2]int{1, 2},
	GradCoursesPerFaculty:    [2]int{1, 2},
	UndergradCoursesTaken:    [2]int{2, 4},
	GradCoursesTaken:         [2]int{1, 3},
	ResearchGroups:           [2]int{10, 20},
	PublicationsFull:         [2]int{15, 20},
	PublicationsAssociate:    [2]int{10, 18},
	PublicationsAssistant:    [2]int{5, 10},
	PublicationsLecturer:     [2]int{0, 5},
	UndergradAdvisorFraction: 5,
}

// Generate materializes the whole dataset. For large scales prefer
// GenerateTo, which streams.
func Generate(cfg Config) []rdf.Triple {
	var out []rdf.Triple
	GenerateTo(cfg, func(t rdf.Triple) {
		out = append(out, t)
	})
	return out
}

// GenerateTo produces the dataset for cfg, invoking emit for every triple in
// a deterministic order.
func GenerateTo(cfg Config, emit func(rdf.Triple)) {
	if cfg.Universities <= 0 {
		return
	}
	g := &generator{
		cfg:     cfg,
		profile: DefaultProfile,
		rng:     newRNG(cfg.Seed),
		emit:    emit,
	}
	g.run()
}

type generator struct {
	cfg     Config
	profile Profile
	rng     *rng
	emit    func(rdf.Triple)
}

func (g *generator) triple(s, p string, o rdf.Term) {
	g.emit(rdf.Triple{S: rdf.NewIRI(s), P: rdf.NewIRI(p), O: o})
}

func (g *generator) link(s, p, o string)   { g.triple(s, p, rdf.NewIRI(o)) }
func (g *generator) typed(s, class string) { g.link(s, RDFTypeIRI, class) }

func (g *generator) run() {
	for u := 0; u < g.cfg.Universities; u++ {
		g.university(u)
	}
}

func (g *generator) university(u int) {
	univ := UniversityIRI(u)
	g.typed(univ, ClassUniversity)
	nDepts := g.rng.between(g.profile.DepartmentsPerUniversity[0], g.profile.DepartmentsPerUniversity[1])
	for d := 0; d < nDepts; d++ {
		g.department(u, d, univ)
	}
}

// facultyMember captures what later department phases need about a faculty
// member: the IRI plus the courses they teach.
type facultyMember struct {
	iri         string
	courses     []int // undergrad course indexes taught
	gradCourses []int // graduate course indexes taught
}

func (g *generator) department(u, d int, univ string) {
	p := g.profile
	dept := DepartmentIRI(u, d)
	g.typed(dept, ClassDepartment)
	g.link(dept, PropSubOrganizationOf, univ)

	// Faculty, allocating the department's course index spaces as we go.
	var faculty []facultyMember
	nextCourse, nextGradCourse := 0, 0
	ranks := []struct {
		class string
		kind  string
		count int
		pubs  [2]int
	}{
		{ClassFullProfessor, "FullProfessor", g.rng.between(p.FullProfessors[0], p.FullProfessors[1]), p.PublicationsFull},
		{ClassAssociateProfessor, "AssociateProfessor", g.rng.between(p.AssociateProfessors[0], p.AssociateProfessors[1]), p.PublicationsAssociate},
		{ClassAssistantProfessor, "AssistantProfessor", g.rng.between(p.AssistantProfessors[0], p.AssistantProfessors[1]), p.PublicationsAssistant},
		{ClassLecturer, "Lecturer", g.rng.between(p.Lecturers[0], p.Lecturers[1]), p.PublicationsLecturer},
	}
	for _, rank := range ranks {
		for i := 0; i < rank.count; i++ {
			fm := facultyMember{iri: EntityIRI(u, d, rank.kind, i)}
			g.typed(fm.iri, rank.class)
			g.link(fm.iri, PropWorksFor, dept)
			g.person(fm.iri, rank.kind, i, u, d)
			g.link(fm.iri, PropUndergraduateDegreeFrom, UniversityIRI(g.rng.intn(g.cfg.Universities)))
			g.link(fm.iri, PropMastersDegreeFrom, UniversityIRI(g.rng.intn(g.cfg.Universities)))
			g.link(fm.iri, PropDoctoralDegreeFrom, UniversityIRI(g.rng.intn(g.cfg.Universities)))
			// Courses taught.
			nc := g.rng.between(p.CoursesPerFaculty[0], p.CoursesPerFaculty[1])
			for c := 0; c < nc; c++ {
				course := EntityIRI(u, d, "Course", nextCourse)
				fm.courses = append(fm.courses, nextCourse)
				nextCourse++
				g.typed(course, ClassCourse)
				g.link(fm.iri, PropTeacherOf, course)
			}
			ngc := g.rng.between(p.GradCoursesPerFaculty[0], p.GradCoursesPerFaculty[1])
			for c := 0; c < ngc; c++ {
				course := EntityIRI(u, d, "GraduateCourse", nextGradCourse)
				fm.gradCourses = append(fm.gradCourses, nextGradCourse)
				nextGradCourse++
				g.typed(course, ClassGraduateCourse)
				g.link(fm.iri, PropTeacherOf, course)
			}
			// Publications.
			np := g.rng.between(rank.pubs[0], rank.pubs[1])
			for j := 0; j < np; j++ {
				pub := PublicationIRI(fm.iri, j)
				g.typed(pub, ClassPublication)
				g.link(pub, PropPublicationAuthor, fm.iri)
			}
			faculty = append(faculty, fm)
		}
	}
	// The department head is the first full professor.
	g.link(faculty[0].iri, PropHeadOf, dept)

	// Students.
	nUndergrad := len(faculty) * g.rng.between(p.UndergradPerFacultyRatio[0], p.UndergradPerFacultyRatio[1])
	nGrad := len(faculty) * g.rng.between(p.GradPerFacultyRatio[0], p.GradPerFacultyRatio[1])

	for i := 0; i < nUndergrad; i++ {
		st := EntityIRI(u, d, "UndergraduateStudent", i)
		g.typed(st, ClassUndergraduateStudent)
		g.link(st, PropMemberOf, dept)
		g.person(st, "UndergraduateStudent", i, u, d)
		taken := g.rng.between(p.UndergradCoursesTaken[0], p.UndergradCoursesTaken[1])
		for _, c := range g.rng.sample(nextCourse, taken) {
			g.link(st, PropTakesCourse, EntityIRI(u, d, "Course", c))
		}
		if g.rng.intn(p.UndergradAdvisorFraction) == 0 {
			g.link(st, PropAdvisor, faculty[g.rng.intn(len(faculty))].iri)
		}
	}
	for i := 0; i < nGrad; i++ {
		st := EntityIRI(u, d, "GraduateStudent", i)
		g.typed(st, ClassGraduateStudent)
		g.link(st, PropMemberOf, dept)
		g.person(st, "GraduateStudent", i, u, d)
		g.link(st, PropUndergraduateDegreeFrom, UniversityIRI(g.rng.intn(g.cfg.Universities)))
		taken := g.rng.between(p.GradCoursesTaken[0], p.GradCoursesTaken[1])
		for _, c := range g.rng.sample(nextGradCourse, taken) {
			g.link(st, PropTakesCourse, EntityIRI(u, d, "GraduateCourse", c))
		}
		g.link(st, PropAdvisor, faculty[g.rng.intn(len(faculty))].iri)
	}

	// Research groups.
	nGroups := g.rng.between(p.ResearchGroups[0], p.ResearchGroups[1])
	for i := 0; i < nGroups; i++ {
		grp := EntityIRI(u, d, "ResearchGroup", i)
		g.typed(grp, ClassResearchGroup)
		// Note: research groups are subOrganizationOf their *department*,
		// never directly of a university — this is why LUBM query 11
		// returns zero rows when the inference step is removed (§IV-A1).
		g.link(grp, PropSubOrganizationOf, dept)
	}
}

// person emits the name / emailAddress / telephone triples every person
// carries. Names repeat across departments exactly as in UBA (the name of
// FullProfessor3 is the literal "FullProfessor3" everywhere).
func (g *generator) person(iri, kind string, i, u, d int) {
	name := kind + itoa(i)
	g.triple(iri, PropName, rdf.NewLiteral(name))
	g.triple(iri, PropEmailAddress, rdf.NewLiteral(name+"@Department"+itoa(d)+".University"+itoa(u)+".edu"))
	g.triple(iri, PropTelephone, rdf.NewLiteral("xxx-xxx-xxxx"))
}
