// Package lubm is a from-scratch, deterministic reimplementation of the
// LUBM (Lehigh University Benchmark) synthetic data generator and its query
// workload, standing in for the Java UBA 1.7 generator the paper used
// (§IV-A1). The ontology profile — entity classes, cardinality ranges, and
// link structure — follows the published UBA specification so the fourteen
// benchmark queries keep their selectivity character; the absolute RNG draws
// differ from the Java implementation, so absolute result cardinalities at a
// given scale differ from the paper's (they are deterministic per seed and
// recorded in EXPERIMENTS.md).
package lubm

// Namespace holds the univ-bench ontology namespace prefix used by every
// class and property IRI.
const Namespace = "http://www.lehigh.edu/~zhp2/2004/0401/univ-bench.owl#"

// RDFTypeIRI is the rdf:type predicate.
const RDFTypeIRI = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

// Ontology classes (only the ones the benchmark data and queries use).
const (
	ClassUniversity           = Namespace + "University"
	ClassDepartment           = Namespace + "Department"
	ClassFullProfessor        = Namespace + "FullProfessor"
	ClassAssociateProfessor   = Namespace + "AssociateProfessor"
	ClassAssistantProfessor   = Namespace + "AssistantProfessor"
	ClassLecturer             = Namespace + "Lecturer"
	ClassUndergraduateStudent = Namespace + "UndergraduateStudent"
	ClassGraduateStudent      = Namespace + "GraduateStudent"
	ClassCourse               = Namespace + "Course"
	ClassGraduateCourse       = Namespace + "GraduateCourse"
	ClassResearchGroup        = Namespace + "ResearchGroup"
	ClassPublication          = Namespace + "Publication"
)

// Ontology properties.
const (
	PropWorksFor                = Namespace + "worksFor"
	PropMemberOf                = Namespace + "memberOf"
	PropSubOrganizationOf       = Namespace + "subOrganizationOf"
	PropUndergraduateDegreeFrom = Namespace + "undergraduateDegreeFrom"
	PropMastersDegreeFrom       = Namespace + "mastersDegreeFrom"
	PropDoctoralDegreeFrom      = Namespace + "doctoralDegreeFrom"
	PropTakesCourse             = Namespace + "takesCourse"
	PropTeacherOf               = Namespace + "teacherOf"
	PropAdvisor                 = Namespace + "advisor"
	PropPublicationAuthor       = Namespace + "publicationAuthor"
	PropHeadOf                  = Namespace + "headOf"
	PropName                    = Namespace + "name"
	PropEmailAddress            = Namespace + "emailAddress"
	PropTelephone               = Namespace + "telephone"
)

// UniversityIRI returns the IRI of university u, matching the UBA naming
// scheme the benchmark queries reference (e.g. <http://www.University0.edu>).
func UniversityIRI(u int) string {
	return "http://www." + "University" + itoa(u) + ".edu"
}

// DepartmentIRI returns the IRI of department d of university u.
func DepartmentIRI(u, d int) string {
	return "http://www.Department" + itoa(d) + ".University" + itoa(u) + ".edu"
}

// EntityIRI returns the IRI of a department-scoped entity such as
// FullProfessor3 or GraduateCourse0.
func EntityIRI(u, d int, kind string, i int) string {
	return DepartmentIRI(u, d) + "/" + kind + itoa(i)
}

// PublicationIRI returns the IRI of publication j authored by the given
// department-scoped author.
func PublicationIRI(authorIRI string, j int) string {
	return authorIRI + "/Publication" + itoa(j)
}

// itoa is a minimal non-negative integer formatter; the generator calls it
// in tight loops and fmt.Sprintf would dominate the profile.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
