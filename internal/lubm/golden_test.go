package lubm_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lubm"
	"repro/internal/query"
	"repro/internal/store"
)

// TestGoldenCardinalitiesScale1 locks the deterministic result
// cardinalities for LUBM(1) seed 0, which EXPERIMENTS.md records. If the
// generator's random stream or profile changes, this fails and the recorded
// experiments must be regenerated.
func TestGoldenCardinalitiesScale1(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	triples := lubm.Generate(lubm.Config{Universities: 1, Seed: 0})
	const wantTriples = 94620
	if len(triples) != wantTriples {
		t.Fatalf("LUBM(1) triple count = %d, want %d (EXPERIMENTS.md is stale)", len(triples), wantTriples)
	}
	st := store.FromTriples(triples)
	eng := core.New(st, core.AllOptimizations)
	want := map[int]int{
		1:  5,
		2:  2063,
		3:  9,
		4:  11,
		5:  462,
		7:  25,
		8:  6622,
		9:  25,
		11: 0,
		12: 139,
		13: 2063,
		14: 6622,
	}
	for _, qn := range lubm.QueryNumbers {
		q := query.MustParseSPARQL(lubm.Query(qn, 1))
		res, err := engine.Execute(eng, q)
		if err != nil {
			t.Fatalf("Q%d: %v", qn, err)
		}
		if res.Len() != want[qn] {
			t.Errorf("Q%d cardinality = %d, want %d", qn, res.Len(), want[qn])
		}
	}
}
