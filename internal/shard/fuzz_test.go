package shard

import (
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/engine/naive"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/store"
)

// FuzzShardRouting drives the partitioning invariants with random triples
// and a random shard count:
//
//   - every triple lands in exactly one shard as owned (the subject's),
//   - per-shard owned counts sum to the parent's triple count (no loss, no
//     double-ownership),
//   - replicas exist only on the object's shard, so the union of shards
//     deduplicates back to the parent exactly, and
//   - replicated triples dedup in the merge: a sharded query whose plan
//     touches replicated data (an object-rooted group and a merge-layer
//     join) returns the same multiset as the unsharded engine.
func FuzzShardRouting(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6}, uint8(2))
	f.Add([]byte{0, 0, 0, 1, 1, 1, 2, 2, 2}, uint8(7))
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}, uint8(1))
	f.Add([]byte{}, uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, nRaw uint8) {
		n := int(nRaw)%8 + 1
		if len(data) > 192 {
			data = data[:192] // bound the dataset so the naive oracle stays cheap
		}
		b := store.NewBuilder()
		node := func(v byte) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://f/n%d", v%32)) }
		pred := func(v byte) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://f/p%d", v%4)) }
		for i := 0; i+2 < len(data); i += 3 {
			b.Add(rdf.Triple{S: node(data[i]), P: pred(data[i+1]), O: node(data[i+2])})
		}
		st := b.Build()
		p, err := Partition(st, n)
		if err != nil {
			t.Fatal(err)
		}

		ownedSum := 0
		for _, s := range p.Stats() {
			ownedSum += s.Owned
		}
		if ownedSum != st.NumTriples() {
			t.Fatalf("owned sum %d != %d triples (loss or double-ownership)", ownedSum, st.NumTriples())
		}

		parent := make(map[store.Triple]bool, st.NumTriples())
		for _, tr := range st.Triples() {
			parent[tr] = true
		}
		union := map[store.Triple]bool{}
		for i := 0; i < n; i++ {
			seenHere := map[store.Triple]bool{}
			for _, tr := range p.Shard(i).Triples() {
				if !parent[tr] {
					t.Fatalf("shard %d holds foreign triple %v", i, tr)
				}
				if seenHere[tr] {
					t.Fatalf("shard %d holds duplicate triple %v", i, tr)
				}
				seenHere[tr] = true
				if own, rep := ShardOf(tr.S, n), ShardOf(tr.O, n); i != own && i != rep {
					t.Fatalf("shard %d holds %v, owned by %d replicated to %d", i, tr, own, rep)
				}
				union[tr] = true
			}
		}
		if len(union) != st.NumTriples() {
			t.Fatalf("shard union %d triples != parent %d", len(union), st.NumTriples())
		}

		if st.NumTriples() == 0 {
			return
		}
		// Replicated data dedups in the merge: compare sharded vs unsharded
		// on a replication-heavy shape (object-subject chain: single
		// object-rooted group) and a join shape (two chains).
		sh, err := NewEngine(p, "naive", func(s *store.Store) (engine.Engine, error) {
			return naive.New(s), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		base := naive.New(st)
		for _, text := range []string{
			`SELECT ?a ?b ?c WHERE { ?a ?p ?b . ?b ?q ?c }`,
			`SELECT ?a ?c WHERE { ?a ?p ?b . ?b ?q ?c . ?c ?r ?d }`,
			`SELECT DISTINCT ?b WHERE { ?a ?p ?b . ?b ?q ?c }`,
		} {
			q := query.MustParseSPARQL(text)
			want, err := engine.Collect(base.Open(q, engine.ExecOpts{}))
			if err != nil {
				t.Fatal(err)
			}
			got, err := engine.Collect(sh.Open(q, engine.ExecOpts{}))
			if err != nil {
				t.Fatal(err)
			}
			if got.Canonical() != want.Canonical() {
				t.Fatalf("n=%d %s: sharded %d rows != unsharded %d rows", n, text, got.Len(), want.Len())
			}
		}
	})
}
