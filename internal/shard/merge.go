package shard

// merge.go is the gather side of scatter-gather: one drain goroutine per
// surviving shard hands row batches through a single fan-in channel to the
// merge cursor, which iterates batches in place. Transport is
// batch-granular end to end — the ownership filter, root strip, and drain
// cap are applied inside the drain as it batches, and the consumer never
// crosses a channel per row. (An earlier shape piped the fan-in channel
// through engine.NewGenerator, re-batching every row through a second
// goroutine and channel; at LUBM scale that double hop was the single
// largest term in the 18× sharded q2 regression.)

import (
	"context"
	"fmt"
	"io"
	"sync"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/query"
)

// drainSpan starts one per-shard drain span under the trace span carried by
// ctx, nil (and free) when the query is untraced. inline marks the
// single-survivor fast path, where the drain runs on the caller's goroutine
// instead of a fan-in worker.
func drainSpan(ctx context.Context, shard int, inline bool) *obs.Span {
	sp := obs.SpanFrom(ctx).Child("shard_drain")
	sp.SetAttr("shard", shard)
	if inline {
		sp.SetAttr("inline", true)
	}
	return sp
}

// gatherBatch is how many rows a shard drain accumulates before handing
// them to the merge cursor — per-row channel sends were measured as too
// expensive at this seam once before (see genBatchRows in
// internal/engine/cursor.go); the merge fan-in amortizes the same way.
const gatherBatch = 64

// gatherFlushMin is the smallest partial batch a drain flushes
// opportunistically (non-blocking, at power-of-two sizes), keeping
// first-row latency low for trickling shards without degenerating into
// per-row sends.
const gatherFlushMin = 8

// gatherBuf is the fan-in channel depth in batches: enough to keep shards
// busy while the consumer works through a batch, small enough that an
// abandoned merge strands O(shards · gatherBatch) rows.
const gatherBuf = 8

// openFunc opens one shard's sub-query cursor under the merge's context —
// the fault-injection seam the chaos suite scripts against.
type openFunc func(context.Context) (engine.Cursor, error)

// gather is the Engine's scatter entry point: it opens sub on every
// surviving shard and returns the merged union cursor.
func (e *Engine) gather(ctx context.Context, vars []string, sub *query.BGP, shards []int, keep func(shard int, row []uint32) bool, strip bool, perShardCap int, rootIdx int, workers int) engine.Cursor {
	opens := make([]openFunc, len(shards))
	for i, sh := range shards {
		sh := sh
		opens[i] = func(sctx context.Context) (engine.Cursor, error) {
			return e.openShard(sctx, sh, sub, e.drainHints(sh, sub, rootIdx, perShardCap, workers))
		}
	}
	return gather(ctx, vars, shards, opens, keep, strip, perShardCap, e.part)
}

// gather builds the scatter-gather merge cursor: it opens one cursor per
// entry of opens concurrently (each under a shared child context), drains
// them into a fan-in channel, and streams the union in arrival order.
// shards[i] is the shard ID behind opens[i] (nil means opens[i] is shard
// i — the unpruned scatter and the chaos tests). keep, when non-nil, is
// the ownership filter (applied before strip and before the per-shard
// cap); strip drops the appended root column; perShardCap bounds the rows
// any one shard contributes (0 = unbounded). A failing shard cancels its
// siblings and surfaces its error; closing the merge cursor cancels every
// shard.
func gather(ctx context.Context, vars []string, shards []int, opens []openFunc, keep func(shard int, row []uint32) bool, strip bool, perShardCap int, part *Partitioned) engine.Cursor {
	if ctx == nil {
		ctx = context.Background()
	}
	sctx, scancel := context.WithCancel(ctx)
	m := &mergeCursor{
		vars:   vars,
		ctx:    ctx,
		cancel: scancel,
		rows:   make(chan [][]uint32, gatherBuf),
		errs:   make(chan error, len(opens)),
	}
	var wg sync.WaitGroup
	for i := range opens {
		sh := i
		if shards != nil {
			sh = shards[i]
		}
		wg.Add(1)
		go func(sh int, open openFunc) {
			defer wg.Done()
			span := drainSpan(ctx, sh, false)
			// A panic in a shard cursor must not kill the process: it runs on
			// a drain goroutine where no handler-level recovery can reach it.
			// Convert it to a shard error so the merge fails the one query.
			err := func() (err error) {
				defer func() {
					if rec := recover(); rec != nil {
						err = fmt.Errorf("shard %d: drain panicked: %v", sh, rec)
					}
				}()
				return drainShard(obs.WithSpan(sctx, span), sh, open, keep, strip, perShardCap, part, m.rows, span)
			}()
			if err != nil {
				span.SetAttr("error", err.Error())
				m.errs <- err
				scancel() // fail fast: stop sibling shards
			}
			span.End()
		}(sh, opens[i])
	}
	go func() {
		wg.Wait()
		close(m.rows)
	}()
	return m
}

// mergeCursor is the consumer end of the fan-in channel: it pulls batches
// and yields their rows in place. It owns the scatter's child context —
// Close cancels every drain and unblocks parked senders by draining the
// channel to close.
type mergeCursor struct {
	vars   []string
	ctx    context.Context // parent: attributes cancellation when no shard reported
	cancel context.CancelFunc
	rows   chan [][]uint32
	errs   chan error

	batch [][]uint32
	idx   int
	done  bool
	err   error
}

func (m *mergeCursor) Vars() []string { return m.vars }

func (m *mergeCursor) Next() ([]uint32, error) {
	for {
		if m.idx < len(m.batch) {
			row := m.batch[m.idx]
			m.idx++
			return row, nil
		}
		if m.done {
			return nil, m.err
		}
		b, ok := <-m.rows
		if !ok {
			m.done = true
			select {
			case err := <-m.errs:
				m.err = err
			default:
				// A drainer parked on a send can exit on cancellation
				// without seeing its cursor's context error; report the
				// cause here.
				m.err = m.ctx.Err()
			}
			if m.err == nil {
				m.err = io.EOF
			}
			return nil, m.err
		}
		m.batch, m.idx = b, 0
	}
}

// Truncated is always false for the bare merge: caps are applied by the
// Limit wrapper above it.
func (m *mergeCursor) Truncated() bool { return false }

func (m *mergeCursor) Close() error {
	if m.done && m.err != nil {
		m.cancel()
		return nil
	}
	m.cancel()
	// Drain so drains parked on a full channel observe the cancel and exit;
	// the channel closes once every drain has.
	for range m.rows {
	}
	m.done = true
	if m.err == nil {
		m.err = io.EOF
	}
	m.batch, m.idx = nil, 0
	return nil
}

// drainShard opens and drains one shard's cursor into the fan-in channel
// in batches, applying the ownership filter, root stripping, and the
// per-shard cap. Rows accumulated before a cursor error are still flushed
// (rows before an error stand, mirroring the generator's contract). span,
// when non-nil, collects the drain's row/batch counters; all observation is
// batch-granular, so the per-row loop stays free of atomics and locks.
func drainShard(ctx context.Context, shard int, open openFunc, keep func(int, []uint32) bool, strip bool, perShardCap int, part *Partitioned, out chan<- [][]uint32, span *obs.Span) error {
	cur, err := open(ctx)
	if err != nil {
		return err
	}
	defer cur.Close()
	delivered := 0
	var batch [][]uint32
	// flush hands the batch over; non-blocking when block is false (the
	// batch is kept on a full channel). Returns false once ctx is done —
	// cancelled by a sibling's failure, the merge closing, or the caller's
	// context; the merge cursor reports the cause.
	flush := func(block bool) bool {
		if len(batch) == 0 {
			return true
		}
		if block {
			select {
			case out <- batch:
			case <-ctx.Done():
				return false
			}
		} else {
			select {
			case out <- batch:
			default:
				return true // channel busy: keep accumulating
			}
		}
		if part != nil {
			part.delivered[shard].Add(int64(len(batch)))
			part.batchRows.Observe(float64(len(batch)))
		}
		span.AddBatch(len(batch))
		delivered += len(batch)
		batch = nil
		return true
	}
	for {
		row, err := cur.Next()
		if err == io.EOF {
			flush(true)
			return nil
		}
		if err != nil {
			flush(true)
			return err
		}
		if keep != nil && !keep(shard, row) {
			continue
		}
		if strip {
			row = row[:len(row)-1]
		}
		batch = append(batch, row)
		if perShardCap > 0 && delivered+len(batch) >= perShardCap {
			flush(true)
			return nil
		}
		if n := len(batch); n >= gatherBatch {
			if !flush(true) {
				return nil
			}
		} else if n >= gatherFlushMin && n&(n-1) == 0 {
			flush(false)
		}
	}
}

// filterCursor is the single-survivor fast path: when statistics pruned the
// scatter down to one shard there is nothing to merge, so the ownership
// filter, root strip, drain cap, and delivered counter are applied inline
// on the caller's goroutine — no channel, no drain goroutine.
type filterCursor struct {
	inner engine.Cursor
	vars  []string
	shard int
	keep  func(int, []uint32) bool
	strip bool
	cap   int
	part  *Partitioned
	span  *obs.Span

	delivered int
	done      bool
	err       error
}

func newFilter(inner engine.Cursor, vars []string, shard int, keep func(int, []uint32) bool, strip bool, perShardCap int, part *Partitioned, span *obs.Span) engine.Cursor {
	return &filterCursor{
		inner: inner,
		vars:  vars,
		shard: shard,
		keep:  keep,
		strip: strip,
		cap:   perShardCap,
		part:  part,
		span:  span,
	}
}

func (f *filterCursor) Vars() []string { return f.vars }

func (f *filterCursor) Next() ([]uint32, error) {
	if f.done {
		return nil, f.err
	}
	if f.cap > 0 && f.delivered >= f.cap {
		return f.finish(io.EOF)
	}
	for {
		row, err := f.inner.Next()
		if err != nil {
			return f.finish(err)
		}
		if f.keep != nil && !f.keep(f.shard, row) {
			continue
		}
		if f.strip {
			row = row[:len(row)-1]
		}
		f.delivered++
		if f.part != nil {
			f.part.delivered[f.shard].Add(1)
		}
		f.span.AddRows(1)
		return row, nil
	}
}

func (f *filterCursor) finish(err error) ([]uint32, error) {
	f.done = true
	f.err = err
	f.span.End()
	return nil, err
}

func (f *filterCursor) Truncated() bool { return f.inner.Truncated() }
func (f *filterCursor) Close() error    { return f.inner.Close() }
