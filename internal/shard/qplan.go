package shard

// qplan.go is the scatter planner: it turns a BGP into a cached, reusable
// scatter plan — the root-group decomposition, per-group statistics-pruned
// shard target lists, cardinality estimates for the merge join's probe-side
// choice, and the interned per-shard sub-queries. Interning matters beyond
// avoiding re-decomposition: downstream engines cache their own compiled
// plans per *query.BGP pointer (core's GHD plans, the auto router's class
// decisions), so handing every shard the same sub-query pointer on every
// execution turns a sharded cache hit into "skip all per-shard planning",
// not just "skip parse+normalize". The cache lives on the Engine, which the
// live layer rebuilds on every epoch swap — plans can never outlive the
// statistics they were pruned against.

import (
	"sync"

	"repro/internal/plan"
	"repro/internal/query"
)

// planCacheCap bounds the scatter-plan cache. When full, one arbitrary
// entry is evicted (map iteration order), so an adversarial query stream
// degrades to one recompute per new query instead of periodically dumping
// the whole working set.
const planCacheCap = 1 << 12

// queryPlan is one compiled scatter plan. Exactly one of single/join is set
// unless empty is.
type queryPlan struct {
	// empty marks queries statically proven empty: a fully-constant pattern
	// absent from the data, a constant missing from the dictionary, or a
	// group whose every shard was pruned.
	empty  bool
	single *singlePlan
	join   *joinPlan
	// explain is the plan's serializable summary, assembled at compile time
	// (see explain.go); execution never reads it.
	explain *ExplainPlan
}

// singlePlan executes a query fully covered by one root group.
type singlePlan struct {
	// sub is the interned sub-query every target shard runs: the caller's
	// projection with the root variable appended when it was not selected
	// (strip), DISTINCT preserved.
	sub *query.BGP
	// shards lists the scatter targets that survived pruning; for a
	// constant root it is exactly the owner shard.
	shards []int
	// rootIdx locates the root variable in sub.Select (variable roots).
	rootIdx int
	strip   bool
	// constant marks a constant root: the owner shard alone answers the
	// query, no ownership filter or merge is needed, and caps pass through.
	constant bool
}

// groupPlan is one root-covered group inside a multi-group (join) plan.
type groupPlan struct {
	// sub is the interned full-projection sub-query (all group variables,
	// no DISTINCT — group solutions are sets at full projection).
	sub  *query.BGP
	vars []string
	// rootIdx locates the root in vars; -1 marks a constant root.
	rootIdx int
	// shards lists the scatter targets that survived pruning; pruned lists
	// the targets statistics skipped (the EXPLAIN surface and the
	// pruned-per-query histogram read it).
	shards []int
	pruned []int
	// est is the group's estimated solution cardinality summed over its
	// target shards (plan.ProfileQuery) — the probe-side choice signal.
	est float64
}

// joinPlan executes a query needing several root groups: groups[0] streams
// as the probe side, the rest are materialized into hash tables.
type joinPlan struct {
	groups []groupPlan
	// builds[i] wires groups[i+1] into the left-deep join.
	builds []buildWire
	// selIx maps the accumulated row to the caller's projection.
	selIx []int

	// Materialized build sides, memoized after the first execution: the
	// partition is immutable and the live layer rebuilds the whole Engine
	// (and with it this plan cache) on every epoch swap, so a build group's
	// solution set can never change under a cached plan. Re-executions of a
	// repeated query then pay only the probe stream and the expansion —
	// the broadcast side ships once, exactly like a distributed engine
	// caching its broadcast relations at the coordinator. Guarded by mu;
	// tabs stays nil until a build completes successfully (a cancelled or
	// failed build is not cached) or the tables exceed buildCacheMaxRows.
	mu   sync.Mutex
	tabs []buildTable
}

// buildTable is one materialized build group keyed by its join columns —
// uint32-keyed when the key is a single column (no per-row string
// allocation on either side of the join), string-encoded otherwise.
type buildTable struct {
	byID  map[uint32][][]uint32
	byKey map[string][][]uint32
}

// newBuildTable picks the keying for a build group by its join-key arity.
func newBuildTable(keyCols int) buildTable {
	if keyCols == 1 {
		return buildTable{byID: map[uint32][][]uint32{}}
	}
	return buildTable{byKey: map[string][][]uint32{}}
}

// add indexes one group row under its join-key columns.
func (t buildTable) add(keyIx []int, row []uint32) {
	if t.byID != nil {
		t.byID[row[keyIx[0]]] = append(t.byID[row[keyIx[0]]], row)
		return
	}
	k := rowKey(row, keyIx)
	t.byKey[k] = append(t.byKey[k], row)
}

// lookup returns the group rows matching the accumulated row's key columns.
func (t buildTable) lookup(accRow []uint32, accKey []int) [][]uint32 {
	if t.byID != nil {
		return t.byID[accRow[accKey[0]]]
	}
	return t.byKey[rowKey(accRow, accKey)]
}

// buildCacheMaxRows bounds the total rows memoized per join plan: build
// groups are usually the leftover single-pattern groups (bounded by one
// predicate's relation), but a root-uncoverable query over a huge predicate
// should pay per execution rather than pin the table in the plan cache.
const buildCacheMaxRows = 1 << 20

// cachedTabs returns the memoized build tables, or nil when not built yet.
func (jp *joinPlan) cachedTabs() []buildTable {
	jp.mu.Lock()
	defer jp.mu.Unlock()
	return jp.tabs
}

// storeTabs memoizes successfully built tables unless they exceed the row
// bound. Concurrent executions may race to build; the first stored wins.
func (jp *joinPlan) storeTabs(tabs []buildTable) {
	rows := 0
	for _, t := range tabs {
		for _, rs := range t.byID {
			rows += len(rs)
		}
		for _, rs := range t.byKey {
			rows += len(rs)
		}
	}
	if rows > buildCacheMaxRows {
		return
	}
	jp.mu.Lock()
	if jp.tabs == nil {
		jp.tabs = tabs
	}
	jp.mu.Unlock()
}

// buildWire is the column wiring of one build group: which accumulated
// columns form the join key, which group columns match it, and which group
// columns extend the accumulated row.
type buildWire struct {
	accKey   []int
	rowKeyIx []int
	appendIx []int
}

// planFor resolves q's scatter plan, compiling and caching on miss. Cached
// plans depend only on the immutable partition and the query, so they are
// valid for the Engine's lifetime (one epoch).
func (e *Engine) planFor(q *query.BGP) *queryPlan {
	e.planMu.Lock()
	qp, ok := e.qplans[q]
	e.planMu.Unlock()
	if ok {
		e.part.planReuseHits.Add(1)
		return qp
	}
	qp = e.compile(q)
	e.planMu.Lock()
	if len(e.qplans) >= planCacheCap {
		for k := range e.qplans {
			delete(e.qplans, k)
			break
		}
	}
	e.qplans[q] = qp
	e.planMu.Unlock()
	return qp
}

// compile builds the scatter plan: verify constant patterns, decompose into
// root groups, prune and estimate each group's shard targets, and pick the
// probe side for multi-group joins.
func (e *Engine) compile(q *query.BGP) *queryPlan {
	n := len(e.engs)
	exp := &ExplainPlan{Shards: n}
	rest, ok := e.splitConstant(q.Patterns)
	if !ok {
		exp.Kind = "empty"
		e.part.prunedPerQuery.Observe(0)
		return &queryPlan{empty: true, explain: exp}
	}
	groups := decompose(rest)
	e.part.plansCompiled.Add(1)
	e.part.groupsPlanned.Add(int64(len(groups)))

	totalPruned := 0
	record := func() {
		e.part.shardsPruned.Add(int64(totalPruned))
		e.part.prunedPerQuery.Observe(float64(totalPruned))
	}
	gps := make([]groupPlan, len(groups))
	for i, g := range groups {
		gp, ok := e.planGroup(g)
		totalPruned += len(gp.pruned)
		exp.Groups = append(exp.Groups, ExplainGroup{
			Root:     nodeKey(g.root),
			Patterns: len(g.pats),
			Shards:   gp.shards,
			Pruned:   gp.pruned,
			EstRows:  gp.est,
		})
		if !ok {
			record()
			exp.Kind = "empty"
			return &queryPlan{empty: true, explain: exp}
		}
		gps[i] = gp
	}
	record()
	if len(groups) == 1 {
		exp.Kind = "single"
		return &queryPlan{single: planSingle(q, groups[0], gps[0]), explain: exp}
	}
	jp, probe := planJoin(q, gps)
	exp.Kind = "join"
	exp.Probe = probe
	return &queryPlan{join: jp, explain: exp}
}

// planGroup resolves one group's shard targets and cardinality estimate;
// gp.pruned lists the scatter targets it skipped (the caller folds the
// counts into the partition-wide counters, once per compiled plan).
// ok == false means the group (and therefore the whole query) is provably
// empty. Pruning leans on plan.ProfileQuery over each shard's store: it
// consults the per-predicate statistics (a predicate with no triples on a
// shard prunes it outright) and answers constant-bound patterns exactly via
// one root-trie lookup — the same adaptive-layout tries the trie-based
// engines descend at execution time, so for them the lookup warms an index
// the shard would build anyway. Pruning is sound because a shard's
// sub-query is evaluated entirely within that shard's store: if any single
// pattern has zero matches there, the shard contributes nothing — and a
// solution rooted at a node owned by a pruned shard cannot exist at all,
// since every one of its triples is co-located on the owner by
// construction (owned by subject, replicated by object).
func (e *Engine) planGroup(g group) (groupPlan, bool) {
	n := len(e.engs)
	gp := groupPlan{vars: g.vars(), rootIdx: -1}
	gp.sub = &query.BGP{Select: gp.vars, Patterns: g.pats}

	if !g.root.IsVar {
		id, ok := e.part.dict.Lookup(g.root.Term)
		if !ok {
			return gp, false
		}
		own := ShardOf(id, n)
		prof, err := plan.ProfileQuery(gp.sub, e.part.shards[own])
		if err == nil {
			if prof.Empty && !e.noPrune {
				// Every solution of a constant-rooted group lives on the
				// owner shard; an empty owner means an empty group.
				gp.pruned = []int{own}
				return gp, false
			}
			gp.est = prof.EstOut
		}
		gp.shards = []int{own}
		return gp, true
	}

	for i, v := range gp.vars {
		if v == g.root.Var {
			gp.rootIdx = i
			break
		}
	}
	for sh := 0; sh < n; sh++ {
		st := e.part.shards[sh]
		cannotMatch := st.NumTriples() == 0
		if prof, err := plan.ProfileQuery(gp.sub, st); err == nil {
			cannotMatch = cannotMatch || prof.Empty
			gp.est += prof.EstOut
		}
		if cannotMatch && !e.noPrune {
			gp.pruned = append(gp.pruned, sh)
			continue
		}
		gp.shards = append(gp.shards, sh)
	}
	return gp, len(gp.shards) > 0
}

// planSingle shapes the single-group execution: the caller's projection
// (root appended when missing, so the merge layer can apply the ownership
// filter) and the group's pruned shard targets.
func planSingle(q *query.BGP, g group, gp groupPlan) *singlePlan {
	if !g.root.IsVar {
		return &singlePlan{
			sub:      &query.BGP{Select: q.Select, Distinct: q.Distinct, Patterns: g.pats},
			shards:   gp.shards,
			constant: true,
		}
	}
	sel := q.Select
	rootIdx := -1
	for i, v := range sel {
		if v == g.root.Var {
			rootIdx = i
			break
		}
	}
	strip := false
	if rootIdx < 0 {
		// Appending a variable to a non-DISTINCT projection never changes
		// the multiset (projection does not deduplicate), and under DISTINCT
		// the merge dedups the stripped rows anyway.
		sel = append(append(make([]string, 0, len(q.Select)+1), q.Select...), g.root.Var)
		rootIdx = len(sel) - 1
		strip = true
	}
	return &singlePlan{
		sub:     &query.BGP{Select: sel, Distinct: q.Distinct, Patterns: g.pats},
		shards:  gp.shards,
		rootIdx: rootIdx,
		strip:   strip,
	}
}

// planJoin orders the groups for the left-deep merge join and precomputes
// the column wiring for the accumulated row. The probe side is chosen by
// the groups' cardinality estimates, in two regimes:
//
//   - When the non-probe groups fit the materialization budget, the
//     SMALLEST-estimate group streams as the probe. The build tables are
//     memoized on the plan (the partition is immutable), so re-executions
//     of a repeated query pay only the cheapest group's scatter plus the
//     hash expansion — the expensive groups ship to the coordinator once.
//   - Otherwise the LARGEST-estimate group streams, the classic hash-join
//     choice: the tables must be rebuilt per execution, so they should be
//     the small ones.
//
// It also returns the chosen probe group's index into gps, for EXPLAIN.
func planJoin(q *query.BGP, gps []groupPlan) (*joinPlan, int) {
	probe, largest := 0, 0
	var total float64
	for i, gp := range gps {
		total += gp.est
		if gp.est < gps[probe].est {
			probe = i
		}
		if gp.est > gps[largest].est {
			largest = i
		}
	}
	if total-gps[probe].est > buildCacheMaxRows {
		probe = largest
	}
	ordered := make([]groupPlan, 0, len(gps))
	ordered = append(ordered, gps[probe])
	for i, gp := range gps {
		if i != probe {
			ordered = append(ordered, gp)
		}
	}

	jp := &joinPlan{groups: ordered}
	acc := append([]string(nil), ordered[0].vars...)
	accPos := map[string]int{}
	for i, v := range acc {
		accPos[v] = i
	}
	for _, gp := range ordered[1:] {
		var w buildWire
		for j, v := range gp.vars {
			if i, ok := accPos[v]; ok {
				w.accKey = append(w.accKey, i)
				w.rowKeyIx = append(w.rowKeyIx, j)
			} else {
				w.appendIx = append(w.appendIx, j)
				accPos[v] = len(acc)
				acc = append(acc, v)
			}
		}
		jp.builds = append(jp.builds, w)
	}
	jp.selIx = make([]int, len(q.Select))
	for i, v := range q.Select {
		jp.selIx[i] = accPos[v]
	}
	return jp, probe
}
