package shard

// White-box tests for the statistics-pruned scatter planner: the constSeen
// memo's eviction policy, deterministic pruning of shards that provably
// cannot contribute (absent predicates, missing constants, empty owner
// shards), and a randomized property test proving pruned and unpruned
// scatter agree — the two engines share one Partitioned, so the oracle runs
// over the exact partition the pruned engine plans against.

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/engine/naive"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/store"
)

// naiveSharded partitions st and wraps naive engines in the scatter layer.
func naiveSharded(t *testing.T, st *store.Store, n int) (*Partitioned, *Engine) {
	t.Helper()
	p, err := Partition(st, n)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(p, "naive", func(s *store.Store) (engine.Engine, error) {
		return naive.New(s), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, e
}

// TestConstSeenEvictionKeepsMemo is the regression test for the memo
// eviction fix: at capacity, inserting a new constant-pattern result must
// evict exactly one entry, not drop the whole map (the old behaviour, which
// made every memoized pattern rescan its relation at once).
func TestConstSeenEvictionKeepsMemo(t *testing.T) {
	b := store.NewBuilder()
	s := rdf.NewIRI("http://e/s")
	p := rdf.NewIRI("http://e/p")
	o := rdf.NewIRI("http://e/o")
	b.Add(rdf.Triple{S: s, P: p, O: o})
	_, e := naiveSharded(t, b.Build(), 2)

	// Fill the memo to capacity with synthetic keys (ids far above the
	// dictionary's range, so the real pattern below cannot collide).
	for i := 0; i < constSeenCap; i++ {
		e.constSeen[store.Triple{S: uint32(1<<24 + i), P: 1, O: 2}] = false
	}

	pat := query.Pattern{
		S: query.Node{Term: s},
		P: query.Node{Term: p},
		O: query.Node{Term: o},
	}
	if !e.hasTriple(pat) {
		t.Fatal("existing triple not found")
	}
	if got := len(e.constSeen); got != constSeenCap {
		t.Fatalf("memo size after insert-at-capacity = %d, want %d (single-entry eviction, not a reset)", got, constSeenCap)
	}
	// The fresh result itself is memoized and stable across eviction churn.
	if !e.hasTriple(pat) {
		t.Fatal("memoized triple lookup flipped to false")
	}
	if got := len(e.constSeen); got != constSeenCap {
		t.Fatalf("memo size after hit = %d, want %d", got, constSeenCap)
	}

	// A miss is memoized too (false entries are results, not absences).
	absent := query.Pattern{
		S: query.Node{Term: o},
		P: query.Node{Term: p},
		O: query.Node{Term: s},
	}
	if e.hasTriple(absent) {
		t.Fatal("absent triple reported present")
	}
	if got := len(e.constSeen); got != constSeenCap {
		t.Fatalf("memo size after miss insert = %d, want %d", got, constSeenCap)
	}
}

// pruneStore holds a common predicate on every subject and a rare predicate
// on two subjects only, so at high shard counts most shards have no rare
// triples at all.
func pruneStore(subjects int) *store.Store {
	b := store.NewBuilder()
	node := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://z/n%d", i)) }
	common := rdf.NewIRI("http://z/common")
	rare := rdf.NewIRI("http://z/rare")
	for i := 0; i < subjects; i++ {
		b.Add(rdf.Triple{S: node(i), P: common, O: node((i + 1) % subjects)})
	}
	b.Add(rdf.Triple{S: node(0), P: rare, O: node(3)})
	b.Add(rdf.Triple{S: node(1), P: rare, O: node(4)})
	return b.Build()
}

// TestPrunedScatterSkipsEmptyShards: a query over a predicate present on
// only a few shards scatters to those shards alone — the pruning counter
// moves and the result still matches the unsharded oracle.
func TestPrunedScatterSkipsEmptyShards(t *testing.T) {
	st := pruneStore(64)
	p, e := naiveSharded(t, st, 8)
	base := naive.New(st)

	q := query.MustParseSPARQL(`SELECT ?a ?b WHERE { ?a <http://z/rare> ?b }`)
	before := p.PlanStats().ShardsPruned
	got, err := engine.Collect(e.Open(q, engine.ExecOpts{}))
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.Collect(base.Open(q, engine.ExecOpts{}))
	if err != nil {
		t.Fatal(err)
	}
	if got.Canonical() != want.Canonical() {
		t.Fatalf("pruned scatter differs from oracle: %d vs %d rows", got.Len(), want.Len())
	}
	if got.Len() != 2 {
		t.Fatalf("rare-predicate query: %d rows, want 2", got.Len())
	}
	pruned := p.PlanStats().ShardsPruned - before
	if pruned == 0 {
		t.Fatal("no shards pruned for a two-triple predicate at 8 shards")
	}
	// Two rare triples touch at most 4 shards (two owners, two object
	// replicas), so at least 4 of the 8 scatter targets must be pruned.
	if pruned < 4 {
		t.Fatalf("only %d shards pruned, want >= 4", pruned)
	}
}

// TestPrunedScatterProvablyEmpty: queries the statistics prove empty —
// an absent predicate, a constant missing from the dictionary, and a
// constant root whose owner shard has no matches — return an empty cursor
// without opening any shard sub-query.
func TestPrunedScatterProvablyEmpty(t *testing.T) {
	st := pruneStore(64)
	p, e := naiveSharded(t, st, 8)

	cases := map[string]string{
		"absent-predicate": `SELECT ?a ?b WHERE { ?a <http://z/nope> ?b }`,
		"missing-constant": `SELECT ?b WHERE { <http://z/missing> <http://z/common> ?b }`,
		"empty-owner":      `SELECT ?b WHERE { <http://z/n7> <http://z/rare> ?b }`,
	}
	for name, text := range cases {
		q := query.MustParseSPARQL(text)
		cur, err := e.Open(q, engine.ExecOpts{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(cur.Vars()) != len(q.Select) {
			t.Fatalf("%s: empty cursor vars %v, want %v", name, cur.Vars(), q.Select)
		}
		if _, err := cur.Next(); err != io.EOF {
			t.Fatalf("%s: Next = %v, want io.EOF", name, err)
		}
		cur.Close()
	}
	// n7 exists but has no rare edges: its owner shard's profile is empty,
	// so the constant-rooted group prunes rather than opening the shard.
	if p.PlanStats().ShardsPruned == 0 {
		t.Fatal("provably-empty queries recorded no pruning")
	}
}

// TestPrunePropertyRandomStores: for seeded random datasets and shard
// counts, an Engine with pruning and one with noPrune over the SAME
// partition return identical canonical results on shapes that exercise
// single groups, joins, constants, and DISTINCT — and across the rounds the
// pruned engine actually pruned something (the rare predicate guarantees
// empty shards exist).
func TestPrunePropertyRandomStores(t *testing.T) {
	shapes := []string{
		`SELECT ?a ?b WHERE { ?a <http://z/rare> ?b }`,
		`SELECT ?a ?b WHERE { ?x <http://z/rare> ?a . ?x <http://z/p0> ?b }`,
		`SELECT ?x ?z WHERE { ?x <http://z/p0> ?y . ?y <http://z/rare> ?z }`,
		`SELECT ?a ?d WHERE { ?a <http://z/p0> ?b . ?b <http://z/rare> ?c . ?c <http://z/p1> ?d }`,
		`SELECT DISTINCT ?b WHERE { ?a <http://z/rare> ?v . ?b <http://z/p1> ?v }`,
		`SELECT ?b WHERE { <http://z/n1> <http://z/p0> ?b }`,
	}
	var totalPruned int64
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := store.NewBuilder()
		node := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://z/n%d", i)) }
		preds := []rdf.Term{rdf.NewIRI("http://z/p0"), rdf.NewIRI("http://z/p1"), rdf.NewIRI("http://z/p2")}
		for i := 0; i < 250; i++ {
			b.Add(rdf.Triple{
				S: node(rng.Intn(40)),
				P: preds[rng.Intn(len(preds))],
				O: node(rng.Intn(40)),
			})
		}
		rare := rdf.NewIRI("http://z/rare")
		for i := 0; i < 3; i++ {
			b.Add(rdf.Triple{S: node(rng.Intn(40)), P: rare, O: node(rng.Intn(40))})
		}
		st := b.Build()

		for _, n := range []int{2, 7} {
			p, pruned := naiveSharded(t, st, n)
			unpruned, err := NewEngine(p, "naive", func(s *store.Store) (engine.Engine, error) {
				return naive.New(s), nil
			})
			if err != nil {
				t.Fatal(err)
			}
			unpruned.noPrune = true

			for _, text := range shapes {
				q := query.MustParseSPARQL(text)
				want, err := engine.Collect(unpruned.Open(q, engine.ExecOpts{}))
				if err != nil {
					t.Fatalf("seed=%d n=%d noPrune %s: %v", seed, n, text, err)
				}
				got, err := engine.Collect(pruned.Open(q, engine.ExecOpts{}))
				if err != nil {
					t.Fatalf("seed=%d n=%d pruned %s: %v", seed, n, text, err)
				}
				if got.Canonical() != want.Canonical() {
					t.Fatalf("seed=%d n=%d %s: pruned %d rows != unpruned %d rows",
						seed, n, text, got.Len(), want.Len())
				}
			}
			totalPruned += p.PlanStats().ShardsPruned
		}
	}
	if totalPruned == 0 {
		t.Fatal("property rounds never pruned a shard — the oracle proved nothing")
	}
}
