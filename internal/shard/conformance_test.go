package shard_test

// The cross-shard conformance suite: for every registered engine wrapped in
// shard.Engine, sharded execution must be indistinguishable from
// single-store execution —
//
//	(a) Collect equality (after canonical sort) with the unsharded engine,
//	    on the triangle/path/star query shapes and on the LUBM scale-1
//	    golden queries, at N ∈ {1, 2, 7, 8} shards, and
//	(b) the streaming-cursor contract of internal/engine's conformance
//	    suite holds for the merge cursor too: pre-cancelled contexts fail
//	    promptly, mid-enumeration cancellation stops within a bounded
//	    number of rows, MaxRows/Offset are exact, and early Close stops the
//	    producers.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/engines"
	"repro/internal/lubm"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/shard"
	"repro/internal/store"
)

var shardCounts = []int{1, 2, 7, 8}

// conformanceStore is a complete digraph over n vertices under <http://c/p>
// plus sparse <http://c/q> and <http://c/r> edges: the triangle query on p
// yields n^3 rows, and q/r give the star query distinct predicates.
func conformanceStore(n int) *store.Store {
	b := store.NewBuilder()
	node := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://c/n%d", i)) }
	p := rdf.NewIRI("http://c/p")
	q := rdf.NewIRI("http://c/q")
	r := rdf.NewIRI("http://c/r")
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Add(rdf.Triple{S: node(i), P: p, O: node(j)})
		}
		b.Add(rdf.Triple{S: node(i), P: q, O: node((i + 1) % n)})
		b.Add(rdf.Triple{S: node(i), P: r, O: node((i * 5) % n)})
	}
	return b.Build()
}

const conformanceTriangle = `SELECT ?x ?y ?z WHERE { ?x <http://c/p> ?y . ?y <http://c/p> ?z . ?x <http://c/p> ?z }`

// shapeQueries are the shapes the partitioning strategy must get right:
// subject stars (shard-local), object-subject paths (replication), and the
// triangle (merge-layer join).
var shapeQueries = map[string]string{
	"star":          `SELECT ?a ?b ?c WHERE { ?x <http://c/q> ?a . ?x <http://c/r> ?b . ?x <http://c/p> ?c }`,
	"star-distinct": `SELECT DISTINCT ?a ?b WHERE { ?x <http://c/q> ?a . ?x <http://c/r> ?b }`,
	"path2":         `SELECT ?x ?z WHERE { ?x <http://c/q> ?y . ?y <http://c/r> ?z }`,
	"path3":         `SELECT ?w ?z WHERE { ?w <http://c/q> ?x . ?x <http://c/q> ?y . ?y <http://c/r> ?z }`,
	"object-object": `SELECT ?a ?b WHERE { ?a <http://c/q> ?v . ?b <http://c/r> ?v }`,
	"triangle":      conformanceTriangle,
}

// forEachSharded runs f once per (registered engine, shard count) over st.
func forEachSharded(t *testing.T, st *store.Store, f func(t *testing.T, base, sh engine.Engine, n int)) {
	t.Helper()
	parts := map[int]*shard.Partitioned{}
	for _, n := range shardCounts {
		p, err := shard.Partition(st, n)
		if err != nil {
			t.Fatalf("Partition(%d): %v", n, err)
		}
		parts[n] = p
	}
	for _, name := range engines.Names() {
		base, err := engines.New(name, st)
		if err != nil {
			t.Fatalf("engines.New(%s): %v", name, err)
		}
		for _, n := range shardCounts {
			sh, err := engines.NewSharded(name, parts[n])
			if err != nil {
				t.Fatalf("engines.NewSharded(%s, %d): %v", name, n, err)
			}
			t.Run(fmt.Sprintf("%s/n=%d", name, n), func(t *testing.T) { f(t, base, sh, n) })
		}
	}
}

// TestShardConformanceShapes: sharded Collect equals unsharded Collect on
// every query shape, for every engine, at every shard count.
func TestShardConformanceShapes(t *testing.T) {
	st := conformanceStore(12)
	for shape, text := range shapeQueries {
		q := query.MustParseSPARQL(text)
		wants := map[string]string{}
		forEachSharded(t, st, func(t *testing.T, base, sh engine.Engine, n int) {
			want, ok := wants[shape+base.Name()]
			if !ok {
				res, err := engine.Collect(base.Open(q, engine.ExecOpts{}))
				if err != nil {
					t.Fatalf("%s unsharded: %v", shape, err)
				}
				want = res.Canonical()
				wants[shape+base.Name()] = want
			}
			got, err := engine.Collect(sh.Open(q, engine.ExecOpts{}))
			if err != nil {
				t.Fatalf("%s: %v", shape, err)
			}
			if got.Truncated {
				t.Fatalf("%s: uncapped result marked truncated", shape)
			}
			if got.Canonical() != want {
				t.Errorf("%s: sharded result differs from unsharded", shape)
			}
		})
	}
}

// TestShardConformanceLUBM: sharded Collect is byte-identical (after
// canonical sort) to the unsharded engine on the LUBM scale-1 golden
// queries, for all six engines at N ∈ {1, 2, 7, 8}.
func TestShardConformanceLUBM(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	scale := 1
	st := store.FromTriples(lubm.Generate(lubm.Config{Universities: scale}))
	ref, err := engines.New("naive", st)
	if err != nil {
		t.Fatal(err)
	}
	wants := map[int]string{}
	for _, qn := range lubm.QueryNumbers {
		q := query.MustParseSPARQL(lubm.Query(qn, scale))
		want, err := engine.Collect(ref.Open(q, engine.ExecOpts{}))
		if err != nil {
			t.Fatalf("Q%d naive: %v", qn, err)
		}
		wants[qn] = want.Canonical()
	}
	forEachSharded(t, st, func(t *testing.T, base, sh engine.Engine, n int) {
		for _, qn := range lubm.QueryNumbers {
			q := query.MustParseSPARQL(lubm.Query(qn, scale))
			got, err := engine.Collect(sh.Open(q, engine.ExecOpts{}))
			if err != nil {
				t.Fatalf("Q%d: %v", qn, err)
			}
			if got.Canonical() != wants[qn] {
				t.Errorf("Q%d: sharded result differs from naive oracle (%d rows)", qn, got.Len())
			}
		}
	})
}

// TestShardConformancePreCancelled: an already-cancelled context surfaces
// promptly from the merge cursor.
func TestShardConformancePreCancelled(t *testing.T) {
	st := conformanceStore(16)
	q := query.MustParseSPARQL(conformanceTriangle)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	forEachSharded(t, st, func(t *testing.T, _, sh engine.Engine, n int) {
		start := time.Now()
		cur, err := sh.Open(q, engine.ExecOpts{Ctx: ctx})
		if err == nil {
			_, err = cur.Next()
			cur.Close()
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if d := time.Since(start); d > time.Second {
			t.Fatalf("pre-cancelled open took %v", d)
		}
	})
}

// TestShardConformanceCancelMidEnumeration: cancel after a few rows; the
// merge cursor must fail within a bounded number of further rows, proving
// shard producers reacted instead of enumerating detached.
func TestShardConformanceCancelMidEnumeration(t *testing.T) {
	st := conformanceStore(48) // 110592 triangle rows if run to completion
	q := query.MustParseSPARQL(conformanceTriangle)
	forEachSharded(t, st, func(t *testing.T, _, sh engine.Engine, n int) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		cur, err := sh.Open(q, engine.ExecOpts{Ctx: ctx})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		defer cur.Close()
		for i := 0; i < 10; i++ {
			if _, err := cur.Next(); err != nil {
				t.Fatalf("row %d: %v", i, err)
			}
		}
		cancel()
		const bound = 30000 // generator batches + fan-in buffers per shard
		rowsAfter := 0
		deadline := time.After(10 * time.Second)
		for {
			select {
			case <-deadline:
				t.Fatalf("cursor did not observe cancellation within 10s (%d rows drained)", rowsAfter)
			default:
			}
			_, err := cur.Next()
			if errors.Is(err, context.Canceled) {
				return
			}
			if err != nil {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			rowsAfter++
			if rowsAfter > bound {
				t.Fatalf("more than %d rows after cancellation — producers did not stop", bound)
			}
		}
	})
}

// TestShardConformanceExactTruncationAndOffset: MaxRows is exact at the
// merge cursor (a cap equal to the result size is not "truncated"; one
// below is) and Offset skips without changing the tail, on both merge paths
// (path2 exercises the scatter-gather union with per-shard cap hints,
// triangle the merge-layer join).
func TestShardConformanceExactTruncationAndOffset(t *testing.T) {
	n := 8
	total := n * n * n // 512 rows for both shapes below
	st := conformanceStore(n)
	for shape, text := range map[string]string{
		"path2":    `SELECT ?x ?z WHERE { ?x <http://c/p> ?y . ?y <http://c/p> ?z }`,
		"triangle": conformanceTriangle,
	} {
		q := query.MustParseSPARQL(text)
		forEachSharded(t, st, func(t *testing.T, _, sh engine.Engine, shards int) {
			exact, err := engine.Collect(sh.Open(q, engine.ExecOpts{MaxRows: total}))
			if err != nil {
				t.Fatal(err)
			}
			if exact.Len() != total || exact.Truncated {
				t.Fatalf("%s exact cap: rows=%d truncated=%v, want %d/false", shape, exact.Len(), exact.Truncated, total)
			}
			capped, err := engine.Collect(sh.Open(q, engine.ExecOpts{MaxRows: total - 1}))
			if err != nil {
				t.Fatal(err)
			}
			if capped.Len() != total-1 || !capped.Truncated {
				t.Fatalf("%s cap-1: rows=%d truncated=%v, want %d/true", shape, capped.Len(), capped.Truncated, total-1)
			}
			shifted, err := engine.Collect(sh.Open(q, engine.ExecOpts{Offset: total - 5}))
			if err != nil {
				t.Fatal(err)
			}
			if shifted.Len() != 5 || shifted.Truncated {
				t.Fatalf("%s offset: rows=%d truncated=%v, want 5/false", shape, shifted.Len(), shifted.Truncated)
			}
		})
	}
}

// TestShardConformanceEarlyCloseStopsProducer: closing the merge cursor
// after a few rows leaks nothing — Close is idempotent, Next afterwards is
// io.EOF, and a rerun on the same sharded engine still completes.
func TestShardConformanceEarlyCloseStopsProducer(t *testing.T) {
	st := conformanceStore(12)
	q := query.MustParseSPARQL(conformanceTriangle)
	forEachSharded(t, st, func(t *testing.T, _, sh engine.Engine, n int) {
		cur, err := sh.Open(q, engine.ExecOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cur.Next(); err != nil {
			t.Fatal(err)
		}
		if err := cur.Close(); err != nil {
			t.Fatal(err)
		}
		if err := cur.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := cur.Next(); err != io.EOF {
			t.Fatalf("Next after Close = %v, want io.EOF", err)
		}
		res, err := engine.Collect(sh.Open(q, engine.ExecOpts{}))
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 12*12*12 {
			t.Fatalf("rerun after early close: %d rows, want %d", res.Len(), 12*12*12)
		}
	})
}
