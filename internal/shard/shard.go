// Package shard implements horizontal partitioning of one RDF dataset into
// N subject-hash shards plus a scatter-gather execution engine over them —
// the classic distributed-SPARQL "old technique" composed with this
// repository's streaming cursor contract (every engine already streams
// context-aware, row-bounded cursors, so the merge layer streams shard
// cursors instead of materializing shard results).
//
// # Partitioning and replication
//
// The routing rule is ShardOf(subject): triple (s, p, o) is owned by shard
// hash(s) mod N. Subject-hash sharding answers subject-rooted patterns
// shard-locally, but a pattern whose join variable sits in the object
// position (object-subject chains, object-object joins) would need triples
// from other shards. Partition therefore additionally replicates every
// triple whose object hashes elsewhere to shard hash(o) — a
// replicated-by-object index. The cost is bounded: each triple is stored at
// most twice, so a shard set holds ≤ 2× the parent's triples (in practice
// less, because hash(s) == hash(o) collapses the copies; /stats reports the
// exact owned/replicated split per shard).
//
// With that layout, any query group that shares one root node across all of
// its patterns (the root appears in the subject or object position of every
// pattern) is answered exactly by scatter-gather: every solution's triples
// all contain the root's binding and are therefore present on the shard
// that owns it. Each shard additionally sees replicated triples, so the
// merge layer keeps a shard's row only when the row's root binding is owned
// by that shard — the ownership filter that deduplicates replication
// without disturbing SPARQL multiset semantics.
//
// Queries that no single root covers (the triangle query is the canonical
// example) are decomposed into root-covered groups; each group runs
// sharded-exact as above, and the merge layer joins the group streams
// (build-side groups are materialized into hash tables, the largest group
// streams through as the probe side). That is the broadcast phase of
// classic scatter-gather engines, landed at the coordinator.
package shard

import (
	"fmt"
	"sync/atomic"

	"repro/internal/dict"
	"repro/internal/obs"
	"repro/internal/store"
)

// ShardOf is the routing rule: the index of the shard that owns the
// dictionary-encoded node id. Subjects route their triple's owned copy;
// objects route the replicated copy.
func ShardOf(id uint32, n int) int {
	return int(mix32(id) % uint32(n))
}

// mix32 is a strong 32-bit finalizer (lowbias32). Dictionary ids are dense
// and clustered by entity class, so routing on id % n directly would skew
// shards badly; mixing first spreads every cluster across all shards.
func mix32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

// Partitioned is one dataset split into N shard stores that share the
// parent's dictionary. It is immutable after Partition apart from the
// delivered counters, which merge cursors bump as they drain shards.
type Partitioned struct {
	dict       *dict.Dictionary
	shards     []*store.Store
	owned      []int
	replicated []int

	// delivered counts rows each shard contributed to merge cursors — the
	// drain-balance signal /stats reports (a heavily skewed distribution
	// means the subject hash is not spreading the queried entities).
	delivered []atomic.Int64

	// Scatter-planning counters, bumped by the Engines executing over this
	// partition and surfaced in /stats: without them the difference between
	// "sharding pays" and "sharding is a pessimization" is only visible in
	// benches, never in production.
	shardsPruned  atomic.Int64 // (group, shard) scatter targets skipped by statistics
	groupsPlanned atomic.Int64 // root-covered groups compiled
	planReuseHits atomic.Int64 // Opens served from a cached scatter plan
	plansCompiled atomic.Int64 // scatter plans compiled (cache misses)

	// batchRows distributes the merge transport's flushed batch sizes
	// (observed once per batch, not per row — the drain hot loop stays
	// counter-free); prunedPerQuery distributes how many scatter targets
	// statistics pruned per compiled plan. Both feed /metrics histograms.
	batchRows      *obs.Hist
	prunedPerQuery *obs.Hist
}

// Partition splits st into n subject-hash shards, replicating each triple
// whose object is owned elsewhere to the object's shard (see the package
// comment for why). n == 1 yields a single shard holding every triple and
// no replicas.
func Partition(st *store.Store, n int) (*Partitioned, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", n)
	}
	parts := make([][]store.Triple, n)
	owned := make([]int, n)
	replicated := make([]int, n)
	for _, t := range st.Triples() {
		own := ShardOf(t.S, n)
		parts[own] = append(parts[own], t)
		owned[own]++
		if rep := ShardOf(t.O, n); rep != own {
			parts[rep] = append(parts[rep], t)
			replicated[rep]++
		}
	}
	p := &Partitioned{
		dict:       st.Dict(),
		shards:     make([]*store.Store, n),
		owned:      owned,
		replicated: replicated,
		delivered:  make([]atomic.Int64, n),
		// Bounds 1..128 cover gatherBatch (64) with headroom; pruned counts
		// get an explicit 0 bucket so "query pruned nothing" is
		// distinguishable from "query pruned one target".
		batchRows:      obs.NewHist(obs.SizeBuckets(8)),
		prunedPerQuery: obs.NewHist(append([]float64{0}, obs.SizeBuckets(7)...)),
	}
	for i := range parts {
		p.shards[i] = store.FromEncoded(st.Dict(), parts[i])
	}
	return p, nil
}

// NumShards returns the shard count.
func (p *Partitioned) NumShards() int { return len(p.shards) }

// Shard returns shard i's store (owned + replicated triples).
func (p *Partitioned) Shard(i int) *store.Store { return p.shards[i] }

// Dict returns the dictionary shared by the parent and every shard.
func (p *Partitioned) Dict() *dict.Dictionary { return p.dict }

// ShardStat describes one shard for observability.
type ShardStat struct {
	// Owned is the number of triples whose subject this shard owns.
	Owned int
	// Replicated is the number of triples copied here for their object.
	Replicated int
	// Delivered is the cumulative number of rows this shard has contributed
	// to merge cursors — the scatter-gather drain balance.
	Delivered int64
}

// PlanStats reports the scatter-planning counters accumulated by every
// Engine executing over this partition.
type PlanStats struct {
	// ShardsPruned counts (group, shard) scatter targets that statistics
	// proved could not contribute rows (predicate absent on the shard,
	// zero-cardinality selection, constant missing from the shard's trie
	// root) — sub-queries never opened.
	ShardsPruned int64
	// GroupsPlanned counts root-covered groups compiled into scatter plans.
	GroupsPlanned int64
	// PlanReuseHits counts Opens answered from a cached scatter plan (the
	// decomposition, pruning, probe choice, and per-shard sub-queries are
	// all reused, so downstream engine plan caches hit too).
	PlanReuseHits int64
	// PlansCompiled counts scatter-plan cache misses.
	PlansCompiled int64
}

// PlanStats snapshots the scatter-planning counters.
func (p *Partitioned) PlanStats() PlanStats {
	return PlanStats{
		ShardsPruned:  p.shardsPruned.Load(),
		GroupsPlanned: p.groupsPlanned.Load(),
		PlanReuseHits: p.planReuseHits.Load(),
		PlansCompiled: p.plansCompiled.Load(),
	}
}

// BatchRowsHist snapshots the merge transport's batch-size histogram.
func (p *Partitioned) BatchRowsHist() obs.HistSnapshot { return p.batchRows.Snapshot() }

// PrunedPerQueryHist snapshots the shards-pruned-per-compiled-plan histogram.
func (p *Partitioned) PrunedPerQueryHist() obs.HistSnapshot { return p.prunedPerQuery.Snapshot() }

// Stats snapshots the per-shard layout and drain-balance counters.
func (p *Partitioned) Stats() []ShardStat {
	out := make([]ShardStat, len(p.shards))
	for i := range out {
		out[i] = ShardStat{
			Owned:      p.owned[i],
			Replicated: p.replicated[i],
			Delivered:  p.delivered[i].Load(),
		}
	}
	return out
}
