package shard

import (
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/engine/naive"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/store"
)

// chainStore builds a deterministic multi-predicate graph: p edges i→(i*7+3)%n,
// q edges i→(i+1)%n, r edges i→(i*3+1)%n over n subjects.
func chainStore(n int) *store.Store {
	b := store.NewBuilder()
	node := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://s/n%d", i)) }
	p := rdf.NewIRI("http://s/p")
	q := rdf.NewIRI("http://s/q")
	r := rdf.NewIRI("http://s/r")
	for i := 0; i < n; i++ {
		b.Add(rdf.Triple{S: node(i), P: p, O: node((i*7 + 3) % n)})
		b.Add(rdf.Triple{S: node(i), P: q, O: node((i + 1) % n)})
		b.Add(rdf.Triple{S: node(i), P: r, O: node((i*3 + 1) % n)})
	}
	return b.Build()
}

func TestPartitionCounts(t *testing.T) {
	st := chainStore(100)
	for _, n := range []int{1, 2, 3, 7, 16} {
		p, err := Partition(st, n)
		if err != nil {
			t.Fatal(err)
		}
		if p.NumShards() != n {
			t.Fatalf("NumShards = %d, want %d", p.NumShards(), n)
		}
		ownedTotal := 0
		for i, s := range p.Stats() {
			ownedTotal += s.Owned
			if got := p.Shard(i).NumTriples(); got != s.Owned+s.Replicated {
				t.Fatalf("n=%d shard %d: NumTriples=%d, owned+replicated=%d", n, i, got, s.Owned+s.Replicated)
			}
		}
		if ownedTotal != st.NumTriples() {
			t.Fatalf("n=%d: owned sum %d != total %d (triples lost or duplicated)", n, ownedTotal, st.NumTriples())
		}
		// Every triple is owned by exactly its subject's shard, and replicas
		// live only at the object's shard.
		for _, tr := range st.Triples() {
			own := ShardOf(tr.S, n)
			if !storeHas(p.Shard(own), tr) {
				t.Fatalf("n=%d: triple %v missing from owner shard %d", n, tr, own)
			}
			for i := 0; i < n; i++ {
				has := storeHas(p.Shard(i), tr)
				wantHere := i == own || i == ShardOf(tr.O, n)
				if has != wantHere {
					t.Fatalf("n=%d shard %d: triple %v presence=%v, want %v", n, i, tr, has, wantHere)
				}
			}
		}
	}
	if _, err := Partition(st, 0); err == nil {
		t.Fatal("Partition(st, 0) succeeded, want error")
	}
}

func storeHas(s *store.Store, tr store.Triple) bool {
	for _, got := range s.Triples() {
		if got == tr {
			return true
		}
	}
	return false
}

func TestPartitionEmptyStore(t *testing.T) {
	st := store.NewBuilder().Build()
	p, err := Partition(st, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if p.Shard(i).NumTriples() != 0 {
			t.Fatalf("shard %d non-empty", i)
		}
	}
}

func TestDecomposeShapes(t *testing.T) {
	parse := func(s string) []query.Pattern { return query.MustParseSPARQL(s).Patterns }
	cases := []struct {
		name   string
		q      string
		groups int
	}{
		{"subject star", `SELECT ?a ?b WHERE { ?x <p> ?a . ?x <q> ?b . ?x <r> ?c }`, 1},
		{"object-subject path", `SELECT ?x ?z WHERE { ?x <p> ?y . ?y <p> ?z }`, 1},
		{"object-object join", `SELECT ?a ?b WHERE { ?a <p> ?v . ?b <q> ?v }`, 1},
		{"triangle", `SELECT ?x ?y ?z WHERE { ?x <p> ?y . ?y <p> ?z . ?x <p> ?z }`, 2},
		{"three-hop path", `SELECT ?w ?z WHERE { ?w <p> ?x . ?x <p> ?y . ?y <p> ?z }`, 2},
		{"single pattern", `SELECT ?s ?o WHERE { ?s ?p ?o }`, 1},
	}
	for _, c := range cases {
		got := decompose(parse(c.q))
		if len(got) != c.groups {
			t.Errorf("%s: %d groups, want %d", c.name, len(got), c.groups)
		}
		// Every pattern lands in exactly one group, and each group's root is
		// in the S or O position of each of its patterns.
		total := 0
		for _, g := range got {
			total += len(g.pats)
			for _, pat := range g.pats {
				if nodeKey(pat.S) != nodeKey(g.root) && nodeKey(pat.O) != nodeKey(g.root) {
					t.Errorf("%s: root %v not in S/O of %v", c.name, g.root, pat)
				}
			}
		}
		if total != len(parse(c.q)) {
			t.Errorf("%s: %d patterns covered, want %d", c.name, total, len(parse(c.q)))
		}
	}
}

// newNaiveSharded wraps the naive engine over a partition.
func newNaiveSharded(t *testing.T, st *store.Store, n int) *Engine {
	t.Helper()
	p, err := Partition(st, n)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(p, "naive", func(s *store.Store) (engine.Engine, error) {
		return naive.New(s), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestShardedMatchesUnshardedNaive is the in-package smoke check (the full
// cross-engine suite lives in conformance_test.go): sharded naive equals
// unsharded naive on representative query shapes at several shard counts.
func TestShardedMatchesUnshardedNaive(t *testing.T) {
	st := chainStore(60)
	base := naive.New(st)
	queries := []string{
		`SELECT ?a ?b WHERE { ?x <http://s/p> ?a . ?x <http://s/q> ?b }`,
		`SELECT ?x ?z WHERE { ?x <http://s/p> ?y . ?y <http://s/q> ?z }`,
		`SELECT DISTINCT ?a WHERE { ?x <http://s/p> ?a . ?x <http://s/q> ?b }`,
		`SELECT ?a ?b WHERE { ?a <http://s/p> ?v . ?b <http://s/q> ?v }`,
		`SELECT ?x ?y ?z WHERE { ?x <http://s/p> ?y . ?y <http://s/p> ?z . ?x <http://s/q> ?z }`,
		`SELECT ?w ?z WHERE { ?w <http://s/p> ?x . ?x <http://s/q> ?y . ?y <http://s/r> ?z }`,
		`SELECT ?s ?o WHERE { ?s ?p ?o }`,
		`SELECT ?a WHERE { <http://s/n3> <http://s/p> ?v . ?a <http://s/r> ?v }`,
	}
	for _, text := range queries {
		q := query.MustParseSPARQL(text)
		want, err := engine.Collect(base.Open(q, engine.ExecOpts{}))
		if err != nil {
			t.Fatalf("%s: unsharded: %v", text, err)
		}
		for _, n := range []int{1, 2, 5} {
			sh := newNaiveSharded(t, st, n)
			got, err := engine.Collect(sh.Open(q, engine.ExecOpts{}))
			if err != nil {
				t.Fatalf("%s n=%d: %v", text, n, err)
			}
			if got.Canonical() != want.Canonical() {
				t.Errorf("%s n=%d: %d rows, want %d", text, n, got.Len(), want.Len())
			}
		}
	}
}

// TestConstantRootRoutesToOneShard: a query whose patterns all share a
// constant subject runs on the owner shard only.
func TestConstantRootRoutesToOneShard(t *testing.T) {
	st := chainStore(30)
	sh := newNaiveSharded(t, st, 5)
	q := query.MustParseSPARQL(`SELECT ?a ?b WHERE { <http://s/n7> <http://s/p> ?a . <http://s/n7> <http://s/q> ?b }`)
	got, err := engine.Collect(sh.Open(q, engine.ExecOpts{}))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("rows = %d, want 1", got.Len())
	}
	active := 0
	for _, s := range sh.part.Stats() {
		if s.Delivered > 0 {
			active++
		}
	}
	if active != 1 {
		t.Fatalf("delivered from %d shards, want 1", active)
	}
	// Unknown constant: empty result, no error.
	q = query.MustParseSPARQL(`SELECT ?a WHERE { <http://s/unknown> <http://s/p> ?a }`)
	got, err = engine.Collect(sh.Open(q, engine.ExecOpts{}))
	if err != nil || got.Len() != 0 {
		t.Fatalf("unknown constant: rows=%d err=%v, want 0/nil", got.Len(), err)
	}
}

// TestFullyConstantPatternFilters: an all-constant pattern acts as an
// existence filter.
func TestFullyConstantPatternFilters(t *testing.T) {
	st := chainStore(10)
	sh := newNaiveSharded(t, st, 3)
	// n0 -p-> n3 exists (0*7+3 = 3).
	hit := query.MustParseSPARQL(`SELECT ?a WHERE { <http://s/n0> <http://s/p> <http://s/n3> . ?x <http://s/q> ?a }`)
	got, err := engine.Collect(sh.Open(hit, engine.ExecOpts{}))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 10 {
		t.Fatalf("existing filter: rows=%d, want 10", got.Len())
	}
	miss := query.MustParseSPARQL(`SELECT ?a WHERE { <http://s/n0> <http://s/p> <http://s/n4> . ?x <http://s/q> ?a }`)
	got, err = engine.Collect(sh.Open(miss, engine.ExecOpts{}))
	if err != nil || got.Len() != 0 {
		t.Fatalf("failing filter: rows=%d err=%v, want 0/nil", got.Len(), err)
	}
}
