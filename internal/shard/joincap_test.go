package shard

// White-box test for the multi-group join path's row-cap behaviour: the
// regression was that openJoin drained every shard of the probe group to
// exhaustion regardless of MaxRows. With the cap wired through (errJoinCap
// stops the producer, whose context cancels the shard drains), a capped
// join must touch a bounded prefix of the probe stream — and a re-execution
// must not re-drain the build groups at all, because the plan memoizes its
// materialized build tables.

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/engine"
	"repro/internal/engine/naive"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/store"
)

// tallyEngine wraps a shard-local engine and counts the rows its cursors
// produce, split by the sub-query's projection width — which distinguishes
// the two root groups of the test query (build group: 3 vars, probe group:
// 2 vars).
type tallyEngine struct {
	inner        engine.Engine
	wide, narrow *atomic.Int64
}

func (e *tallyEngine) Name() string { return "tally" }

func (e *tallyEngine) Open(q *query.BGP, opts engine.ExecOpts) (engine.Cursor, error) {
	cur, err := e.inner.Open(q, opts)
	if err != nil {
		return nil, err
	}
	ctr := e.narrow
	if len(q.Select) >= 3 {
		ctr = e.wide
	}
	return &tallyCursor{Cursor: cur, ctr: ctr}, nil
}

type tallyCursor struct {
	engine.Cursor
	ctr *atomic.Int64
}

func (c *tallyCursor) Next() ([]uint32, error) {
	row, err := c.Cursor.Next()
	if err == nil {
		c.ctr.Add(1)
	}
	return row, err
}

// TestJoinRowCapBoundsProbeDrain: on a two-group join, MaxRows stops the
// probe-side shard drains after a bounded prefix instead of enumerating the
// whole group, and the memoized build tables make re-executions skip the
// build groups entirely.
func TestJoinRowCapBoundsProbeDrain(t *testing.T) {
	// A q-chain n0→n1→…→n12000 and r-edges n_i→m_i for i < 8000. The query
	// decomposes into group A = {?w q ?x . ?x q ?y} rooted at x (3 vars,
	// ~12k solutions) and group B = {?y r ?z} rooted at y (2 vars, 8k
	// solutions); B's smaller estimate makes it the probe side, A the
	// memoized build table.
	const chainLen, rEdges = 12000, 8000
	b := store.NewBuilder()
	node := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://j/n%d", i)) }
	leaf := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://j/m%d", i)) }
	qp := rdf.NewIRI("http://j/q")
	rp := rdf.NewIRI("http://j/r")
	for i := 0; i < chainLen; i++ {
		b.Add(rdf.Triple{S: node(i), P: qp, O: node(i + 1)})
	}
	for i := 0; i < rEdges; i++ {
		b.Add(rdf.Triple{S: node(i), P: rp, O: leaf(i)})
	}
	st := b.Build()
	p, err := Partition(st, 4)
	if err != nil {
		t.Fatal(err)
	}
	var wide, narrow atomic.Int64
	sh, err := NewEngine(p, "tally", func(s *store.Store) (engine.Engine, error) {
		return &tallyEngine{inner: naive.New(s), wide: &wide, narrow: &narrow}, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	q := query.MustParseSPARQL(
		`SELECT ?w ?z WHERE { ?w <http://j/q> ?x . ?x <http://j/q> ?y . ?y <http://j/r> ?z }`)
	// A 2-chain ends at y = n_i for i >= 2; an r-edge leaves n_i for
	// i < rEdges, so the full join has rEdges-2 solutions.
	const totalRows = rEdges - 2

	// Execution 1: capped. The merge-level cap plus its exactness-probe row
	// bounds the probe drain to the fan-in buffers, far below B's 8k rows
	// (the shard cursors also see replicated copies, so an unbounded drain
	// would count well above rEdges).
	res, err := engine.Collect(sh.Open(q, engine.ExecOpts{MaxRows: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 || !res.Truncated {
		t.Fatalf("capped join: rows=%d truncated=%v, want 2/true", res.Len(), res.Truncated)
	}
	qplan := sh.qplans[q]
	if qplan == nil || qplan.join == nil {
		t.Fatal("query did not compile to a join plan")
	}
	if got := len(qplan.join.groups[0].vars); got != 2 {
		t.Fatalf("probe group has %d vars, want 2 (smallest-estimate group)", got)
	}
	narrowCapped := narrow.Load()
	if narrowCapped >= 4000 {
		t.Fatalf("capped join drained %d probe-group rows — the cap did not stop the shard drains", narrowCapped)
	}
	// The build group is materialized in full regardless of the cap (hash
	// joins pay their build side up front).
	wideBuilt := wide.Load()
	if wideBuilt < chainLen-2 {
		t.Fatalf("build group drained %d rows, want >= %d", wideBuilt, chainLen-2)
	}

	// Execution 2: uncapped, same query pointer. The probe streams in full,
	// but the build group is served from the memoized tables — zero new
	// build-side rows.
	reuseBefore := p.PlanStats().PlanReuseHits
	res2, err := engine.Collect(sh.Open(q, engine.ExecOpts{}))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Len() != totalRows || res2.Truncated {
		t.Fatalf("uncapped join: rows=%d truncated=%v, want %d/false", res2.Len(), res2.Truncated, totalRows)
	}
	if got := wide.Load(); got != wideBuilt {
		t.Fatalf("re-execution drained %d new build-group rows, want 0 (memoized tables)", got-wideBuilt)
	}
	narrowFull := narrow.Load() - narrowCapped
	if narrowFull < rEdges {
		t.Fatalf("uncapped probe drained %d rows, want >= %d", narrowFull, rEdges)
	}
	if p.PlanStats().PlanReuseHits <= reuseBefore {
		t.Fatal("re-execution did not hit the scatter-plan cache")
	}
}
