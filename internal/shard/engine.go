package shard

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"sync"

	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/store"
)

// Engine executes queries by scatter-gather over the shards of a
// Partitioned dataset. It implements the repository-wide engine.Engine
// contract — Open(q, ExecOpts) → Cursor — by planning per-shard
// sub-queries, opening one cursor per shard concurrently, and streaming
// their merged rows: cancellation, DISTINCT deduplication, Offset, and the
// exact MaxRows cap are all enforced once at the merge cursor, with row
// caps propagated down to the shard drains as per-shard hints.
type Engine struct {
	part *Partitioned
	base string
	engs []engine.Engine

	// constSeen memoizes fully-constant-pattern existence checks: the
	// partition is immutable, and the check otherwise scans one predicate's
	// relation per Open. Capped at constSeenCap entries (reset when full)
	// so an adversarial stream of distinct constant patterns cannot grow
	// server memory without bound.
	constMu   sync.Mutex
	constSeen map[store.Triple]bool
}

// constSeenCap bounds the existence-check memo; a full map is simply
// dropped (the checks are recomputable — this is a cache, not state).
const constSeenCap = 1 << 14

// NewEngine builds one instance of a base engine over every shard of p
// (via build, typically the engine registry) and returns the scatter-gather
// wrapper. Construction cost is the base engine's, once per shard — over
// smaller inputs, so eager index builds (rdf3x's six permutation sorts)
// also parallelize across shards in wall-clock terms when the caller
// shards a large dataset.
func NewEngine(p *Partitioned, name string, build func(*store.Store) (engine.Engine, error)) (*Engine, error) {
	engs := make([]engine.Engine, p.NumShards())
	for i := range engs {
		e, err := build(p.Shard(i))
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		engs[i] = e
	}
	return &Engine{part: p, base: name, engs: engs, constSeen: map[store.Triple]bool{}}, nil
}

// Name identifies the engine and its shard count in benchmark output.
func (e *Engine) Name() string {
	return e.base + "[shards=" + strconv.Itoa(len(e.engs)) + "]"
}

// ShardEngine returns shard i's engine instance (every shard runs the same
// engine type). Callers use it to inspect the underlying engine's
// capabilities — e.g. whether it honours ExecOpts.Workers, which the
// wrapper forwards to every shard.
func (e *Engine) ShardEngine(i int) engine.Engine { return e.engs[i] }

// Open starts the sharded execution of q. The query is decomposed into
// root-covered groups (see the package comment); a single group scatters to
// every shard and streams the merged union, multiple groups additionally
// join their streams at the merge layer.
func (e *Engine) Open(q *query.BGP, opts engine.ExecOpts) (engine.Cursor, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Err(); err != nil {
		return nil, err
	}
	if len(e.engs) == 1 {
		// One shard is the whole dataset: pass straight through.
		cur, err := e.engs[0].Open(q, opts)
		return e.counting(0, cur, err)
	}
	rest, ok := e.splitConstant(q.Patterns)
	if !ok {
		return emptyCursor{vars: q.Select}, nil
	}
	groups := decompose(rest)
	if len(groups) == 1 {
		return e.openSingle(q, groups[0], opts)
	}
	return e.openJoin(q, groups, opts)
}

// splitConstant separates fully-constant patterns (no variables anywhere)
// from the rest and verifies each against the data. A constant pattern is a
// pure existence filter: if it fails, the whole query is empty (ok ==
// false); if it holds it constrains nothing further.
func (e *Engine) splitConstant(pats []query.Pattern) (rest []query.Pattern, ok bool) {
	for _, p := range pats {
		if p.S.IsVar || p.P.IsVar || p.O.IsVar {
			rest = append(rest, p)
			continue
		}
		if !e.hasTriple(p) {
			return nil, false
		}
	}
	return rest, true
}

// hasTriple reports whether the fully-constant pattern's triple exists. The
// subject's owner shard holds it if anyone does. The relation scan runs at
// most once per distinct constant triple (results are memoized — the
// partition is immutable).
func (e *Engine) hasTriple(p query.Pattern) bool {
	d := e.part.dict
	s, ok := d.Lookup(p.S.Term)
	if !ok {
		return false
	}
	pid, ok := d.Lookup(p.P.Term)
	if !ok {
		return false
	}
	o, ok := d.Lookup(p.O.Term)
	if !ok {
		return false
	}
	key := store.Triple{S: s, P: pid, O: o}
	e.constMu.Lock()
	found, cached := e.constSeen[key]
	e.constMu.Unlock()
	if cached {
		return found
	}
	found = false
	if rel := e.part.shards[ShardOf(s, len(e.engs))].Relation(pid); rel != nil {
		for i := range rel.S {
			if rel.S[i] == s && rel.O[i] == o {
				found = true
				break
			}
		}
	}
	e.constMu.Lock()
	if len(e.constSeen) >= constSeenCap {
		e.constSeen = map[store.Triple]bool{}
	}
	e.constSeen[key] = found
	e.constMu.Unlock()
	return found
}

// group is one root-covered unit of scatter-gather: the root node appears
// in the subject or object position of every pattern, so all of a
// solution's triples for these patterns colocate on the shard owning the
// root's binding.
type group struct {
	root query.Node
	pats []query.Pattern
}

// vars returns the group's variables in first-appearance order.
func (g group) vars() []string {
	return (&query.BGP{Patterns: g.pats}).Vars()
}

// nodeKey identifies a node for grouping: variables by name, constants by
// their canonical term key.
func nodeKey(n query.Node) string {
	if n.IsVar {
		return "?" + n.Var
	}
	return n.Term.Key()
}

// decompose greedily covers the patterns with root groups: repeatedly pick
// the node (variable or constant, in subject/object position only —
// replication does not index by predicate) contained in the most remaining
// patterns, and emit those patterns as one group. Ties break towards first
// appearance, so α-equivalent queries decompose identically. Subject stars
// and object-subject chains come out as one group; the triangle query
// decomposes into two.
func decompose(pats []query.Pattern) []group {
	used := make([]bool, len(pats))
	remaining := len(pats)
	var groups []group
	for remaining > 0 {
		type cand struct {
			node  query.Node
			cover []int
		}
		seen := map[string]int{}
		var cands []cand
		for i, p := range pats {
			if used[i] {
				continue
			}
			for _, nd := range []query.Node{p.S, p.O} {
				k := nodeKey(nd)
				ci, ok := seen[k]
				if !ok {
					ci = len(cands)
					seen[k] = ci
					cands = append(cands, cand{node: nd})
				}
				// Guard against counting a pattern twice when S == O.
				if cov := cands[ci].cover; len(cov) == 0 || cov[len(cov)-1] != i {
					cands[ci].cover = append(cands[ci].cover, i)
				}
			}
		}
		best := cands[0]
		for _, c := range cands[1:] {
			if len(c.cover) > len(best.cover) {
				best = c
			}
		}
		g := group{root: best.node}
		for _, i := range best.cover {
			g.pats = append(g.pats, pats[i])
			used[i] = true
		}
		remaining -= len(best.cover)
		groups = append(groups, g)
	}
	return groups
}

// counting wraps a shard-local cursor so its rows feed the drain-balance
// counters.
func (e *Engine) counting(shard int, c engine.Cursor, err error) (engine.Cursor, error) {
	if err != nil {
		return nil, err
	}
	return &countCursor{Cursor: c, part: e.part, shard: shard}, nil
}

type countCursor struct {
	engine.Cursor
	part  *Partitioned
	shard int
}

func (c *countCursor) Next() ([]uint32, error) {
	row, err := c.Cursor.Next()
	if err == nil {
		c.part.delivered[c.shard].Add(1)
	}
	return row, err
}

// openSingle executes a query fully covered by one root group.
func (e *Engine) openSingle(q *query.BGP, g group, opts engine.ExecOpts) (engine.Cursor, error) {
	n := len(e.engs)
	if !g.root.IsVar {
		// Constant root: every solution's triples contain it, so its owner
		// shard alone answers the query — route instead of scattering, and
		// pass caps straight through (no filtering happens above it).
		id, ok := e.part.dict.Lookup(g.root.Term)
		if !ok {
			return emptyCursor{vars: q.Select}, nil
		}
		sh := ShardOf(id, n)
		sub := &query.BGP{Select: q.Select, Distinct: q.Distinct, Patterns: g.pats}
		cur, err := e.engs[sh].Open(sub, opts)
		return e.counting(sh, cur, err)
	}

	// Variable root: scatter to every shard. The sub-query projects the
	// root (appended when the caller did not select it) so the merge layer
	// can apply the ownership filter; appending a variable to a
	// non-DISTINCT projection never changes the multiset (projection does
	// not deduplicate), and under DISTINCT the merge dedups the stripped
	// rows anyway.
	sel := q.Select
	rootIdx := -1
	for i, v := range sel {
		if v == g.root.Var {
			rootIdx = i
			break
		}
	}
	strip := false
	if rootIdx < 0 {
		sel = append(append(make([]string, 0, len(q.Select)+1), q.Select...), g.root.Var)
		rootIdx = len(sel) - 1
		strip = true
	}
	sub := &query.BGP{Select: sel, Distinct: q.Distinct, Patterns: g.pats}

	// Per-shard row-cap hint: after the ownership filter each shard can
	// contribute at most Offset+MaxRows rows to the final result, plus one
	// so the merge-level cap's exactness probe can still find an overflow
	// row. Unsafe under DISTINCT (capped shard rows may collapse after the
	// root column is stripped), so no hint is pushed there.
	perShardCap := 0
	if opts.MaxRows > 0 && !q.Distinct {
		perShardCap = opts.Offset + opts.MaxRows + 1
	}

	opens := make([]openFunc, n)
	for i := range opens {
		eng := e.engs[i]
		opens[i] = func(sctx context.Context) (engine.Cursor, error) {
			return eng.Open(sub, engine.ExecOpts{Ctx: sctx, Workers: opts.Workers})
		}
	}
	keep := func(sh int, row []uint32) bool { return ShardOf(row[rootIdx], n) == sh }
	cur := gather(opts.Ctx, q.Select, opens, keep, strip, perShardCap, e.part)
	if q.Distinct {
		cur = newDedup(cur)
	}
	return engine.Limit(cur, opts.Offset, opts.MaxRows), nil
}

// openGroup opens the streaming cursor over one group's full solution set
// (all of the group's variables, no DISTINCT) — the building block of the
// merge-layer join. Group solutions are sets at full projection, so joining
// them reconstructs the whole query's solution set exactly.
func (e *Engine) openGroup(ctx context.Context, g group, vars []string, workers int) (engine.Cursor, error) {
	n := len(e.engs)
	sub := &query.BGP{Select: vars, Patterns: g.pats}
	if !g.root.IsVar {
		id, ok := e.part.dict.Lookup(g.root.Term)
		if !ok {
			return emptyCursor{vars: vars}, nil
		}
		sh := ShardOf(id, n)
		cur, err := e.engs[sh].Open(sub, engine.ExecOpts{Ctx: ctx, Workers: workers})
		return e.counting(sh, cur, err)
	}
	rootIdx := -1
	for i, v := range vars {
		if v == g.root.Var {
			rootIdx = i
			break
		}
	}
	opens := make([]openFunc, n)
	for i := range opens {
		eng := e.engs[i]
		opens[i] = func(sctx context.Context) (engine.Cursor, error) {
			return eng.Open(sub, engine.ExecOpts{Ctx: sctx, Workers: workers})
		}
	}
	keep := func(sh int, row []uint32) bool { return ShardOf(row[rootIdx], n) == sh }
	return gather(ctx, vars, opens, keep, false, 0, e.part), nil
}

// openJoin executes a query needing several root groups: group 0 (the
// largest by construction) streams as the probe side while the remaining
// groups are materialized into hash tables keyed on their join variables —
// a left-deep streaming hash join at the merge layer.
//
// Cost: like any hash join, the build sides are materialized — coordinator
// memory is O(sum of the non-probe groups' solution sets), paid before the
// first row regardless of MaxRows (caps bound only the probe/output side).
// Greedy decomposition keeps build groups small (they are the leftover,
// usually single-pattern groups, bounded by one predicate's relation), but
// a root-uncoverable query over a huge predicate still builds a big table —
// the same trade the pairwise engines make for their join intermediates.
// Streaming both sides would need a distributed semi-join phase; see the
// ROADMAP's shard-aware planning follow-up.
func (e *Engine) openJoin(q *query.BGP, groups []group, opts engine.ExecOpts) (engine.Cursor, error) {
	// buildPlan wires group i+1 into the left-deep join: which accumulated
	// columns form the join key, which of the group's columns match it, and
	// which group columns extend the accumulated row.
	type buildPlan struct {
		g        group
		vars     []string
		accKey   []int // join-key positions in the accumulated row
		rowKeyIx []int // join-key positions in the group's rows
		appendIx []int // group columns appended to the accumulated row
	}
	probeVars := groups[0].vars()
	acc := append([]string(nil), probeVars...)
	accPos := map[string]int{}
	for i, v := range acc {
		accPos[v] = i
	}
	plans := make([]buildPlan, 0, len(groups)-1)
	for _, g := range groups[1:] {
		bp := buildPlan{g: g, vars: g.vars()}
		for j, v := range bp.vars {
			if i, ok := accPos[v]; ok {
				bp.accKey = append(bp.accKey, i)
				bp.rowKeyIx = append(bp.rowKeyIx, j)
			} else {
				bp.appendIx = append(bp.appendIx, j)
				accPos[v] = len(acc)
				acc = append(acc, v)
			}
		}
		plans = append(plans, bp)
	}
	selIx := make([]int, len(q.Select))
	for i, v := range q.Select {
		selIx[i] = accPos[v]
	}

	raw := engine.NewGenerator(opts.Ctx, q.Select, func(gctx context.Context, emit func([]uint32) error) error {
		// Build phase: materialize every non-probe group. Cursors are
		// context-aware, so cancellation lands mid-build too.
		tabs := make([]map[string][][]uint32, len(plans))
		for i, bp := range plans {
			cur, err := e.openGroup(gctx, bp.g, bp.vars, opts.Workers)
			if err != nil {
				return err
			}
			tab := map[string][][]uint32{}
			for {
				row, err := cur.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					cur.Close()
					return err
				}
				k := rowKey(row, bp.rowKeyIx)
				tab[k] = append(tab[k], row)
			}
			cur.Close()
			tabs[i] = tab
		}

		probe, err := e.openGroup(gctx, groups[0], probeVars, opts.Workers)
		if err != nil {
			return err
		}
		defer probe.Close()

		var expand func(depth int, accRow []uint32) error
		expand = func(depth int, accRow []uint32) error {
			if depth == len(plans) {
				out := make([]uint32, len(selIx))
				for i, j := range selIx {
					out[i] = accRow[j]
				}
				return emit(out)
			}
			bp := plans[depth]
			for _, m := range tabs[depth][rowKey(accRow, bp.accKey)] {
				next := accRow
				if len(bp.appendIx) > 0 {
					next = make([]uint32, len(accRow), len(accRow)+len(bp.appendIx))
					copy(next, accRow)
					for _, j := range bp.appendIx {
						next = append(next, m[j])
					}
				}
				if err := expand(depth+1, next); err != nil {
					return err
				}
			}
			return nil
		}
		tick := engine.NewTicker(gctx)
		for {
			row, err := probe.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			if err := tick.Check(); err != nil {
				return err
			}
			if err := expand(0, row); err != nil {
				return err
			}
		}
	})
	cur := raw
	if q.Distinct {
		cur = newDedup(cur)
	}
	return engine.Limit(cur, opts.Offset, opts.MaxRows), nil
}

// rowKey encodes the selected columns of a row into a map key, using the
// repository-wide row-key encoding (engine.RowKey and friends).
func rowKey(row []uint32, idx []int) string {
	b := make([]byte, 0, len(idx)*4)
	for _, i := range idx {
		b = engine.AppendRowKeyCol(b, row[i])
	}
	return string(b)
}

// openFunc opens one shard's sub-query cursor under the merge's context.
type openFunc func(context.Context) (engine.Cursor, error)

// gatherBatch is how many rows a shard drain accumulates before handing
// them to the merge producer — per-row channel sends were measured as too
// expensive at this seam once before (see genBatchRows in
// internal/engine/cursor.go); the merge fan-in amortizes the same way.
const gatherBatch = 64

// gatherFlushMin is the smallest partial batch a drain flushes
// opportunistically (non-blocking, at power-of-two sizes), keeping
// first-row latency low for trickling shards without degenerating into
// per-row sends.
const gatherFlushMin = 8

// gatherBuf is the fan-in channel depth in batches: enough to keep shards
// busy while the producer re-batches, small enough that an abandoned merge
// strands O(shards · gatherBatch) rows.
const gatherBuf = 8

// gather is the scatter-gather merge cursor: it opens one cursor per shard
// concurrently (each under a shared child context), drains them into a
// fan-in channel, and streams the union in arrival order. keep, when
// non-nil, is the ownership filter (applied before strip and before the
// per-shard cap); strip drops the appended root column; perShardCap bounds
// the rows any one shard contributes (0 = unbounded). A failing shard
// cancels its siblings and surfaces its error; closing the merge cursor
// cancels every shard.
func gather(ctx context.Context, vars []string, opens []openFunc, keep func(shard int, row []uint32) bool, strip bool, perShardCap int, part *Partitioned) engine.Cursor {
	return engine.NewGenerator(ctx, vars, func(gctx context.Context, emit func([]uint32) error) error {
		sctx, scancel := context.WithCancel(gctx)
		defer scancel()
		rows := make(chan [][]uint32, gatherBuf)
		errs := make(chan error, len(opens))
		var wg sync.WaitGroup
		for i := range opens {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if err := drainShard(sctx, i, opens[i], keep, strip, perShardCap, part, rows); err != nil {
					errs <- err
					scancel() // fail fast: stop sibling shards
				}
			}(i)
		}
		go func() {
			wg.Wait()
			close(rows)
		}()
		for batch := range rows {
			for _, row := range batch {
				if err := emit(row); err != nil {
					scancel()
					for range rows { // unblock drainers until the channel closes
					}
					return err
				}
			}
		}
		select {
		case err := <-errs:
			return err
		default:
			// A drainer parked on a send can exit on cancellation without
			// seeing its cursor's context error; report the cause here.
			return gctx.Err()
		}
	})
}

// drainShard opens and drains one shard's cursor into the fan-in channel
// in batches, applying the ownership filter, root stripping, and the
// per-shard cap. Rows accumulated before a cursor error are still flushed
// (rows before an error stand, mirroring the generator's contract).
func drainShard(ctx context.Context, shard int, open openFunc, keep func(int, []uint32) bool, strip bool, perShardCap int, part *Partitioned, out chan<- [][]uint32) error {
	cur, err := open(ctx)
	if err != nil {
		return err
	}
	defer cur.Close()
	delivered := 0
	var batch [][]uint32
	// flush hands the batch over; non-blocking when block is false (the
	// batch is kept on a full channel). Returns false once ctx is done —
	// cancelled by a sibling's failure, the merge closing, or the caller's
	// context; the gather loop reports the cause.
	flush := func(block bool) bool {
		if len(batch) == 0 {
			return true
		}
		if block {
			select {
			case out <- batch:
			case <-ctx.Done():
				return false
			}
		} else {
			select {
			case out <- batch:
			default:
				return true // channel busy: keep accumulating
			}
		}
		if part != nil {
			part.delivered[shard].Add(int64(len(batch)))
		}
		delivered += len(batch)
		batch = nil
		return true
	}
	for {
		row, err := cur.Next()
		if err == io.EOF {
			flush(true)
			return nil
		}
		if err != nil {
			flush(true)
			return err
		}
		if keep != nil && !keep(shard, row) {
			continue
		}
		if strip {
			row = row[:len(row)-1]
		}
		batch = append(batch, row)
		if perShardCap > 0 && delivered+len(batch) >= perShardCap {
			flush(true)
			return nil
		}
		if n := len(batch); n >= gatherBatch {
			if !flush(true) {
				return nil
			}
		} else if n >= gatherFlushMin && n&(n-1) == 0 {
			flush(false)
		}
	}
}

// dedupCursor streams only the first occurrence of each row — the merge
// layer's DISTINCT: shards deduplicate locally, but rows replicated across
// shards (and rows collapsing once the root column is stripped) must dedup
// here.
type dedupCursor struct {
	inner engine.Cursor
	seen  map[string]struct{}
}

func newDedup(c engine.Cursor) engine.Cursor {
	return &dedupCursor{inner: c, seen: make(map[string]struct{})}
}

func (d *dedupCursor) Vars() []string { return d.inner.Vars() }

func (d *dedupCursor) Next() ([]uint32, error) {
	for {
		row, err := d.inner.Next()
		if err != nil {
			return nil, err
		}
		k := engine.RowKey(row)
		if _, dup := d.seen[k]; dup {
			continue
		}
		d.seen[k] = struct{}{}
		return row, nil
	}
}

func (d *dedupCursor) Truncated() bool { return d.inner.Truncated() }
func (d *dedupCursor) Close() error    { return d.inner.Close() }

// emptyCursor is the empty result (unknown constants, failed existence
// filters).
type emptyCursor struct{ vars []string }

func (c emptyCursor) Vars() []string          { return c.vars }
func (c emptyCursor) Next() ([]uint32, error) { return nil, io.EOF }
func (c emptyCursor) Truncated() bool         { return false }
func (c emptyCursor) Close() error            { return nil }
