package shard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/store"
)

// Engine executes queries by scatter-gather over the shards of a
// Partitioned dataset. It implements the repository-wide engine.Engine
// contract — Open(q, ExecOpts) → Cursor — by compiling each query into a
// cached scatter plan (root-group decomposition, statistics-pruned shard
// targets, probe-side choice; see qplan.go), opening one cursor per
// surviving shard concurrently, and streaming their merged rows:
// cancellation, DISTINCT deduplication, Offset, and the exact MaxRows cap
// are all enforced once at the merge cursor, with row caps propagated down
// to the shard drains as per-shard hints.
type Engine struct {
	part *Partitioned
	base string
	engs []engine.Engine

	// constSeen memoizes fully-constant-pattern existence checks: the
	// partition is immutable, and the check otherwise scans one predicate's
	// relation per compile. Capped at constSeenCap entries (one arbitrary
	// entry evicted when full) so an adversarial stream of distinct constant
	// patterns cannot grow server memory without bound.
	constMu   sync.Mutex
	constSeen map[store.Triple]bool

	// qplans caches compiled scatter plans per query pointer (see planFor);
	// the server's plan cache interns normalized queries to stable pointers,
	// so repeated requests hit here and skip all per-shard planning.
	planMu sync.Mutex
	qplans map[*query.BGP]*queryPlan

	// noPrune disables statistics pruning — the property-test oracle proving
	// pruned and unpruned scatter agree. Never set in production paths.
	noPrune bool

	// remote, when set, routes every per-shard sub-query open across the
	// process boundary (see remote.go). Planning still runs locally against
	// the partition's statistics; only execution fans out.
	remote RemoteOpener
}

// constSeenCap bounds the existence-check memo. Eviction is one arbitrary
// entry per insert (map iteration order), not a wholesale reset: dropping
// the full map made every memoized constant pattern rescan its relation at
// once — a periodic thundering herd under an adversarial constant stream.
const constSeenCap = 1 << 14

// NewEngine builds one instance of a base engine over every shard of p
// (via build, typically the engine registry) and returns the scatter-gather
// wrapper. Construction cost is the base engine's, once per shard — over
// smaller inputs, so eager index builds (rdf3x's six permutation sorts)
// also parallelize across shards in wall-clock terms when the caller
// shards a large dataset. Passing the "auto" engine gives every shard its
// own cost-model router, so each shard picks its plan class from its own
// statistics.
func NewEngine(p *Partitioned, name string, build func(*store.Store) (engine.Engine, error)) (*Engine, error) {
	engs := make([]engine.Engine, p.NumShards())
	for i := range engs {
		e, err := build(p.Shard(i))
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		engs[i] = e
	}
	return &Engine{
		part:      p,
		base:      name,
		engs:      engs,
		constSeen: map[store.Triple]bool{},
		qplans:    map[*query.BGP]*queryPlan{},
	}, nil
}

// Name identifies the engine and its shard count in benchmark output.
func (e *Engine) Name() string {
	return e.base + "[shards=" + strconv.Itoa(len(e.engs)) + "]"
}

// ShardEngine returns shard i's engine instance (every shard runs the same
// engine type). Callers use it to inspect the underlying engine's
// capabilities — e.g. whether it honours ExecOpts.Workers, which the
// wrapper forwards to every shard.
func (e *Engine) ShardEngine(i int) engine.Engine { return e.engs[i] }

// Open starts the sharded execution of q under its cached scatter plan. A
// single root-covered group scatters to the plan's surviving shards and
// streams the merged union; multiple groups additionally join their
// streams at the merge layer.
func (e *Engine) Open(q *query.BGP, opts engine.ExecOpts) (engine.Cursor, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Err(); err != nil {
		return nil, err
	}
	if len(e.engs) == 1 {
		// One shard is the whole dataset: pass straight through.
		if e.remote != nil {
			cur, err := e.openShard(opts.Ctx, 0, q, RemoteHints{Owner: -1, SinglePattern: len(q.Patterns) == 1})
			if err != nil {
				return nil, err
			}
			cur, err = e.counting(0, cur, err)
			if err != nil {
				return nil, err
			}
			return engine.Limit(cur, opts.Offset, opts.MaxRows), nil
		}
		cur, err := e.engs[0].Open(q, opts)
		return e.counting(0, cur, err)
	}
	qp := e.planFor(q)
	if sp := obs.SpanFrom(opts.Ctx); sp != nil && qp.explain != nil {
		// Annotate the caller's execution span with the scatter shape: the
		// trace's "which shards did this query touch, which did statistics
		// skip" answer. Untraced queries skip this block on the nil check.
		sp.SetAttr("scatter_plan", qp.explain.Kind)
		sp.SetAttr("shards_total", qp.explain.Shards)
		sp.SetAttr("target_shards", qp.explain.TargetShards())
		sp.SetAttr("pruned_shards", qp.explain.PrunedShards())
		sp.SetAttr("groups", len(qp.explain.Groups))
	}
	if qp.empty {
		return emptyCursor{vars: q.Select}, nil
	}
	if qp.single != nil {
		return e.openSingle(qp.single, opts)
	}
	return e.openJoin(q, qp.join, opts)
}

// splitConstant separates fully-constant patterns (no variables anywhere)
// from the rest and verifies each against the data. A constant pattern is a
// pure existence filter: if it fails, the whole query is empty (ok ==
// false); if it holds it constrains nothing further.
func (e *Engine) splitConstant(pats []query.Pattern) (rest []query.Pattern, ok bool) {
	for _, p := range pats {
		if p.S.IsVar || p.P.IsVar || p.O.IsVar {
			rest = append(rest, p)
			continue
		}
		if !e.hasTriple(p) {
			return nil, false
		}
	}
	return rest, true
}

// hasTriple reports whether the fully-constant pattern's triple exists. The
// subject's owner shard holds it if anyone does. The relation scan runs at
// most once per distinct constant triple (results are memoized — the
// partition is immutable).
func (e *Engine) hasTriple(p query.Pattern) bool {
	d := e.part.dict
	s, ok := d.Lookup(p.S.Term)
	if !ok {
		return false
	}
	pid, ok := d.Lookup(p.P.Term)
	if !ok {
		return false
	}
	o, ok := d.Lookup(p.O.Term)
	if !ok {
		return false
	}
	key := store.Triple{S: s, P: pid, O: o}
	e.constMu.Lock()
	found, cached := e.constSeen[key]
	e.constMu.Unlock()
	if cached {
		return found
	}
	found = false
	if rel := e.part.shards[ShardOf(s, len(e.engs))].Relation(pid); rel != nil {
		for i := range rel.S {
			if rel.S[i] == s && rel.O[i] == o {
				found = true
				break
			}
		}
	}
	e.constMu.Lock()
	if len(e.constSeen) >= constSeenCap {
		// Evict one arbitrary entry. A full reset here would forget every
		// memoized pattern at once and rescan them all on their next
		// appearance; single-entry eviction caps the damage at one rescan
		// per newly inserted pattern.
		for k := range e.constSeen {
			delete(e.constSeen, k)
			break
		}
	}
	e.constSeen[key] = found
	e.constMu.Unlock()
	return found
}

// group is one root-covered unit of scatter-gather: the root node appears
// in the subject or object position of every pattern, so all of a
// solution's triples for these patterns colocate on the shard owning the
// root's binding.
type group struct {
	root query.Node
	pats []query.Pattern
}

// vars returns the group's variables in first-appearance order.
func (g group) vars() []string {
	return (&query.BGP{Patterns: g.pats}).Vars()
}

// nodeKey identifies a node for grouping: variables by name, constants by
// their canonical term key.
func nodeKey(n query.Node) string {
	if n.IsVar {
		return "?" + n.Var
	}
	return n.Term.Key()
}

// decompose greedily covers the patterns with root groups: repeatedly pick
// the node (variable or constant, in subject/object position only —
// replication does not index by predicate) contained in the most remaining
// patterns, and emit those patterns as one group. Ties break towards first
// appearance, so α-equivalent queries decompose identically. Subject stars
// and object-subject chains come out as one group; the triangle query
// decomposes into two.
func decompose(pats []query.Pattern) []group {
	used := make([]bool, len(pats))
	remaining := len(pats)
	var groups []group
	for remaining > 0 {
		type cand struct {
			node  query.Node
			cover []int
		}
		seen := map[string]int{}
		var cands []cand
		for i, p := range pats {
			if used[i] {
				continue
			}
			for _, nd := range []query.Node{p.S, p.O} {
				k := nodeKey(nd)
				ci, ok := seen[k]
				if !ok {
					ci = len(cands)
					seen[k] = ci
					cands = append(cands, cand{node: nd})
				}
				// Guard against counting a pattern twice when S == O.
				if cov := cands[ci].cover; len(cov) == 0 || cov[len(cov)-1] != i {
					cands[ci].cover = append(cands[ci].cover, i)
				}
			}
		}
		best := cands[0]
		for _, c := range cands[1:] {
			if len(c.cover) > len(best.cover) {
				best = c
			}
		}
		g := group{root: best.node}
		for _, i := range best.cover {
			g.pats = append(g.pats, pats[i])
			used[i] = true
		}
		remaining -= len(best.cover)
		groups = append(groups, g)
	}
	return groups
}

// counting wraps a shard-local cursor so its rows feed the drain-balance
// counters.
func (e *Engine) counting(shard int, c engine.Cursor, err error) (engine.Cursor, error) {
	if err != nil {
		return nil, err
	}
	return &countCursor{Cursor: c, part: e.part, shard: shard}, nil
}

type countCursor struct {
	engine.Cursor
	part  *Partitioned
	shard int
}

func (c *countCursor) Next() ([]uint32, error) {
	row, err := c.Cursor.Next()
	if err == nil {
		c.part.delivered[c.shard].Add(1)
	}
	return row, err
}

// openSingle executes a query fully covered by one root group, per its
// compiled plan.
func (e *Engine) openSingle(sp *singlePlan, opts engine.ExecOpts) (engine.Cursor, error) {
	if sp.constant {
		// Constant root: every solution's triples contain it, so its owner
		// shard alone answers the query — route instead of scattering, and
		// pass caps straight through (no filtering happens above it).
		sh := sp.shards[0]
		if e.remote != nil {
			// Remote route: push the cap hint down (unsafe under DISTINCT)
			// and apply Offset/MaxRows exactly at the coordinator.
			capHint := 0
			if opts.MaxRows > 0 && !sp.sub.Distinct {
				capHint = opts.Offset + opts.MaxRows + 1
			}
			cur, err := e.openShard(opts.Ctx, sh, sp.sub, RemoteHints{
				Owner: -1, Cap: capHint, SinglePattern: len(sp.sub.Patterns) == 1,
			})
			if err != nil {
				return nil, err
			}
			cur, err = e.counting(sh, cur, err)
			if err != nil {
				return nil, err
			}
			return engine.Limit(cur, opts.Offset, opts.MaxRows), nil
		}
		cur, err := e.engs[sh].Open(sp.sub, opts)
		return e.counting(sh, cur, err)
	}

	n := len(e.engs)
	outVars := sp.sub.Select
	if sp.strip {
		outVars = sp.sub.Select[:len(sp.sub.Select)-1]
	}

	// Per-shard row-cap hint: after the ownership filter each shard can
	// contribute at most Offset+MaxRows rows to the final result, plus one
	// so the merge-level cap's exactness probe can still find an overflow
	// row. Unsafe under DISTINCT (capped shard rows may collapse after the
	// root column is stripped), so no hint is pushed there.
	perShardCap := 0
	if opts.MaxRows > 0 && !sp.sub.Distinct {
		perShardCap = opts.Offset + opts.MaxRows + 1
	}

	keep := func(sh int, row []uint32) bool { return ShardOf(row[sp.rootIdx], n) == sh }
	var cur engine.Cursor
	if len(sp.shards) == 1 {
		// One surviving shard: filter in place, no fan-in goroutines.
		sh := sp.shards[0]
		inner, err := e.openShard(opts.Ctx, sh, sp.sub, e.drainHints(sh, sp.sub, sp.rootIdx, perShardCap, opts.Workers))
		if err != nil {
			return nil, err
		}
		cur = newFilter(inner, outVars, sh, keep, sp.strip, perShardCap, e.part, drainSpan(opts.Ctx, sh, true))
	} else {
		cur = e.gather(opts.Ctx, outVars, sp.sub, sp.shards, keep, sp.strip, perShardCap, sp.rootIdx, opts.Workers)
	}
	if sp.sub.Distinct {
		cur = newDedup(cur)
	}
	return engine.Limit(cur, opts.Offset, opts.MaxRows), nil
}

// openGroup opens the streaming cursor over one group's full solution set
// (all of the group's variables, no DISTINCT) — the building block of the
// merge-layer join. Group solutions are sets at full projection, so joining
// them reconstructs the whole query's solution set exactly.
func (e *Engine) openGroup(ctx context.Context, gp groupPlan, workers int) (engine.Cursor, error) {
	n := len(e.engs)
	if gp.rootIdx < 0 {
		// Constant root: the owner shard alone answers the group.
		sh := gp.shards[0]
		cur, err := e.openShard(ctx, sh, gp.sub, RemoteHints{Owner: -1, Workers: workers, SinglePattern: len(gp.sub.Patterns) == 1})
		return e.counting(sh, cur, err)
	}
	keep := func(sh int, row []uint32) bool { return ShardOf(row[gp.rootIdx], n) == sh }
	if len(gp.shards) == 1 {
		sh := gp.shards[0]
		inner, err := e.openShard(ctx, sh, gp.sub, e.drainHints(sh, gp.sub, gp.rootIdx, 0, workers))
		if err != nil {
			return nil, err
		}
		return newFilter(inner, gp.vars, sh, keep, false, 0, e.part, drainSpan(ctx, sh, true)), nil
	}
	return e.gather(ctx, gp.vars, gp.sub, gp.shards, keep, false, 0, gp.rootIdx, workers), nil
}

// errJoinCap stops the join producer once the merge-level cap (plus its
// exactness probe row) is satisfied — the per-shard row-cap hint of the
// multi-group path. The signal is an early clean EOF, not an error.
var errJoinCap = errors.New("shard: join output cap reached")

// openJoin executes a query needing several root groups: the plan's probe
// group (largest estimated solution set) streams while the remaining
// groups are materialized into hash tables keyed on their join variables —
// a left-deep streaming hash join at the merge layer.
//
// Cost: like any hash join, the build sides are materialized — coordinator
// memory is O(sum of the non-probe groups' solution sets), paid before the
// first row regardless of MaxRows (caps bound only the probe/output side).
// Greedy decomposition keeps build groups small (they are the leftover,
// usually single-pattern groups, bounded by one predicate's relation), but
// a root-uncoverable query over a huge predicate still builds a big table —
// the same trade the pairwise engines make for their join intermediates.
// Streaming both sides would need a distributed semi-join phase; see the
// ROADMAP's shard-aware planning follow-up.
func (e *Engine) openJoin(q *query.BGP, jp *joinPlan, opts engine.ExecOpts) (engine.Cursor, error) {
	// Output cap: the merge-level Limit stops at Offset+MaxRows plus one
	// exactness-probe row, so the producer — and through its context every
	// shard drain under it — can stop as soon as that many rows exist.
	// Unsafe under DISTINCT (deduplication may collapse capped rows).
	capRows := 0
	if opts.MaxRows > 0 && !q.Distinct {
		capRows = opts.Offset + opts.MaxRows + 1
	}

	raw := engine.NewGenerator(opts.Ctx, q.Select, func(gctx context.Context, emit func([]uint32) error) error {
		// Build phase: materialize every non-probe group, each on its own
		// goroutine — the groups' scatter work is independent, so running
		// them back to back would serialize exactly the per-shard execution
		// the scatter exists to parallelize. The probe stream opens alongside
		// them and buffers into its drain batches while the tables build.
		// Cursors are context-aware, so cancellation lands mid-build too;
		// a failing build cancels its siblings through bctx.
		bctx, bcancel := context.WithCancel(gctx)
		defer bcancel()
		// Probe and build phases get their own child spans; the per-shard
		// drain spans under them attach through the context. All span calls
		// no-op (nil) for untraced queries.
		parent := obs.SpanFrom(gctx)
		psp := parent.Child("probe_group")
		defer psp.End()
		probe, err := e.openGroup(obs.WithSpan(bctx, psp), jp.groups[0], opts.Workers)
		if err != nil {
			return err
		}
		defer probe.Close()

		tabs := jp.cachedTabs()
		if tabs == nil {
			bsp := parent.Child("build_groups")
			bcctx := obs.WithSpan(bctx, bsp)
			tabs = make([]buildTable, len(jp.builds))
			errs := make([]error, len(jp.builds))
			var bwg sync.WaitGroup
			for i := range jp.builds {
				bwg.Add(1)
				go func(i int) {
					defer bwg.Done()
					w := jp.builds[i]
					cur, err := e.openGroup(bcctx, jp.groups[i+1], opts.Workers)
					if err != nil {
						errs[i] = err
						bcancel()
						return
					}
					defer cur.Close()
					tab := newBuildTable(len(w.rowKeyIx))
					for {
						row, err := cur.Next()
						if err == io.EOF {
							break
						}
						if err != nil {
							errs[i] = err
							bcancel()
							return
						}
						tab.add(w.rowKeyIx, row)
					}
					tabs[i] = tab
				}(i)
			}
			bwg.Wait()
			bsp.End()
			for _, err := range errs {
				if err != nil {
					return err
				}
			}
			jp.storeTabs(tabs)
		} else {
			parent.SetAttr("build_cached", true)
		}

		emitted := 0
		var expand func(depth int, accRow []uint32) error
		expand = func(depth int, accRow []uint32) error {
			if depth == len(jp.builds) {
				out := make([]uint32, len(jp.selIx))
				for i, j := range jp.selIx {
					out[i] = accRow[j]
				}
				if err := emit(out); err != nil {
					return err
				}
				emitted++
				if capRows > 0 && emitted >= capRows {
					return errJoinCap
				}
				return nil
			}
			w := jp.builds[depth]
			for _, m := range tabs[depth].lookup(accRow, w.accKey) {
				next := accRow
				if len(w.appendIx) > 0 {
					next = make([]uint32, len(accRow), len(accRow)+len(w.appendIx))
					copy(next, accRow)
					for _, j := range w.appendIx {
						next = append(next, m[j])
					}
				}
				if err := expand(depth+1, next); err != nil {
					return err
				}
			}
			return nil
		}
		tick := engine.NewTicker(gctx)
		for {
			row, err := probe.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			if err := tick.Check(); err != nil {
				return err
			}
			if err := expand(0, row); err != nil {
				if err == errJoinCap {
					// Cap satisfied: stop cleanly; probe.Close (deferred)
					// cancels the shard drains under the probe stream.
					return nil
				}
				return err
			}
		}
	})
	cur := raw
	if q.Distinct {
		cur = newDedup(cur)
	}
	return engine.Limit(cur, opts.Offset, opts.MaxRows), nil
}

// rowKey encodes the selected columns of a row into a map key, using the
// repository-wide row-key encoding (engine.RowKey and friends).
func rowKey(row []uint32, idx []int) string {
	b := make([]byte, 0, len(idx)*4)
	for _, i := range idx {
		b = engine.AppendRowKeyCol(b, row[i])
	}
	return string(b)
}

// dedupCursor streams only the first occurrence of each row — the merge
// layer's DISTINCT: shards deduplicate locally, but rows replicated across
// shards (and rows collapsing once the root column is stripped) must dedup
// here.
type dedupCursor struct {
	inner engine.Cursor
	seen  map[string]struct{}
}

func newDedup(c engine.Cursor) engine.Cursor {
	return &dedupCursor{inner: c, seen: make(map[string]struct{})}
}

func (d *dedupCursor) Vars() []string { return d.inner.Vars() }

func (d *dedupCursor) Next() ([]uint32, error) {
	for {
		row, err := d.inner.Next()
		if err != nil {
			return nil, err
		}
		k := engine.RowKey(row)
		if _, dup := d.seen[k]; dup {
			continue
		}
		d.seen[k] = struct{}{}
		return row, nil
	}
}

func (d *dedupCursor) Truncated() bool { return d.inner.Truncated() }
func (d *dedupCursor) Close() error    { return d.inner.Close() }

// emptyCursor is the empty result (unknown constants, failed existence
// filters, all scatter targets pruned).
type emptyCursor struct{ vars []string }

func (c emptyCursor) Vars() []string          { return c.vars }
func (c emptyCursor) Next() ([]uint32, error) { return nil, io.EOF }
func (c emptyCursor) Truncated() bool         { return false }
func (c emptyCursor) Close() error            { return nil }
