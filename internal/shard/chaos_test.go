package shard

// Race and chaos tests for the scatter-gather merge cursor, with fault
// injection at the shard-cursor seam: one shard artificially slow, one
// failing mid-stream. The whole package runs under -race in CI, so the
// drain machinery's synchronization is exercised here too.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
)

// engineCursor shortens the fault-injected open signatures below.
type engineCursor = engine.Cursor

// fakeCursor is a scripted shard cursor: emits total rows, optionally
// sleeping per row, optionally failing after failAfter rows. It honours its
// context like a real engine cursor and records whether it was closed.
type fakeCursor struct {
	ctx       context.Context
	total     int
	perRow    time.Duration
	failAfter int // -1: never fail
	emitted   int
	closed    atomic.Bool
}

var errBoom = errors.New("shard blew up mid-stream")

func (c *fakeCursor) Vars() []string { return []string{"x"} }

func (c *fakeCursor) Next() ([]uint32, error) {
	if err := c.ctx.Err(); err != nil {
		return nil, err
	}
	if c.failAfter >= 0 && c.emitted >= c.failAfter {
		return nil, errBoom
	}
	if c.emitted >= c.total {
		return nil, io.EOF
	}
	if c.perRow > 0 {
		select {
		case <-time.After(c.perRow):
		case <-c.ctx.Done():
			return nil, c.ctx.Err()
		}
	}
	c.emitted++
	return []uint32{uint32(c.emitted)}, nil
}

func (c *fakeCursor) Truncated() bool { return false }
func (c *fakeCursor) Close() error    { c.closed.Store(true); return nil }

// waitGoroutines polls until the goroutine count drops back to at most
// base, failing after a deadline. A small tolerance covers runtime
// background goroutines that may start during the test.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMergeCursorShardFailure: with one slow shard and one failing
// mid-stream, the merge cursor surfaces the failure, cancels the sibling
// shards, closes every shard cursor, and leaks no goroutines.
func TestMergeCursorShardFailure(t *testing.T) {
	base := runtime.NumGoroutine()
	var cursors [3]*fakeCursor
	var slowCtx atomic.Value // context.Context of the slow shard
	opens := []openFunc{
		func(ctx context.Context) (engineCursor, error) { // healthy, finite
			cursors[0] = &fakeCursor{ctx: ctx, total: 100, failAfter: -1}
			return cursors[0], nil
		},
		func(ctx context.Context) (engineCursor, error) { // artificially slow
			cursors[1] = &fakeCursor{ctx: ctx, total: 100000, perRow: 2 * time.Millisecond, failAfter: -1}
			slowCtx.Store(ctx)
			return cursors[1], nil
		},
		func(ctx context.Context) (engineCursor, error) { // fails mid-stream
			cursors[2] = &fakeCursor{ctx: ctx, total: 100, failAfter: 2}
			return cursors[2], nil
		},
	}
	cur := gather(context.Background(), []string{"x"}, nil, opens, nil, false, 0, nil)
	var err error
	rows := 0
	for {
		_, err = cur.Next()
		if err != nil {
			break
		}
		rows++
		if rows > 1000 {
			t.Fatal("merge cursor kept streaming long after a shard failed")
		}
	}
	if !errors.Is(err, errBoom) {
		t.Fatalf("merge error = %v, want %v", err, errBoom)
	}
	cur.Close()

	// Sibling cancellation: the slow shard's context must be done.
	ctx := slowCtx.Load().(context.Context)
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("slow sibling shard was not cancelled after the failure")
	}
	waitGoroutines(t, base)
	for i, c := range cursors {
		if c != nil && !c.closed.Load() {
			t.Fatalf("shard cursor %d was never closed", i)
		}
	}
}

// TestMergeCursorEarlyCloseUnderLoad: closing the merge cursor while every
// shard is still streaming cancels them all and leaks no goroutines.
func TestMergeCursorEarlyCloseUnderLoad(t *testing.T) {
	base := runtime.NumGoroutine()
	const shards = 8
	opens := make([]openFunc, shards)
	var cursors [shards]*fakeCursor
	for i := 0; i < shards; i++ {
		opens[i] = func(ctx context.Context) (engineCursor, error) {
			c := &fakeCursor{ctx: ctx, total: 1 << 30, failAfter: -1}
			cursors[i] = c
			return c, nil
		}
	}
	cur := gather(context.Background(), []string{"x"}, nil, opens, nil, false, 0, nil)
	for i := 0; i < 50; i++ {
		if _, err := cur.Next(); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); err != io.EOF {
		t.Fatalf("Next after Close = %v, want io.EOF", err)
	}
	waitGoroutines(t, base)
	for i, c := range cursors {
		if c != nil && !c.closed.Load() {
			t.Fatalf("shard cursor %d was never closed", i)
		}
	}
}

// TestMergeCursorOpenFailure: a shard whose Open itself fails (planning
// error) surfaces like a mid-stream failure and cancels siblings.
func TestMergeCursorOpenFailure(t *testing.T) {
	base := runtime.NumGoroutine()
	errOpen := fmt.Errorf("shard 1 failed to open")
	opens := []openFunc{
		func(ctx context.Context) (engineCursor, error) {
			return &fakeCursor{ctx: ctx, total: 1 << 30, failAfter: -1}, nil
		},
		func(ctx context.Context) (engineCursor, error) { return nil, errOpen },
	}
	cur := gather(context.Background(), []string{"x"}, nil, opens, nil, false, 0, nil)
	var err error
	for {
		if _, err = cur.Next(); err != nil {
			break
		}
	}
	if !errors.Is(err, errOpen) {
		t.Fatalf("merge error = %v, want %v", err, errOpen)
	}
	cur.Close()
	waitGoroutines(t, base)
}

// TestMergeCursorCallerCancel: cancelling the caller's context mid-drain
// surfaces context.Canceled and winds everything down.
func TestMergeCursorCallerCancel(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	opens := []openFunc{
		func(c context.Context) (engineCursor, error) {
			return &fakeCursor{ctx: c, total: 1 << 30, failAfter: -1}, nil
		},
		func(c context.Context) (engineCursor, error) {
			return &fakeCursor{ctx: c, total: 1 << 30, failAfter: -1}, nil
		},
	}
	cur := gather(ctx, []string{"x"}, nil, opens, nil, false, 0, nil)
	for i := 0; i < 20; i++ {
		if _, err := cur.Next(); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
	}
	cancel()
	var err error
	for {
		if _, err = cur.Next(); err != nil {
			break
		}
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("merge error = %v, want context.Canceled", err)
	}
	cur.Close()
	waitGoroutines(t, base)
}
