package shard

import (
	"sort"

	"repro/internal/query"
)

// explain.go is the EXPLAIN surface of the scatter planner: a serializable
// summary of the compiled plan — decomposition, per-group scatter targets
// and pruned shards, probe-side choice — built once at compile time and
// retained on the cached plan, so explaining a query costs one plan-cache
// lookup and never re-plans or executes anything.

// ExplainGroup describes one root-covered group of a scatter plan.
type ExplainGroup struct {
	// Root is the group's root node: "?name" for a variable, the term's
	// canonical rendering for a constant.
	Root string `json:"root"`
	// Patterns is how many of the query's patterns the group covers.
	Patterns int `json:"patterns"`
	// Shards lists the scatter targets that survived statistics pruning;
	// for a constant root it is exactly the owner shard.
	Shards []int `json:"shards"`
	// Pruned lists the scatter targets statistics proved empty. For a
	// constant root the only candidate is the owner shard (pruning it
	// proves the whole query empty).
	Pruned []int `json:"pruned"`
	// EstRows is the group's estimated solution cardinality summed over its
	// surviving shards — the probe-side choice signal.
	EstRows float64 `json:"est_rows"`
}

// ExplainPlan summarizes one compiled scatter plan.
type ExplainPlan struct {
	// Kind is the execution shape: "passthrough" (one shard holds the whole
	// dataset), "empty" (statically proven empty), "single" (one
	// root-covered group, scatter-gather), or "join" (multiple groups joined
	// at the merge layer).
	Kind string `json:"kind"`
	// Shards is the partition's total shard count.
	Shards int `json:"shards"`
	// Groups lists the root-covered groups in decomposition order.
	Groups []ExplainGroup `json:"groups,omitempty"`
	// Probe indexes Groups: the group chosen to stream as the probe side of
	// the merge join. Meaningful only for Kind "join".
	Probe int `json:"probe,omitempty"`
}

// TargetShards returns the union of the groups' surviving scatter targets,
// sorted.
func (p *ExplainPlan) TargetShards() []int { return unionShards(p.Groups, false) }

// PrunedShards returns the union of the groups' pruned targets, sorted. A
// shard appears here even if another group still targets it — the set
// answers "which (group, shard) sub-queries were skipped", collapsed to
// shard IDs.
func (p *ExplainPlan) PrunedShards() []int { return unionShards(p.Groups, true) }

func unionShards(groups []ExplainGroup, pruned bool) []int {
	seen := map[int]bool{}
	for _, g := range groups {
		src := g.Shards
		if pruned {
			src = g.Pruned
		}
		for _, sh := range src {
			seen[sh] = true
		}
	}
	out := make([]int, 0, len(seen))
	for sh := range seen {
		out = append(out, sh)
	}
	sort.Ints(out)
	return out
}

// Explain returns the compiled scatter plan's summary for q, planning (and
// caching the plan) on a cache miss. It never opens a cursor: the summary is
// assembled entirely at plan time.
func (e *Engine) Explain(q *query.BGP) (*ExplainPlan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(e.engs) == 1 {
		return &ExplainPlan{Kind: "passthrough", Shards: 1}, nil
	}
	return e.planFor(q).explain, nil
}
