package shard

// remote.go is the cross-process seam of scatter-gather: when a
// RemoteOpener is installed, every per-shard sub-query open routes through
// it instead of the in-process shard engine. The planner, ownership filter,
// merge fan-in, DISTINCT handling, and caps above this seam are unchanged —
// a remote cursor is just an engine.Cursor whose rows happen to cross the
// network — so the cluster coordinator (internal/cluster) reuses the entire
// scatter plan machinery and adds only transport, retries, and failover
// underneath it.

import (
	"context"

	"repro/internal/engine"
	"repro/internal/query"
)

// RemoteHints carries the per-drain execution hints the coordinator pushes
// down to a worker alongside the sub-query text.
type RemoteHints struct {
	// Owner, when >= 0, asks the worker to apply the ownership filter
	// before shipping: keep only rows whose root column hashes to shard
	// Owner. Moving the filter worker-side saves shipping rows the
	// coordinator would drop anyway; the coordinator's own keep filter
	// stays in place as an idempotent backstop.
	Owner int
	// RootIdx locates the root column in Sub.Select when Owner >= 0.
	RootIdx int
	// Cap bounds the kept rows the worker ships (0 = unbounded) — the
	// per-shard row-cap hint, counted after the ownership filter.
	Cap int
	// Workers is the sub-query's intra-shard parallelism hint. Remote
	// drains force 0: resume-on-retry needs a deterministic enumeration
	// order, which parallel shard-local execution does not guarantee.
	Workers int
	// SinglePattern marks a one-triple-pattern sub-query, whose rows are
	// individual triples — the precondition for answering from object-side
	// replicas when the owner shard is down past the retry budget.
	SinglePattern bool
}

// RemoteOpener opens one shard's sub-query on whatever process holds that
// shard. Implementations own transport, retries, hedging, and failover; the
// returned cursor must behave like any engine.Cursor (rows until io.EOF,
// Close idempotent and cancelling any in-flight work).
type RemoteOpener interface {
	OpenShard(ctx context.Context, shard int, sub *query.BGP, h RemoteHints) (engine.Cursor, error)
}

// SetRemote installs (or, with nil, removes) the remote opener. Call before
// serving; the engine does not synchronize the swap against in-flight opens.
func (e *Engine) SetRemote(r RemoteOpener) { e.remote = r }

// Remote reports the installed opener (nil when scatter is in-process).
func (e *Engine) Remote() RemoteOpener { return e.remote }

// drainHints builds the hints for an ownership-filtered shard drain.
func (e *Engine) drainHints(sh int, sub *query.BGP, rootIdx, perShardCap, workers int) RemoteHints {
	return RemoteHints{
		Owner:         sh,
		RootIdx:       rootIdx,
		Cap:           perShardCap,
		Workers:       workers,
		SinglePattern: len(sub.Patterns) == 1,
	}
}

// openShard opens one shard's sub-query through the remote seam when one is
// installed, else on the in-process shard engine.
func (e *Engine) openShard(ctx context.Context, sh int, sub *query.BGP, h RemoteHints) (engine.Cursor, error) {
	if e.remote != nil {
		return e.remote.OpenShard(ctx, sh, sub, h)
	}
	return e.engs[sh].Open(sub, engine.ExecOpts{Ctx: ctx, Workers: h.Workers})
}
