// Package dict implements the dictionary encoding step described in §II-A1
// of the paper: RDF terms of arbitrary type are mapped to dense 32-bit
// unsigned integer keys before any relation is built. All engines in this
// repository share one dictionary per dataset, so encoded ids are directly
// comparable across engines.
//
// Ids are assigned densely in first-registration order. Data generators and
// loaders that register terms grouped by entity class therefore produce
// id-clusters per class, which is what makes the bitset layout in
// internal/set effective (dense ranges of, say, all UndergraduateStudent
// ids).
package dict

import (
	"fmt"
	"sync"

	"repro/internal/rdf"
)

// ID is a dictionary-encoded term identifier. The paper's engines use 32-bit
// values; so do we.
type ID = uint32

// Dictionary maps rdf.Term values to dense uint32 ids and back.
//
// Ids are append-only: once assigned, an id's term never changes, so any id
// a reader obtained stays decodable forever. All methods are safe for
// concurrent use — the live-update write path (internal/live) encodes new
// terms while the immutable base keeps serving readers.
//
// The zero value is not usable; call New.
type Dictionary struct {
	mu    sync.RWMutex
	byKey map[string]ID
	terms []rdf.Term
}

// New returns an empty dictionary.
func New() *Dictionary {
	return &Dictionary{byKey: make(map[string]ID)}
}

// Encode returns the id for t, assigning the next dense id if t has not been
// seen before.
func (d *Dictionary) Encode(t rdf.Term) ID {
	key := t.Key()
	d.mu.RLock()
	id, ok := d.byKey[key]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.byKey[key]; ok {
		return id
	}
	id = ID(len(d.terms))
	d.byKey[key] = id
	d.terms = append(d.terms, t)
	return id
}

// EncodeTriple encodes all three positions of t.
func (d *Dictionary) EncodeTriple(t rdf.Triple) (s, p, o ID) {
	return d.Encode(t.S), d.Encode(t.P), d.Encode(t.O)
}

// Lookup returns the id for t without assigning a new one. The second result
// reports whether t was present.
func (d *Dictionary) Lookup(t rdf.Term) (ID, bool) {
	d.mu.RLock()
	id, ok := d.byKey[t.Key()]
	d.mu.RUnlock()
	return id, ok
}

// LookupIRI is shorthand for Lookup(rdf.NewIRI(iri)).
func (d *Dictionary) LookupIRI(iri string) (ID, bool) {
	return d.Lookup(rdf.NewIRI(iri))
}

// Decode returns the term for id. It panics if id was never assigned, which
// indicates corrupted engine state rather than bad user input.
func (d *Dictionary) Decode(id ID) rdf.Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) >= len(d.terms) {
		panic(fmt.Sprintf("dict: decode of unassigned id %d (size %d)", id, len(d.terms)))
	}
	return d.terms[id]
}

// Size returns the number of distinct terms registered.
func (d *Dictionary) Size() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms)
}

// Contains reports whether t has been assigned an id.
func (d *Dictionary) Contains(t rdf.Term) bool {
	d.mu.RLock()
	_, ok := d.byKey[t.Key()]
	d.mu.RUnlock()
	return ok
}
