package dict

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

func TestEncodeDense(t *testing.T) {
	d := New()
	a := d.Encode(rdf.NewIRI("http://a"))
	b := d.Encode(rdf.NewIRI("http://b"))
	c := d.Encode(rdf.NewLiteral("c"))
	if a != 0 || b != 1 || c != 2 {
		t.Errorf("ids not dense: %d %d %d", a, b, c)
	}
	if d.Size() != 3 {
		t.Errorf("Size = %d, want 3", d.Size())
	}
}

func TestEncodeIdempotent(t *testing.T) {
	d := New()
	term := rdf.NewIRI("http://x")
	first := d.Encode(term)
	for i := 0; i < 5; i++ {
		if got := d.Encode(term); got != first {
			t.Fatalf("Encode not stable: %d then %d", first, got)
		}
	}
	if d.Size() != 1 {
		t.Errorf("Size = %d, want 1", d.Size())
	}
}

func TestKindsDoNotCollide(t *testing.T) {
	d := New()
	iri := d.Encode(rdf.NewIRI("x"))
	lit := d.Encode(rdf.NewLiteral("x"))
	blk := d.Encode(rdf.NewBlank("x"))
	lang := d.Encode(rdf.NewLangLiteral("x", "en"))
	typed := d.Encode(rdf.NewTypedLiteral("x", "http://dt"))
	ids := []uint32{iri, lit, blk, lang, typed}
	seen := map[uint32]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("id collision among kinds: %v", ids)
		}
		seen[id] = true
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	d := New()
	terms := []rdf.Term{
		rdf.NewIRI("http://a"),
		rdf.NewLiteral("with \"quotes\""),
		rdf.NewLangLiteral("hi", "en"),
		rdf.NewBlank("b0"),
	}
	for _, term := range terms {
		id := d.Encode(term)
		if got := d.Decode(id); got != term {
			t.Errorf("Decode(Encode(%v)) = %v", term, got)
		}
	}
}

func TestLookup(t *testing.T) {
	d := New()
	term := rdf.NewIRI("http://present")
	id := d.Encode(term)
	if got, ok := d.Lookup(term); !ok || got != id {
		t.Errorf("Lookup(present) = %d,%v", got, ok)
	}
	if _, ok := d.Lookup(rdf.NewIRI("http://absent")); ok {
		t.Errorf("Lookup(absent) reported present")
	}
	if _, ok := d.LookupIRI("http://present"); !ok {
		t.Errorf("LookupIRI(present) reported absent")
	}
	if !d.Contains(term) || d.Contains(rdf.NewIRI("http://absent")) {
		t.Errorf("Contains wrong")
	}
}

func TestDecodePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Decode of unassigned id should panic")
		}
	}()
	New().Decode(7)
}

func TestEncodeTriple(t *testing.T) {
	d := New()
	tr := rdf.Triple{S: rdf.NewIRI("http://s"), P: rdf.NewIRI("http://p"), O: rdf.NewLiteral("o")}
	s, p, o := d.EncodeTriple(tr)
	if d.Decode(s) != tr.S || d.Decode(p) != tr.P || d.Decode(o) != tr.O {
		t.Errorf("EncodeTriple round trip failed: %d %d %d", s, p, o)
	}
}

// Property: for any sequence of strings, encoding assigns equal ids iff the
// terms are equal, and Decode inverts Encode.
func TestEncodeBijectionProperty(t *testing.T) {
	f := func(values []string) bool {
		d := New()
		ids := make([]uint32, len(values))
		for i, v := range values {
			ids[i] = d.Encode(rdf.NewLiteral(v))
		}
		for i := range values {
			for j := range values {
				if (values[i] == values[j]) != (ids[i] == ids[j]) {
					return false
				}
			}
			if d.Decode(ids[i]).Value != values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeNew(b *testing.B) {
	terms := make([]rdf.Term, 1<<16)
	for i := range terms {
		terms[i] = rdf.NewIRI(fmt.Sprintf("http://example.org/entity/%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := New()
		for _, tm := range terms {
			d.Encode(tm)
		}
	}
}

func BenchmarkEncodeExisting(b *testing.B) {
	d := New()
	terms := make([]rdf.Term, 1<<12)
	for i := range terms {
		terms[i] = rdf.NewIRI(fmt.Sprintf("http://example.org/entity/%d", i))
		d.Encode(terms[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Encode(terms[i&(len(terms)-1)])
	}
}
