// Package core implements the EmptyHeaded-style engine that is the paper's
// primary subject: trie storage over dictionary-encoded vertically
// partitioned relations, the generic worst-case optimal join, GHD query
// plans, and the three classic optimizations of §III (index layouts,
// selection pushdown within and across GHD nodes, and pipelining), each
// independently toggleable so the Table I ablations can be reproduced.
package core

import (
	"sync"

	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/set"
	"repro/internal/store"
)

// Options toggles the paper's optimizations (Table I columns).
type Options struct {
	// Layout enables the set layout optimizer (§III-A): bitsets for dense
	// sets, uint arrays otherwise. Disabled, every set is a uint array.
	Layout bool
	// AttributeReorder pushes selections down within GHD nodes (§III-B1).
	AttributeReorder bool
	// GHDPushdown pushes selections down across GHD nodes (§III-B2).
	GHDPushdown bool
	// Pipelining streams pipelineable root-child pairs (§III-C).
	Pipelining bool
	// Workers parallelizes the final enumeration over goroutines (the
	// paper's testbed ran 48 cores). Values <= 1 keep execution
	// sequential, which is the deterministic default used in benchmarks.
	Workers int
}

// AllOptimizations is the fully optimized configuration benchmarked as
// "EmptyHeaded" in Table II.
var AllOptimizations = Options{
	Layout:           true,
	AttributeReorder: true,
	GHDPushdown:      true,
	Pipelining:       true,
}

// NoOptimizations is the fully un-optimized worst-case optimal baseline.
var NoOptimizations = Options{}

// Engine is an EmptyHeaded-style worst-case optimal engine bound to a
// dataset.
type Engine struct {
	st   *store.Store
	opts Options
	name string

	mu    sync.Mutex
	plans map[*query.BGP]*plan.Plan
}

// New returns an engine over st with the given optimization configuration.
func New(st *store.Store, opts Options) *Engine {
	return &Engine{st: st, opts: opts, name: "emptyheaded", plans: map[*query.BGP]*plan.Plan{}}
}

// WithName overrides the engine's reported name (used when benchmarking
// several configurations side by side).
func (e *Engine) WithName(name string) *Engine {
	e.name = name
	return e
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return e.name }

// Options returns the engine's optimization configuration.
func (e *Engine) Options() Options { return e.opts }

// Policy returns the set layout policy implied by the Layout toggle. With
// layout optimization on, the engine now uses the statistics-driven adaptive
// rule (measured 1-in-128 crossover with a minimum-cardinality floor) rather
// than the paper's static 1-in-256 rule; the -layout ablation still degrades
// to uint-only.
func (e *Engine) Policy() set.Policy {
	if e.opts.Layout {
		return set.PolicyAdaptive
	}
	return set.PolicyUintOnly
}

// Plan compiles a query without executing it (used by the ghdviz tool and
// the planner tests).
func (e *Engine) Plan(q *query.BGP) (*plan.Plan, error) {
	return plan.Compile(q, e.st, plan.Options{
		Layout:           e.Policy(),
		AttributeReorder: e.opts.AttributeReorder,
		GHDPushdown:      e.opts.GHDPushdown,
		Pipelining:       e.opts.Pipelining,
	})
}

// Open implements engine.Engine: compile to a GHD plan (cached per parsed
// query, mirroring the paper's exclusion of EmptyHeaded's compilation time
// from measurements) and stream the bottom-up worst-case optimal pass plus
// the final enumeration through a cursor.
func (e *Engine) Open(q *query.BGP, opts engine.ExecOpts) (engine.Cursor, error) {
	e.mu.Lock()
	p, ok := e.plans[q]
	e.mu.Unlock()
	if !ok {
		var err error
		p, err = e.Plan(q)
		if err != nil {
			return nil, err
		}
		e.mu.Lock()
		e.plans[q] = p
		e.mu.Unlock()
	}
	return e.OpenPlan(p, opts)
}

// OpenPlan streams a plan previously compiled with Plan (or pulled from an
// external plan cache, as the query server does). The plan must have been
// compiled over this engine's store with its options. opts.Workers > 0
// overrides the engine's configured parallelism for this execution.
func (e *Engine) OpenPlan(p *plan.Plan, opts engine.ExecOpts) (engine.Cursor, error) {
	workers := e.opts.Workers
	if opts.Workers > 0 {
		workers = opts.Workers
	}
	return exec.Open(p, e.st, exec.Options{
		Policy:  e.Policy(),
		Workers: workers,
		Ctx:     opts.Ctx,
		MaxRows: opts.MaxRows,
		Offset:  opts.Offset,
	})
}

var _ engine.Engine = (*Engine)(nil)
