package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lubm"
	"repro/internal/query"
	"repro/internal/set"
	"repro/internal/store"
)

func lubmStore(t *testing.T) *store.Store {
	t.Helper()
	return store.FromTriples(lubm.Generate(lubm.Config{Universities: 1}))
}

func TestPolicyFollowsLayoutToggle(t *testing.T) {
	st := lubmStore(t)
	if core.New(st, core.AllOptimizations).Policy() != set.PolicyAdaptive {
		t.Errorf("Layout on should use PolicyAdaptive")
	}
	if core.New(st, core.NoOptimizations).Policy() != set.PolicyUintOnly {
		t.Errorf("Layout off should use PolicyUintOnly")
	}
}

func TestNameAndOptions(t *testing.T) {
	st := lubmStore(t)
	e := core.New(st, core.AllOptimizations)
	if e.Name() != "emptyheaded" {
		t.Errorf("Name = %q", e.Name())
	}
	if e.WithName("eh-v2").Name() != "eh-v2" {
		t.Errorf("WithName did not apply")
	}
	if !e.Options().Layout {
		t.Errorf("Options not preserved")
	}
}

func TestPlanCacheReusesPlans(t *testing.T) {
	st := lubmStore(t)
	e := core.New(st, core.AllOptimizations)
	q := query.MustParseSPARQL(lubm.Query(14, 1))
	r1, err := engine.Execute(e, q)
	if err != nil {
		t.Fatalf("first execute: %v", err)
	}
	r2, err := engine.Execute(e, q)
	if err != nil {
		t.Fatalf("second execute: %v", err)
	}
	if r1.Canonical() != r2.Canonical() {
		t.Errorf("cached plan returned different result")
	}
}

func TestAllTogglesProduceSameResults(t *testing.T) {
	st := lubmStore(t)
	q := query.MustParseSPARQL(lubm.Query(4, 1))
	var want string
	for mask := 0; mask < 16; mask++ {
		opts := core.Options{
			Layout:           mask&1 != 0,
			AttributeReorder: mask&2 != 0,
			GHDPushdown:      mask&4 != 0,
			Pipelining:       mask&8 != 0,
		}
		got, err := engine.Execute(core.New(st, opts), q)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if mask == 0 {
			want = got.Canonical()
			continue
		}
		if got.Canonical() != want {
			t.Errorf("opts %+v disagree with baseline", opts)
		}
	}
}

func TestPlanExposesDecomposition(t *testing.T) {
	st := lubmStore(t)
	e := core.New(st, core.AllOptimizations)
	p, err := e.Plan(query.MustParseSPARQL(lubm.Query(2, 1)))
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	if p.Decomposition == nil {
		t.Fatalf("plan has no decomposition")
	}
	if !strings.Contains(p.Decomposition.String(), "width=1.50") {
		t.Errorf("Q2 decomposition = %s", p.Decomposition)
	}
}

func TestParseErrorsPropagate(t *testing.T) {
	st := lubmStore(t)
	e := core.New(st, core.AllOptimizations)
	bad := &query.BGP{Select: []string{"x"}} // no patterns
	if _, err := engine.Execute(e, bad); err == nil {
		t.Errorf("invalid query accepted")
	}
}
