//go:build !unix

package segment

import "os"

// mapping without mmap support: the file is read onto the heap. Loading
// still skips all parsing — the byte image is identical — but pages are
// private to the process and the whole file is resident up front.
type mapping struct {
	data   []byte
	mapped bool
}

func mapFile(f *os.File, size int64) (mapping, error) {
	return readFile(f, size)
}

func (m mapping) close() error { return nil }
