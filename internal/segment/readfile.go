package segment

import (
	"io"
	"os"
)

// readFile is the shared heap fallback: the whole file into one allocation
// (8-byte aligned by the allocator, which the typed views require).
func readFile(f *os.File, size int64) (mapping, error) {
	b := make([]byte, size)
	if _, err := f.ReadAt(b, 0); err != nil && err != io.EOF {
		return mapping{}, err
	}
	return mapping{data: b, mapped: false}, nil
}
