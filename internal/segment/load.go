package segment

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"unsafe"

	"repro/internal/dict"
	"repro/internal/rdf"
	"repro/internal/set"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/trie"
)

// Loaded is an open segment: the assembled store plus the mapping backing
// its arenas.
type Loaded struct {
	// Store serves queries directly over the mapped arenas.
	Store *store.Store
	// Bytes is the segment file size.
	Bytes int64
	// Mapped reports whether the payload is an mmap view (false = the
	// heap-read fallback on platforms without mmap or when mapping failed).
	Mapped bool

	m mapping
}

// Close releases the mapping. The Store and everything derived from it
// (tries, engines, cursors) become invalid — Close is for tests and
// controlled teardown; a serving process keeps the mapping for its
// lifetime and lets process exit clean up.
func (l *Loaded) Close() error {
	return l.m.close()
}

// Open maps the segment at path and assembles a Store over it. The payload
// checksum is verified up front (one sequential pass over the mapping —
// still far cheaper than a parse), so a torn or bit-rotted segment fails
// loudly here rather than serving garbage.
func Open(path string) (*Loaded, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < headerSize {
		return nil, fmt.Errorf("segment: %s: file too small (%d bytes)", path, size)
	}
	m, err := mapFile(f, size)
	if err != nil {
		return nil, fmt.Errorf("segment: %s: %w", path, err)
	}
	advise(m)
	l, err := open(path, m)
	if err != nil {
		m.close()
		return nil, err
	}
	return l, nil
}

func open(path string, m mapping) (*Loaded, error) {
	data := m.data
	hdr := data[:headerSize]
	if string(hdr[0:8]) != Magic {
		return nil, fmt.Errorf("segment: %s: bad magic %q", path, hdr[0:8])
	}
	if crc32.Checksum(hdr[0:28], crcTable) != binary.LittleEndian.Uint32(hdr[28:32]) {
		return nil, fmt.Errorf("segment: %s: header checksum mismatch", path)
	}
	fileVersion := binary.LittleEndian.Uint32(hdr[8:12])
	if fileVersion < minVersion || fileVersion > version {
		return nil, fmt.Errorf("segment: %s: unsupported version %d (want %d..%d)",
			path, fileVersion, minVersion, version)
	}
	if *(*uint32)(unsafe.Pointer(&hdr[12])) != byteOrderMark {
		return nil, fmt.Errorf("segment: %s: foreign byte order", path)
	}
	payloadLen := binary.LittleEndian.Uint64(hdr[16:24])
	if headerSize+payloadLen > uint64(len(data)) {
		return nil, fmt.Errorf("segment: %s: truncated (payload %d bytes, file %d)", path, payloadLen, len(data))
	}
	payload := data[headerSize : headerSize+payloadLen]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(hdr[24:28]) {
		return nil, fmt.Errorf("segment: %s: payload checksum mismatch", path)
	}

	r := &payloadReader{data: payload}
	dictLen := r.u64()
	d, err := decodeDict(r.take(int(dictLen)))
	if err != nil {
		return nil, fmt.Errorf("segment: %s: %w", path, err)
	}
	r.pad()

	nTriples := int(r.u64())
	triples := viewTriples(r.take(nTriples * int(unsafe.Sizeof(store.Triple{}))))
	r.pad()

	nRels := int(r.u64())
	rels := make([]store.RelationData, 0, nRels)
	for i := 0; i < nRels; i++ {
		var rd store.RelationData
		rd.Predicate = r.u32()
		rows := int(r.u32())
		rd.DistinctS = int(r.u32())
		rd.DistinctO = int(r.u32())
		rd.S = viewU32(r.take(rows * 4))
		r.pad()
		rd.O = viewU32(r.take(rows * 4))
		r.pad()
		if rd.SO, err = readTrie(r, fileVersion); err != nil {
			return nil, fmt.Errorf("segment: %s: relation %d SO: %w", path, i, err)
		}
		if rd.OS, err = readTrie(r, fileVersion); err != nil {
			return nil, fmt.Errorf("segment: %s: relation %d OS: %w", path, i, err)
		}
		if fileVersion >= 2 {
			rd.Policy = set.PolicyAdaptive
		}
		rels = append(rels, rd)
	}
	if r.err != nil {
		return nil, fmt.Errorf("segment: %s: %w", path, r.err)
	}
	return &Loaded{
		Store:  store.FromParts(d, triples, rels),
		Bytes:  int64(len(data)),
		Mapped: m.mapped,
		m:      m,
	}, nil
}

func readTrie(r *payloadReader, fileVersion uint32) (*trie.Trie, error) {
	arity := int(r.u32())
	tuples := int(int32(r.u32()))
	if r.err != nil {
		return nil, r.err
	}
	if arity <= 0 || arity > 3 {
		return nil, fmt.Errorf("implausible trie arity %d", arity)
	}
	levels := make([]trie.LevelData, arity)
	for l := range levels {
		startLen := int(r.u64())
		valsLen := int(r.u64())
		wordsLen := int(r.u64())
		ranksLen := int(r.u64())
		layoutLen := int(r.u64())
		bitsetN := int(r.u64())
		ld := &levels[l]
		if fileVersion >= 2 {
			ld.Stats = stats.Level{
				Nodes:       r.u64(),
				TotalCard:   r.u64(),
				MinCard:     r.u64(),
				MaxCard:     r.u64(),
				SpanSum:     r.u64(),
				BitsetNodes: r.u64(),
				UintNodes:   r.u64(),
				Flips:       r.u64(),
			}
		}
		ld.Start = viewI32(r.take(startLen * 4))
		r.pad()
		ld.Vals = viewU32(r.take(valsLen * 4))
		r.pad()
		ld.Words = viewU64(r.take(wordsLen * 8))
		r.pad()
		ld.Ranks = viewI32(r.take(ranksLen * 4))
		r.pad()
		ld.LayoutBits = viewU64(r.take(layoutLen * 8))
		r.pad()
		ld.BitsetBase = viewU32(r.take(bitsetN * 4))
		r.pad()
		ld.BitsetNWords = viewI32(r.take(bitsetN * 4))
		r.pad()
	}
	if r.err != nil {
		return nil, r.err
	}
	return trie.FromLevels(tuples, levels)
}

// payloadReader cursors over the mapped payload; take returns zero-copy
// subslices with bounds checking folded into one error flag.
type payloadReader struct {
	data []byte
	off  int
	err  error
}

func (r *payloadReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.data)-r.off {
		r.err = fmt.Errorf("section of %d bytes at offset %d overruns payload (%d bytes)", n, r.off, len(r.data))
		return nil
	}
	b := r.data[r.off : r.off+n : r.off+n]
	r.off += n
	return b
}

func (r *payloadReader) pad() {
	if rem := r.off % align; rem != 0 {
		r.take(align - rem)
	}
}

func (r *payloadReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return *(*uint32)(unsafe.Pointer(&b[0]))
}

func (r *payloadReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return *(*uint64)(unsafe.Pointer(&b[0]))
}

// Typed zero-copy views over mapped bytes. The writer emitted these
// sections at 8-byte alignment from slices of the same element types, so
// the pointer casts are exact inversions.

func viewU32(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func viewI32(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func viewU64(b []byte) []uint64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func viewTriples(b []byte) []store.Triple {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*store.Triple)(unsafe.Pointer(&b[0])), len(b)/int(unsafe.Sizeof(store.Triple{})))
}

func decodeDict(b []byte) (*dict.Dictionary, error) {
	d := dict.New()
	n, w := binary.Uvarint(b)
	if w <= 0 {
		return nil, fmt.Errorf("bad dictionary header")
	}
	b = b[w:]
	readString := func() (string, error) {
		l, w := binary.Uvarint(b)
		if w <= 0 || l > uint64(len(b)-w) {
			return "", fmt.Errorf("bad dictionary string")
		}
		s := string(b[w : w+int(l)])
		b = b[w+int(l):]
		return s, nil
	}
	for i := uint64(0); i < n; i++ {
		if len(b) == 0 {
			return nil, fmt.Errorf("dictionary truncated at term %d", i)
		}
		kind := rdf.TermKind(b[0])
		b = b[1:]
		if kind > rdf.Blank {
			return nil, fmt.Errorf("term %d has invalid kind %d", i, kind)
		}
		t := rdf.Term{Kind: kind}
		var err error
		if t.Value, err = readString(); err != nil {
			return nil, err
		}
		if kind == rdf.Literal {
			if t.Datatype, err = readString(); err != nil {
				return nil, err
			}
			if t.Lang, err = readString(); err != nil {
				return nil, err
			}
		}
		if got := d.Encode(t); got != uint32(i) {
			return nil, fmt.Errorf("duplicate term %v (id %d vs %d)", t, got, i)
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%d trailing dictionary bytes", len(b))
	}
	return d, nil
}
