//go:build !linux

package segment

// advise is a no-op off Linux: the portable fallback already reads the file
// into the heap, and non-Linux mmap platforms fault on first touch without
// an madvise hint we can rely on.
func advise(mapping) {}
