//go:build unix

package segment

import (
	"os"
	"syscall"
)

// mapping is the platform handle for a loaded segment's bytes: an mmap view
// on unix, a heap copy elsewhere (see mmap_other.go).
type mapping struct {
	data   []byte
	mapped bool
}

// mapFile maps f read-only and shared — shared so every process serving the
// same segment file resolves to one set of page-cache pages. A failed map
// (e.g. a filesystem without mmap support) degrades to the heap read
// rather than failing the boot.
func mapFile(f *os.File, size int64) (mapping, error) {
	if size > 0 {
		b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
		if err == nil {
			return mapping{data: b, mapped: true}, nil
		}
	}
	return readFile(f, size)
}

func (m mapping) close() error {
	if !m.mapped || m.data == nil {
		return nil
	}
	return syscall.Munmap(m.data)
}
