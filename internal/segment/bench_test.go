package segment

import (
	"testing"
)

// BenchmarkSegmentOpen measures the full cold-load path — open, checksum
// verify, dict decode, set-header rebuild — at LUBM scale 1. This is the
// number the cold-start trajectory in BENCH_6.json compares against parse
// and snapshot boots.
func BenchmarkSegmentOpen(b *testing.B) {
	st := lubmStore(b, 1)
	path := writeSegment(b, st)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := Open(path)
		if err != nil {
			b.Fatal(err)
		}
		l.Close()
	}
}

// BenchmarkSegmentWrite measures compaction's added persistence cost.
func BenchmarkSegmentWrite(b *testing.B) {
	st := lubmStore(b, 1)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Write(dir+"/base.seg", st); err != nil {
			b.Fatal(err)
		}
	}
}
