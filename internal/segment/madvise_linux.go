//go:build linux

package segment

import "syscall"

// advise warms a fresh mapping: MADV_WILLNEED starts asynchronous readahead
// over the whole segment, and a sequential one-byte-per-page touch then
// prefaults the page tables while the readahead is in flight. Without this,
// the first queries after a boot pay one major fault per 4KiB of trie arena
// they walk — first-touch faults were the remaining cold-start cost after
// the mmap load path landed (ROADMAP item 4). Both steps are best-effort;
// a failed madvise just means the touch pass does the faulting alone.
func advise(m mapping) {
	if !m.mapped || len(m.data) == 0 {
		return
	}
	_ = syscall.Madvise(m.data, syscall.MADV_WILLNEED)
	const page = 4096
	var sink byte
	for i := 0; i < len(m.data); i += page {
		sink += m.data[i]
	}
	prefaultSink = sink
}

// prefaultSink keeps the touch loop's loads observable so the compiler
// cannot delete them.
var prefaultSink byte
