// Package segment persists a compacted base store as a single versioned,
// checksummed file whose on-disk layout IS the in-memory layout of the flat
// CSR trie arenas (internal/trie) and relation columns: every large array is
// written verbatim in native byte order at 8-byte alignment, so loading is
// an open + mmap + one cheap O(nodes) pass rebuilding set headers — not a
// multi-pass parse-and-rebuild. N server processes mapping the same segment
// share one page-cache copy.
//
// # Layout
//
//	header (32 bytes):
//	  magic "RDFSEG01" · version u32 · byte-order mark u32 (0x01020304,
//	  native) · payload length u64 · payload CRC-32C u32 · header CRC u32
//	payload (offset 32, every section 8-aligned):
//	  dict     u64 byte length + varint term encoding (as snapshots)
//	  triples  u64 count + count×12-byte store.Triple rows
//	  relations u64 count; per relation:
//	    meta   predicate u32 · rows u32 · distinctS u32 · distinctO u32
//	    S, O   columns (u32 rows each)
//	    SO, OS tries (see trie blob below)
//	trie blob:
//	  arity u32 · tuples i32; per level:
//	    six u64 lengths (start, vals, words, ranks, layout-bit words,
//	    bitset-node count), then (version ≥ 2) the eight u64 fields of the
//	    level's stats.Level histogram, then the start/vals/words/ranks
//	    arenas, the layout bitmap, and the per-bitset-node (base u32,
//	    nwords u32) table
//
// Version 2 tries are built under set.PolicyAdaptive (the statistics-driven
// layout rule) and carry per-level histograms; version 1 files (PolicyAuto,
// no histograms) still load, with statistics reported as unknown.
//
// The dictionary is the one heap-decoded section: it must stay mutable
// (live updates register new terms). Everything else — columns, triple
// table, trie arenas — is served straight from the mapping; only the
// per-node set headers (Go slice headers) are materialized at load.
//
// The format is explicitly not portable across byte order or word size;
// the byte-order mark and version gate refuse a foreign file. That is the
// price of mmap-is-the-format, and the WAL + snapshot remain the portable
// representations.
package segment

import (
	"bufio"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"unsafe"

	"repro/internal/dict"
	"repro/internal/rdf"
	"repro/internal/set"
	"repro/internal/store"
	"repro/internal/trie"
)

const (
	// Magic identifies a segment file; LoadDataset format sniffing keys on
	// it too.
	Magic         = "RDFSEG01"
	version       = 2
	minVersion    = 1
	byteOrderMark = 0x01020304
	headerSize    = 32
	align         = 8
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Write serializes st's base image (dictionary, triple table, relations
// with their PolicyAdaptive SO/OS tries — built now if not yet cached) to path
// atomically: temp file, fsync, rename, parent-directory fsync. A crash
// mid-write leaves any previous segment intact.
func Write(path string, st *store.Store) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := writeTo(tmp, st); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	tmp = nil
	return store.SyncDir(dir)
}

// writeTo streams the segment: a placeholder header, then the payload with
// a running CRC, then a seek back to stamp the real header.
func writeTo(f *os.File, st *store.Store) error {
	if _, err := f.Write(make([]byte, headerSize)); err != nil {
		return err
	}
	w := &payloadWriter{w: bufio.NewWriterSize(f, 1<<20)}

	// Dictionary, varint-encoded like snapshots, as one length-prefixed
	// blob so the loader can skip-scan it without decoding twice.
	dictBytes := encodeDict(st.Dict())
	w.u64(uint64(len(dictBytes)))
	w.bytes(dictBytes)
	w.pad()

	// Triple table, viewed as raw bytes.
	triples := st.Triples()
	w.u64(uint64(len(triples)))
	w.bytes(triplesBytes(triples))
	w.pad()

	// Relations in predicate order.
	preds := st.Predicates()
	w.u64(uint64(len(preds)))
	for _, p := range preds {
		rel := st.Relation(p)
		w.u32(p)
		w.u32(uint32(rel.Len()))
		w.u32(uint32(rel.DistinctS()))
		w.u32(uint32(rel.DistinctO()))
		w.bytes(u32Bytes(rel.S))
		w.pad()
		w.bytes(u32Bytes(rel.O))
		w.pad()
		if err := writeTrie(w, rel.TrieSO(set.PolicyAdaptive)); err != nil {
			return err
		}
		if err := writeTrie(w, rel.TrieOS(set.PolicyAdaptive)); err != nil {
			return err
		}
	}
	if w.err != nil {
		return w.err
	}
	if err := w.w.Flush(); err != nil {
		return err
	}

	var hdr [headerSize]byte
	copy(hdr[0:8], Magic)
	binary.LittleEndian.PutUint32(hdr[8:12], version)
	*(*uint32)(unsafe.Pointer(&hdr[12])) = byteOrderMark // native order on purpose
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(w.off))
	binary.LittleEndian.PutUint32(hdr[24:28], w.crc)
	binary.LittleEndian.PutUint32(hdr[28:32], crc32.Checksum(hdr[0:28], crcTable))
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		return err
	}
	return nil
}

func writeTrie(w *payloadWriter, t *trie.Trie) error {
	levels := t.Export()
	w.u32(uint32(t.Arity()))
	w.u32(uint32(int32(t.Len())))
	for _, ld := range levels {
		w.u64(uint64(len(ld.Start)))
		w.u64(uint64(len(ld.Vals)))
		w.u64(uint64(len(ld.Words)))
		w.u64(uint64(len(ld.Ranks)))
		w.u64(uint64(len(ld.LayoutBits)))
		w.u64(uint64(len(ld.BitsetBase)))
		w.u64(ld.Stats.Nodes)
		w.u64(ld.Stats.TotalCard)
		w.u64(ld.Stats.MinCard)
		w.u64(ld.Stats.MaxCard)
		w.u64(ld.Stats.SpanSum)
		w.u64(ld.Stats.BitsetNodes)
		w.u64(ld.Stats.UintNodes)
		w.u64(ld.Stats.Flips)
		w.bytes(i32Bytes(ld.Start))
		w.pad()
		w.bytes(u32Bytes(ld.Vals))
		w.pad()
		w.bytes(u64Bytes(ld.Words))
		w.pad()
		w.bytes(i32Bytes(ld.Ranks))
		w.pad()
		w.bytes(u64Bytes(ld.LayoutBits))
		w.pad()
		w.bytes(u32Bytes(ld.BitsetBase))
		w.pad()
		w.bytes(i32Bytes(ld.BitsetNWords))
		w.pad()
	}
	return w.err
}

// payloadWriter tracks the payload offset (for alignment padding) and a
// running CRC over everything written.
type payloadWriter struct {
	w   *bufio.Writer
	off int64
	crc uint32
	err error
}

func (w *payloadWriter) bytes(p []byte) {
	if w.err != nil {
		return
	}
	if _, err := w.w.Write(p); err != nil {
		w.err = err
		return
	}
	w.crc = crc32.Update(w.crc, crcTable, p)
	w.off += int64(len(p))
}

var zeroPad [align]byte

func (w *payloadWriter) pad() {
	if rem := w.off % align; rem != 0 {
		w.bytes(zeroPad[:align-rem])
	}
}

func (w *payloadWriter) u32(v uint32) {
	var b [4]byte
	*(*uint32)(unsafe.Pointer(&b[0])) = v
	w.bytes(b[:])
}

func (w *payloadWriter) u64(v uint64) {
	var b [8]byte
	*(*uint64)(unsafe.Pointer(&b[0])) = v
	w.bytes(b[:])
}

// Native-order byte views of typed slices. The segment is mapped back into
// the same representation, so no per-element encoding happens in either
// direction.

func u32Bytes(s []uint32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

func i32Bytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

func u64Bytes(s []uint64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

func triplesBytes(s []store.Triple) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*int(unsafe.Sizeof(store.Triple{})))
}

func encodeDict(d *dict.Dictionary) []byte {
	n := d.Size()
	buf := binary.AppendUvarint(nil, uint64(n))
	for id := 0; id < n; id++ {
		t := d.Decode(uint32(id))
		buf = append(buf, byte(t.Kind))
		buf = binary.AppendUvarint(buf, uint64(len(t.Value)))
		buf = append(buf, t.Value...)
		if t.Kind == rdf.Literal {
			buf = binary.AppendUvarint(buf, uint64(len(t.Datatype)))
			buf = append(buf, t.Datatype...)
			buf = binary.AppendUvarint(buf, uint64(len(t.Lang)))
			buf = append(buf, t.Lang...)
		}
	}
	return buf
}
