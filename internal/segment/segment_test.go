package segment

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/lubm"
	"repro/internal/rdf"
	"repro/internal/set"
	"repro/internal/store"
)

func lubmStore(tb testing.TB, universities int) *store.Store {
	tb.Helper()
	b := store.NewBuilder()
	lubm.GenerateTo(lubm.Config{Universities: universities, Seed: 7}, b.Add)
	return b.Build()
}

func writeSegment(tb testing.TB, st *store.Store) string {
	tb.Helper()
	path := filepath.Join(tb.TempDir(), "base.seg")
	if err := Write(path, st); err != nil {
		tb.Fatalf("Write: %v", err)
	}
	return path
}

// TestRoundTripLUBM writes a real LUBM store and checks the loaded segment
// is observationally identical: dictionary, triple table, per-relation
// columns, statistics, and full SO/OS trie contents.
func TestRoundTripLUBM(t *testing.T) {
	st := lubmStore(t, 1)
	path := writeSegment(t, st)

	l, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	got := l.Store

	if got.NumTriples() != st.NumTriples() {
		t.Fatalf("NumTriples = %d, want %d", got.NumTriples(), st.NumTriples())
	}
	if got.Dict().Size() != st.Dict().Size() {
		t.Fatalf("dict size = %d, want %d", got.Dict().Size(), st.Dict().Size())
	}
	for id := 0; id < st.Dict().Size(); id++ {
		if a, b := got.Dict().Decode(uint32(id)), st.Dict().Decode(uint32(id)); a != b {
			t.Fatalf("term %d decodes to %v, want %v", id, a, b)
		}
	}
	if !reflect.DeepEqual(got.Triples(), st.Triples()) {
		t.Fatal("triple table differs")
	}
	if !reflect.DeepEqual(got.Predicates(), st.Predicates()) {
		t.Fatalf("predicates differ: %v vs %v", got.Predicates(), st.Predicates())
	}
	for _, p := range st.Predicates() {
		want, have := st.Relation(p), got.Relation(p)
		if !reflect.DeepEqual(have.S, want.S) || !reflect.DeepEqual(have.O, want.O) {
			t.Fatalf("relation %d columns differ", p)
		}
		ws, hs := st.Stats(p), got.Stats(p)
		if ws != hs {
			t.Fatalf("relation %d stats = %+v, want %+v", p, hs, ws)
		}
		// Tries must enumerate identical tuples. These are the prebuilt
		// (mmap-backed) tries on the loaded side.
		if !reflect.DeepEqual(have.TrieSO(set.PolicyAuto).Rows(), want.TrieSO(set.PolicyAuto).Rows()) {
			t.Fatalf("relation %d SO trie differs", p)
		}
		if !reflect.DeepEqual(have.TrieOS(set.PolicyAuto).Rows(), want.TrieOS(set.PolicyAuto).Rows()) {
			t.Fatalf("relation %d OS trie differs", p)
		}
	}
	if l.Bytes <= 0 {
		t.Fatalf("Bytes = %d", l.Bytes)
	}
}

// TestTrieLookupOverMapping drives point lookups (Rank/Select machinery,
// including bitset rank directories loaded verbatim) through a mapped trie.
func TestTrieLookupOverMapping(t *testing.T) {
	st := lubmStore(t, 1)
	path := writeSegment(t, st)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	for _, p := range st.Predicates() {
		want := st.Relation(p)
		have := l.Store.Relation(p)
		wt, ht := want.TrieSO(set.PolicyAuto), have.TrieSO(set.PolicyAuto)
		rows := wt.Rows()
		step := len(rows)/50 + 1
		for i := 0; i < len(rows); i += step {
			if _, ok := ht.Lookup(rows[i]...); !ok {
				t.Fatalf("relation %d: tuple %v missing from mapped trie", p, rows[i])
			}
		}
		if n, ok := ht.Lookup(rows[0][0]); !ok || n.Set().Len() != func() int {
			m, _ := wt.Lookup(rows[0][0])
			return m.Set().Len()
		}() {
			t.Fatalf("relation %d: child set mismatch at subject %d", p, rows[0][0])
		}
	}
}

func TestEmptyStore(t *testing.T) {
	st := store.FromTriples(nil)
	path := writeSegment(t, st)
	l, err := Open(path)
	if err != nil {
		t.Fatalf("Open of empty segment: %v", err)
	}
	defer l.Close()
	if l.Store.NumTriples() != 0 || l.Store.Dict().Size() != 0 {
		t.Fatalf("empty store loaded as %v", l.Store)
	}
}

func TestSmallMixedTerms(t *testing.T) {
	ts := []rdf.Triple{
		{S: rdf.NewIRI("s1"), P: rdf.NewIRI("p"), O: rdf.NewLangLiteral("hi", "en")},
		{S: rdf.NewBlank("b"), P: rdf.NewIRI("p"), O: rdf.NewTypedLiteral("1", rdf.XSDString)},
		{S: rdf.NewIRI("s1"), P: rdf.NewIRI("q"), O: rdf.NewLiteral("plain")},
	}
	st := store.FromTriples(ts)
	path := writeSegment(t, st)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var got []string
	for _, tr := range l.Store.Triples() {
		got = append(got, rdf.Triple{
			S: l.Store.Dict().Decode(tr.S),
			P: l.Store.Dict().Decode(tr.P),
			O: l.Store.Dict().Decode(tr.O),
		}.String())
	}
	var want []string
	for _, tr := range ts {
		want = append(want, tr.String())
	}
	sort.Strings(got)
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("decoded triples differ:\ngot  %v\nwant %v", got, want)
	}
}

// TestCorruptionDetected flips one payload byte; Open must refuse the file.
func TestCorruptionDetected(t *testing.T) {
	st := lubmStore(t, 1)
	path := writeSegment(t, st)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if l, err := Open(path); err == nil {
		l.Close()
		t.Fatal("corrupted segment accepted")
	}
}

func TestTruncationDetected(t *testing.T) {
	st := lubmStore(t, 1)
	path := writeSegment(t, st)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if l, err := Open(path); err == nil {
		l.Close()
		t.Fatal("truncated segment accepted")
	}
}

func TestBadMagicDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not.seg")
	if err := os.WriteFile(path, []byte("RDFSNAP1 this is a snapshot, not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	if l, err := Open(path); err == nil {
		l.Close()
		t.Fatal("non-segment file accepted")
	}
}
