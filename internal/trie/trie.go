// Package trie implements the multi-level trie that EmptyHeaded uses to
// store every relation, input and output (§II-A of the paper). Each level of
// a trie corresponds to one attribute of the relation; the values at each
// level are stored as internal/set sets whose layout is chosen by the set
// layout optimizer.
//
// A trie over attributes [a1, ..., ak] is equivalent to a clustered index on
// (a1, ..., ak): descending the trie by one level narrows the relation by an
// equality on the next attribute.
package trie

import (
	"fmt"
	"sort"

	"repro/internal/set"
)

// Node is one trie node: a set of values at this level and, for non-leaf
// levels, one child per value (addressed by the value's rank in the set).
type Node struct {
	set      *set.Set
	children []*Node // nil at the leaf level; otherwise len == set.Len()
}

// Set returns the values present at this node's level.
func (n *Node) Set() *set.Set { return n.set }

// Child returns the child node for the i-th value (0-based rank) of the
// node's set. It panics if the node is a leaf.
func (n *Node) Child(i int) *Node {
	if n.children == nil {
		panic("trie: Child on leaf node")
	}
	return n.children[i]
}

// ChildByValue returns the child reached by descending with value v, or
// (nil, false) if v is not present at this level.
func (n *Node) ChildByValue(v uint32) (*Node, bool) {
	r, ok := n.set.Rank(v)
	if !ok {
		return nil, false
	}
	if n.children == nil {
		return nil, true // leaf: membership confirmed but no child to return
	}
	return n.children[r], true
}

// IsLeaf reports whether this node is at the last level of its trie.
func (n *Node) IsLeaf() bool { return n.children == nil }

// Trie is an immutable trie over a fixed number of attributes.
type Trie struct {
	arity  int
	tuples int
	root   *Node
}

// Arity returns the number of attributes (levels).
func (t *Trie) Arity() int { return t.arity }

// Len returns the number of distinct tuples stored.
func (t *Trie) Len() int { return t.tuples }

// Root returns the root node. For an empty trie the root carries an empty
// set.
func (t *Trie) Root() *Node { return t.root }

// String describes the trie briefly.
func (t *Trie) String() string {
	return fmt.Sprintf("Trie{arity=%d, tuples=%d}", t.arity, t.tuples)
}

// Sub returns a read-only view of the subtree rooted at n, exposed as a
// Trie of the given arity. Views share structure with the original trie —
// this is how equality selections produce node results without copying
// (descending a covering index by the selected constant yields the result
// relation directly). The tuple count of a view is unknown; Len reports -1.
func Sub(n *Node, arity int) *Trie {
	return &Trie{arity: arity, tuples: -1, root: n}
}

// BuildFromColumns builds a trie whose level c holds column cols[c]. All
// columns must have equal length (one entry per tuple). Duplicate tuples
// collapse. The input slices are not retained or mutated.
func BuildFromColumns(cols [][]uint32, policy set.Policy) *Trie {
	arity := len(cols)
	if arity == 0 {
		panic("trie: BuildFromColumns with zero columns")
	}
	n := len(cols[0])
	for _, c := range cols[1:] {
		if len(c) != n {
			panic("trie: ragged columns")
		}
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		for _, col := range cols {
			if col[ia] != col[ib] {
				return col[ia] < col[ib]
			}
		}
		return false
	})
	b := &builder{cols: cols, policy: policy}
	root := b.build(idx, 0)
	if root == nil {
		root = &Node{set: set.Empty}
	}
	return &Trie{arity: arity, tuples: b.tuples, root: root}
}

// BuildFromRows builds a trie from row-major tuples, each of length arity.
func BuildFromRows(rows [][]uint32, arity int, policy set.Policy) *Trie {
	cols := make([][]uint32, arity)
	for c := range cols {
		cols[c] = make([]uint32, len(rows))
	}
	for r, row := range rows {
		if len(row) != arity {
			panic(fmt.Sprintf("trie: row %d has %d values, want %d", r, len(row), arity))
		}
		for c := range row {
			cols[c][r] = row[c]
		}
	}
	return BuildFromColumns(cols, policy)
}

type builder struct {
	cols   [][]uint32
	policy set.Policy
	tuples int
}

// build constructs the node for the tuples selected by idx at the given
// level. idx is sorted lexicographically over the remaining columns.
func (b *builder) build(idx []int, level int) *Node {
	if len(idx) == 0 {
		return nil
	}
	col := b.cols[level]
	leaf := level == len(b.cols)-1

	// Collect distinct values (already in ascending order thanks to the
	// lexicographic sort) and the idx range for each.
	var vals []uint32
	var starts []int
	prev := uint32(0)
	for i, r := range idx {
		v := col[r]
		if i == 0 || v != prev {
			vals = append(vals, v)
			starts = append(starts, i)
			prev = v
		}
	}
	s := set.FromSorted(vals, b.policy)
	if leaf {
		b.tuples += len(vals)
		return &Node{set: s}
	}
	children := make([]*Node, len(vals))
	for gi := range vals {
		lo := starts[gi]
		hi := len(idx)
		if gi+1 < len(starts) {
			hi = starts[gi+1]
		}
		children[gi] = b.build(idx[lo:hi], level+1)
	}
	return &Node{set: s, children: children}
}

// Each enumerates every tuple in lexicographic order. The tuple slice is
// reused between calls; callers must copy it to retain it. Enumeration stops
// early if fn returns false.
func (t *Trie) Each(fn func(tuple []uint32) bool) {
	buf := make([]uint32, t.arity)
	t.each(t.root, 0, buf, fn)
}

func (t *Trie) each(n *Node, level int, buf []uint32, fn func([]uint32) bool) bool {
	cont := true
	n.set.Iterate(func(i int, v uint32) bool {
		buf[level] = v
		if n.IsLeaf() {
			cont = fn(buf)
		} else {
			cont = t.each(n.children[i], level+1, buf, fn)
		}
		return cont
	})
	return cont
}

// Rows materializes every tuple as a fresh [][]uint32, mainly for tests.
func (t *Trie) Rows() [][]uint32 {
	out := make([][]uint32, 0, max(t.tuples, 0))
	t.Each(func(tuple []uint32) bool {
		out = append(out, append([]uint32(nil), tuple...))
		return true
	})
	return out
}

// Lookup descends the trie with the given prefix of values and returns the
// node reached (whose set holds the possible next-attribute values), or
// (nil, false) if the prefix is absent. A full-arity prefix returns
// (nil, true) when the tuple exists.
func (t *Trie) Lookup(prefix ...uint32) (*Node, bool) {
	if len(prefix) > t.arity {
		panic("trie: Lookup prefix longer than arity")
	}
	n := t.root
	for _, v := range prefix {
		child, ok := n.ChildByValue(v)
		if !ok {
			return nil, false
		}
		n = child
	}
	return n, true
}

// MemoryBytes estimates the heap footprint of all sets in the trie.
func (t *Trie) MemoryBytes() int {
	total := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		total += n.set.MemoryBytes()
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return total
}
