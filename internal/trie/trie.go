// Package trie implements the multi-level trie that EmptyHeaded uses to
// store every relation, input and output (§II-A of the paper). Each level of
// a trie corresponds to one attribute of the relation; the values at each
// level are stored as internal/set sets whose layout is chosen by the set
// layout optimizer.
//
// A trie over attributes [a1, ..., ak] is equivalent to a clustered index on
// (a1, ..., ak): descending the trie by one level narrows the relation by an
// equality on the next attribute.
//
// # Physical layout
//
// The trie is flat: no per-node heap objects, no child pointers. Each level
// owns four contiguous arenas —
//
//	start  CSR offsets: node n's members occupy global ranks
//	       start[n]..start[n+1] at this level
//	sets   one set header per node, viewing the arenas below
//	vals   the concatenated sorted members of every uint-layout node
//	words/ranks  the concatenated bit words and rank directories of every
//	       bitset-layout node
//
// Node identity is (level, index); the child reached from node n by its
// rank-i member is node start[n]+i at the next level, because members are
// laid out in node order and every member spawns exactly one child. Descent
// is therefore one offset addition — no pointer chase — and a set iterator's
// position doubles as the child index (internal/exec exploits this in the
// leapfrog join). Construction radix-sorts a row permutation once
// (internal/radix; no comparator closures) and then emits each level with
// two sequential passes, so building is cache-friendly and allocates O(arity)
// arenas instead of O(nodes) individual sets.
package trie

import (
	"fmt"
	"sync"

	"repro/internal/radix"
	"repro/internal/set"
	"repro/internal/stats"
)

// buildScratch holds BuildFromColumns's transient buffers: the radix-sort
// scratch, the row permutation, and the two alternating node-bounds arrays.
// None of them survive the build, so they are pooled — a compaction rebuilds
// every relation's tries back to back, and at LUBM scale each build would
// otherwise re-allocate megabytes of scratch that the previous one just
// dropped. The retained arenas (start/vals/words/ranks) are sized exactly
// per trie and are not poolable.
type buildScratch struct {
	radix  radix.Scratch
	perm   []uint32
	bounds [2][]int32
}

var buildPool = sync.Pool{New: func() any { return new(buildScratch) }}

// permBuf returns the permutation buffer resized to n (contents undefined).
func (s *buildScratch) permBuf(n int) []uint32 {
	if cap(s.perm) < n {
		s.perm = make([]uint32, n)
	}
	return s.perm[:n]
}

// boundsBuf returns bounds buffer which resized to n (contents undefined —
// every caller fully overwrites it).
func (s *buildScratch) boundsBuf(which, n int) []int32 {
	if cap(s.bounds[which]) < n {
		s.bounds[which] = make([]int32, n)
	}
	return s.bounds[which][:n]
}

// level is one attribute's arena group. See the package comment for the
// layout contract.
type level struct {
	start []int32   // CSR: len = nodes+1; start[n+1]-start[n] = node n's cardinality
	sets  []set.Set // len = nodes; headers viewing vals or words/ranks
	vals  []uint32  // arena backing every uint-layout set at this level
	words []uint64  // arena backing every bitset-layout set's words
	ranks []int32   // arena backing every bitset-layout set's rank directory
}

// Trie is an immutable trie over a fixed number of attributes. A Trie value
// is either a full trie (rootLevel 0, one node at level 0) or a zero-copy
// view of a subtree (see Sub) — views share the levels of their parent.
type Trie struct {
	arity     int
	tuples    int // -1 for views (unknown without counting)
	levels    []level
	lstats    []stats.Level // per-level histograms; may be nil on old segments
	rootLevel int32
	rootNode  int32
}

// Stats returns the per-level histograms recorded at build time (len ==
// Arity for built tries). Tries loaded from pre-statistics segment files and
// subtree views of them may return nil; callers must treat absent statistics
// as "unknown", not "empty".
func (t *Trie) Stats() []stats.Level { return t.lstats }

// Node is a handle to one trie node: (trie, level, index). It is a value —
// copying it is free and descent state can live in flat stacks
// (internal/exec keeps []Node per input).
type Node struct {
	t     *Trie
	level int32
	node  int32
}

// Set returns the values present at this node's level. The returned set is
// a view into the trie's arenas; it must not be mutated.
func (n Node) Set() *set.Set { return &n.t.levels[n.level].sets[n.node] }

// IsLeaf reports whether this node is at the last level of its trie.
func (n Node) IsLeaf() bool { return int(n.level) == len(n.t.levels)-1 }

// Child returns the child node for the i-th value (0-based rank) of the
// node's set. It panics if the node is a leaf.
func (n Node) Child(i int) Node {
	if n.IsLeaf() {
		panic("trie: Child on leaf node")
	}
	return Node{t: n.t, level: n.level + 1, node: n.t.levels[n.level].start[n.node] + int32(i)}
}

// ChildByValue returns the child reached by descending with value v, or
// (Node{}, false) if v is not present at this level. On a leaf it returns
// (Node{}, true) when v is a member — membership confirmed, no child to
// descend to.
func (n Node) ChildByValue(v uint32) (Node, bool) {
	r, ok := n.Set().Rank(v)
	if !ok {
		return Node{}, false
	}
	if n.IsLeaf() {
		return Node{}, true
	}
	return Node{t: n.t, level: n.level + 1, node: n.t.levels[n.level].start[n.node] + int32(r)}, true
}

// Arity returns the number of attributes (levels).
func (t *Trie) Arity() int { return t.arity }

// Len returns the number of distinct tuples stored, or -1 for subtree views.
func (t *Trie) Len() int { return t.tuples }

// Root returns the root node. For an empty trie the root carries an empty
// set.
func (t *Trie) Root() Node { return Node{t: t, level: t.rootLevel, node: t.rootNode} }

// String describes the trie briefly.
func (t *Trie) String() string {
	return fmt.Sprintf("Trie{arity=%d, tuples=%d}", t.arity, t.tuples)
}

// Sub returns a read-only view of the subtree rooted at n, exposed as a
// Trie of the given arity. Views share the parent's level arenas — this is
// how equality selections produce node results without copying (descending
// a covering index by the selected constant yields the result relation
// directly). The tuple count of a view is unknown; Len reports -1.
func Sub(n Node, arity int) *Trie {
	if n.t == nil {
		panic("trie: Sub of zero Node")
	}
	if arity != len(n.t.levels)-int(n.level) {
		panic(fmt.Sprintf("trie: Sub arity %d does not match remaining levels %d",
			arity, len(n.t.levels)-int(n.level)))
	}
	return &Trie{arity: arity, tuples: -1, levels: n.t.levels, lstats: n.t.lstats,
		rootLevel: n.level, rootNode: n.node}
}

// BuildFromColumns builds a trie whose level c holds column cols[c]. All
// columns must have equal length (one entry per tuple). Duplicate tuples
// collapse. The input slices are not retained or mutated.
func BuildFromColumns(cols [][]uint32, policy set.Policy) *Trie {
	arity := len(cols)
	if arity == 0 {
		panic("trie: BuildFromColumns with zero columns")
	}
	n := len(cols[0])
	for _, c := range cols[1:] {
		if len(c) != n {
			panic("trie: ragged columns")
		}
	}
	t := &Trie{arity: arity, levels: make([]level, arity), lstats: make([]stats.Level, arity)}
	if n == 0 {
		// Canonical empty trie: one root node holding the empty set,
		// nothing below.
		t.levels[0] = level{start: []int32{0, 0}, sets: make([]set.Set, 1)}
		for l := 1; l < arity; l++ {
			t.levels[l] = level{start: []int32{0}}
		}
		return t
	}

	sc := buildPool.Get().(*buildScratch)
	defer buildPool.Put(sc)
	perm := sc.permBuf(n)
	for i := range perm {
		perm[i] = uint32(i)
	}
	sc.radix.SortPermByColumns(cols, perm)

	// bounds[g]..bounds[g+1] is the sorted-row range of the current level's
	// g-th node. The root level sees every row. The two bounds buffers
	// alternate per level (level l reads one while writing the other).
	bounds := sc.boundsBuf(0, 2)
	bounds[0], bounds[1] = 0, int32(n)
	for l := 0; l < arity; l++ {
		col := cols[l]
		nodes := len(bounds) - 1
		lv := &t.levels[l]
		lv.start = make([]int32, nodes+1)
		lv.sets = make([]set.Set, nodes)
		leaf := l == arity-1

		// Pass A: count each node's distinct values (rows are sorted, so
		// distinct = transitions) and pre-size the arenas exactly. The
		// layout decision needs only (card, min, max), all known here, so
		// no per-node layout flags are stored — pass B re-derives it. The
		// same (card, min, max) triple feeds the level histogram, so the
		// statistics the chooser layer needs cost no extra pass.
		ls := &t.lstats[l]
		uintTotal, wordTotal := 0, 0
		for g := 0; g < nodes; g++ {
			lo, hi := bounds[g], bounds[g+1]
			card := 1
			prev := col[perm[lo]]
			for r := lo + 1; r < hi; r++ {
				if v := col[perm[r]]; v != prev {
					card++
					prev = v
				}
			}
			lv.start[g+1] = lv.start[g] + int32(card)
			minV, maxV := col[perm[lo]], col[perm[hi-1]]
			want := set.WantBitset(card, minV, maxV, policy)
			ls.Observe(uint64(card), uint64(maxV)-uint64(minV)+1, want,
				want != set.PaperRuleWantBitset(card, minV, maxV))
			if want {
				wordTotal += set.BitsetWords(minV, maxV)
			} else {
				uintTotal += card
			}
		}
		total := int(lv.start[nodes]) // nodes at the next level
		lv.vals = make([]uint32, 0, uintTotal)
		if wordTotal > 0 {
			lv.words = make([]uint64, wordTotal)
			lv.ranks = make([]int32, wordTotal)
		}
		var newBounds []int32
		if !leaf {
			newBounds = sc.boundsBuf((l+1)&1, total+1)
		}

		// Pass B: emit each node's set into the arenas and record where
		// every member's row group starts — those become the next level's
		// node bounds.
		wordOff := 0
		for g := 0; g < nodes; g++ {
			lo, hi := bounds[g], bounds[g+1]
			card := int(lv.start[g+1] - lv.start[g])
			minV, maxV := col[perm[lo]], col[perm[hi-1]]
			k := lv.start[g] // global rank cursor == next-level node index
			if set.WantBitset(card, minV, maxV, policy) {
				nw := set.BitsetWords(minV, maxV)
				words := lv.words[wordOff : wordOff+nw : wordOff+nw]
				rks := lv.ranks[wordOff : wordOff+nw : wordOff+nw]
				wordOff += nw
				base := minV &^ 63
				prev := minV + 1 // sentinel ≠ first value (see below)
				for r := lo; r < hi; r++ {
					if v := col[perm[r]]; v != prev {
						off := v - base
						words[off/64] |= 1 << (off % 64)
						if !leaf {
							newBounds[k] = r
						}
						k++
						prev = v
					}
				}
				set.InitBitset(&lv.sets[g], words, rks, base, card)
			} else {
				valsStart := len(lv.vals)
				// minV+1 can only collide with a later value by wrapping to
				// 0 when minV is MaxUint32 — but then minV is also the max,
				// so every row matches the first transition anyway.
				prev := minV + 1
				for r := lo; r < hi; r++ {
					if v := col[perm[r]]; v != prev {
						lv.vals = append(lv.vals, v)
						if !leaf {
							newBounds[k] = r
						}
						k++
						prev = v
					}
				}
				end := len(lv.vals)
				set.InitSortedView(&lv.sets[g], lv.vals[valsStart:end:end])
			}
		}
		if leaf {
			t.tuples = total
		} else {
			newBounds[total] = int32(n)
			bounds = newBounds
		}
	}
	if policy == set.PolicyAdaptive {
		var bs, us, fl uint64
		for l := range t.lstats {
			bs += t.lstats[l].BitsetNodes
			us += t.lstats[l].UintNodes
			fl += t.lstats[l].Flips
		}
		stats.Default.RecordLayout(bs, us, fl)
	}
	return t
}

// BuildFromRows builds a trie from row-major tuples, each of length arity.
func BuildFromRows(rows [][]uint32, arity int, policy set.Policy) *Trie {
	cols := make([][]uint32, arity)
	for c := range cols {
		cols[c] = make([]uint32, len(rows))
	}
	for r, row := range rows {
		if len(row) != arity {
			panic(fmt.Sprintf("trie: row %d has %d values, want %d", r, len(row), arity))
		}
		for c := range row {
			cols[c][r] = row[c]
		}
	}
	return BuildFromColumns(cols, policy)
}

// Each enumerates every tuple in lexicographic order. The tuple slice is
// reused between calls; callers must copy it to retain it. Enumeration stops
// early if fn returns false.
func (t *Trie) Each(fn func(tuple []uint32) bool) {
	buf := make([]uint32, t.arity)
	t.each(t.Root(), 0, buf, fn)
}

func (t *Trie) each(n Node, d int, buf []uint32, fn func([]uint32) bool) bool {
	lv := &t.levels[n.level]
	leaf := int(n.level) == len(t.levels)-1
	var childBase int32
	if !leaf {
		childBase = lv.start[n.node]
	}
	var it set.Iter
	for it.Reset(&lv.sets[n.node]); !it.Done(); it.Next() {
		buf[d] = it.Cur()
		if leaf {
			if !fn(buf) {
				return false
			}
		} else {
			child := Node{t: t, level: n.level + 1, node: childBase + int32(it.Pos())}
			if !t.each(child, d+1, buf, fn) {
				return false
			}
		}
	}
	return true
}

// Rows materializes every tuple as a fresh [][]uint32, mainly for tests.
func (t *Trie) Rows() [][]uint32 {
	out := make([][]uint32, 0, max(t.tuples, 0))
	t.Each(func(tuple []uint32) bool {
		out = append(out, append([]uint32(nil), tuple...))
		return true
	})
	return out
}

// Lookup descends the trie with the given prefix of values and returns the
// node reached (whose set holds the possible next-attribute values), or
// (Node{}, false) if the prefix is absent. A full-arity prefix returns
// (Node{}, true) when the tuple exists.
func (t *Trie) Lookup(prefix ...uint32) (Node, bool) {
	if len(prefix) > t.arity {
		panic("trie: Lookup prefix longer than arity")
	}
	n := t.Root()
	for _, v := range prefix {
		child, ok := n.ChildByValue(v)
		if !ok {
			return Node{}, false
		}
		n = child
	}
	if len(prefix) == t.arity {
		return Node{}, true
	}
	return n, true
}

// setHeaderBytes approximates the in-arena footprint of one set.Set header
// (layout byte + three slice headers + base + card on a 64-bit platform).
const setHeaderBytes = 88

// MemoryBytes estimates the heap footprint of the trie's arenas: values,
// bit words, rank directories, CSR offsets, and set headers. Subtree views
// report the footprint of the whole underlying trie (arenas are shared, so
// a per-subtree number would double count).
func (t *Trie) MemoryBytes() int {
	total := 0
	for i := range t.levels {
		lv := &t.levels[i]
		total += 4*len(lv.vals) + 8*len(lv.words) + 4*len(lv.ranks) +
			4*len(lv.start) + setHeaderBytes*len(lv.sets)
	}
	return total
}
