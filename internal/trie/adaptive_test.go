package trie

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/set"
	"repro/internal/stats"
)

// genColumns produces arity random columns of n rows with per-level value
// skew: level 0 draws from a small domain (dense child sets downstream),
// later levels from wide domains — the mix that makes the adaptive layout
// rule pick differently from the paper's 1-in-256 rule on real data.
func genColumns(rng *rand.Rand, n, arity int) [][]uint32 {
	cols := make([][]uint32, arity)
	for l := range cols {
		domain := 1 << (4 + 7*l) // 16, 2048, 262144, ...
		cols[l] = make([]uint32, n)
		for i := range cols[l] {
			cols[l][i] = uint32(rng.Intn(domain))
		}
	}
	return cols
}

// TestAdaptivePolicyNeverChangesResults is the safety property behind the
// statistics-driven layout chooser: the layout policy is a physical
// decision, so enumerating a trie built under the adaptive rule must yield
// exactly the tuples of the same data built under the uint-only and paper
// policies. (The engine conformance suite checks the same property end to
// end through every engine including the auto router; this pins it at the
// trie layer where a layout bug would originate.)
func TestAdaptivePolicyNeverChangesResults(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(4000)
		arity := 2 + rng.Intn(2)
		cols := genColumns(rng, n, arity)
		enumerate := func(policy set.Policy) [][]uint32 {
			var out [][]uint32
			BuildFromColumns(cols, policy).Each(func(tuple []uint32) bool {
				out = append(out, append([]uint32(nil), tuple...))
				return true
			})
			return out
		}
		want := enumerate(set.PolicyUintOnly)
		for _, policy := range []set.Policy{set.PolicyAuto, set.PolicyAdaptive} {
			if got := enumerate(policy); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: policy %v enumerates %d tuples differently than uint-only (%d)",
					trial, policy, len(got), len(want))
			}
		}
	}
}

// TestBuildRecordsLevelStats checks the histograms the build pass persists:
// node counts must add up (every node is either bitset or uint), total
// cardinality must equal what enumeration visits, and the flip counter only
// moves under the adaptive policy (it counts disagreements with the paper
// rule, which agrees with itself by definition under PolicyAuto).
func TestBuildRecordsLevelStats(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cols := genColumns(rng, 3000, 3)
	for _, policy := range []set.Policy{set.PolicyAuto, set.PolicyAdaptive, set.PolicyUintOnly} {
		tr := BuildFromColumns(cols, policy)
		ls := tr.Stats()
		if len(ls) != tr.Arity() {
			t.Fatalf("policy %v: %d stat levels for arity %d", policy, len(ls), tr.Arity())
		}
		for l, s := range ls {
			if s.Nodes == 0 {
				t.Fatalf("policy %v level %d: zero nodes", policy, l)
			}
			if s.BitsetNodes+s.UintNodes != s.Nodes {
				t.Errorf("policy %v level %d: %d bitset + %d uint != %d nodes",
					policy, l, s.BitsetNodes, s.UintNodes, s.Nodes)
			}
			if s.MinCard > s.MaxCard || s.TotalCard < s.MaxCard {
				t.Errorf("policy %v level %d: inconsistent cards min=%d max=%d total=%d",
					policy, l, s.MinCard, s.MaxCard, s.TotalCard)
			}
			if policy == set.PolicyAuto && s.Flips != 0 {
				t.Errorf("paper policy recorded %d flips at level %d", s.Flips, l)
			}
			if d := s.Density(); d < 0 || d > 1 {
				t.Errorf("policy %v level %d: density %f out of range", policy, l, d)
			}
		}
	}
	// A view of a subtree shares the parent's stats slice identity or nil —
	// either way Stats must not panic and Merge must accumulate.
	var merged stats.Level
	for _, s := range BuildFromColumns(cols, set.PolicyAdaptive).Stats() {
		merged.Merge(s)
	}
	if merged.Nodes == 0 {
		t.Fatal("merged stats empty")
	}
}
