package trie

import (
	"fmt"

	"repro/internal/set"
	"repro/internal/stats"
)

// LevelData is the serializable image of one trie level: the four arenas
// verbatim plus the per-node metadata that is not derivable from them alone
// (which layout each node's set uses, and each bitset node's base and word
// count — everything else, including every node's cardinality, follows from
// the CSR start offsets). internal/segment writes these slices to disk and
// hands mmap-backed views of the same bytes to FromLevels on load.
type LevelData struct {
	// Start is the CSR offset arena (len = nodes+1, or 1 for an empty
	// deeper level).
	Start []int32
	// Vals is the concatenated uint-layout member arena.
	Vals []uint32
	// Words and Ranks are the concatenated bitset word and rank-directory
	// arenas.
	Words []uint64
	Ranks []int32
	// LayoutBits has bit n set iff node n's set uses the bitset layout
	// (len = ceil(nodes/64)).
	LayoutBits []uint64
	// BitsetBase and BitsetNWords give, per bitset-layout node in node
	// order, the set's base value and word count.
	BitsetBase   []uint32
	BitsetNWords []int32
	// Stats is the level histogram recorded at build time. Zero-valued when
	// the trie predates statistics (version-1 segment files).
	Stats stats.Level
}

// Export returns the level images of a full trie (not a Sub view). The
// returned slices alias the trie's arenas; callers must not mutate them.
func (t *Trie) Export() []LevelData {
	if t.rootLevel != 0 || t.rootNode != 0 {
		panic("trie: Export of a subtree view")
	}
	out := make([]LevelData, len(t.levels))
	for l := range t.levels {
		lv := &t.levels[l]
		ld := LevelData{
			Start: lv.start,
			Vals:  lv.vals,
			Words: lv.words,
			Ranks: lv.ranks,
		}
		if t.lstats != nil {
			ld.Stats = t.lstats[l]
		}
		if n := len(lv.sets); n > 0 {
			ld.LayoutBits = make([]uint64, (n+63)/64)
		}
		for i := range lv.sets {
			s := &lv.sets[i]
			if s.Layout() != set.Bitset {
				continue
			}
			ld.LayoutBits[i/64] |= 1 << (i % 64)
			words, _, base := s.RawBitset()
			ld.BitsetBase = append(ld.BitsetBase, base)
			ld.BitsetNWords = append(ld.BitsetNWords, int32(len(words)))
		}
		out[l] = ld
	}
	return out
}

// FromLevels reconstructs a trie from exported level images — the load half
// of Export. The arena slices are retained as-is (they may be read-only
// mmap views; nothing writes to them); only the per-node set headers are
// rebuilt, one O(nodes) sequential pass. tuples is the distinct tuple
// count. Structural inconsistencies return an error instead of panicking,
// since the input typically comes from a file.
func FromLevels(tuples int, levels []LevelData) (*Trie, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("trie: FromLevels with zero levels")
	}
	t := &Trie{arity: len(levels), tuples: tuples, levels: make([]level, len(levels)),
		lstats: make([]stats.Level, len(levels))}
	for l, ld := range levels {
		t.lstats[l] = ld.Stats
		nodes := len(ld.Start) - 1
		if nodes < 0 {
			return nil, fmt.Errorf("trie: level %d has empty start arena", l)
		}
		lv := &t.levels[l]
		*lv = level{start: ld.Start, vals: ld.Vals, words: ld.Words, ranks: ld.Ranks,
			sets: make([]set.Set, nodes)}
		valOff, wordOff, bi := 0, 0, 0
		for n := 0; n < nodes; n++ {
			card := int(ld.Start[n+1] - ld.Start[n])
			if card < 0 {
				return nil, fmt.Errorf("trie: level %d node %d has negative cardinality", l, n)
			}
			if len(ld.LayoutBits) > n/64 && ld.LayoutBits[n/64]&(1<<(n%64)) != 0 {
				if bi >= len(ld.BitsetBase) || bi >= len(ld.BitsetNWords) {
					return nil, fmt.Errorf("trie: level %d bitset table too short", l)
				}
				base, nw := ld.BitsetBase[bi], int(ld.BitsetNWords[bi])
				bi++
				if nw <= 0 || wordOff+nw > len(ld.Words) || wordOff+nw > len(ld.Ranks) {
					return nil, fmt.Errorf("trie: level %d node %d word range out of bounds", l, n)
				}
				set.InitBitsetRanked(&lv.sets[n],
					ld.Words[wordOff:wordOff+nw:wordOff+nw],
					ld.Ranks[wordOff:wordOff+nw:wordOff+nw], base, card)
				wordOff += nw
			} else {
				if valOff+card > len(ld.Vals) {
					return nil, fmt.Errorf("trie: level %d node %d value range out of bounds", l, n)
				}
				set.InitSortedView(&lv.sets[n], ld.Vals[valOff:valOff+card:valOff+card])
				valOff += card
			}
		}
	}
	return t, nil
}
