package trie

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/set"
)

func TestBuildSimple(t *testing.T) {
	// Figure 1's suborganizationOf example after dictionary encoding:
	// subject object pairs (0,3), (0,1), (2,1), keys University0=0,
	// Department0=1, Department1=2(sic: figure numbers them 0..3).
	rows := [][]uint32{{0, 3}, {0, 1}, {2, 1}}
	tr := BuildFromRows(rows, 2, set.PolicyAuto)
	if tr.Arity() != 2 || tr.Len() != 3 {
		t.Fatalf("arity/len = %d/%d", tr.Arity(), tr.Len())
	}
	want := [][]uint32{{0, 1}, {0, 3}, {2, 1}}
	if got := tr.Rows(); !reflect.DeepEqual(got, want) {
		t.Errorf("Rows = %v, want %v", got, want)
	}
	if got := tr.Root().Set().Values(); !reflect.DeepEqual(got, []uint32{0, 2}) {
		t.Errorf("root set = %v", got)
	}
}

func TestBuildCollapsesDuplicates(t *testing.T) {
	rows := [][]uint32{{1, 2}, {1, 2}, {1, 2}, {3, 4}}
	tr := BuildFromRows(rows, 2, set.PolicyAuto)
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
}

func TestEmptyTrie(t *testing.T) {
	tr := BuildFromRows(nil, 2, set.PolicyAuto)
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	if !tr.Root().Set().IsEmpty() {
		t.Errorf("empty trie root set non-empty")
	}
	tr.Each(func([]uint32) bool { t.Error("Each on empty trie"); return true })
	if _, ok := tr.Lookup(5); ok {
		t.Errorf("Lookup on empty trie reported present")
	}
}

func TestUnaryTrie(t *testing.T) {
	tr := BuildFromColumns([][]uint32{{5, 3, 5, 1}}, set.PolicyAuto)
	if tr.Arity() != 1 || tr.Len() != 3 {
		t.Fatalf("arity/len = %d/%d", tr.Arity(), tr.Len())
	}
	if got := tr.Rows(); !reflect.DeepEqual(got, [][]uint32{{1}, {3}, {5}}) {
		t.Errorf("Rows = %v", got)
	}
	if !tr.Root().IsLeaf() {
		t.Errorf("unary trie root should be leaf")
	}
}

func TestTernaryTrieLookup(t *testing.T) {
	rows := [][]uint32{
		{1, 10, 100},
		{1, 10, 101},
		{1, 11, 100},
		{2, 10, 100},
	}
	tr := BuildFromRows(rows, 3, set.PolicyAuto)
	n, ok := tr.Lookup(1, 10)
	if !ok {
		t.Fatalf("Lookup(1,10) absent")
	}
	if got := n.Set().Values(); !reflect.DeepEqual(got, []uint32{100, 101}) {
		t.Errorf("third level = %v", got)
	}
	if _, ok := tr.Lookup(1, 12); ok {
		t.Errorf("Lookup(1,12) present")
	}
	if _, ok := tr.Lookup(1, 10, 101); !ok {
		t.Errorf("full-tuple lookup failed")
	}
	if _, ok := tr.Lookup(1, 10, 99); ok {
		t.Errorf("absent tuple reported present")
	}
	if n, ok := tr.Lookup(); !ok || n != tr.Root() {
		t.Errorf("empty prefix lookup should return root")
	}
}

func TestLookupPanicsOnLongPrefix(t *testing.T) {
	tr := BuildFromRows([][]uint32{{1, 2}}, 2, set.PolicyAuto)
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	tr.Lookup(1, 2, 3)
}

func TestChildPanicsOnLeaf(t *testing.T) {
	tr := BuildFromColumns([][]uint32{{1}}, set.PolicyAuto)
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	tr.Root().Child(0)
}

func TestRaggedColumnsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	BuildFromColumns([][]uint32{{1, 2}, {3}}, set.PolicyAuto)
}

func TestZeroColumnsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	BuildFromColumns(nil, set.PolicyAuto)
}

func TestBadRowArityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	BuildFromRows([][]uint32{{1, 2, 3}}, 2, set.PolicyAuto)
}

func TestEachEarlyStop(t *testing.T) {
	rows := [][]uint32{{1, 1}, {1, 2}, {2, 1}, {2, 2}}
	tr := BuildFromRows(rows, 2, set.PolicyAuto)
	count := 0
	tr.Each(func([]uint32) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestChildByValueOnLeaf(t *testing.T) {
	tr := BuildFromColumns([][]uint32{{7}}, set.PolicyAuto)
	n, ok := tr.Root().ChildByValue(7)
	if !ok || n != (Node{}) {
		t.Errorf("leaf ChildByValue = %v,%v", n, ok)
	}
	if _, ok := tr.Root().ChildByValue(8); ok {
		t.Errorf("absent value reported present")
	}
}

func TestDenseLevelsUseBitsets(t *testing.T) {
	// 1000 consecutive subjects: first level should be a bitset under auto.
	rows := make([][]uint32, 1000)
	for i := range rows {
		rows[i] = []uint32{uint32(i), uint32(i * 1000)}
	}
	auto := BuildFromRows(rows, 2, set.PolicyAuto)
	if auto.Root().Set().Layout() != set.Bitset {
		t.Errorf("dense first level layout = %v, want bitset", auto.Root().Set().Layout())
	}
	forced := BuildFromRows(rows, 2, set.PolicyUintOnly)
	if forced.Root().Set().Layout() != set.UintArray {
		t.Errorf("PolicyUintOnly produced %v", forced.Root().Set().Layout())
	}
	if forced.MemoryBytes() <= 0 || auto.MemoryBytes() <= 0 {
		t.Errorf("MemoryBytes should be positive")
	}
}

func TestSubView(t *testing.T) {
	rows := [][]uint32{
		{1, 10, 100},
		{1, 10, 101},
		{1, 11, 100},
		{2, 10, 100},
	}
	tr := BuildFromRows(rows, 3, set.PolicyAuto)
	n, ok := tr.Lookup(1)
	if !ok {
		t.Fatal("Lookup(1) failed")
	}
	view := Sub(n, 2)
	if view.Arity() != 2 || view.Len() != -1 {
		t.Errorf("view arity/len = %d/%d", view.Arity(), view.Len())
	}
	want := [][]uint32{{10, 100}, {10, 101}, {11, 100}}
	if got := view.Rows(); !reflect.DeepEqual(got, want) {
		t.Errorf("view rows = %v, want %v", got, want)
	}
	if _, ok := view.Lookup(10, 101); !ok {
		t.Errorf("view lookup failed")
	}
	if _, ok := view.Lookup(12); ok {
		t.Errorf("view lookup found absent value")
	}
}

// reference: sort+dedup rows lexicographically.
func refRows(rows [][]uint32) [][]uint32 {
	cp := make([][]uint32, len(rows))
	for i, r := range rows {
		cp[i] = append([]uint32(nil), r...)
	}
	sort.Slice(cp, func(a, b int) bool {
		for k := range cp[a] {
			if cp[a][k] != cp[b][k] {
				return cp[a][k] < cp[b][k]
			}
		}
		return false
	})
	out := cp[:0]
	for i, r := range cp {
		if i == 0 || !reflect.DeepEqual(r, out[len(out)-1]) {
			out = append(out, r)
		}
	}
	return out
}

func TestPropertyBuildEnumerateRoundTrip(t *testing.T) {
	f := func(raw []uint32, aritySeed uint8) bool {
		arity := int(aritySeed%3) + 1
		n := len(raw) / arity
		rows := make([][]uint32, n)
		for i := 0; i < n; i++ {
			row := make([]uint32, arity)
			for c := 0; c < arity; c++ {
				row[c] = raw[i*arity+c] % 64 // small domain forces duplicates
			}
			rows[i] = row
		}
		want := refRows(rows)
		tr := BuildFromRows(rows, arity, set.PolicyAuto)
		got := tr.Rows()
		if len(want) == 0 {
			return len(got) == 0 && tr.Len() == 0
		}
		return tr.Len() == len(want) && reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLookupMatchesMembership(t *testing.T) {
	f := func(raw []uint32) bool {
		n := len(raw) / 2
		rows := make([][]uint32, n)
		present := map[[2]uint32]bool{}
		for i := 0; i < n; i++ {
			a, b := raw[i*2]%16, raw[i*2+1]%16
			rows[i] = []uint32{a, b}
			present[[2]uint32{a, b}] = true
		}
		tr := BuildFromRows(rows, 2, set.PolicyAuto)
		for a := uint32(0); a < 16; a++ {
			for b := uint32(0); b < 16; b++ {
				_, ok := tr.Lookup(a, b)
				if ok != present[[2]uint32{a, b}] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// --- flat ≡ reference property suite ----------------------------------------

// randomCols generates arity columns of n rows over a bounded domain; small
// domains force duplicate prefixes (shared trie paths), larger ones force
// sparse sets.
func randomCols(rng *rand.Rand, n, arity int, domain uint32) [][]uint32 {
	cols := make([][]uint32, arity)
	for c := range cols {
		cols[c] = make([]uint32, n)
		for i := range cols[c] {
			cols[c][i] = rng.Uint32() % domain
		}
	}
	return cols
}

// checkFlatMatchesReference walks both representations and demands
// observational identity: tuple count, enumerated rows, per-path set layout
// and membership, Lookup outcomes, and Sub view rows.
func checkFlatMatchesReference(t *testing.T, cols [][]uint32, policy set.Policy) {
	t.Helper()
	arity := len(cols)
	flat := BuildFromColumns(cols, policy)
	ref := BuildReference(cols, policy)
	if flat.Len() != ref.Len() || flat.Arity() != ref.Arity() {
		t.Fatalf("len/arity: flat %d/%d, ref %d/%d", flat.Len(), flat.Arity(), ref.Len(), ref.Arity())
	}
	if !reflect.DeepEqual(flat.Rows(), ref.Rows()) {
		t.Fatalf("rows diverge:\nflat %v\nref  %v", flat.Rows(), ref.Rows())
	}
	// Walk every node pair: sets must match in membership AND layout (the
	// arena build must reproduce the layout optimizer's decisions exactly).
	var walk func(fn Node, rn *RefNode, path []uint32)
	walk = func(fn Node, rn *RefNode, path []uint32) {
		fs, rs := fn.Set(), rn.Set()
		if fs.Layout() != rs.Layout() {
			t.Fatalf("layout at %v: flat %v, ref %v", path, fs.Layout(), rs.Layout())
		}
		if !fs.Equal(rs) {
			t.Fatalf("set at %v: flat %v, ref %v", path, fs.Values(), rs.Values())
		}
		if fn.IsLeaf() != rn.IsLeaf() {
			t.Fatalf("leafness at %v", path)
		}
		if fn.IsLeaf() {
			return
		}
		vals := fs.Values()
		for i, v := range vals {
			walk(fn.Child(i), rn.Child(i), append(path, v))
		}
	}
	if flat.Len() > 0 || ref.Len() > 0 {
		walk(flat.Root(), ref.Root(), nil)
	}
	// Random and boundary lookups, full and partial prefixes.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		k := rng.Intn(arity + 1)
		prefix := make([]uint32, k)
		for i := range prefix {
			prefix[i] = rng.Uint32() % 70
		}
		fn, fok := flat.Lookup(prefix...)
		rn, rok := ref.Lookup(prefix...)
		if fok != rok {
			t.Fatalf("Lookup(%v): flat %v, ref %v", prefix, fok, rok)
		}
		if fok && k < arity {
			// Compare the reached nodes' sets and, below the top, Sub views.
			if !fn.Set().Equal(rn.Set()) {
				t.Fatalf("Lookup(%v) sets diverge", prefix)
			}
			if k > 0 {
				view := Sub(fn, arity-k)
				if view.Len() != -1 {
					t.Fatalf("view Len = %d, want -1", view.Len())
				}
				want := refSubRows(rn, arity-k)
				if !reflect.DeepEqual(view.Rows(), want) {
					t.Fatalf("Sub(%v) rows diverge", prefix)
				}
			}
		}
	}
}

// refSubRows enumerates the subtree below a reference node.
func refSubRows(n *RefNode, arity int) [][]uint32 {
	view := &RefTrie{arity: arity, tuples: -1, root: n}
	return view.Rows()
}

func TestFlatMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		arity := 1 + rng.Intn(3)
		n := rng.Intn(400)
		// Alternate dense and sparse domains so both layouts appear.
		domain := uint32(8 + rng.Intn(64))
		if trial%3 == 0 {
			domain = 100000
		}
		cols := randomCols(rng, n, arity, domain)
		for _, policy := range []set.Policy{set.PolicyAuto, set.PolicyUintOnly} {
			checkFlatMatchesReference(t, cols, policy)
		}
	}
}

func TestFlatMatchesReferenceQuick(t *testing.T) {
	f := func(raw []uint32, aritySeed uint8) bool {
		arity := int(aritySeed%3) + 1
		n := len(raw) / arity
		cols := make([][]uint32, arity)
		for c := range cols {
			cols[c] = make([]uint32, n)
			for i := 0; i < n; i++ {
				cols[c][i] = raw[i*arity+c] % 512
			}
		}
		flat := BuildFromColumns(cols, set.PolicyAuto)
		ref := BuildReference(cols, set.PolicyAuto)
		return flat.Len() == ref.Len() && reflect.DeepEqual(flat.Rows(), ref.Rows())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEachEarlyStopMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cols := randomCols(rng, 300, 3, 16)
	flat := BuildFromColumns(cols, set.PolicyAuto)
	ref := BuildReference(cols, set.PolicyAuto)
	for _, stop := range []int{1, 7, flat.Len() / 2, flat.Len()} {
		var got, want [][]uint32
		count := 0
		flat.Each(func(tu []uint32) bool {
			got = append(got, append([]uint32(nil), tu...))
			count++
			return count < stop
		})
		count = 0
		ref.Each(func(tu []uint32) bool {
			want = append(want, append([]uint32(nil), tu...))
			count++
			return count < stop
		})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("early stop at %d diverges", stop)
		}
	}
}

// --- benchmarks --------------------------------------------------------------

func benchCols(n int, domain uint32) [][]uint32 {
	rng := rand.New(rand.NewSource(1))
	cols := make([][]uint32, 2)
	for c := range cols {
		cols[c] = make([]uint32, n)
		for i := range cols[c] {
			cols[c][i] = rng.Uint32() % domain
		}
	}
	return cols
}

// BenchmarkTrieBuildFlat measures the arena builder — the cost that sits
// directly under live.Compact() and shard.Partition.
func BenchmarkTrieBuildFlat(b *testing.B) {
	cols := benchCols(100000, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildFromColumns(cols, set.PolicyAuto)
	}
}

// BenchmarkTrieBuildPointer measures the retired pointer-per-node builder
// on identical input; the flat/pointer ratio is the PR's headline number
// (recorded in BENCH_5.json).
func BenchmarkTrieBuildPointer(b *testing.B) {
	cols := benchCols(100000, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildReference(cols, set.PolicyAuto)
	}
}

func BenchmarkBuildBinary(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 100000
	rows := make([][]uint32, n)
	for i := range rows {
		rows[i] = []uint32{rng.Uint32() % 10000, rng.Uint32() % 10000}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildFromRows(rows, 2, set.PolicyAuto)
	}
}

func BenchmarkLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 100000
	rows := make([][]uint32, n)
	for i := range rows {
		rows[i] = []uint32{rng.Uint32() % 10000, rng.Uint32() % 10000}
	}
	tr := BuildFromRows(rows, 2, set.PolicyAuto)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(uint32(i)%10000, uint32(i*7)%10000)
	}
}
