// reference.go preserves the pre-arena trie representation — one heap
// object per node, children addressed through a pointer slice, built by a
// comparison sort — as an executable specification. It exists for two
// consumers only: the property tests assert the flat arena trie is
// observationally identical to it on random inputs, and the perf suite
// (internal/bench, BENCH_5.json) reports the flat builder's measured
// speedup against it so the gain stays a number rather than a claim. It is
// not used on any query path.
package trie

import (
	"sort"

	"repro/internal/set"
)

// RefNode is one pointer-trie node: a set of values at this level and, for
// non-leaf levels, one child per value (addressed by the value's rank).
type RefNode struct {
	set      *set.Set
	children []*RefNode // nil at the leaf level; otherwise len == set.Len()
}

// Set returns the values present at this node's level.
func (n *RefNode) Set() *set.Set { return n.set }

// IsLeaf reports whether this node is at the last level of its trie.
func (n *RefNode) IsLeaf() bool { return n.children == nil }

// ChildByValue returns the child reached by descending with value v, or
// (nil, false) if v is not present. On a leaf it returns (nil, true) when v
// is a member.
func (n *RefNode) ChildByValue(v uint32) (*RefNode, bool) {
	r, ok := n.set.Rank(v)
	if !ok {
		return nil, false
	}
	if n.children == nil {
		return nil, true
	}
	return n.children[r], true
}

// Child returns the child for the i-th value. It panics on leaves.
func (n *RefNode) Child(i int) *RefNode {
	if n.children == nil {
		panic("trie: Child on leaf RefNode")
	}
	return n.children[i]
}

// RefTrie is the pointer-per-node trie.
type RefTrie struct {
	arity  int
	tuples int
	root   *RefNode
}

// Arity returns the number of attributes (levels).
func (t *RefTrie) Arity() int { return t.arity }

// Len returns the number of distinct tuples stored.
func (t *RefTrie) Len() int { return t.tuples }

// Root returns the root node.
func (t *RefTrie) Root() *RefNode { return t.root }

// BuildReference builds a RefTrie exactly the way the arena trie's
// predecessor did: a closure-based lexicographic sort.Slice over the row
// permutation, then a recursive construction allocating per-node value
// slices and set objects.
func BuildReference(cols [][]uint32, policy set.Policy) *RefTrie {
	arity := len(cols)
	if arity == 0 {
		panic("trie: BuildReference with zero columns")
	}
	n := len(cols[0])
	for _, c := range cols[1:] {
		if len(c) != n {
			panic("trie: ragged columns")
		}
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		for _, col := range cols {
			if col[ia] != col[ib] {
				return col[ia] < col[ib]
			}
		}
		return false
	})
	b := &refBuilder{cols: cols, policy: policy}
	root := b.build(idx, 0)
	if root == nil {
		root = &RefNode{set: set.Empty}
	}
	return &RefTrie{arity: arity, tuples: b.tuples, root: root}
}

type refBuilder struct {
	cols   [][]uint32
	policy set.Policy
	tuples int
}

func (b *refBuilder) build(idx []int, level int) *RefNode {
	if len(idx) == 0 {
		return nil
	}
	col := b.cols[level]
	leaf := level == len(b.cols)-1

	var vals []uint32
	var starts []int
	prev := uint32(0)
	for i, r := range idx {
		v := col[r]
		if i == 0 || v != prev {
			vals = append(vals, v)
			starts = append(starts, i)
			prev = v
		}
	}
	s := set.FromSorted(vals, b.policy)
	if leaf {
		b.tuples += len(vals)
		return &RefNode{set: s}
	}
	children := make([]*RefNode, len(vals))
	for gi := range vals {
		lo := starts[gi]
		hi := len(idx)
		if gi+1 < len(starts) {
			hi = starts[gi+1]
		}
		children[gi] = b.build(idx[lo:hi], level+1)
	}
	return &RefNode{set: s, children: children}
}

// Each enumerates every tuple in lexicographic order, reusing the tuple
// slice between calls; enumeration stops early if fn returns false.
func (t *RefTrie) Each(fn func(tuple []uint32) bool) {
	buf := make([]uint32, t.arity)
	t.each(t.root, 0, buf, fn)
}

func (t *RefTrie) each(n *RefNode, level int, buf []uint32, fn func([]uint32) bool) bool {
	cont := true
	n.set.Iterate(func(i int, v uint32) bool {
		buf[level] = v
		if n.IsLeaf() {
			cont = fn(buf)
		} else {
			cont = t.each(n.children[i], level+1, buf, fn)
		}
		return cont
	})
	return cont
}

// Rows materializes every tuple.
func (t *RefTrie) Rows() [][]uint32 {
	out := make([][]uint32, 0, max(t.tuples, 0))
	t.Each(func(tuple []uint32) bool {
		out = append(out, append([]uint32(nil), tuple...))
		return true
	})
	return out
}

// Lookup descends with the prefix and returns the node reached, nil for a
// full-arity prefix that exists, or (nil, false) if absent.
func (t *RefTrie) Lookup(prefix ...uint32) (*RefNode, bool) {
	if len(prefix) > t.arity {
		panic("trie: Lookup prefix longer than arity")
	}
	n := t.root
	for _, v := range prefix {
		child, ok := n.ChildByValue(v)
		if !ok {
			return nil, false
		}
		n = child
	}
	return n, true
}
