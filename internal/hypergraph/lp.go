// Package hypergraph models queries as hypergraphs (one vertex per
// attribute, one hyperedge per relation — §II-B of the paper) and computes
// the AGM bound and fractional edge cover numbers that drive GHD selection.
// The underlying linear programs are tiny (a handful of variables and
// constraints), so a dense two-phase simplex suffices.
package hypergraph

import (
	"fmt"
	"math"
)

const lpEpsilon = 1e-9

// SolveCoverLP minimizes Σ_e cost[e]·x[e] subject to, for every row r,
// Σ_{e : member[r][e]} x[e] ≥ 1, and x ≥ 0. member[r][e] says whether
// variable e participates in covering row r. It returns the optimal x and
// objective value. An error is returned when some row has no participating
// variable (the cover is infeasible).
func SolveCoverLP(cost []float64, member [][]bool) ([]float64, float64, error) {
	n := len(cost)
	m := len(member)
	if m == 0 {
		return make([]float64, n), 0, nil
	}
	for r, row := range member {
		if len(row) != n {
			return nil, 0, fmt.Errorf("hypergraph: ragged membership row %d", r)
		}
		any := false
		for _, in := range row {
			any = any || in
		}
		if !any {
			return nil, 0, fmt.Errorf("hypergraph: vertex row %d is not covered by any edge", r)
		}
	}

	// Standard form: A x - s + a = 1 with surplus s and artificials a.
	// Columns: [x (n)] [s (m)] [a (m)] [rhs].
	cols := n + 2*m
	t := make([][]float64, m)
	for r := 0; r < m; r++ {
		t[r] = make([]float64, cols+1)
		for e := 0; e < n; e++ {
			if member[r][e] {
				t[r][e] = 1
			}
		}
		t[r][n+r] = -1  // surplus
		t[r][n+m+r] = 1 // artificial
		t[r][cols] = 1  // rhs (every cover constraint has rhs 1)
	}
	basis := make([]int, m)
	for r := range basis {
		basis[r] = n + m + r
	}

	// Phase 1: minimize the sum of artificials. In canonical form the
	// reduced-cost row is the negated sum of the constraint rows over
	// non-artificial columns.
	obj := make([]float64, cols+1)
	for r := 0; r < m; r++ {
		for j := 0; j <= cols; j++ {
			if j < n+m { // x and s columns
				obj[j] -= t[r][j]
			}
		}
		obj[cols] -= t[r][cols]
	}
	if err := simplex(t, obj, basis, n+m+0); err != nil {
		return nil, 0, err
	}
	if -obj[cols] > 1e-7 {
		return nil, 0, fmt.Errorf("hypergraph: cover LP infeasible (phase-1 objective %g)", -obj[cols])
	}
	// Drive any artificial still in the basis out (degenerate case); if it
	// cannot be pivoted out its row is redundant and stays at zero.
	for r := 0; r < m; r++ {
		if basis[r] >= n+m {
			for j := 0; j < n+m; j++ {
				if math.Abs(t[r][j]) > lpEpsilon {
					pivot(t, obj, basis, r, j)
					break
				}
			}
		}
	}

	// Phase 2: real objective over x columns only, artificials forbidden.
	obj2 := make([]float64, cols+1)
	for e := 0; e < n; e++ {
		obj2[e] = cost[e]
	}
	// Canonicalize: zero out reduced costs of basic columns.
	for r, b := range basis {
		if c := obj2[b]; c != 0 {
			for j := 0; j <= cols; j++ {
				obj2[j] -= c * t[r][j]
			}
		}
	}
	if err := simplex(t, obj2, basis, n+m); err != nil {
		return nil, 0, err
	}

	x := make([]float64, n)
	for r, b := range basis {
		if b < n {
			x[b] = t[r][cols]
		}
	}
	return x, -obj2[cols], nil
}

// simplex runs the primal simplex on the tableau until optimal. Columns with
// index >= maxCol are excluded from entering the basis (used to forbid
// artificials in phase 2). Bland's rule prevents cycling.
func simplex(t [][]float64, obj []float64, basis []int, maxCol int) error {
	m := len(t)
	cols := len(obj) - 1
	if maxCol <= 0 || maxCol > cols {
		maxCol = cols
	}
	for iter := 0; ; iter++ {
		if iter > 10000 {
			return fmt.Errorf("hypergraph: simplex failed to converge")
		}
		// Entering column: smallest index with negative reduced cost.
		enter := -1
		for j := 0; j < maxCol; j++ {
			if obj[j] < -lpEpsilon {
				enter = j
				break
			}
		}
		if enter < 0 {
			return nil // optimal
		}
		// Leaving row: minimum ratio, ties by smallest basis index.
		leave := -1
		best := math.Inf(1)
		for r := 0; r < m; r++ {
			if t[r][enter] > lpEpsilon {
				ratio := t[r][cols] / t[r][enter]
				if ratio < best-lpEpsilon || (ratio < best+lpEpsilon && (leave < 0 || basis[r] < basis[leave])) {
					best = ratio
					leave = r
				}
			}
		}
		if leave < 0 {
			return fmt.Errorf("hypergraph: cover LP unbounded")
		}
		pivot(t, obj, basis, leave, enter)
	}
}

// pivot performs a full Gauss-Jordan pivot on (row, col).
func pivot(t [][]float64, obj []float64, basis []int, row, col int) {
	cols := len(obj) - 1
	p := t[row][col]
	for j := 0; j <= cols; j++ {
		t[row][j] /= p
	}
	for r := range t {
		if r != row {
			if f := t[r][col]; math.Abs(f) > 0 {
				for j := 0; j <= cols; j++ {
					t[r][j] -= f * t[row][j]
				}
			}
		}
	}
	if f := obj[col]; math.Abs(f) > 0 {
		for j := 0; j <= cols; j++ {
			obj[j] -= f * t[row][j]
		}
	}
	basis[row] = col
}
