package hypergraph

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Edge is one hyperedge: a named relation over a set of attribute vertices,
// with its cardinality for AGM weighting.
type Edge struct {
	// Name identifies the relation instance (engines use the pattern
	// index); names need not be unique.
	Name string
	// Vertices are the attributes the relation spans (variables only —
	// positions bound to constants are selections, not vertices; see
	// §III-B2 step 1).
	Vertices []string
	// Size is the relation cardinality |R_e| (after selections when the
	// planner has that estimate). Must be >= 0; 0 is treated as 1 when
	// taking logarithms.
	Size int
}

// HasVertex reports whether v is spanned by the edge.
func (e Edge) HasVertex(v string) bool {
	for _, x := range e.Vertices {
		if x == v {
			return true
		}
	}
	return false
}

// Covers reports whether every vertex in vs is spanned by the edge.
func (e Edge) Covers(vs []string) bool {
	for _, v := range vs {
		if !e.HasVertex(v) {
			return false
		}
	}
	return true
}

func (e Edge) String() string {
	return fmt.Sprintf("%s(%s)", e.Name, strings.Join(e.Vertices, ","))
}

// Hypergraph is a query hypergraph.
type Hypergraph struct {
	Edges []Edge
}

// New builds a hypergraph from edges.
func New(edges []Edge) *Hypergraph { return &Hypergraph{Edges: edges} }

// Vertices returns all vertices in deterministic (sorted) order.
func (h *Hypergraph) Vertices() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range h.Edges {
		for _, v := range e.Vertices {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Strings(out)
	return out
}

// FractionalCoverNumber returns ρ*(target): the minimum total weight of a
// fractional cover of the target vertices by the given edges (unit edge
// costs). This is the classic fractional-hypertree-width objective: the
// triangle query has ρ* = 1.5. An error is returned when some target vertex
// appears in no edge.
func FractionalCoverNumber(target []string, edges []Edge) (float64, error) {
	if len(target) == 0 {
		return 0, nil
	}
	cost := make([]float64, len(edges))
	for i := range cost {
		cost[i] = 1
	}
	_, val, err := coverLP(target, edges, cost)
	return val, err
}

// AGMBound returns the Atserias-Grohe-Marx bound on the output size of the
// join of the given edges projected to the target vertices: the minimum of
// Π_e |R_e|^{x_e} over fractional covers x of the target. Edge sizes of zero
// are clamped to one. An error is returned when the target cannot be
// covered.
func AGMBound(target []string, edges []Edge) (float64, error) {
	if len(target) == 0 {
		return 1, nil
	}
	cost := make([]float64, len(edges))
	for i, e := range edges {
		size := e.Size
		if size < 1 {
			size = 1
		}
		cost[i] = math.Log(float64(size))
	}
	_, val, err := coverLP(target, edges, cost)
	if err != nil {
		return 0, err
	}
	return math.Exp(val), nil
}

// FractionalCover returns the optimal cover weights themselves, aligned with
// edges, for unit costs.
func FractionalCover(target []string, edges []Edge) ([]float64, error) {
	if len(target) == 0 {
		return make([]float64, len(edges)), nil
	}
	cost := make([]float64, len(edges))
	for i := range cost {
		cost[i] = 1
	}
	x, _, err := coverLP(target, edges, cost)
	return x, err
}

func coverLP(target []string, edges []Edge, cost []float64) ([]float64, float64, error) {
	member := make([][]bool, len(target))
	for r, v := range target {
		row := make([]bool, len(edges))
		for i, e := range edges {
			row[i] = e.HasVertex(v)
		}
		member[r] = row
	}
	return SolveCoverLP(cost, member)
}

// Connected partitions the given edges into connected components, where two
// edges are connected when they share at least one vertex outside the
// separator set. This is the decomposition step GHD construction uses: after
// fixing a bag, the remaining edges split into independent subproblems.
func Connected(edges []int, all []Edge, separator map[string]bool) [][]int {
	if len(edges) == 0 {
		return nil
	}
	// Union-find over the edge list.
	parent := make(map[int]int, len(edges))
	for _, e := range edges {
		parent[e] = e
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	byVertex := map[string][]int{}
	for _, ei := range edges {
		for _, v := range all[ei].Vertices {
			if !separator[v] {
				byVertex[v] = append(byVertex[v], ei)
			}
		}
	}
	for _, group := range byVertex {
		for _, e := range group[1:] {
			union(group[0], e)
		}
	}
	comps := map[int][]int{}
	for _, e := range edges {
		r := find(e)
		comps[r] = append(comps[r], e)
	}
	// Deterministic output order: by smallest edge index in the component.
	var roots []int
	for r := range comps {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return comps[roots[i]][0] < comps[roots[j]][0] })
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		c := comps[r]
		sort.Ints(c)
		out = append(out, c)
	}
	return out
}
