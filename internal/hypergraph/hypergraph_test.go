package hypergraph

import (
	"math"
	"reflect"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestTriangleFractionalCover(t *testing.T) {
	// The canonical result: the triangle query has ρ* = 3/2 (§I of the
	// paper: O(N^{3/2}) worst-case output).
	edges := []Edge{
		{Name: "R", Vertices: []string{"x", "y"}, Size: 100},
		{Name: "S", Vertices: []string{"y", "z"}, Size: 100},
		{Name: "T", Vertices: []string{"z", "x"}, Size: 100},
	}
	got, err := FractionalCoverNumber([]string{"x", "y", "z"}, edges)
	if err != nil {
		t.Fatalf("FractionalCoverNumber: %v", err)
	}
	if !approx(got, 1.5) {
		t.Errorf("triangle ρ* = %v, want 1.5", got)
	}
	// AGM bound = N^{3/2}.
	bound, err := AGMBound([]string{"x", "y", "z"}, edges)
	if err != nil {
		t.Fatalf("AGMBound: %v", err)
	}
	if !approx(bound, math.Pow(100, 1.5)) {
		t.Errorf("triangle AGM = %v, want 1000", bound)
	}
	// The optimal cover puts weight 1/2 on every edge.
	x, err := FractionalCover([]string{"x", "y", "z"}, edges)
	if err != nil {
		t.Fatalf("FractionalCover: %v", err)
	}
	sum := x[0] + x[1] + x[2]
	if !approx(sum, 1.5) {
		t.Errorf("cover weights %v sum to %v", x, sum)
	}
	for _, w := range x {
		if w < -1e-9 || w > 1+1e-9 {
			t.Errorf("weight out of range: %v", x)
		}
	}
}

func TestSingleEdgeCover(t *testing.T) {
	edges := []Edge{{Name: "R", Vertices: []string{"x", "y"}, Size: 50}}
	got, err := FractionalCoverNumber([]string{"x", "y"}, edges)
	if err != nil || !approx(got, 1) {
		t.Errorf("single edge ρ* = %v, %v; want 1", got, err)
	}
	bound, err := AGMBound([]string{"x", "y"}, edges)
	if err != nil || !approx(bound, 50) {
		t.Errorf("single edge AGM = %v, %v; want 50", bound, err)
	}
}

func TestStarQueryCover(t *testing.T) {
	// R(x,y1) S(x,y2) T(x,y3): covering all vertices needs all 3 edges.
	edges := []Edge{
		{Name: "R", Vertices: []string{"x", "y1"}, Size: 10},
		{Name: "S", Vertices: []string{"x", "y2"}, Size: 10},
		{Name: "T", Vertices: []string{"x", "y3"}, Size: 10},
	}
	got, err := FractionalCoverNumber([]string{"x", "y1", "y2", "y3"}, edges)
	if err != nil || !approx(got, 3) {
		t.Errorf("star ρ* = %v, %v; want 3", got, err)
	}
	// Covering just x needs one edge.
	got, err = FractionalCoverNumber([]string{"x"}, edges)
	if err != nil || !approx(got, 1) {
		t.Errorf("cover of {x} = %v, %v; want 1", got, err)
	}
}

func TestFourCycleCover(t *testing.T) {
	// 4-cycle: ρ* = 2 (two opposite edges).
	edges := []Edge{
		{Name: "A", Vertices: []string{"a", "b"}, Size: 10},
		{Name: "B", Vertices: []string{"b", "c"}, Size: 10},
		{Name: "C", Vertices: []string{"c", "d"}, Size: 10},
		{Name: "D", Vertices: []string{"d", "a"}, Size: 10},
	}
	got, err := FractionalCoverNumber([]string{"a", "b", "c", "d"}, edges)
	if err != nil || !approx(got, 2) {
		t.Errorf("4-cycle ρ* = %v, %v; want 2", got, err)
	}
}

func TestAGMUnevenSizes(t *testing.T) {
	// With a tiny edge available, the cover leans on it: target {x,y},
	// edges R(x,y) size 1000, S(x,y) size 10 -> AGM = 10.
	edges := []Edge{
		{Name: "R", Vertices: []string{"x", "y"}, Size: 1000},
		{Name: "S", Vertices: []string{"x", "y"}, Size: 10},
	}
	bound, err := AGMBound([]string{"x", "y"}, edges)
	if err != nil || !approx(bound, 10) {
		t.Errorf("AGM = %v, %v; want 10", bound, err)
	}
}

func TestAGMZeroSizeClamped(t *testing.T) {
	edges := []Edge{{Name: "R", Vertices: []string{"x"}, Size: 0}}
	bound, err := AGMBound([]string{"x"}, edges)
	if err != nil || !approx(bound, 1) {
		t.Errorf("AGM with zero size = %v, %v; want 1", bound, err)
	}
}

func TestInfeasibleCover(t *testing.T) {
	edges := []Edge{{Name: "R", Vertices: []string{"x"}, Size: 5}}
	if _, err := FractionalCoverNumber([]string{"x", "zz"}, edges); err == nil {
		t.Errorf("expected infeasibility error")
	}
	if _, err := AGMBound([]string{"zz"}, edges); err == nil {
		t.Errorf("expected infeasibility error from AGMBound")
	}
	if _, err := FractionalCover([]string{"zz"}, edges); err == nil {
		t.Errorf("expected infeasibility error from FractionalCover")
	}
}

func TestEmptyTarget(t *testing.T) {
	edges := []Edge{{Name: "R", Vertices: []string{"x"}, Size: 5}}
	v, err := FractionalCoverNumber(nil, edges)
	if err != nil || v != 0 {
		t.Errorf("empty target ρ* = %v, %v", v, err)
	}
	b, err := AGMBound(nil, edges)
	if err != nil || b != 1 {
		t.Errorf("empty target AGM = %v, %v", b, err)
	}
	x, err := FractionalCover(nil, edges)
	if err != nil || len(x) != 1 {
		t.Errorf("empty target cover = %v, %v", x, err)
	}
}

func TestVertices(t *testing.T) {
	h := New([]Edge{
		{Name: "R", Vertices: []string{"z", "a"}},
		{Name: "S", Vertices: []string{"a", "m"}},
	})
	if got := h.Vertices(); !reflect.DeepEqual(got, []string{"a", "m", "z"}) {
		t.Errorf("Vertices = %v", got)
	}
}

func TestEdgeHelpers(t *testing.T) {
	e := Edge{Name: "R", Vertices: []string{"x", "y"}}
	if !e.HasVertex("x") || e.HasVertex("q") {
		t.Errorf("HasVertex wrong")
	}
	if !e.Covers([]string{"x"}) || !e.Covers([]string{"x", "y"}) || e.Covers([]string{"x", "q"}) {
		t.Errorf("Covers wrong")
	}
	if e.String() != "R(x,y)" {
		t.Errorf("String = %q", e.String())
	}
}

func TestConnectedComponents(t *testing.T) {
	all := []Edge{
		{Name: "A", Vertices: []string{"x", "y"}}, // 0
		{Name: "B", Vertices: []string{"y", "z"}}, // 1
		{Name: "C", Vertices: []string{"p", "q"}}, // 2
		{Name: "D", Vertices: []string{"q", "r"}}, // 3
		{Name: "E", Vertices: []string{"x", "p"}}, // 4: bridges both via x,p
	}
	// No separator: everything is one component (via E).
	comps := Connected([]int{0, 1, 2, 3, 4}, all, nil)
	if len(comps) != 1 || len(comps[0]) != 5 {
		t.Errorf("components = %v", comps)
	}
	// Separating on x and p cuts the bridge.
	sep := map[string]bool{"x": true, "p": true}
	comps = Connected([]int{0, 1, 2, 3, 4}, all, sep)
	if len(comps) != 3 {
		t.Fatalf("components with separator = %v", comps)
	}
	if !reflect.DeepEqual(comps[0], []int{0, 1}) {
		t.Errorf("first component = %v", comps[0])
	}
	if !reflect.DeepEqual(comps[1], []int{2, 3}) {
		t.Errorf("second component = %v", comps[1])
	}
	if !reflect.DeepEqual(comps[2], []int{4}) {
		t.Errorf("third component = %v", comps[2])
	}
	if got := Connected(nil, all, nil); got != nil {
		t.Errorf("empty edge list components = %v", got)
	}
}

func TestSolveCoverLPDirect(t *testing.T) {
	// min x0 + 2*x1 s.t. x0+x1 >= 1 (both cover), x1 >= 1 (only x1 covers).
	x, val, err := SolveCoverLP([]float64{1, 2}, [][]bool{{true, true}, {false, true}})
	if err != nil {
		t.Fatalf("SolveCoverLP: %v", err)
	}
	// x1 = 1 satisfies both rows; x0 = 0. Value 2.
	if !approx(val, 2) || !approx(x[1], 1) || !approx(x[0], 0) {
		t.Errorf("x = %v val = %v", x, val)
	}
	// Zero rows: trivially optimal at zero.
	x, val, err = SolveCoverLP([]float64{3}, nil)
	if err != nil || val != 0 || len(x) != 1 {
		t.Errorf("no-constraint LP = %v %v %v", x, val, err)
	}
	// Ragged membership errors.
	if _, _, err := SolveCoverLP([]float64{1}, [][]bool{{true, false}}); err == nil {
		t.Errorf("ragged membership accepted")
	}
}

func TestLPLargerRandomish(t *testing.T) {
	// A 6-vertex, 7-edge cover instance; check the LP result against the
	// obvious integral optimum of 2 ({e1 covers a,b,c}, {e2 covers d,e,f}).
	edges := []Edge{
		{Name: "e1", Vertices: []string{"a", "b", "c"}, Size: 10},
		{Name: "e2", Vertices: []string{"d", "e", "f"}, Size: 10},
		{Name: "e3", Vertices: []string{"a", "d"}, Size: 10},
		{Name: "e4", Vertices: []string{"b", "e"}, Size: 10},
		{Name: "e5", Vertices: []string{"c", "f"}, Size: 10},
		{Name: "e6", Vertices: []string{"a"}, Size: 10},
		{Name: "e7", Vertices: []string{"f"}, Size: 10},
	}
	got, err := FractionalCoverNumber([]string{"a", "b", "c", "d", "e", "f"}, edges)
	if err != nil || !approx(got, 2) {
		t.Errorf("ρ* = %v, %v; want 2", got, err)
	}
}
