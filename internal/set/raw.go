package set

// Raw arena access for serialization (internal/segment). These expose the
// backing slices a set views so the segment writer can persist whole trie
// arenas verbatim, and the matching ranked constructor lets the loader
// rebuild headers over read-only (mmap'd) arenas without recomputing — or
// writing — anything.

// RawSortedValues returns the backing slice of a UintArray set (nil for
// other layouts). The caller must not mutate it.
func (s *Set) RawSortedValues() []uint32 {
	if s.layout != UintArray {
		return nil
	}
	return s.vals
}

// RawBitset returns the backing words, rank directory, and base of a Bitset
// set (nil slices for other layouts). The caller must not mutate them.
func (s *Set) RawBitset() (words []uint64, ranks []int32, base uint32) {
	if s.layout != Bitset {
		return nil, nil, 0
	}
	return s.words, s.ranks, s.base
}

// InitBitsetRanked initializes dst like InitBitset but trusts the provided
// rank directory instead of recomputing it. InitBitset writes ranks, which
// faults on a read-only mapping; segment loading therefore persists the
// directory alongside the words and reconstructs headers with this
// constructor. All invariants of InitBitset apply; ranks must be the
// directory InitBitset would compute.
func InitBitsetRanked(dst *Set, words []uint64, ranks []int32, base uint32, card int) {
	*dst = Set{layout: Bitset, words: words, ranks: ranks, base: base, card: card}
}
