// Package set implements the two set layouts EmptyHeaded chooses between
// (§II-A2 of the paper): a sorted unsigned-integer array and a bitset. The
// layout optimizer picks the bitset layout when more than one out of every
// 256 values in the set's range is present (256 being the size of an AVX
// register in the paper); otherwise it defaults to the unsigned integer
// array.
//
// Sets are immutable after construction. All values are 32-bit ids produced
// by dictionary encoding (internal/dict).
package set

import (
	"fmt"
	"math/bits"
	"sort"
)

// Layout identifies the physical representation of a Set.
type Layout uint8

const (
	// UintArray stores the members as a sorted []uint32.
	UintArray Layout = iota
	// Bitset stores the members as a bit vector over [base, base+64*len(words)).
	Bitset
)

func (l Layout) String() string {
	switch l {
	case UintArray:
		return "uint"
	case Bitset:
		return "bitset"
	default:
		return fmt.Sprintf("Layout(%d)", uint8(l))
	}
}

// Policy controls how the layout optimizer chooses representations. The
// ablations in Table I of the paper toggle between these.
type Policy uint8

const (
	// PolicyAuto applies the paper's rule: bitset when density exceeds
	// 1/256, uint array otherwise.
	PolicyAuto Policy = iota
	// PolicyUintOnly always chooses the unsigned integer array layout. This
	// is the "-Layout" configuration in Table I and the layout used by the
	// LogicBlox-like baseline.
	PolicyUintOnly
	// PolicyAdaptive replaces the paper's global 1-in-256 rule with the
	// crossover measured on this codebase's word-parallel kernels: bitsets
	// win above one member in every adaptiveDenominator values of span, but
	// only once a set is big enough (adaptiveMinCard) that word-AND setup
	// beats a short merge, and enumeration-heavy tiny sets stay uint arrays.
	// This is the layout the statistics-driven chooser (internal/trie with
	// internal/stats) uses for serving indexes.
	PolicyAdaptive
)

// densityDenominator is the paper's 1-in-256 rule.
const densityDenominator = 256

// Adaptive-crossover constants. Measured with BenchmarkIntersectDensitySweep
// on the branch-free kernels: word-AND intersection costs ~2ns/word where
// the uint merge costs ~3-4ns/member, so a bitset pays once the set carries
// at least one member per two words of span (1/128); below adaptiveMinCard
// members the fixed word-scan and rank-directory setup outweighs any
// density advantage and iteration (the other half of the workload) strongly
// favors the flat array.
const (
	adaptiveDenominator = 128
	adaptiveMinCard     = 16
)

// Set is an immutable sorted set of uint32 values in one of two layouts.
// The zero value is the empty set in the UintArray layout.
type Set struct {
	layout Layout
	vals   []uint32 // UintArray: sorted distinct members
	words  []uint64 // Bitset: bit i of words[w] set => member base+64w+i
	ranks  []int32  // Bitset: ranks[w] = number of members in words[:w]
	base   uint32   // Bitset: value of bit 0 of words[0]; multiple of 64
	card   int
	// dir is the uint layout's seek directory: dir[k] = vals[k*64], built
	// for sets of at least uintDirMinCard members. Iter.SeekGE binary
	// searches this 64x smaller array to land in the right block before
	// searching inside it, the uint-layout analogue of the bitset's rank
	// directory.
	dir []uint32
}

// uintDirMinCard is the uint-layout cardinality above which FromSorted and
// InitSortedView attach a seek directory. Small sets gallop fast enough
// that the extra allocation (the trie builder backs thousands of tiny
// per-node sets) would cost more than it saves.
const uintDirMinCard = 2048

// buildDir samples every 64th member into the seek directory.
func buildDir(vals []uint32) []uint32 {
	n := (len(vals) + 63) / 64
	dir := make([]uint32, n)
	for k := 0; k < n; k++ {
		dir[k] = vals[k*64]
	}
	return dir
}

func attachDir(s *Set) {
	if s.layout == UintArray && s.card >= uintDirMinCard {
		s.dir = buildDir(s.vals)
	}
}

// Empty is the canonical empty set.
var Empty = &Set{}

// FromSorted builds a Set from a sorted, duplicate-free slice of values,
// choosing the layout according to policy. The slice is retained when the
// uint layout is chosen; callers must not mutate it afterwards.
func FromSorted(vals []uint32, policy Policy) *Set {
	if len(vals) == 0 {
		return Empty
	}
	if WantBitset(len(vals), vals[0], vals[len(vals)-1], policy) {
		return bitsetFromSorted(vals)
	}
	s := &Set{layout: UintArray, vals: vals, card: len(vals)}
	attachDir(s)
	return s
}

// WantBitset reports whether FromSorted would choose the bitset layout for
// a sorted set of the given cardinality and bounds under policy. The flat
// trie builder (internal/trie) asks before constructing anything so it can
// size its value and word arenas exactly.
func WantBitset(card int, min, max uint32, policy Policy) bool {
	switch policy {
	case PolicyAuto:
		return card > 0 && denseEnough(card, min, max)
	case PolicyAdaptive:
		if card < adaptiveMinCard {
			return false
		}
		span := uint64(max) - uint64(min) + 1
		return uint64(card)*adaptiveDenominator > span
	}
	return false
}

// PaperRuleWantBitset is the unmodified 1-in-256 decision, exported so the
// adaptive builder can count how often the measured crossover disagrees
// with the paper's rule (the "layout flips" the chooser stats report).
func PaperRuleWantBitset(card int, min, max uint32) bool {
	return card > 0 && denseEnough(card, min, max)
}

// BitsetWords returns the number of 64-bit words a bitset spanning
// [min, max] occupies (its base is min rounded down to a word boundary).
func BitsetWords(min, max uint32) int {
	return int((max-(min&^63))/64) + 1
}

// InitSortedView initializes dst in place as a uint-array set viewing vals,
// which must be sorted and duplicate-free. vals is retained, not copied —
// this is how the flat trie backs thousands of per-node sets with slices of
// one shared arena instead of per-set allocations. Empty vals yield the
// empty set.
func InitSortedView(dst *Set, vals []uint32) {
	if len(vals) == 0 {
		*dst = Set{}
		return
	}
	*dst = Set{layout: UintArray, vals: vals, card: len(vals)}
	attachDir(dst)
}

// InitBitset initializes dst in place as a bitset over pre-filled words
// (bit i of words[w] set ⇔ member base+64w+i). base must be a multiple of
// 64, the first and last words must be non-zero, and card must equal the
// total popcount. The rank directory is computed into ranks, which must
// have len(words); both slices are retained. The flat trie builder carves
// words and ranks out of per-level arenas.
func InitBitset(dst *Set, words []uint64, ranks []int32, base uint32, card int) {
	total := int32(0)
	for i, w := range words {
		ranks[i] = total
		total += int32(bits.OnesCount64(w))
	}
	*dst = Set{layout: Bitset, words: words, ranks: ranks, base: base, card: card}
}

// FromValues builds a Set from an arbitrary slice of values: it sorts,
// deduplicates (copying, so the argument is not retained or mutated), and
// applies the layout policy.
func FromValues(vals []uint32, policy Policy) *Set {
	if len(vals) == 0 {
		return Empty
	}
	cp := make([]uint32, len(vals))
	copy(cp, vals)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	cp = dedupSorted(cp)
	return FromSorted(cp, policy)
}

func dedupSorted(v []uint32) []uint32 {
	out := v[:1]
	for _, x := range v[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// denseEnough applies the paper's rule: use a bitset when more than one out
// of every densityDenominator values in [min, max] appears.
func denseEnough(card int, min, max uint32) bool {
	span := uint64(max) - uint64(min) + 1
	return uint64(card)*densityDenominator > span
}

func bitsetFromSorted(vals []uint32) *Set {
	base := vals[0] &^ 63
	span := vals[len(vals)-1] - base
	nwords := int(span/64) + 1
	words := make([]uint64, nwords)
	for _, v := range vals {
		off := v - base
		words[off/64] |= 1 << (off % 64)
	}
	return finishBitset(words, base, len(vals))
}

// finishBitset attaches the rank directory. words must have a non-zero first
// and last word (callers trim), card must equal the total popcount.
func finishBitset(words []uint64, base uint32, card int) *Set {
	ranks := make([]int32, len(words))
	total := int32(0)
	for i, w := range words {
		ranks[i] = total
		total += int32(bits.OnesCount64(w))
	}
	return &Set{layout: Bitset, words: words, ranks: ranks, base: base, card: card}
}

// Layout returns the physical layout of s.
func (s *Set) Layout() Layout { return s.layout }

// Len returns the cardinality of s.
func (s *Set) Len() int { return s.card }

// IsEmpty reports whether s has no members.
func (s *Set) IsEmpty() bool { return s.card == 0 }

// Min returns the smallest member. It panics on the empty set.
func (s *Set) Min() uint32 {
	if s.card == 0 {
		panic("set: Min of empty set")
	}
	if s.layout == UintArray {
		return s.vals[0]
	}
	for i, w := range s.words {
		if w != 0 {
			return s.base + uint32(i*64+bits.TrailingZeros64(w))
		}
	}
	panic("set: corrupt bitset")
}

// Max returns the largest member. It panics on the empty set.
func (s *Set) Max() uint32 {
	if s.card == 0 {
		panic("set: Max of empty set")
	}
	if s.layout == UintArray {
		return s.vals[len(s.vals)-1]
	}
	for i := len(s.words) - 1; i >= 0; i-- {
		if w := s.words[i]; w != 0 {
			return s.base + uint32(i*64+63-bits.LeadingZeros64(w))
		}
	}
	panic("set: corrupt bitset")
}

// Contains reports whether v is a member of s. For the bitset layout this is
// the constant-time probe the paper relies on for equality selections
// (§III-A); for the uint layout it is a binary search.
func (s *Set) Contains(v uint32) bool {
	switch s.layout {
	case UintArray:
		i := sort.Search(len(s.vals), func(i int) bool { return s.vals[i] >= v })
		return i < len(s.vals) && s.vals[i] == v
	case Bitset:
		if v < s.base {
			return false
		}
		off := v - s.base
		w := int(off / 64)
		if w >= len(s.words) {
			return false
		}
		return s.words[w]&(1<<(off%64)) != 0
	}
	return false
}

// Rank returns the number of members strictly smaller than v, along with
// whether v itself is a member. When v is a member, Rank is its 0-based
// index in sorted order — this is how tries address child nodes.
func (s *Set) Rank(v uint32) (int, bool) {
	switch s.layout {
	case UintArray:
		i := sort.Search(len(s.vals), func(i int) bool { return s.vals[i] >= v })
		return i, i < len(s.vals) && s.vals[i] == v
	case Bitset:
		if v < s.base {
			return 0, false
		}
		off := v - s.base
		w := int(off / 64)
		if w >= len(s.words) {
			return s.card, false
		}
		bit := off % 64
		below := int(s.ranks[w]) + bits.OnesCount64(s.words[w]&((1<<bit)-1))
		return below, s.words[w]&(1<<bit) != 0
	}
	return 0, false
}

// Select returns the i-th member in sorted order (0-based). It panics if i
// is out of range.
func (s *Set) Select(i int) uint32 {
	if i < 0 || i >= s.card {
		panic(fmt.Sprintf("set: Select(%d) out of range (card %d)", i, s.card))
	}
	switch s.layout {
	case UintArray:
		return s.vals[i]
	case Bitset:
		// Find the word containing the i-th member via the rank directory.
		w := sort.Search(len(s.ranks), func(w int) bool { return int(s.ranks[w]) > i }) - 1
		rem := i - int(s.ranks[w])
		word := s.words[w]
		for ; rem > 0; rem-- {
			word &= word - 1 // clear lowest set bit
		}
		return s.base + uint32(w*64+bits.TrailingZeros64(word))
	}
	panic("set: corrupt layout")
}

// Iterate calls fn for each member in ascending order with its 0-based
// index. Iteration stops early if fn returns false.
func (s *Set) Iterate(fn func(i int, v uint32) bool) {
	switch s.layout {
	case UintArray:
		for i, v := range s.vals {
			if !fn(i, v) {
				return
			}
		}
	case Bitset:
		idx := 0
		for w, word := range s.words {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				if !fn(idx, s.base+uint32(w*64+b)) {
					return
				}
				idx++
				word &= word - 1
			}
		}
	}
}

// Values returns the members as a fresh sorted slice.
func (s *Set) Values() []uint32 {
	out := make([]uint32, 0, s.card)
	s.Iterate(func(_ int, v uint32) bool {
		out = append(out, v)
		return true
	})
	return out
}

// AppendValues appends the members to dst in ascending order and returns the
// extended slice. It avoids the allocation of Values when a buffer is
// available.
func (s *Set) AppendValues(dst []uint32) []uint32 {
	s.Iterate(func(_ int, v uint32) bool {
		dst = append(dst, v)
		return true
	})
	return dst
}

// Equal reports whether two sets have identical membership, regardless of
// layout.
func (s *Set) Equal(o *Set) bool {
	if s.card != o.card {
		return false
	}
	eq := true
	i := 0
	ov := make([]uint32, 0, o.card)
	ov = o.AppendValues(ov)
	s.Iterate(func(_ int, v uint32) bool {
		if ov[i] != v {
			eq = false
			return false
		}
		i++
		return true
	})
	return eq
}

// String renders a short human-readable description, useful in tests.
func (s *Set) String() string {
	return fmt.Sprintf("Set{%s, card=%d}", s.layout, s.card)
}

// MemoryBytes estimates the heap bytes used by the set's payload. The layout
// optimizer benchmarks report this.
func (s *Set) MemoryBytes() int {
	switch s.layout {
	case UintArray:
		return 4 * (len(s.vals) + len(s.dir))
	case Bitset:
		return 8*len(s.words) + 4*len(s.ranks)
	}
	return 0
}
