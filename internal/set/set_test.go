package set

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func sorted(vals ...uint32) []uint32 {
	cp := append([]uint32(nil), vals...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	if len(cp) == 0 {
		return cp
	}
	return dedupSorted(cp)
}

func TestLayoutDecision(t *testing.T) {
	// Dense: 100 consecutive values => bitset under auto policy.
	dense := make([]uint32, 100)
	for i := range dense {
		dense[i] = uint32(1000 + i)
	}
	if got := FromSorted(dense, PolicyAuto).Layout(); got != Bitset {
		t.Errorf("dense set layout = %v, want Bitset", got)
	}
	// Sparse: values 256 apart fail the 1/256 rule (density exactly 1/256
	// over the span is NOT more than one in 256).
	sparse := make([]uint32, 100)
	for i := range sparse {
		sparse[i] = uint32(i * 300)
	}
	if got := FromSorted(sparse, PolicyAuto).Layout(); got != UintArray {
		t.Errorf("sparse set layout = %v, want UintArray", got)
	}
	// UintOnly policy forces arrays even for dense data.
	if got := FromSorted(dense, PolicyUintOnly).Layout(); got != UintArray {
		t.Errorf("PolicyUintOnly layout = %v, want UintArray", got)
	}
}

func TestDensityBoundary(t *testing.T) {
	// card * 256 > span required for bitset. Single element: 1*256 > 1.
	if got := FromSorted([]uint32{42}, PolicyAuto).Layout(); got != Bitset {
		t.Errorf("singleton layout = %v, want Bitset (trivially dense)", got)
	}
	// Two elements spanning exactly 512: 2*256 = 512, not > 512 => uint.
	if got := FromSorted([]uint32{0, 511}, PolicyAuto).Layout(); got != UintArray {
		t.Errorf("boundary set layout = %v, want UintArray", got)
	}
	// Two elements spanning 511: 2*256 = 512 > 511 => bitset.
	if got := FromSorted([]uint32{0, 510}, PolicyAuto).Layout(); got != Bitset {
		t.Errorf("just-dense set layout = %v, want Bitset", got)
	}
}

func TestEmptySet(t *testing.T) {
	if !Empty.IsEmpty() || Empty.Len() != 0 {
		t.Fatalf("Empty set misbehaves")
	}
	if FromSorted(nil, PolicyAuto) != Empty {
		t.Errorf("FromSorted(nil) should return the Empty singleton")
	}
	if FromValues(nil, PolicyAuto) != Empty {
		t.Errorf("FromValues(nil) should return the Empty singleton")
	}
	if Empty.Contains(0) {
		t.Errorf("Empty.Contains(0) = true")
	}
	Empty.Iterate(func(int, uint32) bool { t.Error("Empty iterated"); return true })
}

func TestMinMaxPanics(t *testing.T) {
	for _, fn := range []func(){func() { Empty.Min() }, func() { Empty.Max() }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestFromValuesSortsAndDedups(t *testing.T) {
	in := []uint32{5, 3, 5, 9, 3, 1}
	s := FromValues(in, PolicyUintOnly)
	want := []uint32{1, 3, 5, 9}
	if !reflect.DeepEqual(s.Values(), want) {
		t.Errorf("Values = %v, want %v", s.Values(), want)
	}
	// Input must not be mutated.
	if !reflect.DeepEqual(in, []uint32{5, 3, 5, 9, 3, 1}) {
		t.Errorf("FromValues mutated its input: %v", in)
	}
}

func bothLayouts(t *testing.T, vals []uint32) []*Set {
	t.Helper()
	u := FromSorted(append([]uint32(nil), vals...), PolicyUintOnly)
	b := bitsetFromSorted(vals)
	if len(vals) > 0 && (u.Len() != len(vals) || b.Len() != len(vals)) {
		t.Fatalf("cardinality mismatch: %d %d vs %d", u.Len(), b.Len(), len(vals))
	}
	return []*Set{u, b}
}

func TestContainsRankSelectBothLayouts(t *testing.T) {
	vals := sorted(3, 64, 65, 127, 128, 1000, 1001, 5000)
	for _, s := range bothLayouts(t, vals) {
		for i, v := range vals {
			if !s.Contains(v) {
				t.Errorf("%v: Contains(%d) = false", s, v)
			}
			r, ok := s.Rank(v)
			if !ok || r != i {
				t.Errorf("%v: Rank(%d) = %d,%v want %d,true", s, v, r, ok, i)
			}
			if got := s.Select(i); got != v {
				t.Errorf("%v: Select(%d) = %d, want %d", s, i, got, v)
			}
		}
		for _, v := range []uint32{0, 4, 63, 129, 4999, 5001, 1 << 30} {
			if s.Contains(v) {
				t.Errorf("%v: Contains(%d) = true", s, v)
			}
			if _, ok := s.Rank(v); ok {
				t.Errorf("%v: Rank(%d) reported membership", s, v)
			}
		}
		// Rank of a non-member equals count of smaller members.
		r, _ := s.Rank(100)
		if r != 3 {
			t.Errorf("%v: Rank(100) = %d, want 3", s, r)
		}
		if s.Min() != 3 || s.Max() != 5000 {
			t.Errorf("%v: Min/Max = %d/%d", s, s.Min(), s.Max())
		}
	}
}

func TestSelectPanicsOutOfRange(t *testing.T) {
	s := FromSorted([]uint32{1, 2, 3}, PolicyUintOnly)
	for _, i := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Select(%d) should panic", i)
				}
			}()
			s.Select(i)
		}()
	}
}

func TestIterateEarlyStop(t *testing.T) {
	for _, s := range bothLayouts(t, []uint32{1, 2, 3, 4, 5}) {
		count := 0
		s.Iterate(func(i int, v uint32) bool {
			count++
			return count < 3
		})
		if count != 3 {
			t.Errorf("%v: early stop visited %d", s, count)
		}
	}
}

func TestIterateIndices(t *testing.T) {
	vals := []uint32{10, 70, 130, 190, 700}
	for _, s := range bothLayouts(t, vals) {
		var got []uint32
		s.Iterate(func(i int, v uint32) bool {
			if i != len(got) {
				t.Errorf("%v: index %d out of sequence", s, i)
			}
			got = append(got, v)
			return true
		})
		if !reflect.DeepEqual(got, vals) {
			t.Errorf("%v: iterate = %v, want %v", s, got, vals)
		}
	}
}

func TestEqualAcrossLayouts(t *testing.T) {
	vals := sorted(1, 2, 3, 100, 200)
	ls := bothLayouts(t, vals)
	if !ls[0].Equal(ls[1]) || !ls[1].Equal(ls[0]) {
		t.Errorf("layouts of identical membership not Equal")
	}
	other := FromSorted([]uint32{1, 2, 3, 100, 201}, PolicyUintOnly)
	if ls[0].Equal(other) {
		t.Errorf("different sets reported Equal")
	}
	shorter := FromSorted([]uint32{1, 2}, PolicyUintOnly)
	if ls[0].Equal(shorter) {
		t.Errorf("different cardinalities reported Equal")
	}
}

func refIntersect(a, b []uint32) []uint32 {
	inB := map[uint32]bool{}
	for _, v := range b {
		inB[v] = true
	}
	out := []uint32{}
	for _, v := range a {
		if inB[v] {
			out = append(out, v)
		}
	}
	return out
}

func TestIntersectAllLayoutCombos(t *testing.T) {
	a := sorted(1, 5, 64, 65, 100, 1000, 2000)
	b := sorted(5, 64, 99, 100, 2000, 3000)
	want := refIntersect(a, b)
	for _, sa := range bothLayouts(t, a) {
		for _, sb := range bothLayouts(t, b) {
			got := Intersect(sa, sb).Values()
			if !reflect.DeepEqual(got, want) {
				t.Errorf("Intersect(%v,%v) = %v, want %v", sa, sb, got, want)
			}
			gotVals := IntersectValues(nil, sa, sb)
			if !reflect.DeepEqual(gotVals, want) {
				t.Errorf("IntersectValues(%v,%v) = %v, want %v", sa, sb, gotVals, want)
			}
		}
	}
}

func TestIntersectDisjoint(t *testing.T) {
	a := sorted(1, 2, 3)
	b := sorted(1000, 2000, 3000)
	for _, sa := range bothLayouts(t, a) {
		for _, sb := range bothLayouts(t, b) {
			if got := Intersect(sa, sb); !got.IsEmpty() {
				t.Errorf("disjoint intersection non-empty: %v", got.Values())
			}
		}
	}
}

func TestIntersectWithEmpty(t *testing.T) {
	s := FromSorted([]uint32{1, 2, 3}, PolicyAuto)
	if !Intersect(s, Empty).IsEmpty() || !Intersect(Empty, s).IsEmpty() {
		t.Errorf("intersection with empty not empty")
	}
	if got := IntersectValues(nil, s, Empty); len(got) != 0 {
		t.Errorf("IntersectValues with empty = %v", got)
	}
}

func TestGallopPath(t *testing.T) {
	// Force the galloping path: small has 3 members, large has 1000.
	large := make([]uint32, 1000)
	for i := range large {
		large[i] = uint32(i * 2)
	}
	small := []uint32{0, 998, 1998}
	dst := make([]uint32, len(small))
	got := dst[:intersectGallop(dst, small, large)]
	if !reflect.DeepEqual(got, []uint32{0, 998, 1998}) {
		t.Errorf("gallop = %v", got)
	}
	// Small with misses, including past the end of large.
	small2 := []uint32{1, 3, 1997, 1998, 5000}
	dst2 := make([]uint32, len(small2))
	got2 := dst2[:intersectGallop(dst2, small2, large)]
	if !reflect.DeepEqual(got2, []uint32{1998}) {
		t.Errorf("gallop with misses = %v", got2)
	}
	// Via the public API: ratio 1000/3 > gallopRatio triggers gallop.
	sa := FromSorted(small, PolicyUintOnly)
	sb := FromSorted(large, PolicyUintOnly)
	if !reflect.DeepEqual(Intersect(sa, sb).Values(), []uint32{0, 998, 1998}) {
		t.Errorf("public gallop mismatch")
	}
}

func TestIntersectMany(t *testing.T) {
	a := FromSorted(sorted(1, 2, 3, 4, 5, 6), PolicyUintOnly)
	b := FromSorted(sorted(2, 4, 6, 8), PolicyUintOnly)
	c := FromSorted(sorted(4, 6, 10), PolicyUintOnly)
	got := IntersectMany([]*Set{a, b, c}).Values()
	if !reflect.DeepEqual(got, []uint32{4, 6}) {
		t.Errorf("IntersectMany = %v", got)
	}
	if IntersectMany(nil) != Empty {
		t.Errorf("IntersectMany(nil) != Empty")
	}
	if IntersectMany([]*Set{a}) != a {
		t.Errorf("IntersectMany singleton should be identity")
	}
	d := FromSorted([]uint32{99}, PolicyUintOnly)
	if !IntersectMany([]*Set{a, b, d}).IsEmpty() {
		t.Errorf("IntersectMany should be empty")
	}
}

func TestUnionAndDifference(t *testing.T) {
	a := FromSorted(sorted(1, 3, 5), PolicyUintOnly)
	b := FromSorted(sorted(2, 3, 6), PolicyUintOnly)
	if got := Union(a, b).Values(); !reflect.DeepEqual(got, []uint32{1, 2, 3, 5, 6}) {
		t.Errorf("Union = %v", got)
	}
	if Union(a, Empty) != a || Union(Empty, b) != b {
		t.Errorf("Union with Empty should be identity")
	}
	if got := Difference(a, b).Values(); !reflect.DeepEqual(got, []uint32{1, 5}) {
		t.Errorf("Difference = %v", got)
	}
	if Difference(Empty, a) != Empty || Difference(a, Empty) != a {
		t.Errorf("Difference with Empty misbehaves")
	}
	if !Difference(a, a).IsEmpty() {
		t.Errorf("a \\ a should be empty")
	}
}

func TestMemoryBytes(t *testing.T) {
	u := FromSorted([]uint32{1, 1000000}, PolicyUintOnly)
	if u.MemoryBytes() != 8 {
		t.Errorf("uint MemoryBytes = %d, want 8", u.MemoryBytes())
	}
	b := bitsetFromSorted([]uint32{0, 63})
	if b.MemoryBytes() != 12 { // 1 word + 1 rank entry
		t.Errorf("bitset MemoryBytes = %d, want 12", b.MemoryBytes())
	}
	if Empty.MemoryBytes() != 0 {
		t.Errorf("Empty.MemoryBytes = %d", Empty.MemoryBytes())
	}
}

func TestLayoutStrings(t *testing.T) {
	if UintArray.String() != "uint" || Bitset.String() != "bitset" {
		t.Errorf("layout strings wrong")
	}
	if Layout(9).String() != "Layout(9)" {
		t.Errorf("unknown layout string wrong")
	}
}

// --- property-based tests -------------------------------------------------

// genVals produces a bounded random value slice from quick's raw input.
func genVals(raw []uint32) []uint32 {
	out := make([]uint32, 0, len(raw))
	for _, v := range raw {
		out = append(out, v%4096) // bounded domain => collisions and density
	}
	return out
}

func TestPropertyMembershipMatchesReference(t *testing.T) {
	f := func(raw []uint32) bool {
		vals := genVals(raw)
		ref := map[uint32]bool{}
		for _, v := range vals {
			ref[v] = true
		}
		for _, policy := range []Policy{PolicyAuto, PolicyUintOnly} {
			s := FromValues(vals, policy)
			if s.Len() != len(ref) {
				return false
			}
			for v := uint32(0); v < 4096; v += 7 {
				if s.Contains(v) != ref[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyIntersectionMatchesReference(t *testing.T) {
	f := func(rawA, rawB []uint32) bool {
		a, b := genVals(rawA), genVals(rawB)
		sa := FromValues(a, PolicyAuto)
		sb := FromValues(b, PolicyAuto)
		want := refIntersect(sa.Values(), sb.Values())
		got := Intersect(sa, sb).Values()
		if len(want) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyIntersectionCommutes(t *testing.T) {
	f := func(rawA, rawB []uint32) bool {
		sa := FromValues(genVals(rawA), PolicyAuto)
		sb := FromValues(genVals(rawB), PolicyAuto)
		return reflect.DeepEqual(Intersect(sa, sb).Values(), Intersect(sb, sa).Values())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyIntersectionAssociates(t *testing.T) {
	f := func(rawA, rawB, rawC []uint32) bool {
		sa := FromValues(genVals(rawA), PolicyAuto)
		sb := FromValues(genVals(rawB), PolicyAuto)
		sc := FromValues(genVals(rawC), PolicyAuto)
		left := Intersect(Intersect(sa, sb), sc).Values()
		right := Intersect(sa, Intersect(sb, sc)).Values()
		return reflect.DeepEqual(left, right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRankSelectInverse(t *testing.T) {
	f := func(raw []uint32) bool {
		vals := genVals(raw)
		if len(vals) == 0 {
			return true
		}
		for _, policy := range []Policy{PolicyAuto, PolicyUintOnly} {
			s := FromValues(vals, policy)
			for i := 0; i < s.Len(); i++ {
				v := s.Select(i)
				r, ok := s.Rank(v)
				if !ok || r != i {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyUnionDeMorganish(t *testing.T) {
	// |A ∪ B| = |A| + |B| - |A ∩ B|
	f := func(rawA, rawB []uint32) bool {
		sa := FromValues(genVals(rawA), PolicyAuto)
		sb := FromValues(genVals(rawB), PolicyAuto)
		return Union(sa, sb).Len() == sa.Len()+sb.Len()-Intersect(sa, sb).Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// --- randomized stress over layout boundaries ------------------------------

func TestRandomizedCrossLayoutIntersections(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 100; iter++ {
		n1, n2 := rng.Intn(500), rng.Intn(500)
		mod := uint32(rng.Intn(10000) + 1)
		a := make([]uint32, n1)
		for i := range a {
			a[i] = rng.Uint32() % mod
		}
		b := make([]uint32, n2)
		for i := range b {
			b[i] = rng.Uint32() % mod
		}
		sa := FromValues(a, PolicyAuto)
		sb := FromValues(b, PolicyUintOnly)
		want := refIntersect(sa.Values(), sb.Values())
		got := Intersect(sa, sb).Values()
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d: got %v want %v", iter, got, want)
		}
	}
}
