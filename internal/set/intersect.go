package set

import (
	"math/bits"
	"sync"
)

// Intersection strategy notes.
//
// The paper (§II-A2) credits layout-aware set intersection with over an
// order of magnitude on intersection-bound join patterns. We implement the
// three kernel shapes, each word-parallel where the layout allows:
//
//   uint × uint  — branch-free linear merge (sign-bit arithmetic instead of
//                  a three-way compare, so random data stops paying one
//                  mispredict per step), switching to galloping with a
//                  4-candidate SWAR probe when the size ratio is large;
//   bit  × bit   — 4-way unrolled 64-bit word AND over the overlapping
//                  range, writing into caller scratch;
//   uint × bit   — probe each array element into the bitset.
//
// Results preserve the paper's layout decision: an intersection of two
// bitsets stays a bitset (re-densifying is wasted work for intermediate
// sets); every other combination yields a uint array.
//
// Every kernel has an *Into form that writes into a reusable Scratch so
// multiway intersections (IntersectMany, exec's materialization steps)
// never allocate per step.

// gallopRatio is the size ratio beyond which uint×uint intersection switches
// from a linear merge to galloping search.
const gallopRatio = 32

// b2i converts a comparison to 0/1 without a branch (the compiler lowers
// this idiom to SETcc).
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Scratch is a pair of reusable output buffers for allocation-free
// intersections. The two buffers alternate ("ping-pong"), so a returned set
// stays valid while one more intersection — typically consuming it — runs
// through the same scratch. Scratches are not safe for concurrent use; keep
// one per worker.
type Scratch struct {
	bufs [2]scratchBuf
	cur  int
}

type scratchBuf struct {
	vals  []uint32
	words []uint64
	ranks []int32
	set   Set
}

func (b *scratchBuf) valBuf(n int) []uint32 {
	if cap(b.vals) < n {
		b.vals = make([]uint32, n)
	}
	return b.vals[:n]
}

func (b *scratchBuf) wordBuf(n int) ([]uint64, []int32) {
	if cap(b.words) < n {
		b.words = make([]uint64, n)
		b.ranks = make([]int32, n)
	}
	return b.words[:n], b.ranks[:n]
}

// Intersect returns the intersection of a and b as a new Set. The kernels
// run through pooled scratch; only the exactly sized result allocates
// (never for an empty result).
func Intersect(a, b *Set) *Set {
	sc := manyScratchPool.Get().(*Scratch)
	out := scratchToOwned(sc.IntersectInto(a, b))
	manyScratchPool.Put(sc)
	return out
}

// IntersectInto computes a ∩ b into one of sc's two buffers and returns a
// view of it. The result is invalidated by the second-next call on sc (the
// next call writes the other buffer, which is what lets a fold consume its
// own previous output).
func (sc *Scratch) IntersectInto(a, b *Set) *Set {
	if a.card == 0 || b.card == 0 {
		return Empty
	}
	sc.cur ^= 1
	buf := &sc.bufs[sc.cur]
	switch {
	case a.layout == Bitset && b.layout == Bitset:
		return intersectBitBitInto(buf, a, b)
	case a.layout == UintArray && b.layout == UintArray:
		dst := buf.valBuf(min(a.card, b.card))
		return buf.initSorted(dst[:intersectUintUint(dst, a.vals, b.vals)])
	case a.layout == UintArray:
		dst := buf.valBuf(a.card)
		return buf.initSorted(dst[:intersectUintBit(dst, a.vals, b)])
	default:
		dst := buf.valBuf(b.card)
		return buf.initSorted(dst[:intersectUintBit(dst, b.vals, a)])
	}
}

// initSorted views vals as the buffer's uint-array set — without a seek
// directory: scratch results are consumed immediately, so building one
// would be an allocation per step for nothing.
func (b *scratchBuf) initSorted(vals []uint32) *Set {
	if len(vals) == 0 {
		return Empty
	}
	b.set = Set{layout: UintArray, vals: vals, card: len(vals)}
	return &b.set
}

// IntersectMany folds sets smallest-first through sc's ping-pong buffers,
// returning Empty as soon as the running intersection vanishes. The result
// is a view subject to Scratch reuse; a single input set is returned
// unchanged.
func (sc *Scratch) IntersectMany(sets []*Set) *Set {
	switch len(sets) {
	case 0:
		return Empty
	case 1:
		return sets[0]
	}
	// Fold starting from the two smallest; order the rest ascending too so
	// each step shrinks the running set as fast as possible. Insertion sort:
	// the fan-in is tiny (one set per query pattern).
	var orderArr [16]*Set
	order := orderArr[:0]
	if len(sets) > len(orderArr) {
		order = make([]*Set, 0, len(sets))
	}
	order = append(order, sets...)
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j].card < order[j-1].card; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	acc := sc.IntersectInto(order[0], order[1])
	for _, s := range order[2:] {
		if acc.card == 0 {
			return Empty
		}
		// acc lives in one buffer; IntersectInto writes the other.
		acc = sc.IntersectInto(acc, s)
	}
	if acc.card == 0 {
		return Empty
	}
	return acc
}

// scratchToOwned copies a scratch-backed result into freshly allocated,
// exactly sized storage.
func scratchToOwned(s *Set) *Set {
	if s.card == 0 {
		return Empty
	}
	out := &Set{layout: s.layout, base: s.base, card: s.card}
	switch s.layout {
	case UintArray:
		out.vals = append([]uint32(nil), s.vals...)
		attachDir(out)
	case Bitset:
		out.words = append([]uint64(nil), s.words...)
		out.ranks = append([]int32(nil), s.ranks...)
	}
	return out
}

// manyScratchPool backs the package-level IntersectMany: the fold runs
// through pooled ping-pong buffers and only the final result is
// materialized, instead of allocating a fresh Set per pairwise step.
var manyScratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// IntersectMany intersects all sets, smallest first, returning Empty as soon
// as the running intersection vanishes. A single set is returned unchanged;
// otherwise the result is freshly allocated and owned by the caller.
func IntersectMany(sets []*Set) *Set {
	if len(sets) == 1 {
		return sets[0]
	}
	sc := manyScratchPool.Get().(*Scratch)
	out := scratchToOwned(sc.IntersectMany(sets))
	manyScratchPool.Put(sc)
	return out
}

// IntersectValues appends the intersection of a and b to dst as sorted
// values and returns the extended slice. It never allocates a Set, making it
// suitable for pipelined execution.
func IntersectValues(dst []uint32, a, b *Set) []uint32 {
	if a.card == 0 || b.card == 0 {
		return dst
	}
	switch {
	case a.layout == UintArray && b.layout == UintArray:
		off := len(dst)
		dst = append(dst, make([]uint32, min(a.card, b.card))...)
		n := intersectUintUint(dst[off:], a.vals, b.vals)
		return dst[:off+n]
	case a.layout == Bitset && b.layout == Bitset:
		sc := manyScratchPool.Get().(*Scratch)
		dst = sc.IntersectInto(a, b).AppendValues(dst)
		manyScratchPool.Put(sc)
		return dst
	case a.layout == UintArray:
		off := len(dst)
		dst = append(dst, make([]uint32, a.card)...)
		n := intersectUintBit(dst[off:], a.vals, b)
		return dst[:off+n]
	default:
		off := len(dst)
		dst = append(dst, make([]uint32, b.card)...)
		n := intersectUintBit(dst[off:], b.vals, a)
		return dst[:off+n]
	}
}

// intersectUintUint writes a ∩ b into dst (which must hold at least
// min(len(a), len(b)) values) and returns the output count.
func intersectUintUint(dst []uint32, a, b []uint32) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(b) >= gallopRatio*len(a) {
		return intersectGallop(dst, a, b)
	}
	return intersectMerge(dst, a, b)
}

// intersectMerge is the sorted-list merge intersection, word-parallel in
// two senses. First, cursor advances are branch-free (SETcc from the
// compares, not a three-way branch), so random data stops paying one
// pipeline flush per element — only the rare equality emits through a
// branch, and that one predicts well. Second, large inputs are split at the
// median value into two independent merges interleaved in one loop: a merge
// is latency-bound on its compare→advance→load chain, and two chains in
// flight roughly double the throughput the ALUs actually deliver.
func intersectMerge(dst []uint32, a, b []uint32) int {
	const twoLaneMin = 1024
	if len(a) < twoLaneMin || len(b) < twoLaneMin {
		return mergeScalar(dst, 0, a, b, 0, 0)
	}
	// Slice a into quarters by index and b at the matching value boundaries:
	// lane L covers exactly the values in [aL[0], aL+1[0]), so lane outputs
	// are disjoint and each is bounded by min(len(aL), len(bL)). Lanes write
	// into staggered regions of dst sized to those bounds, then a compaction
	// pass closes the gaps.
	var as, bs [4][]uint32
	q := len(a) / 4
	as[0], as[1], as[2], as[3] = a[:q], a[q:2*q], a[2*q:3*q], a[3*q:]
	c1 := lowerBound(b, as[1][0])
	c2 := c1 + lowerBound(b[c1:], as[2][0])
	c3 := c2 + lowerBound(b[c2:], as[3][0])
	bs[0], bs[1], bs[2], bs[3] = b[:c1], b[c1:c2], b[c2:c3], b[c3:]
	var off, i, j, k [4]int
	for l := 1; l < 4; l++ {
		off[l] = off[l-1] + min(len(as[l-1]), len(bs[l-1]))
	}
	k = off
	a0, a1, a2, a3 := as[0], as[1], as[2], as[3]
	b0, b1, b2, b3 := bs[0], bs[1], bs[2], bs[3]
	i0, i1, i2, i3 := 0, 0, 0, 0
	j0, j1, j2, j3 := 0, 0, 0, 0
	k0, k1, k2, k3 := k[0], k[1], k[2], k[3]
	for i0 < len(a0) && j0 < len(b0) && i1 < len(a1) && j1 < len(b1) &&
		i2 < len(a2) && j2 < len(b2) && i3 < len(a3) && j3 < len(b3) {
		av0, bv0 := a0[i0], b0[j0]
		av1, bv1 := a1[i1], b1[j1]
		av2, bv2 := a2[i2], b2[j2]
		av3, bv3 := a3[i3], b3[j3]
		if av0 == bv0 {
			dst[k0] = av0
			k0++
		}
		i0 += b2i(av0 <= bv0)
		j0 += b2i(bv0 <= av0)
		if av1 == bv1 {
			dst[k1] = av1
			k1++
		}
		i1 += b2i(av1 <= bv1)
		j1 += b2i(bv1 <= av1)
		if av2 == bv2 {
			dst[k2] = av2
			k2++
		}
		i2 += b2i(av2 <= bv2)
		j2 += b2i(bv2 <= av2)
		if av3 == bv3 {
			dst[k3] = av3
			k3++
		}
		i3 += b2i(av3 <= bv3)
		j3 += b2i(bv3 <= av3)
	}
	i[0], i[1], i[2], i[3] = i0, i1, i2, i3
	j[0], j[1], j[2], j[3] = j0, j1, j2, j3
	k[0], k[1], k[2], k[3] = k0, k1, k2, k3
	// Drain whichever lanes still have both inputs, then compact the lane
	// outputs down so the result is contiguous from dst[0].
	n := 0
	for l := 0; l < 4; l++ {
		k[l] = mergeScalar(dst, k[l], as[l], bs[l], i[l], j[l])
		n += copy(dst[n:], dst[off[l]:k[l]])
	}
	return n
}

// mergeScalar merges a[i:] with b[j:] into dst starting at k, returning the
// new k. One lane of intersectMerge; also the whole kernel for small inputs.
func mergeScalar(dst []uint32, k int, a, b []uint32, i, j int) int {
	for i < len(a) && j < len(b) {
		av, bv := a[i], b[j]
		if av == bv {
			dst[k] = av
			k++
		}
		i += b2i(av <= bv)
		j += b2i(bv <= av)
	}
	return k
}

// lowerBound returns the first index with vals[idx] >= v.
func lowerBound(vals []uint32, v uint32) int {
	lo, hi := 0, len(vals)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if vals[m] < v {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

// intersectGallop intersects a small sorted list a into a much larger sorted
// list b: a branch-free 4-candidate probe clears short advances in one step
// (SIMD-within-a-register: four comparisons issue in parallel, no branches),
// then exponential probing brackets the long jumps before a binary search.
// This is also the probe pattern of leapfrog triejoin.
func intersectGallop(dst []uint32, small, large []uint32) int {
	lo, k := 0, 0
	for _, v := range small {
		// 4-wide probe: in sorted data the lane count is the advance.
		if lo+4 <= len(large) {
			adv := b2i(large[lo] < v) + b2i(large[lo+1] < v) +
				b2i(large[lo+2] < v) + b2i(large[lo+3] < v)
			lo += adv
			if adv == 4 && lo < len(large) && large[lo] < v {
				lo = gallopSearch(large, lo, v)
			}
		} else {
			for lo < len(large) && large[lo] < v {
				lo++
			}
		}
		if lo >= len(large) {
			break
		}
		if large[lo] == v {
			dst[k] = v
			k++
			lo++
		}
	}
	return k
}

// gallopSearch returns the first index >= lo with large[idx] >= v, given
// large[lo] < v: exponential probe to bracket, then binary search.
func gallopSearch(large []uint32, lo int, v uint32) int {
	bound := 1
	for lo+bound < len(large) && large[lo+bound] < v {
		lo += bound
		bound <<= 1
	}
	hi := lo + bound
	if hi > len(large) {
		hi = len(large)
	}
	// Invariant: large[lo] < v; large[hi] >= v or hi == len(large).
	for lo+1 < hi {
		m := int(uint(lo+hi) >> 1)
		if large[m] < v {
			lo = m
		} else {
			hi = m
		}
	}
	return hi
}

// intersectUintBit writes the members of vals present in bs into dst
// (len(dst) >= len(vals)) and returns the count. The probe is the bitset's
// O(1) Contains, with the emit branch-free.
func intersectUintBit(dst []uint32, vals []uint32, bs *Set) int {
	base := bs.base
	words := bs.words
	limit := uint32(len(words) * 64)
	k := 0
	for _, v := range vals {
		off := v - base
		// One unsigned compare covers both v < base (wraps huge) and past-end.
		if off >= limit {
			continue
		}
		dst[k] = v
		k += int((words[off/64] >> (off % 64)) & 1)
	}
	return k
}

// intersectBitBitInto ANDs the overlapping word ranges with a 4-way unrolled
// branch-free loop into buf and initializes buf.set over the trimmed result.
func intersectBitBitInto(buf *scratchBuf, a, b *Set) *Set {
	lo := a.base
	if b.base > lo {
		lo = b.base
	}
	aEnd := a.base + uint32(len(a.words)*64)
	bEnd := b.base + uint32(len(b.words)*64)
	hi := aEnd
	if bEnd < hi {
		hi = bEnd
	}
	if lo >= hi {
		return Empty
	}
	n := int(hi-lo) / 64
	aw := a.words[int(lo-a.base)/64:]
	bw := b.words[int(lo-b.base)/64:]
	words, ranks := buf.wordBuf(n)
	card := 0
	i := 0
	// 4-way unrolled AND: four independent word ANDs and popcounts per
	// iteration keep the ALUs busy instead of serializing on one chain.
	for ; i+4 <= n; i += 4 {
		w0 := aw[i] & bw[i]
		w1 := aw[i+1] & bw[i+1]
		w2 := aw[i+2] & bw[i+2]
		w3 := aw[i+3] & bw[i+3]
		words[i], words[i+1], words[i+2], words[i+3] = w0, w1, w2, w3
		card += bits.OnesCount64(w0) + bits.OnesCount64(w1) +
			bits.OnesCount64(w2) + bits.OnesCount64(w3)
	}
	for ; i < n; i++ {
		w := aw[i] & bw[i]
		words[i] = w
		card += bits.OnesCount64(w)
	}
	if card == 0 {
		return Empty
	}
	// Trim leading/trailing zero words so the range stays tight.
	first := 0
	for words[first] == 0 {
		first++
	}
	last := n - 1
	for words[last] == 0 {
		last--
	}
	words = words[first : last+1]
	InitBitset(&buf.set, words, ranks[:len(words)], lo+uint32(first*64), card)
	return &buf.set
}

// Union returns the union of a and b as a new Set using the auto layout
// policy. Unions appear when assembling result tries.
func Union(a, b *Set) *Set {
	if a.card == 0 {
		return b
	}
	if b.card == 0 {
		return a
	}
	out := make([]uint32, 0, a.card+b.card)
	av := a.AppendValues(nil)
	bv := b.AppendValues(nil)
	i, j := 0, 0
	for i < len(av) && j < len(bv) {
		switch {
		case av[i] < bv[j]:
			out = append(out, av[i])
			i++
		case av[i] > bv[j]:
			out = append(out, bv[j])
			j++
		default:
			out = append(out, av[i])
			i++
			j++
		}
	}
	out = append(out, av[i:]...)
	out = append(out, bv[j:]...)
	return FromSorted(out, PolicyAuto)
}

// Difference returns the members of a not in b, always as a uint array
// (differences of selective filters are sparse in practice).
func Difference(a, b *Set) *Set {
	if a.card == 0 {
		return Empty
	}
	if b.card == 0 {
		return a
	}
	out := make([]uint32, 0, a.card)
	a.Iterate(func(_ int, v uint32) bool {
		if !b.Contains(v) {
			out = append(out, v)
		}
		return true
	})
	if len(out) == 0 {
		return Empty
	}
	s := &Set{layout: UintArray, vals: out, card: len(out)}
	attachDir(s)
	return s
}
