package set

import "math/bits"

// Intersection strategy notes.
//
// The paper (§II-A2) credits layout-aware set intersection with over an
// order of magnitude on intersection-bound join patterns. We implement the
// three kernel shapes:
//
//   uint × uint  — linear merge, switching to galloping (exponential probe +
//                  binary search) when the size ratio is large;
//   bit  × bit   — 64-bit word AND over the overlapping range;
//   uint × bit   — probe each array element into the bitset.
//
// Results preserve the paper's layout decision: an intersection of two
// bitsets stays a bitset (re-densifying is wasted work for intermediate
// sets); every other combination yields a uint array.

// gallopRatio is the size ratio beyond which uint×uint intersection switches
// from a linear merge to galloping search.
const gallopRatio = 32

// Intersect returns the intersection of a and b as a new Set.
func Intersect(a, b *Set) *Set {
	if a.card == 0 || b.card == 0 {
		return Empty
	}
	switch {
	case a.layout == Bitset && b.layout == Bitset:
		return intersectBitBit(a, b)
	case a.layout == UintArray && b.layout == UintArray:
		vals := IntersectValues(nil, a, b)
		if len(vals) == 0 {
			return Empty
		}
		return &Set{layout: UintArray, vals: vals, card: len(vals)}
	default:
		// Mixed: probe array members into the bitset.
		vals := IntersectValues(nil, a, b)
		if len(vals) == 0 {
			return Empty
		}
		return &Set{layout: UintArray, vals: vals, card: len(vals)}
	}
}

// IntersectValues appends the intersection of a and b to dst as sorted
// values and returns the extended slice. It never allocates a Set, making it
// suitable for pipelined execution.
func IntersectValues(dst []uint32, a, b *Set) []uint32 {
	if a.card == 0 || b.card == 0 {
		return dst
	}
	switch {
	case a.layout == UintArray && b.layout == UintArray:
		return intersectUintUint(dst, a.vals, b.vals)
	case a.layout == Bitset && b.layout == Bitset:
		s := intersectBitBit(a, b)
		return s.AppendValues(dst)
	case a.layout == UintArray:
		return intersectUintBit(dst, a.vals, b)
	default:
		return intersectUintBit(dst, b.vals, a)
	}
}

func intersectUintUint(dst []uint32, a, b []uint32) []uint32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(b) >= gallopRatio*len(a) {
		return intersectGallop(dst, a, b)
	}
	return intersectMerge(dst, a, b)
}

// intersectMerge is the textbook sorted-list merge intersection.
func intersectMerge(dst []uint32, a, b []uint32) []uint32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		av, bv := a[i], b[j]
		switch {
		case av < bv:
			i++
		case av > bv:
			j++
		default:
			dst = append(dst, av)
			i++
			j++
		}
	}
	return dst
}

// intersectGallop intersects a small sorted list a into a much larger sorted
// list b using exponential probing, the classic technique for skewed size
// ratios (it is also the probe pattern of leapfrog triejoin).
func intersectGallop(dst []uint32, small, large []uint32) []uint32 {
	lo := 0
	for _, v := range small {
		// Exponential probe from lo.
		hi := lo + 1
		for hi < len(large) && large[hi] <= v {
			lo = hi
			hi = min(2*hi, len(large))
		}
		if hi > len(large) {
			hi = len(large)
		}
		// Binary search in (lo, hi].
		l, r := lo, hi
		for l < r {
			m := (l + r) / 2
			if large[m] < v {
				l = m + 1
			} else {
				r = m
			}
		}
		lo = l
		if lo < len(large) && large[lo] == v {
			dst = append(dst, v)
			lo++
		}
		if lo >= len(large) {
			break
		}
	}
	return dst
}

func intersectUintBit(dst []uint32, vals []uint32, bs *Set) []uint32 {
	for _, v := range vals {
		if bs.Contains(v) {
			dst = append(dst, v)
		}
	}
	return dst
}

func intersectBitBit(a, b *Set) *Set {
	// Overlapping word range.
	lo := a.base
	if b.base > lo {
		lo = b.base
	}
	aEnd := a.base + uint32(len(a.words)*64)
	bEnd := b.base + uint32(len(b.words)*64)
	hi := aEnd
	if bEnd < hi {
		hi = bEnd
	}
	if lo >= hi {
		return Empty
	}
	n := int(hi-lo) / 64
	aOff := int(lo-a.base) / 64
	bOff := int(lo-b.base) / 64
	words := make([]uint64, n)
	card := 0
	first, last := -1, -1
	for i := 0; i < n; i++ {
		w := a.words[aOff+i] & b.words[bOff+i]
		words[i] = w
		if w != 0 {
			if first < 0 {
				first = i
			}
			last = i
			card += bits.OnesCount64(w)
		}
	}
	if card == 0 {
		return Empty
	}
	// Trim leading/trailing zero words so the range stays tight.
	words = words[first : last+1]
	return finishBitset(words, lo+uint32(first*64), card)
}

// IntersectMany intersects all sets, smallest first, returning Empty as soon
// as the running intersection vanishes. A single set is returned unchanged.
func IntersectMany(sets []*Set) *Set {
	switch len(sets) {
	case 0:
		return Empty
	case 1:
		return sets[0]
	}
	// Fold starting from the two smallest; order the rest ascending too so
	// each step shrinks the running set as fast as possible.
	order := make([]*Set, len(sets))
	copy(order, sets)
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j].card < order[j-1].card; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	acc := Intersect(order[0], order[1])
	for _, s := range order[2:] {
		if acc.card == 0 {
			return Empty
		}
		acc = Intersect(acc, s)
	}
	if acc.card == 0 {
		return Empty
	}
	return acc
}

// Union returns the union of a and b as a new Set using the auto layout
// policy. Unions appear when assembling result tries.
func Union(a, b *Set) *Set {
	if a.card == 0 {
		return b
	}
	if b.card == 0 {
		return a
	}
	out := make([]uint32, 0, a.card+b.card)
	av := a.AppendValues(nil)
	bv := b.AppendValues(nil)
	i, j := 0, 0
	for i < len(av) && j < len(bv) {
		switch {
		case av[i] < bv[j]:
			out = append(out, av[i])
			i++
		case av[i] > bv[j]:
			out = append(out, bv[j])
			j++
		default:
			out = append(out, av[i])
			i++
			j++
		}
	}
	out = append(out, av[i:]...)
	out = append(out, bv[j:]...)
	return FromSorted(out, PolicyAuto)
}

// Difference returns the members of a not in b, always as a uint array
// (differences of selective filters are sparse in practice).
func Difference(a, b *Set) *Set {
	if a.card == 0 {
		return Empty
	}
	if b.card == 0 {
		return a
	}
	out := make([]uint32, 0, a.card)
	a.Iterate(func(_ int, v uint32) bool {
		if !b.Contains(v) {
			out = append(out, v)
		}
		return true
	})
	if len(out) == 0 {
		return Empty
	}
	return &Set{layout: UintArray, vals: out, card: len(out)}
}
