package set_test

import (
	"sort"
	"testing"

	"repro/internal/set"
)

// fuzzVals decodes raw fuzz bytes into a sorted, deduplicated value slice.
// Two bytes per value keeps the domain small enough that intersections are
// non-trivially populated; a stride byte occasionally stretches the domain
// so both the dense (bitset) and sparse (uint + gallop) kernels run.
func fuzzVals(data []byte, stride uint32) []uint32 {
	seen := map[uint32]bool{}
	var vals []uint32
	for i := 0; i+1 < len(data); i += 2 {
		v := (uint32(data[i])<<8 | uint32(data[i+1])) * (stride + 1)
		if !seen[v] {
			seen[v] = true
			vals = append(vals, v)
		}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// refIntersect is the obviously-correct reference: map membership.
func refIntersect(a, b []uint32) []uint32 {
	in := make(map[uint32]bool, len(a))
	for _, v := range a {
		in[v] = true
	}
	out := []uint32{}
	for _, v := range b {
		if in[v] {
			out = append(out, v)
		}
	}
	return out
}

func sameVals(t *testing.T, label string, got *set.Set, want []uint32) {
	t.Helper()
	gv := got.AppendValues(nil)
	if len(gv) != len(want) {
		t.Fatalf("%s: got %d values, want %d (%v vs %v)", label, len(gv), len(want), gv, want)
	}
	for i := range want {
		if gv[i] != want[i] {
			t.Fatalf("%s: value %d = %d, want %d", label, i, gv[i], want[i])
		}
	}
}

// FuzzIntersectKernels drives every intersection kernel — merge (4-lane
// interleaved), gallop (4-wide probe), uint×bitset, bitset×bitset word-AND,
// the scratch-buffer IntersectInto path, and the ping-pong IntersectMany
// fold — against the map-membership reference, across all layout pairings
// the policies can produce.
func FuzzIntersectKernels(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 0, 3}, []byte{0, 2, 0, 3, 0, 4}, byte(0))
	f.Add([]byte{0, 1, 1, 0}, []byte{0, 1, 2, 0}, byte(9))
	f.Add([]byte{}, []byte{0, 5}, byte(1))
	f.Fuzz(func(t *testing.T, aRaw, bRaw []byte, stride byte) {
		av := fuzzVals(aRaw, uint32(stride))
		bv := fuzzVals(bRaw, uint32(stride)%3)
		want := refIntersect(av, bv)
		policies := []set.Policy{set.PolicyAuto, set.PolicyUintOnly, set.PolicyAdaptive}
		var sc set.Scratch
		for _, pa := range policies {
			for _, pb := range policies {
				a := set.FromSorted(append([]uint32(nil), av...), pa)
				b := set.FromSorted(append([]uint32(nil), bv...), pb)
				sameVals(t, "Intersect", set.Intersect(a, b), want)
				sameVals(t, "Intersect(rev)", set.Intersect(b, a), want)
				sameVals(t, "IntersectInto", sc.IntersectInto(a, b), want)
				sameVals(t, "IntersectValues",
					set.FromSorted(set.IntersectValues(nil, a, b), set.PolicyAuto), want)
				// The many-way fold exercises the ping-pong buffers: the
				// second step consumes the first step's scratch output while
				// writing the other buffer.
				sameVals(t, "IntersectMany", set.IntersectMany([]*set.Set{a, b, a}), want)
				got := sc.IntersectMany([]*set.Set{a, b, a, b})
				sameVals(t, "Scratch.IntersectMany", got, want)
			}
		}
	})
}

// FuzzSeekGE checks the iterator's leapfrog contract on both layouts
// against a linear-scan reference, including the rank-directory path (the
// directory only builds at uintDirMinCard=2048 values, so the harness
// optionally inflates the set past that threshold).
func FuzzSeekGE(f *testing.F) {
	f.Add([]byte{0, 1, 0, 50, 1, 0}, []byte{0, 0, 0, 51, 2, 0}, false)
	f.Add([]byte{0, 9, 3, 1}, []byte{0, 9, 0, 10}, true)
	f.Fuzz(func(t *testing.T, raw, probeRaw []byte, big bool) {
		vals := fuzzVals(raw, 2)
		if big {
			// Force the seek directory: extend the set beyond the directory
			// threshold with a deterministic sparse tail. The fuzz-chosen
			// prefix still controls the interesting low-value structure.
			base := uint32(1 << 20)
			for i := 0; i < 2100; i++ {
				vals = append(vals, base+uint32(i)*37)
			}
		}
		probes := fuzzVals(probeRaw, 1)
		for _, policy := range []set.Policy{set.PolicyAuto, set.PolicyUintOnly, set.PolicyAdaptive} {
			s := set.FromSorted(append([]uint32(nil), vals...), policy)
			var it set.Iter
			it.Reset(s)
			for _, p := range probes {
				// Reference: first value ≥ p, found by scan.
				idx := sort.Search(len(vals), func(i int) bool { return vals[i] >= p })
				ok := it.SeekGE(p)
				if idx == len(vals) {
					if ok {
						t.Fatalf("policy %v: SeekGE(%d) = true at %d, want exhausted", policy, p, it.Cur())
					}
					break // iterator exhausted; later (larger) probes also miss
				}
				if !ok || it.Cur() != vals[idx] {
					t.Fatalf("policy %v: SeekGE(%d) = %v cur=%d, want %d", policy, p, ok, it.Cur(), vals[idx])
				}
				if it.Pos() != idx {
					t.Fatalf("policy %v: SeekGE(%d) pos=%d, want %d", policy, p, it.Pos(), idx)
				}
			}
		}
	})
}
