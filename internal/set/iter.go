package set

import "math/bits"

// Iter is a stateful forward iterator over a Set with seek support — the
// primitive behind leapfrog-style multiway intersection (internal/exec).
// Where the old join loop re-ranked every probed value with a fresh binary
// search over the whole set, an Iter remembers its position: SeekGE gallops
// forward from the cursor on the uint layout and word-skips on the bitset
// layout, so a full leapfrog pass over a set costs O(n) amortized instead of
// O(n log n), and the iterator's Pos doubles as the trie child rank at no
// extra cost.
//
// The zero Iter is exhausted; call Reset to attach it to a set. Iters are
// values — embed them in per-depth scratch arrays and Reset in place to keep
// the join inner loop allocation-free.
type Iter struct {
	s   *Set
	pos int    // rank of the current member; == s.card when exhausted
	cur uint32 // current member; valid only when pos < s.card

	// Bitset cursor: cur lives in word w; rem holds the bits of words[w] at
	// and above cur's bit (so the lowest set bit of rem is cur).
	w   int
	rem uint64
}

// Reset points the iterator at the first member of s. An empty (or nil) set
// leaves the iterator exhausted.
func (it *Iter) Reset(s *Set) {
	if s == nil {
		s = Empty
	}
	it.s = s
	it.pos = 0
	if s.card == 0 {
		return
	}
	switch s.layout {
	case UintArray:
		it.cur = s.vals[0]
	case Bitset:
		it.w = 0
		for it.w < len(s.words) && s.words[it.w] == 0 {
			it.w++
		}
		it.rem = s.words[it.w]
		it.cur = s.base + uint32(it.w*64+bits.TrailingZeros64(it.rem))
	}
}

// Done reports whether the iterator is exhausted.
func (it *Iter) Done() bool { return it.s == nil || it.pos >= it.s.card }

// Cur returns the current member. Valid only while !Done().
func (it *Iter) Cur() uint32 { return it.cur }

// Pos returns the rank (0-based sorted index) of the current member. Valid
// only while !Done(). Tries address child nodes by exactly this rank, which
// is why the leapfrog descent needs no separate Rank probe.
func (it *Iter) Pos() int { return it.pos }

// Next advances to the following member.
func (it *Iter) Next() {
	s := it.s
	it.pos++
	if it.pos >= s.card {
		return
	}
	switch s.layout {
	case UintArray:
		it.cur = s.vals[it.pos]
	case Bitset:
		it.rem &= it.rem - 1 // clear the current member's bit
		for it.rem == 0 {
			it.w++
			it.rem = s.words[it.w] // pos < card guarantees a further word
		}
		it.cur = s.base + uint32(it.w*64+bits.TrailingZeros64(it.rem))
	}
}

// SeekGE advances the iterator to the first member ≥ v and reports whether
// one exists. It never moves backwards: if the current member is already
// ≥ v the iterator is left in place. Exhausted iterators stay exhausted.
func (it *Iter) SeekGE(v uint32) bool {
	s := it.s
	if s == nil || it.pos >= s.card {
		return false
	}
	if it.cur >= v {
		return true
	}
	switch s.layout {
	case UintArray:
		return it.seekUint(v)
	case Bitset:
		return it.seekBitset(v)
	}
	return false
}

// seekUint advances the cursor to the first member >= v in three stages
// tuned to leapfrog's access pattern: a branch-free 4-candidate probe
// (SIMD-within-a-register: the four compares issue in parallel and the lane
// count is the advance) clears the overwhelmingly common short hops in one
// step; longer jumps on directory-carrying sets binary-search the 64x
// smaller block directory — the uint analogue of the bitset's rank
// directory, touching O(log(n/64)) directory cache lines plus one value
// block instead of log(n) scattered value loads; sets below the directory
// threshold gallop as before. Cost stays O(log d) in the distance actually
// advanced, which is what makes a whole leapfrog pass linear in the set
// size.
func (it *Iter) seekUint(v uint32) bool {
	vals := it.s.vals
	lo := it.pos // vals[lo] < v (checked by SeekGE)
	if lo+4 < len(vals) {
		adv := b2i(vals[lo+1] < v) + b2i(vals[lo+2] < v) +
			b2i(vals[lo+3] < v) + b2i(vals[lo+4] < v)
		if adv < 4 {
			hi := lo + adv + 1 // vals[hi] is the first member >= v
			it.pos = hi
			it.cur = vals[hi]
			return true
		}
		lo += 4 // all four lanes < v; the invariant vals[lo] < v holds
	}
	hi := len(vals)
	if dir := it.s.dir; dir != nil {
		// Directory jump: first block whose start value is >= v bounds the
		// search window to one 64-value block.
		l, r := lo>>6+1, len(dir)
		for l < r {
			m := int(uint(l+r) >> 1)
			if dir[m] < v {
				l = m + 1
			} else {
				r = m
			}
		}
		// Blocks below l start < v, so v's position is in block l-1 or is
		// exactly the start of block l.
		if s := (l - 1) << 6; s > lo {
			lo = s // dir[l-1] < v keeps the invariant vals[lo] < v
		}
		if l < len(dir) && l<<6 < hi {
			hi = l << 6 // vals[hi] = dir[l] >= v
		}
	} else {
		bound := 1
		for lo+bound < len(vals) && vals[lo+bound] < v {
			lo += bound
			bound <<= 1
		}
		if lo+bound < hi {
			hi = lo + bound
		}
	}
	// Invariant: vals[lo] < v; vals[hi] >= v or hi == len(vals).
	for lo+1 < hi {
		m := int(uint(lo+hi) >> 1)
		if vals[m] < v {
			lo = m
		} else {
			hi = m
		}
	}
	it.pos = hi
	if hi >= len(vals) {
		return false
	}
	it.cur = vals[hi]
	return true
}

// seekBitset jumps straight to v's word, masks the bits below v, and scans
// forward for the next set bit; the rank directory re-derives Pos in O(1).
func (it *Iter) seekBitset(v uint32) bool {
	s := it.s
	off := v - s.base // v > cur >= base, so no underflow
	w := int(off / 64)
	if w >= len(s.words) {
		it.pos = s.card
		return false
	}
	rem := s.words[w] &^ ((1 << (off % 64)) - 1)
	for rem == 0 {
		w++
		if w >= len(s.words) {
			it.pos = s.card
			return false
		}
		rem = s.words[w]
	}
	b := bits.TrailingZeros64(rem)
	it.w = w
	it.rem = rem
	it.pos = int(s.ranks[w]) + bits.OnesCount64(s.words[w]&((1<<b)-1))
	it.cur = s.base + uint32(w*64+b)
	return true
}
