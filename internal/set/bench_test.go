package set

import (
	"fmt"
	"math/rand"
	"testing"
)

// genSorted produces n sorted distinct values spread over a domain chosen
// so that density = n/domain.
func genSorted(rng *rand.Rand, n int, density float64) []uint32 {
	domain := int(float64(n) / density)
	seen := map[uint32]bool{}
	vals := make([]uint32, 0, n)
	for len(vals) < n {
		v := uint32(rng.Intn(domain))
		if !seen[v] {
			seen[v] = true
			vals = append(vals, v)
		}
	}
	return dedupSorted(sortedCopy(vals))
}

func sortedCopy(v []uint32) []uint32 {
	cp := append([]uint32(nil), v...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp
}

// BenchmarkIntersectDensitySweep demonstrates the rationale for the 1/256
// layout rule (§II-A2): bitset-vs-array intersection cost as density
// changes. At high densities the bitset word-AND wins by an order of
// magnitude; at low densities the array merge wins.
func BenchmarkIntersectDensitySweep(b *testing.B) {
	for _, density := range []float64{0.5, 0.02, 1.0 / 256, 0.001} {
		rng := rand.New(rand.NewSource(1))
		a := genSorted(rng, 4096, density)
		c := genSorted(rng, 4096, density)
		for _, policy := range []struct {
			name string
			p    Policy
		}{{"auto", PolicyAuto}, {"uint", PolicyUintOnly}} {
			sa := FromSorted(a, policy.p)
			sb := FromSorted(c, policy.p)
			b.Run(fmt.Sprintf("density=%g/layout=%s", density, policy.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					Intersect(sa, sb)
				}
			})
		}
	}
}

// BenchmarkIntersectSizeRatio shows the merge-to-galloping crossover for
// skewed operand sizes.
func BenchmarkIntersectSizeRatio(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	large := genSorted(rng, 1<<16, 0.001)
	sLarge := FromSorted(large, PolicyUintOnly)
	for _, small := range []int{16, 256, 4096, 1 << 16} {
		sm := genSorted(rand.New(rand.NewSource(3)), small, 0.001)
		sSmall := FromSorted(sm, PolicyUintOnly)
		b.Run(fmt.Sprintf("ratio=%d", (1<<16)/small), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Intersect(sSmall, sLarge)
			}
		})
	}
}

// BenchmarkContains compares the §III-A selection probe across layouts:
// constant time on bitsets versus binary search on arrays.
func BenchmarkContains(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	vals := genSorted(rng, 1<<16, 0.5) // dense: auto picks bitset
	dense := FromSorted(vals, PolicyAuto)
	forced := FromSorted(vals, PolicyUintOnly)
	if dense.Layout() != Bitset {
		b.Fatalf("expected bitset layout")
	}
	b.Run("bitset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dense.Contains(uint32(i) % (1 << 17))
		}
	})
	b.Run("uint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			forced.Contains(uint32(i) % (1 << 17))
		}
	})
}

// BenchmarkBuild measures set construction per layout.
func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	vals := genSorted(rng, 1<<14, 0.1)
	for _, policy := range []struct {
		name string
		p    Policy
	}{{"auto", PolicyAuto}, {"uint", PolicyUintOnly}} {
		b.Run(policy.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				FromSorted(vals, policy.p)
			}
		})
	}
}
