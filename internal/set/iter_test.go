package set

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// bothLayouts materializes the same membership in both physical layouts so
// every iterator property can be checked for layout-independence (the
// crossover half of the seek contract: a leapfrog over mixed layouts must
// behave identically to one over uniform layouts).
func iterLayouts(vals []uint32) (uintS, bitS *Set) {
	// Bound the domain so the bitset materialization stays small; property
	// coverage cares about membership patterns, not absolute magnitudes.
	sorted := make([]uint32, len(vals))
	for i, v := range vals {
		sorted[i] = v % 100003
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if len(sorted) > 0 {
		sorted = dedupSorted(sorted)
	}
	uintS = &Set{}
	if len(sorted) > 0 {
		*uintS = Set{layout: UintArray, vals: sorted, card: len(sorted)}
	}
	if len(sorted) == 0 {
		return uintS, Empty
	}
	return uintS, bitsetFromSorted(sorted)
}

func collectIter(s *Set) []uint32 {
	var it Iter
	it.Reset(s)
	var out []uint32
	for ; !it.Done(); it.Next() {
		out = append(out, it.Cur())
	}
	return out
}

func TestIterMatchesIterate(t *testing.T) {
	f := func(vals []uint32) bool {
		u, b := iterLayouts(vals)
		want := u.Values()
		if len(want) == 0 {
			want = nil
		}
		return reflect.DeepEqual(collectIter(u), want) &&
			reflect.DeepEqual(collectIter(b), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIterPosIsRank(t *testing.T) {
	f := func(vals []uint32) bool {
		for _, s := range func() []*Set { u, b := iterLayouts(vals); return []*Set{u, b} }() {
			var it Iter
			want := 0
			for it.Reset(s); !it.Done(); it.Next() {
				if it.Pos() != want {
					return false
				}
				if r, ok := s.Rank(it.Cur()); !ok || r != want {
					return false
				}
				want++
			}
			if want != s.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSeekGEContract checks, across both layouts and against a reference
// linear scan: SeekGE lands on the smallest member ≥ v, reports presence
// exactly, never moves backwards, and leaves an in-position iterator alone.
func TestSeekGEContract(t *testing.T) {
	f := func(vals []uint32, probesRaw []uint32) bool {
		u, b := iterLayouts(vals)
		members := u.Values()
		// Probes must be sought in ascending order (the leapfrog discipline);
		// mix raw probes with existing members shifted by ±1 to hit edges.
		probes := append([]uint32(nil), probesRaw...)
		for _, m := range members {
			probes = append(probes, m, m+1, m-1)
		}
		sort.Slice(probes, func(i, j int) bool { return probes[i] < probes[j] })
		for _, s := range []*Set{u, b} {
			var it Iter
			it.Reset(s)
			for _, v := range probes {
				prevDone := it.Done()
				prevPos := it.pos
				ok := it.SeekGE(v)
				// Reference: smallest member >= v.
				i := sort.Search(len(members), func(i int) bool { return members[i] >= v })
				if ok != (i < len(members)) {
					return false
				}
				if prevDone && ok {
					return false // exhausted iterators must stay exhausted
				}
				if ok {
					if it.Cur() != members[i] || it.Pos() != i {
						return false
					}
					if it.pos < prevPos {
						return false // monotone: never moves backwards
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSeekGECrossLayout drives two iterators over the same membership in
// different layouts with an identical probe sequence and demands identical
// observable behavior at every step.
func TestSeekGECrossLayout(t *testing.T) {
	f := func(vals []uint32, probesRaw []uint32) bool {
		u, b := iterLayouts(vals)
		probes := append([]uint32(nil), probesRaw...)
		sort.Slice(probes, func(i, j int) bool { return probes[i] < probes[j] })
		var iu, ib Iter
		iu.Reset(u)
		ib.Reset(b)
		for step, v := range probes {
			oku, okb := iu.SeekGE(v), ib.SeekGE(v)
			if oku != okb {
				return false
			}
			if oku && (iu.Cur() != ib.Cur() || iu.Pos() != ib.Pos()) {
				return false
			}
			// Interleave Next to exercise the word-advance path.
			if step%3 == 0 && oku {
				iu.Next()
				ib.Next()
				if iu.Done() != ib.Done() {
					return false
				}
				if !iu.Done() && iu.Cur() != ib.Cur() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIterEmptyAndZero(t *testing.T) {
	var it Iter
	if !it.Done() {
		t.Errorf("zero Iter should be exhausted")
	}
	if it.SeekGE(0) {
		t.Errorf("zero Iter SeekGE should fail")
	}
	it.Reset(Empty)
	if !it.Done() || it.SeekGE(42) {
		t.Errorf("empty set iterator should be exhausted")
	}
	it.Reset(nil)
	if !it.Done() {
		t.Errorf("nil set iterator should be exhausted")
	}
}

func TestSeekGEBeyondMax(t *testing.T) {
	for _, policy := range []Policy{PolicyUintOnly, PolicyAuto} {
		s := FromSorted([]uint32{64, 65, 66, 67, 68, 69, 70, 71}, policy)
		var it Iter
		it.Reset(s)
		if !it.SeekGE(70) || it.Cur() != 70 {
			t.Fatalf("%v: SeekGE(70) failed", s.Layout())
		}
		if it.SeekGE(100) {
			t.Errorf("%v: SeekGE past max should fail", s.Layout())
		}
		if !it.Done() {
			t.Errorf("%v: iterator should be exhausted after failed seek", s.Layout())
		}
	}
}

func TestInitSortedViewAndInitBitset(t *testing.T) {
	vals := []uint32{3, 9, 70, 200}
	var u Set
	InitSortedView(&u, vals)
	if u.Layout() != UintArray || u.Len() != 4 || !reflect.DeepEqual(u.Values(), vals) {
		t.Errorf("InitSortedView: %v %v", u, u.Values())
	}
	var z Set
	InitSortedView(&z, nil)
	if !z.IsEmpty() {
		t.Errorf("InitSortedView(nil) not empty")
	}

	ref := bitsetFromSorted(vals)
	words := make([]uint64, len(ref.words))
	copy(words, ref.words)
	ranks := make([]int32, len(words))
	var b Set
	InitBitset(&b, words, ranks, ref.base, 4)
	if b.Layout() != Bitset || !b.Equal(ref) {
		t.Errorf("InitBitset mismatch: %v vs %v", b.Values(), ref.Values())
	}
	for _, v := range vals {
		if r1, ok1 := b.Rank(v); !ok1 {
			t.Errorf("InitBitset Rank(%d) absent", v)
		} else if r2, _ := ref.Rank(v); r1 != r2 {
			t.Errorf("InitBitset Rank(%d) = %d, want %d", v, r1, r2)
		}
	}
}

func TestWantBitsetMatchesFromSorted(t *testing.T) {
	f := func(vals []uint32) bool {
		sorted := append([]uint32(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		if len(sorted) == 0 {
			return !WantBitset(0, 0, 0, PolicyAuto)
		}
		sorted = dedupSorted(sorted)
		min, max := sorted[0], sorted[len(sorted)-1]
		for _, p := range []Policy{PolicyAuto, PolicyUintOnly} {
			got := FromSorted(append([]uint32(nil), sorted...), p)
			if WantBitset(len(sorted), min, max, p) != (got.Layout() == Bitset) {
				return false
			}
			if got.Layout() == Bitset && BitsetWords(min, max) != len(got.words) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// BenchmarkSeekGE measures the seek kernels: a leapfrog-style ascending
// probe sequence over each layout, versus the repeated full binary search
// (Rank) the old join loop paid per probe.
func BenchmarkSeekGE(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	sparse := genSorted(rng, 1<<16, 0.001) // uint layout under auto
	dense := genSorted(rng, 1<<16, 0.5)    // bitset layout under auto
	probeEvery := uint32(3)
	for _, tc := range []struct {
		name string
		s    *Set
	}{
		{"uint", FromSorted(sparse, PolicyUintOnly)},
		{"bitset", FromSorted(dense, PolicyAuto)},
	} {
		maxV := tc.s.Max()
		b.Run(tc.name+"/seek", func(b *testing.B) {
			var it Iter
			for i := 0; i < b.N; i++ {
				it.Reset(tc.s)
				for v := uint32(0); v < maxV; v += probeEvery {
					if !it.SeekGE(v) {
						break
					}
				}
			}
		})
		b.Run(tc.name+"/rank", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for v := uint32(0); v < maxV; v += probeEvery {
					tc.s.Rank(v)
				}
			}
		})
	}
}
