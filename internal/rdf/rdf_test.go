package rdf

import (
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://example.org/a"), "<http://example.org/a>"},
		{NewBlank("b0"), "_:b0"},
		{NewLiteral("hello"), `"hello"`},
		{NewLangLiteral("bonjour", "fr"), `"bonjour"@fr`},
		{NewTypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer"), `"42"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{NewLiteral("tab\there"), `"tab\there"`},
		{NewLiteral(`quote"and\slash`), `"quote\"and\\slash"`},
		{NewLiteral("line\nbreak"), `"line\nbreak"`},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.term, got, c.want)
		}
	}
}

func TestTermKindString(t *testing.T) {
	if IRI.String() != "IRI" || Literal.String() != "Literal" || Blank.String() != "Blank" {
		t.Errorf("unexpected kind strings: %s %s %s", IRI, Literal, Blank)
	}
	if got := TermKind(42).String(); got != "TermKind(42)" {
		t.Errorf("TermKind(42).String() = %q", got)
	}
}

func TestTermCompare(t *testing.T) {
	ordered := []Term{
		NewIRI("http://a"),
		NewIRI("http://b"),
		NewLiteral("a"),
		NewLiteral("a@en"), // value sorts before same value with lang below
		NewLangLiteral("b", "en"),
		NewBlank("x"),
	}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			switch {
			case i < j && got >= 0:
				t.Errorf("Compare(%v, %v) = %d, want < 0", ordered[i], ordered[j], got)
			case i > j && got <= 0:
				t.Errorf("Compare(%v, %v) = %d, want > 0", ordered[i], ordered[j], got)
			case i == j && got != 0:
				t.Errorf("Compare(%v, %v) = %d, want 0", ordered[i], ordered[j], got)
			}
		}
	}
}

func TestTermCompareLangDatatype(t *testing.T) {
	a := NewLangLiteral("v", "de")
	b := NewLangLiteral("v", "en")
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 {
		t.Errorf("language tags should order literals")
	}
	c := NewTypedLiteral("v", "http://dt/a")
	d := NewTypedLiteral("v", "http://dt/b")
	if c.Compare(d) >= 0 {
		t.Errorf("datatypes should order literals")
	}
}

func TestParseTripleBasic(t *testing.T) {
	tr, err := ParseTriple(`<http://ex/s> <http://ex/p> <http://ex/o> .`)
	if err != nil {
		t.Fatalf("ParseTriple: %v", err)
	}
	want := Triple{NewIRI("http://ex/s"), NewIRI("http://ex/p"), NewIRI("http://ex/o")}
	if tr != want {
		t.Errorf("got %v, want %v", tr, want)
	}
}

func TestParseTripleLiteralForms(t *testing.T) {
	cases := []struct {
		in   string
		want Term
	}{
		{`<http://s> <http://p> "plain" .`, NewLiteral("plain")},
		{`<http://s> <http://p> "esc\"aped" .`, NewLiteral(`esc"aped`)},
		{`<http://s> <http://p> "tab\tend" .`, NewLiteral("tab\tend")},
		{`<http://s> <http://p> "nl\nend" .`, NewLiteral("nl\nend")},
		{`<http://s> <http://p> "fr"@fr .`, NewLangLiteral("fr", "fr")},
		{`<http://s> <http://p> "5"^^<http://www.w3.org/2001/XMLSchema#int> .`, NewTypedLiteral("5", "http://www.w3.org/2001/XMLSchema#int")},
		{`<http://s> <http://p> "uniA" .`, NewLiteral("uniA")},
		{`<http://s> <http://p> "uni\U0001F600" .`, NewLiteral("uni\U0001F600")},
	}
	for _, c := range cases {
		tr, err := ParseTriple(c.in)
		if err != nil {
			t.Errorf("ParseTriple(%q): %v", c.in, err)
			continue
		}
		if tr.O != c.want {
			t.Errorf("ParseTriple(%q).O = %+v, want %+v", c.in, tr.O, c.want)
		}
	}
}

func TestParseTripleBlankNodes(t *testing.T) {
	tr, err := ParseTriple(`_:a <http://p> _:b .`)
	if err != nil {
		t.Fatalf("ParseTriple: %v", err)
	}
	if tr.S != NewBlank("a") || tr.O != NewBlank("b") {
		t.Errorf("got %v", tr)
	}
}

func TestParseTripleErrors(t *testing.T) {
	bad := []string{
		``,
		`<http://s>`,
		`<http://s> <http://p>`,
		`<http://s> <http://p> <http://o>`,      // missing dot
		`<http://s> <http://p> <http://o> . x`,  // trailing garbage
		`<http://s> "lit" <http://o> .`,         // literal predicate
		`"lit" <http://p> <http://o> .`,         // literal subject
		`_:b "x" <http://o> .`,                  // literal predicate again
		`<http://s> _:b <http://o> .`,           // blank predicate
		`<http://s> <http://p> "unterminated .`, // unterminated literal
		`<http://s> <http://p> "bad\q" .`,       // unknown escape
		`<http://s> <http://p> "bad\u00G0" .`,   // bad hex
		`<http://s> <http://p> "x"@ .`,          // empty lang
		`<http://s> <http://p> <> .`,            // empty IRI
		`<http://s <http://p> <http://o> .`,     // unterminated IRI: consumes >, then fails
		`_: <http://p> <http://o> .`,            // empty blank label
	}
	for _, in := range bad {
		if _, err := ParseTriple(in); err == nil {
			t.Errorf("ParseTriple(%q): expected error, got none", in)
		}
	}
}

func TestParseErrorMessage(t *testing.T) {
	_, err := ParseTriple(`<http://s> <http://p> bad .`)
	if err == nil {
		t.Fatal("expected error")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("expected *ParseError, got %T", err)
	}
	if pe.Line != 1 || pe.Col == 0 || !strings.Contains(pe.Error(), "line 1") {
		t.Errorf("unexpected error detail: %+v / %s", pe, pe.Error())
	}
}

func TestReaderSkipsCommentsAndBlanks(t *testing.T) {
	doc := `
# a comment
<http://s> <http://p> <http://o1> .

<http://s> <http://p> "two" .
# trailing comment`
	got, err := ReadAll(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d triples, want 2", len(got))
	}
	if got[1].O != NewLiteral("two") {
		t.Errorf("second triple object = %v", got[1].O)
	}
}

func TestReaderErrorsCarryLineNumbers(t *testing.T) {
	doc := "<http://s> <http://p> <http://o> .\nbogus line\n"
	r := NewReader(strings.NewReader(doc))
	if _, err := r.Read(); err != nil {
		t.Fatalf("first Read: %v", err)
	}
	_, err := r.Read()
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("expected *ParseError, got %v", err)
	}
	if pe.Line != 2 {
		t.Errorf("error line = %d, want 2", pe.Line)
	}
}

func TestReaderNoTrailingNewline(t *testing.T) {
	got, err := ReadAll(strings.NewReader(`<http://s> <http://p> <http://o> .`))
	if err != nil || len(got) != 1 {
		t.Fatalf("ReadAll = %v, %v", got, err)
	}
}

func TestReaderEmptyInput(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("Read on empty input: %v, want EOF", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	triples := []Triple{
		{NewIRI("http://s/1"), NewIRI("http://p"), NewIRI("http://o")},
		{NewBlank("b1"), NewIRI("http://p"), NewLiteral("weird \"chars\"\n\t\\ here")},
		{NewIRI("http://s/2"), NewIRI(RDFType), NewLangLiteral("chat", "fr")},
		{NewIRI("http://s/3"), NewIRI("http://p"), NewTypedLiteral("3.14", "http://www.w3.org/2001/XMLSchema#decimal")},
	}
	var sb strings.Builder
	if err := WriteAll(&sb, triples); err != nil {
		t.Fatalf("WriteAll: %v", err)
	}
	got, err := ReadAll(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !reflect.DeepEqual(got, triples) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", got, triples)
	}
}

// TestLiteralRoundTripProperty checks, for arbitrary literal contents, that
// serialize→parse is the identity. This exercises the escaping machinery.
func TestLiteralRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		// N-Triples cannot represent invalid UTF-8; normalize first the way
		// Go does when writing runes.
		s = strings.ToValidUTF8(s, "�")
		in := Triple{NewIRI("http://s"), NewIRI("http://p"), NewLiteral(s)}
		out, err := ParseTriple(in.String())
		if err != nil {
			t.Logf("parse error for %q: %v", s, err)
			return false
		}
		return out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTripleStringAndCompare(t *testing.T) {
	a := Triple{NewIRI("http://a"), NewIRI("http://p"), NewIRI("http://o")}
	b := Triple{NewIRI("http://b"), NewIRI("http://p"), NewIRI("http://o")}
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 || a.Compare(a) != 0 {
		t.Errorf("triple compare broken")
	}
	want := "<http://a> <http://p> <http://o> ."
	if a.String() != want {
		t.Errorf("String() = %q, want %q", a.String(), want)
	}
	c := Triple{NewIRI("http://a"), NewIRI("http://p"), NewIRI("http://n")}
	if a.Compare(c) <= 0 {
		t.Errorf("object should break ties")
	}
	d := Triple{NewIRI("http://a"), NewIRI("http://o"), NewIRI("http://o")}
	if a.Compare(d) <= 0 {
		t.Errorf("predicate should break ties")
	}
}

func TestKeyUniqueness(t *testing.T) {
	terms := []Term{
		NewIRI("x"),
		NewBlank("x"),
		NewLiteral("x"),
		NewLangLiteral("x", "en"),
		NewTypedLiteral("x", "http://dt"),
	}
	seen := map[string]bool{}
	for _, tm := range terms {
		k := tm.Key()
		if seen[k] {
			t.Errorf("duplicate key %q", k)
		}
		seen[k] = true
	}
}
