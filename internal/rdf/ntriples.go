package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// ParseError describes a syntax error in an N-Triples document.
type ParseError struct {
	Line int    // 1-based line number
	Col  int    // 1-based byte column
	Msg  string // human-readable description
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("ntriples: line %d col %d: %s", e.Line, e.Col, e.Msg)
}

// Reader is a streaming N-Triples parser. It accepts the line-oriented
// N-Triples syntax: one triple per line, '#' comments, blank lines, and the
// standard term syntaxes (IRIs in angle brackets, quoted literals with
// optional ^^<datatype> or @lang, and _:label blank nodes).
type Reader struct {
	br   *bufio.Reader
	line int
}

// NewReader returns a Reader consuming from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Read returns the next triple, or io.EOF when the input is exhausted.
func (r *Reader) Read() (Triple, error) {
	for {
		r.line++
		line, err := r.br.ReadString('\n')
		if err != nil && err != io.EOF {
			return Triple{}, err
		}
		atEOF := err == io.EOF
		trimmed := strings.TrimSpace(line)
		if trimmed != "" && !strings.HasPrefix(trimmed, "#") {
			t, perr := parseLine(trimmed, r.line)
			if perr != nil {
				return Triple{}, perr
			}
			return t, nil
		}
		if atEOF {
			return Triple{}, io.EOF
		}
	}
}

// ReadAll parses every triple from r. It is a convenience wrapper around
// NewReader for small inputs; large loads should stream with Read.
func ReadAll(r io.Reader) ([]Triple, error) {
	rd := NewReader(r)
	var out []Triple
	for {
		t, err := rd.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
}

// ParseTriple parses a single N-Triples statement (one line).
func ParseTriple(line string) (Triple, error) {
	return parseLine(strings.TrimSpace(line), 1)
}

type lineParser struct {
	s    string
	pos  int
	line int
}

func (p *lineParser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Col: p.pos + 1, Msg: fmt.Sprintf(format, args...)}
}

func (p *lineParser) skipWS() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t') {
		p.pos++
	}
}

func (p *lineParser) peek() byte {
	if p.pos >= len(p.s) {
		return 0
	}
	return p.s[p.pos]
}

func parseLine(line string, lineNo int) (Triple, error) {
	p := &lineParser{s: line, line: lineNo}
	s, err := p.parseTerm(true)
	if err != nil {
		return Triple{}, err
	}
	p.skipWS()
	pr, err := p.parseTerm(false)
	if err != nil {
		return Triple{}, err
	}
	if pr.Kind != IRI {
		return Triple{}, p.errf("predicate must be an IRI, got %s", pr.Kind)
	}
	p.skipWS()
	o, err := p.parseTerm(true)
	if err != nil {
		return Triple{}, err
	}
	p.skipWS()
	if p.peek() != '.' {
		return Triple{}, p.errf("expected '.' terminator, got %q", rest(p))
	}
	p.pos++
	p.skipWS()
	if p.pos != len(p.s) {
		return Triple{}, p.errf("trailing content after '.': %q", rest(p))
	}
	if s.Kind == Literal {
		return Triple{}, p.errf("subject must not be a literal")
	}
	return Triple{S: s, P: pr, O: o}, nil
}

func rest(p *lineParser) string {
	r := p.s[p.pos:]
	if len(r) > 20 {
		r = r[:20] + "..."
	}
	return r
}

func (p *lineParser) parseTerm(allowAll bool) (Term, error) {
	p.skipWS()
	switch p.peek() {
	case '<':
		return p.parseIRI()
	case '_':
		if !allowAll {
			return Term{}, p.errf("blank node not allowed here")
		}
		return p.parseBlank()
	case '"':
		if !allowAll {
			return Term{}, p.errf("literal not allowed here")
		}
		return p.parseLiteral()
	case 0:
		return Term{}, p.errf("unexpected end of statement")
	default:
		return Term{}, p.errf("unexpected character %q", p.s[p.pos])
	}
}

func (p *lineParser) parseIRI() (Term, error) {
	if p.peek() != '<' {
		return Term{}, p.errf("expected '<' to open an IRI, got %q", rest(p))
	}
	end := strings.IndexByte(p.s[p.pos:], '>')
	if end < 0 {
		return Term{}, p.errf("unterminated IRI")
	}
	iri := p.s[p.pos+1 : p.pos+end]
	if iri == "" {
		return Term{}, p.errf("empty IRI")
	}
	if !utf8.ValidString(iri) {
		return Term{}, p.errf("IRI contains invalid UTF-8")
	}
	p.pos += end + 1
	return NewIRI(iri), nil
}

func (p *lineParser) parseBlank() (Term, error) {
	if p.pos+1 >= len(p.s) || p.s[p.pos+1] != ':' {
		return Term{}, p.errf("malformed blank node label")
	}
	start := p.pos + 2
	i := start
	for i < len(p.s) && !isTermDelim(p.s[i]) {
		i++
	}
	if i == start {
		return Term{}, p.errf("empty blank node label")
	}
	label := p.s[start:i]
	p.pos = i
	return NewBlank(label), nil
}

func isTermDelim(c byte) bool { return c == ' ' || c == '\t' }

func (p *lineParser) parseLiteral() (Term, error) {
	// p.s[p.pos] == '"'
	var b strings.Builder
	i := p.pos + 1
	closed := false
	for i < len(p.s) {
		c := p.s[i]
		if c == '\\' {
			if i+1 >= len(p.s) {
				return Term{}, p.errf("dangling escape in literal")
			}
			esc, n, err := decodeEscape(p.s[i:])
			if err != nil {
				p.pos = i
				return Term{}, p.errf("%v", err)
			}
			b.WriteString(esc)
			i += n
			continue
		}
		if c == '"' {
			closed = true
			i++
			break
		}
		b.WriteByte(c)
		i++
	}
	if !closed {
		return Term{}, p.errf("unterminated literal")
	}
	if !utf8.ValidString(b.String()) {
		return Term{}, p.errf("literal contains invalid UTF-8")
	}
	t := NewLiteral(b.String())
	// Optional suffix: @lang or ^^<datatype>.
	if i < len(p.s) && p.s[i] == '@' {
		start := i + 1
		j := start
		for j < len(p.s) && !isTermDelim(p.s[j]) {
			j++
		}
		if j == start {
			p.pos = i
			return Term{}, p.errf("empty language tag")
		}
		t.Lang = p.s[start:j]
		i = j
	} else if i+1 < len(p.s) && p.s[i] == '^' && p.s[i+1] == '^' {
		p.pos = i + 2
		dt, err := p.parseIRI()
		if err != nil {
			return Term{}, err
		}
		t.Datatype = dt.Value
		i = p.pos
	}
	p.pos = i
	return t, nil
}

// decodeEscape decodes one backslash escape starting at s[0]=='\\' and
// returns the decoded text plus the number of input bytes consumed.
func decodeEscape(s string) (string, int, error) {
	if len(s) < 2 {
		return "", 0, fmt.Errorf("dangling escape")
	}
	switch s[1] {
	case 't':
		return "\t", 2, nil
	case 'n':
		return "\n", 2, nil
	case 'r':
		return "\r", 2, nil
	case '"':
		return `"`, 2, nil
	case '\\':
		return `\`, 2, nil
	case 'u':
		if len(s) < 6 {
			return "", 0, fmt.Errorf("truncated \\u escape")
		}
		r, err := hexRune(s[2:6])
		if err != nil {
			return "", 0, err
		}
		return string(r), 6, nil
	case 'U':
		if len(s) < 10 {
			return "", 0, fmt.Errorf("truncated \\U escape")
		}
		r, err := hexRune(s[2:10])
		if err != nil {
			return "", 0, err
		}
		return string(r), 10, nil
	default:
		return "", 0, fmt.Errorf("unknown escape \\%c", s[1])
	}
}

func hexRune(hex string) (rune, error) {
	var r rune
	for i := 0; i < len(hex); i++ {
		c := hex[i]
		var v rune
		switch {
		case c >= '0' && c <= '9':
			v = rune(c - '0')
		case c >= 'a' && c <= 'f':
			v = rune(c-'a') + 10
		case c >= 'A' && c <= 'F':
			v = rune(c-'A') + 10
		default:
			return 0, fmt.Errorf("invalid hex digit %q", c)
		}
		r = r<<4 | v
	}
	return r, nil
}

// Writer emits triples in N-Triples syntax.
type Writer struct {
	bw *bufio.Writer
}

// NewWriter returns a Writer emitting to w. Call Flush when done.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Write emits one triple as a single N-Triples line.
func (w *Writer) Write(t Triple) error {
	if _, err := w.bw.WriteString(t.String()); err != nil {
		return err
	}
	return w.bw.WriteByte('\n')
}

// Flush flushes buffered output to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// WriteAll writes every triple to w in N-Triples syntax.
func WriteAll(w io.Writer, triples []Triple) error {
	nw := NewWriter(w)
	for _, t := range triples {
		if err := nw.Write(t); err != nil {
			return err
		}
	}
	return nw.Flush()
}
