// Package rdf provides the core RDF data model used throughout the
// repository: terms (IRIs, literals, blank nodes), triples, and a streaming
// N-Triples reader and writer.
//
// The model is deliberately minimal: it covers exactly the subset of RDF 1.1
// needed by the LUBM benchmark and the engines in this repository. Datatype
// and language-tagged literals are preserved verbatim but not interpreted.
package rdf

import (
	"fmt"
	"strings"
)

// TermKind discriminates the three RDF term kinds.
type TermKind uint8

const (
	// IRI is an absolute IRI reference such as <http://example.org/a>.
	IRI TermKind = iota
	// Literal is an RDF literal, optionally carrying a datatype IRI or a
	// language tag.
	Literal
	// Blank is a blank node with a document-scoped label.
	Blank
)

func (k TermKind) String() string {
	switch k {
	case IRI:
		return "IRI"
	case Literal:
		return "Literal"
	case Blank:
		return "Blank"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is one RDF term. Terms are value types; the zero value is the empty
// IRI, which is never produced by the parser.
type Term struct {
	// Kind says which of the three RDF term kinds this is.
	Kind TermKind
	// Value holds the IRI string (without angle brackets), the literal's
	// lexical form (without quotes), or the blank node label (without "_:").
	Value string
	// Datatype holds the datatype IRI for typed literals, or "" for plain
	// literals and non-literals.
	Datatype string
	// Lang holds the language tag for language-tagged literals, or "".
	Lang string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewLiteral returns a plain literal term.
func NewLiteral(lexical string) Term { return Term{Kind: Literal, Value: lexical} }

// NewTypedLiteral returns a literal with an explicit datatype IRI.
func NewTypedLiteral(lexical, datatype string) Term {
	return Term{Kind: Literal, Value: lexical, Datatype: datatype}
}

// NewLangLiteral returns a language-tagged literal.
func NewLangLiteral(lexical, lang string) Term {
	return Term{Kind: Literal, Value: lexical, Lang: lang}
}

// NewBlank returns a blank node term with the given label.
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == Blank }

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Blank:
		return "_:" + t.Value
	case Literal:
		var b strings.Builder
		b.WriteByte('"')
		b.WriteString(escapeLiteral(t.Value))
		b.WriteByte('"')
		if t.Lang != "" {
			b.WriteByte('@')
			b.WriteString(t.Lang)
		} else if t.Datatype != "" {
			b.WriteString("^^<")
			b.WriteString(t.Datatype)
			b.WriteByte('>')
		}
		return b.String()
	default:
		return fmt.Sprintf("<invalid term kind %d>", t.Kind)
	}
}

// Key returns a canonical string that uniquely identifies the term. It is
// suitable for use as a map key and for dictionary encoding. The N-Triples
// rendering is already canonical for our purposes, so Key simply reuses it.
func (t Term) Key() string { return t.String() }

// Compare orders terms: first by kind (IRI < Literal < Blank), then by
// value, datatype, and language. It returns -1, 0, or +1.
func (t Term) Compare(o Term) int {
	if t.Kind != o.Kind {
		if t.Kind < o.Kind {
			return -1
		}
		return 1
	}
	if c := strings.Compare(t.Value, o.Value); c != 0 {
		return c
	}
	if c := strings.Compare(t.Datatype, o.Datatype); c != 0 {
		return c
	}
	return strings.Compare(t.Lang, o.Lang)
}

// escapeLiteral escapes the characters that N-Triples requires escaping
// inside string literals.
func escapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Triple is one RDF statement.
type Triple struct {
	S, P, O Term
}

// String renders the triple as one N-Triples line (without the newline).
func (t Triple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String() + " ."
}

// Compare orders triples lexicographically by (S, P, O).
func (t Triple) Compare(o Triple) int {
	if c := t.S.Compare(o.S); c != 0 {
		return c
	}
	if c := t.P.Compare(o.P); c != 0 {
		return c
	}
	return t.O.Compare(o.O)
}

// Well-known IRIs used across the repository.
const (
	// RDFType is the rdf:type predicate IRI.
	RDFType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	// XSDString is the default string datatype (left implicit on plain
	// literals, per RDF 1.1).
	XSDString = "http://www.w3.org/2001/XMLSchema#string"
)
