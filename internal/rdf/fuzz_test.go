package rdf

import (
	"strings"
	"testing"
)

// FuzzParseTriple checks that the N-Triples parser never panics and that
// anything it accepts round-trips through the writer.
func FuzzParseTriple(f *testing.F) {
	seeds := []string{
		`<http://s> <http://p> <http://o> .`,
		`_:b <http://p> "lit"@en .`,
		`<http://s> <http://p> "x\ty\n"^^<http://dt> .`,
		`<http://s> <http://p> "A\U0001F600" .`,
		`# comment`,
		``,
		`<a> <b> <c>`,
		`"lit" <p> <o> .`,
		`<s> <p> "unterminated`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		tr, err := ParseTriple(line)
		if err != nil {
			return
		}
		again, err := ParseTriple(tr.String())
		if err != nil {
			t.Fatalf("accepted %q but rejected its own rendering %q: %v", line, tr.String(), err)
		}
		if again != tr {
			t.Fatalf("round trip changed triple: %v vs %v", tr, again)
		}
	})
}

// FuzzReader checks the streaming reader on whole documents.
func FuzzReader(f *testing.F) {
	f.Add("<a> <b> <c> .\n# c\n\n<d> <e> <f> .")
	f.Add("\n\n\n")
	f.Add("<a> <b> \"x\\n\" .")
	f.Fuzz(func(t *testing.T, doc string) {
		_, _ = ReadAll(strings.NewReader(doc)) // must not panic
	})
}
