package bench

// The mixed read/write smoke: loadgen queries hammer the server while an
// update stream patches the delta overlay and a compaction swaps the base
// mid-run. CI runs one iteration under -race — the point is exercising the
// serve-while-writing path end to end (HTTP /update + /compact against
// concurrent /query), not producing numbers. The Durable variant runs the
// same workload with every patch flowing through the write-ahead log and
// the compaction persisting a segment file.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/lubm"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/wal"
)

func BenchmarkLiveMixedReadWrite(b *testing.B) {
	srv, err := server.New(server.Config{Store: NewDataset(Config{Scale: 1})})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	runLiveMixed(b, srv)
}

// BenchmarkLiveMixedReadWriteDurable is the same serve-while-writing
// workload over the durability stack: group-commit WAL appends under the
// update stream, a segment write + log truncation under the mid-run
// compaction, concurrent queries throughout.
func BenchmarkLiveMixedReadWriteDurable(b *testing.B) {
	d, err := durable.Open(b.TempDir(),
		func() (*store.Store, error) { return NewDataset(Config{Scale: 1}), nil },
		durable.Options{Fsync: wal.Policy{Mode: wal.SyncInterval, Interval: 5 * time.Millisecond}})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	srv, err := server.New(server.Config{Live: d.Live(), Durable: d})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	runLiveMixed(b, srv)
	st := d.Stats()
	if st.WAL.Records == 0 {
		b.Fatalf("no WAL records under the update stream: %+v", st)
	}
	if st.CompactionsPersisted == 0 {
		b.Fatalf("the forced compaction persisted no segment: %+v", st)
	}
	b.Logf("wal_records=%d wal_syncs=%d segments_persisted=%d",
		st.WAL.Records, st.WAL.Syncs, st.CompactionsPersisted)
}

func runLiveMixed(b *testing.B, srv *server.Server) {
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	queries := []string{lubm.Query(1, 1), lubm.Query(2, 1), lubm.Query(8, 1), lubm.Query(14, 1)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stop := make(chan struct{})
		var updateErr atomic.Value
		// Update stream: insert-then-delete batches of fresh entities, one
		// forced compaction partway through.
		go func() {
			defer close(stop)
			for round := 0; round < 24; round++ {
				// Insert this round's batch; delete the previous round's, so
				// the delta stays non-empty while queries run (round-local
				// insert-then-delete would net to nothing).
				var patch strings.Builder
				for j := 0; j < 8; j++ {
					fmt.Fprintf(&patch, "+<http://live-bench/i%d/n%d-%d> <http://live-bench/p> <http://live-bench/i%d/n%d-%d> .\n",
						i, round, j, i, round, j+1)
				}
				if round > 0 {
					for j := 0; j < 8; j++ {
						fmt.Fprintf(&patch, "-<http://live-bench/i%d/n%d-%d> <http://live-bench/p> <http://live-bench/i%d/n%d-%d> .\n",
							i, round-1, j, i, round-1, j+1)
					}
				}
				resp, err := http.Post(ts.URL+"/update", "text/plain", strings.NewReader(patch.String()))
				if err != nil {
					updateErr.CompareAndSwap(nil, err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					updateErr.CompareAndSwap(nil, fmt.Errorf("/update status %d", resp.StatusCode))
					return
				}
				if round == 12 {
					resp, err := http.Post(ts.URL+"/compact", "", nil)
					if err != nil {
						updateErr.CompareAndSwap(nil, err)
						return
					}
					resp.Body.Close()
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()

		report, err := RunLoadGen(context.Background(), LoadGenConfig{
			URL:      ts.URL,
			Queries:  queries,
			Clients:  4,
			Requests: 48,
			Timeout:  30 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		<-stop
		if v := updateErr.Load(); v != nil {
			b.Fatalf("update stream: %v", v)
		}
		if report.Errors != 0 {
			b.Fatalf("loadgen saw %d errors under writes (first: %s)", report.Errors, report.FirstErr)
		}
		b.ReportMetric(report.QPS, "qps")
	}
	st := srv.Stats()
	if st.Live == nil || st.Live.Updates == 0 {
		b.Fatalf("no updates recorded: %+v", st.Live)
	}
	if st.Live.Compactions == 0 {
		b.Fatalf("the forced compaction never swapped: %+v", st.Live)
	}
	b.Logf("epoch=%d compactions=%d updates=%d", st.Live.Epoch, st.Live.Compactions, st.Live.Updates)
}
