package bench

import (
	"path/filepath"
	"testing"
)

func report(results ...PerfResult) *PerfReport {
	return &PerfReport{Schema: "repro-bench/v1", Scale: 1, Reps: 5, Results: results}
}

func TestCompareFlagsRegression(t *testing.T) {
	base := report(PerfResult{Name: "set/intersect/uint_uint", NsPerOp: 100_000})
	cur := report(PerfResult{Name: "set/intersect/uint_uint", NsPerOp: 130_000})
	regs := Compare(base, cur, 25)
	if len(regs) != 1 {
		t.Fatalf("want 1 regression, got %v", regs)
	}
	r := regs[0]
	if r.Name != "set/intersect/uint_uint" || r.DeltaPct < 29 || r.DeltaPct > 31 {
		t.Fatalf("unexpected regression %+v", r)
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	base := report(PerfResult{Name: "k", NsPerOp: 100_000})
	cur := report(PerfResult{Name: "k", NsPerOp: 120_000})
	if regs := Compare(base, cur, 25); len(regs) != 0 {
		t.Fatalf("20%% slowdown under a 25%% threshold should pass, got %v", regs)
	}
}

func TestCompareVarianceWidensAllowance(t *testing.T) {
	// 30% slower, but the baseline itself wobbled by 10% across reps: the
	// effective allowance is 25+10=35%, so this is noise, not a regression.
	base := report(PerfResult{Name: "k", NsPerOp: 100_000, VarPct: 10})
	cur := report(PerfResult{Name: "k", NsPerOp: 130_000})
	if regs := Compare(base, cur, 25); len(regs) != 0 {
		t.Fatalf("variance should widen the allowance, got %v", regs)
	}
	// Same delta with a quiet baseline fails.
	base.Results[0].VarPct = 0
	if regs := Compare(base, cur, 25); len(regs) != 1 {
		t.Fatalf("quiet baseline should flag 30%% delta, got %v", regs)
	}
}

func TestCompareVarianceWideningIsCapped(t *testing.T) {
	// A 60% regression cannot hide behind a wildly noisy measurement: the
	// widening caps at the threshold, so the allowance is at most 2×25%.
	base := report(PerfResult{Name: "k", NsPerOp: 100_000, VarPct: 500})
	cur := report(PerfResult{Name: "k", NsPerOp: 160_000, VarPct: 500})
	regs := Compare(base, cur, 25)
	if len(regs) != 1 {
		t.Fatalf("capped allowance should flag 60%% delta, got %v", regs)
	}
	if regs[0].AllowedPct != 50 {
		t.Fatalf("allowance = %f, want 50", regs[0].AllowedPct)
	}
}

func TestCompareSkipsIncomparableEntries(t *testing.T) {
	base := report(
		PerfResult{Name: "retired/workload", NsPerOp: 100},
		PerfResult{Name: "rows/changed", NsPerOp: 100_000, Rows: 10},
		PerfResult{Name: "tiny", NsPerOp: 300},
	)
	cur := report(
		PerfResult{Name: "new/workload", NsPerOp: 100},
		PerfResult{Name: "rows/changed", NsPerOp: 900_000, Rows: 20},
		PerfResult{Name: "tiny", NsPerOp: 900},
	)
	if regs := Compare(base, cur, 25); len(regs) != 0 {
		t.Fatalf("renamed, rows-changed, and sub-resolution entries must be skipped, got %v", regs)
	}
}

func TestCompareSortsWorstFirst(t *testing.T) {
	base := report(
		PerfResult{Name: "a", NsPerOp: 100_000},
		PerfResult{Name: "b", NsPerOp: 100_000},
	)
	cur := report(
		PerfResult{Name: "a", NsPerOp: 140_000},
		PerfResult{Name: "b", NsPerOp: 200_000},
	)
	regs := Compare(base, cur, 25)
	if len(regs) != 2 || regs[0].Name != "b" || regs[1].Name != "a" {
		t.Fatalf("want worst-first [b a], got %v", regs)
	}
}

func TestReadPerfReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	want := report(PerfResult{Name: "k", NsPerOp: 42, VarPct: 3.5, Rows: 7})
	if err := want.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPerfReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 1 || got.Results[0] != want.Results[0] || got.Schema != want.Schema {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}
