package bench

// perf.go is the machine-readable perf trajectory: RunPerfSuite measures
// the WCOJ hot-path kernels (set intersection and seek, full-store trie
// builds, Table II join queries, the sharded-vs-unsharded pairs at 4 and 8
// shards plus a scale-8 sharded section, the cold-start boot trajectory
// across on-disk formats, and WAL append throughput per fsync policy) and
// cmd/benchjson serializes the report as
// BENCH_<pr>.json at the repo root, which CI regenerates and uploads as an
// artifact on every PR. Future PRs diff their report against the committed
// one, so "made the hot path faster" stays a number with provenance instead
// of a commit-message claim.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/engines"
	"repro/internal/lubm"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/segment"
	"repro/internal/set"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/trie"
	"repro/internal/wal"
)

// PerfResult is one measured kernel or query.
type PerfResult struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	// VarPct is the observed spread across repetitions as a percentage of
	// the best time ((worst-best)/best·100). The regression gate widens its
	// threshold by this, so noisy measurements don't fail builds.
	VarPct float64 `json:"var_pct,omitempty"`
	// Rows is the result cardinality for query entries (a changed count
	// between two reports means the comparison is void).
	Rows int `json:"rows,omitempty"`
}

// PerfReport is the BENCH_<pr>.json payload.
type PerfReport struct {
	Schema string `json:"schema"` // "repro-bench/v1"
	// Scale is the LUBM scale factor the dataset entries used.
	Scale int `json:"lubm_scale"`
	// Reps is the per-measurement repetition count (best-of for kernels,
	// paper protocol for queries).
	Reps    int          `json:"reps"`
	Results []PerfResult `json:"results"`
	// Derived holds ratios computed from Results (e.g. the flat-vs-pointer
	// trie build speedup this PR's acceptance gates on).
	Derived map[string]float64 `json:"derived,omitempty"`
	// SeedBaseline carries forward ns/op numbers measured at an earlier
	// commit (name → ns/op), so a single file tells the before/after story.
	SeedBaseline map[string]float64 `json:"seed_baseline_ns_per_op,omitempty"`
}

// timeNs runs fn reps times and returns the best wall time in nanoseconds —
// kernels want the least-noise estimate, matching testing.B's convention of
// reporting the steady state rather than the mean with outliers.
func timeNs(reps int, fn func()) float64 {
	ns, _ := timeNsVar(reps, fn)
	return ns
}

// timeNsVar additionally returns the repetition spread as a percentage of
// the best time, the per-result noise bound the regression gate consumes.
func timeNsVar(reps int, fn func()) (nsPerOp, varPct float64) {
	return timeNsVarN(reps, 1, fn)
}

// timeNsVarN times reps repetitions of an inner loop of n calls, reporting
// per-call nanoseconds. Micro-kernels (a few hundred µs per call) use n > 1
// so one scheduler hiccup or GC assist doesn't double a rep — the loop
// amortizes it. VarPct is the gap between the best and second-best rep:
// since NsPerOp is a best-of statistic, its run-to-run reproducibility is
// how closely an independent rep approaches the best — the worst rep only
// measures how loaded the machine was, which would let a real regression
// hide behind one noisy outlier.
func timeNsVarN(reps, n int, fn func()) (nsPerOp, varPct float64) {
	if reps < 1 {
		reps = 1
	}
	fn() // warm caches and lazy state outside the timing
	var best, second time.Duration
	for i := 0; i < reps; i++ {
		runtime.GC() // pay earlier workloads' GC debt outside the timed region
		start := time.Now()
		for k := 0; k < n; k++ {
			fn()
		}
		d := time.Since(start) / time.Duration(n)
		switch {
		case best == 0 || d < best:
			best, second = d, best
		case second == 0 || d < second:
			second = d
		}
	}
	if best > 0 && second > 0 {
		varPct = 100 * float64(second-best) / float64(best)
	}
	return float64(best), varPct
}

// perfGenSorted produces n sorted distinct values at the given density.
func perfGenSorted(rng *rand.Rand, n int, density float64) []uint32 {
	domain := int(float64(n) / density)
	seen := map[uint32]bool{}
	vals := make([]uint32, 0, n)
	for len(vals) < n {
		v := uint32(rng.Intn(domain))
		if !seen[v] {
			seen[v] = true
			vals = append(vals, v)
		}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// setKernels measures intersection and seek across both layouts.
func setKernels(reps int) []PerfResult {
	rng := rand.New(rand.NewSource(11))
	const n = 1 << 16
	sparseVals := perfGenSorted(rng, n, 0.001)
	sparseProbes := perfGenSorted(rng, n, 0.001)
	denseVals := perfGenSorted(rng, n, 0.5)
	denseProbes := perfGenSorted(rng, n, 0.5)
	sparseA := set.FromSorted(sparseVals, set.PolicyUintOnly)
	sparseB := set.FromSorted(sparseProbes, set.PolicyUintOnly)
	denseA := set.FromSorted(denseVals, set.PolicyAuto)
	denseB := set.FromSorted(denseProbes, set.PolicyAuto)

	// Micro-kernels cost microseconds, so repetitions are nearly free:
	// run 5× the suite's rep count with an 8-call inner loop per rep. The
	// best-of estimate then reflects the kernel, not whichever slice of a
	// noisy machine the suite happened to land on.
	result := func(name string, fn func()) PerfResult {
		ns, v := timeNsVarN(5*reps, 8, fn)
		return PerfResult{Name: name, NsPerOp: ns, VarPct: v}
	}
	var out []PerfResult
	out = append(out, result("set/intersect/uint_uint", func() { set.Intersect(sparseA, sparseB) }))
	out = append(out, result("set/intersect/bitset_bitset", func() { set.Intersect(denseA, denseB) }))
	out = append(out, result("set/intersect/mixed", func() { set.Intersect(sparseA, denseB) }))
	// The seek workload is leapfrog's inner loop: one forward pass over the
	// set, seeking to each member of an independent same-density set in
	// order. (Earlier reports swept every third value of the domain, which
	// mostly timed no-op SeekGE calls whose target was already behind the
	// cursor — a call-overhead measurement, not a seek measurement.)
	seek := func(s *set.Set, probes []uint32) func() {
		return func() {
			var it set.Iter
			it.Reset(s)
			for _, v := range probes {
				if !it.SeekGE(v) {
					break
				}
			}
		}
	}
	out = append(out, result("set/seek/uint", seek(sparseA, sparseProbes)))
	out = append(out, result("set/seek/bitset", seek(denseA, denseProbes)))
	return out
}

// trieBuilds measures one full-store index rebuild — every relation's
// (S,O) and (O,S) trie under the auto layout policy, exactly the work
// live.Compact() queues up for the serving path — through the flat arena
// builder and through the retired pointer-per-node reference builder.
func trieBuilds(st *store.Store, reps int) []PerfResult {
	type relCols struct{ so, os [][]uint32 }
	var rels []relCols
	for _, p := range st.Predicates() {
		rel := st.Relation(p)
		rels = append(rels, relCols{
			so: [][]uint32{rel.S, rel.O},
			os: [][]uint32{rel.O, rel.S},
		})
	}
	flat, flatVar := timeNsVar(reps, func() {
		for _, rc := range rels {
			trie.BuildFromColumns(rc.so, set.PolicyAdaptive)
			trie.BuildFromColumns(rc.os, set.PolicyAdaptive)
		}
	})
	pointer, pointerVar := timeNsVar(reps, func() {
		for _, rc := range rels {
			trie.BuildReference(rc.so, set.PolicyAdaptive)
			trie.BuildReference(rc.os, set.PolicyAdaptive)
		}
	})
	return []PerfResult{
		{Name: "trie/build_full_store/flat", NsPerOp: flat, VarPct: flatVar},
		{Name: "trie/build_full_store/pointer", NsPerOp: pointer, VarPct: pointerVar},
	}
}

// tableIIQueries measures the WCOJ engines on join-heavy Table II queries.
var perfQueryNumbers = []int{1, 2, 7, 8, 14}

func tableIIQueries(st *store.Store, cfg Config) ([]PerfResult, error) {
	var out []PerfResult
	for _, engName := range []string{"emptyheaded", "logicblox", "auto"} {
		e, err := engines.New(engName, st)
		if err != nil {
			return nil, err
		}
		for _, qn := range perfQueryNumbers {
			q, err := query.ParseSPARQL(lubm.Query(qn, cfg.Scale))
			if err != nil {
				return nil, err
			}
			d, varPct, rows, err := MeasureVar(cfg.Reps, e, q)
			if err != nil {
				return nil, fmt.Errorf("%s q%d: %w", engName, qn, err)
			}
			out = append(out, PerfResult{
				Name:    fmt.Sprintf("wcoj/%s/lubm_q%d", engName, qn),
				NsPerOp: float64(d),
				VarPct:  varPct,
				Rows:    rows,
			})
		}
	}
	return out, nil
}

// shardedPair measures the scatter-gather engine against its unsharded
// twin on the two canonical shapes (subject-star q2, path q8), at 4 and 8
// shards. The repetition protocol matches the statistics-pruned planner's
// serving-path behaviour: the warmup run compiles and caches the scatter
// plan (and the join path's memoized build tables), so the timed reps
// measure the repeated-query hot path, exactly what the server pays.
func shardedPair(st *store.Store, cfg Config) ([]PerfResult, error) {
	eng, err := engines.New("emptyheaded", st)
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name string
		e    engine.Engine
	}{{"unsharded", eng}}
	for _, n := range []int{4, 8} {
		p, err := shard.Partition(st, n)
		if err != nil {
			return nil, err
		}
		sharded, err := engines.NewSharded("emptyheaded", p)
		if err != nil {
			return nil, err
		}
		variants = append(variants, struct {
			name string
			e    engine.Engine
		}{fmt.Sprintf("shards_%d", n), sharded})
	}
	var out []PerfResult
	for _, qn := range []int{2, 8} {
		q, err := query.ParseSPARQL(lubm.Query(qn, cfg.Scale))
		if err != nil {
			return nil, err
		}
		for _, v := range variants {
			d, varPct, rows, err := MeasureVar(cfg.Reps, v.e, q)
			if err != nil {
				return nil, fmt.Errorf("sharded pair q%d/%s: %w", qn, v.name, err)
			}
			out = append(out, PerfResult{
				Name:    fmt.Sprintf("sharded/emptyheaded/lubm_q%d/%s", qn, v.name),
				NsPerOp: float64(d),
				VarPct:  varPct,
				Rows:    rows,
			})
		}
	}
	return out, nil
}

// shardedScale8 measures the 8-shard engine against the unsharded one on a
// LUBM scale-8 dataset — the scale where sharding must pay for itself, not
// just stay within bounds. The section generates its own dataset (the
// suite's main dataset stays at cfg.Scale so the kernel and trie numbers
// remain comparable across reports).
func shardedScale8(cfg Config) ([]PerfResult, error) {
	const scale = 8
	st := NewDataset(Config{Scale: scale, Seed: cfg.Seed})
	eng, err := engines.New("emptyheaded", st)
	if err != nil {
		return nil, err
	}
	p, err := shard.Partition(st, 8)
	if err != nil {
		return nil, err
	}
	sharded, err := engines.NewSharded("emptyheaded", p)
	if err != nil {
		return nil, err
	}
	var out []PerfResult
	for _, qn := range []int{2, 8, 14} {
		q, err := query.ParseSPARQL(lubm.Query(qn, scale))
		if err != nil {
			return nil, err
		}
		for _, v := range []struct {
			name string
			e    engine.Engine
		}{{"unsharded", eng}, {"shards_8", sharded}} {
			d, varPct, rows, err := MeasureVar(cfg.Reps, v.e, q)
			if err != nil {
				return nil, fmt.Errorf("sharded scale8 q%d/%s: %w", qn, v.name, err)
			}
			out = append(out, PerfResult{
				Name:    fmt.Sprintf("sharded/emptyheaded/scale8/lubm_q%d/%s", qn, v.name),
				NsPerOp: float64(d),
				VarPct:  varPct,
				Rows:    rows,
			})
		}
	}
	return out, nil
}

// coldStart measures the boot trajectory: wall time from an on-disk
// artifact to a query-ready store. "Ready" includes forcing every
// relation's (S,O) and (O,S) tries — production builds them lazily, but the
// first queries pay for them, so a boot time without index builds would
// flatter the parse path. Three formats, ordered by how much work the file
// already carries: N-Triples (parse + dictionary-encode + build + index),
// binary snapshot (parse skipped, indexes rebuilt), and the mmap-able
// segment written by the durable storage engine (indexes ship in the file;
// only set headers are rebuilt, one O(nodes) pass).
func coldStart(st *store.Store, cfg Config) ([]PerfResult, error) {
	dir, err := os.MkdirTemp("", "bench-coldstart")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	ntPath := filepath.Join(dir, "data.nt")
	snapPath := filepath.Join(dir, "data.snap")
	segPath := filepath.Join(dir, "base.seg")

	f, err := os.Create(ntPath)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	d := st.Dict()
	for _, t := range st.Triples() {
		bw.WriteString(rdf.Triple{S: d.Decode(t.S), P: d.Decode(t.P), O: d.Decode(t.O)}.String())
		bw.WriteByte('\n')
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	if err := st.WriteSnapshotFile(snapPath); err != nil {
		return nil, err
	}
	if err := segment.Write(segPath, st); err != nil {
		return nil, err
	}

	force := func(s *store.Store) {
		for _, p := range s.Predicates() {
			r := s.Relation(p)
			r.TrieSO(set.PolicyAdaptive)
			r.TrieOS(set.PolicyAdaptive)
		}
	}
	var bootErr error
	ntNs, ntVar := timeNsVar(cfg.Reps, func() {
		f, err := os.Open(ntPath)
		if err != nil {
			bootErr = err
			return
		}
		defer f.Close()
		b := store.NewBuilder()
		rd := rdf.NewReader(bufio.NewReaderSize(f, 1<<20))
		for {
			t, err := rd.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				bootErr = err
				return
			}
			b.Add(t)
		}
		force(b.Build())
	})
	snapNs, snapVar := timeNsVar(cfg.Reps, func() {
		f, err := os.Open(snapPath)
		if err != nil {
			bootErr = err
			return
		}
		defer f.Close()
		s, err := store.ReadSnapshot(bufio.NewReaderSize(f, 1<<20))
		if err != nil {
			bootErr = err
			return
		}
		force(s)
	})
	segNs, segVar := timeNsVar(cfg.Reps, func() {
		l, err := segment.Open(segPath)
		if err != nil {
			bootErr = err
			return
		}
		force(l.Store)
		l.Close()
	})
	if bootErr != nil {
		return nil, bootErr
	}
	return []PerfResult{
		{Name: "coldstart/ntriples_parse_build", NsPerOp: ntNs, VarPct: ntVar},
		{Name: "coldstart/snapshot_read_build", NsPerOp: snapNs, VarPct: snapVar},
		{Name: "coldstart/segment_mmap", NsPerOp: segNs, VarPct: segVar},
	}, nil
}

// walAppend measures the write-ahead log's framed append at each fsync
// policy, with an 8-op batch (the typical /update shape). ns/op is per
// AppendPatch call; "always" is dominated by the per-call fsync, which is
// exactly the durability price it buys.
func walAppend(reps int) ([]PerfResult, error) {
	dir, err := os.MkdirTemp("", "bench-wal")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	ops := make([]wal.Op, 8)
	for i := range ops {
		ops[i] = wal.Op{Triple: rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("http://bench/s%d", i)),
			P: rdf.NewIRI("http://bench/p"),
			O: rdf.NewIRI(fmt.Sprintf("http://bench/o%d", i)),
		}}
	}
	batch := wal.Batch{Ops: ops}
	policies := []struct {
		name string
		pol  wal.Policy
	}{
		{"always", wal.Policy{Mode: wal.SyncAlways}},
		{"interval_50ms", wal.Policy{Mode: wal.SyncInterval, Interval: 50 * time.Millisecond}},
		{"off", wal.Policy{Mode: wal.SyncOff}},
	}
	var out []PerfResult
	for i, pc := range policies {
		log, _, err := wal.Open(filepath.Join(dir, fmt.Sprintf("wal%d.log", i)),
			pc.pol, func(wal.Batch) error { return nil })
		if err != nil {
			return nil, err
		}
		const appendsPerRound = 16
		var appendErr error
		ns, varPct := timeNsVar(reps, func() {
			for k := 0; k < appendsPerRound; k++ {
				if err := log.AppendPatch(batch); err != nil {
					appendErr = err
					return
				}
			}
		})
		ns /= appendsPerRound
		cerr := log.Close()
		if appendErr != nil {
			return nil, appendErr
		}
		if cerr != nil {
			return nil, cerr
		}
		out = append(out, PerfResult{Name: "wal/append_8op/" + pc.name, NsPerOp: ns, VarPct: varPct})
	}
	return out, nil
}

// RunPerfSuite measures the full hot-path suite on a fresh LUBM dataset.
func RunPerfSuite(cfg Config) (*PerfReport, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	st := NewDataset(cfg)
	report := &PerfReport{Schema: "repro-bench/v1", Scale: cfg.Scale, Reps: cfg.Reps}
	report.Results = append(report.Results, setKernels(cfg.Reps)...)
	report.Results = append(report.Results, trieBuilds(st, cfg.Reps)...)
	qr, err := tableIIQueries(st, cfg)
	if err != nil {
		return nil, err
	}
	report.Results = append(report.Results, qr...)
	sp, err := shardedPair(st, cfg)
	if err != nil {
		return nil, err
	}
	report.Results = append(report.Results, sp...)
	s8, err := shardedScale8(cfg)
	if err != nil {
		return nil, err
	}
	report.Results = append(report.Results, s8...)
	cs, err := coldStart(st, cfg)
	if err != nil {
		return nil, err
	}
	report.Results = append(report.Results, cs...)
	wa, err := walAppend(cfg.Reps)
	if err != nil {
		return nil, err
	}
	report.Results = append(report.Results, wa...)

	report.Derived = map[string]float64{}
	byName := map[string]float64{}
	for _, r := range report.Results {
		byName[r.Name] = r.NsPerOp
	}
	if f, p := byName["trie/build_full_store/flat"], byName["trie/build_full_store/pointer"]; f > 0 {
		report.Derived["trie_build_speedup_flat_vs_pointer"] = p / f
	}
	if nt, seg := byName["coldstart/ntriples_parse_build"], byName["coldstart/segment_mmap"]; seg > 0 {
		report.Derived["cold_start_speedup_segment_vs_ntriples"] = nt / seg
	}
	if sn, seg := byName["coldstart/snapshot_read_build"], byName["coldstart/segment_mmap"]; seg > 0 {
		report.Derived["cold_start_speedup_segment_vs_snapshot"] = sn / seg
	}
	// Sharded speedups: unsharded/sharded per query and shard count — > 1
	// means the scatter-gather path wins outright, and the committed report
	// makes "the 18× regression stayed fixed" a gated number.
	for _, qn := range []int{2, 8} {
		u := byName[fmt.Sprintf("sharded/emptyheaded/lubm_q%d/unsharded", qn)]
		for _, n := range []int{4, 8} {
			if s := byName[fmt.Sprintf("sharded/emptyheaded/lubm_q%d/shards_%d", qn, n)]; s > 0 {
				report.Derived[fmt.Sprintf("sharded_speedup_lubm_q%d_shards_%d", qn, n)] = u / s
			}
		}
	}
	for _, qn := range []int{2, 8, 14} {
		u := byName[fmt.Sprintf("sharded/emptyheaded/scale8/lubm_q%d/unsharded", qn)]
		if s := byName[fmt.Sprintf("sharded/emptyheaded/scale8/lubm_q%d/shards_8", qn)]; s > 0 {
			report.Derived[fmt.Sprintf("sharded_speedup_scale8_lubm_q%d_shards_8", qn)] = u / s
		}
	}
	return report, nil
}

// WriteJSON serializes the report (indented, trailing newline) to path.
func (r *PerfReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
