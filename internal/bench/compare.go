package bench

// compare.go is the perf-regression gate: CI regenerates the perf report on
// every PR and diffs it against the committed trajectory baseline
// (BENCH_<pr>.json at the repo root). A hot-path result that got more than
// thresholdPct slower — beyond what the measured repetition noise of both
// runs can explain — fails the build, so a kernel regression can't ride in
// on an unrelated diff and be discovered three PRs later.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// minGateNs is the timer-resolution floor: results where both sides ran
// faster than this are too small for a wall-clock ratio to mean anything,
// so the gate skips them rather than fail builds on clock granularity.
const minGateNs = 1000

// Regression is one gated result that got slower than the baseline allows.
type Regression struct {
	Name       string
	BaseNs     float64
	CurNs      float64
	DeltaPct   float64 // (cur-base)/base·100
	AllowedPct float64 // threshold widened by both runs' measured variance
}

// Compare diffs cur against base and returns every shared result that
// regressed by more than thresholdPct. The per-result allowance is widened
// by the repetition spread recorded in both reports (VarPct), so a query
// whose own reps disagree by 20% needs to exceed threshold+noise before it
// counts as a regression — the gate fires on signal, not scheduler jitter.
// The widening is capped at thresholdPct: a measurement so noisy that its
// own spread exceeds the threshold should be fixed (more reps, bigger
// inner loop), not granted an unbounded pass.
//
// Results are skipped (never failed) when: the name exists in only one
// report (workloads were added or retired), the row counts differ (the
// dataset or query changed, so the ratio compares different work), or both
// sides are under minGateNs (below timer resolution). Regressions are
// returned sorted by delta, worst first.
func Compare(base, cur *PerfReport, thresholdPct float64) []Regression {
	baseByName := make(map[string]PerfResult, len(base.Results))
	for _, r := range base.Results {
		baseByName[r.Name] = r
	}
	var regs []Regression
	for _, c := range cur.Results {
		b, ok := baseByName[c.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		if b.Rows != c.Rows {
			continue
		}
		if b.NsPerOp < minGateNs && c.NsPerOp < minGateNs {
			continue
		}
		allowed := thresholdPct + math.Min(b.VarPct+c.VarPct, thresholdPct)
		delta := 100 * (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		if delta > allowed {
			regs = append(regs, Regression{
				Name:       c.Name,
				BaseNs:     b.NsPerOp,
				CurNs:      c.NsPerOp,
				DeltaPct:   delta,
				AllowedPct: allowed,
			})
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].DeltaPct > regs[j].DeltaPct })
	return regs
}

// FormatRegressions renders the gate's verdict for CI logs.
func FormatRegressions(regs []Regression) string {
	var sb strings.Builder
	for _, r := range regs {
		fmt.Fprintf(&sb, "REGRESSION %-45s %12.0f -> %12.0f ns/op  +%.1f%% (allowed %.1f%%)\n",
			r.Name, r.BaseNs, r.CurNs, r.DeltaPct, r.AllowedPct)
	}
	return sb.String()
}

// ReadPerfReport loads a BENCH_<pr>.json report from path.
func ReadPerfReport(path string) (*PerfReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r PerfReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}
