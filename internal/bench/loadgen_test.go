package bench

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/lubm"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/store"
)

// TestLoadGenLUBM drives the acceptance criterion "a loadgen run against
// LUBM scale 1 reports ≥ 8 concurrent clients' throughput/latency without
// errors": it spins up the real handler over a generated scale-1 dataset
// and fires 8 concurrent clients at it. Afterwards it scrapes the
// observability surfaces the way the CI smoke does: /metrics must be valid
// Prometheus exposition reflecting the run, and the /debug/queries trace
// ring must have captured it.
func TestLoadGenLUBM(t *testing.T) {
	b := store.NewBuilder()
	lubm.GenerateTo(lubm.Config{Universities: 1, Seed: 0}, b.Add)
	srv, err := server.New(server.Config{Store: b.Build()})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	report, err := RunLoadGen(context.Background(), LoadGenConfig{
		URL:      ts.URL,
		Queries:  []string{lubm.Query(1, 1), lubm.Query(2, 1), lubm.Query(8, 1), lubm.Query(14, 1)},
		Clients:  8,
		Requests: 64,
		Timeout:  30 * time.Second,
	})
	if err != nil {
		t.Fatalf("RunLoadGen: %v", err)
	}
	t.Logf("\n%s", report)
	if report.Errors != 0 {
		t.Fatalf("loadgen saw %d errors (first: %s)", report.Errors, report.FirstErr)
	}
	if report.Requests != 64 {
		t.Fatalf("requests = %d, want 64", report.Requests)
	}
	if report.QPS <= 0 || report.MeanLat <= 0 || report.P99Lat < report.P50Lat {
		t.Fatalf("implausible report: %+v", report)
	}
	if st := srv.Stats(); st.Queries != 64 || st.PlanCache.Hits == 0 {
		t.Fatalf("server stats after loadgen: %+v", st)
	}

	// Post-run observability scrape: malformed exposition or an empty trace
	// ring fails the build here, not a dashboard later.
	metrics := getBody(t, ts.URL+"/metrics")
	if err := obs.CheckExposition(strings.NewReader(metrics)); err != nil {
		t.Fatalf("/metrics exposition invalid after loadgen: %v", err)
	}
	for _, want := range []string{"rdf_build_info{", "rdf_queries_total 64", "rdf_query_latency_seconds_count 64"} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q after loadgen", want)
		}
	}
	var ring struct {
		Count  int                  `json:"count"`
		Traces []*obs.TraceSnapshot `json:"traces"`
	}
	if err := json.Unmarshal([]byte(getBody(t, ts.URL+"/debug/queries")), &ring); err != nil {
		t.Fatalf("/debug/queries JSON: %v", err)
	}
	if ring.Count == 0 {
		t.Fatal("trace ring empty after 64 traced queries")
	}
	if ring.Traces[0].Root.Find("execute") == nil {
		t.Fatal("newest ring trace has no execute span")
	}
}

// getBody GETs a URL and returns the body, failing the test on transport or
// non-200 status.
func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

func TestLoadGenConfigValidation(t *testing.T) {
	if _, err := RunLoadGen(context.Background(), LoadGenConfig{}); err == nil {
		t.Fatal("want error for missing URL")
	}
	if _, err := RunLoadGen(context.Background(), LoadGenConfig{URL: "http://x"}); err == nil {
		t.Fatal("want error for missing queries")
	}
}
