package bench

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/lubm"
	"repro/internal/server"
	"repro/internal/store"
)

// TestLoadGenLUBM drives the acceptance criterion "a loadgen run against
// LUBM scale 1 reports ≥ 8 concurrent clients' throughput/latency without
// errors": it spins up the real handler over a generated scale-1 dataset
// and fires 8 concurrent clients at it.
func TestLoadGenLUBM(t *testing.T) {
	b := store.NewBuilder()
	lubm.GenerateTo(lubm.Config{Universities: 1, Seed: 0}, b.Add)
	srv, err := server.New(server.Config{Store: b.Build()})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	report, err := RunLoadGen(context.Background(), LoadGenConfig{
		URL:      ts.URL,
		Queries:  []string{lubm.Query(1, 1), lubm.Query(2, 1), lubm.Query(8, 1), lubm.Query(14, 1)},
		Clients:  8,
		Requests: 64,
		Timeout:  30 * time.Second,
	})
	if err != nil {
		t.Fatalf("RunLoadGen: %v", err)
	}
	t.Logf("\n%s", report)
	if report.Errors != 0 {
		t.Fatalf("loadgen saw %d errors (first: %s)", report.Errors, report.FirstErr)
	}
	if report.Requests != 64 {
		t.Fatalf("requests = %d, want 64", report.Requests)
	}
	if report.QPS <= 0 || report.MeanLat <= 0 || report.P99Lat < report.P50Lat {
		t.Fatalf("implausible report: %+v", report)
	}
	if st := srv.Stats(); st.Queries != 64 || st.PlanCache.Hits == 0 {
		t.Fatalf("server stats after loadgen: %+v", st)
	}
}

func TestLoadGenConfigValidation(t *testing.T) {
	if _, err := RunLoadGen(context.Background(), LoadGenConfig{}); err == nil {
		t.Fatal("want error for missing URL")
	}
	if _, err := RunLoadGen(context.Background(), LoadGenConfig{URL: "http://x"}); err == nil {
		t.Fatal("want error for missing queries")
	}
}
