package bench

import (
	"strings"
	"testing"

	"repro/internal/lubm"
	"repro/internal/query"
	"repro/internal/store"
)

func smallConfig() Config { return Config{Scale: 1, Seed: 0, Reps: 1} }

func TestNewDataset(t *testing.T) {
	st := NewDataset(smallConfig())
	if st.NumTriples() < 10000 {
		t.Fatalf("dataset too small: %d", st.NumTriples())
	}
}

func TestMeasureProtocol(t *testing.T) {
	st := NewDataset(smallConfig())
	engines := TableIIEngines(st)
	q, err := query.ParseSPARQL(lubm.Query(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	d, rows, err := Measure(3, engines[0], q)
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	if d <= 0 {
		t.Errorf("non-positive duration %v", d)
	}
	if rows == 0 {
		t.Errorf("query 1 returned no rows")
	}
	// Reps < 1 clamps to a single run.
	if _, _, err := Measure(0, engines[0], q); err != nil {
		t.Errorf("Measure with reps 0: %v", err)
	}
}

func TestTableISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := smallConfig()
	st := NewDataset(cfg)
	rows, err := TableI(st, cfg)
	if err != nil {
		t.Fatalf("TableI: %v", err)
	}
	if len(rows) != len(TableIQueries) {
		t.Fatalf("TableI rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.BaseMillis <= 0 {
			t.Errorf("query %d base time %v", r.Query, r.BaseMillis)
		}
		if r.Layout <= 0 || r.Attribute <= 0 || r.GHD <= 0 || r.Pipelining <= 0 {
			t.Errorf("query %d has non-positive speedup: %+v", r.Query, r)
		}
	}
	out := FormatTableI(rows)
	if !strings.Contains(out, "+Layout") || !strings.Contains(out, "+Pipelining") {
		t.Errorf("FormatTableI output missing headers:\n%s", out)
	}
}

func TestTableIISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := smallConfig()
	st := NewDataset(cfg)
	rows, names, err := TableII(st, cfg)
	if err != nil {
		t.Fatalf("TableII: %v", err)
	}
	if len(rows) != len(lubm.QueryNumbers) {
		t.Fatalf("TableII rows = %d", len(rows))
	}
	if len(names) != 5 {
		t.Fatalf("engines = %v", names)
	}
	for _, r := range rows {
		best, ok := r.Relative[r.Best]
		if !ok || best != 1.0 {
			t.Errorf("query %d best engine %q relative = %v", r.Query, r.Best, best)
		}
		for name, rel := range r.Relative {
			if rel < 1.0 {
				t.Errorf("query %d engine %s relative %v < 1", r.Query, name, rel)
			}
		}
	}
	out := FormatTableII(rows, names)
	if !strings.Contains(out, "Best(ms)") || !strings.Contains(out, "emptyheaded") {
		t.Errorf("FormatTableII output missing headers:\n%s", out)
	}
}

func TestEngineListOrderMatchesPaper(t *testing.T) {
	st := store.FromTriples(nil)
	names := []string{}
	for _, e := range TableIIEngines(st) {
		names = append(names, e.Name())
	}
	want := []string{"emptyheaded", "triplebit", "rdf3x", "monetdb", "logicblox"}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("engine %d = %s, want %s", i, names[i], want[i])
		}
	}
}
