package bench

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/server"
)

// LoadGenConfig parameterizes a load-generation run against a running query
// server (cmd/rdfserved): Clients goroutines issue Requests total queries,
// cycling through Queries, and the run records throughput and latency
// percentiles — the serving-layer analogue of the paper's Tables I/II.
type LoadGenConfig struct {
	// URL is the server base URL, e.g. "http://localhost:8080".
	URL string
	// Queries are the SPARQL texts to cycle through; at least one.
	Queries []string
	// Engine selects the server-side engine ("" = server default).
	Engine string
	// Clients is the number of concurrent clients (default 8).
	Clients int
	// Requests is the total number of requests across all clients
	// (default 100 per client).
	Requests int
	// Timeout bounds each request (default 60s). It is passed to the
	// server as ?timeout= and enforced client-side with a margin.
	Timeout time.Duration
}

// LoadGenReport is the outcome of a load-generation run.
type LoadGenReport struct {
	Clients   int
	Requests  int
	Errors    int           // non-200 responses and transport failures
	Duration  time.Duration // wall clock for the whole run
	QPS       float64       // successful requests per second
	MeanLat   time.Duration
	P50Lat    time.Duration
	P90Lat    time.Duration
	P99Lat    time.Duration
	MaxLat    time.Duration
	FirstErr  string // first error observed, for diagnosis
	BytesRead int64  // total response body bytes read across successful requests
}

// RunLoadGen fires cfg.Clients concurrent clients at the server and
// collects the report. It returns an error only for invalid configuration;
// request failures are counted in the report.
func RunLoadGen(ctx context.Context, cfg LoadGenConfig) (*LoadGenReport, error) {
	if cfg.URL == "" {
		return nil, fmt.Errorf("loadgen: URL is required")
	}
	if len(cfg.Queries) == 0 {
		return nil, fmt.Errorf("loadgen: at least one query is required")
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 100 * cfg.Clients
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}

	client := &http.Client{Timeout: cfg.Timeout + 5*time.Second}
	base := strings.TrimSuffix(cfg.URL, "/")

	type clientResult struct {
		lats     []time.Duration
		errs     int
		firstErr string
		bytes    int64
	}
	results := make([]clientResult, cfg.Clients)
	// next hands out request indices; clients pull until exhausted, so a
	// slow client does not leave queued work unissued.
	next := make(chan int)
	go func() {
		defer close(next)
		for i := 0; i < cfg.Requests; i++ {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := &results[c]
			for i := range next {
				q := cfg.Queries[i%len(cfg.Queries)]
				params := url.Values{"query": {q}, "timeout": {cfg.Timeout.String()}}
				if cfg.Engine != "" {
					params.Set("engine", cfg.Engine)
				}
				reqStart := time.Now()
				resp, err := client.Get(base + "/query?" + params.Encode())
				if err != nil {
					r.errs++
					if r.firstErr == "" {
						r.firstErr = err.Error()
					}
					continue
				}
				n, _ := io.Copy(io.Discard, resp.Body)
				// Trailers are populated only after the body is drained.
				// Responses stream: a mid-stream failure (deadline, engine
				// error) arrives as status 200 plus an X-Error trailer, so
				// the status code alone no longer identifies failed queries.
				trailerErr := resp.Trailer.Get("X-Error")
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || trailerErr != "" {
					r.errs++
					if r.firstErr == "" {
						if trailerErr != "" {
							r.firstErr = fmt.Sprintf("query %d: %s", i%len(cfg.Queries), trailerErr)
						} else {
							r.firstErr = fmt.Sprintf("query %d: HTTP %d", i%len(cfg.Queries), resp.StatusCode)
						}
					}
					continue
				}
				r.bytes += n
				r.lats = append(r.lats, time.Since(reqStart))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	report := &LoadGenReport{Clients: cfg.Clients, Duration: elapsed}
	var all []time.Duration
	for _, r := range results {
		report.Errors += r.errs
		report.BytesRead += r.bytes
		if report.FirstErr == "" {
			report.FirstErr = r.firstErr
		}
		all = append(all, r.lats...)
	}
	report.Requests = len(all) + report.Errors
	if len(all) == 0 {
		return report, nil
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var sum time.Duration
	for _, d := range all {
		sum += d
	}
	report.MeanLat = sum / time.Duration(len(all))
	// server.Quantile, not a local copy: loadgen percentiles must be
	// computed exactly like the /stats ones they are compared against.
	report.P50Lat = server.Quantile(all, 0.50)
	report.P90Lat = server.Quantile(all, 0.90)
	report.P99Lat = server.Quantile(all, 0.99)
	report.MaxLat = all[len(all)-1]
	if elapsed > 0 {
		report.QPS = float64(len(all)) / elapsed.Seconds()
	}
	return report, nil
}

// String renders the report for terminal output.
func (r *LoadGenReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadgen: %d clients, %d requests (%d errors) in %v\n",
		r.Clients, r.Requests, r.Errors, r.Duration.Round(time.Millisecond))
	if r.FirstErr != "" {
		fmt.Fprintf(&b, "  first error: %s\n", r.FirstErr)
	}
	fmt.Fprintf(&b, "  throughput: %.1f q/s\n", r.QPS)
	fmt.Fprintf(&b, "  latency: mean=%v p50=%v p90=%v p99=%v max=%v\n",
		r.MeanLat.Round(time.Microsecond), r.P50Lat.Round(time.Microsecond),
		r.P90Lat.Round(time.Microsecond), r.P99Lat.Round(time.Microsecond),
		r.MaxLat.Round(time.Microsecond))
	return b.String()
}
