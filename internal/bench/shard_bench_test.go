package bench

// The sharded-vs-unsharded benchmark pair: the same engine and queries over
// one LUBM store, unpartitioned and partitioned, so the scatter-gather
// speedup (or overhead — merge-layer joins and the ownership filter are not
// free) is measured rather than asserted. CI's bench smoke runs each case
// once to keep the path exercised.

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/engines"
	"repro/internal/lubm"
	"repro/internal/query"
	"repro/internal/shard"
	"repro/internal/store"
)

var shardBench struct {
	once sync.Once
	st   *store.Store
}

func shardBenchStore() *store.Store {
	shardBench.once.Do(func() {
		shardBench.st = NewDataset(Config{Scale: 1})
	})
	return shardBench.st
}

// drainCursor counts rows off an opened cursor.
func drainCursor(b *testing.B, e engine.Engine, q *query.BGP) int {
	b.Helper()
	cur, err := e.Open(q, engine.ExecOpts{})
	if err != nil {
		b.Fatal(err)
	}
	defer cur.Close()
	n := 0
	for {
		_, err := cur.Next()
		if err == io.EOF {
			return n
		}
		if err != nil {
			b.Fatal(err)
		}
		n++
	}
}

func BenchmarkShardedVsUnsharded(b *testing.B) {
	st := shardBenchStore()
	queries := map[string]string{
		// Subject-star: fully shard-local scatter-gather.
		"q2": lubm.Query(2, 1),
		// Path-shaped: exercises the replicated-by-object index.
		"q8": lubm.Query(8, 1),
	}
	for _, engName := range []string{"emptyheaded", "monetdb"} {
		eng, err := engines.New(engName, st)
		if err != nil {
			b.Fatal(err)
		}
		variants := map[string]engine.Engine{"unsharded": eng}
		for _, n := range []int{4} {
			p, err := shard.Partition(st, n)
			if err != nil {
				b.Fatal(err)
			}
			sh, err := engines.NewSharded(engName, p)
			if err != nil {
				b.Fatal(err)
			}
			variants[fmt.Sprintf("shards=%d", n)] = sh
		}
		for qname, text := range queries {
			q := query.MustParseSPARQL(text)
			for vname, ve := range variants {
				b.Run(fmt.Sprintf("%s/%s/%s", engName, qname, vname), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						drainCursor(b, ve, q)
					}
				})
			}
		}
	}
}
