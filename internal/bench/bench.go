// Package bench is the harness that regenerates the paper's evaluation
// artifacts: Table I (relative speedup of each classic optimization on
// selected LUBM queries) and Table II (runtime of the five engines on the
// full benchmark). It is shared by cmd/benchtables and the root
// bench_test.go.
//
// Timing follows §IV-A4 of the paper: each query runs Reps times (the
// paper used seven), the best and worst runs are discarded, and the rest
// are averaged. Data loading and index construction are excluded.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/engine/logicblox"
	"repro/internal/engine/monetdb"
	"repro/internal/engine/rdf3x"
	"repro/internal/engine/triplebit"
	"repro/internal/lubm"
	"repro/internal/query"
	"repro/internal/store"
)

// Config parameterizes a benchmark run.
type Config struct {
	// Scale is the LUBM scale factor (universities).
	Scale int
	// Seed selects the generator stream.
	Seed int64
	// Reps is the number of timed runs per query (≥1). With Reps ≥ 3 the
	// best and worst runs are discarded, following the paper.
	Reps int
}

// NewDataset generates and loads the LUBM dataset for cfg.
func NewDataset(cfg Config) *store.Store {
	b := store.NewBuilder()
	lubm.GenerateTo(lubm.Config{Universities: cfg.Scale, Seed: cfg.Seed}, b.Add)
	return b.Build()
}

// Measure times one query execution protocol: Reps runs, best and worst
// dropped when Reps >= 3, mean of the rest. It returns the mean duration
// and the row count of the last run. Each run drains the engine's cursor
// without materializing rows, so the timing covers exactly the work the
// serving layer pays: enumeration, not result buffering.
func Measure(reps int, e engine.Engine, q *query.BGP) (time.Duration, int, error) {
	d, _, rows, err := MeasureVar(reps, e, q)
	return d, rows, err
}

// MeasureVar is Measure plus the observed spread of the retained runs as a
// percentage of the reported mean ((max-min)/mean·100). The perf-regression
// gate widens its threshold by this, so a genuinely noisy query can't fail a
// build on scheduler jitter alone.
func MeasureVar(reps int, e engine.Engine, q *query.BGP) (time.Duration, float64, int, error) {
	if reps < 1 {
		reps = 1
	}
	// Pay any GC debt accumulated by earlier workloads before timing starts:
	// without this, whichever rep happens to trip the collector absorbs the
	// previous engine's allocation bill. One collection up front (rather
	// than per rep) because a GC cycle also flushes the CPU caches — run
	// per-rep it quadruples microsecond-scale queries whose real cost is
	// cache-warm trie descent. The untimed warmup re-warms those caches and
	// builds any lazy indexes outside the measurement.
	runtime.GC()
	if _, err := drain(e, q); err != nil {
		return 0, 0, 0, err
	}
	times := make([]time.Duration, 0, reps)
	rows := 0
	for i := 0; i < reps; i++ {
		start := time.Now()
		n, err := drain(e, q)
		if err != nil {
			return 0, 0, 0, err
		}
		times = append(times, time.Since(start))
		rows = n
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	if len(times) >= 3 {
		times = times[1 : len(times)-1]
	}
	var total time.Duration
	for _, t := range times {
		total += t
	}
	mean := total / time.Duration(len(times))
	varPct := 0.0
	if mean > 0 {
		varPct = 100 * float64(times[len(times)-1]-times[0]) / float64(mean)
	}
	return mean, varPct, rows, nil
}

// drain opens a cursor for q on e and counts its rows.
func drain(e engine.Engine, q *query.BGP) (int, error) {
	cur, err := e.Open(q, engine.ExecOpts{})
	if err != nil {
		return 0, err
	}
	defer cur.Close()
	n := 0
	for {
		_, err := cur.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return 0, err
		}
		n++
	}
}

// --- Table I -----------------------------------------------------------------

// TableIQueries are the LUBM queries the paper reports in Table I.
var TableIQueries = []int{1, 2, 4, 7, 8, 14}

// TableIRow holds one query's optimization speedups: the factor by which
// query time grows when the named optimization is disabled (all others
// enabled) — i.e. the benefit of adding that optimization last.
type TableIRow struct {
	Query      int
	Layout     float64
	Attribute  float64
	GHD        float64
	Pipelining float64
	BaseMillis float64 // fully optimized runtime
	Rows       int
}

// TableI regenerates the Table I ablation on the given dataset.
func TableI(st *store.Store, cfg Config) ([]TableIRow, error) {
	var out []TableIRow
	for _, qn := range TableIQueries {
		q, err := query.ParseSPARQL(lubm.Query(qn, cfg.Scale))
		if err != nil {
			return nil, err
		}
		full := core.New(st, core.AllOptimizations)
		baseTime, rows, err := Measure(cfg.Reps, full, q)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", qn, err)
		}
		row := TableIRow{Query: qn, BaseMillis: ms(baseTime), Rows: rows}

		ablations := []struct {
			out  *float64
			opts core.Options
		}{
			{&row.Layout, core.Options{Layout: false, AttributeReorder: true, GHDPushdown: true, Pipelining: true}},
			{&row.Attribute, core.Options{Layout: true, AttributeReorder: false, GHDPushdown: true, Pipelining: true}},
			{&row.GHD, core.Options{Layout: true, AttributeReorder: true, GHDPushdown: false, Pipelining: true}},
			{&row.Pipelining, core.Options{Layout: true, AttributeReorder: true, GHDPushdown: true, Pipelining: false}},
		}
		for _, ab := range ablations {
			t, _, err := Measure(cfg.Reps, core.New(st, ab.opts), q)
			if err != nil {
				return nil, fmt.Errorf("query %d ablation: %w", qn, err)
			}
			*ab.out = float64(t) / float64(baseTime)
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatTableI renders rows in the paper's Table I layout.
func FormatTableI(rows []TableIRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %10s %11s %8s %12s %12s %8s\n",
		"Query", "+Layout", "+Attribute", "+GHD", "+Pipelining", "base(ms)", "rows")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %9.2fx %10.2fx %7.2fx %11.2fx %12.3f %8d\n",
			r.Query, r.Layout, r.Attribute, r.GHD, r.Pipelining, r.BaseMillis, r.Rows)
	}
	return b.String()
}

// --- Table II ----------------------------------------------------------------

// TableIIEngines lists the engines in the paper's column order.
func TableIIEngines(st *store.Store) []engine.Engine {
	return []engine.Engine{
		core.New(st, core.AllOptimizations),
		triplebit.New(st),
		rdf3x.New(st),
		monetdb.New(st),
		logicblox.New(st),
	}
}

// TableIIRow holds one query's results across engines.
type TableIIRow struct {
	Query      int
	BestMillis float64
	Best       string             // engine with the best time
	Relative   map[string]float64 // engine -> time / best time
	Rows       int
}

// TableII regenerates the Table II end-to-end comparison. Engines are
// constructed once (index build excluded from timings, as in the paper).
func TableII(st *store.Store, cfg Config) ([]TableIIRow, []string, error) {
	engines := TableIIEngines(st)
	names := make([]string, len(engines))
	for i, e := range engines {
		names[i] = e.Name()
	}
	var out []TableIIRow
	for _, qn := range lubm.QueryNumbers {
		q, err := query.ParseSPARQL(lubm.Query(qn, cfg.Scale))
		if err != nil {
			return nil, nil, err
		}
		times := map[string]time.Duration{}
		rows := 0
		for _, e := range engines {
			t, r, err := Measure(cfg.Reps, e, q)
			if err != nil {
				return nil, nil, fmt.Errorf("query %d on %s: %w", qn, e.Name(), err)
			}
			times[e.Name()] = t
			rows = r
		}
		row := TableIIRow{Query: qn, Relative: map[string]float64{}, Rows: rows}
		best := time.Duration(0)
		for name, t := range times {
			if best == 0 || t < best {
				best = t
				row.Best = name
			}
		}
		row.BestMillis = ms(best)
		for name, t := range times {
			row.Relative[name] = float64(t) / float64(best)
		}
		out = append(out, row)
	}
	return out, names, nil
}

// FormatTableII renders rows in the paper's Table II layout: best absolute
// time plus relative factors per engine.
func FormatTableII(rows []TableIIRow, names []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %12s", "Query", "Best(ms)")
	for _, n := range names {
		fmt.Fprintf(&b, " %12s", n)
	}
	fmt.Fprintf(&b, " %10s\n", "rows")
	for _, r := range rows {
		fmt.Fprintf(&b, "Q%-5d %12.3f", r.Query, r.BestMillis)
		for _, n := range names {
			fmt.Fprintf(&b, " %11.2fx", r.Relative[n])
		}
		fmt.Fprintf(&b, " %10d\n", r.Rows)
	}
	return b.String()
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
