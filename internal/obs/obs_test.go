package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistObserveAndQuantile(t *testing.T) {
	h := NewHist([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 7, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	if want := 0.5 + 1.5 + 1.5 + 3 + 3 + 3 + 7 + 100; s.Sum != want {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
	wantCounts := []uint64{1, 2, 3, 1, 1} // <=1, <=2, <=4, <=8, +Inf
	for i, c := range wantCounts {
		if s.Counts[i] != c {
			t.Fatalf("bucket %d = %d, want %d", i, s.Counts[i], c)
		}
	}
	// p50: rank 4 lands in the <=4 bucket (cum 3 before, 3 in-bucket).
	q := s.Quantile(0.5)
	if q < 2 || q > 4 {
		t.Fatalf("p50 = %v, want within (2,4]", q)
	}
	// Quantile must be monotone in p.
	if s.Quantile(0.99) < s.Quantile(0.5) {
		t.Fatalf("p99 %v < p50 %v", s.Quantile(0.99), s.Quantile(0.5))
	}
	// +Inf bucket clamps to the largest finite bound.
	if got := s.Quantile(1); got != 8 {
		t.Fatalf("p100 = %v, want clamp to 8", got)
	}
	if got := (HistSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

func TestHistConcurrent(t *testing.T) {
	h := NewHist(LatencyBuckets())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
	if s.Sum < 7.99 || s.Sum > 8.01 {
		t.Fatalf("sum = %v, want ~8.0", s.Sum)
	}
}

func TestHistMerge(t *testing.T) {
	a := NewHist([]float64{1, 10})
	b := NewHist([]float64{1, 10})
	a.Observe(0.5)
	b.Observe(5)
	b.Observe(50)
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 3 || m.Counts[0] != 1 || m.Counts[1] != 1 || m.Counts[2] != 1 {
		t.Fatalf("merge = %+v", m)
	}
	if got := m.Merge(HistSnapshot{}); got.Count != 3 {
		t.Fatalf("merge with empty lost data: %+v", got)
	}
}

func TestPromWriterFormat(t *testing.T) {
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Counter("rdf_queries_total", "Total queries.", 42)
	p.Gauge("rdf_build_info", "Build info.", 1, "version", "(devel)", "revision", "abc")
	h := NewHist([]float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5)
	p.Histogram("rdf_query_latency_seconds", "Latency.", h.Snapshot(), "engine", "auto")
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP rdf_queries_total Total queries.",
		"# TYPE rdf_queries_total counter",
		"rdf_queries_total 42",
		`rdf_build_info{version="(devel)",revision="abc"} 1`,
		"# TYPE rdf_query_latency_seconds histogram",
		`rdf_query_latency_seconds_bucket{engine="auto",le="0.001"} 1`,
		`rdf_query_latency_seconds_bucket{engine="auto",le="0.01"} 2`,
		`rdf_query_latency_seconds_bucket{engine="auto",le="+Inf"} 3`,
		`rdf_query_latency_seconds_count{engine="auto"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	if err := CheckExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("self-written exposition fails validation: %v", err)
	}
}

func TestPromWriterDuplicateFamily(t *testing.T) {
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Counter("rdf_x_total", "x", 1)
	p.Gauge("rdf_x_total", "x", 2) // same family, different type
	if p.Err() == nil {
		t.Fatal("want error on family re-declared with a different type")
	}
	// Same family, same type (e.g. labelled counters) is fine.
	var sb2 strings.Builder
	p2 := NewPromWriter(&sb2)
	p2.Counter("rdf_y_total", "y", 1, "engine", "a")
	p2.Counter("rdf_y_total", "y", 2, "engine", "b")
	if err := p2.Err(); err != nil {
		t.Fatal(err)
	}
	if strings.Count(sb2.String(), "# TYPE rdf_y_total") != 1 {
		t.Fatalf("TYPE header repeated:\n%s", sb2.String())
	}
}

func TestCheckExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no type header": "rdf_a 1\n",
		"duplicate type": "# TYPE rdf_a counter\nrdf_a 1\n# TYPE rdf_a counter\nrdf_a 2\n",
		"bad value":      "# TYPE rdf_a counter\nrdf_a nope\n",
		"bad name":       "# TYPE 0bad counter\n0bad 1\n",
	}
	for name, in := range cases {
		if err := CheckExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: malformed exposition accepted:\n%s", name, in)
		}
	}
}

func TestSpanTree(t *testing.T) {
	tr := NewTrace("q1")
	root := tr.Root()
	parse := root.Child("parse")
	parse.End()
	exec := root.Child("execute")
	sh := exec.Child("shard_drain")
	sh.SetAttr("shard", 2)
	sh.AddBatch(64)
	sh.AddBatch(3)
	sh.End()
	exec.AddRows(67)
	exec.End()
	snap := tr.Snapshot()
	if snap.QueryID != "q1" || snap.Root.Name != "query" {
		t.Fatalf("snapshot header wrong: %+v", snap)
	}
	if len(snap.Root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(snap.Root.Children))
	}
	drain := snap.Root.Find("shard_drain")
	if drain == nil {
		t.Fatal("shard_drain span missing")
	}
	if drain.Rows != 67 || drain.Batches != 2 {
		t.Fatalf("drain rows/batches = %d/%d, want 67/2", drain.Rows, drain.Batches)
	}
	if drain.Attrs["shard"] != 2 {
		t.Fatalf("drain attrs = %v", drain.Attrs)
	}
	if drain.FirstRowUs <= 0 {
		t.Fatalf("first_row_us = %v, want > 0", drain.FirstRowUs)
	}
	// Children must nest: the drain span starts no earlier than execute.
	ex := snap.Root.Find("execute")
	if drain.StartUs < ex.StartUs {
		t.Fatalf("drain starts (%v) before its parent execute (%v)", drain.StartUs, ex.StartUs)
	}
}

func TestNilSpanIsNoop(t *testing.T) {
	var sp *Span
	sp.End()
	sp.SetAttr("k", 1)
	sp.AddRows(5)
	sp.AddBatch(3)
	if sp.Child("x") != nil {
		t.Fatal("nil span Child must return nil")
	}
	if sp.Rows() != 0 {
		t.Fatal("nil span Rows must be 0")
	}
	var tr *Trace
	if tr.Root() != nil || tr.Snapshot() != nil {
		t.Fatal("nil trace accessors must return nil")
	}
	ctx := WithSpan(context.Background(), nil)
	if SpanFrom(ctx) != nil {
		t.Fatal("WithSpan(nil) must not store a span")
	}
	if SpanFrom(nil) != nil {
		t.Fatal("SpanFrom(nil ctx) must be nil")
	}
}

func TestSpanContextPropagation(t *testing.T) {
	tr := NewTrace("q2")
	ctx := WithSpan(context.Background(), tr.Root())
	got := SpanFrom(ctx)
	if got != tr.Root() {
		t.Fatal("SpanFrom did not return the stored span")
	}
	child := got.Child("inner")
	child.End()
	if tr.Snapshot().Root.Find("inner") == nil {
		t.Fatal("child attached via context missing from snapshot")
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(3)
	if r.Len() != 0 {
		t.Fatal("new ring not empty")
	}
	for i := 1; i <= 5; i++ {
		tr := NewTrace("q" + string(rune('0'+i)))
		r.Add(tr.Snapshot())
	}
	got := r.Snapshot()
	if len(got) != 3 || r.Len() != 3 {
		t.Fatalf("ring len = %d, want 3", len(got))
	}
	// Newest first: q5, q4, q3.
	for i, want := range []string{"q5", "q4", "q3"} {
		if got[i].QueryID != want {
			t.Fatalf("ring[%d] = %s, want %s", i, got[i].QueryID, want)
		}
	}
	r.Add(nil) // must not panic or store
	if r.Len() != 3 {
		t.Fatal("nil Add changed ring")
	}
}

func TestNextQueryID(t *testing.T) {
	a, b := NextQueryID(), NextQueryID()
	if a == b || !strings.HasPrefix(a, "q") {
		t.Fatalf("query IDs not unique/prefixed: %s %s", a, b)
	}
}

func TestBuildInfo(t *testing.T) {
	b := Build()
	if b.GoVersion == "" || b.Version == "" || b.Revision == "" {
		t.Fatalf("incomplete build info: %+v", b)
	}
	if !strings.Contains(b.String(), b.GoVersion) {
		t.Fatalf("String() missing go version: %s", b.String())
	}
}

func TestQuantileDuration(t *testing.T) {
	h := NewHist(LatencyBuckets())
	for i := 0; i < 100; i++ {
		h.ObserveDuration(5 * time.Millisecond)
	}
	d := h.Snapshot().QuantileDuration(0.5)
	if d < time.Millisecond || d > 20*time.Millisecond {
		t.Fatalf("p50 duration = %v, want around 5ms", d)
	}
}
