// Package obs is the observability toolkit behind the server's query
// tracing, Prometheus /metrics exposition, and EXPLAIN surface: per-query
// span trees (trace.go) propagated through contexts, lock-cheap fixed-bucket
// histograms (hist.go) whose quantile estimates back both /stats and
// /metrics so the two surfaces can never disagree, a dependency-free
// Prometheus text-format writer (prom.go), a bounded ring of recent traces
// (ring.go) served at /debug/queries, and the build-info stamp (buildinfo.go)
// exposed by /healthz, /metrics, and the CLIs' -version flags.
//
// The package deliberately imports nothing from this repository, so every
// layer — the WAL's fsync path, the shard merge transport, the serving
// layer — can record into it without import cycles. Every recording entry
// point is cheap enough for hot paths: histograms are one atomic add per
// observation, and span methods are nil-safe no-ops when the query is not
// being traced, so the untraced path costs a nil check and allocates
// nothing.
package obs

import (
	"strconv"
	"sync/atomic"
)

// queryIDCounter numbers queries process-wide; IDs appear in traces,
// slow-query log records, and the X-Query-ID response header so one query
// can be followed across all three surfaces.
var queryIDCounter atomic.Uint64

// NextQueryID returns a process-unique query identifier ("q1", "q2", ...).
// IDs restart on process restart; correlate across restarts via the
// timestamped log records that carry them.
func NextQueryID() string {
	return "q" + strconv.FormatUint(queryIDCounter.Add(1), 10)
}
