package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Hist is a fixed-bucket cumulative-on-export histogram in the Prometheus
// mold: observations land in the first bucket whose upper bound is >= the
// value, with an implicit +Inf bucket catching the rest. Recording is one
// linear bound scan (buckets are few) plus one atomic add — no locks, no
// allocation — so it is safe on paths as hot as the WAL fsync call and the
// shard merge flush. Export via Snapshot; quantiles via Snapshot.Quantile,
// which is the single percentile implementation behind both /stats and
// /metrics (the point: the two surfaces read the same buckets, so their
// p50/p99 can never disagree).
type Hist struct {
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64
	// sumBits accumulates the observation sum as a float64 bit pattern
	// updated by CAS — histograms observe from many goroutines but sum
	// contention is negligible next to the work being measured.
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// NewHist builds a histogram over the given ascending upper bounds. The
// bounds slice is retained; callers must not mutate it.
func NewHist(bounds []float64) *Hist {
	return &Hist{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// ExpBuckets returns n exponential upper bounds starting at start, each
// factor times the last — the standard latency-histogram shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets spans 100µs to ~two minutes in ×2 steps (21 buckets) — wide
// enough for both a cache-hit point query and a cold scan, in seconds per
// Prometheus convention.
func LatencyBuckets() []float64 { return ExpBuckets(100e-6, 2, 21) }

// FsyncBuckets spans 10µs to ~2.6s in ×2 steps — group-commit no-ops to
// spinning-rust worst cases, in seconds.
func FsyncBuckets() []float64 { return ExpBuckets(10e-6, 2, 19) }

// SizeBuckets returns power-of-two size bounds 1, 2, 4, ... (n bounds) for
// count-shaped quantities (rows per merge batch, shards pruned per query).
func SizeBuckets(n int) []float64 { return ExpBuckets(1, 2, n) }

// Observe records one value.
func (h *Hist) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds (the Prometheus unit for time).
func (h *Hist) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistSnapshot is a point-in-time copy of a histogram, safe to serialize.
// Counts are per-bucket (not yet cumulative); Counts[len(Bounds)] is the
// +Inf bucket.
type HistSnapshot struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Snapshot copies the histogram's current state. Buckets are read without a
// global lock, so a snapshot taken mid-observation may be off by the
// in-flight observation — fine for monitoring, which is the only consumer.
func (h *Hist) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the p-quantile (0 <= p <= 1) from the buckets with
// linear interpolation inside the target bucket — the same estimator
// Prometheus's histogram_quantile applies to the exported buckets, so a
// dashboard and /stats compute the same number from the same data. The +Inf
// bucket clamps to the largest finite bound. Returns 0 for an empty
// histogram.
func (s HistSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := p * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) {
			// +Inf bucket: clamp to the largest finite bound.
			if len(s.Bounds) == 0 {
				return 0
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(prev))/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// QuantileDuration is Quantile for second-unit histograms, as a Duration.
func (s HistSnapshot) QuantileDuration(p float64) time.Duration {
	return time.Duration(s.Quantile(p) * float64(time.Second))
}

// Merge returns the bucket-wise sum of two snapshots over identical bounds;
// it panics on mismatched bounds (merging histograms with different shapes
// is a programming error, not a runtime condition).
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	if len(o.Counts) == 0 {
		return s
	}
	if len(s.Counts) == 0 {
		return o
	}
	if len(s.Counts) != len(o.Counts) {
		panic("obs: merging histograms with different bucket layouts")
	}
	out := HistSnapshot{
		Bounds: s.Bounds,
		Counts: make([]uint64, len(s.Counts)),
		Sum:    s.Sum + o.Sum,
		Count:  s.Count + o.Count,
	}
	for i := range out.Counts {
		out.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	return out
}
