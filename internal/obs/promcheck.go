package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CheckExposition validates Prometheus text exposition read from r: metric
// names are well-formed, every sample's family has exactly one TYPE
// declaration appearing before its samples, and values parse as floats. It
// is the shared validator behind the /metrics unit tests and the CI loadgen
// smoke scrape, so a malformed exposition fails the build instead of a
// dashboard.
func CheckExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	typed := map[string]bool{}
	samples := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return fmt.Errorf("line %d: malformed TYPE line: %q", lineNo, line)
			}
			name, typ := fields[2], fields[3]
			if !validMetricName(name) {
				return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
			}
			if typed[name] {
				return fmt.Errorf("line %d: duplicate TYPE declaration for family %q", lineNo, name)
			}
			typed[name] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or comment
		}
		name, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("line %d: sample value %q is not a float", lineNo, value)
		}
		if !typed[familyOf(name)] {
			return fmt.Errorf("line %d: sample %q has no preceding TYPE declaration", lineNo, name)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("exposition contains no samples")
	}
	return nil
}

// parseSample splits one sample line into series name and value, skipping
// the label block (which may contain spaces inside quoted values).
func parseSample(line string) (name, value string, err error) {
	rest := line
	if i := strings.IndexAny(line, "{ "); i >= 0 {
		name = line[:i]
		rest = line[i:]
	} else {
		return "", "", fmt.Errorf("malformed sample line %q", line)
	}
	if !validMetricName(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote := false
		for i := 1; i < len(rest); i++ {
			switch rest[i] {
			case '\\':
				if inQuote {
					i++ // skip escaped char
				}
			case '"':
				inQuote = !inQuote
			case '}':
				if !inQuote {
					end = i
				}
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", "", fmt.Errorf("unterminated label block in %q", line)
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // value, optional timestamp
		return "", "", fmt.Errorf("malformed sample line %q", line)
	}
	return name, fields[0], nil
}

// familyOf maps a series name to its declared family: histogram and summary
// child series (_bucket/_sum/_count) belong to the base family.
func familyOf(name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suffix) {
			return strings.TrimSuffix(name, suffix)
		}
	}
	return name
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		letter := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}
