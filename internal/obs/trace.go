package obs

import (
	"context"
	"sync"
	"time"
)

// Trace is one query's span tree, from parse to last encoded byte. The
// server creates it per traced request; lower layers (the live overlay, the
// shard scatter planner, the per-shard drains, the auto router) attach
// children and attributes through the context. A nil *Trace / *Span is the
// "not traced" state: every method no-ops on a nil receiver, so untraced
// queries pay one pointer check per instrumentation site and zero
// allocations.
type Trace struct {
	QueryID string
	Query   string // raw query text (truncated by the caller if huge)
	Engine  string
	Start   time.Time
	root    *Span
}

// NewTrace starts a trace rooted at a span named "query".
func NewTrace(queryID string) *Trace {
	now := time.Now()
	return &Trace{QueryID: queryID, Start: now, root: &Span{name: "query", start: now}}
}

// Root returns the trace's root span (nil-safe).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Span is one timed stage of a query: a name, wall-clock bounds, row/batch
// counters, time-to-first-row, free-form attributes, and children. All
// methods are nil-safe and safe for concurrent use (shard drains append
// children and rows from their own goroutines).
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	end      time.Time
	rows     int64
	batches  int64
	firstRow time.Duration // from span start; 0 = no row yet
	attrs    []Attr
	children []*Span
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key string
	Val any
}

// Child starts a new child span now. Returns nil on a nil receiver.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End stamps the span's end time (first call wins; later calls no-op, so a
// deferred End after an explicit one is harmless).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// SetAttr records (or overwrites) one attribute.
func (s *Span) SetAttr(key string, val any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Val = val
			s.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
	s.mu.Unlock()
}

// AddRows adds n to the span's row counter, stamping time-to-first-row on
// the first positive add.
func (s *Span) AddRows(n int64) {
	if s == nil || n == 0 {
		return
	}
	s.mu.Lock()
	if s.rows == 0 && s.firstRow == 0 {
		s.firstRow = time.Since(s.start)
	}
	s.rows += n
	s.mu.Unlock()
}

// AddBatch records one delivered batch of n rows.
func (s *Span) AddBatch(n int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.rows == 0 && s.firstRow == 0 && n > 0 {
		s.firstRow = time.Since(s.start)
	}
	s.batches++
	s.rows += int64(n)
	s.mu.Unlock()
}

// Rows returns the span's row counter.
func (s *Span) Rows() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rows
}

// spanKey is the context key carrying the current parent span.
type spanKey struct{}

// WithSpan returns ctx carrying sp as the current span for lower layers to
// attach children to. A nil sp returns ctx unchanged (no key lookup cost is
// added to the untraced path's children).
func WithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFrom returns the current span in ctx, or nil when the query is not
// being traced (including a nil ctx).
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// SpanSnapshot is the serializable form of one span, durations in
// microseconds (query stages live in the µs–ms range; ms would round the
// interesting ones to zero).
type SpanSnapshot struct {
	Name string `json:"name"`
	// StartUs is the span's start offset from the trace start.
	StartUs    float64        `json:"start_us"`
	DurationUs float64        `json:"duration_us"`
	Rows       int64          `json:"rows,omitempty"`
	Batches    int64          `json:"batches,omitempty"`
	FirstRowUs float64        `json:"first_row_us,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []SpanSnapshot `json:"children,omitempty"`
}

// TraceSnapshot is the serializable form of a whole trace — what ?explain=1
// returns and /debug/queries serves.
type TraceSnapshot struct {
	QueryID string       `json:"query_id"`
	Query   string       `json:"query,omitempty"`
	Engine  string       `json:"engine,omitempty"`
	Start   time.Time    `json:"start"`
	Root    SpanSnapshot `json:"trace"`
}

// Snapshot ends the root span (if still open) and copies the tree. Returns
// nil on a nil trace.
func (t *Trace) Snapshot() *TraceSnapshot {
	if t == nil {
		return nil
	}
	t.root.End()
	return &TraceSnapshot{
		QueryID: t.QueryID,
		Query:   t.Query,
		Engine:  t.Engine,
		Start:   t.Start,
		Root:    t.root.snapshot(t.Start),
	}
}

func (s *Span) snapshot(traceStart time.Time) SpanSnapshot {
	s.mu.Lock()
	end := s.end
	if end.IsZero() {
		end = time.Now()
	}
	out := SpanSnapshot{
		Name:       s.name,
		StartUs:    us(s.start.Sub(traceStart)),
		DurationUs: us(end.Sub(s.start)),
		Rows:       s.rows,
		Batches:    s.batches,
		FirstRowUs: us(s.firstRow),
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.Key] = a.Val
		}
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, c := range children {
		out.Children = append(out.Children, c.snapshot(traceStart))
	}
	return out
}

// Find returns the first span named name in a depth-first walk of the
// snapshot tree, or nil — the test-side accessor for span-tree assertions.
func (s *SpanSnapshot) Find(name string) *SpanSnapshot {
	if s.Name == name {
		return s
	}
	for i := range s.Children {
		if found := s.Children[i].Find(name); found != nil {
			return found
		}
	}
	return nil
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
