package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromWriter emits the Prometheus text exposition format (version 0.0.4)
// without depending on the client library: HELP/TYPE headers once per
// family, escaped label values, histograms as cumulative _bucket/_sum/_count
// series. It tracks declared family names so a duplicate family — the
// classic copy-paste scrape breaker — surfaces as an error from Err instead
// of silently corrupting the exposition.
type PromWriter struct {
	w    io.Writer
	seen map[string]string // family name -> declared type
	err  error
}

// PromContentType is the Content-Type a /metrics response must carry.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// NewPromWriter wraps w for exposition output.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, seen: map[string]string{}}
}

// Err reports the first error encountered: an I/O failure or a duplicate
// family declaration.
func (p *PromWriter) Err() error { return p.err }

// family declares a metric family once; re-declaring with a different type
// is an error, re-declaring with the same type is ignored (families with
// many label sets call through here per sample).
func (p *PromWriter) family(name, typ, help string) bool {
	if p.err != nil {
		return false
	}
	if prev, ok := p.seen[name]; ok {
		if prev != typ {
			p.err = fmt.Errorf("obs: metric family %q declared as both %s and %s", name, prev, typ)
			return false
		}
		return true
	}
	p.seen[name] = typ
	_, err := fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
	if err != nil {
		p.err = err
		return false
	}
	return true
}

// Counter writes one counter sample. labels are key, value pairs.
func (p *PromWriter) Counter(name, help string, v float64, labels ...string) {
	if p.family(name, "counter", help) {
		p.sample(name, "", labels, v)
	}
}

// Gauge writes one gauge sample. labels are key, value pairs.
func (p *PromWriter) Gauge(name, help string, v float64, labels ...string) {
	if p.family(name, "gauge", help) {
		p.sample(name, "", labels, v)
	}
}

// Histogram writes one histogram: cumulative le-labelled buckets, _sum, and
// _count. labels are key, value pairs shared by every series.
func (p *PromWriter) Histogram(name, help string, s HistSnapshot, labels ...string) {
	if !p.family(name, "histogram", help) {
		return
	}
	var cum uint64
	for i, b := range s.Bounds {
		if i < len(s.Counts) {
			cum += s.Counts[i]
		}
		p.sample(name+"_bucket", formatFloat(b), labels, float64(cum))
	}
	p.sample(name+"_bucket", "+Inf", labels, float64(s.Count))
	p.sample(name+"_sum", "", labels, s.Sum)
	p.sample(name+"_count", "", labels, float64(s.Count))
}

// sample writes one series line; le, when non-empty, is appended as the
// bucket bound label.
func (p *PromWriter) sample(series, le string, labels []string, v float64) {
	if p.err != nil {
		return
	}
	var b strings.Builder
	b.WriteString(series)
	n := len(labels) / 2
	if n > 0 || le != "" {
		b.WriteByte('{')
		for i := 0; i < n; i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(labels[2*i])
			b.WriteString(`="`)
			b.WriteString(escapeLabel(labels[2*i+1]))
			b.WriteByte('"')
		}
		if le != "" {
			if n > 0 {
				b.WriteByte(',')
			}
			b.WriteString(`le="`)
			b.WriteString(le)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
	if _, err := io.WriteString(p.w, b.String()); err != nil {
		p.err = err
	}
}

// formatFloat renders values the way Prometheus parsers expect: integers
// without a decimal point, everything else in shortest form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// SortedKeys returns m's keys sorted — exposition output must be stable so
// scrapes diff cleanly and tests can assert on it.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
