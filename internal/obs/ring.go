package obs

import "sync"

// TraceRing holds the last N trace snapshots for /debug/queries. Writers
// take a short mutex to store one pointer — snapshots are built outside the
// lock — so contention stays negligible even when every query is traced.
type TraceRing struct {
	mu     sync.Mutex
	buf    []*TraceSnapshot
	next   int
	filled bool
}

// NewTraceRing returns a ring keeping the most recent n traces (n must be
// positive).
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		n = 1
	}
	return &TraceRing{buf: make([]*TraceSnapshot, n)}
}

// Add stores one snapshot, evicting the oldest when full. Nil snapshots are
// ignored so callers can pass Trace.Snapshot() unconditionally.
func (r *TraceRing) Add(s *TraceSnapshot) {
	if r == nil || s == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = s
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.filled = true
	}
	r.mu.Unlock()
}

// Snapshot returns the stored traces newest-first.
func (r *TraceRing) Snapshot() []*TraceSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.filled {
		n = len(r.buf)
	}
	out := make([]*TraceSnapshot, 0, n)
	for i := 0; i < n; i++ {
		idx := r.next - 1 - i
		if idx < 0 {
			idx += len(r.buf)
		}
		out = append(out, r.buf[idx])
	}
	return out
}

// Len reports how many traces are currently stored.
func (r *TraceRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.filled {
		return len(r.buf)
	}
	return r.next
}
