package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo is the process's build identity: module version, VCS revision,
// and toolchain. It is what /healthz, the build_info gauge on /metrics, and
// the CLIs' -version flags all report, so the three can never drift.
type BuildInfo struct {
	Version   string `json:"version"`         // module version, or "(devel)"
	Revision  string `json:"revision"`        // VCS commit hash, or "unknown"
	Modified  bool   `json:"dirty,omitempty"` // working tree had local edits
	GoVersion string `json:"go_version"`
}

var (
	buildInfoOnce sync.Once
	buildInfo     BuildInfo
)

// Build returns the process build info, resolved once from
// runtime/debug.ReadBuildInfo.
func Build() BuildInfo {
	buildInfoOnce.Do(func() {
		buildInfo = BuildInfo{Version: "(devel)", Revision: "unknown", GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.Main.Version != "" {
			buildInfo.Version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			}
		}
	})
	return buildInfo
}

// String renders the build info the way a -version flag prints it.
func (b BuildInfo) String() string {
	s := b.Version + " (" + b.Revision
	if b.Modified {
		s += "-dirty"
	}
	return s + ", " + b.GoVersion + ")"
}
