package durable_test

// Crash-recovery suite: kill -9 is simulated by copying the data directory
// while the store is still open (no seal, no graceful teardown — exactly
// the bytes a crash would leave, given that SyncAlways makes every returned
// Apply durable) and re-opening the copy. Recovery must reconstruct the
// pre-crash overlay exactly, verified both as a triple multiset and through
// the engine conformance harness (every registered engine vs a naive oracle
// over a from-scratch rebuilt store).

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/durable"
	"repro/internal/engine"
	"repro/internal/engines"
	"repro/internal/live"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/wal"
)

func node(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://c/n%d", i)) }

var predP = rdf.NewIRI("http://c/p")

// digraphTriples builds the complete-digraph conformance dataset split into
// base triples, later inserts, and tombstoned base triples (mirroring
// live's conformance overlay).
func digraphTriples(n int) (base, held, dead []rdf.Triple) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			tr := rdf.Triple{S: node(i), P: predP, O: node(j)}
			if (i+j)%17 == 0 {
				held = append(held, tr)
			} else {
				base = append(base, tr)
				if (i*j)%23 == 1 {
					dead = append(dead, tr)
				}
			}
		}
	}
	return
}

func openDigraph(t *testing.T, dir string, n int, pol wal.Policy) *durable.Store {
	t.Helper()
	base, _, _ := digraphTriples(n)
	d, err := durable.Open(dir, func() (*store.Store, error) {
		return store.FromTriples(base), nil
	}, durable.Options{Fsync: pol})
	if err != nil {
		t.Fatalf("durable.Open: %v", err)
	}
	return d
}

// copyDir simulates kill -9: it captures the exact current bytes of the
// data directory into a fresh directory, ignoring nothing — whatever is on
// disk at this instant is what a restarted process would find.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// overlayLines canonicalizes a live store's visible triple set.
func overlayLines(t *testing.T, ls *live.Store) string {
	t.Helper()
	var buf bytes.Buffer
	if err := ls.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := store.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	lines := make([]string, 0, st.NumTriples())
	for _, et := range st.Triples() {
		lines = append(lines, rdf.Triple{
			S: st.Dict().Decode(et.S), P: st.Dict().Decode(et.P), O: st.Dict().Decode(et.O),
		}.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// conformance runs the triangle query on every registered engine over ls
// and compares against the naive oracle on a from-scratch rebuilt store.
func conformance(t *testing.T, ls *live.Store) {
	t.Helper()
	rebuilt := rebuild(t, ls)
	oracle, err := engines.New("naive", rebuilt)
	if err != nil {
		t.Fatal(err)
	}
	q := query.MustParseSPARQL(`SELECT ?x ?y ?z WHERE { ?x <http://c/p> ?y . ?y <http://c/p> ?z . ?x <http://c/p> ?z }`)
	want, err := engine.Collect(oracle.Open(q, engine.ExecOpts{}))
	if err != nil {
		t.Fatal(err)
	}
	wantC := canon(want, rebuilt)
	for _, name := range engines.Names() {
		le, err := engines.NewLive(name, ls)
		if err != nil {
			t.Fatal(err)
		}
		got, err := engine.Collect(le.Open(q, engine.ExecOpts{}))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if gotC := canonDict(got, ls.Dict().Decode); gotC != wantC {
			t.Errorf("%s: recovered overlay != rebuilt store (%d vs %d rows)", name, got.Len(), want.Len())
		}
	}
}

func rebuild(t *testing.T, ls *live.Store) *store.Store {
	t.Helper()
	var buf bytes.Buffer
	if err := ls.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	src, err := store.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := store.NewBuilder()
	for _, et := range src.Triples() {
		b.Add(rdf.Triple{S: src.Dict().Decode(et.S), P: src.Dict().Decode(et.P), O: src.Dict().Decode(et.O)})
	}
	return b.Build()
}

func canon(res *engine.Result, st *store.Store) string {
	return canonDict(res, st.Dict().Decode)
}

func canonDict(res *engine.Result, decode func(uint32) rdf.Term) string {
	lines := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, id := range row {
			parts[i] = decode(id).String()
		}
		lines = append(lines, strings.Join(parts, "\t"))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestCleanRestart: apply a two-sided patch stream, close cleanly, reopen —
// the overlay must be byte-identical and the log must report a seal.
func TestCleanRestart(t *testing.T) {
	dir := t.TempDir()
	d := openDigraph(t, dir, 12, wal.Policy{Mode: wal.SyncAlways})
	_, held, dead := digraphTriples(12)
	if _, err := d.Live().Insert(held); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Live().Delete(dead); err != nil {
		t.Fatal(err)
	}
	want := overlayLines(t, d.Live())
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := durable.Open(dir, func() (*store.Store, error) {
		t.Fatal("bootstrap ran on an initialized directory")
		return nil, nil
	}, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if !d2.Recovered().Sealed {
		t.Error("clean shutdown not detected as sealed")
	}
	if d2.Recovered().Records == 0 {
		t.Error("no records replayed after restart")
	}
	if got := overlayLines(t, d2.Live()); got != want {
		t.Fatal("recovered overlay differs from pre-shutdown overlay")
	}
	conformance(t, d2.Live())
}

// TestKillMidStream is the headline crash test: under SyncAlways, the data
// directory is snapshotted (kill -9) after every returned patch group, and
// each snapshot must recover to exactly the overlay visible at that moment.
func TestKillMidStream(t *testing.T) {
	dir := t.TempDir()
	d := openDigraph(t, dir, 12, wal.Policy{Mode: wal.SyncAlways})
	defer d.Close()
	_, held, dead := digraphTriples(12)

	type snap struct {
		dir  string
		want string
	}
	var snaps []snap
	group := 5
	for i := 0; i < len(held); i += group {
		end := min(i+group, len(held))
		if _, err := d.Live().Insert(held[i:end]); err != nil {
			t.Fatal(err)
		}
		if i/group%3 == 0 {
			snaps = append(snaps, snap{copyDir(t, dir), overlayLines(t, d.Live())})
		}
	}
	if _, err := d.Live().Delete(dead); err != nil {
		t.Fatal(err)
	}
	snaps = append(snaps, snap{copyDir(t, dir), overlayLines(t, d.Live())})

	for i, s := range snaps {
		d2, err := durable.Open(s.dir, func() (*store.Store, error) {
			t.Fatalf("snapshot %d: bootstrap ran", i)
			return nil, nil
		}, durable.Options{})
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		if d2.Recovered().Sealed {
			t.Errorf("snapshot %d: kill -9 image reported a clean seal", i)
		}
		if got := overlayLines(t, d2.Live()); got != s.want {
			t.Errorf("snapshot %d: recovered overlay differs from pre-crash overlay", i)
		}
		if i == len(snaps)-1 {
			conformance(t, d2.Live())
		}
		d2.Close()
	}
}

// TestTornTailRecovery: a crash image whose WAL is cut mid-record (and, in
// a second variant, CRC-corrupted in the final record) must lose exactly
// the affected suffix and recover the preceding records.
func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	d := openDigraph(t, dir, 12, wal.Policy{Mode: wal.SyncAlways})
	_, held, _ := digraphTriples(12)
	// Apply one record, snapshot the expected post-recovery state, then a
	// second record that will be torn away.
	if _, err := d.Live().Insert(held[:4]); err != nil {
		t.Fatal(err)
	}
	want := overlayLines(t, d.Live())
	if _, err := d.Live().Insert(held[4:8]); err != nil {
		t.Fatal(err)
	}
	crash := copyDir(t, dir)
	d.Close()

	walPath := filepath.Join(crash, durable.WALName)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	for name, mutate := range map[string]func([]byte) []byte{
		"truncated-mid-record": func(b []byte) []byte { return b[:len(b)-7] },
		"crc-corrupted": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-3] ^= 0x5A
			return c
		},
	} {
		t.Run(name, func(t *testing.T) {
			tdir := copyDir(t, crash)
			if err := os.WriteFile(filepath.Join(tdir, durable.WALName), mutate(full), 0o644); err != nil {
				t.Fatal(err)
			}
			d2, err := durable.Open(tdir, nil, durable.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer d2.Close()
			info := d2.Recovered()
			if info.TornBytes == 0 {
				t.Error("no torn tail detected")
			}
			if info.Records != 1 {
				t.Errorf("replayed %d records, want 1", info.Records)
			}
			if got := overlayLines(t, d2.Live()); got != want {
				t.Error("recovery after torn tail does not match the last durable record boundary")
			}
		})
	}
}

// TestCompactPersistsAndTruncates: Compact must replace the segment, empty
// the WAL, and leave a directory that reopens to the same overlay with
// nothing to replay.
func TestCompactPersistsAndTruncates(t *testing.T) {
	dir := t.TempDir()
	d := openDigraph(t, dir, 12, wal.Policy{Mode: wal.SyncAlways})
	_, held, dead := digraphTriples(12)
	if _, err := d.Live().Insert(held); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Live().Delete(dead); err != nil {
		t.Fatal(err)
	}
	want := overlayLines(t, d.Live())
	preSeg, err := os.Stat(filepath.Join(dir, durable.SegmentName))
	if err != nil {
		t.Fatal(err)
	}

	stats, err := d.Live().Compact()
	if err != nil {
		t.Fatalf("compact: %v", err)
	}
	if !stats.Swapped {
		t.Fatal("compact did not swap")
	}
	if wb := d.Stats().WAL.Bytes; wb != 0 {
		t.Fatalf("WAL holds %d bytes after compaction, want 0", wb)
	}
	postSeg, err := os.Stat(filepath.Join(dir, durable.SegmentName))
	if err != nil {
		t.Fatal(err)
	}
	if postSeg.Size() == preSeg.Size() && postSeg.ModTime() == preSeg.ModTime() {
		t.Fatal("segment not rewritten by compaction")
	}
	if got := overlayLines(t, d.Live()); got != want {
		t.Fatal("overlay changed across compaction")
	}
	d.Close()

	// Crash image right after compaction: nothing to replay, same overlay.
	d2, err := durable.Open(dir, nil, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Recovered().Records != 0 {
		t.Fatalf("replayed %d records after compaction, want 0", d2.Recovered().Records)
	}
	if got := overlayLines(t, d2.Live()); got != want {
		t.Fatal("post-compaction reopen differs")
	}
	conformance(t, d2.Live())
}

// TestCrashBetweenSegmentAndTruncate: if the process dies after the new
// segment is in place but before the WAL truncates, replaying the stale log
// against the new base must net to no-ops (idempotent replay).
func TestCrashBetweenSegmentAndTruncate(t *testing.T) {
	dir := t.TempDir()
	d := openDigraph(t, dir, 12, wal.Policy{Mode: wal.SyncAlways})
	_, held, dead := digraphTriples(12)
	if _, err := d.Live().Insert(held); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Live().Delete(dead); err != nil {
		t.Fatal(err)
	}
	want := overlayLines(t, d.Live())
	staleWAL, err := os.ReadFile(filepath.Join(dir, durable.WALName))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Live().Compact(); err != nil {
		t.Fatal(err)
	}
	d.Close()
	// Re-impose the pre-compaction WAL next to the post-compaction segment.
	if err := os.WriteFile(filepath.Join(dir, durable.WALName), staleWAL, 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := durable.Open(dir, nil, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if ins, del := d2.Live().DeltaSize(); ins != 0 || del != 0 {
		t.Fatalf("stale replay left a delta (ins=%d del=%d); should net to no-ops", ins, del)
	}
	if got := overlayLines(t, d2.Live()); got != want {
		t.Fatal("stale-WAL replay corrupted the overlay")
	}
}

// TestShardedDurable: the sharded serving option composes with recovery.
func TestShardedDurable(t *testing.T) {
	dir := t.TempDir()
	base, held, dead := digraphTriples(12)
	d, err := durable.Open(dir, func() (*store.Store, error) {
		return store.FromTriples(base), nil
	}, durable.Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Live().Insert(held); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Live().Delete(dead); err != nil {
		t.Fatal(err)
	}
	want := overlayLines(t, d.Live())
	crash := copyDir(t, dir)
	d.Close()

	d2, err := durable.Open(crash, nil, durable.Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Live().Shards() != 3 {
		t.Fatalf("shards = %d, want 3", d2.Live().Shards())
	}
	if got := overlayLines(t, d2.Live()); got != want {
		t.Fatal("sharded recovery differs")
	}
	conformance(t, d2.Live())
}

// A crash between segment.Write's CreateTemp and its rename leaves a
// base.seg.tmp* corpse; Open must sweep it so crash/compaction cycles do
// not accumulate dead segment-sized files.
func TestOpenSweepsStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	d := openDigraph(t, dir, 8, wal.Policy{Mode: wal.SyncAlways})
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, durable.SegmentName+".tmp1234567")
	if err := os.WriteFile(stale, []byte("orphaned by a crash"), 0o644); err != nil {
		t.Fatal(err)
	}
	d2 := openDigraph(t, dir, 8, wal.Policy{Mode: wal.SyncAlways})
	defer d2.Close()
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp file survived Open: stat err = %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, durable.SegmentName)); err != nil {
		t.Fatalf("real segment touched by sweep: %v", err)
	}
}
