// Package durable composes the storage engine's durability stack: a
// live.Store whose writes flow through a write-ahead log (internal/wal) and
// whose compacted bases persist as mmap-able segment files
// (internal/segment), all inside one data directory.
//
// # Data directory
//
//	<dir>/base.seg   the last compacted base (segment file, mmap'd on boot)
//	<dir>/wal.log    patches applied since that base
//
// # Invariants
//
// Write-ahead: a patch is appended to the log before its delta is
// published, so the on-disk pair (segment, log) is always at or ahead of
// what readers ever observed. Compact-then-truncate: the log is truncated
// only after the new segment is durably renamed into place; a crash between
// the two replays already-folded patches, which net to no-ops against the
// new base. It follows that crash recovery (segment + log replay) always
// reconstructs exactly the pre-crash overlay minus at most the final
// un-fsynced append group.
package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/live"
	"repro/internal/segment"
	"repro/internal/store"
	"repro/internal/wal"
)

// SegmentName and WALName are the fixed file names inside a data directory.
const (
	SegmentName = "base.seg"
	WALName     = "wal.log"
)

// Options parameterizes Open.
type Options struct {
	// Fsync is the log's sync policy (zero value = wal.SyncAlways).
	Fsync wal.Policy
	// Shards, when > 1, partitions the loaded base into subject-hash
	// shards (a boot-time serving option; it does not affect the on-disk
	// format).
	Shards int
}

// Store is a live.Store bound to a data directory. Close seals the log;
// use the embedded Live store for queries and writes.
type Store struct {
	ls  *live.Store
	log *wal.Log
	dir string

	recover  wal.RecoverInfo
	replays  atomic.Uint64 // compactions persisted this process
	segBytes atomic.Int64
	mapped   atomic.Bool

	mu       sync.Mutex
	mappings []*segment.Loaded // kept open until Close: pinned cursors may still read them
	closed   bool
}

// Open opens (or initializes) the data directory at dir: load the segment
// if present — otherwise build the initial base with bootstrap and persist
// it — then replay the log's surviving patches into the overlay and attach
// the write-ahead hooks. bootstrap runs only on first boot; it may return
// an empty store (store.FromTriples(nil)).
func Open(dir string, bootstrap func() (*store.Store, error), opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	sweepTempFiles(dir)
	segPath := filepath.Join(dir, SegmentName)
	d := &Store{dir: dir}

	if _, err := os.Stat(segPath); err == nil {
		l, err := segment.Open(segPath)
		if err != nil {
			return nil, fmt.Errorf("durable: %w", err)
		}
		d.mappings = append(d.mappings, l)
		d.segBytes.Store(l.Bytes)
		d.mapped.Store(l.Mapped)
	} else if !os.IsNotExist(err) {
		return nil, err
	} else {
		base, err := bootstrap()
		if err != nil {
			return nil, fmt.Errorf("durable: bootstrap: %w", err)
		}
		if err := segment.Write(segPath, base); err != nil {
			return nil, fmt.Errorf("durable: writing initial segment: %w", err)
		}
		// Reopen through the mapping so the very first boot serves the
		// same way every later one does.
		l, err := segment.Open(segPath)
		if err != nil {
			return nil, fmt.Errorf("durable: %w", err)
		}
		d.mappings = append(d.mappings, l)
		d.segBytes.Store(l.Bytes)
		d.mapped.Store(l.Mapped)
	}

	ls, err := live.NewStore(d.mappings[0].Store, live.Options{Shards: opts.Shards})
	if err != nil {
		d.closeMappings()
		return nil, err
	}
	d.ls = ls

	// Replay before attaching the durability hooks: replayed patches are
	// already in the log and must not be re-appended.
	log, info, err := wal.Open(filepath.Join(dir, WALName), opts.Fsync, func(b wal.Batch) error {
		_, err := ls.Apply(batchToPatch(b))
		return err
	})
	if err != nil {
		d.closeMappings()
		return nil, fmt.Errorf("durable: %w", err)
	}
	d.log = log
	d.recover = info
	ls.SetDurability(d)
	return d, nil
}

// sweepTempFiles removes segment temp files orphaned by a crash between
// segment.Write's CreateTemp and its rename. Best effort: a leftover tmp is
// dead weight (the rename never happened, so no state references it), and
// without the sweep repeated crash/compaction cycles would accumulate
// segment-sized corpses in the data directory.
func sweepTempFiles(dir string) {
	matches, err := filepath.Glob(filepath.Join(dir, SegmentName+".tmp*"))
	if err != nil {
		return
	}
	for _, m := range matches {
		os.Remove(m)
	}
}

// Live returns the underlying live store.
func (d *Store) Live() *live.Store { return d.ls }

// Dir returns the data directory path.
func (d *Store) Dir() string { return d.dir }

// Recovered reports what boot-time replay found in the log.
func (d *Store) Recovered() wal.RecoverInfo { return d.recover }

// WALFailed reports whether the write-ahead log has latched wal.ErrFailed
// (an unrepaired write error, e.g. disk full): the process can still serve
// reads but can no longer persist updates. /healthz degrades to 503 on this
// so a cluster health checker ejects the worker.
func (d *Store) WALFailed() bool { return d.log.Failed() }

// Log exposes the underlying write-ahead log. Used by fault-injection
// tests to drive the failure surfaces; production code should go through
// LogPatch/Stats/WALFailed.
func (d *Store) Log() *wal.Log { return d.log }

// LogPatch implements live.Durability: append (and per policy fsync) the
// patch before the overlay publishes it.
func (d *Store) LogPatch(p live.Patch) error {
	return d.log.AppendPatch(patchToBatch(p))
}

// Compacted implements live.Durability: persist the fresh base as the new
// segment, and only after it is durably in place truncate the log. On
// segment-write failure the log is left intact — the previous segment plus
// the log still reconstructs the current overlay.
//
// Write stall: this runs under live.Store's write mutex (Compact holds it
// across the hook), so every Apply/Insert/Delete blocks for the segment
// serialization + fsync. That is what keeps compact-then-truncate simple —
// no patch can slip into the log between the swap and the Reset, so a full
// truncation is always safe. Moving the write off the lock needs WAL
// rotation (per-epoch log files replayed in order at boot); until write
// stalls show up in practice, run compactions off-peak or at a cadence
// where a segment fsync per compaction is acceptable.
func (d *Store) Compacted(base *store.Store, epoch uint64) error {
	segPath := filepath.Join(d.dir, SegmentName)
	if err := segment.Write(segPath, base); err != nil {
		return err
	}
	if st, err := os.Stat(segPath); err == nil {
		d.segBytes.Store(st.Size())
	}
	d.replays.Add(1)
	return d.log.Reset()
}

// Close seals the log (clean-shutdown marker) and releases the segment
// mappings. The store must not be used afterwards.
func (d *Store) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	d.ls.SetDurability(nil)
	err := d.log.Close()
	if cerr := d.closeMappings(); err == nil {
		err = cerr
	}
	return err
}

func (d *Store) closeMappings() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var err error
	for _, m := range d.mappings {
		if cerr := m.Close(); err == nil {
			err = cerr
		}
	}
	d.mappings = nil
	return err
}

// Stats is the durability section of the server's /stats.
type Stats struct {
	WAL wal.Stats
	// ReplayedRecords and ReplayedOps describe boot-time recovery.
	ReplayedRecords int
	ReplayedOps     int
	// TornBytes is how much torn tail boot recovery truncated.
	TornBytes int64
	// CleanShutdown reports whether the log ended with a seal at boot.
	CleanShutdown bool
	// SegmentBytes is the current base segment's file size.
	SegmentBytes int64
	// SegmentsMapped counts open segment mappings (old epochs are kept
	// mapped until Close because pinned cursors may still read them).
	SegmentsMapped int
	// Mapped reports mmap residency (false = heap-read fallback).
	Mapped bool
	// CompactionsPersisted counts segments written by this process.
	CompactionsPersisted uint64
}

// Stats snapshots the durability counters.
func (d *Store) Stats() Stats {
	d.mu.Lock()
	nmap := len(d.mappings)
	d.mu.Unlock()
	return Stats{
		WAL:                  d.log.Stats(),
		ReplayedRecords:      d.recover.Records,
		ReplayedOps:          d.recover.Ops,
		TornBytes:            d.recover.TornBytes,
		CleanShutdown:        d.recover.Sealed,
		SegmentBytes:         d.segBytes.Load(),
		SegmentsMapped:       nmap,
		Mapped:               d.mapped.Load(),
		CompactionsPersisted: d.replays.Load(),
	}
}

func patchToBatch(p live.Patch) wal.Batch {
	b := wal.Batch{Ops: make([]wal.Op, len(p.Ops))}
	for i, op := range p.Ops {
		b.Ops[i] = wal.Op{Delete: op.Delete, Triple: op.Triple}
	}
	return b
}

func batchToPatch(b wal.Batch) live.Patch {
	p := live.Patch{Ops: make([]live.Op, len(b.Ops))}
	for i, op := range b.Ops {
		p.Ops[i] = live.Op{Delete: op.Delete, Triple: op.Triple}
	}
	return p
}
