package exec_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/engine/naive"
	"repro/internal/lubm"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/store"
)

// allOptionCombos enumerates all 16 optimization configurations.
func allOptionCombos() []core.Options {
	var out []core.Options
	for mask := 0; mask < 16; mask++ {
		out = append(out, core.Options{
			Layout:           mask&1 != 0,
			AttributeReorder: mask&2 != 0,
			GHDPushdown:      mask&4 != 0,
			Pipelining:       mask&8 != 0,
		})
	}
	return out
}

func iri(s string) rdf.Term { return rdf.NewIRI(s) }

func t3(s, p, o string) rdf.Triple {
	return rdf.Triple{S: iri(s), P: iri(p), O: iri(o)}
}

// checkAgainstNaive asserts that every optimization combo of the core
// engine returns the same result multiset as the reference engine.
func checkAgainstNaive(t *testing.T, st *store.Store, queries map[string]string) {
	t.Helper()
	ref := naive.New(st)
	for name, text := range queries {
		q, err := query.ParseSPARQL(text)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		want, err := engine.Execute(ref, q)
		if err != nil {
			t.Fatalf("%s: naive: %v", name, err)
		}
		wantC := want.Canonical()
		for _, opts := range allOptionCombos() {
			eh := core.New(st, opts)
			got, err := engine.Execute(eh, q)
			if err != nil {
				t.Fatalf("%s opts=%+v: execute: %v", name, opts, err)
			}
			if got.Canonical() != wantC {
				t.Errorf("%s opts=%+v: result mismatch: got %d rows, want %d rows\ngot:\n%.400s\nwant:\n%.400s",
					name, opts, got.Len(), want.Len(), got.Canonical(), wantC)
			}
		}
	}
}

func TestHandBuiltTriangle(t *testing.T) {
	// A graph with exactly two triangles plus noise edges.
	st := store.FromTriples([]rdf.Triple{
		t3("a", "e", "b"), t3("b", "e", "c"), t3("c", "e", "a"), // triangle 1
		t3("x", "e", "y"), t3("y", "e", "z"), t3("z", "e", "x"), // triangle 2
		t3("a", "e", "x"), t3("p", "e", "q"), // noise
	})
	checkAgainstNaive(t, st, map[string]string{
		"triangle": `SELECT ?x ?y ?z WHERE { ?x <e> ?y . ?y <e> ?z . ?z <e> ?x . }`,
		"path2":    `SELECT ?x ?y ?z WHERE { ?x <e> ?y . ?y <e> ?z . }`,
		"out-in":   `SELECT ?x WHERE { ?x <e> ?y . ?z <e> ?x . }`,
	})
}

func TestSelectionsAndStars(t *testing.T) {
	st := store.FromTriples([]rdf.Triple{
		t3("s1", "type", "Student"), t3("s2", "type", "Student"), t3("s3", "type", "Teacher"),
		t3("s1", "member", "d1"), t3("s2", "member", "d2"), t3("s3", "member", "d1"),
		t3("s1", "takes", "c1"), t3("s1", "takes", "c2"), t3("s2", "takes", "c1"),
		t3("d1", "sub", "u1"), t3("d2", "sub", "u1"),
	})
	checkAgainstNaive(t, st, map[string]string{
		"type-scan":     `SELECT ?x WHERE { ?x <type> <Student> . }`,
		"type+member":   `SELECT ?x WHERE { ?x <type> <Student> . ?x <member> <d1> . }`,
		"star":          `SELECT ?x ?c ?d WHERE { ?x <type> <Student> . ?x <takes> ?c . ?x <member> ?d . }`,
		"chain":         `SELECT ?x ?d ?u WHERE { ?x <member> ?d . ?d <sub> ?u . }`,
		"const-subject": `SELECT ?c WHERE { <s1> <takes> ?c . }`,
		"missing-const": `SELECT ?x WHERE { ?x <type> <Nonexistent> . }`,
		"missing-pred":  `SELECT ?x WHERE { ?x <nope> ?y . }`,
		"distinct":      `SELECT DISTINCT ?d WHERE { ?x <member> ?d . ?x <takes> ?c . }`,
		"projection":    `SELECT ?x WHERE { ?x <takes> ?c . }`,
	})
}

func TestFullyConstantPatterns(t *testing.T) {
	st := store.FromTriples([]rdf.Triple{
		t3("s1", "takes", "c1"),
		t3("s1", "type", "Student"),
		t3("s2", "type", "Student"),
	})
	checkAgainstNaive(t, st, map[string]string{
		// The constant pattern matches: acts as a neutral filter.
		"const-true": `SELECT ?x WHERE { <s1> <takes> <c1> . ?x <type> <Student> . }`,
		// The constant pattern fails (absent triple with present terms).
		"const-false": `SELECT ?x WHERE { <s2> <takes> <c1> . ?x <type> <Student> . }`,
		// The constant pattern references an unknown term entirely.
		"const-unknown": `SELECT ?x WHERE { <s1> <takes> <c9> . ?x <type> <Student> . }`,
	})
}

func TestVariablePredicate(t *testing.T) {
	st := store.FromTriples([]rdf.Triple{
		t3("a", "p1", "b"), t3("a", "p2", "c"), t3("b", "p1", "c"),
	})
	checkAgainstNaive(t, st, map[string]string{
		"all-triples": `SELECT ?s ?p ?o WHERE { ?s ?p ?o . }`,
		"pred-of-a":   `SELECT ?p ?o WHERE { <a> ?p ?o . }`,
		"pred-join":   `SELECT ?s ?p WHERE { ?s ?p <c> . }`,
	})
}

func TestSelfJoinRepeatedVariable(t *testing.T) {
	st := store.FromTriples([]rdf.Triple{
		t3("a", "e", "a"), t3("a", "e", "b"), t3("b", "e", "b"), t3("c", "e", "d"),
	})
	checkAgainstNaive(t, st, map[string]string{
		"self-loop": `SELECT ?x WHERE { ?x <e> ?x . }`,
	})
}

func TestCartesianProduct(t *testing.T) {
	st := store.FromTriples([]rdf.Triple{
		t3("a", "p", "b"), t3("c", "p", "d"),
		t3("x", "q", "y"), t3("z", "q", "w"),
	})
	checkAgainstNaive(t, st, map[string]string{
		"product": `SELECT ?a ?b ?c ?d WHERE { ?a <p> ?b . ?c <q> ?d . }`,
	})
}

func TestRandomGraphsRandomQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(20160210))
	queryShapes := []string{
		`SELECT ?x ?y ?z WHERE { ?x <e0> ?y . ?y <e1> ?z . ?z <e0> ?x . }`,
		`SELECT ?x ?y WHERE { ?x <e0> ?y . ?x <e1> ?y . }`,
		`SELECT ?x ?y ?z ?w WHERE { ?x <e0> ?y . ?y <e1> ?z . ?z <e2> ?w . }`,
		`SELECT ?x WHERE { ?x <e0> <n3> . ?x <e1> ?y . }`,
		`SELECT ?x ?y WHERE { <n1> <e0> ?x . ?x <e1> ?y . ?y <e2> <n2> . }`,
		`SELECT ?x ?y ?z WHERE { ?x <e0> ?y . ?x <e1> ?z . ?y <e2> ?z . }`,
	}
	for trial := 0; trial < 8; trial++ {
		n := 8 + rng.Intn(8)
		var triples []rdf.Triple
		for i := 0; i < 60; i++ {
			s := fmt.Sprintf("n%d", rng.Intn(n))
			p := fmt.Sprintf("e%d", rng.Intn(3))
			o := fmt.Sprintf("n%d", rng.Intn(n))
			triples = append(triples, t3(s, p, o))
		}
		st := store.FromTriples(triples)
		queries := map[string]string{}
		for i, s := range queryShapes {
			queries[fmt.Sprintf("trial%d-q%d", trial, i)] = s
		}
		checkAgainstNaive(t, st, queries)
	}
}

func TestLUBMAllQueriesMatchNaive(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	st := store.FromTriples(lubm.Generate(lubm.Config{Universities: 1}))
	ref := naive.New(st)
	for _, n := range lubm.QueryNumbers {
		q := query.MustParseSPARQL(lubm.Query(n, 1))
		want, err := engine.Execute(ref, q)
		if err != nil {
			t.Fatalf("Q%d naive: %v", n, err)
		}
		// Check the two extreme configurations (all opts, no opts) plus
		// one mixed one; the full 16-combo sweep runs on smaller data.
		for _, opts := range []core.Options{
			core.AllOptimizations,
			core.NoOptimizations,
			{Layout: true, GHDPushdown: true},
		} {
			got, err := engine.Execute(core.New(st, opts), q)
			if err != nil {
				t.Fatalf("Q%d opts=%+v: %v", n, opts, err)
			}
			if got.Canonical() != want.Canonical() {
				t.Errorf("Q%d opts=%+v: got %d rows, want %d rows", n, opts, got.Len(), want.Len())
			}
		}
	}
}

func TestLUBMQuery11IsEmpty(t *testing.T) {
	st := store.FromTriples(lubm.Generate(lubm.Config{Universities: 1}))
	q := query.MustParseSPARQL(lubm.Query(11, 1))
	got, err := engine.Execute(core.New(st, core.AllOptimizations), q)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if got.Len() != 0 {
		t.Errorf("Q11 = %d rows, want 0 (no inference)", got.Len())
	}
}

func TestResultDecode(t *testing.T) {
	st := store.FromTriples([]rdf.Triple{t3("a", "p", "b")})
	q := query.MustParseSPARQL(`SELECT ?x ?y WHERE { ?x <p> ?y . }`)
	got, err := engine.Execute(core.New(st, core.AllOptimizations), q)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	rows := got.Decode(st.Dict())
	if len(rows) != 1 || rows[0][0].Value != "a" || rows[0][1].Value != "b" {
		t.Errorf("decoded rows = %v", rows)
	}
}

var _ = engine.Result{} // keep the import for documentation symmetry
