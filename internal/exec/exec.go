// Package exec executes physical plans produced by internal/plan using the
// generic worst-case optimal join algorithm (Algorithm 1 of the paper) over
// tries.
//
// Execution follows §II-C: the GHD is traversed bottom-up, running the
// generic join inside every node and materializing each non-root node's
// result as a trie that its parent joins like any other relation; then a
// final enumeration pass joins the root's relations with all materialized
// node results (and with the raw relations of a pipelined child, §III-C) to
// produce output tuples.
//
// The enumerator is a streaming generator: Open returns an engine.Cursor
// that yields output rows as the final join produces them, so consumers
// (the query server above all) hold O(batch) rows in memory, see their
// first row before enumeration finishes, and can abandon a result early by
// closing the cursor — which cancels the producing goroutine within one
// cancellation stride. Run/RunOpts materialize the stream for callers that
// want the whole result.
package exec

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/set"
	"repro/internal/store"
	"repro/internal/trie"
)

// Result holds encoded result rows in the plan's SELECT order. It is the
// shared engine.Result representation.
type Result = engine.Result

// Options configures execution.
type Options struct {
	// Policy selects set layouts.
	Policy set.Policy
	// Workers parallelizes the final enumeration across goroutines by
	// partitioning the first variable's domain (the paper's engine ran on
	// 48 cores; values ≤ 1 mean sequential). The bottom-up pass stays
	// sequential — node results are shared. Row order is deterministic
	// regardless: workers stream their partitions in worker order.
	Workers int
	// Ctx, when non-nil, is checked periodically during join recursion;
	// execution aborts with the context's error once it is cancelled or its
	// deadline passes. This is how the query server bounds per-request work.
	Ctx context.Context
	// MaxRows, when positive, stops enumeration after that many output rows
	// and marks the cursor Truncated — exactly: truncation is reported iff
	// a further row existed. With Distinct, the cap applies to the
	// deduplicated stream, so a truncated distinct result holds exactly
	// MaxRows distinct rows.
	MaxRows int
	// Offset skips that many output rows (after deduplication, before the
	// MaxRows cap).
	Offset int
}

// Run executes p against st with the given set layout policy,
// sequentially.
func Run(p *plan.Plan, st *store.Store, policy set.Policy) (*Result, error) {
	return RunOpts(p, st, Options{Policy: policy})
}

// RunOpts executes p with full execution options and materializes the
// result (a Collect over Open, preserved for tests and benchmarks).
func RunOpts(p *plan.Plan, st *store.Store, opts Options) (*Result, error) {
	return engine.Collect(Open(p, st, opts))
}

// Open starts executing p and returns the cursor over its output rows. The
// bottom-up materialization pass and the final enumeration both run on the
// cursor's producer goroutine, so Open itself returns immediately; plan
// errors surface from the first Next. A pre-cancelled Ctx fails fast.
func Open(p *plan.Plan, st *store.Store, opts Options) (engine.Cursor, error) {
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			return nil, err
		}
	}
	cur := engine.NewGenerator(opts.Ctx, p.Select, func(ctx context.Context, emit func([]uint32) error) error {
		return stream(p, st, opts, ctx, emit)
	})
	return engine.Limit(cur, opts.Offset, opts.MaxRows), nil
}

// stream is the producer: bottom-up pass, then the final enumeration
// feeding emit. ctx is the generator's context — cancelled both by the
// caller's Ctx and by the consumer closing the cursor — so every phase,
// including node materialization, stops cooperatively.
func stream(p *plan.Plan, st *store.Store, opts Options, ctx context.Context, emit func([]uint32) error) error {
	if p.Empty {
		return nil
	}
	e := &executor{st: st, policy: opts.Policy, ctx: ctx}

	// The root is streamed (its generic join feeds the output enumeration
	// directly) when no top-down pass is necessary — single-node plans,
	// plans whose root bag covers every query variable (children act as
	// pure semijoin filters; §II-C: "if necessary, we traverse the GHD
	// top-down") — and when a pipelined child exists (§III-C). Otherwise
	// the root's result is materialized like any other node, which is the
	// paper's default two-phase execution.
	hasPipelined := false
	for _, child := range p.Root.Children {
		if child.Pipelined {
			hasPipelined = true
		}
	}
	streamRoot := len(p.Root.Children) == 0 || hasPipelined || rootCoversAllVars(p)

	// Bottom-up pass: materialize every non-pipelined node.
	for _, child := range p.Root.Children {
		if child.Pipelined {
			continue
		}
		if _, err := e.materialize(child); err != nil {
			return err
		}
		if e.dead {
			return nil
		}
	}
	if !streamRoot {
		if _, err := e.materialize(p.Root); err != nil {
			return err
		}
		if e.dead {
			return nil
		}
	}

	// Final pass: join the root (its raw relations when streaming, its
	// materialized result otherwise) with every materialized node result
	// and the pipelined child's raw relations.
	inputs, attrs, err := e.finalInputs(p, streamRoot)
	if err != nil {
		return err
	}
	attrIdx := map[string]int{}
	for i, a := range attrs {
		attrIdx[a.Name] = i
	}
	proj := make([]int, len(p.Select))
	for i, v := range p.Select {
		pos, ok := attrIdx[v]
		if !ok {
			return fmt.Errorf("exec: projected variable %q not produced by plan", v)
		}
		proj[i] = pos
	}

	// Streaming dedup for DISTINCT: applied in enumeration order, before
	// the cursor-layer offset/cap, so a capped distinct result is exactly
	// the first MaxRows distinct rows.
	out := emit
	if p.Distinct {
		dedup := map[string]bool{}
		out = func(row []uint32) error {
			key := engine.RowKey(row)
			if dedup[key] {
				return nil
			}
			dedup[key] = true
			return emit(row)
		}
	}
	project := func(binding []uint32) []uint32 {
		row := make([]uint32, len(proj))
		for i, pos := range proj {
			row[i] = binding[pos]
		}
		return row
	}

	workers := opts.Workers
	fv := firstVarIdx(attrs)
	if fv < 0 {
		workers = 1 // no variable to partition on (fully constant query)
	}
	if workers <= 1 {
		j := newJoiner(attrs, inputs)
		j.ctx = ctx
		return j.run(func(binding []uint32) error {
			return out(project(binding))
		})
	}
	return streamParallel(ctx, workers, fv, attrs, inputs, project, out)
}

// streamParallel fans the final enumeration out over workers goroutines,
// each enumerating one residue class of the first variable's domain, and
// streams their outputs in worker order — the same concatenation order the
// materializing implementation produced, so parallel results stay
// deterministic. Later workers enumerate concurrently while earlier ones
// drain, buffering at most workerChanDepth batches each.
func streamParallel(ctx context.Context, workers, fv int, attrs []plan.Attr, inputs []*input, project func([]uint32) []uint32, out func([]uint32) error) error {
	const workerBatchRows = 128
	const workerChanDepth = 4

	chans := make([]chan [][]uint32, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		chans[w] = make(chan [][]uint32, workerChanDepth)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer close(chans[w])
			// Each worker gets private descent state over the shared
			// immutable tries (resolved once, before the goroutines start,
			// so the lazy trie caches are not raced).
			j := newJoiner(attrs, cloneInputs(inputs))
			j.ctx = ctx
			j.filterAt = fv
			j.filterMod = uint32(workers)
			j.filterRes = uint32(w)
			var batch [][]uint32
			err := j.run(func(binding []uint32) error {
				batch = append(batch, project(binding))
				if len(batch) < workerBatchRows {
					return nil
				}
				select {
				case chans[w] <- batch:
					batch = nil
					return nil
				case <-ctx.Done():
					return ctx.Err()
				}
			})
			if err == nil && len(batch) > 0 {
				select {
				case chans[w] <- batch:
				case <-ctx.Done():
					err = ctx.Err()
				}
			}
			errs[w] = err
		}(w)
	}

	var consumeErr error
	for w := 0; w < workers; w++ {
		for batch := range chans[w] {
			if consumeErr != nil {
				continue // keep draining so workers can exit
			}
			for _, row := range batch {
				if err := out(row); err != nil {
					consumeErr = err
					break
				}
			}
		}
	}
	wg.Wait()
	if consumeErr != nil {
		return consumeErr
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// firstVarIdx returns the index of the first non-selection attribute, or -1.
func firstVarIdx(attrs []plan.Attr) int {
	for i, a := range attrs {
		if !a.IsSel {
			return i
		}
	}
	return -1
}

type executor struct {
	st     *store.Store
	policy set.Policy
	// ctx, when non-nil, cancels the bottom-up materialization joins.
	ctx context.Context
	// results maps plan nodes to their materialized result tries. A nil
	// entry means the node is "neutral": it has no variables and its
	// (fully constant) patterns matched, so it constrains nothing.
	results map[*plan.Node]*trie.Trie
	// dead is set when a zero-variable node failed to match; the whole
	// query result is empty.
	dead bool
}

// materialize computes the node's result (recursively materializing its
// children first) and caches it. A selection-only leaf node whose trie
// order puts the selected attributes first is answered as a zero-copy view
// into the base trie — the covering-index effect of §IV-B ("EmptyHeaded is
// able to provide covering indexes ... using only our trie data structure
// and the attribute order").
func (e *executor) materialize(n *plan.Node) (*trie.Trie, error) {
	if e.results == nil {
		e.results = map[*plan.Node]*trie.Trie{}
	}
	if t, ok := e.results[n]; ok {
		return t, nil
	}
	if t, ok, err := e.selectionView(n); err != nil {
		return nil, err
	} else if ok {
		e.results[n] = t
		return t, nil
	}
	inputs, err := e.nodeInputs(n)
	if err != nil {
		return nil, err
	}
	for _, child := range n.Children {
		ct, err := e.materialize(child)
		if err != nil {
			return nil, err
		}
		if e.dead {
			return nil, nil
		}
		if ct != nil {
			inputs = append(inputs, newInput(ct, varAttrs(child.Vars)))
		}
	}

	// Positions of the node's output vars within its attr order.
	varPos := make([]int, 0, len(n.Vars))
	for i, a := range n.Attrs {
		if !a.IsSel {
			varPos = append(varPos, i)
		}
	}
	var rows [][]uint32
	matched := false
	j := newJoiner(n.Attrs, inputs)
	j.ctx = e.ctx
	err = j.run(func(binding []uint32) error {
		matched = true
		if len(varPos) == 0 {
			return nil
		}
		row := make([]uint32, len(varPos))
		for i, pos := range varPos {
			row[i] = binding[pos]
		}
		rows = append(rows, row)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(n.Vars) == 0 {
		// Fully-constant node: either neutral (matched) or the whole
		// query is empty.
		if !matched {
			e.dead = true
		}
		e.results[n] = nil
		return nil, nil
	}
	t := trie.BuildFromRows(rows, len(n.Vars), e.policy)
	e.results[n] = t
	return t, nil
}

// selectionView answers a leaf node holding one relation whose trie order
// is [selections..., vars...] by descending the base trie with the
// selection constants and viewing the reached subtree. Returns ok=false
// when the node does not have that shape (multiple relations, children, or
// selections not forming a trie prefix — e.g. with AttributeReorder off).
func (e *executor) selectionView(n *plan.Node) (*trie.Trie, bool, error) {
	if len(n.Children) != 0 || len(n.Rels) != 1 || len(n.Vars) == 0 {
		return nil, false, nil
	}
	ref := n.Rels[0]
	k := 0
	for k < len(ref.Levels) && ref.Levels[k].IsSel {
		k++
	}
	if k == 0 {
		return nil, false, nil
	}
	// The remaining levels must be exactly the node's variables, in order
	// (repeated variables within the pattern disqualify the shortcut).
	if len(ref.Levels)-k != len(n.Vars) {
		return nil, false, nil
	}
	for i, a := range ref.Levels[k:] {
		if a.IsSel || a.Name != n.Vars[i] {
			return nil, false, nil
		}
	}
	t, err := e.relTrie(ref)
	if err != nil {
		return nil, false, err
	}
	node := t.Root()
	for i := 0; i < k; i++ {
		child, ok := node.ChildByValue(ref.Levels[i].Value)
		if !ok {
			return trie.BuildFromRows(nil, len(n.Vars), e.policy), true, nil
		}
		node = child
	}
	return trie.Sub(node, len(n.Vars)), true, nil
}

// nodeInputs resolves the node's own relations to trie inputs.
func (e *executor) nodeInputs(n *plan.Node) ([]*input, error) {
	var out []*input
	for _, ref := range n.Rels {
		t, err := e.relTrie(ref)
		if err != nil {
			return nil, err
		}
		out = append(out, newInput(t, ref.Levels))
	}
	return out, nil
}

// relTrie picks the trie (and column order) backing a relation reference.
func (e *executor) relTrie(ref plan.RelRef) (*trie.Trie, error) {
	if ref.UseTriples {
		var perm [3]int
		for i, a := range ref.Levels {
			perm[i] = a.Pos
		}
		return e.st.TripleTrie(perm, e.policy), nil
	}
	rel := e.st.Relation(ref.Pred)
	if rel == nil {
		// The planner short-circuits missing predicates; defensive.
		return trie.BuildFromRows(nil, len(ref.Levels), e.policy), nil
	}
	if len(ref.Levels) != 2 {
		return nil, fmt.Errorf("exec: vertically partitioned relation with %d levels", len(ref.Levels))
	}
	if ref.Levels[0].Pos == 0 {
		return rel.TrieSO(e.policy), nil
	}
	return rel.TrieOS(e.policy), nil
}

// finalInputs assembles the final enumeration join: the root (raw
// relations when streaming, materialized result otherwise), all
// materialized node results, and pipelined children's raw relations. The
// returned attribute order is the plan's global order restricted to the
// participating attributes.
func (e *executor) finalInputs(p *plan.Plan, streamRoot bool) ([]*input, []plan.Attr, error) {
	var inputs []*input
	attrByName := map[string]plan.Attr{}
	if streamRoot {
		var err error
		inputs, err = e.nodeInputs(p.Root)
		if err != nil {
			return nil, nil, err
		}
		for _, a := range p.Root.Attrs {
			attrByName[a.Name] = a
		}
	} else {
		t, ok := e.results[p.Root]
		if !ok {
			return nil, nil, fmt.Errorf("exec: root result missing")
		}
		if t != nil { // nil = neutral zero-variable root
			inputs = append(inputs, newInput(t, varAttrs(p.Root.Vars)))
			for _, v := range p.Root.Vars {
				attrByName[v] = plan.Attr{Name: v}
			}
		}
	}

	var walk func(n *plan.Node) error
	walk = func(n *plan.Node) error {
		for _, child := range n.Children {
			if child.Pipelined {
				childInputs, err := e.nodeInputs(child)
				if err != nil {
					return err
				}
				inputs = append(inputs, childInputs...)
				for _, a := range child.Attrs {
					attrByName[a.Name] = a
				}
			} else {
				t, ok := e.results[child]
				if !ok {
					return fmt.Errorf("exec: child result missing (bottom-up pass skipped?)")
				}
				if t != nil { // nil = neutral zero-variable node
					inputs = append(inputs, newInput(t, varAttrs(child.Vars)))
					for _, v := range child.Vars {
						if _, ok := attrByName[v]; !ok {
							attrByName[v] = plan.Attr{Name: v}
						}
					}
				}
			}
			if err := walk(child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(p.Root); err != nil {
		return nil, nil, err
	}

	var attrs []plan.Attr
	for _, name := range p.GlobalOrder {
		if a, ok := attrByName[name]; ok {
			attrs = append(attrs, a)
		}
	}
	return inputs, attrs, nil
}

// rootCoversAllVars reports whether every variable of every plan node
// already occurs in the root's bag, in which case the root's generic join
// binds the complete solution and no re-enumeration over materialized node
// results is needed.
func rootCoversAllVars(p *plan.Plan) bool {
	rootVars := map[string]bool{}
	for _, v := range p.Root.Vars {
		rootVars[v] = true
	}
	for _, n := range p.Nodes() {
		for _, v := range n.Vars {
			if !rootVars[v] {
				return false
			}
		}
	}
	return true
}

func varAttrs(vars []string) []plan.Attr {
	out := make([]plan.Attr, len(vars))
	for i, v := range vars {
		out[i] = plan.Attr{Name: v}
	}
	return out
}
