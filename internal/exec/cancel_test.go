package exec

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/set"
	"repro/internal/store"
)

// denseTriangleSetup builds a complete digraph over n vertices and compiles
// the triangle query, whose ~n^3 results make execution long enough to
// cancel mid-join.
func denseTriangleSetup(t *testing.T, n int) (*plan.Plan, *store.Store) {
	t.Helper()
	b := store.NewBuilder()
	p := rdf.NewIRI("http://ex/p")
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Add(rdf.Triple{
				S: rdf.NewIRI(fmt.Sprintf("http://ex/n%d", i)),
				P: p,
				O: rdf.NewIRI(fmt.Sprintf("http://ex/n%d", j)),
			})
		}
	}
	st := b.Build()
	q := query.MustParseSPARQL(`SELECT ?x ?y ?z WHERE { ?x <http://ex/p> ?y . ?y <http://ex/p> ?z . ?x <http://ex/p> ?z }`)
	pl, err := plan.Compile(q, st, plan.AllOptimizations)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return pl, st
}

func TestRunCancelledContext(t *testing.T) {
	pl, st := denseTriangleSetup(t, 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunOpts(pl, st, Options{Policy: set.PolicyAuto, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunCancelMidJoin cancels while the join is running and checks it
// aborts promptly instead of enumerating all ~42M triangles.
func TestRunCancelMidJoin(t *testing.T) {
	pl, st := denseTriangleSetup(t, 350)
	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct {
		err     error
		elapsed time.Duration
	}
	done := make(chan outcome, 1)
	start := time.Now()
	go func() {
		_, err := RunOpts(pl, st, Options{Policy: set.PolicyAuto, Ctx: ctx})
		done <- outcome{err, time.Since(start)}
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case o := <-done:
		if !errors.Is(o.err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", o.err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("join did not react to cancellation within 10s")
	}
}

// TestRunDeadlineParallel exercises the cancellation path of the parallel
// enumeration workers.
func TestRunDeadlineParallel(t *testing.T) {
	pl, st := denseTriangleSetup(t, 350)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := RunOpts(pl, st, Options{Policy: set.PolicyAuto, Workers: 4, Ctx: ctx})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline reaction took %v", elapsed)
	}
}

// TestRunNilContextUnchanged pins that Ctx == nil (every pre-existing
// caller) still runs to completion.
func TestRunNilContextUnchanged(t *testing.T) {
	pl, st := denseTriangleSetup(t, 8)
	res, err := RunOpts(pl, st, Options{Policy: set.PolicyAuto})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Rows) != 8*8*8 {
		t.Fatalf("rows = %d, want %d", len(res.Rows), 8*8*8)
	}
	if res.Truncated {
		t.Fatal("uncapped run reported Truncated")
	}
}

func TestRunMaxRows(t *testing.T) {
	pl, st := denseTriangleSetup(t, 12) // 1728 triangles
	res, err := RunOpts(pl, st, Options{Policy: set.PolicyAuto, MaxRows: 100})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Rows) != 100 || !res.Truncated {
		t.Fatalf("rows=%d truncated=%v, want 100/true", len(res.Rows), res.Truncated)
	}
	// A cap above the result size must not truncate.
	res, err = RunOpts(pl, st, Options{Policy: set.PolicyAuto, MaxRows: 10_000})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Rows) != 12*12*12 || res.Truncated {
		t.Fatalf("rows=%d truncated=%v, want %d/false", len(res.Rows), res.Truncated, 12*12*12)
	}
	// A cap equal to the exact result size is a complete result, not a
	// truncated one.
	res, err = RunOpts(pl, st, Options{Policy: set.PolicyAuto, MaxRows: 12 * 12 * 12})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Rows) != 12*12*12 || res.Truncated {
		t.Fatalf("exact fit: rows=%d truncated=%v, want %d/false", len(res.Rows), res.Truncated, 12*12*12)
	}
}

func TestRunMaxRowsParallel(t *testing.T) {
	pl, st := denseTriangleSetup(t, 12)
	res, err := RunOpts(pl, st, Options{Policy: set.PolicyAuto, Workers: 4, MaxRows: 100})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Rows) != 100 || !res.Truncated {
		t.Fatalf("rows=%d truncated=%v, want 100/true", len(res.Rows), res.Truncated)
	}
}
