package exec

import (
	"context"
	"fmt"

	"repro/internal/plan"
	"repro/internal/set"
	"repro/internal/trie"
)

// input is one relation participating in a generic join: a trie plus its
// current descent state. The trie's level order must be a subsequence of
// the join's attribute order (the planner guarantees this). Nodes are
// values (flat-trie handles), so the stack is a flat array with no pointer
// chasing.
type input struct {
	levels []plan.Attr
	stack  []trie.Node // stack[d] = node after descending d levels
	depth  int
}

func newInput(t *trie.Trie, levels []plan.Attr) *input {
	in := &input{levels: levels, stack: make([]trie.Node, len(levels)+1)}
	in.stack[0] = t.Root()
	return in
}

// cloneInputs duplicates the descent state of every input (the underlying
// tries are shared — they are immutable). Parallel workers each own a
// clone.
func cloneInputs(ins []*input) []*input {
	out := make([]*input, len(ins))
	for i, in := range ins {
		c := &input{levels: in.levels, stack: make([]trie.Node, len(in.stack))}
		c.stack[0] = in.stack[0]
		out[i] = c
	}
	return out
}

// activeAt reports whether the input's next un-descended level is attr.
func (in *input) activeAt(name string) bool {
	return in.depth < len(in.levels) && in.levels[in.depth].Name == name
}

// currentSet returns the value set at the input's current level.
func (in *input) currentSet() *set.Set {
	return in.stack[in.depth].Set()
}

// descendAll descends every consecutive level named name with value v
// (repeated names handle self-join patterns like ?x p ?x). It returns the
// number of levels descended and whether all descents succeeded; on failure
// it rolls its own descents back. This is the selection path — each descent
// probes the set by value.
func (in *input) descendAll(name string, v uint32) (int, bool) {
	k := 0
	for in.depth < len(in.levels) && in.levels[in.depth].Name == name {
		child, ok := in.stack[in.depth].ChildByValue(v)
		if !ok {
			in.depth -= k
			return 0, false
		}
		in.depth++
		in.stack[in.depth] = child // zero Node after the leaf level; never read
		k++
	}
	return k, true
}

// descendRanked is the leapfrog descent: the first level descends by the
// value's rank, already known from the seeking iterator's position — no
// Rank probe at all, just the flat trie's CSR offset addition. Consecutive
// same-name levels (self-joins, rare) fall back to value probes. On failure
// it rolls its own descents back.
func (in *input) descendRanked(name string, v uint32, rank int) (int, bool) {
	n := in.stack[in.depth]
	var child trie.Node
	if !n.IsLeaf() {
		child = n.Child(rank)
	}
	in.depth++
	in.stack[in.depth] = child
	k := 1
	for in.depth < len(in.levels) && in.levels[in.depth].Name == name {
		child, ok := in.stack[in.depth].ChildByValue(v)
		if !ok {
			in.depth -= k
			return 0, false
		}
		in.depth++
		in.stack[in.depth] = child
		k++
	}
	return k, true
}

// ascend undoes k levels of descent.
func (in *input) ascend(k int) { in.depth -= k }

// lfIter pairs one active input with its seeking iterator for the current
// attribute. The pair is a value so the per-depth scratch arrays hold the
// whole leapfrog state contiguously.
type lfIter struct {
	it set.Iter
	in *input
}

// joiner runs Algorithm 1 with a leapfrog core: for each attribute in
// order, intersect the current sets of all participating inputs by mutual
// seeking (or probe the constant for selection attributes), bind, descend,
// and recurse.
type joiner struct {
	attrs   []plan.Attr
	inputs  []*input
	binding []uint32

	// Per-depth scratch, reused across the recursion: selection actives,
	// leapfrog iterator states, and descend counters. Everything the inner
	// loop touches is preallocated here — no allocations and no closures
	// per recursion step.
	active    [][]*input
	lf        [][]lfIter
	descended [][]int
	emit      func([]uint32) error

	// Parallel partitioning: when filterMod is non-zero, values bound at
	// attribute index filterAt are skipped unless v % filterMod ==
	// filterRes. Each worker of a parallel join owns one residue class of
	// the first variable's domain.
	filterAt  int
	filterMod uint32
	filterRes uint32

	// Cancellation: when ctx is non-nil, ctx.Err is polled every
	// cancelStride recursion steps via a countdown (one predictable
	// decrement-and-branch on the hot path; no modulo).
	ctx      context.Context
	cancelIn int
}

// cancelStride is how many recursion steps pass between context polls.
const cancelStride = 4096

func newJoiner(attrs []plan.Attr, inputs []*input) *joiner {
	j := &joiner{
		attrs:     attrs,
		inputs:    inputs,
		binding:   make([]uint32, len(attrs)),
		active:    make([][]*input, len(attrs)),
		lf:        make([][]lfIter, len(attrs)),
		descended: make([][]int, len(attrs)),
		cancelIn:  cancelStride,
	}
	for i := range attrs {
		j.active[i] = make([]*input, 0, len(inputs))
		j.lf[i] = make([]lfIter, 0, len(inputs))
		j.descended[i] = make([]int, len(inputs))
	}
	return j
}

// run enumerates all join results, invoking emit with the binding slice
// (valid only during the call — emit must copy what it keeps). An error
// returned by emit aborts the enumeration and is propagated.
func (j *joiner) run(emit func([]uint32) error) error {
	j.emit = emit
	return j.recurse(0)
}

func (j *joiner) recurse(idx int) error {
	if j.ctx != nil {
		j.cancelIn--
		if j.cancelIn <= 0 {
			j.cancelIn = cancelStride
			if err := j.ctx.Err(); err != nil {
				return err
			}
		}
	}
	if idx == len(j.attrs) {
		return j.emit(j.binding)
	}
	attr := j.attrs[idx]

	if attr.IsSel {
		// Equality selection: probe the constant in every active trie.
		// With the bitset layout this is the constant-time lookup of
		// §III-A; with the uint layout it is a binary search.
		active := j.active[idx][:0]
		for _, in := range j.inputs {
			if in.activeAt(attr.Name) {
				active = append(active, in)
			}
		}
		if len(active) == 0 {
			return fmt.Errorf("exec: attribute %q constrained by no relation (planner bug)", attr.Name)
		}
		counts := j.descended[idx]
		for i, in := range active {
			k, ok := in.descendAll(attr.Name, attr.Value)
			if !ok {
				for r := 0; r < i; r++ {
					active[r].ascend(counts[r])
				}
				return nil
			}
			counts[i] = k
		}
		j.binding[idx] = attr.Value
		err := j.recurse(idx + 1)
		for i, in := range active {
			in.ascend(counts[i])
		}
		return err
	}

	// Leapfrog multiway intersection (Veldhuizen's leapfrog triejoin,
	// the technique the LogicBlox experience paper credits for making the
	// generic join competitive): all active iterators seek to a common
	// value; the iterator holding the largest current value is the frontier
	// and everyone else gallops to it. A single active input degenerates to
	// a plain scan of its set through the same iterator.
	lf := j.lf[idx][:0]
	for _, in := range j.inputs {
		if in.activeAt(attr.Name) {
			lf = append(lf, lfIter{in: in})
		}
	}
	if len(lf) == 0 {
		return fmt.Errorf("exec: attribute %q constrained by no relation (planner bug)", attr.Name)
	}
	for i := range lf {
		lf[i].it.Reset(lf[i].in.currentSet())
		if lf[i].it.Done() {
			return nil // an empty participant: no values can match
		}
	}
	k := len(lf)
	// Order by current value so the leapfrog invariant holds (insertion
	// sort: k is the number of patterns sharing a variable, almost always
	// ≤ 3).
	for i := 1; i < k; i++ {
		for m := i; m > 0 && lf[m].it.Cur() < lf[m-1].it.Cur(); m-- {
			lf[m], lf[m-1] = lf[m-1], lf[m]
		}
	}
	counts := j.descended[idx]
	p := 0
	maxV := lf[k-1].it.Cur()
	for {
		it := &lf[p].it
		if it.Cur() == maxV {
			// Every iterator agrees on maxV: a join value.
			v := maxV
			if j.filterMod == 0 || idx != j.filterAt || v%j.filterMod == j.filterRes {
				ok := true
				failedAt := 0
				for i := range lf {
					kk, o := lf[i].in.descendRanked(attr.Name, v, lf[i].it.Pos())
					if !o {
						ok = false
						failedAt = i
						break
					}
					counts[i] = kk
				}
				if ok {
					j.binding[idx] = v
					err := j.recurse(idx + 1)
					for i := range lf {
						lf[i].in.ascend(counts[i])
					}
					if err != nil {
						return err
					}
				} else {
					for r := 0; r < failedAt; r++ {
						lf[r].in.ascend(counts[r])
					}
				}
			}
			it.Next()
			if it.Done() {
				return nil
			}
			maxV = it.Cur()
		} else {
			if !it.SeekGE(maxV) {
				return nil
			}
			maxV = it.Cur()
		}
		p++
		if p == k {
			p = 0
		}
	}
}
