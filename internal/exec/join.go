package exec

import (
	"context"
	"fmt"

	"repro/internal/plan"
	"repro/internal/set"
	"repro/internal/trie"
)

// input is one relation participating in a generic join: a trie plus its
// current descent state. The trie's level order must be a subsequence of
// the join's attribute order (the planner guarantees this).
type input struct {
	levels []plan.Attr
	stack  []*trie.Node // stack[d] = node after descending d levels
	depth  int
}

func newInput(t *trie.Trie, levels []plan.Attr) *input {
	in := &input{levels: levels, stack: make([]*trie.Node, len(levels)+1)}
	in.stack[0] = t.Root()
	return in
}

// cloneInputs duplicates the descent state of every input (the underlying
// tries are shared — they are immutable). Parallel workers each own a
// clone.
func cloneInputs(ins []*input) []*input {
	out := make([]*input, len(ins))
	for i, in := range ins {
		c := &input{levels: in.levels, stack: make([]*trie.Node, len(in.stack))}
		c.stack[0] = in.stack[0]
		out[i] = c
	}
	return out
}

// activeAt reports whether the input's next un-descended level is attr.
func (in *input) activeAt(name string) bool {
	return in.depth < len(in.levels) && in.levels[in.depth].Name == name
}

// currentSet returns the value set at the input's current level.
func (in *input) currentSet() *set.Set {
	return in.stack[in.depth].Set()
}

// descendAll descends every consecutive level named name with value v
// (repeated names handle self-join patterns like ?x p ?x). It returns the
// number of levels descended and whether all descents succeeded; on failure
// it rolls its own descents back.
func (in *input) descendAll(name string, v uint32) (int, bool) {
	k := 0
	for in.depth < len(in.levels) && in.levels[in.depth].Name == name {
		child, ok := in.stack[in.depth].ChildByValue(v)
		if !ok {
			in.depth -= k
			return 0, false
		}
		in.depth++
		in.stack[in.depth] = child // nil after the leaf level; never read
		k++
	}
	return k, true
}

// ascend undoes k levels of descent.
func (in *input) ascend(k int) { in.depth -= k }

// joiner runs Algorithm 1: for each attribute in order, intersect the
// current sets of all participating inputs (or probe the constant for
// selection attributes), bind, descend, and recurse.
type joiner struct {
	attrs   []plan.Attr
	inputs  []*input
	binding []uint32

	// Per-depth scratch, reused across the recursion.
	active    [][]*input
	descended [][]int
	emit      func([]uint32) error

	// Parallel partitioning: when filter is non-nil, values bound at
	// attribute index filterAt are skipped unless filter returns true.
	// Each worker of a parallel join owns one partition of the first
	// variable's domain.
	filterAt int
	filter   func(uint32) bool

	// Cancellation: when ctx is non-nil, ctx.Err is polled every
	// cancelStride recursion steps; a non-nil error aborts the join. The
	// stride keeps the check off the per-tuple hot path (an atomic-free
	// counter and one branch) while still bounding reaction latency.
	ctx   context.Context
	steps uint
}

// cancelStride is how many recursion steps pass between context polls.
const cancelStride = 4096

func newJoiner(attrs []plan.Attr, inputs []*input) *joiner {
	j := &joiner{
		attrs:     attrs,
		inputs:    inputs,
		binding:   make([]uint32, len(attrs)),
		active:    make([][]*input, len(attrs)),
		descended: make([][]int, len(attrs)),
	}
	for i := range attrs {
		j.active[i] = make([]*input, 0, len(inputs))
		j.descended[i] = make([]int, len(inputs))
	}
	return j
}

// run enumerates all join results, invoking emit with the binding slice
// (valid only during the call — emit must copy what it keeps). An error
// returned by emit aborts the enumeration and is propagated.
func (j *joiner) run(emit func([]uint32) error) error {
	j.emit = emit
	return j.recurse(0)
}

func (j *joiner) recurse(idx int) error {
	if j.ctx != nil {
		j.steps++
		if j.steps%cancelStride == 0 {
			if err := j.ctx.Err(); err != nil {
				return err
			}
		}
	}
	if idx == len(j.attrs) {
		return j.emit(j.binding)
	}
	attr := j.attrs[idx]

	active := j.active[idx][:0]
	for _, in := range j.inputs {
		if in.activeAt(attr.Name) {
			active = append(active, in)
		}
	}
	if len(active) == 0 {
		return fmt.Errorf("exec: attribute %q constrained by no relation (planner bug)", attr.Name)
	}

	if attr.IsSel {
		// Equality selection: probe the constant in every active trie.
		// With the bitset layout this is the constant-time lookup of
		// §III-A; with the uint layout it is a binary search.
		counts := j.descended[idx]
		for i, in := range active {
			k, ok := in.descendAll(attr.Name, attr.Value)
			if !ok {
				for r := 0; r < i; r++ {
					active[r].ascend(counts[r])
				}
				return nil
			}
			counts[i] = k
		}
		j.binding[idx] = attr.Value
		err := j.recurse(idx + 1)
		for i, in := range active {
			in.ascend(counts[i])
		}
		return err
	}

	// Iterate the smallest current set, probing the others (the
	// intersection-and-loop core of the generic join).
	smallest := active[0]
	for _, in := range active[1:] {
		if in.currentSet().Len() < smallest.currentSet().Len() {
			smallest = in
		}
	}
	var iterErr error
	counts := j.descended[idx]
	smallest.currentSet().Iterate(func(_ int, v uint32) bool {
		if j.filter != nil && idx == j.filterAt && !j.filter(v) {
			return true
		}
		ok := true
		descendedTo := 0
		for i, in := range active {
			k, o := in.descendAll(attr.Name, v)
			if !o {
				ok = false
				descendedTo = i
				break
			}
			counts[i] = k
		}
		if !ok {
			for r := 0; r < descendedTo; r++ {
				active[r].ascend(counts[r])
			}
			return true
		}
		j.binding[idx] = v
		if err := j.recurse(idx + 1); err != nil {
			iterErr = err
		}
		for i, in := range active {
			in.ascend(counts[i])
		}
		return iterErr == nil
	})
	return iterErr
}
