package exec_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lubm"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/store"
)

func TestParallelMatchesSequentialOnLUBM(t *testing.T) {
	st := store.FromTriples(lubm.Generate(lubm.Config{Universities: 1}))
	seq := core.New(st, core.AllOptimizations)
	for _, workers := range []int{2, 4, 7} {
		opts := core.AllOptimizations
		opts.Workers = workers
		par := core.New(st, opts)
		for _, qn := range lubm.QueryNumbers {
			q := query.MustParseSPARQL(lubm.Query(qn, 1))
			want, err := engine.Execute(seq, q)
			if err != nil {
				t.Fatalf("Q%d sequential: %v", qn, err)
			}
			got, err := engine.Execute(par, q)
			if err != nil {
				t.Fatalf("Q%d workers=%d: %v", qn, workers, err)
			}
			if got.Canonical() != want.Canonical() {
				t.Errorf("Q%d workers=%d: %d rows, want %d", qn, workers, got.Len(), want.Len())
			}
		}
	}
}

func TestParallelMatchesSequentialOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	shapes := []string{
		`SELECT ?x ?y ?z WHERE { ?x <e0> ?y . ?y <e1> ?z . ?z <e0> ?x . }`,
		`SELECT DISTINCT ?x WHERE { ?x <e0> ?y . ?y <e1> ?z . }`,
		`SELECT ?x WHERE { ?x <e0> <n1> . ?x <e1> ?y . }`,
	}
	for trial := 0; trial < 4; trial++ {
		var triples []rdf.Triple
		n := 10 + rng.Intn(10)
		for i := 0; i < 80; i++ {
			triples = append(triples, rdf.Triple{
				S: rdf.NewIRI(fmt.Sprintf("n%d", rng.Intn(n))),
				P: rdf.NewIRI(fmt.Sprintf("e%d", rng.Intn(2))),
				O: rdf.NewIRI(fmt.Sprintf("n%d", rng.Intn(n))),
			})
		}
		st := store.FromTriples(triples)
		seq := core.New(st, core.AllOptimizations)
		opts := core.AllOptimizations
		opts.Workers = 4
		par := core.New(st, opts)
		for i, shape := range shapes {
			q := query.MustParseSPARQL(shape)
			want, err := engine.Execute(seq, q)
			if err != nil {
				t.Fatalf("trial %d shape %d: %v", trial, i, err)
			}
			got, err := engine.Execute(par, q)
			if err != nil {
				t.Fatalf("trial %d shape %d parallel: %v", trial, i, err)
			}
			if got.Canonical() != want.Canonical() {
				t.Errorf("trial %d shape %d: parallel mismatch", trial, i)
			}
		}
	}
}

func TestParallelDeterministicRowOrder(t *testing.T) {
	st := store.FromTriples(lubm.Generate(lubm.Config{Universities: 1}))
	opts := core.AllOptimizations
	opts.Workers = 4
	e := core.New(st, opts)
	q := query.MustParseSPARQL(lubm.Query(8, 1))
	first, err := engine.Execute(e, q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := engine.Execute(e, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Rows) != len(first.Rows) {
			t.Fatalf("row count changed across runs")
		}
		for r := range again.Rows {
			for c := range again.Rows[r] {
				if again.Rows[r][c] != first.Rows[r][c] {
					t.Fatalf("row order not deterministic at row %d", r)
				}
			}
		}
	}
}

func BenchmarkParallelTriangle(b *testing.B) {
	st := store.FromTriples(lubm.Generate(lubm.Config{Universities: 2}))
	q := query.MustParseSPARQL(lubm.Query(9, 2))
	for _, workers := range []int{1, 4, 8} {
		opts := core.AllOptimizations
		opts.Workers = workers
		e := core.New(st, opts)
		if _, err := engine.Execute(e, q); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.Execute(e, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
