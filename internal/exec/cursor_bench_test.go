package exec_test

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/exec"
	"repro/internal/lubm"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/set"
	"repro/internal/store"
)

// benchPlan compiles LUBM Q2 (the cyclic workhorse) over scale 1.
func benchPlan(b *testing.B) (*plan.Plan, *store.Store) {
	b.Helper()
	st := store.FromTriples(lubm.Generate(lubm.Config{Universities: 1}))
	q := query.MustParseSPARQL(lubm.Query(2, 1))
	p, err := plan.Compile(q, st, plan.AllOptimizations)
	if err != nil {
		b.Fatal(err)
	}
	return p, st
}

// BenchmarkCursorDrain measures the full streaming enumeration: open the
// cursor, pull every row, close. This is the serving layer's hot path; a
// regression in the generator hand-off or the joiner's emit contract shows
// up here first.
func BenchmarkCursorDrain(b *testing.B) {
	p, st := benchPlan(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur, err := exec.Open(p, st, exec.Options{})
		if err != nil {
			b.Fatal(err)
		}
		rows := 0
		for {
			_, err := cur.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			rows++
		}
		cur.Close()
		if rows == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkCursorFirstRow measures time-to-first-row with an early close —
// the latency a streaming client sees before the first byte, and the cost
// of abandoning the rest.
func BenchmarkCursorFirstRow(b *testing.B) {
	p, st := benchPlan(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur, err := exec.Open(p, st, exec.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cur.Next(); err != nil {
			b.Fatal(err)
		}
		cur.Close()
	}
}

// BenchmarkCursorMaxRows measures a capped enumeration (the server's
// MaxRows protection): the exactness probe costs one extra row, not a full
// run.
func BenchmarkCursorMaxRows(b *testing.B) {
	p, st := benchPlan(b)
	for _, cap := range []int{1, 100} {
		b.Run(fmt.Sprintf("max=%d", cap), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := exec.RunOpts(p, st, exec.Options{MaxRows: cap})
				if err != nil {
					b.Fatal(err)
				}
				if res.Len() != cap {
					b.Fatalf("rows = %d", res.Len())
				}
			}
		})
	}
}

// BenchmarkLeapfrogJoin measures the leapfrog multiway-intersection core on
// the join shapes that stress it: the cyclic triangle-bearing Q9 (three
// patterns sharing variables pairwise — every variable level leapfrogs over
// multiple iterators) and star-shaped Q2 (one root variable intersected
// across three relations). CI runs this once per PR so the inner loop stays
// exercised; BENCH_5.json tracks the absolute numbers.
func BenchmarkLeapfrogJoin(b *testing.B) {
	st := store.FromTriples(lubm.Generate(lubm.Config{Universities: 1}))
	for _, tc := range []struct {
		name string
		qnum int
	}{{"q2_star", 2}, {"q9_cyclic", 9}} {
		q := query.MustParseSPARQL(lubm.Query(tc.qnum, 1))
		p, err := plan.Compile(q, st, plan.AllOptimizations)
		if err != nil {
			b.Fatal(err)
		}
		// Warm the lazy tries so the benchmark isolates the join.
		if _, err := exec.Run(p, st, set.PolicyAuto); err != nil {
			b.Fatal(err)
		}
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cur, err := exec.Open(p, st, exec.Options{})
				if err != nil {
					b.Fatal(err)
				}
				for {
					_, err := cur.Next()
					if err == io.EOF {
						break
					}
					if err != nil {
						b.Fatal(err)
					}
				}
				cur.Close()
			}
		})
	}
}
