// Package server is the concurrent SPARQL serving layer over the engines in
// this repository: an HTTP endpoint that loads a dataset once and answers
// many queries against a shared store, the way production RDF stores expose
// their join engines.
//
// The store is live (internal/live): POST /update applies an N-Triples
// insert/delete patch to a delta overlay while the immutable base keeps
// serving, and a compaction — background (Config.CompactEvery), explicit
// (POST /compact), or ?compact=true on an update — drains the delta into a
// fresh base swapped in under a bumped epoch. In-flight queries pin their
// epoch; nothing blocks on the swap.
//
// The request pipeline is parse → normalize → plan-cache lookup (compile on
// miss) → cursor → streaming encoder:
//
//   - Queries are α-normalized (internal/query.Normalize) so requests that
//     differ only in variable naming share one compiled plan.
//   - Compiled plans are held in a bounded LRU keyed by store epoch +
//     normalized query + engine + plan options, with hit/miss counters
//     surfaced at /stats. The epoch in the key means a compaction can never
//     serve a plan compiled against dropped statistics: post-swap requests
//     miss and recompile against the new base.
//   - Execution is the engine.Cursor contract: every engine streams rows
//     and honours context cancellation, so responses are encoded straight
//     off the cursor — per-request memory is O(batch), first-byte latency
//     is independent of result size, and there is no detached execution:
//     when a request's deadline fires, its engine stops within one
//     cancellation stride and its worker-pool slots free deterministically.
//   - A weighted worker pool caps concurrently executing work; a request
//     with ?workers=N (intra-query parallelism) holds N slots. Admission
//     control rejects a request with 429 + Retry-After when its estimated
//     queue wait already exceeds its remaining deadline.
//   - Row caps are exact: ?query results hitting MaxRows carry
//     "truncated":true iff at least one further row existed (the cursor
//     probes one row past the cap — no after-the-fact trimming).
//
// Endpoints: GET/POST /query (params: query, engine, format, timeout,
// workers, offset), POST /update (N-Triples patch; param: compact),
// POST /compact, GET /healthz, GET /stats.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"mime"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/engine"
	"repro/internal/engines"
	"repro/internal/live"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/store"
)

// Config parameterizes a Server. The zero value of every field gets a
// sensible default from New.
type Config struct {
	// Store is the loaded dataset; required unless Live is set.
	Store *store.Store
	// Live, when set, is served directly instead of wrapping Store in a
	// fresh live.Store — the handing-over path for stores that carry state
	// the server must not discard (a durable store's WAL-replayed delta
	// overlay, a pre-partitioned shard set). Shards is ignored in this
	// mode: partitioning is the caller's boot-time decision.
	Live *live.Store
	// Durable, when set, is the durability stack behind Live (WAL +
	// segment files); /stats then reports its counters under "durability"
	// and /healthz marks the store durable. It must wrap the same store as
	// Live. Serving does not require it: a durable store works through
	// Live alone, just without the introspection.
	Durable *durable.Store
	// DefaultEngine answers requests without ?engine=. Default
	// "emptyheaded".
	DefaultEngine string
	// PlanCacheSize bounds the compiled-plan LRU. Default 256 entries.
	PlanCacheSize int
	// MaxConcurrent bounds worker-pool slots (concurrently executing
	// work); further requests queue (and may time out waiting, or be
	// rejected by admission control). Default GOMAXPROCS.
	MaxConcurrent int
	// MaxQueryWorkers caps the per-request ?workers= intra-query
	// parallelism. Default GOMAXPROCS; it is additionally clamped to
	// MaxConcurrent so one request can never deadlock the pool.
	MaxQueryWorkers int
	// DefaultTimeout applies to requests without ?timeout=. Default 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested ?timeout= values. Default 2m.
	MaxTimeout time.Duration
	// QueryTimeout, when > 0, is a hard per-request deadline ceiling that
	// caps both DefaultTimeout and client ?timeout= values: every /query
	// context is cancelled at most QueryTimeout after admission, so a
	// wedged cursor (a hung remote drain, a pathological join) can never
	// hold a worker-pool slot forever. A request that hits it gets a 504;
	// with ?explain=1 the 504 body carries the span tree captured so far,
	// showing where the deadline landed.
	QueryTimeout time.Duration
	// MaxRows caps the rows one query may return; results hitting the cap
	// come back marked "truncated" (exactly: only when more rows existed).
	// The cap is enforced at the cursor layer for every engine, bounding
	// rows in flight, not just response size. Default 4,000,000; negative
	// disables the cap.
	MaxRows int
	// Shards, when > 1, partitions the store into that many subject-hash
	// shards at startup (internal/shard) and answers every query by
	// scatter-gather over per-shard engine instances. /stats then reports
	// the per-shard layout and merge drain balance. 0 or 1 serves the
	// store unpartitioned.
	//
	// Pool accounting: a sharded request holds the same slot count as an
	// unsharded one (1, or ?workers=N), even though its scatter phase
	// drains up to Shards sub-queries concurrently — each sub-query covers
	// ~1/Shards of the data, so total work per request is roughly
	// unchanged and holds get shorter, but instantaneous parallelism is
	// multiplied. MaxConcurrent therefore bounds admitted queries, not
	// threads; CPU-bound sharded deployments should size it accordingly
	// (e.g. MaxConcurrent ≈ cores/Shards). Charging Shards slots per
	// request instead is the stricter alternative; see the ROADMAP's
	// shard-aware planning follow-up.
	Shards int
	// CompactEvery, when > 0, runs the background compactor: at that
	// interval, a non-empty delta (of at least CompactMinDelta operations)
	// is drained into a fresh base store swapped in under the next epoch.
	// Zero disables background compaction; POST /compact still works.
	CompactEvery time.Duration
	// CompactMinDelta is the background compactor's threshold: skip the
	// drain while the delta holds fewer netted operations. <= 1 compacts on
	// any non-empty delta.
	CompactMinDelta int
	// SnapshotPath, when set, atomically persists the store's snapshot
	// (write-to-temp, fsync, rename) after every compaction, so a
	// restarting server loads the compacted dataset instead of replaying
	// updates it has lost anyway.
	SnapshotPath string
	// MaxUpdateBytes caps one /update request body. Default 8 MiB.
	MaxUpdateBytes int
	// Logger receives the server's structured log records (slow queries,
	// lifecycle events). Default slog.Default().
	Logger *slog.Logger
	// SlowQuery, when > 0, is the total-duration threshold above which a
	// finished query emits a structured slow-query record (query ID, engine,
	// duration, rows, the query text) at warn level. Zero disables the log;
	// the trace ring at /debug/queries captures slow queries either way.
	SlowQuery time.Duration
	// TraceSample controls span-tree capture: 1 (the default) traces every
	// query, N > 1 traces every Nth, negative disables tracing. ?explain=1
	// requests are always traced. The untraced path costs one nil check per
	// instrumentation site, so the default is to trace everything.
	TraceSample int
	// Cluster, when set, turns this server into a scatter-gather
	// coordinator: the store must be partitioned (Shards > 1 or a
	// pre-partitioned Live store), and every per-shard sub-query is served
	// by the coordinator's worker fleet (internal/cluster) instead of the
	// local shard engines — with health-gated worker selection, retries,
	// hedging, and graceful partial degradation (responses carry a
	// "partial" field and X-Partial trailer when a shard's rows could not
	// be recovered). The server does not own the coordinator: the caller
	// Starts and Closes it.
	Cluster *cluster.Coordinator
}

// defaultMaxRows bounds per-query result size unless overridden.
const defaultMaxRows = 4_000_000

// defaultMaxUpdateBytes bounds one /update body unless overridden.
const defaultMaxUpdateBytes = 8 << 20

// Server serves SPARQL queries (and updates) over one live store. Create
// with New; expose with Handler; call Close to stop background compaction.
type Server struct {
	cfg   Config
	ls    *live.Store
	cache *planCache
	pool  *wsem
	stats *metrics
	start time.Time

	log      *slog.Logger
	traces   *obs.TraceRing
	traceSeq atomic.Uint64 // TraceSample > 1 sampling counter

	stopCompact context.CancelFunc // nil unless CompactEvery > 0
	compactDone chan struct{}

	// engines holds one live engine wrapper per valid engine name. The
	// wrappers are cheap (each epoch's inner engine is built lazily inside
	// internal/live and cached until the next base swap), so slots are
	// created on demand under mu.
	mu      sync.Mutex
	engines map[string]*live.Engine

	// shardQ interns /shard/query sub-query texts to stable parsed
	// pointers (see internShardQuery).
	shardQMu sync.Mutex
	shardQ   map[string]*query.BGP
}

// knownEngine reports whether name is in the registry, without building
// anything — garbage ?engine= values must not allocate slots.
func knownEngine(name string) bool {
	for _, n := range engines.Names() {
		if n == name {
			return true
		}
	}
	return false
}

// New validates cfg, applies defaults, and returns a ready Server.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil && cfg.Live == nil {
		return nil, errors.New("server: Config.Store or Config.Live is required")
	}
	if cfg.DefaultEngine == "" {
		cfg.DefaultEngine = "emptyheaded"
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("server: Config.Shards must be >= 0, got %d", cfg.Shards)
	}
	ls := cfg.Live
	if ls == nil {
		var err error
		ls, err = live.NewStore(cfg.Store, live.Options{Shards: cfg.Shards})
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	if cfg.Cluster != nil && ls.Part() == nil {
		return nil, errors.New("server: Config.Cluster requires a partitioned store (Shards > 1)")
	}
	if cfg.PlanCacheSize <= 0 {
		cfg.PlanCacheSize = 256
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueryWorkers <= 0 {
		cfg.MaxQueryWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueryWorkers > cfg.MaxConcurrent {
		cfg.MaxQueryWorkers = cfg.MaxConcurrent
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 2 * time.Minute
	}
	if cfg.MaxRows == 0 {
		cfg.MaxRows = defaultMaxRows
	} else if cfg.MaxRows < 0 {
		cfg.MaxRows = 0 // 0 = uncapped from here on
	}
	if cfg.MaxUpdateBytes <= 0 {
		cfg.MaxUpdateBytes = defaultMaxUpdateBytes
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	s := &Server{
		cfg:     cfg,
		ls:      ls,
		cache:   newPlanCache(cfg.PlanCacheSize),
		pool:    newWsem(cfg.MaxConcurrent),
		stats:   newMetrics(),
		start:   time.Now(),
		log:     cfg.Logger,
		traces:  obs.NewTraceRing(traceRingSize),
		engines: map[string]*live.Engine{},
		shardQ:  map[string]*query.BGP{},
	}
	// Construct the default engine's inner instance now — it both validates
	// the name and front-loads any eager index construction (rdf3x sorts six
	// triple permutations) so the first request doesn't pay for it.
	defEng, err := s.engine(cfg.DefaultEngine)
	if err != nil {
		return nil, fmt.Errorf("server: default engine: %w", err)
	}
	if _, err := defEng.Inner(); err != nil {
		return nil, fmt.Errorf("server: default engine: %w", err)
	}
	if cfg.CompactEvery > 0 {
		ctx, cancel := context.WithCancel(context.Background())
		s.stopCompact = cancel
		s.compactDone = make(chan struct{})
		go func() {
			defer close(s.compactDone)
			ls.AutoCompact(ctx, live.CompactPolicy{
				Every:        cfg.CompactEvery,
				MinOps:       cfg.CompactMinDelta,
				SnapshotPath: cfg.SnapshotPath,
			})
		}()
	}
	return s, nil
}

// Close stops background work (the auto-compactor); it does not flush the
// delta. Safe to call more than once.
func (s *Server) Close() {
	if s.stopCompact != nil {
		s.stopCompact()
		<-s.compactDone
		s.stopCompact = nil
	}
}

// Live exposes the server's live store (tests and embedding callers apply
// updates or force compactions through it directly).
func (s *Server) Live() *live.Store { return s.ls }

// Handler returns the HTTP handler with the /query, /update, /compact,
// /healthz, and /stats routes mounted, wrapped in per-request panic
// recovery. A sharded server additionally serves the cluster worker
// endpoint /shard/query — unless it is itself a coordinator, whose shard
// drains go to its worker fleet, never back to itself.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/update", s.handleUpdate)
	mux.HandleFunc("/compact", s.handleCompact)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/queries", s.handleDebugQueries)
	if s.ls.Part() != nil && s.cfg.Cluster == nil {
		mux.HandleFunc("/shard/query", s.handleShardQuery)
	}
	return s.recoverPanics(mux)
}

// engine returns the live engine wrapper for name, constructing it on first
// use. The wrapper is cheap; the expensive per-epoch inner engine (rdf3x
// sorts six permutation indexes) is built lazily inside internal/live under
// its own once, so building one engine never stalls requests on engines
// that already exist.
func (s *Server) engine(name string) (*live.Engine, error) {
	if !knownEngine(name) {
		// Produce the registry's canonical error without allocating a slot
		// (arbitrary client-supplied names must not grow the map).
		_, err := engines.New(name, s.ls.Base())
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if le, ok := s.engines[name]; ok {
		return le, nil
	}
	var le *live.Engine
	var err error
	if s.cfg.Cluster != nil {
		le, err = engines.NewClusterLive(name, s.ls, s.cfg.Cluster.Opener(name))
	} else {
		le, err = engines.NewLive(name, s.ls)
	}
	if err != nil {
		return nil, err
	}
	s.engines[name] = le
	return le, nil
}

// engineSupportsWorkers reports whether the live engine's inner engine
// honours ExecOpts.Workers: the core (EmptyHeaded) engine, directly or as
// the per-shard engine behind the scatter-gather wrapper (shard.Engine
// forwards Workers to every shard). A ?workers=N sharded request is charged
// N slots like an unsharded one; the shard fan-out itself is deliberately
// not charged — see Config.Shards for the accounting trade-off.
func engineSupportsWorkers(le *live.Engine) bool {
	eng, err := le.Inner()
	if err != nil {
		return false
	}
	if se, ok := eng.(*shard.Engine); ok {
		eng = se.ShardEngine(0)
	}
	_, ok := eng.(*core.Engine)
	return ok
}

// preparedQuery is one plan-cache entry: the interned normalized BGP and,
// for engines that separate compilation from execution (core/EmptyHeaded),
// its compiled plan tagged with the epoch it was compiled at. All fields
// are immutable and shared by concurrent executions.
type preparedQuery struct {
	bgp   *query.BGP
	plan  *plan.Plan // nil for engines that plan internally per execution
	epoch uint64     // epoch plan was compiled against (meaningful when plan != nil)
	cost  float64    // cost-model estimate; drives cache eviction priority

	// Cost-model decision, retained for the EXPLAIN surface and trace
	// attributes: the chosen class and the per-class estimates it was chosen
	// from. profiled is false when ProfileQuery failed (the query still
	// runs; the explanation just has no cost section).
	profiled bool
	class    plan.EngineClass
	costs    map[string]float64
}

// prepare resolves q to a cache entry for engineName, compiling on miss.
// The key carries the store epoch, so entries from before a compaction
// swap — whose plans were costed against statistics that no longer exist —
// can never be served afterwards; they age out of the LRU. Under sharding
// the cache holds the interned normalized BGP, and that interning is what
// makes the shard engine's own caches work: shard.Engine memoizes its
// scatter plan (decomposition, statistics-pruned targets, probe choice,
// per-shard sub-queries) per *query.BGP pointer, and hands every shard the
// same sub-query pointers so the per-shard engines' plan caches hit too —
// a repeated sharded query skips all per-shard planning, not just
// parse+normalize (/stats sharding.plan_reuse_hits counts these).
func (s *Server) prepare(engineName string, le *live.Engine, q *query.BGP) (*preparedQuery, bool, error) {
	norm, key := query.Normalize(q)
	key = "e" + strconv.FormatUint(le.Epoch(), 10) + "|" + engineName + "|" + s.optionsKey(le) + "|" + key
	if pq, ok := s.cache.get(key); ok {
		return pq, true, nil
	}
	pq := &preparedQuery{bgp: norm}
	p, epoch, ok, err := le.PlanFor(norm)
	if err != nil {
		return nil, false, err
	}
	if ok {
		pq.plan, pq.epoch = p, epoch
	}
	// Price the query for the eviction policy: expensive plans are the ones
	// worth keeping when the cache is under pressure. A profiling error just
	// leaves cost 0 (lowest keep-priority). The per-class estimates are
	// retained on the entry for EXPLAIN and trace attributes.
	if prof, perr := plan.ProfileQuery(norm, s.ls.Base()); perr == nil {
		pq.class, pq.cost = prof.ChooseClass()
		pq.profiled = true
		pq.costs = make(map[string]float64, len(plan.Classes()))
		for _, c := range plan.Classes() {
			pq.costs[c.String()] = prof.Cost(c)
		}
	}
	s.cache.add(key, pq)
	return pq, false, nil
}

// optionsKey renders the plan-relevant options of the wrapped engine into
// the cache key, so engines with different optimization configurations
// never share plans.
func (s *Server) optionsKey(le *live.Engine) string {
	eng, err := le.Inner()
	if err != nil {
		return ""
	}
	if ce, ok := eng.(*core.Engine); ok {
		o := ce.Options()
		return plan.Options{
			Layout:           ce.Policy(),
			AttributeReorder: o.AttributeReorder,
			GHDPushdown:      o.GHDPushdown,
			Pipelining:       o.Pipelining,
		}.Key()
	}
	return ""
}

// open starts the prepared query: the live engine reuses the cached plan
// when it still matches the current epoch (fast path and overlay base
// stream alike) and replans otherwise. Every engine returns a streaming,
// cancellable cursor — there is no detached fallback.
func (s *Server) open(le *live.Engine, pq *preparedQuery, opts engine.ExecOpts) (engine.Cursor, error) {
	return le.OpenPrepared(pq.bgp, pq.plan, pq.epoch, opts)
}

// estimateWait predicts how long a request for engineName needing n slots
// would queue: the slots that must drain before it can start, scaled by
// the slot-weighted hold EWMA of the engines currently occupying the pool
// (queue wait is governed by who holds the slots; the requester's own EWMA
// is only the fallback when occupancy is untracked). EWMAs are kept per
// engine, so a past burst of pairwise-baseline traffic never inflates the
// estimate — and Retry-After — once the pool is back to serving WCOJ
// queries; conversely a pool genuinely full of slow queries rejects fast
// engines honestly. It is a heuristic — the EWMA smooths over
// heterogeneous queries — but it only has to be right in order of
// magnitude: its job is to bounce requests whose deadline a saturated pool
// cannot possibly meet.
func (s *Server) estimateWait(engineName string, n int) time.Duration {
	inUse, _, queuedSlots := s.pool.stats()
	free := s.cfg.MaxConcurrent - inUse
	ahead := queuedSlots + n - free
	if ahead <= 0 {
		return 0
	}
	hold := s.stats.expectedHold(engineName)
	if hold == 0 {
		return 0 // no samples yet: admit and learn
	}
	rounds := (ahead + s.cfg.MaxConcurrent - 1) / s.cfg.MaxConcurrent
	return hold * time.Duration(rounds)
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// mediaType parses a Content-Type or Accept element down to its bare media
// type ("application/sparql-query; charset=utf-8" → "application/sparql-query").
func mediaType(header string) string {
	mt, _, err := mime.ParseMediaType(header)
	if err != nil {
		return ""
	}
	return mt
}

// queryText extracts the SPARQL text from the request: the raw body for
// POST application/sparql-query, the query form/URL parameter otherwise.
func queryText(r *http.Request) (string, error) {
	if r.Method == http.MethodPost && mediaType(r.Header.Get("Content-Type")) == "application/sparql-query" {
		b, err := io.ReadAll(io.LimitReader(r.Body, 1<<20+1))
		if err != nil {
			return "", err
		}
		if len(b) > 1<<20 {
			return "", errors.New("query body exceeds 1MiB")
		}
		return string(b), nil
	}
	return r.FormValue("query"), nil
}

// intParam parses a non-negative integer query parameter; missing means 0.
func intParam(r *http.Request, name string) (int, error) {
	v := r.FormValue(name)
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad %s %q (want a non-negative integer)", name, v)
	}
	return n, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	s.stats.begin()
	requestStart := time.Now()
	qid := obs.NextQueryID()
	w.Header().Set("X-Query-ID", qid)

	// ?explain=1 streams the result plus the captured trace; ?explain=plan
	// reports the planner's decisions without executing anything.
	explain := r.FormValue("explain")
	isExplain := explain == "1" || explain == "true"

	var tr *obs.Trace
	if isExplain || s.sampled() {
		tr = obs.NewTrace(qid)
	}
	root := tr.Root() // nil when untraced; every span call below no-ops

	engineName := ""
	var execDur time.Duration
	var execSp *obs.Span
	var snap *obs.TraceSnapshot
	// takeSnap finalizes the trace exactly once: into the ring, and (for
	// ?explain=1) into the response tail.
	takeSnap := func() *obs.TraceSnapshot {
		if snap == nil && tr != nil {
			tr.Engine = engineName
			snap = tr.Snapshot()
			s.traces.Add(snap)
		}
		return snap
	}
	finished := false
	finish := func(isErr, isTimeout bool) {
		if !finished {
			finished = true
			total := time.Since(requestStart)
			s.stats.end(engineName, total, execDur, isErr, isTimeout)
			if tr != nil {
				takeSnap()
				if s.cfg.SlowQuery > 0 && total >= s.cfg.SlowQuery {
					s.slowLog(snap, total, execSp.Rows(), isErr)
				}
			}
		}
	}
	defer finish(true, false) // overwritten by the explicit calls below

	text, err := queryText(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading query: %v", err)
		finish(true, false)
		return
	}
	if text == "" {
		httpError(w, http.StatusBadRequest, "missing query parameter")
		finish(true, false)
		return
	}
	if tr != nil {
		tr.Query = traceQuery(text)
	}

	requestedEngine := r.FormValue("engine")
	if requestedEngine == "" {
		requestedEngine = s.cfg.DefaultEngine
	}
	eng, err := s.engine(requestedEngine)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		finish(true, false)
		return
	}
	engineName = requestedEngine // only resolved engines reach the stats

	psp := root.Child("parse")
	q, err := query.ParseSPARQL(text)
	psp.End()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		finish(true, false)
		return
	}

	if explain == "plan" {
		// Plan-only: resolve the plan-cache entry and report the planner's
		// decisions. No pool slots, no cursor, nothing executes.
		err := s.explainPlan(w, qid, engineName, eng, q)
		finish(err != nil, false)
		return
	}

	timeout := s.cfg.DefaultTimeout
	if tv := r.FormValue("timeout"); tv != "" {
		d, err := time.ParseDuration(tv)
		if err != nil || d <= 0 {
			httpError(w, http.StatusBadRequest, "bad timeout %q (want a positive Go duration, e.g. 500ms)", tv)
			finish(true, false)
			return
		}
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
		timeout = d
	}
	// QueryTimeout is the operator's hard ceiling: unlike MaxTimeout it
	// also caps the server's own default, so no request — however
	// configured — outlives it.
	if s.cfg.QueryTimeout > 0 && timeout > s.cfg.QueryTimeout {
		timeout = s.cfg.QueryTimeout
	}
	workers, err := intParam(r, "workers")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		finish(true, false)
		return
	}
	if workers > s.cfg.MaxQueryWorkers {
		workers = s.cfg.MaxQueryWorkers // clamp, don't reject: the ceiling is an operator policy
	}
	if !engineSupportsWorkers(eng) {
		// Only the core (EmptyHeaded) enumeration has a parallel path —
		// directly, or per shard behind the scatter-gather wrapper, which
		// forwards Workers. Other engines run single-threaded regardless of
		// opts.Workers, so charging them N slots would waste pool capacity
		// and skew the admission EWMA.
		workers = 0
	}
	offset, err := intParam(r, "offset")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		finish(true, false)
		return
	}
	// SPARQL solution modifiers map onto the same cursor-level knobs as the
	// request parameters: OFFSET clauses add to ?offset=, and LIMIT tightens
	// the server's row cap (never widens it — MaxRows stays the operator's
	// ceiling). LIMIT 0 is valid SPARQL: no rows, with the truncated flag
	// still exact (one row is probed to learn whether anything existed).
	offset += q.Offset
	maxRows := s.cfg.MaxRows
	limitZero := false
	if q.HasLimit {
		switch {
		case q.Limit == 0:
			limitZero = true
			maxRows = 1
		case maxRows == 0 || q.Limit < maxRows:
			maxRows = q.Limit
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Under cluster serving, install the degradation sink: remote drains
	// that exhaust their retry budget record the affected shard here (and
	// end cleanly) instead of failing the query, and the response carries
	// the partial flag. Without the sink installed, an unavailable shard
	// is a hard execution error.
	var partial *cluster.Partial
	if s.cfg.Cluster != nil {
		ctx, partial = cluster.WithPartial(ctx)
	}

	// tailSnap finalizes the trace for an error body when the client asked
	// for ?explain=1 — a 504's span tree shows where the deadline landed.
	tailSnap := func() *obs.TraceSnapshot {
		if !isExplain {
			return nil
		}
		return takeSnap()
	}

	// A ?workers=N query occupies N worker-pool slots: intra-query
	// parallelism is real CPU and is accounted like N single-threaded
	// queries.
	slots := 1
	if workers > 1 {
		slots = workers
	}

	// Admission control: if the queue wait this request would face already
	// exceeds its remaining deadline, fail fast with 429 + Retry-After
	// instead of letting it burn its deadline in the queue and 504.
	if deadline, ok := ctx.Deadline(); ok {
		// est == 0 (free pool or no samples yet for this engine) never
		// rejects — an already-expired deadline is the executor's 504, not
		// a 429.
		if est := s.estimateWait(engineName, slots); est > 0 && est > time.Until(deadline) {
			s.stats.reject()
			w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(est.Seconds()))))
			httpError(w, http.StatusTooManyRequests,
				"server saturated: estimated queue wait %v exceeds request deadline", est.Round(time.Millisecond))
			finish(true, false)
			return
		}
	}

	// Acquire worker slots; queue wait counts against the deadline.
	asp := root.Child("admission_wait")
	asp.SetAttr("slots", slots)
	if err := s.pool.acquire(ctx, slots); err != nil {
		asp.End()
		s.failCtx(w, ctx, tailSnap())
		finish(true, errors.Is(ctx.Err(), context.DeadlineExceeded))
		return
	}
	asp.End()
	acquired := time.Now()
	s.stats.beginHold(engineName, slots)
	release := sync.OnceFunc(func() {
		s.stats.endHold(engineName, slots, time.Since(acquired))
		s.pool.release(slots)
	})
	defer release()

	plsp := root.Child("plan")
	pq, hit, err := s.prepare(engineName, eng, q)
	if err != nil {
		plsp.End()
		httpError(w, http.StatusInternalServerError, "planning: %v", err)
		finish(true, false)
		return
	}
	annotatePlanSpan(plsp, pq, hit)
	plsp.End()

	execSp = root.Child("execute")
	execStart := time.Now()
	cur, err := s.open(eng, pq, engine.ExecOpts{
		Ctx:     obs.WithSpan(ctx, execSp),
		MaxRows: maxRows,
		Offset:  offset,
		Workers: workers,
	})
	if err != nil {
		execSp.SetAttr("error", err.Error())
		execSp.End()
		s.failExec(w, ctx, err, tailSnap())
		finish(true, errors.Is(err, context.DeadlineExceeded))
		return
	}
	defer cur.Close()
	if tr != nil {
		cur = &countingCursor{Cursor: cur, span: execSp}
	}

	// Pull the first row before committing the response status, so
	// failures during the pre-enumeration phases (GHD materialization,
	// pairwise pipelines, deadlines that fire before any output) still map
	// to proper HTTP errors. Errors after this point arrive mid-stream and
	// are reported in-band.
	first, firstErr := cur.Next()
	if firstErr != nil && firstErr != io.EOF {
		execDur = time.Since(execStart)
		execSp.End()
		s.failExec(w, ctx, firstErr, tailSnap())
		finish(true, errors.Is(firstErr, context.DeadlineExceeded))
		return
	}
	var pc engine.Cursor = &peekedCursor{inner: cur, row: first, eof: firstErr == io.EOF}
	if limitZero {
		// LIMIT 0: the probed row is evidence, not output.
		pc = &limitZeroCursor{inner: cur, hadRow: firstErr == nil}
	}

	// Present the caller's variable names: normalization renamed them, but
	// positions are preserved, so rows decode unchanged.
	meta := queryMeta{QueryID: qid, Engine: eng.Name(), Cache: "miss"}
	if hit {
		meta.Cache = "hit"
	}
	tookMs := func() float64 {
		execDur = time.Since(execStart)
		return ms(execDur)
	}
	// Truncation, mid-stream failures, and partial degradation are only
	// known after the body is committed; announce them as HTTP trailers
	// (the JSON body also carries them in trailing fields).
	w.Header().Set("Trailer", "X-Truncated, X-Error, X-Partial")
	encSp := root.Child("encode")
	var traceFn func(rows int) *obs.TraceSnapshot
	if isExplain {
		// The trace rides in the JSON tail; by the time the encoder asks for
		// it every row has been pulled, so the execute and encode spans can
		// close and the tree snapshot.
		traceFn = func(rows int) *obs.TraceSnapshot {
			encSp.AddRows(int64(rows))
			execSp.End()
			encSp.End()
			return takeSnap()
		}
	}
	outFormat := format(r)
	if isExplain {
		outFormat = "json" // the trace is a JSON document; TSV cannot carry it
	}
	// partialFn reports the shards the cluster drains gave up on; it runs
	// after the last row (the sink is only fully populated once every
	// drain has finished), so the JSON tail and the trailer agree.
	var partialFn func() []cluster.PartialShard
	if partial != nil {
		partialFn = partial.Missing
	}
	var enc encodeResult
	switch outFormat {
	case "tsv":
		w.Header().Set("Content-Type", "text/tab-separated-values; charset=utf-8")
		encSp.SetAttr("format", "tsv")
		enc = writeTSV(w, q.Select, pc, s.ls.Dict())
		tookMs()
	default:
		w.Header().Set("Content-Type", "application/json")
		encSp.SetAttr("format", "json")
		enc = writeJSON(w, q.Select, pc, s.ls.Dict(), meta, tookMs, partialFn, traceFn)
	}
	if traceFn == nil {
		encSp.AddRows(int64(enc.rows))
	}
	execSp.End()
	encSp.End()
	if enc.truncated {
		w.Header().Set("X-Truncated", "true")
	}
	if enc.err != nil {
		w.Header().Set("X-Error", enc.err.Error())
	}
	if partial != nil {
		if miss := partial.Missing(); len(miss) > 0 {
			w.Header().Set("X-Partial", partialTrailer(miss))
		}
	}
	finish(enc.err != nil, errors.Is(enc.err, context.DeadlineExceeded))
}

// partialTrailer renders the X-Partial trailer value, e.g.
// "shards=1:object-replicas,3:lost".
func partialTrailer(miss []cluster.PartialShard) string {
	var b strings.Builder
	b.WriteString("shards=")
	for i, m := range miss {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d:%s", m.Shard, m.Mode)
	}
	return b.String()
}

// peekedCursor replays the row the handler pulled for status-code purposes,
// then delegates to the real cursor.
type peekedCursor struct {
	inner engine.Cursor
	row   []uint32
	eof   bool
	used  bool
}

func (p *peekedCursor) Vars() []string { return p.inner.Vars() }

func (p *peekedCursor) Next() ([]uint32, error) {
	if !p.used {
		p.used = true
		if p.eof {
			return nil, io.EOF
		}
		return p.row, nil
	}
	if p.eof {
		return nil, io.EOF
	}
	return p.inner.Next()
}

func (p *peekedCursor) Truncated() bool { return p.inner.Truncated() }
func (p *peekedCursor) Close() error    { return p.inner.Close() }

// limitZeroCursor serves SPARQL "LIMIT 0": no rows, with Truncated still
// exact — the handler's one-row probe tells whether any solution existed.
type limitZeroCursor struct {
	inner  engine.Cursor
	hadRow bool
}

func (l *limitZeroCursor) Vars() []string          { return l.inner.Vars() }
func (l *limitZeroCursor) Next() ([]uint32, error) { return nil, io.EOF }
func (l *limitZeroCursor) Truncated() bool         { return l.hadRow }
func (l *limitZeroCursor) Close() error            { return l.inner.Close() }

// failCtx maps a done context to 504 (deadline) or 503 (client cancelled).
// snap, when non-nil (?explain=1), rides in the error body so a timed-out
// request still explains where its deadline landed.
func (s *Server) failCtx(w http.ResponseWriter, ctx context.Context, snap *obs.TraceSnapshot) {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		errorJSON(w, http.StatusGatewayTimeout, snap, "query timed out")
		return
	}
	errorJSON(w, http.StatusServiceUnavailable, snap, "request cancelled")
}

// failExec maps a pre-stream execution error to an HTTP status.
func (s *Server) failExec(w http.ResponseWriter, ctx context.Context, err error, snap *obs.TraceSnapshot) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		s.failCtx(w, ctx, snap)
		return
	}
	errorJSON(w, http.StatusInternalServerError, snap, "executing: %v", err)
}

// errorJSON is httpError plus an optional trace snapshot in the body.
func errorJSON(w http.ResponseWriter, status int, snap *obs.TraceSnapshot, format string, args ...any) {
	if snap == nil {
		httpError(w, status, format, args...)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{
		"error": fmt.Sprintf(format, args...),
		"trace": snap,
	})
}

// format picks the response encoding: ?format=json|tsv, else the Accept
// header, else JSON.
func format(r *http.Request) string {
	switch r.FormValue("format") {
	case "tsv":
		return "tsv"
	case "json":
		return "json"
	}
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		if mediaType(strings.TrimSpace(part)) == "text/tab-separated-values" {
			return "tsv"
		}
	}
	return "json"
}

// handleUpdate applies one N-Triples patch (lines optionally prefixed '+'
// for insert — the default — or '-' for delete) to the delta overlay. With
// ?compact=true the delta is drained into a fresh base immediately after.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	limit := int64(s.cfg.MaxUpdateBytes)
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading patch: %v", err)
		return
	}
	if int64(len(body)) > limit {
		httpError(w, http.StatusRequestEntityTooLarge, "patch exceeds %d bytes", limit)
		return
	}
	patch, err := live.ParsePatch(bytes.NewReader(body))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := s.ls.Apply(patch)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "applying patch: %v", err)
		return
	}
	s.stats.update(res.Inserted, res.Deleted)
	reply := map[string]any{
		"inserted":         res.Inserted,
		"deleted":          res.Deleted,
		"noops":            res.Noops,
		"delta_inserts":    res.DeltaInserts,
		"delta_tombstones": res.DeltaTombstones,
		"epoch":            res.Epoch,
	}
	if r.FormValue("compact") == "true" {
		cs, err := s.compactNow()
		if err != nil {
			httpError(w, http.StatusInternalServerError, "compacting: %v", err)
			return
		}
		reply["epoch"] = cs.Epoch
		reply["compacted"] = cs.Swapped
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(reply)
}

// handleCompact forces a compaction swap (a no-op on an empty delta).
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	cs, err := s.compactNow()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "compacting: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"epoch":       cs.Epoch,
		"compacted":   cs.Swapped,
		"drained":     cs.Drained,
		"duration_ms": ms(cs.Duration),
	})
}

// compactNow drains the delta and, when configured, persists the fresh
// snapshot atomically.
func (s *Server) compactNow() (live.CompactStats, error) {
	cs, err := s.ls.Compact()
	if err != nil {
		return cs, err
	}
	if cs.Swapped && s.cfg.SnapshotPath != "" {
		if err := s.ls.SnapshotTo(s.cfg.SnapshotPath); err != nil {
			return cs, fmt.Errorf("persisting snapshot: %w", err)
		}
	}
	return cs, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.ls.Stats()
	resp := map[string]any{
		"status":  "ok",
		"triples": st.OverlayTriples,
		"terms":   st.Terms,
		"epoch":   st.Epoch,
		"build":   obs.Build(),
	}
	status := http.StatusOK
	if s.cfg.Durable != nil {
		// A constructed server has finished boot replay by definition; the
		// true counterpart is served by rdfserved's boot handler, which
		// answers 503 {"wal_replay":true} until the durable store is open.
		resp["durable"] = true
		resp["wal_replay"] = false
		if s.cfg.Durable.WALFailed() {
			// The WAL latched failed: updates are being refused and this
			// process's durability guarantee is gone. Degrade honestly —
			// a cluster coordinator's health probes eject this worker, a
			// load balancer stops routing writes to it.
			resp["status"] = "degraded"
			resp["wal"] = "failed"
			status = http.StatusServiceUnavailable
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(resp)
}

// Stats snapshots the server's counters (also served at /stats).
func (s *Server) Stats() Stats {
	queries, errs, timeouts, rejected, active, byEngine, engLat, lat := s.stats.snapshot()
	updates, inserted, deleted := s.stats.updateCounts()
	inUse, queued, _ := s.pool.stats()
	var sharding *ShardingStats
	if part := s.ls.Part(); part != nil {
		ss := part.Stats()
		sharding = &ShardingStats{
			Shards:             len(ss),
			OwnedTriples:       make([]int, len(ss)),
			ReplicatedTriples:  make([]int, len(ss)),
			MergeRowsDelivered: make([]int64, len(ss)),
		}
		for i, sh := range ss {
			sharding.OwnedTriples[i] = sh.Owned
			sharding.ReplicatedTriples[i] = sh.Replicated
			sharding.MergeRowsDelivered[i] = sh.Delivered
		}
		ps := part.PlanStats()
		sharding.ShardsPruned = ps.ShardsPruned
		sharding.GroupsPlanned = ps.GroupsPlanned
		sharding.PlanReuseHits = ps.PlanReuseHits
		sharding.PlansCompiled = ps.PlansCompiled
	}
	var durability *DurabilityStats
	if s.cfg.Durable != nil {
		ds := s.cfg.Durable.Stats()
		durability = &DurabilityStats{
			FsyncPolicy:          ds.WAL.Policy.String(),
			WALBytes:             ds.WAL.Bytes,
			WALRecords:           ds.WAL.Records,
			WALSyncs:             ds.WAL.Syncs,
			LastFsyncMs:          ms(ds.WAL.LastSyncAge),
			WALFailed:            ds.WAL.Failed,
			ReplayedRecords:      ds.ReplayedRecords,
			ReplayedOps:          ds.ReplayedOps,
			TornBytesTruncated:   ds.TornBytes,
			CleanShutdown:        ds.CleanShutdown,
			SegmentBytes:         ds.SegmentBytes,
			SegmentsMapped:       ds.SegmentsMapped,
			Mmap:                 ds.Mapped,
			CompactionsPersisted: ds.CompactionsPersisted,
		}
	}
	var cstats *cluster.Stats
	if s.cfg.Cluster != nil {
		cs := s.cfg.Cluster.Stats()
		cstats = &cs
	}
	lst := s.ls.Stats()
	return Stats{
		UptimeSeconds:    time.Since(s.start).Seconds(),
		Triples:          lst.OverlayTriples,
		Terms:            lst.Terms,
		IndexMemoryBytes: s.ls.IndexMemoryBytes(),
		Queries:          queries,
		Errors:           errs,
		Timeouts:         timeouts,
		Rejected:         rejected,
		Panics:           s.stats.panicsCount(),
		Active:           active,
		InFlightSlots:    inUse,
		QueueDepth:       queued,
		ByEngine:         byEngine,
		EngineLatency:    engLat,
		PlanCache:        s.cache.stats(),
		Chooser:          stats.Default.Snapshot(),
		Latency:          lat,
		Sharding:         sharding,
		Cluster:          cstats,
		Durability:       durability,
		Live: &LiveStats{
			Epoch:              lst.Epoch,
			BaseTriples:        lst.BaseTriples,
			DeltaInserts:       lst.DeltaInserts,
			DeltaTombstones:    lst.DeltaTombstones,
			OverlayTriples:     lst.OverlayTriples,
			PinnedReaders:      lst.PinnedReaders,
			Updates:            updates,
			TriplesInserted:    inserted,
			TriplesDeleted:     deleted,
			Compactions:        lst.Compactions,
			LastCompactMs:      ms(lst.LastCompactDuration),
			LastCompactDrained: lst.LastCompactDrained,
		},
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}
