// Package server is the concurrent SPARQL serving layer over the engines in
// this repository: an HTTP endpoint that loads a dataset once and answers
// many read-only queries against the shared immutable store, the way
// production RDF stores expose their join engines.
//
// The request pipeline is parse → normalize → plan-cache lookup (compile on
// miss) → execute → stream-encode:
//
//   - Queries are α-normalized (internal/query.Normalize) so requests that
//     differ only in variable naming share one compiled plan.
//   - Compiled plans are held in a bounded LRU keyed by normalized query +
//     engine + plan options, with hit/miss counters surfaced at /stats.
//   - A bounded worker pool caps concurrently executing queries; waiting
//     requests burn their own deadline, not other requests' CPU.
//   - Every request carries a context deadline that is threaded into the
//     worst-case optimal join recursion (internal/exec), so a pathological
//     query is abandoned instead of starving the server. Engines that
//     cannot be interrupted mid-join (the pairwise baselines) run detached:
//     the response returns 504 at the deadline and the worker slot is
//     reclaimed only when the stray execution finishes.
//
// Endpoints: GET/POST /query (params: query, engine, format, timeout),
// GET /healthz, GET /stats.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/engines"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/store"
)

// Config parameterizes a Server. The zero value of every field gets a
// sensible default from New.
type Config struct {
	// Store is the loaded dataset; required.
	Store *store.Store
	// DefaultEngine answers requests without ?engine=. Default
	// "emptyheaded".
	DefaultEngine string
	// PlanCacheSize bounds the compiled-plan LRU. Default 256 entries.
	PlanCacheSize int
	// MaxConcurrent bounds queries executing at once; further requests
	// queue (and may time out waiting). Default GOMAXPROCS.
	MaxConcurrent int
	// DefaultTimeout applies to requests without ?timeout=. Default 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested ?timeout= values. Default 2m.
	MaxTimeout time.Duration
	// MaxRows caps the rows one query may return; results hitting the cap
	// come back marked "truncated". For the plan-executing engines the cap
	// is enforced during enumeration, bounding memory, not just response
	// size. Default 4,000,000; negative disables the cap.
	MaxRows int
}

// defaultMaxRows bounds per-query result memory unless overridden
// (4M rows ≈ 50-150MB materialized, depending on row width).
const defaultMaxRows = 4_000_000

// Server serves SPARQL queries over one immutable store. Create with New;
// expose with Handler.
type Server struct {
	cfg   Config
	st    *store.Store
	cache *planCache
	sem   chan struct{}
	stats *metrics
	start time.Time

	// engines holds one lazily-constructed slot per valid engine name. mu
	// guards only the map; each slot's sync.Once guards its construction,
	// so building one expensive engine (rdf3x sorts six permutation
	// indexes) never blocks requests on engines that already exist.
	mu      sync.Mutex
	engines map[string]*engineSlot
}

// engineSlot is one engine's build-once cell.
type engineSlot struct {
	once sync.Once
	eng  engine.Engine
	err  error
}

// knownEngine reports whether name is in the registry, without building
// anything — garbage ?engine= values must not allocate slots.
func knownEngine(name string) bool {
	for _, n := range engines.Names() {
		if n == name {
			return true
		}
	}
	return false
}

// New validates cfg, applies defaults, and returns a ready Server.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("server: Config.Store is required")
	}
	if cfg.DefaultEngine == "" {
		cfg.DefaultEngine = "emptyheaded"
	}
	// Construct the default engine now — it both validates the name and
	// front-loads any eager index construction (rdf3x sorts six triple
	// permutations) so the first request doesn't pay for it; the instance
	// seeds the engine map below.
	defEng, err := engines.New(cfg.DefaultEngine, cfg.Store)
	if err != nil {
		return nil, fmt.Errorf("server: default engine: %w", err)
	}
	if cfg.PlanCacheSize <= 0 {
		cfg.PlanCacheSize = 256
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 2 * time.Minute
	}
	if cfg.MaxRows == 0 {
		cfg.MaxRows = defaultMaxRows
	} else if cfg.MaxRows < 0 {
		cfg.MaxRows = 0 // 0 = uncapped from here on
	}
	defSlot := &engineSlot{eng: defEng}
	defSlot.once.Do(func() {}) // mark built
	return &Server{
		cfg:     cfg,
		st:      cfg.Store,
		cache:   newPlanCache(cfg.PlanCacheSize),
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		stats:   newMetrics(),
		start:   time.Now(),
		engines: map[string]*engineSlot{cfg.DefaultEngine: defSlot},
	}, nil
}

// Handler returns the HTTP handler with the /query, /healthz, and /stats
// routes mounted.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// engine returns the shared engine instance for name, constructing it on
// first use. Construction (expensive: rdf3x sorts six permutation indexes)
// runs under the slot's Once, not the map lock, so building one engine
// never stalls requests on engines that already exist.
func (s *Server) engine(name string) (engine.Engine, error) {
	if !knownEngine(name) {
		// Produce the registry's canonical error without allocating a slot
		// (arbitrary client-supplied names must not grow the map).
		_, err := engines.New(name, s.st)
		return nil, err
	}
	s.mu.Lock()
	slot, ok := s.engines[name]
	if !ok {
		slot = &engineSlot{}
		s.engines[name] = slot
	}
	s.mu.Unlock()
	slot.once.Do(func() { slot.eng, slot.err = engines.New(name, s.st) })
	return slot.eng, slot.err
}

// planExecutor is satisfied by engines that separate compilation from
// execution (core/EmptyHeaded and the LogicBlox model); for these the cache
// holds the compiled plan itself and the row cap is enforced during
// enumeration.
type planExecutor interface {
	engine.Engine
	Plan(*query.BGP) (*plan.Plan, error)
	ExecutePlanLimit(ctx context.Context, p *plan.Plan, maxRows int) (*engine.Result, error)
}

// preparedQuery is one plan-cache entry: the interned normalized BGP and,
// for planExecutor engines, its compiled plan. Both are immutable and
// shared by concurrent executions.
type preparedQuery struct {
	bgp  *query.BGP
	plan *plan.Plan // nil for engines that plan internally per execution
}

// prepare resolves q to a cache entry for engineName, compiling on miss.
func (s *Server) prepare(engineName string, eng engine.Engine, q *query.BGP) (*preparedQuery, bool, error) {
	norm, key := query.Normalize(q)
	key = engineName + "|" + optionsKey(eng) + "|" + key
	if pq, ok := s.cache.get(key); ok {
		return pq, true, nil
	}
	pq := &preparedQuery{bgp: norm}
	if pe, ok := eng.(planExecutor); ok {
		p, err := pe.Plan(norm)
		if err != nil {
			return nil, false, err
		}
		pq.plan = p
	}
	s.cache.add(key, pq)
	return pq, false, nil
}

// optionsKey renders the plan-relevant options of eng into the cache key,
// so engines with different optimization configurations never share plans.
func optionsKey(eng engine.Engine) string {
	if ce, ok := eng.(*core.Engine); ok {
		o := ce.Options()
		return plan.Options{
			Layout:           ce.Policy(),
			AttributeReorder: o.AttributeReorder,
			GHDPushdown:      o.GHDPushdown,
			Pipelining:       o.Pipelining,
		}.Key()
	}
	return ""
}

// execute runs the prepared query on eng under ctx. It takes ownership of
// release (the worker-pool slot): on the cancellable paths the slot is
// released when execution returns; on the detached fallback path the slot
// stays held by the stray goroutine until the engine actually finishes, so
// MaxConcurrent bounds true CPU concurrency, not just live requests.
func (s *Server) execute(ctx context.Context, eng engine.Engine, pq *preparedQuery, release func()) (*engine.Result, error) {
	if pq.plan != nil {
		if pe, ok := eng.(planExecutor); ok {
			defer release()
			return pe.ExecutePlanLimit(ctx, pq.plan, s.cfg.MaxRows)
		}
	}
	if ce, ok := eng.(engine.ContextEngine); ok {
		defer release()
		return s.capRows(ce.ExecuteContext(ctx, pq.bgp))
	}
	type outcome struct {
		res *engine.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		defer release()
		res, err := eng.Execute(pq.bgp)
		done <- outcome{res, err}
	}()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case o := <-done:
		return s.capRows(o.res, o.err)
	}
}

// capRows applies the row cap after the fact for engines that cannot
// enforce it during enumeration (bounding response size; their memory use
// is only bounded by the timeout — see the package doc).
func (s *Server) capRows(res *engine.Result, err error) (*engine.Result, error) {
	if err != nil || res == nil || s.cfg.MaxRows <= 0 || len(res.Rows) <= s.cfg.MaxRows {
		return res, err
	}
	return &engine.Result{Vars: res.Vars, Rows: res.Rows[:s.cfg.MaxRows], Truncated: true}, nil
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// mediaType parses a Content-Type or Accept element down to its bare media
// type ("application/sparql-query; charset=utf-8" → "application/sparql-query").
func mediaType(header string) string {
	mt, _, err := mime.ParseMediaType(header)
	if err != nil {
		return ""
	}
	return mt
}

// queryText extracts the SPARQL text from the request: the raw body for
// POST application/sparql-query, the query form/URL parameter otherwise.
func queryText(r *http.Request) (string, error) {
	if r.Method == http.MethodPost && mediaType(r.Header.Get("Content-Type")) == "application/sparql-query" {
		b, err := io.ReadAll(io.LimitReader(r.Body, 1<<20+1))
		if err != nil {
			return "", err
		}
		if len(b) > 1<<20 {
			return "", errors.New("query body exceeds 1MiB")
		}
		return string(b), nil
	}
	return r.FormValue("query"), nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	s.stats.begin()
	requestStart := time.Now()
	engineName := ""
	finished := false
	finish := func(isErr, isTimeout bool) {
		if !finished {
			finished = true
			s.stats.end(engineName, time.Since(requestStart), isErr, isTimeout)
		}
	}
	defer finish(true, false) // overwritten by the explicit calls below

	text, err := queryText(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading query: %v", err)
		finish(true, false)
		return
	}
	if text == "" {
		httpError(w, http.StatusBadRequest, "missing query parameter")
		finish(true, false)
		return
	}

	requestedEngine := r.FormValue("engine")
	if requestedEngine == "" {
		requestedEngine = s.cfg.DefaultEngine
	}
	eng, err := s.engine(requestedEngine)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		finish(true, false)
		return
	}
	engineName = requestedEngine // only resolved engines reach the stats

	q, err := query.ParseSPARQL(text)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		finish(true, false)
		return
	}

	timeout := s.cfg.DefaultTimeout
	if tv := r.FormValue("timeout"); tv != "" {
		d, err := time.ParseDuration(tv)
		if err != nil || d <= 0 {
			httpError(w, http.StatusBadRequest, "bad timeout %q (want a positive Go duration, e.g. 500ms)", tv)
			finish(true, false)
			return
		}
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
		timeout = d
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Acquire a worker slot; queue wait counts against the deadline.
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.failCtx(w, ctx)
		finish(true, errors.Is(ctx.Err(), context.DeadlineExceeded))
		return
	}
	release := sync.OnceFunc(func() { <-s.sem })

	pq, hit, err := s.prepare(engineName, eng, q)
	if err != nil {
		release()
		httpError(w, http.StatusInternalServerError, "planning: %v", err)
		finish(true, false)
		return
	}

	execStart := time.Now()
	res, err := s.execute(ctx, eng, pq, release)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.failCtx(w, ctx)
			finish(true, errors.Is(err, context.DeadlineExceeded))
			return
		}
		httpError(w, http.StatusInternalServerError, "executing: %v", err)
		finish(true, false)
		return
	}
	took := time.Since(execStart)

	// Present the caller's variable names: normalization renamed them, but
	// positions are preserved, so rows decode unchanged.
	out := &engine.Result{Vars: q.Select, Rows: res.Rows, Truncated: res.Truncated}
	meta := queryMeta{Engine: eng.Name(), TookMs: ms(took), Cache: "miss", Truncated: res.Truncated}
	if hit {
		meta.Cache = "hit"
	}
	if res.Truncated {
		w.Header().Set("X-Truncated", "true")
	}
	var encErr error
	switch format(r) {
	case "tsv":
		w.Header().Set("Content-Type", "text/tab-separated-values; charset=utf-8")
		encErr = writeTSV(w, out, s.st.Dict())
	default:
		w.Header().Set("Content-Type", "application/json")
		encErr = writeJSON(w, out, s.st.Dict(), meta)
	}
	// Encoding errors mean the client went away mid-stream; nothing to send.
	finish(encErr != nil, false)
}

// failCtx maps a done context to 504 (deadline) or 503 (client cancelled).
func (s *Server) failCtx(w http.ResponseWriter, ctx context.Context) {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		httpError(w, http.StatusGatewayTimeout, "query timed out")
		return
	}
	httpError(w, http.StatusServiceUnavailable, "request cancelled")
}

// format picks the response encoding: ?format=json|tsv, else the Accept
// header, else JSON.
func format(r *http.Request) string {
	switch r.FormValue("format") {
	case "tsv":
		return "tsv"
	case "json":
		return "json"
	}
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		if mediaType(strings.TrimSpace(part)) == "text/tab-separated-values" {
			return "tsv"
		}
	}
	return "json"
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":  "ok",
		"triples": s.st.NumTriples(),
		"terms":   s.st.Dict().Size(),
	})
}

// Stats snapshots the server's counters (also served at /stats).
func (s *Server) Stats() Stats {
	queries, errs, timeouts, active, byEngine, lat := s.stats.snapshot()
	return Stats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Triples:       s.st.NumTriples(),
		Terms:         s.st.Dict().Size(),
		Queries:       queries,
		Errors:        errs,
		Timeouts:      timeouts,
		Active:        active,
		ByEngine:      byEngine,
		PlanCache:     s.cache.stats(),
		Latency:       lat,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}
