package server

import (
	"container/list"
	"sync"
)

// CacheStats is a point-in-time snapshot of the plan cache's counters,
// reported by the /stats endpoint.
type CacheStats struct {
	Capacity  int    `json:"capacity"`
	Size      int    `json:"size"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// evictScan bounds how many least-recently-used entries the eviction pass
// scores. Recency prefilters the candidates; cost×frequency picks the
// victim among them, so one ancient-but-expensive plan survives bursts of
// cheap one-off queries without the scan ever being O(cache).
const evictScan = 16

// planCache is a concurrency-safe cache from normalized query keys to
// prepared queries. Lookup order is LRU, but eviction is not pure recency:
// among the evictScan least-recently-used entries, the victim is the one
// with the lowest estimated-cost × use-count score — dropping a plan that
// was expensive to compile-and-run and is hit often costs the most to
// re-establish, so recency alone (which a scan of cheap ad-hoc queries can
// flush) is the wrong signal. Concurrent misses for the same key may both
// compile and race to add; the second add wins and the first compilation is
// discarded — harmless (plans are immutable) and simpler than per-key
// singleflight.
type planCache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key  string
	pq   *preparedQuery
	uses uint64
}

func newPlanCache(capacity int) *planCache {
	if capacity < 1 {
		capacity = 1
	}
	return &planCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// get returns the cached prepared query for key, marking it most recently
// used, and records a hit or miss.
func (c *planCache) get(key string) (*preparedQuery, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	ent := el.Value.(*cacheEntry)
	ent.uses++
	c.ll.MoveToFront(el)
	return ent.pq, true
}

// add inserts (or refreshes) key, evicting the lowest cost×frequency entry
// among the least recently used when over capacity.
func (c *planCache) add(key string, pq *preparedQuery) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).pq = pq
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, pq: pq})
	for c.ll.Len() > c.capacity {
		victim := c.ll.Back()
		best := score(victim.Value.(*cacheEntry))
		for el, i := victim.Prev(), 1; el != nil && i < evictScan; el, i = el.Prev(), i+1 {
			if s := score(el.Value.(*cacheEntry)); s < best {
				victim, best = el, s
			}
		}
		c.ll.Remove(victim)
		delete(c.items, victim.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// score is the keep-priority of an entry: estimated execution cost times
// observed hit frequency, with +1 floors so zero-cost entries (engines the
// cost model cannot price) and never-hit entries still rank by the other
// factor.
func score(e *cacheEntry) float64 {
	return (e.pq.cost + 1) * float64(e.uses+1)
}

// stats snapshots the counters.
func (c *planCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Capacity:  c.capacity,
		Size:      c.ll.Len(),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
