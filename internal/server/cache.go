package server

import (
	"container/list"
	"sync"
)

// CacheStats is a point-in-time snapshot of the plan cache's counters,
// reported by the /stats endpoint.
type CacheStats struct {
	Capacity  int    `json:"capacity"`
	Size      int    `json:"size"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// planCache is a concurrency-safe LRU cache from normalized query keys to
// prepared queries. Concurrent misses for the same key may both compile and
// race to add; the second add wins and the first compilation is discarded —
// harmless (plans are immutable) and simpler than per-key singleflight.
type planCache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key string
	pq  *preparedQuery
}

func newPlanCache(capacity int) *planCache {
	if capacity < 1 {
		capacity = 1
	}
	return &planCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// get returns the cached prepared query for key, marking it most recently
// used, and records a hit or miss.
func (c *planCache) get(key string) (*preparedQuery, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).pq, true
}

// add inserts (or refreshes) key, evicting the least recently used entry
// when over capacity.
func (c *planCache) add(key string, pq *preparedQuery) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).pq = pq
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, pq: pq})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// stats snapshots the counters.
func (c *planCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Capacity:  c.capacity,
		Size:      c.ll.Len(),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
