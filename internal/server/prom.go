package server

// prom.go serves GET /metrics in Prometheus text exposition format 0.0.4,
// hand-written via internal/obs (no client library dependency). Every
// counter /stats reports has a family here, plus the native histograms:
// request latency, per-engine execution latency, WAL fsync latency, merge
// batch sizes, and shards pruned per compiled scatter plan. The /stats
// percentiles are interpolated from these same histograms, so the two
// surfaces agree by construction.

import (
	"net/http"
	"strconv"

	"repro/internal/obs"
)

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	st := s.Stats()
	latHist, engHists := s.stats.histSnapshots()
	bi := obs.Build()

	w.Header().Set("Content-Type", obs.PromContentType)
	pw := obs.NewPromWriter(w)

	pw.Gauge("rdf_build_info", "Build metadata; the value is always 1.", 1,
		"version", bi.Version, "revision", bi.Revision, "go_version", bi.GoVersion)
	pw.Gauge("rdf_uptime_seconds", "Seconds since the server started.", st.UptimeSeconds)
	pw.Gauge("rdf_triples", "Triples visible to queries (base minus tombstones plus delta inserts).", float64(st.Triples))
	pw.Gauge("rdf_terms", "Distinct dictionary-encoded terms.", float64(st.Terms))
	pw.Gauge("rdf_index_memory_bytes", "Estimated heap held by trie indexes across base and shards.", float64(st.IndexMemoryBytes))

	pw.Counter("rdf_queries_total", "Queries handled (successful and failed).", float64(st.Queries))
	pw.Counter("rdf_query_errors_total", "Queries that ended in an error (timeouts included).", float64(st.Errors))
	pw.Counter("rdf_query_timeouts_total", "Queries that hit their deadline.", float64(st.Timeouts))
	pw.Counter("rdf_queries_rejected_total", "Requests bounced by admission control (HTTP 429).", float64(st.Rejected))
	pw.Counter("rdf_panics_total", "Handler panics recovered by the middleware (answered 500).", float64(st.Panics))
	pw.Gauge("rdf_active_requests", "Requests currently in flight end to end.", float64(st.Active))
	pw.Gauge("rdf_inflight_slots", "Worker-pool slots currently held by executing queries.", float64(st.InFlightSlots))
	pw.Gauge("rdf_queue_depth", "Requests waiting for worker-pool slots.", float64(st.QueueDepth))

	for _, eng := range obs.SortedKeys(st.ByEngine) {
		pw.Counter("rdf_queries_by_engine_total", "Queries handled, by engine.", float64(st.ByEngine[eng]), "engine", eng)
	}
	pw.Histogram("rdf_query_latency_seconds", "Total request duration, queue wait included.", latHist)
	for _, eng := range obs.SortedKeys(engHists) {
		pw.Histogram("rdf_engine_exec_latency_seconds", "Execution latency (cursor open to end of stream), by engine.", engHists[eng], "engine", eng)
	}
	for _, eng := range obs.SortedKeys(st.EngineLatency) {
		pw.Gauge("rdf_engine_hold_ewma_seconds", "Worker-pool slot-hold EWMA admission control multiplies by queue depth.", st.EngineLatency[eng].HoldEWMAMs/1e3, "engine", eng)
	}

	pw.Gauge("rdf_plan_cache_entries", "Compiled plans currently cached.", float64(st.PlanCache.Size))
	pw.Gauge("rdf_plan_cache_capacity", "Plan-cache capacity.", float64(st.PlanCache.Capacity))
	pw.Counter("rdf_plan_cache_hits_total", "Plan-cache hits.", float64(st.PlanCache.Hits))
	pw.Counter("rdf_plan_cache_misses_total", "Plan-cache misses (queries compiled).", float64(st.PlanCache.Misses))
	pw.Counter("rdf_plan_cache_evictions_total", "Plans evicted under capacity pressure.", float64(st.PlanCache.Evictions))

	ch := st.Chooser
	pw.Gauge("rdf_layout_bitset_nodes", "Trie set nodes the 1-in-256 rule laid out as bitsets.", float64(ch.LayoutBitsetNodes))
	pw.Gauge("rdf_layout_uint_nodes", "Trie set nodes laid out as sorted uint arrays.", float64(ch.LayoutUintNodes))
	pw.Counter("rdf_layout_flips_total", "Layout decisions that flipped the paper's density default.", float64(ch.LayoutFlips))
	for _, cls := range obs.SortedKeys(ch.EnginePicks) {
		pw.Counter("rdf_engine_picks_total", "Cost-model engine-class choices, by class.", float64(ch.EnginePicks[cls]), "class", cls)
	}
	pw.Counter("rdf_cost_lookups_total", "Routing-decision cache lookups.", float64(ch.CostLookups))
	pw.Counter("rdf_cost_hits_total", "Routing-decision cache hits.", float64(ch.CostHits))

	if sh := st.Sharding; sh != nil {
		pw.Gauge("rdf_shards", "Configured shard count.", float64(sh.Shards))
		for i := 0; i < sh.Shards; i++ {
			shard := strconv.Itoa(i)
			pw.Gauge("rdf_shard_owned_triples", "Triples whose subject the shard owns.", float64(sh.OwnedTriples[i]), "shard", shard)
			pw.Gauge("rdf_shard_replicated_triples", "Triples replicated to the shard for their object.", float64(sh.ReplicatedTriples[i]), "shard", shard)
			pw.Counter("rdf_shard_rows_delivered_total", "Rows the shard contributed to merge cursors.", float64(sh.MergeRowsDelivered[i]), "shard", shard)
		}
		pw.Counter("rdf_shards_pruned_total", "(group, shard) scatter targets statistics proved empty.", float64(sh.ShardsPruned))
		pw.Counter("rdf_scatter_groups_planned_total", "Root-covered groups compiled into scatter plans.", float64(sh.GroupsPlanned))
		pw.Counter("rdf_scatter_plan_reuse_hits_total", "Opens served from a cached scatter plan.", float64(sh.PlanReuseHits))
		pw.Counter("rdf_scatter_plans_compiled_total", "Scatter-plan cache misses.", float64(sh.PlansCompiled))
		if part := s.ls.Part(); part != nil {
			pw.Histogram("rdf_merge_batch_rows", "Rows per flushed merge-transport batch.", part.BatchRowsHist())
			pw.Histogram("rdf_shards_pruned_per_query", "Scatter targets pruned per compiled plan.", part.PrunedPerQueryHist())
		}
	}

	if cl := st.Cluster; cl != nil {
		pw.Gauge("rdf_cluster_workers", "Configured cluster workers.", float64(len(cl.Workers)))
		pw.Gauge("rdf_cluster_replicas", "Candidate workers per shard.", float64(cl.Replicas))
		for _, wk := range cl.Workers {
			up := 0.0
			if wk.State == "up" || wk.State == "degraded" {
				up = 1
			}
			pw.Gauge("rdf_worker_up", "1 when the worker's breaker admits requests (up or degraded), 0 when down.", up, "worker", wk.Addr, "state", wk.State)
			pw.Counter("rdf_worker_probes_total", "Health probes sent to the worker.", float64(wk.Probes), "worker", wk.Addr)
			pw.Counter("rdf_worker_probe_failures_total", "Health probes the worker failed.", float64(wk.ProbeFailures), "worker", wk.Addr)
			pw.Counter("rdf_worker_drains_total", "Shard drain attempts launched against the worker.", float64(wk.Drains), "worker", wk.Addr)
		}
		pw.Counter("rdf_shard_attempts_total", "Shard drain attempts (first tries, retries, and hedges).", float64(cl.Attempts))
		pw.Counter("rdf_shard_retries_total", "Shard drain retries after a failed or broken attempt.", float64(cl.Retries))
		pw.Counter("rdf_shard_hedges_total", "Backup attempts launched against a straggling first byte.", float64(cl.Hedges))
		pw.Counter("rdf_shard_hedge_wins_total", "Hedged backup attempts that beat the primary.", float64(cl.HedgeWins))
		pw.Counter("rdf_shard_failovers_total", "Drains served by a non-primary candidate worker.", float64(cl.Failovers))
		pw.Counter("rdf_shard_replica_recoveries_total", "Lost shards reassembled from object-side replicas.", float64(cl.ReplicaRecoveries))
		pw.Counter("rdf_partial_results_total", "Responses flagged partial after a shard stayed unreachable.", float64(cl.PartialResults))
		pw.Histogram("rdf_shard_first_row_seconds", "Attempt time to first byte; its p99 derives the hedge delay.", s.cfg.Cluster.FirstRowHist())
		pw.Gauge("rdf_shard_hedge_delay_seconds", "Current p99-derived hedge trigger delay.", cl.HedgeDelayMs/1e3)
	}

	if d := st.Durability; d != nil {
		pw.Gauge("rdf_wal_bytes", "Current write-ahead log size.", float64(d.WALBytes))
		pw.Counter("rdf_wal_records_total", "Patch records appended by this process.", float64(d.WALRecords))
		pw.Counter("rdf_wal_syncs_total", "WAL fsyncs issued.", float64(d.WALSyncs))
		pw.Histogram("rdf_wal_fsync_latency_seconds", "WAL fsync latency.", s.cfg.Durable.Stats().WAL.FsyncLatency)
		walFailed := 0.0
		if d.WALFailed {
			walFailed = 1
		}
		pw.Gauge("rdf_wal_failed", "1 when the WAL has latched failed (updates refused, /healthz 503).", walFailed)
		pw.Gauge("rdf_segment_bytes", "Base segment file size.", float64(d.SegmentBytes))
		pw.Gauge("rdf_segments_mapped", "Segment mappings currently open.", float64(d.SegmentsMapped))
		pw.Counter("rdf_compactions_persisted_total", "Segment files written by this process.", float64(d.CompactionsPersisted))
	}

	if lv := st.Live; lv != nil {
		pw.Gauge("rdf_epoch", "Live-store epoch; increments on every base swap.", float64(lv.Epoch))
		pw.Gauge("rdf_delta_inserts", "Pending netted inserts in the delta overlay.", float64(lv.DeltaInserts))
		pw.Gauge("rdf_delta_tombstones", "Pending netted deletes in the delta overlay.", float64(lv.DeltaTombstones))
		pw.Gauge("rdf_pinned_readers", "Cursors pinned to the current epoch state.", float64(lv.PinnedReaders))
		pw.Counter("rdf_updates_total", "Applied /update patches.", float64(lv.Updates))
		pw.Counter("rdf_triples_inserted_total", "Cumulative effective triple inserts.", float64(lv.TriplesInserted))
		pw.Counter("rdf_triples_deleted_total", "Cumulative effective triple deletes.", float64(lv.TriplesDeleted))
		pw.Counter("rdf_compactions_total", "Base swaps (compactions).", float64(lv.Compactions))
	}

	pw.Gauge("rdf_traced_queries", "Traces currently retained in the /debug/queries ring.", float64(s.traces.Len()))

	if err := pw.Err(); err != nil {
		s.log.Error("metrics exposition failed", "error", err)
	}
}
