package server

import (
	"context"
	"sync"
)

// wsem is a FIFO weighted semaphore: the worker pool. A plain request costs
// one slot; a request with ?workers=N costs N, so intra-query parallelism
// is accounted against the same pool as inter-query concurrency and
// MaxConcurrent keeps bounding true CPU use. Grants are all-or-nothing and
// strictly FIFO (no overtaking), which makes multi-slot acquisitions
// deadlock-free as long as every weight is ≤ capacity — the server clamps
// them.
type wsem struct {
	mu       sync.Mutex
	capacity int
	inUse    int
	queue    []*wsemWaiter
}

type wsemWaiter struct {
	n     int
	ready chan struct{}
}

func newWsem(capacity int) *wsem {
	return &wsem{capacity: capacity}
}

// acquire blocks until n slots are granted or ctx is done. If the grant
// races a cancellation, the grant wins (the caller owns the slots and will
// release them normally; its own work then fails fast on the dead context).
func (s *wsem) acquire(ctx context.Context, n int) error {
	s.mu.Lock()
	if len(s.queue) == 0 && s.inUse+n <= s.capacity {
		s.inUse += n
		s.mu.Unlock()
		return nil
	}
	w := &wsemWaiter{n: n, ready: make(chan struct{})}
	s.queue = append(s.queue, w)
	s.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-w.ready:
		// Granted concurrently with the cancellation: keep the grant.
		return nil
	default:
	}
	for i, q := range s.queue {
		if q == w {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			break
		}
	}
	// Removing a waiter can unblock the queue: if w was the head-of-line
	// multi-slot request, smaller requests behind it may now fit.
	s.grantLocked()
	return ctx.Err()
}

// release returns n slots and grants queued waiters in FIFO order.
func (s *wsem) release(n int) {
	s.mu.Lock()
	s.inUse -= n
	s.grantLocked()
	s.mu.Unlock()
}

// grantLocked hands slots to queued waiters in FIFO order while they fit.
// Callers hold s.mu.
func (s *wsem) grantLocked() {
	for len(s.queue) > 0 {
		w := s.queue[0]
		if s.inUse+w.n > s.capacity {
			break // head-of-line blocks: strict FIFO, no starvation
		}
		s.inUse += w.n
		s.queue = s.queue[1:]
		close(w.ready)
	}
}

// stats returns slots in use, queued requests, and queued slots.
func (s *wsem) stats() (inUse, queuedRequests, queuedSlots int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range s.queue {
		queuedSlots += w.n
	}
	return s.inUse, len(s.queue), queuedSlots
}
