package server

import (
	"context"
	"testing"
	"time"
)

func TestWsemFIFOAndWeights(t *testing.T) {
	s := newWsem(2)
	if err := s.acquire(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if inUse, _, _ := s.stats(); inUse != 2 {
		t.Fatalf("inUse = %d", inUse)
	}
	done := make(chan error, 1)
	go func() { done <- s.acquire(context.Background(), 1) }()
	select {
	case <-done:
		t.Fatal("acquire succeeded on a full semaphore")
	case <-time.After(20 * time.Millisecond):
	}
	s.release(2)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	s.release(1)
	if inUse, queued, _ := s.stats(); inUse != 0 || queued != 0 {
		t.Fatalf("end state: inUse=%d queued=%d", inUse, queued)
	}
}

// TestWsemCancelledWaiterUnblocksQueue pins the re-grant on waiter
// cancellation: a big head-of-line request whose context dies must not
// keep smaller requests behind it blocked when capacity is already free.
func TestWsemCancelledWaiterUnblocksQueue(t *testing.T) {
	s := newWsem(4)
	if err := s.acquire(context.Background(), 1); err != nil { // 3 free
		t.Fatal(err)
	}
	bigCtx, cancelBig := context.WithCancel(context.Background())
	bigErr := make(chan error, 1)
	go func() { bigErr <- s.acquire(bigCtx, 4) }() // needs 4, only 3 free: queues
	for i := 0; ; i++ {
		if _, queued, _ := s.stats(); queued == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("big request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	smallDone := make(chan error, 1)
	go func() { smallDone <- s.acquire(context.Background(), 1) }() // FIFO: behind big
	for i := 0; ; i++ {
		if _, queued, _ := s.stats(); queued == 2 {
			break
		}
		if i > 1000 {
			t.Fatal("small request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancelBig()
	if err := <-bigErr; err == nil {
		t.Fatal("cancelled big acquire returned nil")
	}
	select {
	case err := <-smallDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("small waiter stayed blocked after the head-of-line waiter cancelled")
	}
	s.release(1)
	s.release(1)
}

// TestWsemGrantRacesCancel: a grant that lands while the waiter is
// cancelling is kept (the caller owns the slots and releases them).
func TestWsemGrantRacesCancel(t *testing.T) {
	s := newWsem(1)
	for i := 0; i < 200; i++ {
		if err := s.acquire(context.Background(), 1); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		got := make(chan error, 1)
		go func() { got <- s.acquire(ctx, 1) }()
		go cancel()
		s.release(1)
		if err := <-got; err == nil {
			s.release(1) // we own it
		}
		if inUse, queued, _ := s.stats(); inUse != 0 || queued != 0 {
			t.Fatalf("iter %d: leaked state inUse=%d queued=%d", i, inUse, queued)
		}
	}
}
